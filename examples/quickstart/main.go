// Quickstart: build a small incomplete database, run one query under every
// evaluation procedure, and see how they differ.
package main

import (
	"fmt"

	"incdb"
)

func main() {
	// An inventory with two known items and one whose warehouse is
	// unknown (a marked null).
	db := incdb.NewDatabase()
	items := incdb.NewRelation("Items", "sku", "warehouse")
	items.Add(incdb.Consts("tv", "berlin"))
	items.Add(incdb.Consts("radio", "paris"))
	items.Add(incdb.T(incdb.Const("laptop"), db.FreshNull()))
	db.Add(items)
	berlin := incdb.NewRelation("BerlinSKUs", "sku")
	berlin.Add(incdb.Consts("tv"))
	db.Add(berlin)

	// Which items are NOT stored in berlin?
	// π_sku(σ_{warehouse≠'berlin'}(Items))
	q := incdb.Proj(incdb.Sel(incdb.R("Items"),
		incdb.CNeqC(1, incdb.Const("berlin"))), 0)

	fmt.Println("Query: items not stored in berlin")
	fmt.Println("SQL evaluation:   ", incdb.SQL(db, q))
	fmt.Println("Naive evaluation: ", incdb.Naive(db, q))

	cert, err := incdb.CertainWithNulls(db, q, incdb.CertainOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("Certain answers:  ", cert)

	plus, _ := incdb.ApproxPlus(db, q)
	poss, _ := incdb.ApproxPossible(db, q)
	fmt.Println("Q+ (certain ⊆):   ", plus)
	fmt.Println("Q? (possible ⊇):  ", poss)

	// The laptop's membership is a matter of probability: the unknown
	// warehouse is almost certainly not berlin.
	mu, err := incdb.Mu(db, q, nil, incdb.Consts("laptop"))
	if err != nil {
		panic(err)
	}
	fmt.Println("µ(laptop ∈ Q):    ", mu.RatString(), "(almost certainly true)")

	// One-call comparison with SQL-error classification.
	rep := incdb.Analyze(db, q, incdb.CertainOptions{})
	fmt.Println("SQL false negatives:", rep.FalseNegatives)
}
