// The Figure 1 walkthrough: the paper's Orders / Payments / Customers
// database, where a single NULL makes SQL both miss certain answers and
// invent wrong ones.
package main

import (
	"fmt"

	"incdb"
)

func buildDB(withNull bool) *incdb.Database {
	db := incdb.NewDatabase()
	orders := incdb.NewRelation("Orders", "oid", "title", "price")
	orders.Add(incdb.Consts("o1", "Big Data", "30"))
	orders.Add(incdb.Consts("o2", "SQL", "35"))
	orders.Add(incdb.Consts("o3", "Logic", "50"))
	db.Add(orders)
	payments := incdb.NewRelation("Payments", "cid", "oid")
	payments.Add(incdb.Consts("c1", "o1"))
	if withNull {
		payments.Add(incdb.T(incdb.Const("c2"), db.FreshNull()))
	} else {
		payments.Add(incdb.Consts("c2", "o2"))
	}
	db.Add(payments)
	customers := incdb.NewRelation("Customers", "cid", "name")
	customers.Add(incdb.Consts("c1", "John"))
	customers.Add(incdb.Consts("c2", "Mary"))
	db.Add(customers)
	return db
}

func main() {
	// Q1: unpaid orders — SELECT oid FROM Orders WHERE oid NOT IN
	//     (SELECT oid FROM Payments).
	unpaid := incdb.Proj(incdb.Sel(incdb.R("Orders"),
		incdb.CNot(incdb.CIn(incdb.Proj(incdb.R("Payments"), 1), 0))), 0)

	// Q2: customers without a paid order — the NOT EXISTS query, as
	//     π_cid(Customers) − π_cid(σ_{P.oid=O.oid}(Payments × Orders)).
	paid := incdb.Proj(incdb.Sel(
		incdb.Times(incdb.R("Payments"), incdb.R("Orders")),
		incdb.CEq(1, 2)), 0)
	noPaid := incdb.Minus(incdb.Proj(incdb.R("Customers"), 0), paid)

	// Q3: SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'.
	taut := incdb.Proj(incdb.Sel(incdb.R("Payments"), incdb.COr(
		incdb.CEqC(1, incdb.Const("o2")),
		incdb.CNeqC(1, incdb.Const("o2")))), 0)

	for _, withNull := range []bool{false, true} {
		db := buildDB(withNull)
		label := "complete database"
		if withNull {
			label = "with Payments(c2, NULL)"
		}
		fmt.Printf("=== %s ===\n", label)
		for _, q := range []struct {
			name string
			e    incdb.Expr
		}{{"unpaid orders", unpaid}, {"no paid order", noPaid}, {"tautology", taut}} {
			rep := incdb.Analyze(db, q.e, incdb.CertainOptions{})
			fmt.Printf("%-14s SQL=%v cert⊥=%v", q.name, rep.SQLAnswers.Tuples(), rep.Certain.Tuples())
			if len(rep.FalsePositives) > 0 {
				fmt.Printf("  FALSE POSITIVES %v", rep.FalsePositives)
			}
			if len(rep.FalseNegatives) > 0 {
				fmt.Printf("  FALSE NEGATIVES %v", rep.FalseNegatives)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nBecause of a single null, SQL both misses answers and makes up new ones.")
}
