// The four conditional-table strategies of Greco et al. [36] on the
// paper's tautology query: eager, semi-eager and lazy miss the certain
// answer hidden behind the disjunction; aware's condition minimization
// finds it.
package main

import (
	"fmt"

	"incdb"
)

func main() {
	db := incdb.NewDatabase()
	p := incdb.NewRelation("Payments", "cid", "oid")
	p.Add(incdb.Consts("c1", "o1"))
	p.Add(incdb.T(incdb.Const("c2"), db.FreshNull()))
	db.Add(p)

	// SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'
	q := incdb.Proj(incdb.Sel(incdb.R("Payments"), incdb.COr(
		incdb.CEqC(1, incdb.Const("o2")),
		incdb.CNeqC(1, incdb.Const("o2")))), 0)

	cert, err := incdb.CertainWithNulls(db, q, incdb.CertainOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("cert⊥ =", cert.Tuples(), "(every cid is certain: the condition is a tautology)")
	fmt.Println()

	for _, s := range []incdb.Strategy{incdb.Eager, incdb.SemiEager, incdb.Lazy, incdb.Aware} {
		certain, possible, err := incdb.CTableAnswers(db, q, s)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11s certain=%v possible=%v\n", s, certain.Tuples(), possible.Tuples())
	}

	fmt.Println("\nTheorem 4.9: all four under-approximate cert⊥; eager equals the")
	fmt.Println("Figure 2(b) scheme, aware additionally recognizes the tautology.")
}
