// Approximation on a TPC-H-like workload: dirty the generated data with
// marked nulls, then compare SQL answers against the Q⁺/Q? envelope of
// Figure 2(b) — everything in Q⁺ is certain, everything outside Q? is
// impossible.
package main

import (
	"fmt"

	"incdb"
	"incdb/internal/tpch"
)

func main() {
	db := tpch.Dirty(tpch.Generate(tpch.SmallConfig()), 0.15, 0, 42)
	fmt.Printf("TPC-H-like instance: %d tuples, %d marked nulls\n\n",
		tpch.TotalTuples(db), len(db.NullIDs()))

	for _, nq := range tpch.Queries() {
		sql := incdb.SQL(db, nq.Q)
		plus, err := incdb.ApproxPlus(db, nq.Q)
		if err != nil {
			panic(err)
		}
		poss, err := incdb.ApproxPossible(db, nq.Q)
		if err != nil {
			panic(err)
		}
		// How many SQL answers are guaranteed vs merely possible?
		guaranteed, unknown := 0, 0
		for _, t := range sql.Tuples() {
			if plus.Contains(t) {
				guaranteed++
			} else {
				unknown++
			}
		}
		fmt.Printf("%-34s |SQL|=%-4d guaranteed=%-4d uncertain=%-4d |Q?|=%d\n",
			nq.Name, sql.Len(), guaranteed, unknown, poss.Len())
	}

	fmt.Println("\nEvery 'guaranteed' answer is in cert⊥(Q,D) by Theorem 4.7;")
	fmt.Println("'uncertain' answers may be false positives of SQL's 3-valued logic.")
}
