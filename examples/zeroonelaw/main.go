// The probabilistic view of Section 4.3: answers returned by naive
// evaluation are almost certainly true (µ = 1), the rest almost certainly
// false (µ = 0) — and integrity constraints turn µ into arbitrary
// rationals.
package main

import (
	"fmt"

	"incdb"
	"incdb/internal/constraint"
	"incdb/internal/prob"
)

func main() {
	// R = {1}, S = {⊥}: is 1 ∈ R − S?
	db := incdb.NewDatabase()
	r := incdb.NewRelation("R", "a")
	r.Add(incdb.Consts("1"))
	db.Add(r)
	s := incdb.NewRelation("S", "a")
	s.Add(incdb.T(db.FreshNull()))
	db.Add(s)
	q := incdb.Minus(incdb.R("R"), incdb.R("S"))
	target := incdb.Consts("1")

	fmt.Println("R = {1}, S = {⊥}, Q = R − S, ā = (1)")
	fmt.Println("k     µk(Q,D,ā)")
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		muk, err := prob.MuK(db, q, nil, target, k)
		if err != nil {
			panic(err)
		}
		f, _ := muk.Float64()
		fmt.Printf("%-5d %.4f\n", k, f)
	}
	mu, _ := incdb.Mu(db, q, nil, target)
	fmt.Printf("limit %s — almost certainly true (Theorem 4.10)\n\n", mu.RatString())

	// Under the constraint S ⊆ T with T = {1,2}, the probability becomes
	// exactly 1/2 (Theorem 4.11).
	db2 := incdb.NewDatabase()
	tt := incdb.NewRelation("T", "a")
	tt.Add(incdb.Consts("1"))
	tt.Add(incdb.Consts("2"))
	db2.Add(tt)
	s2 := incdb.NewRelation("S", "a")
	s2.Add(incdb.T(db2.FreshNull()))
	db2.Add(s2)
	sigma := incdb.Constraints{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
	q2 := incdb.Minus(incdb.R("T"), incdb.R("S"))
	muCond, err := incdb.Mu(db2, q2, sigma, incdb.Consts("1"))
	if err != nil {
		panic(err)
	}
	fmt.Println("T = {1,2}, S = {⊥}, Σ: S ⊆ T, Q = T − S, ā = (1)")
	fmt.Printf("µ(Q|Σ, D, ā) = %s — the constraint pins ⊥ to {1,2}\n", muCond.RatString())
}
