// Command experiments regenerates every experiment of DESIGN.md's
// per-experiment index (E1–E12), reproducing the paper's figures and the
// cited empirical results. Run with no arguments for all experiments, or
// pass experiment ids (e.g. "E1 E9") to select.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"incdb/internal/exp"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [E1 ... E12]\n\nExperiments:\n")
		for _, e := range exp.All() {
			fmt.Fprintf(os.Stderr, "  %-4s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Printf("══ %s — %s ══\n\n", e.ID, e.Title)
		fmt.Println(e.Run())
	}
}
