// Command incdbload drives sustained mixed load against an incdbd server:
// N workers issue a fixed blend of appends and queries against one session
// for a wall-clock duration, then report sustained throughput and latency
// quantiles as one JSON object — the numbers the bench harness records in
// BENCH_PR10.json.
//
//	incdbload -addr http://localhost:8080 -duration 10s -concurrency 8 -write-pct 10
//
// Unlike the per-query microbenchmarks (go test -bench), this measures the
// server as a system under steady concurrent pressure: admission control,
// the result cache being continuously invalidated by interleaved writes,
// WAL group commit under concurrency, and the latency clients actually
// observe end to end. -addr takes a comma-separated endpoint list; with
// more than one the workers are failover-aware, so the harness also
// exercises promotion under load.
//
// Each worker cycles a fixed query list (cert oracle and SQL shapes over
// the built-in orders schema); every write appends a fresh row to a
// dedicated LoadRows relation, which bumps the session's version vector
// and forces the next queries to re-evaluate — a realistic cache hit/miss
// blend rather than a 100% warm cache. Unless -no-init, the session is
// first replaced with the built-in dataset so runs are reproducible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"incdb/internal/server"
)

// initData is the session's starting state: the orders schema the repo's
// examples and benchmarks use, plus an empty LoadRows relation the write
// mix appends into.
const initData = `
rel Customers cid name
rel Orders oid cid
rel Payments oid
rel LoadRows k v
row Customers c1 'Ann'
row Customers c2 'Bob'
row Orders o1 c1
row Orders o2 _1
row Payments o1
`

// queries is the read mix: certain-answer oracle work (the expensive
// shape), its SQL counterpart, and two cheap scans. Workers cycle through
// it round-robin from staggered offsets.
var queries = []struct{ query, proc string }{
	{"proj(0, sel(not(in(0, Payments)), Orders))", "cert"},
	{"proj(0, sel(not(in(0, Payments)), Orders))", "sql"},
	{"minus(proj(0, Customers), proj(1, Orders))", "cert"},
	{"proj(0, Orders)", "sql"},
	{"times(Orders, Payments)", "sql"},
}

// opResult is one completed operation: which kind, how long, and whether
// it failed.
type opResult struct {
	write bool
	d     time.Duration
	err   bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "incdbd base URL(s), comma-separated for failover awareness")
	sessionName := flag.String("session", "bench", "session to drive")
	duration := flag.Duration("duration", 10*time.Second, "how long to sustain the load")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	writePct := flag.Int("write-pct", 10, "percentage of operations that are appends (0-100)")
	noInit := flag.Bool("no-init", false, "skip replacing the session with the built-in dataset first")
	flag.Parse()
	if *concurrency < 1 || *writePct < 0 || *writePct > 100 {
		flag.Usage()
		os.Exit(2)
	}
	endpoints := strings.Split(*addr, ",")

	if !*noInit {
		c := server.NewFailoverClient(endpoints, *sessionName)
		if _, err := c.Load(initData, false); err != nil {
			fmt.Fprintln(os.Stderr, "incdbload: init load:", err)
			os.Exit(1)
		}
	}

	results := make([][]opResult, *concurrency)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a client: its own consistency token, so its
			// reads are monotonic, and its own failover state.
			c := server.NewFailoverClient(endpoints, *sessionName)
			var ops []opResult
			for i := 0; time.Now().Before(deadline); i++ {
				// Deterministic blend, no RNG: exactly write-pct of every
				// 100 consecutive operations are writes, evenly spread
				// (multiples of writePct mod 100 land below writePct exactly
				// writePct times per cycle), staggered across workers.
				write := ((i+w)*(*writePct))%100 < *writePct && *writePct > 0
				start := time.Now()
				var err error
				if write {
					_, err = c.Load(fmt.Sprintf("row LoadRows k%d_%d v\n", w, i), true)
				} else {
					q := queries[(i+w)%len(queries)]
					_, err = c.Query(q.query, q.proc, false, 0)
				}
				ops = append(ops, opResult{write: write, d: time.Since(start), err: err != nil})
			}
			results[w] = ops
		}(w)
	}
	wg.Wait()

	var all []opResult
	for _, ops := range results {
		all = append(all, ops...)
	}
	report(os.Stdout, *duration, *concurrency, *writePct, all)
}

// latencyStats are the per-operation-kind numbers of the report.
type latencyStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	Errors int     `json:"errors"`
}

func stats(ops []opResult, write bool) latencyStats {
	var ds []time.Duration
	st := latencyStats{}
	for _, op := range ops {
		if op.write != write {
			continue
		}
		st.Count++
		if op.err {
			st.Errors++
			continue
		}
		ds = append(ds, op.d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(p float64) float64 {
		if len(ds) == 0 {
			return 0
		}
		i := int(p * float64(len(ds)-1))
		return float64(ds[i].Microseconds()) / 1000
	}
	st.P50Ms, st.P95Ms, st.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	return st
}

func report(out *os.File, d time.Duration, concurrency, writePct int, all []opResult) {
	errors := 0
	for _, op := range all {
		if op.err {
			errors++
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"duration_s":  d.Seconds(),
		"concurrency": concurrency,
		"write_pct":   writePct,
		"total_ops":   len(all),
		"rps":         float64(len(all)) / d.Seconds(),
		"errors":      errors,
		"query":       stats(all, false),
		"append":      stats(all, true),
	})
}
