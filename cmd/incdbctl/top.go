package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"incdb/internal/obs"
	"incdb/internal/server"
)

// runTop runs the top subcommand: one scrape of the server's /v1/metrics,
// rendered as an operator summary — query rates and latency quantiles by
// procedure, cache hit rates, WAL group-commit behaviour and replication
// lag. Rates are since server start (one scrape has no earlier point to
// diff against); quantiles are interpolated from the histogram buckets.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "incdbd base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	text, err := server.NewClient(*addr, "").Metrics()
	if err != nil {
		return err
	}
	samples, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		return fmt.Errorf("parsing %s/v1/metrics: %w", *addr, err)
	}
	printTop(*addr, samples)
	return nil
}

// sumWhere sums the values of every sample with the given name whose
// labels all match want (want values of "" match anything).
func sumWhere(samples []obs.Sample, name string, want map[string]string) float64 {
	total := 0.0
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if v != "" && s.Label(k) != v {
				ok = false
			}
		}
		if ok {
			total += s.Value
		}
	}
	return total
}

func gaugeOf(samples []obs.Sample, name string) float64 {
	return sumWhere(samples, name, nil)
}

func printTop(addr string, samples []obs.Sample) {
	role := "unknown"
	for _, s := range samples {
		if s.Name == "incdb_role" && s.Value == 1 {
			role = s.Label("role")
		}
	}
	uptime := gaugeOf(samples, "incdb_uptime_seconds")
	fmt.Printf("incdbd %s — %s, epoch %.0f, up %s\n",
		addr, role, gaugeOf(samples, "incdb_epoch"), fmtSeconds(uptime))
	fmt.Printf("in-flight %.0f/%.0f (%.0f waiting)%s\n",
		gaugeOf(samples, "incdb_inflight_requests"),
		gaugeOf(samples, "incdb_max_in_flight"),
		gaugeOf(samples, "incdb_admission_waiting"),
		errorSummary(samples))

	queries := sumWhere(samples, "incdb_queries_total", nil)
	qps := 0.0
	if uptime > 0 {
		qps = queries / uptime
	}
	fmt.Printf("queries %.0f total (%.2f/s avg, %.0f slow); worlds %.0f, frozen reuse %.0f\n",
		queries, qps, gaugeOf(samples, "incdb_slow_queries_total"),
		gaugeOf(samples, "incdb_worlds_enumerated_total"),
		gaugeOf(samples, "incdb_frozen_reuse_total"))

	printProcTable(samples, uptime)
	printCaches(samples)
	printWAL(samples)
	printReplication(samples)
}

func errorSummary(samples []obs.Sample) string {
	var parts []string
	for _, s := range samples {
		if s.Name == "incdb_errors_total" && s.Value > 0 {
			parts = append(parts, fmt.Sprintf("%s=%.0f", s.Label("code"), s.Value))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	return ", errors: " + strings.Join(parts, " ")
}

// printProcTable renders per-procedure counts and latency quantiles. The
// query count includes result-cache hits; the latency histogram only sees
// evaluated queries, so a proc answered mostly from cache shows few
// observations behind its quantiles.
type procStats struct {
	queries float64
	buckets obs.Buckets
}

func printProcTable(samples []obs.Sample, uptime float64) {
	procs := map[string]*procStats{}
	for _, s := range samples {
		switch s.Name {
		case "incdb_queries_total":
			p := procRow(procs, s.Label("proc"))
			p.queries += s.Value
		case "incdb_query_seconds_bucket":
			le, err := strconv.ParseFloat(s.Label("le"), 64)
			if s.Label("le") == "+Inf" {
				le, err = math.Inf(1), nil
			}
			if err == nil {
				procRow(procs, s.Label("proc")).buckets.AddBucket(le, s.Value)
			}
		}
	}
	if len(procs) == 0 {
		return
	}
	names := make([]string, 0, len(procs))
	for name := range procs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n%-14s %9s %9s %10s %10s\n", "proc", "queries", "qps", "p50", "p99")
	for _, name := range names {
		p := procs[name]
		qps := 0.0
		if uptime > 0 {
			qps = p.queries / uptime
		}
		fmt.Printf("%-14s %9.0f %9.2f %10s %10s\n", name, p.queries, qps,
			fmtQuantile(&p.buckets, 0.50), fmtQuantile(&p.buckets, 0.99))
	}
}

func procRow(procs map[string]*procStats, name string) *procStats {
	p, ok := procs[name]
	if !ok {
		p = &procStats{}
		procs[name] = p
	}
	return p
}

func printCaches(samples []obs.Sample) {
	prepHits := sumWhere(samples, "incdb_prep_cache_hits_total", nil)
	prepMisses := sumWhere(samples, "incdb_prep_cache_misses_total", nil)
	resHits := sumWhere(samples, "incdb_result_cache_hits_total", nil)
	resMisses := sumWhere(samples, "incdb_result_cache_misses_total", nil)
	fmt.Printf("\ncaches: plans %s (%.0f/%.0f), results %s (%.0f/%.0f)\n",
		hitRate(prepHits, prepMisses), prepHits, prepHits+prepMisses,
		hitRate(resHits, resMisses), resHits, resHits+resMisses)
}

func printWAL(samples []obs.Sample) {
	syncs := sumWhere(samples, "incdb_wal_fsync_seconds_count", nil)
	if syncs == 0 {
		return
	}
	var fsync obs.Buckets
	for _, s := range samples {
		if s.Name != "incdb_wal_fsync_seconds_bucket" {
			continue
		}
		le, err := strconv.ParseFloat(s.Label("le"), 64)
		if s.Label("le") == "+Inf" {
			le, err = math.Inf(1), nil
		}
		if err == nil {
			fsync.AddBucket(le, s.Value)
		}
	}
	perFsync := sumWhere(samples, "incdb_wal_records_per_fsync_sum", nil) /
		math.Max(1, sumWhere(samples, "incdb_wal_records_per_fsync_count", nil))
	fmt.Printf("wal: %.0f fsyncs, %.1f records/fsync, fsync p99 %s\n",
		syncs, perFsync, fmtQuantile(&fsync, 0.99))
}

func printReplication(samples []obs.Sample) {
	type lag struct{ applied, lagSeq, since float64 }
	sessions := map[string]*lag{}
	get := func(name string) *lag {
		l, ok := sessions[name]
		if !ok {
			l = &lag{}
			sessions[name] = l
		}
		return l
	}
	for _, s := range samples {
		switch s.Name {
		case "incdb_replica_applied_seq":
			get(s.Label("session")).applied = s.Value
		case "incdb_replica_lag_seq":
			get(s.Label("session")).lagSeq = s.Value
		case "incdb_replica_seconds_since_apply":
			get(s.Label("session")).since = s.Value
		}
	}
	if len(sessions) == 0 {
		return
	}
	names := make([]string, 0, len(sessions))
	for name := range sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("replication:")
	for _, name := range names {
		l := sessions[name]
		fmt.Printf("  %s: applied seq %.0f, lag %.0f record(s), %s since last apply\n",
			name, l.applied, l.lagSeq, fmtSeconds(l.since))
	}
}

func hitRate(hits, misses float64) string {
	if hits+misses == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%% hit", 100*hits/(hits+misses))
}

func fmtQuantile(b *obs.Buckets, q float64) string {
	v := b.Quantile(q)
	if math.IsNaN(v) {
		return "-"
	}
	return fmtSeconds(v)
}

func fmtSeconds(v float64) string {
	switch {
	case v < 0.001:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	case v < 120:
		return fmt.Sprintf("%.1fs", v)
	default:
		return fmt.Sprintf("%.0fm%02.0fs", math.Floor(v/60), math.Mod(v, 60))
	}
}
