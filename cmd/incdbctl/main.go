// Command incdbctl evaluates a relational algebra query over an incomplete
// database stored in the raparse text format, under any of the evaluation
// procedures the library implements:
//
//	incdbctl -db data.idb -mode sql    "proj(0, sel(not(in(0, proj(1, Payments))), Orders))"
//	incdbctl -db data.idb -mode cert   "minus(proj(0, Customers), proj(0, Payments))"
//	incdbctl -db data.idb -mode plus   "..."   (the Q⁺ rewriting of Figure 2(b))
//	incdbctl -db data.idb -mode report "..."   (all procedures side by side)
//
// Modes: sql, naive, cert (cert⊥), inter (cert∩), plus, poss, qt, qf,
// ctable-eager|semi|lazy|aware, report.
//
// The explain subcommand prints the optimized logical expression and the
// compiled physical plan (with the subplans frozen across valuations
// marked) instead of evaluating; -format json emits the same structured
// rendering the incdbd server's /v1/explain endpoint returns:
//
//	incdbctl explain -db data.idb [-sql] [-bag] [-analyze] [-format text|json] "minus(proj(0, Customers), proj(0, Payments))"
//
// With -analyze the plan is also executed once with per-node tracing, so
// every node shows its actual row count, batch count and wall time next to
// the optimizer's estimates (EXPLAIN ANALYZE). The top subcommand scrapes
// a server's /v1/metrics and prints an operator summary (query rates and
// latency quantiles by procedure, cache hit rates, replication lag):
//
//	incdbctl top -addr http://localhost:8080
//
// The trace subcommand reads a server's distributed traces (GET
// /v1/traces): without an ID it lists recent root spans, with one it
// renders that trace's span tree with durations and attributes — run it
// against the primary and each replica to see both sides of a
// replicated write:
//
//	incdbctl trace -addr http://localhost:8080
//	incdbctl trace -addr http://localhost:8080 4bf92f3577b34da6a3ce929d0e0e4736
//
// The client subcommand speaks the incdbd HTTP/JSON protocol — one-shot or
// as a REPL over a named server-side session (see runClient). -addr takes
// a comma-separated endpoint list; with more than one the client is
// failover-aware (retries retryable errors, re-discovers the writable
// primary by role/epoch):
//
//	incdbctl client -addr http://localhost:8080 -session demo load data.idb
//	incdbctl client -addr http://localhost:8080 -session demo cert "minus(proj(0, Customers), proj(0, Payments))"
//	incdbctl client -addr http://localhost:8080,http://localhost:8081 -session demo   (REPL, failover-aware)
//
// The promote subcommand flips a caught-up follower into the writable
// primary at epoch+1 (see the README failover runbook):
//
//	incdbctl promote -addr http://localhost:8081 [-force]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/core"
	"incdb/internal/ctable"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := runExplain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "incdbctl explain:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "client" {
		if err := runClient(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "incdbctl client:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "promote" {
		if err := runPromote(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "incdbctl promote:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "incdbctl top:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "incdbctl trace:", err)
			os.Exit(1)
		}
		return
	}
	dbPath := flag.String("db", "", "database file (raparse format)")
	mode := flag.String("mode", "report", "evaluation mode")
	maxWorlds := flag.Int("maxworlds", 0, "certainty oracle world bound (0 = default)")
	workers := flag.Int("workers", 0, "worker goroutines for the oracles (0 = one per CPU, 1 = serial)")
	flag.Parse()
	if *dbPath == "" || flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dbPath, *mode, flag.Arg(0), *maxWorlds, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "incdbctl:", err)
		os.Exit(1)
	}
}

// runExplain parses `explain` flags and prints the plan for the query —
// as text, or with -format json as the structured plan.Describe rendering
// the server's /v1/explain endpoint returns (one rendering path for both).
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file (raparse format)")
	sql := fs.Bool("sql", false, "plan for SQL three-valued evaluation instead of naive")
	bag := fs.Bool("bag", false, "plan under bag semantics")
	analyze := fs.Bool("analyze", false, "execute the plan once and show actual rows and wall time per node")
	format := fs.String("format", "text", "output format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := raparse.ParseDatabase(f)
	if err != nil {
		return err
	}
	q, err := raparse.ParseQuery(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := algebra.Validate(q, db); err != nil {
		return err
	}
	mode := algebra.ModeNaive
	if *sql {
		mode = algebra.ModeSQL
	}
	var info *plan.ExplainInfo
	if *analyze {
		info = plan.DescribeAnalyze(q, db, mode, *bag, db, nil)
	} else {
		info = plan.Describe(q, db, mode, *bag, db)
	}
	switch *format {
	case "text":
		fmt.Print(info.Text())
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	return nil
}

func run(dbPath, mode, querySrc string, maxWorlds, workers int) error {
	f, err := os.Open(dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := raparse.ParseDatabase(f)
	if err != nil {
		return err
	}
	q, err := raparse.ParseQuery(querySrc)
	if err != nil {
		return err
	}
	if err := algebra.Validate(q, db); err != nil {
		return err
	}
	opts := certain.Options{MaxWorlds: maxWorlds, Workers: workers}
	eng := engine.Options{Workers: workers}

	show := func(name string, r *relation.Relation, err error) {
		switch {
		case err != nil:
			fmt.Printf("%-8s error: %v\n", name, err)
		case r == nil:
			fmt.Printf("%-8s (not applicable: outside the Figure 2 fragment)\n", name)
		default:
			fmt.Printf("%-8s %s\n", name, r.Rename(name))
		}
	}

	switch mode {
	case "sql":
		show("sql", core.SQL(db, q), nil)
	case "naive":
		show("naive", core.Naive(db, q), nil)
	case "cert":
		r, err := core.CertainWithNulls(db, q, opts)
		show("cert⊥", r, err)
	case "inter":
		r, err := core.CertainIntersection(db, q, opts)
		show("cert∩", r, err)
	case "plus":
		r, err := core.ApproxPlus(db, q)
		show("Q+", r, err)
	case "poss":
		r, err := core.ApproxPossible(db, q)
		show("Q?", r, err)
	case "qt", "qf":
		qt, qf, err := core.ApproxTrueFalse(db, q)
		if err != nil {
			return err
		}
		if mode == "qt" {
			show("Qt", qt, nil)
		} else {
			show("Qf", qf, nil)
		}
	case "ctable-eager", "ctable-semi", "ctable-lazy", "ctable-aware":
		strat := map[string]ctable.Strategy{
			"ctable-eager": ctable.Eager,
			"ctable-semi":  ctable.SemiEager,
			"ctable-lazy":  ctable.Lazy,
			"ctable-aware": ctable.Aware,
		}[mode]
		cpart, ppart, err := core.CTableAnswersWith(db, q, strat, eng)
		if err != nil {
			return err
		}
		show("certain", cpart, nil)
		show("possible", ppart, nil)
	case "report":
		rep := core.Analyze(db, q, opts)
		show("sql", rep.SQLAnswers, nil)
		show("naive", rep.NaiveAnswers, nil)
		show("Q+", rep.Plus, nil)
		show("Q?", rep.Poss, nil)
		show("cert⊥", rep.Certain, rep.CertainErr)
		if rep.Certain != nil {
			fmt.Printf("SQL false positives: %v\n", rep.FalsePositives)
			fmt.Printf("SQL false negatives: %v\n", rep.FalseNegatives)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}
