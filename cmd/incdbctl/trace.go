package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"incdb/internal/obs"
	"incdb/internal/server"
)

// runTrace runs the trace subcommand: without an argument it lists the
// server's recently finished root spans (GET /v1/traces); with a trace ID
// it fetches that trace's spans (GET /v1/traces/{id}) and renders them as
// an indented tree with durations and attributes. Each server keeps its
// own span ring, so a replicated write is inspected by running the same
// ID against the primary (root, wal.commit, wal.fsync) and each replica
// (replica.apply).
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "incdbd base URL")
	limit := fs.Int("limit", 20, "root spans to list (without a trace ID)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		fs.Usage()
		os.Exit(2)
	}
	c := server.NewClient(*addr, "")
	if fs.NArg() == 0 {
		resp, err := c.Traces(*limit)
		if err != nil {
			return err
		}
		if len(resp.Spans) == 0 {
			fmt.Println("no traces recorded (is tracing enabled? see -trace-sample)")
			return nil
		}
		fmt.Printf("%-32s  %10s  %-6s  %s\n", "TRACE", "DURATION", "STATUS", "NAME")
		for _, sp := range resp.Spans {
			status := "ok"
			if sp.Error != "" {
				status = "error"
			}
			fmt.Printf("%-32s  %10s  %-6s  %s\n",
				sp.TraceID, fmtSeconds(float64(sp.DurationUs)/1e6), status, sp.Name)
		}
		return nil
	}
	resp, err := c.Trace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("trace %s  (%d spans on %s)\n", resp.TraceID, len(resp.Spans), *addr)
	printSpanTree(resp.Spans)
	return nil
}

// printSpanTree renders spans as an indented tree: children under their
// parent ordered by start time, spans whose parent is absent from this
// server's ring (remote parents, evicted spans) at top level.
func printSpanTree(spans []obs.SpanData) {
	children := map[string][]obs.SpanData{}
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	var roots []obs.SpanData
	for _, sp := range spans {
		if sp.ParentID != "" && ids[sp.ParentID] {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []obs.SpanData) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	var render func(sp obs.SpanData, depth int)
	render = func(sp obs.SpanData, depth int) {
		printSpanLine(sp, depth)
		kids := children[sp.SpanID]
		byStart(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, sp := range roots {
		render(sp, 0)
	}
}

func printSpanLine(sp obs.SpanData, depth int) {
	name := sp.Name
	if sp.Remote {
		// The parent span lives on another server (or in the client).
		name += " ←remote"
	}
	line := fmt.Sprintf("%s%-*s %10s", strings.Repeat("  ", depth), 40-2*depth, name,
		fmtSeconds(time.Duration(sp.DurationUs*1000).Seconds()))
	if sp.Error != "" {
		line += "  error=" + sp.Error
	}
	if len(sp.Attrs) > 0 {
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+sp.Attrs[k])
		}
		line += "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Println(line)
}
