package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"incdb/internal/api"
	"incdb/internal/server"
)

const clientHelp = `commands:
  load <file>              replace the session database from a file
  append <file>            append a file's rows into the session database
  <proc> <query>           evaluate (procs: sql naive cert inter plus poss ctable-*)
  <query>                  evaluate under sql
  explain [sql] [bag] [analyze] <query>   show the plan (analyze: run it, show actual rows and time per node)
  status                   server sessions, versions, caches, durability, replication
  vector                   print the consistency token (for -read-after elsewhere)
  snapshot [file]          export a consistent session snapshot (stdout or file)
  restore <file>           bootstrap the session from a snapshot export
  promote [force]          promote this follower to writable primary at epoch+1
  help                     this text
  quit                     leave the REPL`

// runClient runs the client subcommand: with positional arguments it
// executes them as one command line; without, it drops into a REPL. Both
// speak the incdbd HTTP/JSON protocol through server.Client, so the CLI
// and the server share one set of wire types (incdb/internal/api).
func runClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "incdbd base URL(s), comma-separated; more than one makes the client failover-aware")
	session := fs.String("session", "default", "server-side session name")
	bag := fs.Bool("bag", false, "bag semantics for sql/naive queries")
	maxWorlds := fs.Int("maxworlds", 0, "certainty oracle world bound (0 = server default)")
	readAfter := fs.String("read-after", "", `consistency token to read at least as new as (JSON, e.g. '{"A":2}'; print one with the vector command)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := server.NewFailoverClient(strings.Split(*addr, ","), *session)
	if *readAfter != "" {
		var vec map[string]uint64
		if err := json.Unmarshal([]byte(*readAfter), &vec); err != nil {
			return fmt.Errorf("bad -read-after (want JSON like '{\"A\":2}'): %w", err)
		}
		c.SetVector(vec)
	}
	opts := queryOpts{bag: *bag, maxWorlds: *maxWorlds}
	if fs.NArg() > 0 {
		return clientLine(c, strings.Join(fs.Args(), " "), opts)
	}

	fmt.Printf("incdbctl REPL — server %s, session %q (help for commands)\n", *addr, *session)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("incdb> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := clientLine(c, line, opts); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

// runPromote runs the promote subcommand: flip the follower at -addr into
// the writable primary at epoch+1. The server refuses unless its
// replication tail is drained; -force skips the check for disaster
// recovery (the old primary's unshipped tail is accepted as lost).
func runPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "incdbd base URL of the follower to promote")
	force := fs.Bool("force", false, "promote even if the replication tail is not drained")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}
	pr, err := server.NewClient(*addr, "").Promote(*force)
	if err != nil {
		return err
	}
	printPromotion(pr)
	return nil
}

type queryOpts struct {
	bag       bool
	maxWorlds int
}

// clientLine executes one command line against the server.
func clientLine(c *server.Client, line string, opts queryOpts) error {
	head, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch head {
	case "help":
		fmt.Println(clientHelp)
		return nil
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		printStatus(st)
		return nil
	case "vector":
		// The client's consistency token: every version vector the server
		// has reported, merged. Feed it to another incdbctl invocation (or
		// any client) via -read-after to make its reads at least this new —
		// monotonic reads across processes and replicas.
		data, err := json.Marshal(c.Vector())
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	case "load", "append":
		if rest == "" {
			return fmt.Errorf("usage: %s <file>", head)
		}
		lr, err := c.LoadFile(strings.Trim(rest, "'\""), head == "append")
		if err != nil {
			return err
		}
		for _, rel := range lr.Relations {
			fmt.Printf("%s/%d: %d rows (version %d)\n", rel.Name, rel.Arity, rel.Rows, rel.Version)
		}
		return nil
	case "snapshot":
		data, err := c.Snapshot()
		if err != nil {
			return err
		}
		if rest == "" {
			fmt.Print(data)
			return nil
		}
		path := strings.Trim(rest, "'\"")
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), path)
		return nil
	case "promote":
		if rest != "" && rest != "force" {
			return fmt.Errorf("usage: promote [force]")
		}
		pr, err := c.Promote(rest == "force")
		if err != nil {
			return err
		}
		printPromotion(pr)
		return nil
	case "restore":
		if rest == "" {
			return fmt.Errorf("usage: restore <file>")
		}
		data, err := os.ReadFile(strings.Trim(rest, "'\""))
		if err != nil {
			return err
		}
		lr, err := c.Restore(string(data))
		if err != nil {
			return err
		}
		for _, rel := range lr.Relations {
			fmt.Printf("%s/%d: %d rows (version %d)\n", rel.Name, rel.Arity, rel.Rows, rel.Version)
		}
		return nil
	case "explain":
		sql, bag, analyze := false, false, false
		for {
			word, more, _ := strings.Cut(rest, " ")
			if word == "sql" {
				sql, rest = true, strings.TrimSpace(more)
			} else if word == "bag" {
				bag, rest = true, strings.TrimSpace(more)
			} else if word == "analyze" {
				analyze, rest = true, strings.TrimSpace(more)
			} else {
				break
			}
		}
		if rest == "" {
			return fmt.Errorf("usage: explain [sql] [bag] [analyze] <query>")
		}
		er, err := c.ExplainAnalyze(rest, sql, bag, analyze)
		if err != nil {
			return err
		}
		fmt.Print(er.Text)
		return nil
	case "query":
		// "query <proc> <expr>" — the explicit one-shot form.
		head, rest, _ = strings.Cut(rest, " ")
		rest = strings.TrimSpace(rest)
		fallthrough
	default:
		// A line starting with an evaluation procedure the server accepts
		// (server.Procs — one source for the server dispatch and the CLI)
		// evaluates the rest of the line under it.
		proc, query := head, rest
		if !server.KnownProc(proc) {
			// A bare query evaluates under sql.
			proc, query = "sql", strings.TrimSpace(line)
			if strings.HasPrefix(query, "query ") {
				query = strings.TrimSpace(strings.TrimPrefix(query, "query "))
			}
		}
		if query == "" {
			return fmt.Errorf("empty query (try: cert minus(proj(0, A), B))")
		}
		qr, err := c.Query(query, proc, opts.bag, opts.maxWorlds)
		if err != nil {
			return err
		}
		printResults(qr)
		return nil
	}
}

func printResults(qr *api.QueryResponse) {
	for _, rs := range qr.Results {
		fmt.Printf("%s (%d rows, %.2fms)\n", rs.Name, len(rs.Rows), qr.ElapsedMs)
		for i, row := range rs.Rows {
			line := "  (" + strings.Join(row, ", ") + ")"
			if rs.Mults != nil && rs.Mults[i] != 1 {
				line += fmt.Sprintf(" ×%d", rs.Mults[i])
			}
			fmt.Println(line)
		}
	}
}

func printPromotion(pr *api.PromoteResponse) {
	fmt.Printf("promoted to primary at epoch %d\n", pr.Epoch)
	for sess, seq := range pr.Sessions {
		fmt.Printf("  session %q: epoch record at seq %d\n", sess, seq)
	}
}

func printStatus(st *api.StatusResponse) {
	fmt.Printf("uptime %.1fs, workers %d, in-flight %d/%d, %d session(s)\n",
		st.UptimeSeconds, st.Workers, st.InFlight, st.MaxInFlight, len(st.Sessions))
	fmt.Printf("role %s, epoch %d\n", st.Role, st.Epoch)
	if st.DataDir != "" {
		fmt.Printf("durable data dir: %s\n", st.DataDir)
	}
	if r := st.Replication; r != nil {
		fmt.Printf("replica of %s:\n", r.Primary)
		for _, rs := range r.Sessions {
			fmt.Printf("  session %q: %s, applied seq %d (%d frames, %d bootstraps)",
				rs.Session, rs.State, rs.AppliedSeq, rs.Frames, rs.Bootstraps)
			if rs.LastError != "" {
				fmt.Printf(", last error: %s", rs.LastError)
			}
			fmt.Println()
		}
	}
	for _, s := range st.Sessions {
		fmt.Printf("session %q: %d queries, cache %d entries (%d hits, %d misses, %d invalidations)\n",
			s.Name, s.Queries, s.Cache.Entries, s.Cache.Hits, s.Cache.Misses, s.Cache.Invalidations)
		fmt.Printf("  results %d entries (%d hits, %d misses)\n",
			s.ResultCache.Entries, s.ResultCache.Hits, s.ResultCache.Misses)
		if d := s.Durability; d != nil {
			fmt.Printf("  wal %d bytes, %d records, seq %d durable %d, %d fsyncs (snapshot seq %d",
				d.WalBytes, d.WalRecords, d.Seq, d.DurableSeq, d.Syncs, d.SnapshotSeq)
			if d.LastSnapshot != "" {
				fmt.Printf(" at %s", d.LastSnapshot)
			}
			fmt.Print(")")
			if d.LastSync != "" {
				fmt.Printf(", last sync %s", d.LastSync)
			}
			fmt.Println()
		}
		for _, rel := range s.Relations {
			fmt.Printf("  %s/%d: %d rows (version %d)\n", rel.Name, rel.Arity, rel.Rows, rel.Version)
		}
	}
}
