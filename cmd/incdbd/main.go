// Command incdbd serves incomplete databases over HTTP/JSON: named,
// session-scoped databases with a version-guarded prepared-plan cache per
// session, so repeated queries against a stable database reuse compiled and
// prepared plans across requests (see internal/server).
//
//	incdbd -addr :8080
//	incdbd -addr :8080 -load examples/data/orders.idb -session default
//	incdbd -addr :8080 -data-dir /var/lib/incdbd
//
// With -data-dir the server is durable (see internal/store): every load is
// written ahead to a per-session log and fsync'd before it is
// acknowledged, snapshots compact the log, and a restart — graceful or
// SIGKILL — recovers every session to the last acknowledged load, version
// vectors, null identities and warm prepared plans included.
//
// Endpoints: POST /v1/load, POST /v1/query, POST /v1/explain,
// GET /v1/status, GET /v1/snapshot. The incdbctl client subcommand (and
// its REPL) speaks the same protocol:
//
//	incdbctl client -addr http://localhost:8080 -session default
//
// The server shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get the grace period to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incdb/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "oracle worker goroutines (0 = one per CPU, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent evaluations (0 = 2x workers)")
	maxWorlds := flag.Int("maxworlds", 0, "default certainty oracle world bound (0 = library default)")
	cacheCap := flag.Int("cache-cap", 0, "prepared-plan cache entries per session (0 = default)")
	resultCacheCap := flag.Int("result-cache-cap", 0, "oracle result cache entries per session (0 = default)")
	dataDir := flag.String("data-dir", "", "data directory for durable sessions (WAL + snapshots); empty = memory-only")
	snapshotBytes := flag.Int64("snapshot-bytes", 0, "WAL size triggering a compacting snapshot (0 = default)")
	grace := flag.Duration("grace", 5*time.Second, "graceful shutdown window")
	load := flag.String("load", "", "database file (raparse format) to preload")
	session := flag.String("session", "default", "session name for -load")
	flag.Parse()

	srv := server.New(server.Options{
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		MaxWorlds:      *maxWorlds,
		CacheCap:       *cacheCap,
		ResultCacheCap: *resultCacheCap,
		SnapshotBytes:  *snapshotBytes,
		ShutdownGrace:  *grace,
	})
	if *dataDir != "" {
		if err := srv.EnableDurability(*dataDir); err != nil {
			log.Fatalf("incdbd: %v", err)
		}
		log.Printf("durable sessions in %s", *dataDir)
	}
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatalf("incdbd: %v", err)
		}
		rels, err := srv.Preload(*session, string(data))
		if err != nil {
			log.Fatalf("incdbd: preload %s: %v", *load, err)
		}
		log.Printf("loaded %s into session %q (%d relations)", *load, *session, rels)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("incdbd listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "incdbd:", err)
		os.Exit(1)
	}
	srv.Close()
	log.Printf("incdbd: shut down cleanly")
}
