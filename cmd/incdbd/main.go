// Command incdbd serves incomplete databases over HTTP/JSON: named,
// session-scoped databases with a version-guarded prepared-plan cache per
// session, so repeated queries against a stable database reuse compiled and
// prepared plans across requests (see internal/server).
//
//	incdbd -addr :8080
//	incdbd -addr :8080 -load examples/data/orders.idb -session default
//	incdbd -addr :8080 -data-dir /var/lib/incdbd
//	incdbd -addr :8081 -data-dir /var/lib/incdbd-replica -follow http://primary:8080
//
// With -data-dir the server is durable (see internal/store): every load is
// written ahead to a per-session log and fsync'd before it is acknowledged
// (concurrent loads group-commit, sharing fsyncs), snapshots compact the
// log, and a restart — graceful or SIGKILL — recovers every session to the
// last acknowledged load, version vectors, null identities and warm
// prepared plans included.
//
// With -follow the server is a read replica: it bootstraps every session
// from the primary's snapshot endpoint, tails the primary's WAL stream,
// and serves queries (rejecting loads with 403 read_only_replica). Query
// responses carry the session's version vector as a consistency token;
// -stale-wait bounds how long a replica holds a read whose token it does
// not yet cover before answering 412 stale_replica.
//
// Endpoints are session-scoped — POST /v1/sessions/{name}/load|query|explain,
// GET /v1/sessions/{name}/status|snapshot|wal — plus GET /v1/status and
// legacy flat routes (see internal/server). The incdbctl client subcommand
// (and its REPL) speaks the same protocol:
//
//	incdbctl client -addr http://localhost:8080 -session default
//
// The server shuts down gracefully on SIGINT/SIGTERM: new loads are
// refused (503 shutting_down), the listener closes, in-flight requests
// get the grace period to finish, and every durable session takes a
// final fsync before exit. -write-timeout bounds slow response writes
// (the replication WAL stream, which is long-lived by design, exempts
// itself).
//
// Failover: a follower is promoted to writable primary at epoch+1 with
// `incdbctl promote` (POST /v1/promote); a revived stale primary fences
// itself read-only on observing the higher epoch. GET /v1/healthz and
// GET /v1/readyz serve liveness/readiness probes.
//
// Observability: GET /v1/metrics serves the Prometheus text format (query
// latency and worlds-enumerated histograms, cache hit counters, WAL fsync
// and group-commit histograms, replication lag — see the README's
// Observability section). -slow-query logs evaluated queries over the
// threshold with their plan summary; -pprof-addr serves net/http/pprof on
// a separate listener; `incdbctl top` renders the metrics as a one-shot
// summary.
//
// Tracing: every request gets a distributed-trace span tree — client →
// admission → evaluation → WAL fsync, linked across the replication
// stream to each follower's apply span. An incoming W3C traceparent
// header joins the caller's trace; -trace-sample sets the head-sampling
// rate for fresh traces (1.0 by default — every trace is kept in the
// bounded in-memory ring; 0 disables tracing entirely). Slow and failed
// requests are always kept. GET /v1/traces lists recent root spans,
// GET /v1/traces/{id} returns one trace's spans, and `incdbctl trace`
// renders the tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"incdb/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "oracle worker goroutines (0 = one per CPU, 1 = serial)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent evaluations (0 = 2x workers)")
	maxWorlds := flag.Int("maxworlds", 0, "default certainty oracle world bound (0 = library default)")
	cacheCap := flag.Int("cache-cap", 0, "prepared-plan cache entries per session (0 = default)")
	resultCacheCap := flag.Int("result-cache-cap", 0, "oracle result cache entries per session (0 = default)")
	dataDir := flag.String("data-dir", "", "data directory for durable sessions (WAL + snapshots); empty = memory-only")
	snapshotBytes := flag.Int64("snapshot-bytes", 0, "WAL size triggering a compacting snapshot (0 = default)")
	follow := flag.String("follow", "", "primary URL to follow as a read replica (e.g. http://primary:8080)")
	staleWait := flag.Duration("stale-wait", 0, "how long a replica holds a read for its consistency token (0 = 2s)")
	writeTimeout := flag.Duration("write-timeout", 0, "HTTP response write deadline (0 = none; WAL streaming is exempt)")
	slowQuery := flag.Duration("slow-query", 0, "log evaluated queries slower than this (0 = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	traceSample := flag.Float64("trace-sample", 1.0, "distributed-trace head-sampling rate in [0,1] (0 = tracing off; slow/failed requests always kept)")
	traceCap := flag.Int("trace-cap", 0, "in-memory span ring capacity for /v1/traces (0 = default)")
	grace := flag.Duration("grace", 5*time.Second, "graceful shutdown window")
	load := flag.String("load", "", "database file (raparse format) to preload")
	session := flag.String("session", "default", "session name for -load")
	flag.Parse()

	srv := server.New(server.Options{
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		MaxWorlds:      *maxWorlds,
		CacheCap:       *cacheCap,
		ResultCacheCap: *resultCacheCap,
		SnapshotBytes:  *snapshotBytes,
		StaleWait:      *staleWait,
		WriteTimeout:   *writeTimeout,
		SlowQuery:      *slowQuery,
		ShutdownGrace:  *grace,
		TraceSample:    *traceSample,
		TraceCap:       *traceCap,
	})
	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the service address.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("incdbd: pprof: %v", err)
			}
		}()
	}
	if *dataDir != "" {
		if err := srv.EnableDurability(*dataDir); err != nil {
			log.Fatalf("incdbd: %v", err)
		}
		log.Printf("durable sessions in %s", *dataDir)
	}
	if *load != "" {
		if *follow != "" {
			log.Fatalf("incdbd: -load conflicts with -follow (a replica only accepts data from its primary)")
		}
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatalf("incdbd: %v", err)
		}
		rels, err := srv.Preload(*session, string(data))
		if err != nil {
			log.Fatalf("incdbd: preload %s: %v", *load, err)
		}
		log.Printf("loaded %s into session %q (%d relations)", *load, *session, rels)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *follow != "" {
		srv.StartFollow(ctx, *follow)
		log.Printf("following primary %s (read-only replica)", *follow)
	}
	log.Printf("incdbd listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "incdbd:", err)
		os.Exit(1)
	}
	srv.Close()
	log.Printf("incdbd: shut down cleanly")
}
