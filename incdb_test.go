package incdb_test

import (
	"testing"

	"incdb"
)

// The facade is exercised through the examples as well; these tests pin
// the public API surface used in README's quickstart.
func TestFacadeQuickstart(t *testing.T) {
	db := incdb.NewDatabase()
	items := incdb.NewRelation("Items", "sku", "warehouse")
	items.Add(incdb.Consts("tv", "berlin"))
	items.Add(incdb.Consts("radio", "paris"))
	items.Add(incdb.T(incdb.Const("laptop"), db.FreshNull()))
	db.Add(items)

	q := incdb.Proj(incdb.Sel(incdb.R("Items"),
		incdb.CNeqC(1, incdb.Const("berlin"))), 0)

	if got := incdb.SQL(db, q); got.Len() != 1 || !got.Contains(incdb.Consts("radio")) {
		t.Fatalf("SQL = %v", got)
	}
	if got := incdb.Naive(db, q); got.Len() != 2 {
		t.Fatalf("Naive = %v", got)
	}
	cert, err := incdb.CertainWithNulls(db, q, incdb.CertainOptions{})
	if err != nil || cert.Len() != 1 {
		t.Fatalf("cert⊥ = %v, %v", cert, err)
	}
	plus, err := incdb.ApproxPlus(db, q)
	if err != nil || !plus.SubsetOfSet(cert) {
		t.Fatalf("Q+ = %v, %v", plus, err)
	}
	poss, err := incdb.ApproxPossible(db, q)
	if err != nil || poss.Len() != 2 {
		t.Fatalf("Q? = %v, %v", poss, err)
	}
	mu, err := incdb.Mu(db, q, nil, incdb.Consts("laptop"))
	if err != nil || mu.RatString() != "1" {
		t.Fatalf("µ = %v, %v", mu, err)
	}
	ok, err := incdb.AlmostCertainlyTrue(db, q, incdb.Consts("laptop"))
	if err != nil || !ok {
		t.Fatalf("AlmostCertainlyTrue = %v, %v", ok, err)
	}
	for _, s := range []incdb.Strategy{incdb.Eager, incdb.SemiEager, incdb.Lazy, incdb.Aware} {
		cpart, ppart, err := incdb.CTableAnswers(db, q, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !cpart.SubsetOfSet(cert) || !poss.SubsetOfSet(ppart) && !ppart.SubsetOfSet(poss) {
			t.Fatalf("%v: ctable answers inconsistent", s)
		}
	}
	rep := incdb.Analyze(db, q, incdb.CertainOptions{})
	if len(rep.FalseNegatives) != 0 || len(rep.FalsePositives) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFacadeCodd(t *testing.T) {
	db := incdb.NewDatabase()
	r := incdb.NewRelation("R", "a", "b")
	n := db.FreshNull()
	r.Add(incdb.T(n, n)) // repeated marked null
	db.Add(r)
	cd := incdb.Codd(db)
	for _, tp := range cd.MustRelation("R").Tuples() {
		if tp[0] == tp[1] {
			t.Fatalf("Codd transform must break repeated nulls: %v", tp)
		}
	}
}
