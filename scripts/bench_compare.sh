#!/usr/bin/env sh
# bench_compare.sh — measure the working tree against a base commit and
# report the delta via benchstat when available.
#
# Usage:
#   scripts/bench_compare.sh [base-ref]
#
# Environment:
#   BENCH        benchmark regexp          (default: a representative set)
#   BENCHTIME    go test -benchtime value  (default: 0.2s)
#   COUNT        go test -count value      (default: 3)
#   OUT          output directory          (default: bench-compare-out)
#   PRNUM        PR number for the JSON report (default: 3)
#   PRTITLE      PR title for the JSON report
#
# Besides the benchstat (or raw) text comparison, the run emits
# BENCH_PR$PRNUM.json — median-of-$COUNT per benchmark, same schema as the
# committed BENCH_PR2.json — via scripts/benchjson; CI uploads it as an
# artifact alongside the text report.
#
# The base ref defaults to HEAD~1 (the previous commit), checked out into a
# temporary git worktree so the working tree is never disturbed. Exit code
# is nonzero when the measurement itself fails OR when a gated oracle
# microbenchmark (E1/E11) regresses more than GATE_PCT percent — the
# benchjson gate enforces this from the same medians the JSON reports, so
# it works offline; benchstat output, when available, is informational.
set -eu

BASE_REF="${1:-HEAD~1}"
BENCH="${BENCH:-BenchmarkOperatorJoin|BenchmarkE5CTableStrategies|BenchmarkE1Figure1|BenchmarkE11NaiveEval|BenchmarkOperatorDifference|BenchmarkOperatorAntiUnify|BenchmarkTPCHMultiJoin}"
BENCHTIME="${BENCHTIME:-0.2s}"
COUNT="${COUNT:-3}"
OUT="${OUT:-bench-compare-out}"
PRNUM="${PRNUM:-10}"
PRTITLE="${PRTITLE:-Distributed request tracing across client → primary → WAL → replica}"
GATE="${GATE:-BenchmarkE1Figure1|BenchmarkE11NaiveEval}"
GATE_PCT="${GATE_PCT:-25}"

mkdir -p "$OUT"

run_bench() {
    dir="$1"
    out="$2"
    (cd "$dir" && go test -run='^$' -bench="$BENCH" -benchmem \
        -benchtime="$BENCHTIME" -count="$COUNT" .) >"$out" 2>&1 || {
        echo "benchmark run failed in $dir:" >&2
        cat "$out" >&2
        return 1
    }
}

echo "== measuring working tree (new) =="
run_bench . "$OUT/new.txt"

if ! git rev-parse --verify --quiet "$BASE_REF" >/dev/null; then
    echo "base ref $BASE_REF does not exist (first commit?); nothing to compare" >&2
    exit 0
fi

WORKTREE="$(mktemp -d)"
trap 'git worktree remove --force "$WORKTREE" >/dev/null 2>&1 || true; rm -rf "$WORKTREE"' EXIT
git worktree add --detach "$WORKTREE" "$BASE_REF" >/dev/null

echo "== measuring $BASE_REF (old) =="
run_bench "$WORKTREE" "$OUT/old.txt"

echo "== comparison =="
if command -v benchstat >/dev/null 2>&1; then
    benchstat "$OUT/old.txt" "$OUT/new.txt" | tee "$OUT/benchstat.txt"
elif go run golang.org/x/perf/cmd/benchstat@latest "$OUT/old.txt" "$OUT/new.txt" \
        >"$OUT/benchstat.txt" 2>/dev/null; then
    cat "$OUT/benchstat.txt"
else
    # Offline fallback: interleave the raw measurements per benchmark.
    echo "benchstat unavailable (not installed, no network); raw numbers:" \
        | tee "$OUT/benchstat.txt"
    {
        echo "--- old ($BASE_REF) ---"
        grep -E '^Benchmark' "$OUT/old.txt" || true
        echo "--- new (working tree) ---"
        grep -E '^Benchmark' "$OUT/new.txt" || true
    } | tee -a "$OUT/benchstat.txt"
fi

echo "== JSON report and regression gate =="
go run ./scripts/benchjson \
    -old "$OUT/old.txt" -new "$OUT/new.txt" \
    -out "BENCH_PR$PRNUM.json" -pr "$PRNUM" -title "$PRTITLE" \
    -method "go test -run='^\$' -bench='$BENCH' -benchmem -benchtime=$BENCHTIME -count=$COUNT; medians of $COUNT runs" \
    -before "$(git log -1 --format='%h (%s)' "$BASE_REF" | cut -c1-120)" \
    -gate "$GATE" -fail-over "$GATE_PCT"

echo "results in $OUT/ and BENCH_PR$PRNUM.json"
