#!/usr/bin/env sh
# bench_server.sh — measure incdbd's repeated-query latency with a warm
# versus cold prepared-plan cache (BENCH_PR4.json) and the durable-load
# group-commit concurrency curve (BENCH_PR6.json).
#
# The two sides of the PR4 comparison are the sub-benchmarks of
# BenchmarkServerQuery (internal/server/bench_test.go): cache=cold resets
# the session's prepared-plan cache before every request (the pre-PR
# behaviour of re-freezing every null-free subplan per oracle call),
# cache=warm reuses it. The suffixes are stripped so scripts/benchjson can
# pair the runs: "before" = cold, "after" = warm, so speedup_ns is the
# warm-over-cold win.
#
# The PR6 curve comes from BenchmarkDurableLoadConcurrency: acknowledged
# (fsync'd) appends per second against one session at 1, 4 and 16 HTTP
# clients. A fixed iteration count (DURABLE_BENCHTIME) keeps the database
# growth identical across concurrency levels so the runs are comparable.
#
# Environment: BENCHTIME (default 0.5s), DURABLE_BENCHTIME (default
# 1500x), COUNT (default 5), OUT (default bench-compare-out).
set -eu

BENCHTIME="${BENCHTIME:-0.5s}"
DURABLE_BENCHTIME="${DURABLE_BENCHTIME:-1500x}"
COUNT="${COUNT:-5}"
OUT="${OUT:-bench-compare-out}"
mkdir -p "$OUT"

echo "== measuring server warm/cold prepared-plan cache =="
go test -run '^$' -bench 'BenchmarkServerQuery/' -benchmem \
    -benchtime="$BENCHTIME" -count="$COUNT" ./internal/server >"$OUT/server.txt" 2>&1 || {
    cat "$OUT/server.txt" >&2
    exit 1
}

grep 'cache=cold' "$OUT/server.txt" | sed 's#/cache=cold##' >"$OUT/server-cold.txt"
grep 'cache=warm' "$OUT/server.txt" | sed 's#/cache=warm##' >"$OUT/server-warm.txt"

go run ./scripts/benchjson \
    -old "$OUT/server-cold.txt" -new "$OUT/server-warm.txt" \
    -out BENCH_PR4.json -pr 4 \
    -title "incdbd: concurrent query service with session-scoped databases and version-guarded prepared-plan reuse" \
    -method "go test -bench='BenchmarkServerQuery/' -benchmem -benchtime=$BENCHTIME -count=$COUNT ./internal/server; medians of $COUNT runs; before = cold prepared-plan cache (reset per request), after = warm (version-guarded reuse)" \
    -before "cold cache: session prepared-plan cache reset before every request"

echo "== measuring durable-load group-commit concurrency curve =="
go test -run '^$' -bench 'BenchmarkDurableLoadConcurrency/' \
    -benchtime="$DURABLE_BENCHTIME" -count="$COUNT" ./internal/server >"$OUT/durable.txt" 2>&1 || {
    cat "$OUT/durable.txt" >&2
    exit 1
}

# Median ns/op per concurrency level -> RPS curve + the 16-over-1 speedup
# the group commit buys (every append is individually acknowledged after
# its fsync, so scaling past 1 requires batched fsyncs).
awk -v method="go test -bench=BenchmarkDurableLoadConcurrency -benchtime=$DURABLE_BENCHTIME -count=$COUNT ./internal/server; median ns/op per concurrency level; every append fsync'd before its 200" '
/BenchmarkDurableLoadConcurrency\/clients=/ {
    split($1, parts, "=")
    c = parts[2]; sub(/-[0-9]+$/, "", c)
    n[c]++; v[c, n[c]] = $3
}
END {
    printf "{\n  \"pr\": 6,\n"
    printf "  \"title\": \"incdbd: WAL group commit — durable-load throughput vs client concurrency\",\n"
    printf "  \"method\": \"%s\",\n", method
    printf "  \"concurrency\": {\n"
    sep = ""
    for (ci = 1; ci <= 64; ci *= 2) {
        c = ci ""
        if (!(c in n)) continue
        m = n[c]
        for (i = 1; i <= m; i++)
            for (j = i + 1; j <= m; j++)
                if (v[c, j] + 0 < v[c, i] + 0) { t = v[c, i]; v[c, i] = v[c, j]; v[c, j] = t }
        med = (m % 2) ? v[c, (m + 1) / 2] : (v[c, m / 2] + v[c, m / 2 + 1]) / 2
        rps[c] = 1e9 / med
        printf "%s    \"%s\": {\"ns_per_op\": %.0f, \"rps\": %.0f}", sep, c, med, rps[c]
        sep = ",\n"
    }
    printf "\n  },\n"
    printf "  \"speedup_16_over_1\": %.2f\n}\n", rps["16"] / rps["1"]
}' "$OUT/durable.txt" >BENCH_PR6.json
cat BENCH_PR6.json

echo "results in $OUT/ and BENCH_PR4.json, BENCH_PR6.json"
