#!/usr/bin/env sh
# bench_server.sh — measure incdbd's repeated-query latency with a warm
# versus cold prepared-plan cache and emit BENCH_PR4.json.
#
# The two sides of the comparison are the sub-benchmarks of
# BenchmarkServerQuery (internal/server/bench_test.go): cache=cold resets
# the session's prepared-plan cache before every request (the pre-PR
# behaviour of re-freezing every null-free subplan per oracle call),
# cache=warm reuses it. The suffixes are stripped so scripts/benchjson can
# pair the runs: "before" = cold, "after" = warm, so speedup_ns is the
# warm-over-cold win.
#
# Environment: BENCHTIME (default 0.5s), COUNT (default 5),
# OUT (default bench-compare-out).
set -eu

BENCHTIME="${BENCHTIME:-0.5s}"
COUNT="${COUNT:-5}"
OUT="${OUT:-bench-compare-out}"
mkdir -p "$OUT"

echo "== measuring server warm/cold prepared-plan cache =="
go test -run '^$' -bench 'BenchmarkServerQuery/' -benchmem \
    -benchtime="$BENCHTIME" -count="$COUNT" ./internal/server >"$OUT/server.txt" 2>&1 || {
    cat "$OUT/server.txt" >&2
    exit 1
}

grep 'cache=cold' "$OUT/server.txt" | sed 's#/cache=cold##' >"$OUT/server-cold.txt"
grep 'cache=warm' "$OUT/server.txt" | sed 's#/cache=warm##' >"$OUT/server-warm.txt"

go run ./scripts/benchjson \
    -old "$OUT/server-cold.txt" -new "$OUT/server-warm.txt" \
    -out BENCH_PR4.json -pr 4 \
    -title "incdbd: concurrent query service with session-scoped databases and version-guarded prepared-plan reuse" \
    -method "go test -bench='BenchmarkServerQuery/' -benchmem -benchtime=$BENCHTIME -count=$COUNT ./internal/server; medians of $COUNT runs; before = cold prepared-plan cache (reset per request), after = warm (version-guarded reuse)" \
    -before "cold cache: session prepared-plan cache reset before every request"

echo "results in $OUT/ and BENCH_PR4.json"
