#!/usr/bin/env sh
# bench_server.sh — measure incdbd's repeated-query latency with a warm
# versus cold prepared-plan cache (BENCH_PR4.json) and the durable-load
# group-commit concurrency curve (BENCH_PR6.json).
#
# The two sides of the PR4 comparison are the sub-benchmarks of
# BenchmarkServerQuery (internal/server/bench_test.go): cache=cold resets
# the session's prepared-plan cache before every request (the pre-PR
# behaviour of re-freezing every null-free subplan per oracle call),
# cache=warm reuses it. The suffixes are stripped so scripts/benchjson can
# pair the runs: "before" = cold, "after" = warm, so speedup_ns is the
# warm-over-cold win.
#
# The PR6 curve comes from BenchmarkDurableLoadConcurrency: acknowledged
# (fsync'd) appends per second against one session at 1, 4 and 16 HTTP
# clients. A fixed iteration count (DURABLE_BENCHTIME) keeps the database
# growth identical across concurrency levels so the runs are comparable.
#
# A third pass (BENCH_PR9.json) runs a fixed query workload against a live
# durable incdbd and snapshots its /v1/metrics into the report: per-query
# latency from the incdb_query_seconds histogram, worlds enumerated, WAL
# fsync latency and group-commit batch size — the observability surface
# measuring itself.
#
# A fourth pass (BENCH_PR10.json) is the sustained-load harness: cmd/
# incdbload replays a mixed append/query blend at fixed concurrency for a
# wall-clock duration against a live durable incdbd — once with tracing
# off (-trace-sample 0) and once with every request traced (-trace-sample
# 1) — and the report records sustained RPS plus p50/p95/p99 latency for
# both, so the tracing tax is measured where it would be paid, not
# guessed at.
#
# Environment: BENCHTIME (default 0.5s), DURABLE_BENCHTIME (default
# 1500x), COUNT (default 5), OUT (default bench-compare-out),
# METRIC_QUERIES (default 30), LOAD_DURATION (default 5s),
# LOAD_CONCURRENCY (default 8), LOAD_WRITE_PCT (default 10).
set -eu

BENCHTIME="${BENCHTIME:-0.5s}"
DURABLE_BENCHTIME="${DURABLE_BENCHTIME:-1500x}"
COUNT="${COUNT:-5}"
OUT="${OUT:-bench-compare-out}"
mkdir -p "$OUT"

echo "== measuring server warm/cold prepared-plan cache =="
go test -run '^$' -bench 'BenchmarkServerQuery/' -benchmem \
    -benchtime="$BENCHTIME" -count="$COUNT" ./internal/server >"$OUT/server.txt" 2>&1 || {
    cat "$OUT/server.txt" >&2
    exit 1
}

grep 'cache=cold' "$OUT/server.txt" | sed 's#/cache=cold##' >"$OUT/server-cold.txt"
grep 'cache=warm' "$OUT/server.txt" | sed 's#/cache=warm##' >"$OUT/server-warm.txt"

go run ./scripts/benchjson \
    -old "$OUT/server-cold.txt" -new "$OUT/server-warm.txt" \
    -out BENCH_PR4.json -pr 4 \
    -title "incdbd: concurrent query service with session-scoped databases and version-guarded prepared-plan reuse" \
    -method "go test -bench='BenchmarkServerQuery/' -benchmem -benchtime=$BENCHTIME -count=$COUNT ./internal/server; medians of $COUNT runs; before = cold prepared-plan cache (reset per request), after = warm (version-guarded reuse)" \
    -before "cold cache: session prepared-plan cache reset before every request"

echo "== measuring durable-load group-commit concurrency curve =="
go test -run '^$' -bench 'BenchmarkDurableLoadConcurrency/' \
    -benchtime="$DURABLE_BENCHTIME" -count="$COUNT" ./internal/server >"$OUT/durable.txt" 2>&1 || {
    cat "$OUT/durable.txt" >&2
    exit 1
}

# Median ns/op per concurrency level -> RPS curve + the 16-over-1 speedup
# the group commit buys (every append is individually acknowledged after
# its fsync, so scaling past 1 requires batched fsyncs).
awk -v method="go test -bench=BenchmarkDurableLoadConcurrency -benchtime=$DURABLE_BENCHTIME -count=$COUNT ./internal/server; median ns/op per concurrency level; every append fsync'd before its 200" '
/BenchmarkDurableLoadConcurrency\/clients=/ {
    split($1, parts, "=")
    c = parts[2]; sub(/-[0-9]+$/, "", c)
    n[c]++; v[c, n[c]] = $3
}
END {
    printf "{\n  \"pr\": 6,\n"
    printf "  \"title\": \"incdbd: WAL group commit — durable-load throughput vs client concurrency\",\n"
    printf "  \"method\": \"%s\",\n", method
    printf "  \"concurrency\": {\n"
    sep = ""
    for (ci = 1; ci <= 64; ci *= 2) {
        c = ci ""
        if (!(c in n)) continue
        m = n[c]
        for (i = 1; i <= m; i++)
            for (j = i + 1; j <= m; j++)
                if (v[c, j] + 0 < v[c, i] + 0) { t = v[c, i]; v[c, i] = v[c, j]; v[c, j] = t }
        med = (m % 2) ? v[c, (m + 1) / 2] : (v[c, m / 2] + v[c, m / 2 + 1]) / 2
        rps[c] = 1e9 / med
        printf "%s    \"%s\": {\"ns_per_op\": %.0f, \"rps\": %.0f}", sep, c, med, rps[c]
        sep = ",\n"
    }
    printf "\n  },\n"
    printf "  \"speedup_16_over_1\": %.2f\n}\n", rps["16"] / rps["1"]
}' "$OUT/durable.txt" >BENCH_PR6.json
cat BENCH_PR6.json

echo "== snapshotting /v1/metrics under a fixed live workload =="
METRIC_QUERIES="${METRIC_QUERIES:-30}"
BIN="${BIN:-./bin}"
mkdir -p "$BIN"
go build -o "$BIN/incdbd" ./cmd/incdbd
go build -o "$BIN/incdbctl" ./cmd/incdbctl
PORT="$(go run ./scripts/freeport)"
ADDR="127.0.0.1:$PORT"
DATA_DIR="$(mktemp -d)"
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT
"$BIN/incdbd" -addr "$ADDR" -data-dir "$DATA_DIR" &
SRV=$!
i=0
while ! curl -fs "http://$ADDR/v1/status" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -lt 50 ] || { echo "incdbd did not come up on $ADDR" >&2; exit 1; }
    sleep 0.2
done
CTL="$BIN/incdbctl client -addr http://$ADDR -session bench"
$CTL load examples/data/orders.idb >/dev/null

# Each iteration respells the query with i spaces: plan-cache-equal but
# byte-distinct, so every request is a real evaluation (the byte-exact
# result cache never absorbs it) and lands in the latency histogram.
i=0
pad=""
while [ $i -lt "$METRIC_QUERIES" ]; do
    $CTL cert "proj(0,$pad sel(not(in(0, Payments)), Orders))" >/dev/null
    pad="$pad "
    i=$((i + 1))
done

curl -fs "http://$ADDR/v1/metrics" >"$OUT/metrics.prom"
kill "$SRV" && wait "$SRV" 2>/dev/null || true
trap 'rm -rf "$DATA_DIR"' EXIT

awk -v queries="$METRIC_QUERIES" '
function val(series) { return series in v ? v[series] : 0 }
!/^#/ { v[$1] = $2 }
END {
    qc = val("incdb_query_seconds_count{proc=\"cert\",session=\"bench\"}")
    qs = val("incdb_query_seconds_sum{proc=\"cert\",session=\"bench\"}")
    fc = val("incdb_wal_fsync_seconds_count")
    fs = val("incdb_wal_fsync_seconds_sum")
    rc = val("incdb_wal_records_per_fsync_count")
    rs = val("incdb_wal_records_per_fsync_sum")
    printf "{\n  \"pr\": 9,\n"
    printf "  \"title\": \"incdbd observability: /v1/metrics snapshot under a fixed certain-query workload\",\n"
    printf "  \"method\": \"%d plan-cache-equal, byte-distinct cert queries against a durable incdbd; values scraped from /v1/metrics\",\n", queries
    printf "  \"metrics\": {\n"
    printf "    \"queries_total\": %d,\n", val("incdb_queries_total{proc=\"cert\",session=\"bench\"}")
    printf "    \"query_mean_ms\": %.3f,\n", qc ? 1000 * qs / qc : 0
    printf "    \"worlds_enumerated_total\": %d,\n", val("incdb_worlds_enumerated_total")
    printf "    \"prep_cache_hits\": %d,\n", val("incdb_prep_cache_hits_total{session=\"bench\"}")
    printf "    \"wal_fsyncs\": %d,\n", fc
    printf "    \"wal_fsync_mean_ms\": %.3f,\n", fc ? 1000 * fs / fc : 0
    printf "    \"wal_records_per_fsync_mean\": %.2f\n", rc ? rs / rc : 0
    printf "  }\n}\n"
}' "$OUT/metrics.prom" >BENCH_PR9.json
cat BENCH_PR9.json

echo "== sustained load: mixed traffic, tracing off vs every request traced =="
LOAD_DURATION="${LOAD_DURATION:-5s}"
LOAD_CONCURRENCY="${LOAD_CONCURRENCY:-8}"
LOAD_WRITE_PCT="${LOAD_WRITE_PCT:-10}"
go build -o "$BIN/incdbload" ./cmd/incdbload

# One fresh durable server per tracing mode, so the two runs start from
# identical state and the span ring never carries over.
sustain() { # $1 = -trace-sample value, $2 = output file
    SPORT="$(go run ./scripts/freeport)"
    SADDR="127.0.0.1:$SPORT"
    SDATA="$(mktemp -d)"
    "$BIN/incdbd" -addr "$SADDR" -data-dir "$SDATA" -trace-sample "$1" &
    SSRV=$!
    i=0
    while ! curl -fs "http://$SADDR/v1/status" >/dev/null 2>&1; do
        i=$((i + 1))
        [ $i -lt 50 ] || { echo "incdbd did not come up on $SADDR" >&2; exit 1; }
        sleep 0.2
    done
    "$BIN/incdbload" -addr "http://$SADDR" -session bench \
        -duration "$LOAD_DURATION" -concurrency "$LOAD_CONCURRENCY" \
        -write-pct "$LOAD_WRITE_PCT" >"$2"
    kill "$SSRV" && wait "$SSRV" 2>/dev/null || true
    rm -rf "$SDATA"
}
sustain 0 "$OUT/sustained-off.json"
sustain 1 "$OUT/sustained-on.json"

{
    printf '{\n  "pr": 10,\n'
    printf '  "title": "incdbd under sustained mixed load: RPS and latency quantiles, tracing off vs on",\n'
    printf '  "method": "cmd/incdbload: %s workers, %s%% appends / rest mixed cert+sql queries, %s against a fresh durable incdbd per mode; latency measured client-side end to end",\n' \
        "$LOAD_CONCURRENCY" "$LOAD_WRITE_PCT" "$LOAD_DURATION"
    printf '  "trace_off": '
    sed 's/^/  /' "$OUT/sustained-off.json" | sed '1s/^  //'
    printf ',\n  "trace_on": '
    sed 's/^/  /' "$OUT/sustained-on.json" | sed '1s/^  //'
    awk 'FNR == 1 { f++ } /"rps"/ { gsub(/[^0-9.]/, "", $2); rps[f] = $2 }
        END { printf ",\n  \"trace_on_rps_ratio\": %.3f\n}\n", rps[1] ? rps[2] / rps[1] : 0 }' \
        "$OUT/sustained-off.json" "$OUT/sustained-on.json"
} >BENCH_PR10.json
cat BENCH_PR10.json

echo "results in $OUT/ and BENCH_PR4.json, BENCH_PR6.json, BENCH_PR9.json, BENCH_PR10.json"
