#!/usr/bin/env sh
# smoke_incdbd.sh — end-to-end smoke of the incdbd service: build the
# binaries, start a durable server on a random free port, load and append
# data through the incdbctl client, assert a certain answer plus the
# prepared-plan and result cache hits, then SIGKILL the server
# mid-load-sequence, restart it on the same data directory and assert that
# every answer and version vector matches the pre-kill state. Along the way
# /v1/metrics is scraped and key series are asserted to exist and to move
# with traffic, and `incdbctl trace` is exercised against the default-on
# distributed tracing (list recent roots, render one query's span tree).
# Ends with a graceful-shutdown check.
set -eu

BIN="${BIN:-./bin}"
QUERY='proj(0, sel(not(in(0, Payments)), Orders))'
# Same plan (whitespace is insignificant), different bytes: exercises the
# prepared-plan cache without being absorbed by the byte-exact result cache.
QUERY_RESPELLED='proj(0,  sel(not(in(0, Payments)), Orders))'

mkdir -p "$BIN"
go build -o "$BIN/incdbd" ./cmd/incdbd
go build -o "$BIN/incdbctl" ./cmd/incdbctl

# Random free port so parallel CI jobs cannot collide.
PORT="${PORT:-$(go run ./scripts/freeport)}"
ADDR="127.0.0.1:$PORT"
DATA_DIR="$(mktemp -d)"
trap 'kill "$SRV" 2>/dev/null || true; rm -rf "$DATA_DIR"' EXIT

wait_up() {
    i=0
    while [ $i -lt 50 ]; do
        if curl -fs "http://$ADDR/v1/status" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "incdbd did not come up on $ADDR" >&2
    exit 1
}

"$BIN/incdbd" -addr "$ADDR" -data-dir "$DATA_DIR" &
SRV=$!
wait_up

CTL="$BIN/incdbctl client -addr http://$ADDR -session smoke"
$CTL load examples/data/orders.idb

echo "== certain-answer query (cold) =="
out=$($CTL cert "$QUERY")
echo "$out"
echo "$out" | grep -q "o2" || { echo "expected certain answer o2" >&2; exit 1; }

echo "== plan-equal respelled query (must hit the prepared-plan cache) =="
$CTL cert "$QUERY_RESPELLED" >/dev/null
status=$($CTL status)
echo "$status"
echo "$status" | grep 'cache' | grep -q "1 hits" || {
    echo "respelled query did not hit the prepared-plan cache" >&2; exit 1; }

echo "== byte-identical repeat (must hit the oracle result cache) =="
$CTL cert "$QUERY_RESPELLED" >/dev/null
status=$($CTL status)
echo "$status" | grep 'results' | grep -q "1 hits" || {
    echo "repeated query did not hit the result cache" >&2; exit 1; }

echo "== /v1/metrics: valid exposition, series present and moving =="
# One series value from a fresh scrape (counters render as integers).
metric() {
    curl -fs "http://$ADDR/v1/metrics" | awk -v s="$1" '$1 == s { print $2 }'
}
curl -fs "http://$ADDR/v1/metrics" | grep -q '^# TYPE incdb_queries_total counter' || {
    echo "/v1/metrics is not serving the exposition format" >&2; exit 1; }
before="$(metric 'incdb_queries_total{proc="cert",session="smoke"}')"
[ -n "$before" ] || { echo "no incdb_queries_total series for the smoke session" >&2; exit 1; }
fsyncs="$(metric 'incdb_wal_fsync_seconds_count')"
[ "${fsyncs:-0}" -ge 1 ] || {
    echo "durable server reports no WAL fsyncs (incdb_wal_fsync_seconds_count=$fsyncs)" >&2; exit 1; }
[ "$(metric 'incdb_role{role="primary"}')" = "1" ] || {
    echo "incdb_role{role=primary} != 1 on a standalone server" >&2; exit 1; }
$CTL cert "$QUERY" >/dev/null
after="$(metric 'incdb_queries_total{proc="cert",session="smoke"}')"
[ "$after" -gt "$before" ] || {
    echo "incdb_queries_total did not move with traffic ($before -> $after)" >&2; exit 1; }
echo "metrics move with traffic: cert queries $before -> $after, $fsyncs fsyncs"

echo "== distributed tracing: incdbctl trace lists roots and renders a tree =="
# Tracing is on by default (-trace-sample 1.0): the queries above are all
# in the span ring. A fresh traced query returns its trace ID in the
# response; the list view must include it and the tree view must show the
# request's inner spans.
TRACED=$(curl -fs -X POST "http://$ADDR/v1/sessions/smoke/query" \
    -H 'Content-Type: application/json' \
    -d '{"query": "minus(proj(0, Customers), proj(1, Orders))", "proc": "cert", "trace_detail": true}')
TRACE_ID=$(printf '%s' "$TRACED" | sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$TRACE_ID" ] || {
    echo "traced query returned no trace_id: $TRACED" >&2; exit 1; }
"$BIN/incdbctl" trace -addr "http://$ADDR" | grep -q "$TRACE_ID" || {
    echo "incdbctl trace does not list trace $TRACE_ID" >&2; exit 1; }
tree=$("$BIN/incdbctl" trace -addr "http://$ADDR" "$TRACE_ID")
echo "$tree"
for span in "POST /v1/sessions/smoke/query" "result_cache.lookup" "evaluate" "plan."; do
    echo "$tree" | grep -qF "$span" || {
        echo "trace tree is missing a $span span" >&2; exit 1; }
done
echo "trace $TRACE_ID renders with evaluation and plan-node spans"

echo "== crash recovery: append, SIGKILL mid-sequence, restart, compare =="
APPEND_FILE="$DATA_DIR/append.idb"
printf "row Orders o3 c2\nrow Payments o3\nrow Orders o4 _7\n" >"$APPEND_FILE"
$CTL append "$APPEND_FILE"
pre_answer=$($CTL cert "$QUERY" | grep '^  ')
pre_possible=$($CTL ctable-eager 'proj(1, Orders)' | grep '^  ')
pre_versions=$($CTL status | grep 'rows (version')

kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true

"$BIN/incdbd" -addr "$ADDR" -data-dir "$DATA_DIR" &
SRV=$!
wait_up

post_answer=$($CTL cert "$QUERY" | grep '^  ')
post_possible=$($CTL ctable-eager 'proj(1, Orders)' | grep '^  ')
post_versions=$($CTL status | grep 'rows (version')
[ "$pre_answer" = "$post_answer" ] || {
    echo "certain answers diverged after recovery:" >&2
    echo "pre:  $pre_answer" >&2; echo "post: $post_answer" >&2; exit 1; }
[ "$pre_possible" = "$post_possible" ] || {
    echo "ctable answers (null identities) diverged after recovery:" >&2
    echo "pre:  $pre_possible" >&2; echo "post: $post_possible" >&2; exit 1; }
[ "$pre_versions" = "$post_versions" ] || {
    echo "version vectors diverged after recovery:" >&2
    echo "pre:  $pre_versions" >&2; echo "post: $post_versions" >&2; exit 1; }
echo "recovered state matches pre-kill state"

echo "== graceful shutdown =="
kill -TERM "$SRV"
wait "$SRV"
trap 'rm -rf "$DATA_DIR"' EXIT
echo "incdbd smoke OK"
