#!/usr/bin/env sh
# smoke_incdbd.sh — end-to-end smoke of the incdbd service: build the
# binaries, start the server, load the example database through the
# incdbctl client, run a certain-answer query twice, assert the answer and
# that the repeat hit the prepared-plan cache, and shut down gracefully.
set -eu

ADDR="${ADDR:-127.0.0.1:8123}"
BIN="${BIN:-./bin}"
QUERY='proj(0, sel(not(in(0, Payments)), Orders))'

mkdir -p "$BIN"
go build -o "$BIN/incdbd" ./cmd/incdbd
go build -o "$BIN/incdbctl" ./cmd/incdbctl

"$BIN/incdbd" -addr "$ADDR" &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT

ok=0
for _ in $(seq 1 50); do
    if curl -fs "http://$ADDR/v1/status" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.2
done
[ "$ok" = 1 ] || { echo "incdbd did not come up on $ADDR" >&2; exit 1; }

CTL="$BIN/incdbctl client -addr http://$ADDR -session smoke"
$CTL load examples/data/orders.idb

echo "== certain-answer query (cold) =="
out=$($CTL cert "$QUERY")
echo "$out"
echo "$out" | grep -q "o2" || { echo "expected certain answer o2" >&2; exit 1; }

echo "== certain-answer query (warm: must hit the prepared-plan cache) =="
$CTL cert "$QUERY" >/dev/null
status=$($CTL status)
echo "$status"
echo "$status" | grep -q "1 hits" || { echo "repeat query did not hit the prepared-plan cache" >&2; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$SRV"
wait "$SRV"
trap - EXIT
echo "incdbd smoke OK"
