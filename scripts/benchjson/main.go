// Command benchjson turns two `go test -bench` output files (a base run and
// a working-tree run) into the BENCH_PR<n>.json comparison format the repo
// records per performance PR: per benchmark, the median ns/op, B/op and
// allocs/op of each side plus the speedup ratios. It is invoked by
// scripts/bench_compare.sh after the two measurement passes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type stats struct {
	Ns     float64 `json:"ns_per_op"`
	Bytes  float64 `json:"bytes_per_op"`
	Allocs float64 `json:"allocs_per_op"`
}

type cmp struct {
	Before          stats   `json:"before"`
	After           stats   `json:"after"`
	SpeedupNs       float64 `json:"speedup_ns"`
	BytesReduction  float64 `json:"bytes_reduction"`
	AllocsReduction float64 `json:"allocs_reduction"`
}

type report struct {
	PR           int            `json:"pr"`
	Title        string         `json:"title"`
	Method       string         `json:"method"`
	Machine      string         `json:"machine"`
	BeforeCommit string         `json:"before_commit"`
	Benchmarks   map[string]cmp `json:"benchmarks"`
}

// benchLine matches one benchmark result line; -benchmem adds B/op and
// allocs/op columns.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parse(path string) (map[string][]stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string][]stats{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := stats{Ns: atof(m[2]), Bytes: atof(m[3]), Allocs: atof(m[4])}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

func atof(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func medians(runs []stats) stats {
	var ns, bs, as []float64
	for _, r := range runs {
		ns = append(ns, r.Ns)
		bs = append(bs, r.Bytes)
		as = append(as, r.Allocs)
	}
	return stats{Ns: median(ns), Bytes: median(bs), Allocs: median(as)}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return round2(a / b)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

func machine() string {
	model := "unknown cpu"
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, "model name") {
				if i := strings.Index(line, ":"); i >= 0 {
					model = strings.TrimSpace(line[i+1:])
				}
				break
			}
		}
	}
	return fmt.Sprintf("%s, %d vCPU, %s/%s, %s",
		model, runtime.NumCPU(), runtime.GOOS, runtime.GOARCH, runtime.Version())
}

func main() {
	oldPath := flag.String("old", "", "bench output of the base commit")
	newPath := flag.String("new", "", "bench output of the working tree")
	out := flag.String("out", "", "output JSON path")
	pr := flag.Int("pr", 0, "PR number")
	title := flag.String("title", "", "PR title")
	method := flag.String("method", "", "measurement method description")
	before := flag.String("before", "", "base commit description")
	gate := flag.String("gate", "", "regexp of benchmarks whose ns/op regression fails the run")
	failOver := flag.Float64("fail-over", 25, "gate threshold: fail when median ns/op regresses more than this percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldRuns, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	newRuns, err := parse(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep := report{PR: *pr, Title: *title, Method: *method,
		Machine: machine(), BeforeCommit: *before, Benchmarks: map[string]cmp{}}
	for name, after := range newRuns {
		beforeRuns, ok := oldRuns[name]
		if !ok {
			continue // benchmark new in this PR: nothing to compare
		}
		b, a := medians(beforeRuns), medians(after)
		rep.Benchmarks[name] = cmp{
			Before: b, After: a,
			SpeedupNs:       ratio(b.Ns, a.Ns),
			BytesReduction:  ratio(b.Bytes, a.Bytes),
			AllocsReduction: ratio(b.Allocs, a.Allocs),
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))

	// Regression gate: after the artifact is written (so a failing run still
	// uploads its numbers), fail loudly when any gated benchmark's median
	// ns/op regressed past the threshold. This is the offline counterpart of
	// a benchstat check — medians of the same runs, no external tooling.
	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -gate regexp:", err)
			os.Exit(1)
		}
		failed := false
		names := make([]string, 0, len(rep.Benchmarks))
		for name := range rep.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := rep.Benchmarks[name]
			if !re.MatchString(name) || c.Before.Ns == 0 {
				continue
			}
			pct := (c.After.Ns - c.Before.Ns) / c.Before.Ns * 100
			if pct > *failOver {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAILED: %s regressed %.1f%% (median %.0f → %.0f ns/op, limit +%.0f%%)\n",
					name, pct, c.Before.Ns, c.After.Ns, *failOver)
				failed = true
			} else {
				fmt.Printf("gate ok: %s %+.1f%% (limit +%.0f%%)\n", name, pct, *failOver)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
