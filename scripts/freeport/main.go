// Command freeport prints a free TCP port on 127.0.0.1: the OS picks it
// (listen on port 0), we print it and close the listener. CI smoke scripts
// use it so parallel jobs never collide on a fixed port; the tiny window
// between close and reuse is covered by the scripts' retry loops.
package main

import (
	"fmt"
	"net"
	"os"
)

func main() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeport:", err)
		os.Exit(1)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	fmt.Println(port)
}
