#!/usr/bin/env sh
# smoke_failover.sh — end-to-end smoke of primary failover with real
# processes and kill -9: start a durable primary and follower, append
# acknowledged writes, SIGKILL the primary, promote the follower with
# incdbctl promote, assert no acknowledged write was lost, that a
# failover-aware multi-endpoint client routes writes to the new primary
# without manual re-pointing, that the revived old primary is fenced
# read-only by the new epoch (fenced_stale_primary), and that it rejoins
# cleanly as a follower of the new primary, converging byte-identically.
set -eu

BIN="${BIN:-./bin}"
ALL_ORDERS='proj(0, Orders)'
UNPAID='proj(0, sel(not(in(0, Payments)), Orders))'

mkdir -p "$BIN"
go build -o "$BIN/incdbd" ./cmd/incdbd
go build -o "$BIN/incdbctl" ./cmd/incdbctl

PPORT="$(go run ./scripts/freeport)"
RPORT="$(go run ./scripts/freeport)"
PADDR="127.0.0.1:$PPORT"
RADDR="127.0.0.1:$RPORT"
PDATA="$(mktemp -d)"
RDATA="$(mktemp -d)"
PRIMARY=""
FOLLOWER=""
trap 'kill "$PRIMARY" "$FOLLOWER" 2>/dev/null || true; rm -rf "$PDATA" "$RDATA"' EXIT

wait_up() {
    i=0
    while [ $i -lt 50 ]; do
        if curl -fs "http://$1/v1/status" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "incdbd did not come up on $1" >&2
    exit 1
}

PCTL="$BIN/incdbctl client -addr http://$PADDR -session smoke"
RCTL="$BIN/incdbctl client -addr http://$RADDR -session smoke"
# The failover-aware client: both endpoints, dead-primary-first, so every
# write must classify the refusal and re-discover the primary by itself.
FCTL="$BIN/incdbctl client -addr http://$PADDR,http://$RADDR -session smoke"

wait_caught_up() {
    want_rows="$($PCTL status | grep 'rows (version')"
    i=0
    while [ $i -lt 100 ]; do
        if [ "$($RCTL status | grep 'rows (version' || true)" = "$want_rows" ]; then
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "follower never caught up with the primary" >&2
    $RCTL status >&2 || true
    exit 1
}

"$BIN/incdbd" -addr "$PADDR" -data-dir "$PDATA" &
PRIMARY=$!
wait_up "$PADDR"
$PCTL load examples/data/orders.idb
printf "row Orders o3 c2\nrow Payments o3\n" >"$PDATA/a1.idb"
printf "row Orders o4 c3\n" >"$PDATA/a2.idb"
$PCTL append "$PDATA/a1.idb"
$PCTL append "$PDATA/a2.idb" # every append above was acknowledged

echo "== follower tails the primary; liveness and readiness probes serve =="
"$BIN/incdbd" -addr "$RADDR" -data-dir "$RDATA" -follow "http://$PADDR" -stale-wait 1s &
FOLLOWER=$!
wait_up "$RADDR"
wait_caught_up
curl -fs "http://$RADDR/v1/healthz" | grep -q '"ok":true' || {
    echo "follower healthz not ok" >&2; exit 1; }
curl -fs "http://$RADDR/v1/readyz" | grep -q '"ok":true' || {
    echo "caught-up follower readyz not ok" >&2; exit 1; }

echo "== SIGKILL the primary, promote the follower =="
# The follower is caught up (asserted above), so promotion loses nothing;
# -force skips the caught-up self-check, which cannot distinguish "primary
# dead and I have everything" from "primary dead mid-ship".
kill -9 "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
out="$("$BIN/incdbctl" promote -addr "http://$RADDR" -force)"
echo "$out"
echo "$out" | grep -q "epoch 1" || {
    echo "promotion did not reach epoch 1: $out" >&2; exit 1; }
curl -fs "http://$RADDR/v1/status" | grep -q '"role":"primary"' || {
    echo "promoted follower does not report role primary" >&2; exit 1; }

echo "== no acknowledged write lost across the failover =="
out="$($RCTL cert "$ALL_ORDERS")"
for o in o1 o2 o3 o4; do
    echo "$out" | grep -q "$o" || {
        echo "acknowledged row $o lost across failover:" >&2
        echo "$out" >&2; exit 1; }
done

echo "== the new primary accepts writes; failover client needs no re-pointing =="
printf "row Orders o5 c1\nrow Payments o5\n" >"$RDATA/a3.idb"
# FCTL still lists the dead primary first: the client must see the
# connection failure, probe both endpoints for role+epoch, and land the
# write on the promoted server.
$FCTL append "$RDATA/a3.idb"
$RCTL cert "$ALL_ORDERS" | grep -q o5 || {
    echo "failover client's write did not reach the new primary" >&2; exit 1; }

echo "== the revived old primary is fenced by the new epoch =="
"$BIN/incdbd" -addr "$PADDR" -data-dir "$PDATA" &
PRIMARY=$!
wait_up "$PADDR"
# A client that lived through the failover carries epoch 1 on its writes;
# the revived server (still at epoch 0) must fence instead of diverging.
body='{"data":"row Orders bad c9\n","append":true,"epoch":1}'
if curl -fs -X POST "http://$PADDR/v1/sessions/smoke/load" -d "$body" >/dev/null 2>&1; then
    echo "revived stale primary accepted an epoch-1 write" >&2
    exit 1
fi
curl -s -X POST "http://$PADDR/v1/sessions/smoke/load" -d "$body" | grep -q fenced_stale_primary || {
    echo "expected fenced_stale_primary from the revived primary" >&2; exit 1; }
curl -fs "http://$PADDR/v1/status" | grep -q '"role":"fenced"' || {
    echo "revived primary does not report role fenced" >&2; exit 1; }
# Once fenced, even epochless writes are refused.
if $PCTL append "$RDATA/a3.idb" >/dev/null 2>&1; then
    echo "fenced primary accepted an epochless write" >&2
    exit 1
fi

echo "== the old primary rejoins as a follower and converges =="
kill -TERM "$PRIMARY"
wait "$PRIMARY" 2>/dev/null || true
"$BIN/incdbd" -addr "$PADDR" -data-dir "$PDATA" -follow "http://$RADDR" -stale-wait 1s &
PRIMARY=$!
wait_up "$PADDR"
i=0
while [ $i -lt 100 ]; do
    if [ "$($PCTL status | grep 'rows (version' || true)" = "$($RCTL status | grep 'rows (version')" ]; then
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
p="$($PCTL cert "$UNPAID" | grep '^  ')"
r="$($RCTL cert "$UNPAID" | grep '^  ')"
[ "$p" = "$r" ] || {
    echo "rejoined old primary diverges from the new primary:" >&2
    echo "new primary: $r" >&2; echo "rejoined:    $p" >&2; exit 1; }
$PCTL status | grep -q "epoch 1" || {
    echo "rejoined follower did not adopt epoch 1" >&2
    $PCTL status >&2; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$FOLLOWER" "$PRIMARY"
wait "$FOLLOWER" "$PRIMARY"
trap 'rm -rf "$PDATA" "$RDATA"' EXIT
echo "failover smoke OK"
