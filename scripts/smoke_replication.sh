#!/usr/bin/env sh
# smoke_replication.sh — end-to-end smoke of WAL-shipping replication:
# start a durable primary, load and append through incdbctl, start a
# durable follower with -follow, assert the follower converges to
# byte-identical answers and version vectors, read-your-writes across
# servers via the consistency token, 412 stale_replica on an uncoverable
# token, 403 read_only_replica on follower loads, and a SIGKILL'd follower
# restarted on its data directory resuming without a snapshot re-bootstrap.
# Both servers' /v1/metrics are scraped: roles, applied seq, and follower
# lag returning to zero once caught up. One write is issued with a client
# traceparent and its distributed trace is asserted end to end: root,
# wal.commit and wal.fsync spans on the primary, the linked replica.apply
# span on the follower — the same trace ID on both servers.
set -eu

BIN="${BIN:-./bin}"
UNPAID='proj(0, sel(not(in(0, Payments)), Orders))'
ALL_ORDERS='proj(0, Orders)'

mkdir -p "$BIN"
go build -o "$BIN/incdbd" ./cmd/incdbd
go build -o "$BIN/incdbctl" ./cmd/incdbctl

PPORT="$(go run ./scripts/freeport)"
RPORT="$(go run ./scripts/freeport)"
PADDR="127.0.0.1:$PPORT"
RADDR="127.0.0.1:$RPORT"
PDATA="$(mktemp -d)"
RDATA="$(mktemp -d)"
PRIMARY=""
FOLLOWER=""
trap 'kill "$PRIMARY" "$FOLLOWER" 2>/dev/null || true; rm -rf "$PDATA" "$RDATA"' EXIT

wait_up() {
    i=0
    while [ $i -lt 50 ]; do
        if curl -fs "http://$1/v1/status" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
        i=$((i + 1))
    done
    echo "incdbd did not come up on $1" >&2
    exit 1
}

PCTL="$BIN/incdbctl client -addr http://$PADDR -session smoke"
RCTL="$BIN/incdbctl client -addr http://$RADDR -session smoke"

# The primary's version vector as a -read-after consistency token, scraped
# from the per-relation status lines ("  Orders/2: 3 rows (version 1)").
primary_token() {
    $PCTL status | awk '/rows \(version/ {
        split($1, a, "/"); v = $5; sub(/\)/, "", v)
        printf "%s\"%s\":%s", sep, a[1], v; sep = ","
    } BEGIN { printf "{" } END { printf "}\n" }'
}

wait_caught_up() {
    want_rows="$($PCTL status | grep 'rows (version')"
    i=0
    while [ $i -lt 100 ]; do
        if [ "$($RCTL status | grep 'rows (version' || true)" = "$want_rows" ]; then
            return 0
        fi
        sleep 0.1
        i=$((i + 1))
    done
    echo "follower never caught up with the primary" >&2
    $RCTL status >&2 || true
    exit 1
}

"$BIN/incdbd" -addr "$PADDR" -data-dir "$PDATA" &
PRIMARY=$!
wait_up "$PADDR"
$PCTL load examples/data/orders.idb
printf "row Orders o3 c2\nrow Payments o3\n" >"$PDATA/a1.idb"
$PCTL append "$PDATA/a1.idb"

echo "== follower bootstraps from the primary's snapshot and tails its WAL =="
"$BIN/incdbd" -addr "$RADDR" -data-dir "$RDATA" -follow "http://$PADDR" -stale-wait 1s &
FOLLOWER=$!
wait_up "$RADDR"
wait_caught_up

metric() {
    curl -fs "http://$1/v1/metrics" | awk -v s="$2" '$1 == s { print $2 }'
}

echo "== metrics: roles on both servers, follower lag back to zero =="
[ "$(metric "$PADDR" 'incdb_role{role="primary"}')" = "1" ] || {
    echo "primary does not report incdb_role{role=primary} 1" >&2; exit 1; }
[ "$(metric "$RADDR" 'incdb_role{role="replica"}')" = "1" ] || {
    echo "follower does not report incdb_role{role=replica} 1" >&2; exit 1; }
applied="$(metric "$RADDR" 'incdb_replica_applied_seq{session="smoke"}')"
[ "${applied:-0}" -ge 2 ] || {
    echo "follower applied_seq = $applied, want >= 2 (load + append)" >&2; exit 1; }
lag="$(metric "$RADDR" 'incdb_replica_lag_seq{session="smoke"}')"
[ "$lag" = "0" ] || {
    echo "caught-up follower reports lag_seq = $lag, want 0" >&2; exit 1; }
echo "follower applied seq $applied, lag 0"

echo "== byte-identical answers (certain, c-tables with null identities) =="
for q in "$UNPAID" "$ALL_ORDERS"; do
    p="$($PCTL cert "$q" | grep '^  ')"
    r="$($RCTL cert "$q" | grep '^  ')"
    [ "$p" = "$r" ] || {
        echo "certain answers diverge for $q:" >&2
        echo "primary:  $p" >&2; echo "follower: $r" >&2; exit 1; }
done
p="$($PCTL ctable-eager 'proj(1, Orders)' | grep '^  ')"
r="$($RCTL ctable-eager 'proj(1, Orders)' | grep '^  ')"
[ "$p" = "$r" ] || {
    echo "c-table answers (null identities) diverge:" >&2
    echo "primary:  $p" >&2; echo "follower: $r" >&2; exit 1; }

echo "== read-your-writes across servers via the consistency token =="
printf "row Orders o4 c3\nrow Payments o4\n" >"$PDATA/a2.idb"
$PCTL append "$PDATA/a2.idb"
TOKEN="$(primary_token)"
echo "token: $TOKEN"
out="$($RCTL -read-after "$TOKEN" cert "$ALL_ORDERS")"
echo "$out" | grep -q "o4" || {
    echo "follower read with token $TOKEN missed the primary's write:" >&2
    echo "$out" >&2; exit 1; }

echo "== an uncoverable token fails 412 stale_replica after -stale-wait =="
if out="$($RCTL -read-after '{"Orders":999999}' cert "$ALL_ORDERS" 2>&1)"; then
    echo "follower served a read it could not cover:" >&2
    echo "$out" >&2
    exit 1
fi
echo "$out" | grep -q "stale_replica" || {
    echo "expected stale_replica, got: $out" >&2; exit 1; }

echo "== the follower refuses loads as read_only_replica =="
if out="$($RCTL append "$PDATA/a2.idb" 2>&1)"; then
    echo "follower accepted a load" >&2
    exit 1
fi
echo "$out" | grep -q "read_only_replica" || {
    echo "expected read_only_replica, got: $out" >&2; exit 1; }

echo "== distributed trace: one write's spans on primary AND follower =="
# A client-minted trace context (sampled flag set) rides the append; the
# primary's WAL record carries it to the follower, whose apply span links
# back to the primary's wal.commit span.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
curl -fs -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
    -H 'Content-Type: application/json' \
    -d '{"data": "row Orders o6 c1\n", "append": true}' \
    "http://$PADDR/v1/sessions/smoke/load" >/dev/null
wait_caught_up
ptrace=$(curl -fs "http://$PADDR/v1/traces/$TRACE_ID")
for span in "POST /v1/sessions/smoke/load" "load.apply" "wal.commit" "wal.fsync"; do
    printf '%s' "$ptrace" | grep -qF "\"name\":\"$span\"" || {
        echo "primary trace $TRACE_ID is missing a $span span:" >&2
        printf '%s\n' "$ptrace" >&2; exit 1; }
done
# The apply span is published just after the version vector advances, so
# allow it a moment.
i=0
while ! curl -fs "http://$RADDR/v1/traces/$TRACE_ID" 2>/dev/null | grep -qF '"name":"replica.apply"'; do
    i=$((i + 1))
    [ $i -lt 50 ] || {
        echo "follower never published a replica.apply span for trace $TRACE_ID" >&2
        curl -fs "http://$RADDR/v1/traces/$TRACE_ID" >&2 || true; exit 1; }
    sleep 0.1
done
"$BIN/incdbctl" trace -addr "http://$PADDR" "$TRACE_ID" | grep -qF "wal.fsync" || {
    echo "incdbctl trace does not render the primary's wal.fsync span" >&2; exit 1; }
echo "trace $TRACE_ID spans both servers: primary write + follower apply"

echo "== SIGKILL'd follower restarts on its data dir and resumes, no re-bootstrap =="
kill -9 "$FOLLOWER"
wait "$FOLLOWER" 2>/dev/null || true
printf "row Orders o5 _9\n" >"$PDATA/a3.idb"
$PCTL append "$PDATA/a3.idb"

"$BIN/incdbd" -addr "$RADDR" -data-dir "$RDATA" -follow "http://$PADDR" -stale-wait 1s &
FOLLOWER=$!
wait_up "$RADDR"
wait_caught_up
status="$($RCTL status)"
echo "$status" | grep "session" | grep -q "0 bootstraps" || {
    echo "restarted follower re-bootstrapped instead of resuming its WAL position:" >&2
    echo "$status" >&2; exit 1; }
p="$($PCTL cert "$UNPAID" | grep '^  ')"
r="$($RCTL cert "$UNPAID" | grep '^  ')"
[ "$p" = "$r" ] || {
    echo "answers diverge after follower restart:" >&2
    echo "primary:  $p" >&2; echo "follower: $r" >&2; exit 1; }
lag="$(metric "$RADDR" 'incdb_replica_lag_seq{session="smoke"}')"
[ "$lag" = "0" ] || {
    echo "restarted follower reports lag_seq = $lag, want 0 after catch-up" >&2; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$FOLLOWER" "$PRIMARY"
wait "$FOLLOWER" "$PRIMARY"
trap 'rm -rf "$PDATA" "$RDATA"' EXIT
echo "replication smoke OK"
