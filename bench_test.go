// Benchmarks regenerating the paper's figures and the cited quantitative
// results — one benchmark per experiment of DESIGN.md's index (E1–E12),
// plus operator micro-benchmarks. Run:
//
//	go test -bench=. -benchmem
//
// The absolute numbers depend on this machine; the shapes (who wins, by
// what factor, where the blow-ups are) are the reproduction target.
package incdb

import (
	"fmt"
	"runtime"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/constraint"
	"incdb/internal/ctable"
	"incdb/internal/engine"
	"incdb/internal/fo"
	"incdb/internal/gen"
	"incdb/internal/logic"
	"incdb/internal/plan"
	"incdb/internal/prob"
	"incdb/internal/relation"
	"incdb/internal/tpch"
	"incdb/internal/translate"
	"incdb/internal/value"

	"math/rand"
)

// figure1DB is the introduction's database with the NULL payment.
func figure1DB() *relation.Database {
	db := relation.NewDatabase()
	orders := relation.New("Orders", "oid", "title", "price")
	orders.Add(value.Consts("o1", "Big Data", "30"))
	orders.Add(value.Consts("o2", "SQL", "35"))
	orders.Add(value.Consts("o3", "Logic", "50"))
	db.Add(orders)
	payments := relation.New("Payments", "cid", "oid")
	payments.Add(value.Consts("c1", "o1"))
	payments.Add(value.T(value.Const("c2"), db.FreshNull()))
	db.Add(payments)
	customers := relation.New("Customers", "cid", "name")
	customers.Add(value.Consts("c1", "John"))
	customers.Add(value.Consts("c2", "Mary"))
	db.Add(customers)
	return db
}

// figure1Scaled grows the introduction's database with extra NULL payments
// so the oracle's valuation space is large enough to shard: with n nulls
// and range size r the space holds r^n worlds.
func figure1Scaled(extraNulls int) *relation.Database {
	db := figure1DB()
	payments := db.MustRelation("Payments")
	for i := 0; i < extraNulls; i++ {
		payments.Add(value.T(value.Const(fmt.Sprintf("c%d", i+3)), db.FreshNull()))
	}
	return db
}

// BenchmarkE1Figure1 measures the introduction's three queries: SQL
// evaluation vs the exact certain-answer oracle — the oracle both on the
// paper's instance and on a scaled instance with the worker pool toggled,
// which is the engine's serial-vs-parallel comparison point.
func BenchmarkE1Figure1(b *testing.B) {
	db := figure1DB()
	unpaid := algebra.Proj(algebra.Sel(algebra.R("Orders"),
		algebra.CNot(algebra.CIn(algebra.Proj(algebra.R("Payments"), 1), 0))), 0)
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algebra.SQL(db, unpaid)
		}
	})
	b.Run("cert-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.WithNulls(db, unpaid, certain.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	scaled := figure1Scaled(3)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("cert-oracle-scaled/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := certain.WithNulls(scaled, unpaid, certain.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2Fig2aBlowup shows the Qf translation's active-domain blow-up
// against Q+ at growing database sizes (the [51] vs [37] contrast).
func BenchmarkE2Fig2aBlowup(b *testing.B) {
	q := algebra.Minus(algebra.Proj(algebra.R("R"), 0), algebra.R("S"))
	for _, n := range []int{8, 16, 32, 64} {
		db := relation.NewDatabase()
		r := relation.New("R", "a", "b")
		for i := 0; i < n; i++ {
			r.Add(value.Consts(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%3)))
		}
		db.Add(r)
		s := relation.New("S", "x")
		s.Add(value.T(db.FreshNull()))
		db.Add(s)
		_, qf, err := translate.Fig2a(q, db)
		if err != nil {
			b.Fatal(err)
		}
		plus, _, err := translate.Fig2b(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Qf/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.Naive(db, qf)
			}
		})
		b.Run(fmt.Sprintf("Qplus/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.Naive(db, plus)
			}
		})
	}
}

// BenchmarkE3TPCHOverhead measures original-vs-Q+ runtimes per TPC-H-like
// query (paper [37]: 1–4 % overhead for most queries).
func BenchmarkE3TPCHOverhead(b *testing.B) {
	db := tpch.Dirty(tpch.Generate(tpch.BenchConfig()), 0.05, 0, 21)
	for _, nq := range tpch.Queries() {
		plus, _, err := translate.Fig2b(nq.Q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(nq.Name+"/orig", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.SQL(db, nq.Q)
			}
		})
		b.Run(nq.Name+"/plus", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.Naive(db, plus)
			}
		})
	}
}

// BenchmarkE4BagBounds measures the bag-semantics pipeline: Q+ and Q?
// under EvalBag plus the exact □Q oracle on a small instance.
func BenchmarkE4BagBounds(b *testing.B) {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.AddMult(value.Consts("a"), 2)
	r.Add(value.Consts("b"))
	db.Add(r)
	s := relation.New("S", "x")
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	plus, _, err := translate.Fig2b(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bag-plus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algebra.EvalBag(db, plus, algebra.ModeNaive)
		}
	})
	b.Run("box-oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.BoxMult(db, q, value.Consts("a"), certain.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5CTableStrategies compares the four strategies of [36] on a
// TPC-H-like difference query.
func BenchmarkE5CTableStrategies(b *testing.B) {
	db := tpch.Dirty(tpch.Generate(tpch.SmallConfig()), 0.1, 0, 13)
	q := tpch.Queries()[0].Q
	for _, s := range []ctable.Strategy{ctable.Eager, ctable.SemiEager, ctable.Lazy, ctable.Aware} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctable.EvalTrue(db, q, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6MuConvergence measures µᵏ counting cost as k grows, against
// the pattern-based asymptotic µ.
func BenchmarkE6MuConvergence(b *testing.B) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(db.FreshNull()))
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("muK/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prob.MuK(db, q, nil, value.Consts("1"), k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("muK/k=64/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prob.MuKWith(db, q, nil, value.Consts("1"), 64, engine.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("mu-limit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prob.Mu(db, q, nil, value.Consts("1")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7ConditionalMu measures conditional-probability computation
// under an inclusion constraint.
func BenchmarkE7ConditionalMu(b *testing.B) {
	db := relation.NewDatabase()
	tt := relation.New("T", "a")
	tt.Add(value.Consts("1"))
	tt.Add(value.Consts("2"))
	db.Add(tt)
	s := relation.New("S", "a")
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
	q := algebra.Minus(algebra.R("T"), algebra.R("S"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prob.Mu(db, q, sigma, value.Consts("1")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8UnifSemantics measures three-valued FO evaluation under the
// unif semantics vs the Boolean baseline.
func BenchmarkE8UnifSemantics(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	db := gen.DB(r, gen.Config{MaxTuples: 8, NullRate: 0.3, NullPool: 4, ConstPool: 6})
	f := fo.Exists{V: "y", F: fo.And{
		L: fo.Atom{Rel: "R", Args: []fo.Term{fo.X("x"), fo.X("y")}},
		R: fo.Not{F: fo.Atom{Rel: "S", Args: []fo.Term{fo.X("y")}}},
	}}
	for _, sem := range []fo.Semantics{fo.Bool(), fo.UnifSem(), fo.SQLSem()} {
		b.Run(sem.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fo.Answers(db, f, []string{"x"}, sem)
			}
		})
	}
}

// BenchmarkE9SublogicSearch measures the L6v derivation plus the
// Theorem 5.3 exhaustive sublogic search.
func BenchmarkE9SublogicSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := logic.SixValued()
		if got := l.MaximalSublogics(); len(got) != 1 {
			b.Fatalf("unexpected sublogics: %v", got)
		}
	}
}

// BenchmarkE10FOTranslation measures the Boolean-FO compilation including
// the ⇑ expansion.
func BenchmarkE10FOTranslation(b *testing.B) {
	f := fo.Not{F: fo.Atom{Rel: "R", Args: []fo.Term{fo.X("x"), fo.X("x")}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pos, neg := fo.Translate(f, fo.UnifSem())
		fo.ExpandUnif(pos)
		fo.ExpandUnif(neg)
	}
}

// BenchmarkE11NaiveEval measures naive evaluation against the certain
// oracle on UCQs — equal results at vastly different cost (Theorem 4.4).
func BenchmarkE11NaiveEval(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	db := gen.DB(r, gen.DefaultConfig())
	qcfg := gen.DefaultQueryConfig()
	qcfg.Fragment = gen.FragmentUCQ
	q := gen.Query(r, qcfg, 1)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algebra.Naive(db, q)
		}
	})
	b.Run("oracle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := certain.WithNulls(db, q, certain.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12PrecisionRecall measures one precision/recall sweep cell:
// the oracle-vs-approximation comparison on the tiny dirty instance.
func BenchmarkE12PrecisionRecall(b *testing.B) {
	db := tpch.DirtyColumns(tpch.Generate(tpch.TinyConfig()),
		map[string][]int{"orders": {1, 2}}, 0.3, 2, 27)
	q := tpch.Queries()[0].Q // customers without orders
	plus, _, err := translate.Fig2b(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cert, err := certain.WithNulls(db, q, certain.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res := algebra.Naive(db, plus)
		if !res.SubsetOfSet(cert) {
			b.Fatal("correctness violation")
		}
	}
}

// BenchmarkTPCHMultiJoin measures the star- and chain-shaped multi-join
// queries end to end through the physical planner: cold pays compilation
// plus one execution (no plan cache), warm re-executes a prepared plan the
// way the oracles' per-world loops do. These queries are written with the
// largest relation syntactically first, so their runtime is dominated by
// how the planner orders the joins.
func BenchmarkTPCHMultiJoin(b *testing.B) {
	db := tpch.Dirty(tpch.Generate(tpch.BenchConfig()), 0.05, 0, 21)
	for _, nq := range tpch.MultiJoinQueries() {
		b.Run(nq.Name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan.Compile(nq.Q, db, algebra.ModeSQL).Exec(db)
			}
		})
		b.Run(nq.Name+"/warm", func(b *testing.B) {
			prep := plan.Compile(nq.Q, db, algebra.ModeSQL).Prepare(db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prep.Exec(db)
			}
		})
	}
}

// Operator micro-benchmarks.

func benchDB(n int) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	for i := 0; i < n; i++ {
		r.Add(value.Consts(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%7)))
	}
	db.Add(r)
	s := relation.New("S", "a", "b")
	for i := 0; i < n; i++ {
		s.Add(value.Consts(fmt.Sprintf("k%d", i*2), fmt.Sprintf("v%d", i%5)))
	}
	db.Add(s)
	return db
}

func BenchmarkOperatorJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		db := benchDB(n)
		q := algebra.Join(algebra.R("R"), algebra.R("S"), algebra.CEq(0, 2))
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.Naive(db, q)
			}
		})
	}
}

func BenchmarkOperatorAntiUnify(b *testing.B) {
	for _, n := range []int{100, 1000} {
		db := benchDB(n)
		// Inject a few nulls so the slow path is exercised.
		s := db.MustRelation("S")
		for i := 0; i < 5; i++ {
			s.Add(value.T(db.FreshNull(), value.Const("x")))
		}
		q := algebra.AntiJoin(algebra.R("R"), algebra.R("S"))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algebra.Naive(db, q)
			}
		})
	}
}

func BenchmarkOperatorDifference(b *testing.B) {
	db := benchDB(1000)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		algebra.Naive(db, q)
	}
}

func BenchmarkTupleUnification(b *testing.B) {
	l := value.T(value.Null(1), value.Null(1), value.Const("a"), value.Null(2))
	r := value.T(value.Const("x"), value.Null(3), value.Const("a"), value.Const("y"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		value.Unifiable(l, r)
	}
}

func BenchmarkCTableGround(b *testing.B) {
	f := ctable.FAnd{
		L: ctable.FOr{L: ctable.FEq{A: value.Null(1), B: value.Const("a")}, R: ctable.FNeq{A: value.Null(2), B: value.Const("b")}},
		R: ctable.FNot{F: ctable.FEqTuple{R: value.T(value.Null(1), value.Null(1)), S: value.T(value.Const("a"), value.Const("b"))}},
	}
	for i := 0; i < b.N; i++ {
		ctable.Ground(f)
	}
}
