# Development targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all fmt fmt-check vet build test race bench bench-compare bench-server smoke smoke-replication smoke-failover clean ci

all: build

# Remove build and benchmark artifacts.
clean:
	rm -rf bin bench-compare-out

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke pass proving every benchmark still
# runs, not a measurement.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Measure the working tree against the previous commit (or BASE=<ref>),
# report via benchstat when available, and emit BENCH_PR10.json. Fails when
# a gated oracle microbenchmark (E1/E11) regresses more than 25%; CI
# uploads the output as an artifact either way.
BASE ?= HEAD~1
bench-compare:
	./scripts/bench_compare.sh $(BASE)

# Warm-vs-cold prepared-plan cache throughput, the durable-load
# group-commit concurrency curve, a live /v1/metrics snapshot, and the
# sustained mixed-load harness (cmd/incdbload, tracing off vs on); emits
# BENCH_PR4.json, BENCH_PR6.json, BENCH_PR9.json and BENCH_PR10.json
# (see scripts/bench_server.sh).
bench-server:
	./scripts/bench_server.sh

# End-to-end incdbd smoke: start the server, load the example database,
# assert a certain answer, a prepared-plan cache hit, and an incdbctl
# trace span tree.
smoke:
	./scripts/smoke_incdbd.sh

# End-to-end replication smoke: durable primary + follower, byte-identical
# answers, consistency tokens, kill/restart resume.
smoke-replication:
	./scripts/smoke_replication.sh

# End-to-end failover smoke: kill -9 the primary, promote the follower,
# assert no acknowledged write lost, failover client re-routing, and the
# revived old primary fenced read-only then rejoining as a follower.
smoke-failover:
	./scripts/smoke_failover.sh

ci: fmt-check vet build race bench smoke smoke-replication smoke-failover
