package core

import (
	"math/big"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/constraint"
	"incdb/internal/ctable"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func exampleDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	return db
}

func TestEvaluationFrontends(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	if got := Naive(db, q); got.Len() != 1 {
		t.Fatalf("Naive = %v", got)
	}
	if got := SQL(db, q); got.Len() != 1 {
		t.Fatalf("SQL = %v (set difference is syntactic)", got)
	}
	if got := NaiveBag(db, q); got.Mult(value.Consts("1")) != 1 {
		t.Fatalf("NaiveBag = %v", got)
	}
	if got := SQLBag(db, q); got.Mult(value.Consts("1")) != 1 {
		t.Fatalf("SQLBag = %v", got)
	}
}

func TestCertaintyFrontends(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	cert, err := CertainWithNulls(db, q, certain.Options{})
	if err != nil || cert.Len() != 0 {
		t.Fatalf("cert⊥ = %v, %v", cert, err)
	}
	inter, err := CertainIntersection(db, q, certain.Options{})
	if err != nil || inter.Len() != 0 {
		t.Fatalf("cert∩ = %v, %v", inter, err)
	}
}

func TestApproximationFrontends(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	plus, err := ApproxPlus(db, q)
	if err != nil || plus.Len() != 0 {
		t.Fatalf("Q+ = %v, %v", plus, err)
	}
	poss, err := ApproxPossible(db, q)
	if err != nil || !poss.Contains(value.Consts("1")) {
		t.Fatalf("Q? = %v, %v", poss, err)
	}
	qt, qf, err := ApproxTrueFalse(db, q)
	if err != nil || qt.Len() != 0 {
		t.Fatalf("Qt = %v, %v", qt, err)
	}
	if qf == nil {
		t.Fatalf("Qf missing")
	}
	// Unsupported fragment: errors, not panics.
	if _, err := ApproxPlus(db, algebra.DomK(1)); err == nil {
		t.Fatalf("Dom must be rejected")
	}
}

func TestCTableFrontend(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	cpart, ppart, err := CTableAnswers(db, q, ctable.Aware)
	if err != nil {
		t.Fatal(err)
	}
	if cpart.Len() != 0 || !ppart.Contains(value.Consts("1")) {
		t.Fatalf("ctable = %v / %v", cpart, ppart)
	}
}

func TestProbabilisticFrontends(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	act, err := AlmostCertainlyTrue(db, q, value.Consts("1"))
	if err != nil || !act {
		t.Fatalf("1 should be almost certainly in R−S: %v %v", act, err)
	}
	mu, err := Mu(db, q, constraint.Set{}, value.Consts("1"))
	if err != nil || mu.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("µ = %v, %v", mu, err)
	}
}

func TestAnalyzeClassifiesErrors(t *testing.T) {
	// The tautology query: SQL misses the null tuple (false negative).
	db := relation.NewDatabase()
	p := relation.New("P", "oid")
	p.Add(value.Consts("o1"))
	p.Add(value.T(db.FreshNull()))
	db.Add(p)
	q := algebra.Sel(algebra.R("P"), algebra.COr(
		algebra.CEqC(0, value.Const("o2")),
		algebra.CNeqC(0, value.Const("o2")),
	))
	rep := Analyze(db, q, certain.Options{})
	if rep.CertainErr != nil {
		t.Fatal(rep.CertainErr)
	}
	if len(rep.FalseNegatives) != 1 {
		t.Fatalf("expected one false negative: %+v", rep)
	}
	if len(rep.FalsePositives) != 0 {
		t.Fatalf("no false positives expected: %+v", rep)
	}
	if rep.Plus == nil || rep.Poss == nil {
		t.Fatalf("approximations missing from report")
	}
	if rep.Query == "" {
		t.Fatalf("query rendering missing")
	}
}

func TestAnalyzeSurvivesOracleFailure(t *testing.T) {
	// Too many nulls: Analyze must degrade gracefully.
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b", "c", "d")
	for i := 0; i < 8; i++ {
		r.Add(value.T(db.FreshNull(), db.FreshNull(), db.FreshNull(), db.FreshNull()))
	}
	r.Add(value.Consts("a", "b", "c", "d"))
	db.Add(r)
	rep := Analyze(db, algebra.R("R"), certain.Options{MaxWorlds: 100})
	if rep.CertainErr == nil {
		t.Fatalf("expected oracle failure")
	}
	if rep.SQLAnswers == nil || rep.NaiveAnswers == nil {
		t.Fatalf("cheap evaluations must still be present")
	}
}
