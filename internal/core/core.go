// Package core is the headline API of the library: one place that ties
// together the evaluation procedures the paper studies — SQL's
// three-valued evaluation, naive evaluation, the exact certain-answer
// notions of Section 3, the tractable approximations of Section 4
// (Figure 2 rewritings and c-table strategies), and the probabilistic
// answers of Section 4.3 — over a single incomplete database and query.
package core

import (
	"fmt"
	"math/big"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/constraint"
	"incdb/internal/ctable"
	"incdb/internal/engine"
	"incdb/internal/prob"
	"incdb/internal/relation"
	"incdb/internal/translate"
	"incdb/internal/value"
)

// SQL evaluates the query the way a SQL engine does: Kleene's three-valued
// logic in conditions, keep only t (Sections 1 and 5.2). Fast (AC0 data
// complexity), but may return false positives and miss certain answers.
func SQL(db *relation.Database, q algebra.Expr) *relation.Relation {
	return algebra.SQL(db, q)
}

// Naive evaluates the query with nulls as fresh constants (Section 4.1).
// For unions of conjunctive queries (owa) and Pos∀G queries (cwa) this
// computes exactly the certain answers with nulls (Theorem 4.4).
func Naive(db *relation.Database, q algebra.Expr) *relation.Relation {
	return algebra.Naive(db, q)
}

// SQLBag and NaiveBag are the bag-semantics variants (Section 4.2).
func SQLBag(db *relation.Database, q algebra.Expr) *relation.Relation {
	return algebra.EvalBag(db, q, algebra.ModeSQL)
}

func NaiveBag(db *relation.Database, q algebra.Expr) *relation.Relation {
	return algebra.EvalBag(db, q, algebra.ModeNaive)
}

// CertainWithNulls computes cert⊥(Q, D) exactly (Definition 3.9) by
// enumerating the valuation space; exponential in |Null(D)| and therefore
// guarded by opts.MaxWorlds.
func CertainWithNulls(db *relation.Database, q algebra.Expr, opts certain.Options) (*relation.Relation, error) {
	return certain.WithNulls(db, q, opts)
}

// CertainIntersection computes cert∩(Q, D) exactly (Definition 3.7).
func CertainIntersection(db *relation.Database, q algebra.Expr, opts certain.Options) (*relation.Relation, error) {
	return certain.Intersection(db, q, opts)
}

// ApproxPlus evaluates the Q⁺ rewriting of Figure 2(b): a tractable subset
// of the certain answers (Theorem 4.7), equal to Q(D) on complete data.
func ApproxPlus(db *relation.Database, q algebra.Expr) (*relation.Relation, error) {
	plus, _, err := translate.Fig2b(q)
	if err != nil {
		return nil, err
	}
	return algebra.Naive(db, plus), nil
}

// ApproxPossible evaluates the Q? rewriting of Figure 2(b): a tractable
// superset of the possible answers.
func ApproxPossible(db *relation.Database, q algebra.Expr) (*relation.Relation, error) {
	_, poss, err := translate.Fig2b(q)
	if err != nil {
		return nil, err
	}
	return algebra.Naive(db, poss), nil
}

// ApproxTrueFalse evaluates the (Qᵗ, Qᶠ) rewriting of Figure 2(a):
// certainly-true and certainly-false answers (Theorem 4.6). Beware the
// active-domain products in Qᶠ — correct but infeasible beyond toy sizes,
// which is the point the survey makes about this scheme.
func ApproxTrueFalse(db *relation.Database, q algebra.Expr) (qt, qf *relation.Relation, err error) {
	t, f, err := translate.Fig2a(q, db)
	if err != nil {
		return nil, nil, err
	}
	return algebra.Naive(db, t), algebra.Naive(db, f), nil
}

// CTableAnswers evaluates the query over conditional tables with one of
// the four strategies of [36] (Theorem 4.9), returning the certain and
// possible parts.
func CTableAnswers(db *relation.Database, q algebra.Expr, s ctable.Strategy) (certainPart, possiblePart *relation.Relation, err error) {
	return CTableAnswersWith(db, q, s, engine.Options{})
}

// CTableAnswersWith is CTableAnswers with an explicit worker pool for the
// per-row condition construction and grounding.
func CTableAnswersWith(db *relation.Database, q algebra.Expr, s ctable.Strategy, eng engine.Options) (certainPart, possiblePart *relation.Relation, err error) {
	ct, err := ctable.EvalWith(db, q, s, eng)
	if err != nil {
		return nil, nil, err
	}
	return ct.Extract(true), ct.Extract(false), nil
}

// AlmostCertainlyTrue reports whether µ(Q, D, ā) = 1 (Theorem 4.10).
func AlmostCertainlyTrue(db *relation.Database, q algebra.Expr, t value.Tuple) (bool, error) {
	return prob.AlmostCertainlyTrue(db, q, t)
}

// Mu computes the asymptotic probability µ(Q|Σ, D, ā) as an exact
// rational; pass nil Σ for the unconditional µ (Theorems 4.10/4.11).
func Mu(db *relation.Database, q algebra.Expr, sigma constraint.Set, t value.Tuple) (*big.Rat, error) {
	return prob.Mu(db, q, sigma, t)
}

// MuWith is Mu with an explicit worker pool sharding the pattern
// enumeration.
func MuWith(db *relation.Database, q algebra.Expr, sigma constraint.Set, t value.Tuple, eng engine.Options) (*big.Rat, error) {
	return prob.MuWith(db, q, sigma, t, eng)
}

// MuK computes the finite-domain µᵏ with an explicit worker pool sharding
// the kⁿ valuation enumeration.
func MuK(db *relation.Database, q algebra.Expr, sigma constraint.Set, t value.Tuple, k int, eng engine.Options) (*big.Rat, error) {
	return prob.MuKWith(db, q, sigma, t, k, eng)
}

// Report compares the evaluation procedures on one query, classifying
// SQL's errors against the exact certain answers when the oracle is
// feasible.
type Report struct {
	Query string
	// SQLAnswers and NaiveAnswers always exist.
	SQLAnswers   *relation.Relation
	NaiveAnswers *relation.Relation
	// Plus ⊆ cert⊥ ⊆ … ⊆ Poss when the translation applies.
	Plus *relation.Relation
	Poss *relation.Relation
	// Certain is nil when the oracle was infeasible or the fragment
	// unsupported; CertainErr then says why.
	Certain    *relation.Relation
	CertainErr error
	// SQL errors relative to cert⊥ (Section 1's false positives/negatives).
	FalsePositives []value.Tuple
	FalseNegatives []value.Tuple
}

// Analyze runs every procedure on the query and classifies SQL's output.
func Analyze(db *relation.Database, q algebra.Expr, opts certain.Options) *Report {
	r := &Report{
		Query:        fmt.Sprint(q),
		SQLAnswers:   SQL(db, q),
		NaiveAnswers: Naive(db, q),
	}
	if plus, err := ApproxPlus(db, q); err == nil {
		r.Plus = plus
	}
	if poss, err := ApproxPossible(db, q); err == nil {
		r.Poss = poss
	}
	cert, err := CertainWithNulls(db, q, opts)
	if err != nil {
		r.CertainErr = err
		return r
	}
	r.Certain = cert
	r.SQLAnswers.Each(func(t value.Tuple, _ int) {
		if !cert.Contains(t) {
			r.FalsePositives = append(r.FalsePositives, t)
		}
	})
	cert.Each(func(t value.Tuple, _ int) {
		if !r.SQLAnswers.Contains(t) {
			r.FalseNegatives = append(r.FalseNegatives, t)
		}
	})
	return r
}
