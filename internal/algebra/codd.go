package algebra

import (
	"incdb/internal/relation"
)

// CoddCommutes tests the property discussed in Section 6 ("Marked nulls"):
// whether interpreting SQL nulls as non-repeating marked nulls commutes
// with query evaluation, i.e. whether Q(codd(D)) and codd(Q(D)) coincide
// up to a renaming of nulls. The paper notes this fails in general and
// that the class of queries enjoying it has no syntactic characterization
// [39]; this checker provides the semantic test. Evaluation is naive and
// set-based.
func CoddCommutes(db *relation.Database, q Expr) bool {
	left := Eval(relation.Codd(db), q, ModeNaive)
	right := coddRelation(Eval(db, q, ModeNaive))
	return relation.EqualUpToNullRenaming(left, right)
}

// coddRelation renumbers every null occurrence in a single relation.
func coddRelation(r *relation.Relation) *relation.Relation {
	wrap := relation.NewDatabase()
	wrap.Add(r.Clone())
	return relation.Codd(wrap).Relation(r.Name())
}
