package algebra

import (
	"fmt"
	"testing"

	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// referenceSelProduct is the textbook nested-loop σ_cond(L × R): the
// semantics the hash path must reproduce exactly, in both modes and under
// both set and bag multiplicities.
func referenceSelProduct(db *relation.Database, sel Select, prod Product, mode Mode, bag bool) *relation.Relation {
	env := newEvalEnv(db, mode, bag)
	l, r := eval(prod.L, env), eval(prod.R, env)
	out := relation.NewArity("ref", l.Arity()+r.Arity())
	l.Each(func(lt value.Tuple, lm int) {
		r.Each(func(rt value.Tuple, rm int) {
			joined := lt.Concat(rt)
			if evalCond(sel.Cond, joined, mode, env) == logic.T {
				out.AddMult(joined, multOf(lm*rm, env))
			}
		})
	})
	return out
}

func joinDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	for i := 0; i < 25; i++ {
		r.Add(value.Consts(fmt.Sprintf("k%d", i%9), fmt.Sprintf("v%d", i)))
	}
	r.Add(value.T(value.Null(1), value.Const("vx")))
	r.Add(value.T(value.Null(2), value.Const("vy")))
	r.AddMult(value.Consts("k1", "dup"), 3)
	db.Add(r)
	s := relation.New("S", "c", "d")
	for i := 0; i < 25; i++ {
		s.Add(value.Consts(fmt.Sprintf("k%d", i%7), fmt.Sprintf("w%d", i)))
	}
	s.Add(value.T(value.Null(1), value.Const("wx"))) // same marked null as R
	s.Add(value.T(value.Null(3), value.Const("wz")))
	s.AddMult(value.Consts("k1", "dupS"), 2)
	db.Add(s)
	return db
}

// TestHashJoinMatchesNestedLoop compares the index-backed equi-join against
// the nested-loop reference on instances with repeated keys, shared marked
// nulls, and bag multiplicities.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	db := joinDB()
	conds := []Cond{
		Eq{I: 0, J: 2},
		And{L: Eq{I: 0, J: 2}, R: NeqConst{I: 1, C: value.Const("dup")}},
		And{L: Eq{I: 2, J: 0}, R: Less{I: 1, J: 3}}, // reversed columns + extra conjunct
	}
	for ci, cond := range conds {
		sel := Select{In: Product{L: Rel{Name: "R"}, R: Rel{Name: "S"}}, Cond: cond}
		prod := sel.In.(Product)
		for _, mode := range []Mode{ModeNaive, ModeSQL} {
			for _, bag := range []bool{false, true} {
				var got *relation.Relation
				if bag {
					got = EvalBag(db, sel, mode)
				} else {
					got = Eval(db, sel, mode)
				}
				want := referenceSelProduct(db, sel, prod, mode, bag)
				if !got.Equal(want) {
					t.Errorf("cond %d mode %v bag %v:\nhash %s\nref  %s", ci, mode, bag, got, want)
				}
			}
		}
	}
}

// TestThreeValuedInHashPath pins the split-probe IN semantics: T via the
// null-free hash hit, U via subquery nulls, F when nothing can match, and
// the null-probe scan path.
func TestThreeValuedInHashPath(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("hit"))
	r.Add(value.Consts("miss"))
	r.Add(value.T(value.Null(9)))
	db.Add(r)
	s := relation.New("S", "x")
	s.Add(value.Consts("hit"))
	s.Add(value.T(value.Null(1)))
	db.Add(s)

	q := Sel(Rel{Name: "R"}, InSub{Cols: []int{0}, Sub: Rel{Name: "S"}})
	got := Eval(db, q, ModeSQL)
	// SQL keeps only t rows: "hit" matches the null-free part; "miss" is
	// unknown (the subquery null); the null probe is unknown.
	if got.Len() != 1 || !got.Contains(value.Consts("hit")) {
		t.Errorf("IN under SQL = %s, want {hit}", got)
	}

	// NOT IN flips t and f: with a null in S nothing is certainly absent.
	qn := Sel(Rel{Name: "R"}, Not{C: InSub{Cols: []int{0}, Sub: Rel{Name: "S"}}})
	if got := Eval(db, qn, ModeSQL); got.Len() != 0 {
		t.Errorf("NOT IN under SQL = %s, want ∅", got)
	}

	// Without the subquery null, "miss" is certainly absent.
	db2 := relation.NewDatabase()
	r2 := relation.New("R", "a")
	r2.Add(value.Consts("hit"))
	r2.Add(value.Consts("miss"))
	db2.Add(r2)
	s2 := relation.New("S", "x")
	s2.Add(value.Consts("hit"))
	db2.Add(s2)
	if got := Eval(db2, qn, ModeSQL); got.Len() != 1 || !got.Contains(value.Consts("miss")) {
		t.Errorf("NOT IN without nulls = %s, want {miss}", got)
	}

	// Naive mode: marked nulls are fresh constants, ⊥9 ∉ S.
	if got := Eval(db, q, ModeNaive); got.Len() != 1 || !got.Contains(value.Consts("hit")) {
		t.Errorf("IN under naive = %s, want {hit}", got)
	}
}
