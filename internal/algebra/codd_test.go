package algebra

import (
	"testing"

	"incdb/internal/relation"
	"incdb/internal/value"
)

// Section 6 ("Marked nulls"): coddification commutes with projection-style
// queries but not with queries whose answers depend on null repetition.
func TestCoddCommutesForSimpleProjection(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(c("1"), n(1)))
	r.Add(value.T(n(2), c("2")))
	db.Add(r)
	if !CoddCommutes(db, Proj(Rel{"R"}, 0)) {
		t.Fatalf("projection should commute with codd")
	}
	if !CoddCommutes(db, Rel{"R"}) {
		t.Fatalf("identity should commute with codd (each null occurs once)")
	}
}

func TestCoddFailsOnRepetitionSensitiveQuery(t *testing.T) {
	// D = {R(⊥1, ⊥1)}: σ_{a=b}(R) returns the tuple on D (the repeated
	// marked null certainly matches itself) but returns nothing on
	// codd(D), where the two occurrences become distinct nulls.
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(n(1), n(1)))
	db.Add(r)
	q := Sel(Rel{"R"}, Eq{0, 1})
	if CoddCommutes(db, q) {
		t.Fatalf("σ_{a=b} must distinguish marked from Codd nulls")
	}
	// Sanity: on the original D the selection keeps the row.
	if Eval(db, q, ModeNaive).Len() != 1 {
		t.Fatalf("marked-null self-join lost")
	}
	// And on codd(D) it does not.
	if Eval(relation.Codd(db), q, ModeNaive).Len() != 0 {
		t.Fatalf("codd nulls must not self-join")
	}
}

func TestCoddCommutesOnCoddDatabases(t *testing.T) {
	// If D already has non-repeating nulls, codd(D) only renames them, so
	// every generic query commutes.
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(c("1"), n(1)))
	r.Add(value.T(n(2), c("2")))
	db.Add(r)
	queries := []Expr{
		Sel(Rel{"R"}, Eq{0, 1}),
		Proj(Rel{"R"}, 1, 0),
		Union{Rel{"R"}, Rel{"R"}},
		Diff{Rel{"R"}, Sel(Rel{"R"}, EqConst{0, c("1")})},
	}
	for _, q := range queries {
		if !CoddCommutes(db, q) {
			t.Errorf("query %s should commute on a Codd database", q)
		}
	}
}
