package algebra

// UsedColumns computes, for each base relation the query reads, which
// columns can influence the query's set-semantics result. A valuation
// change confined to nulls in unused columns leaves Q(v(D)) unchanged:
// operators either never look at those positions (projections drop them,
// conditions do not mention them) or force full usage (difference,
// intersection, division, ⋉⇑ and IN compare entire tuples, so their
// subtrees mark every column used). The certain-answer oracle uses this to
// shrink its valuation space.
//
// The analysis is sound for set semantics only: under bag semantics,
// changing an unused column can collapse two source tuples and alter
// multiplicities downstream.
func UsedColumns(e Expr, cat Catalog) map[string][]bool {
	out := map[string][]bool{}
	markUsed(e, allNeeded(Arity(e, cat)), cat, out)
	return out
}

func allNeeded(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// markUsed propagates the needed-columns mask of e's output down to the
// base relations.
func markUsed(e Expr, needed []bool, cat Catalog, out map[string][]bool) {
	switch e := e.(type) {
	case Rel:
		m := out[e.Name]
		if m == nil {
			m = make([]bool, cat.Arity(e.Name))
			out[e.Name] = m
		}
		for i, b := range needed {
			if b {
				m[i] = true
			}
		}

	case Dom:
		// Dom reads every value of every relation.
		// (Handled by the caller: RelationsOf reports usesDom.)

	case Select:
		n := append([]bool(nil), needed...)
		markCondUsed(e.Cond, n, cat, out)
		markUsed(e.In, n, cat, out)

	case Project:
		inAr := Arity(e.In, cat)
		n := make([]bool, inAr)
		for i, col := range e.Cols {
			if needed[i] {
				n[col] = true
			}
		}
		markUsed(e.In, n, cat, out)

	case Product:
		la := Arity(e.L, cat)
		markUsed(e.L, needed[:la], cat, out)
		markUsed(e.R, needed[la:], cat, out)

	case Union:
		markUsed(e.L, needed, cat, out)
		markUsed(e.R, needed, cat, out)

	case Diff:
		// Whole tuples are compared: everything is used.
		full := allNeeded(Arity(e.L, cat))
		markUsed(e.L, full, cat, out)
		markUsed(e.R, full, cat, out)

	case Intersect:
		full := allNeeded(Arity(e.L, cat))
		markUsed(e.L, full, cat, out)
		markUsed(e.R, full, cat, out)

	case Divide:
		markUsed(e.L, allNeeded(Arity(e.L, cat)), cat, out)
		markUsed(e.R, allNeeded(Arity(e.R, cat)), cat, out)

	case AntiUnify:
		full := allNeeded(Arity(e.L, cat))
		markUsed(e.L, full, cat, out)
		markUsed(e.R, full, cat, out)
	}
}

// markCondUsed adds the columns a condition reads to the mask, and marks
// IN-subqueries fully used.
func markCondUsed(c Cond, needed []bool, cat Catalog, out map[string][]bool) {
	switch c := c.(type) {
	case Eq:
		needed[c.I], needed[c.J] = true, true
	case Neq:
		needed[c.I], needed[c.J] = true, true
	case Less:
		needed[c.I], needed[c.J] = true, true
	case EqConst:
		needed[c.I] = true
	case NeqConst:
		needed[c.I] = true
	case LessConst:
		needed[c.I] = true
	case GreaterConst:
		needed[c.I] = true
	case IsNull:
		needed[c.I] = true
	case IsConst:
		needed[c.I] = true
	case And:
		markCondUsed(c.L, needed, cat, out)
		markCondUsed(c.R, needed, cat, out)
	case Or:
		markCondUsed(c.L, needed, cat, out)
		markCondUsed(c.R, needed, cat, out)
	case Not:
		markCondUsed(c.C, needed, cat, out)
	case InSub:
		for _, col := range c.Cols {
			needed[col] = true
		}
		markUsed(c.Sub, allNeeded(Arity(c.Sub, cat)), cat, out)
	}
}
