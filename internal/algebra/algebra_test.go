package algebra

import (
	"strings"
	"testing"

	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func c(s string) value.Value  { return value.Const(s) }
func n(id uint64) value.Value { return value.Null(id) }

func db1() *relation.Database {
	d := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(c("1"), c("2")))
	r.Add(value.T(c("1"), n(1)))
	r.Add(value.T(n(2), n(2)))
	d.Add(r)
	s := relation.New("S", "x")
	s.Add(value.T(c("1")))
	s.Add(value.T(n(1)))
	d.Add(s)
	return d
}

func TestArityAndValidate(t *testing.T) {
	d := db1()
	cases := []struct {
		e    Expr
		want int
	}{
		{Rel{"R"}, 2},
		{Proj(Rel{"R"}, 0), 1},
		{Product{Rel{"R"}, Rel{"S"}}, 3},
		{Union{Rel{"S"}, Proj(Rel{"R"}, 1)}, 1},
		{Diff{Rel{"S"}, Rel{"S"}}, 1},
		{Intersect{Rel{"S"}, Rel{"S"}}, 1},
		{Divide{Rel{"R"}, Rel{"S"}}, 1},
		{AntiUnify{Rel{"S"}, Rel{"S"}}, 1},
		{Dom{3}, 3},
		{Sel(Rel{"R"}, Eq{0, 1}), 2},
	}
	for _, tc := range cases {
		if got := Arity(tc.e, d); got != tc.want {
			t.Errorf("Arity(%s) = %d, want %d", tc.e, got, tc.want)
		}
		if err := Validate(tc.e, d); err != nil {
			t.Errorf("Validate(%s): %v", tc.e, err)
		}
	}
	bad := []Expr{
		Rel{"missing"},
		Union{Rel{"R"}, Rel{"S"}},
		Proj(Rel{"S"}, 4),
		Divide{Rel{"S"}, Rel{"R"}},
		Sel(Rel{"S"}, Eq{0, 5}),
		Sel(Rel{"S"}, EqConst{0, n(1)}),
		Sel(Rel{"S"}, InSub{Cols: []int{0}, Sub: Rel{"R"}}),
	}
	for _, e := range bad {
		if err := Validate(e, d); err == nil {
			t.Errorf("Validate(%s) should fail", e)
		}
	}
}

func TestEvalRelSetAndBag(t *testing.T) {
	d := relation.NewDatabase()
	r := relation.New("R", "a")
	r.AddMult(value.Consts("x"), 3)
	d.Add(r)
	if got := Eval(d, Rel{"R"}, ModeNaive); got.Mult(value.Consts("x")) != 1 {
		t.Fatalf("set eval should normalize, got %v", got)
	}
	if got := EvalBag(d, Rel{"R"}, ModeNaive); got.Mult(value.Consts("x")) != 3 {
		t.Fatalf("bag eval should keep multiplicities, got %v", got)
	}
	// Source must not be mutated by evaluation.
	if r.Mult(value.Consts("x")) != 3 {
		t.Fatalf("evaluation mutated the database")
	}
}

func TestSelectNaiveVsSQLOnNulls(t *testing.T) {
	d := db1()
	// σ_{a=b}(R): naive keeps (⊥2,⊥2) (same marked null), SQL drops it.
	q := Sel(Rel{"R"}, Eq{0, 1})
	naive := Eval(d, q, ModeNaive)
	if !naive.Contains(value.T(n(2), n(2))) {
		t.Errorf("naive should keep (⊥2,⊥2): %v", naive)
	}
	if naive.Contains(value.T(c("1"), n(1))) {
		t.Errorf("naive must not equate ⊥1 with 1")
	}
	sql := Eval(d, q, ModeSQL)
	if sql.Len() != 0 {
		t.Errorf("SQL mode: comparisons with nulls are unknown, got %v", sql)
	}
}

func TestSelectConstNullTests(t *testing.T) {
	d := db1()
	nullB := Eval(d, Sel(Rel{"R"}, IsNull{1}), ModeSQL)
	if nullB.Len() != 2 {
		t.Errorf("two rows have null b: %v", nullB)
	}
	constB := Eval(d, Sel(Rel{"R"}, IsConst{1}), ModeSQL)
	if constB.Len() != 1 || !constB.Contains(value.T(c("1"), c("2"))) {
		t.Errorf("const(b) wrong: %v", constB)
	}
}

func TestTautologyFailsInSQLMode(t *testing.T) {
	// The introduction's third example: oid='o2' OR oid<>'o2' misses rows
	// with nulls under SQL evaluation.
	d := relation.NewDatabase()
	p := relation.New("P", "cid", "oid")
	p.Add(value.Consts("c1", "o1"))
	p.Add(value.T(c("c2"), n(1)))
	d.Add(p)
	q := Proj(Sel(Rel{"P"}, Or{EqConst{1, c("o2")}, NeqConst{1, c("o2")}}), 0)
	got := Eval(d, q, ModeSQL)
	if got.Len() != 1 || !got.Contains(value.Consts("c1")) {
		t.Fatalf("SQL evaluation of tautology = %v, want {c1}", got)
	}
	// Naive evaluation returns both: ⊥1 ≠ o2 as a fresh constant.
	naive := Eval(d, q, ModeNaive)
	if naive.Len() != 2 {
		t.Fatalf("naive = %v, want both customers", naive)
	}
}

func TestProductUnionDiffIntersect(t *testing.T) {
	d := relation.NewDatabase()
	a := relation.New("A", "x")
	a.Add(value.Consts("1"))
	a.Add(value.Consts("2"))
	d.Add(a)
	b := relation.New("B", "y")
	b.Add(value.Consts("2"))
	b.Add(value.Consts("3"))
	d.Add(b)

	prod := Eval(d, Product{Rel{"A"}, Rel{"B"}}, ModeNaive)
	if prod.Len() != 4 || prod.Arity() != 2 {
		t.Errorf("product wrong: %v", prod)
	}
	un := Eval(d, Union{Rel{"A"}, Rel{"B"}}, ModeNaive)
	if un.Len() != 3 {
		t.Errorf("union wrong: %v", un)
	}
	df := Eval(d, Diff{Rel{"A"}, Rel{"B"}}, ModeNaive)
	if df.Len() != 1 || !df.Contains(value.Consts("1")) {
		t.Errorf("difference wrong: %v", df)
	}
	in := Eval(d, Intersect{Rel{"A"}, Rel{"B"}}, ModeNaive)
	if in.Len() != 1 || !in.Contains(value.Consts("2")) {
		t.Errorf("intersection wrong: %v", in)
	}
}

func TestBagSemanticsArithmetic(t *testing.T) {
	d := relation.NewDatabase()
	a := relation.New("A", "x")
	a.AddMult(value.Consts("t"), 3)
	d.Add(a)
	b := relation.New("B", "x")
	b.AddMult(value.Consts("t"), 1)
	d.Add(b)

	if got := EvalBag(d, Union{Rel{"A"}, Rel{"B"}}, ModeNaive); got.Mult(value.Consts("t")) != 4 {
		t.Errorf("bag union adds: got %d", got.Mult(value.Consts("t")))
	}
	if got := EvalBag(d, Diff{Rel{"A"}, Rel{"B"}}, ModeNaive); got.Mult(value.Consts("t")) != 2 {
		t.Errorf("bag difference subtracts: got %d", got.Mult(value.Consts("t")))
	}
	if got := EvalBag(d, Diff{Rel{"B"}, Rel{"A"}}, ModeNaive); got.Len() != 0 {
		t.Errorf("bag difference clamps at zero: got %v", got)
	}
	if got := EvalBag(d, Intersect{Rel{"A"}, Rel{"B"}}, ModeNaive); got.Mult(value.Consts("t")) != 1 {
		t.Errorf("bag intersection takes min: got %v", got)
	}
	if got := EvalBag(d, Product{Rel{"A"}, Rel{"B"}}, ModeNaive); got.Mult(value.Consts("t", "t")) != 3 {
		t.Errorf("bag product multiplies: got %v", got)
	}
	if got := EvalBag(d, Proj(Union{Rel{"A"}, Rel{"B"}}, 0), ModeNaive); got.Mult(value.Consts("t")) != 4 {
		t.Errorf("bag projection sums: got %v", got)
	}
}

func TestDivision(t *testing.T) {
	// Employees participating in all projects: works ÷ projects.
	d := relation.NewDatabase()
	w := relation.New("Works", "emp", "proj")
	w.Add(value.Consts("ann", "p1"))
	w.Add(value.Consts("ann", "p2"))
	w.Add(value.Consts("bob", "p1"))
	d.Add(w)
	p := relation.New("Proj", "proj")
	p.Add(value.Consts("p1"))
	p.Add(value.Consts("p2"))
	d.Add(p)
	got := Eval(d, Divide{Rel{"Works"}, Rel{"Proj"}}, ModeNaive)
	if got.Len() != 1 || !got.Contains(value.Consts("ann")) {
		t.Fatalf("division = %v, want {ann}", got)
	}
	// Empty divisor: every left projection qualifies.
	d.Add(relation.New("None", "proj"))
	all := Eval(d, Divide{Rel{"Works"}, Rel{"None"}}, ModeNaive)
	if all.Len() != 2 {
		t.Fatalf("division by empty = %v", all)
	}
}

func TestAntiUnify(t *testing.T) {
	d := relation.NewDatabase()
	l := relation.New("L", "a", "b")
	l.Add(value.T(c("1"), c("2")))
	l.Add(value.T(c("3"), c("4")))
	l.Add(value.T(n(1), n(1)))
	d.Add(l)
	r := relation.New("Rr", "a", "b")
	r.Add(value.T(c("1"), n(2))) // unifies with (1,2)
	r.Add(value.T(c("7"), c("8")))
	d.Add(r)
	got := Eval(d, AntiUnify{Rel{"L"}, Rel{"Rr"}}, ModeNaive)
	// (1,2) unifies with (1,⊥2); (⊥1,⊥1) unifies with (7,8)? ⊥1=7 and ⊥1=8
	// conflict — no; but (⊥1,⊥1) unifies with (1,⊥2). So only (3,4) survives.
	if got.Len() != 1 || !got.Contains(value.Consts("3", "4")) {
		t.Fatalf("anti-unify = %v, want {(3,4)}", got)
	}
}

func TestDomPower(t *testing.T) {
	d := db1()
	adom := len(d.ActiveDomain())
	got := Eval(d, Dom{2}, ModeNaive)
	if got.Len() != adom*adom {
		t.Fatalf("Dom^2 size = %d, want %d", got.Len(), adom*adom)
	}
	empty := Eval(d, Dom{0}, ModeNaive)
	if !BooleanResult(empty) {
		t.Fatalf("Dom^0 must be the singleton empty tuple")
	}
}

func TestInSubThreeValued(t *testing.T) {
	// NOT IN with a null in the subquery: the unpaid-orders anomaly.
	d := relation.NewDatabase()
	o := relation.New("O", "oid")
	o.Add(value.Consts("o1"))
	o.Add(value.Consts("o2"))
	o.Add(value.Consts("o3"))
	d.Add(o)
	p := relation.New("P", "oid")
	p.Add(value.Consts("o1"))
	p.Add(value.T(n(1)))
	d.Add(p)
	q := Sel(Rel{"O"}, Not{InSub{Cols: []int{0}, Sub: Rel{"P"}}})
	got := Eval(d, q, ModeSQL)
	if got.Len() != 0 {
		t.Fatalf("SQL NOT IN with null should return nothing, got %v", got)
	}
	// Positive IN: o1 IN P is t even with the null present.
	pos := Eval(d, Sel(Rel{"O"}, InSub{Cols: []int{0}, Sub: Rel{"P"}}), ModeSQL)
	if pos.Len() != 1 || !pos.Contains(value.Consts("o1")) {
		t.Fatalf("SQL IN = %v, want {o1}", pos)
	}
	// Naive mode treats the null as a fresh constant: o2, o3 pass NOT IN.
	naive := Eval(d, q, ModeNaive)
	if naive.Len() != 2 {
		t.Fatalf("naive NOT IN = %v", naive)
	}
}

func TestLessComparisons(t *testing.T) {
	d := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.Consts("3", "10"))
	r.Add(value.Consts("10", "3"))
	r.Add(value.T(n(1), c("10")))
	d.Add(r)
	lt := Eval(d, Sel(Rel{"R"}, Less{0, 1}), ModeSQL)
	if lt.Len() != 1 || !lt.Contains(value.Consts("3", "10")) {
		t.Fatalf("numeric < wrong: %v", lt)
	}
	ltc := Eval(d, Sel(Rel{"R"}, LessConst{0, c("5")}), ModeSQL)
	if ltc.Len() != 1 || !ltc.Contains(value.Consts("3", "10")) {
		t.Fatalf("< const wrong: %v", ltc)
	}
	gtc := Eval(d, Sel(Rel{"R"}, GreaterConst{0, c("5")}), ModeSQL)
	if gtc.Len() != 1 || !gtc.Contains(value.Consts("10", "3")) {
		t.Fatalf("> const wrong: %v", gtc)
	}
	// Null comparisons: F under naive, dropped under SQL too (never t).
	if got := Eval(d, Sel(Rel{"R"}, Less{0, 1}), ModeNaive); got.Contains(value.T(n(1), c("10"))) {
		t.Fatalf("naive must not order nulls")
	}
}

func TestNegatePushesThrough(t *testing.T) {
	cond := And{Eq{0, 1}, IsNull{0}}
	neg := Negate(cond)
	// ¬(A=B ∧ null(A)) = A≠B ∨ const(A) — the paper's example.
	or, ok := neg.(Or)
	if !ok {
		t.Fatalf("Negate shape: %T", neg)
	}
	if _, ok := or.L.(Neq); !ok {
		t.Fatalf("left should be ≠: %v", or)
	}
	if _, ok := or.R.(IsConst); !ok {
		t.Fatalf("right should be const: %v", or)
	}
	if _, ok := Negate(Not{Eq{0, 1}}).(Eq); !ok {
		t.Fatalf("double negation should cancel")
	}
	if _, ok := Negate(True{}).(False); !ok {
		t.Fatalf("¬true = false")
	}
}

func TestNegateIsComplementUnderSQL(t *testing.T) {
	// For every grammar condition and tuple: eval(¬θ) = ¬eval(θ) in L3v.
	tuples := []value.Tuple{
		value.Consts("1", "1"), value.Consts("1", "2"),
		value.T(n(1), c("1")), value.T(n(1), n(1)), value.T(n(1), n(2)),
		value.Consts("2", "10"),
	}
	conds := []Cond{
		Eq{0, 1}, Neq{0, 1}, EqConst{0, c("1")}, NeqConst{1, c("2")},
		IsNull{0}, IsConst{1}, Less{0, 1}, LessConst{0, c("5")}, GreaterConst{0, c("5")},
		And{Eq{0, 1}, IsConst{0}}, Or{IsNull{0}, EqConst{1, c("1")}},
		True{}, False{},
	}
	env := &evalEnv{subs: map[string]*relation.Relation{}}
	for _, cd := range conds {
		for _, tp := range tuples {
			for _, mode := range []Mode{ModeNaive, ModeSQL} {
				got := evalCond(Negate(cd), tp, mode, env)
				want := logic.Not(evalCond(cd, tp, mode, env))
				if got != want {
					t.Errorf("mode %v: eval(¬(%s))(%v) = %v, want %v", mode, cd, tp, got, want)
				}
			}
		}
	}
}

func TestStarGuardsDisequalities(t *testing.T) {
	env := &evalEnv{subs: map[string]*relation.Relation{}}
	// ⊥1 ≠ 'c' is naively true but not certain; θ* must reject it.
	tp := value.T(n(1), c("c"))
	if evalCond(NeqConst{0, c("c")}, tp, ModeNaive, env) != logic.T {
		t.Fatalf("naive ≠ should hold on a null")
	}
	if evalCond(Star(NeqConst{0, c("c")}), tp, ModeNaive, env) != logic.F {
		t.Fatalf("θ* must guard ≠ with const()")
	}
	// Constants still pass.
	tp2 := value.Consts("a", "c")
	if evalCond(Star(NeqConst{0, c("c")}), tp2, ModeNaive, env) != logic.T {
		t.Fatalf("θ* must keep certain disequalities")
	}
	// ⊥1 ≠ ⊥2 likewise guarded; ⊥1 = ⊥1 stays (certainly equal).
	tp3 := value.T(n(1), n(2))
	if evalCond(Star(Neq{0, 1}), tp3, ModeNaive, env) != logic.F {
		t.Fatalf("θ* must guard attribute ≠")
	}
	tp4 := value.T(n(1), n(1))
	if evalCond(Star(Eq{0, 1}), tp4, ModeNaive, env) != logic.T {
		t.Fatalf("⊥=⊥ (same null) is certain and must pass θ*")
	}
}

func TestStarRejectsInSub(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Star must reject IN subqueries")
		}
	}()
	Star(InSub{Cols: []int{0}, Sub: Rel{"R"}})
}

func TestNodesAndString(t *testing.T) {
	e := Sel(Product{Rel{"R"}, Rel{"S"}}, And{Eq{0, 2}, NeqConst{1, c("x")}})
	if Nodes(e) < 6 {
		t.Fatalf("Nodes = %d", Nodes(e))
	}
	s := e.String()
	for _, frag := range []string{"σ", "×", "∧", "≠"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String %q missing %q", s, frag)
		}
	}
	if (Dom{2}).String() != "Dom^2" {
		t.Fatalf("Dom string wrong")
	}
}

func TestBooleanResult(t *testing.T) {
	d := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("x"))
	d.Add(r)
	yes := Eval(d, Proj(Sel(Rel{"R"}, EqConst{0, c("x")})), ModeNaive)
	if !BooleanResult(yes) {
		t.Fatalf("Boolean query should be true")
	}
	no := Eval(d, Proj(Sel(Rel{"R"}, EqConst{0, c("zz")})), ModeNaive)
	if BooleanResult(no) {
		t.Fatalf("Boolean query should be false")
	}
}

func TestJoinHelper(t *testing.T) {
	d := relation.NewDatabase()
	a := relation.New("A", "x", "y")
	a.Add(value.Consts("1", "a"))
	d.Add(a)
	b := relation.New("B", "x", "z")
	b.Add(value.Consts("1", "b"))
	b.Add(value.Consts("2", "c"))
	d.Add(b)
	got := Eval(d, Join(Rel{"A"}, Rel{"B"}, Eq{0, 2}), ModeNaive)
	if got.Len() != 1 || !got.Contains(value.Consts("1", "a", "1", "b")) {
		t.Fatalf("join = %v", got)
	}
}
