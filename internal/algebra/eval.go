package algebra

import (
	"fmt"

	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Mode selects how conditions treat nulls during evaluation.
type Mode int

const (
	// ModeNaive is naive evaluation (Section 4.1): nulls behave as fresh
	// constants and evaluation is two-valued. For unions of conjunctive
	// queries (owa) and Pos∀G queries (cwa) this computes certain answers
	// with nulls (Theorem 4.4).
	ModeNaive Mode = iota
	// ModeSQL is SQL's evaluation: conditions are evaluated in Kleene's
	// three-valued logic, comparisons involving nulls are unknown, and
	// only rows whose condition is t are kept (the ↑ collapse of §5.2).
	ModeSQL
)

func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeSQL:
		return "sql"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// evalEnv carries per-evaluation state: the database, the mode, bag/set
// semantics, a cache of evaluated IN-subqueries (uncorrelated, so one
// evaluation each suffices), and a cache of their null-free/with-nulls
// splits for the three-valued IN probe. Both caches are keyed by the
// expression's rendering, which is a faithful encoding of the AST; the
// rendering is computed once per enclosing selection evaluation (bindCond),
// never per row.
type evalEnv struct {
	db     *relation.Database
	mode   Mode
	bag    bool
	subs   map[string]*relation.Relation
	splits map[string]*inSplit
}

func newEvalEnv(db *relation.Database, mode Mode, bag bool) *evalEnv {
	return &evalEnv{db: db, mode: mode, bag: bag,
		subs: map[string]*relation.Relation{}, splits: map[string]*inSplit{}}
}

func (env *evalEnv) subResult(e Expr) *relation.Relation {
	key := e.String()
	if r, ok := env.subs[key]; ok {
		return r
	}
	// Subquery results are compared set-wise by IN; evaluate as a set.
	sub := &evalEnv{db: env.db, mode: env.mode, bag: false, subs: env.subs, splits: env.splits}
	r := eval(e, sub)
	env.subs[key] = r
	return r
}

// inSplit partitions an IN-subquery result for the three-valued probe: a
// null-free part answered by one hash lookup and the (typically few) rows
// with nulls, the only rows that can make a null-free probe unknown.
type inSplit struct {
	nullFree  *relation.Relation
	withNulls []value.Tuple
}

func (env *evalEnv) inSplitOf(e Expr) *inSplit {
	key := e.String()
	if s, ok := env.splits[key]; ok {
		return s
	}
	sub := env.subResult(e)
	s := &inSplit{nullFree: relation.NewArity("in", sub.Arity())}
	sub.Each(func(t value.Tuple, _ int) {
		if t.HasNull() {
			s.withNulls = append(s.withNulls, t)
		} else {
			s.nullFree.Add(t)
		}
	})
	env.splits[key] = s
	return s
}

// planner, when installed by internal/plan, replaces the tree-walking
// interpreter as the default evaluation path: queries are compiled once
// into physical plans (with selection pushdown and n-ary hash joins) and
// re-executed per database. The hook breaks the import cycle that a direct
// dependency would create; internal/plan registers itself from its init, so
// any binary linking the planner gets the planned path everywhere.
var planner func(db *relation.Database, e Expr, mode Mode, bag bool) *relation.Relation

// RegisterPlanner installs the planned evaluation path. It must be called
// from an init function (it is not synchronized); results must be
// indistinguishable from the reference interpreter's.
func RegisterPlanner(f func(db *relation.Database, e Expr, mode Mode, bag bool) *relation.Relation) {
	planner = f
}

// Eval evaluates e on db under set semantics in the given mode, through the
// compiled-plan path when a planner is registered.
func Eval(db *relation.Database, e Expr, mode Mode) *relation.Relation {
	if planner != nil {
		return planner(db, e, mode, false)
	}
	return EvalInterp(db, e, mode)
}

// EvalBag evaluates e on db under bag semantics (Section 4.2) in the given
// mode: union adds multiplicities, difference subtracts them to zero,
// product multiplies, projection sums, selection preserves.
func EvalBag(db *relation.Database, e Expr, mode Mode) *relation.Relation {
	if planner != nil {
		return planner(db, e, mode, true)
	}
	return EvalBagInterp(db, e, mode)
}

// EvalInterp evaluates e with the tree-walking reference interpreter,
// bypassing any registered planner. The interpreter is the semantic ground
// truth the planner is equivalence-tested against.
func EvalInterp(db *relation.Database, e Expr, mode Mode) *relation.Relation {
	return eval(e, newEvalEnv(db, mode, false))
}

// EvalBagInterp is the bag-semantics reference interpreter.
func EvalBagInterp(db *relation.Database, e Expr, mode Mode) *relation.Relation {
	return eval(e, newEvalEnv(db, mode, true))
}

// Naive is shorthand for Eval in ModeNaive — the Qnaïve(D) of Section 4.1.
func Naive(db *relation.Database, e Expr) *relation.Relation {
	return Eval(db, e, ModeNaive)
}

// SQL is shorthand for Eval in ModeSQL — what a SQL engine returns.
func SQL(db *relation.Database, e Expr) *relation.Relation {
	return Eval(db, e, ModeSQL)
}

func eval(e Expr, env *evalEnv) *relation.Relation {
	switch e := e.(type) {
	case Rel:
		src := env.db.Relation(e.Name)
		if src == nil {
			panic("algebra: unknown relation " + e.Name)
		}
		out := src.Clone()
		if !env.bag {
			out.Normalize()
		}
		return out

	case Select:
		// Hash equi-join: σ with a conjunct equating a left and a right
		// column of a product joins by hashing instead of enumerating the
		// full product. Sound for the keep-t filter in both modes: t
		// requires the equality conjunct to be t, which under ModeSQL
		// means equal constants and under ModeNaive equal values.
		if prod, ok := e.In.(Product); ok {
			if li, ri, ok := crossEqConjunct(e.Cond, prod, env); ok {
				return hashJoin(e, prod, li, ri, env)
			}
		}
		in := eval(e.In, env)
		out := relation.NewArity("σ", in.Arity())
		cond := e.Cond
		if in.Len() > 0 { // empty input: stay lazy, resolve no subqueries
			cond = env.bindCond(cond)
		}
		in.Each(func(t value.Tuple, m int) {
			if evalCond(cond, t, env.mode, env) == logic.T {
				out.AddMult(t, multOf(m, env))
			}
		})
		return out

	case Project:
		in := eval(e.In, env)
		out := relation.NewArity("π", len(e.Cols))
		in.Each(func(t value.Tuple, m int) {
			out.AddMult(t.Project(e.Cols), multOf(m, env))
		})
		if !env.bag {
			out.Normalize()
		}
		return out

	case Product:
		l, r := eval(e.L, env), eval(e.R, env)
		out := relation.NewArity("×", l.Arity()+r.Arity())
		l.Each(func(lt value.Tuple, lm int) {
			r.Each(func(rt value.Tuple, rm int) {
				out.AddMult(lt.Concat(rt), multOf(lm*rm, env))
			})
		})
		return out

	case Union:
		l, r := eval(e.L, env), eval(e.R, env)
		out := relation.NewArity("∪", l.Arity())
		l.Each(func(t value.Tuple, m int) { out.AddMult(t, m) })
		r.Each(func(t value.Tuple, m int) { out.AddMult(t, m) })
		if !env.bag {
			out.Normalize()
		}
		return out

	case Diff:
		l, r := eval(e.L, env), eval(e.R, env)
		out := relation.NewArity("−", l.Arity())
		if env.bag {
			l.Each(func(t value.Tuple, m int) {
				if rest := m - r.Mult(t); rest > 0 {
					out.AddMult(t, rest)
				}
			})
			return out
		}
		l.Each(func(t value.Tuple, _ int) {
			if !r.Contains(t) {
				out.Add(t)
			}
		})
		return out

	case Intersect:
		l, r := eval(e.L, env), eval(e.R, env)
		out := relation.NewArity("∩", l.Arity())
		l.Each(func(t value.Tuple, m int) {
			rm := r.Mult(t)
			if rm == 0 {
				return
			}
			if env.bag {
				if rm < m {
					m = rm
				}
				out.AddMult(t, m)
			} else {
				out.Add(t)
			}
		})
		return out

	case Divide:
		// Division is a set-level operator; under bag semantics we follow
		// the standard convention of dividing the underlying sets.
		l, r := eval(e.L, env), eval(e.R, env)
		n := l.Arity() - r.Arity()
		out := relation.NewArity("÷", n)
		cands := relation.NewArity("c", n)
		l.Each(func(t value.Tuple, _ int) { cands.Add(t[:n].Clone()) })
		if r.Len() == 0 {
			// ∀ over an empty set: every (deduplicated — division divides
			// the underlying sets) projection of L qualifies.
			cands.Each(func(a value.Tuple, _ int) { out.Add(a) })
			return out
		}
		cands.Each(func(a value.Tuple, _ int) {
			ok := true
			r.Each(func(b value.Tuple, _ int) {
				if !ok {
					return
				}
				if !l.Contains(a.Concat(b)) {
					ok = false
				}
			})
			if ok {
				out.Add(a)
			}
		})
		return out

	case AntiUnify:
		l, r := eval(e.L, env), eval(e.R, env)
		out := relation.NewArity("⋉⇑", l.Arity())
		// Null-free tuples unify iff they are equal, so the common case is
		// a hash probe; only tuples with nulls need the unification scan.
		// This is the same trick the SQL rewritings of [37] play with
		// IS NULL conditions and is what keeps Q⁺ near the original
		// query's cost.
		nullFree := relation.NewArity("nf", r.Arity())
		var withNulls []value.Tuple
		r.Each(func(s value.Tuple, _ int) {
			if s.HasNull() {
				withNulls = append(withNulls, s)
			} else {
				nullFree.Add(s)
			}
		})
		l.Each(func(t value.Tuple, m int) {
			if t.HasNull() {
				// Rare path: scan everything.
				for _, s := range nullFree.Tuples() {
					if value.Unifiable(t, s) {
						return
					}
				}
			} else if nullFree.Contains(t) {
				return
			}
			for _, s := range withNulls {
				if value.Unifiable(t, s) {
					return
				}
			}
			out.AddMult(t, multOf(m, env))
		})
		return out

	case Dom:
		adom := env.db.ActiveDomain()
		out := relation.NewArity("Dom", e.K)
		if e.K == 0 {
			out.Add(value.Tuple{})
			return out
		}
		tuple := make(value.Tuple, e.K)
		var rec func(i int)
		rec = func(i int) {
			if i == e.K {
				out.Add(tuple.Clone())
				return
			}
			for _, v := range adom {
				tuple[i] = v
				rec(i + 1)
			}
		}
		rec(0)
		return out
	}
	panic(fmt.Sprintf("algebra: eval: unknown expression %T", e))
}

func multOf(m int, env *evalEnv) int {
	if env.bag {
		return m
	}
	return 1
}

// crossEqConjunct finds a top-level Eq{I,J} conjunct of cond with I on the
// left side of the product and J on the right (or vice versa). It returns
// the left and right column indices (right one relative to the right
// input).
func crossEqConjunct(cond Cond, prod Product, env *evalEnv) (li, ri int, ok bool) {
	la := Arity(prod.L, env.db)
	var search func(c Cond) (int, int, bool)
	search = func(c Cond) (int, int, bool) {
		switch c := c.(type) {
		case Eq:
			switch {
			case c.I < la && c.J >= la:
				return c.I, c.J - la, true
			case c.J < la && c.I >= la:
				return c.J, c.I - la, true
			}
		case And:
			if i, j, ok := search(c.L); ok {
				return i, j, ok
			}
			return search(c.R)
		}
		return 0, 0, false
	}
	return search(cond)
}

// hashJoin evaluates σ_cond(L × R) by probing the right input's lazy
// per-column index (relation.EachMatch) on the join column, then applying
// the full condition to each candidate pair. The condition evaluation keeps
// the exact mode semantics; hashing only prunes pairs whose join equality
// cannot be t, so each world evaluates in near-linear time instead of the
// |L|·|R| nested loop.
func hashJoin(sel Select, prod Product, li, ri int, env *evalEnv) *relation.Relation {
	l, r := eval(prod.L, env), eval(prod.R, env)
	out := relation.NewArity("σ⋈", l.Arity()+r.Arity())
	cond := sel.Cond
	if l.Len() > 0 {
		cond = env.bindCond(cond)
	}
	l.Each(func(lt value.Tuple, lm int) {
		key := lt[li]
		if env.mode == ModeSQL && key.IsNull() {
			return // the equality conjunct can never be t
		}
		r.EachMatch(ri, key, func(rt value.Tuple, rm int) {
			joined := lt.Concat(rt)
			if evalCond(cond, joined, env.mode, env) == logic.T {
				out.AddMult(joined, multOf(lm*rm, env))
			}
		})
	})
	return out
}

// bindCond resolves every IN-subquery atom of c once, up front: the
// subquery result (and, under ModeSQL, its null-free/with-nulls split) is
// looked up in the env caches a single time and captured in a boundIn atom,
// so the per-row probes touch resolved pointers instead of re-rendering the
// subquery expression on every lookup. Conditions without IN atoms are
// returned unchanged.
func (env *evalEnv) bindCond(c Cond) Cond {
	if !condHasIn(c) {
		return c
	}
	switch c := c.(type) {
	case And:
		return And{L: env.bindCond(c.L), R: env.bindCond(c.R)}
	case Or:
		return Or{L: env.bindCond(c.L), R: env.bindCond(c.R)}
	case Not:
		return Not{C: env.bindCond(c.C)}
	case InSub:
		b := boundIn{orig: c, sub: env.subResult(c.Sub)}
		if env.mode == ModeSQL {
			b.split = env.inSplitOf(c.Sub)
		}
		return b
	}
	return c
}

func condHasIn(c Cond) bool {
	switch c := c.(type) {
	case And:
		return condHasIn(c.L) || condHasIn(c.R)
	case Or:
		return condHasIn(c.L) || condHasIn(c.R)
	case Not:
		return condHasIn(c.C)
	case InSub:
		return true
	}
	return false
}

// BooleanResult interprets a zero-ary query result as a truth value: true
// iff it contains the empty tuple (Section 2).
func BooleanResult(r *relation.Relation) bool {
	return r.Contains(value.Tuple{})
}
