// Package algebra implements the relational algebra of Section 2 of the
// paper over incomplete databases, together with the evaluation procedures
// the survey studies:
//
//   - naive evaluation (Section 4.1): nulls are treated as fresh constants
//     and the query is evaluated in the usual two-valued way;
//   - SQL evaluation (Sections 1 and 5.2): selection conditions are
//     evaluated in Kleene's three-valued logic and only condition value t
//     survives — the assertion-operator collapse of FO↑SQL;
//   - bag variants of both (Section 4.2), where multiplicities follow the
//     SQL standard (union adds, difference subtracts to zero, …).
//
// Besides σ, π, ×, ∪, −, ∩ the AST has division ÷ (the Pos∀G fragment of
// Theorem 4.4), the anti-semijoin by unifiability ⋉⇑ used by both
// approximation schemes of Figure 2, and the active-domain query Dom^k
// required by the Figure 2(a) translation.
package algebra

import (
	"fmt"
	"strings"
)

// Expr is a relational algebra expression. Expressions are immutable once
// built; the evaluator never mutates them.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Rel is a reference to a database relation by name.
type Rel struct{ Name string }

// Select is σ_Cond(In).
type Select struct {
	In   Expr
	Cond Cond
}

// Project is π_Cols(In); Cols are 0-based positions and may repeat.
type Project struct {
	In   Expr
	Cols []int
}

// Product is the Cartesian product L × R.
type Product struct{ L, R Expr }

// Union is L ∪ R (arities must match).
type Union struct{ L, R Expr }

// Diff is the difference L − R (arities must match).
type Diff struct{ L, R Expr }

// Intersect is L ∩ R (arities must match). It is primitive rather than
// derived because the Figure 2(a) translation uses it directly.
type Intersect struct{ L, R Expr }

// Divide is the relational division L ÷ R of Section 4.1: for L of arity
// n+m and R of arity m, the tuples ā of arity n such that (ā, b̄) ∈ L for
// every b̄ ∈ R. Division is what pushes Pos∀G beyond unions of conjunctive
// queries while keeping naive evaluation correct under cwa (Theorem 4.4).
type Divide struct{ L, R Expr }

// AntiUnify is the anti-semijoin by unifiability L ⋉⇑ R (Section 4.2): the
// tuples r̄ of L for which no s̄ ∈ R unifies with r̄. Arities must match.
type AntiUnify struct{ L, R Expr }

// Dom is the k-fold Cartesian power of the active domain query Dom used by
// the Figure 2(a) translation.
type Dom struct{ K int }

func (Rel) isExpr()       {}
func (Select) isExpr()    {}
func (Project) isExpr()   {}
func (Product) isExpr()   {}
func (Union) isExpr()     {}
func (Diff) isExpr()      {}
func (Intersect) isExpr() {}
func (Divide) isExpr()    {}
func (AntiUnify) isExpr() {}
func (Dom) isExpr()       {}

func (e Rel) String() string    { return e.Name }
func (e Select) String() string { return fmt.Sprintf("σ[%s](%s)", e.Cond, e.In) }
func (e Project) String() string {
	parts := make([]string, len(e.Cols))
	for i, c := range e.Cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(parts, ","), e.In)
}
func (e Product) String() string   { return fmt.Sprintf("(%s × %s)", e.L, e.R) }
func (e Union) String() string     { return fmt.Sprintf("(%s ∪ %s)", e.L, e.R) }
func (e Diff) String() string      { return fmt.Sprintf("(%s − %s)", e.L, e.R) }
func (e Intersect) String() string { return fmt.Sprintf("(%s ∩ %s)", e.L, e.R) }
func (e Divide) String() string    { return fmt.Sprintf("(%s ÷ %s)", e.L, e.R) }
func (e AntiUnify) String() string { return fmt.Sprintf("(%s ⋉⇑ %s)", e.L, e.R) }
func (e Dom) String() string       { return fmt.Sprintf("Dom^%d", e.K) }

// Catalog resolves relation names to arities; *relation.Database satisfies
// it.
type Catalog interface {
	Arity(name string) int
}

// Arity computes the output arity of e against the catalog. It panics on
// unknown relations or malformed expressions: those are construction bugs,
// not runtime conditions. Use Validate for user-supplied expressions.
func Arity(e Expr, cat Catalog) int {
	n, err := arity(e, cat)
	if err != nil {
		panic("algebra: " + err.Error())
	}
	return n
}

// Validate checks that e is well-formed against the catalog: all relation
// names resolve, arities of binary operators agree, projections and
// condition attributes are in range, and division shapes are sensible.
func Validate(e Expr, cat Catalog) error {
	_, err := arity(e, cat)
	return err
}

func arity(e Expr, cat Catalog) (int, error) {
	switch e := e.(type) {
	case Rel:
		n := cat.Arity(e.Name)
		if n < 0 {
			return 0, fmt.Errorf("unknown relation %q", e.Name)
		}
		return n, nil
	case Select:
		n, err := arity(e.In, cat)
		if err != nil {
			return 0, err
		}
		if err := validateCond(e.Cond, n, cat); err != nil {
			return 0, err
		}
		return n, nil
	case Project:
		n, err := arity(e.In, cat)
		if err != nil {
			return 0, err
		}
		for _, c := range e.Cols {
			if c < 0 || c >= n {
				return 0, fmt.Errorf("projection column %d out of range for arity %d", c, n)
			}
		}
		return len(e.Cols), nil
	case Product:
		l, err := arity(e.L, cat)
		if err != nil {
			return 0, err
		}
		r, err := arity(e.R, cat)
		if err != nil {
			return 0, err
		}
		return l + r, nil
	case Union, Diff, Intersect:
		var l, r Expr
		switch e := e.(type) {
		case Union:
			l, r = e.L, e.R
		case Diff:
			l, r = e.L, e.R
		case Intersect:
			l, r = e.L, e.R
		}
		ln, err := arity(l, cat)
		if err != nil {
			return 0, err
		}
		rn, err := arity(r, cat)
		if err != nil {
			return 0, err
		}
		if ln != rn {
			return 0, fmt.Errorf("arity mismatch %d vs %d in %s", ln, rn, e)
		}
		return ln, nil
	case Divide:
		ln, err := arity(e.L, cat)
		if err != nil {
			return 0, err
		}
		rn, err := arity(e.R, cat)
		if err != nil {
			return 0, err
		}
		if rn == 0 || rn >= ln {
			return 0, fmt.Errorf("division arities %d ÷ %d invalid", ln, rn)
		}
		return ln - rn, nil
	case AntiUnify:
		ln, err := arity(e.L, cat)
		if err != nil {
			return 0, err
		}
		rn, err := arity(e.R, cat)
		if err != nil {
			return 0, err
		}
		if ln != rn {
			return 0, fmt.Errorf("anti-semijoin arity mismatch %d vs %d", ln, rn)
		}
		return ln, nil
	case Dom:
		if e.K < 0 {
			return 0, fmt.Errorf("Dom^%d invalid", e.K)
		}
		return e.K, nil
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}

// Nodes counts AST nodes (expressions and conditions), used to report
// translated-query sizes in the experiments.
func Nodes(e Expr) int {
	switch e := e.(type) {
	case Rel, Dom:
		return 1
	case Select:
		return 1 + Nodes(e.In) + condNodes(e.Cond)
	case Project:
		return 1 + Nodes(e.In)
	case Product:
		return 1 + Nodes(e.L) + Nodes(e.R)
	case Union:
		return 1 + Nodes(e.L) + Nodes(e.R)
	case Diff:
		return 1 + Nodes(e.L) + Nodes(e.R)
	case Intersect:
		return 1 + Nodes(e.L) + Nodes(e.R)
	case Divide:
		return 1 + Nodes(e.L) + Nodes(e.R)
	case AntiUnify:
		return 1 + Nodes(e.L) + Nodes(e.R)
	}
	panic(fmt.Sprintf("algebra: unknown expression %T", e))
}

// Convenience constructors keeping query definitions readable.

// Sel builds σ_c(in).
func Sel(in Expr, c Cond) Expr { return Select{In: in, Cond: c} }

// Proj builds π_cols(in).
func Proj(in Expr, cols ...int) Expr { return Project{In: in, Cols: cols} }

// Join builds σ_c(l × r); the condition sees l's columns first.
func Join(l, r Expr, c Cond) Expr { return Select{In: Product{L: l, R: r}, Cond: c} }
