package algebra

import "incdb/internal/value"

// Constructor helpers. The struct types are the canonical AST, but
// composite literals for imported structs are unwieldy; these builders keep
// query definitions compact in client packages (and enforce keyed
// construction discipline via go vet).

// R references the named database relation.
func R(name string) Rel { return Rel{Name: name} }

// Minus builds L − R.
func Minus(l, r Expr) Expr { return Diff{L: l, R: r} }

// Times builds L × R.
func Times(l, r Expr) Expr { return Product{L: l, R: r} }

// Un builds L ∪ R.
func Un(l, r Expr) Expr { return Union{L: l, R: r} }

// Inter builds L ∩ R.
func Inter(l, r Expr) Expr { return Intersect{L: l, R: r} }

// Div builds L ÷ R.
func Div(l, r Expr) Expr { return Divide{L: l, R: r} }

// AntiJoin builds the unifiability anti-semijoin L ⋉⇑ R.
func AntiJoin(l, r Expr) Expr { return AntiUnify{L: l, R: r} }

// DomK builds the k-fold active-domain power Dom^k.
func DomK(k int) Expr { return Dom{K: k} }

// CEq builds #i = #j.
func CEq(i, j int) Cond { return Eq{I: i, J: j} }

// CEqC builds #i = c.
func CEqC(i int, c value.Value) Cond { return EqConst{I: i, C: c} }

// CNeq builds #i ≠ #j.
func CNeq(i, j int) Cond { return Neq{I: i, J: j} }

// CNeqC builds #i ≠ c.
func CNeqC(i int, c value.Value) Cond { return NeqConst{I: i, C: c} }

// CLess builds #i < #j.
func CLess(i, j int) Cond { return Less{I: i, J: j} }

// CLessC builds #i < c.
func CLessC(i int, c value.Value) Cond { return LessConst{I: i, C: c} }

// CGreaterC builds #i > c.
func CGreaterC(i int, c value.Value) Cond { return GreaterConst{I: i, C: c} }

// CNull builds null(#i).
func CNull(i int) Cond { return IsNull{I: i} }

// CConst builds const(#i).
func CConst(i int) Cond { return IsConst{I: i} }

// CAnd folds conjunction over its arguments (true when empty).
func CAnd(cs ...Cond) Cond {
	if len(cs) == 0 {
		return True{}
	}
	acc := cs[0]
	for _, c := range cs[1:] {
		acc = And{L: acc, R: c}
	}
	return acc
}

// COr folds disjunction over its arguments (false when empty).
func COr(cs ...Cond) Cond {
	if len(cs) == 0 {
		return False{}
	}
	acc := cs[0]
	for _, c := range cs[1:] {
		acc = Or{L: acc, R: c}
	}
	return acc
}

// CNot negates a condition through the evaluation logic's ¬.
func CNot(c Cond) Cond { return Not{C: c} }

// CIn builds the (cols) IN sub test.
func CIn(sub Expr, cols ...int) Cond { return InSub{Cols: cols, Sub: sub} }
