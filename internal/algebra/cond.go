package algebra

import (
	"fmt"
	"strings"

	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Cond is a selection condition following the grammar of Section 2:
//
//	θ ::= const(A) | null(A) | A = B | A = c | A ≠ B | A ≠ c | θ∨θ | θ∧θ
//
// extended, as discussed in Section 6 ("Types of attributes"), with ordered
// comparisons < and ≤ that are treated like disequalities by the θ*
// translation, and with IN-subquery atoms so that the SQL examples of the
// introduction can be expressed faithfully. Explicit negation Not is
// supported by the evaluator; the paper-level negation that pushes ¬
// through the grammar is Negate.
type Cond interface {
	fmt.Stringer
	isCond()
}

// Eq is A_I = A_J.
type Eq struct{ I, J int }

// EqConst is A_I = c.
type EqConst struct {
	I int
	C value.Value
}

// Neq is A_I ≠ A_J.
type Neq struct{ I, J int }

// NeqConst is A_I ≠ c.
type NeqConst struct {
	I int
	C value.Value
}

// Less is A_I < A_J under the deterministic value order (numeric constants
// numerically, others lexicographically).
type Less struct{ I, J int }

// LessConst is A_I < c.
type LessConst struct {
	I int
	C value.Value
}

// GreaterConst is A_I > c.
type GreaterConst struct {
	I int
	C value.Value
}

// IsNull is the null(A_I) test.
type IsNull struct{ I int }

// IsConst is the const(A_I) test.
type IsConst struct{ I int }

// And is θ ∧ θ.
type And struct{ L, R Cond }

// Or is θ ∨ θ.
type Or struct{ L, R Cond }

// Not is explicit negation, evaluated through the logic's ¬.
type Not struct{ C Cond }

// InSub is the (t[Cols[0]], …, t[Cols[k-1]]) IN Sub test, with SQL's
// three-valued IN semantics under ModeSQL: t if some row matches, u if no
// row matches but some comparison is unknown, f otherwise.
type InSub struct {
	Cols []int
	Sub  Expr
}

// True and False are the constant conditions.
type True struct{}
type False struct{}

// boundIn is an InSub whose subquery has been resolved against the current
// evaluation environment (bindCond): sub is the set-semantics subquery
// result and split its null-free/with-nulls partition (ModeSQL only). It is
// created per evaluation and never appears in user-built conditions.
type boundIn struct {
	orig  InSub
	sub   *relation.Relation
	split *inSplit
}

func (boundIn) isCond()          {}
func (c boundIn) String() string { return c.orig.String() }

func (Eq) isCond()           {}
func (EqConst) isCond()      {}
func (Neq) isCond()          {}
func (NeqConst) isCond()     {}
func (Less) isCond()         {}
func (LessConst) isCond()    {}
func (GreaterConst) isCond() {}
func (IsNull) isCond()       {}
func (IsConst) isCond()      {}
func (And) isCond()          {}
func (Or) isCond()           {}
func (Not) isCond()          {}
func (InSub) isCond()        {}
func (True) isCond()         {}
func (False) isCond()        {}

func (c Eq) String() string           { return fmt.Sprintf("#%d=#%d", c.I, c.J) }
func (c EqConst) String() string      { return fmt.Sprintf("#%d=%s", c.I, c.C) }
func (c Neq) String() string          { return fmt.Sprintf("#%d≠#%d", c.I, c.J) }
func (c NeqConst) String() string     { return fmt.Sprintf("#%d≠%s", c.I, c.C) }
func (c Less) String() string         { return fmt.Sprintf("#%d<#%d", c.I, c.J) }
func (c LessConst) String() string    { return fmt.Sprintf("#%d<%s", c.I, c.C) }
func (c GreaterConst) String() string { return fmt.Sprintf("#%d>%s", c.I, c.C) }
func (c IsNull) String() string       { return fmt.Sprintf("null(#%d)", c.I) }
func (c IsConst) String() string      { return fmt.Sprintf("const(#%d)", c.I) }
func (c And) String() string          { return fmt.Sprintf("(%s ∧ %s)", c.L, c.R) }
func (c Or) String() string           { return fmt.Sprintf("(%s ∨ %s)", c.L, c.R) }
func (c Not) String() string          { return fmt.Sprintf("¬(%s)", c.C) }
func (c InSub) String() string {
	parts := make([]string, len(c.Cols))
	for i, x := range c.Cols {
		parts[i] = fmt.Sprintf("#%d", x)
	}
	return fmt.Sprintf("(%s) IN (%s)", strings.Join(parts, ","), c.Sub)
}
func (True) String() string  { return "true" }
func (False) String() string { return "false" }

func condNodes(c Cond) int {
	switch c := c.(type) {
	case And:
		return 1 + condNodes(c.L) + condNodes(c.R)
	case Or:
		return 1 + condNodes(c.L) + condNodes(c.R)
	case Not:
		return 1 + condNodes(c.C)
	case InSub:
		return 1 + Nodes(c.Sub)
	default:
		return 1
	}
}

func validateCond(c Cond, width int, cat Catalog) error {
	check := func(is ...int) error {
		for _, i := range is {
			if i < 0 || i >= width {
				return fmt.Errorf("condition attribute #%d out of range for arity %d", i, width)
			}
		}
		return nil
	}
	switch c := c.(type) {
	case Eq:
		return check(c.I, c.J)
	case EqConst:
		if c.C.IsNull() {
			return fmt.Errorf("condition constant must not be a null")
		}
		return check(c.I)
	case Neq:
		return check(c.I, c.J)
	case NeqConst:
		if c.C.IsNull() {
			return fmt.Errorf("condition constant must not be a null")
		}
		return check(c.I)
	case Less:
		return check(c.I, c.J)
	case LessConst:
		return check(c.I)
	case GreaterConst:
		return check(c.I)
	case IsNull:
		return check(c.I)
	case IsConst:
		return check(c.I)
	case And:
		if err := validateCond(c.L, width, cat); err != nil {
			return err
		}
		return validateCond(c.R, width, cat)
	case Or:
		if err := validateCond(c.L, width, cat); err != nil {
			return err
		}
		return validateCond(c.R, width, cat)
	case Not:
		return validateCond(c.C, width, cat)
	case InSub:
		if err := check(c.Cols...); err != nil {
			return err
		}
		n, err := arity(c.Sub, cat)
		if err != nil {
			return err
		}
		if n != len(c.Cols) {
			return fmt.Errorf("IN subquery arity %d vs %d columns", n, len(c.Cols))
		}
		return nil
	case True, False:
		return nil
	}
	return fmt.Errorf("unknown condition %T", c)
}

// Negate pushes negation through a condition following the paper's rules:
// = and ≠ are interchanged, const and null are interchanged, and De Morgan
// is applied to ∧/∨. Ordered comparisons negate into their complements
// (¬(A<B) = B<A ∨ A=B). Conditions our grammar cannot invert positively
// (IN subqueries) are wrapped in Not.
func Negate(c Cond) Cond {
	switch c := c.(type) {
	case Eq:
		return Neq{c.I, c.J}
	case Neq:
		return Eq{c.I, c.J}
	case EqConst:
		return NeqConst{c.I, c.C}
	case NeqConst:
		return EqConst{c.I, c.C}
	case Less:
		return Or{Less{c.J, c.I}, Eq{c.I, c.J}}
	case LessConst:
		return Or{GreaterConst{c.I, c.C}, EqConst{c.I, c.C}}
	case GreaterConst:
		return Or{LessConst{c.I, c.C}, EqConst{c.I, c.C}}
	case IsNull:
		return IsConst{c.I}
	case IsConst:
		return IsNull{c.I}
	case And:
		return Or{Negate(c.L), Negate(c.R)}
	case Or:
		return And{Negate(c.L), Negate(c.R)}
	case Not:
		return c.C
	case True:
		return False{}
	case False:
		return True{}
	case InSub:
		return Not{c}
	}
	panic(fmt.Sprintf("algebra: Negate: unknown condition %T", c))
}

// Star is the θ ↦ θ* translation used by both Figure 2 schemes: every
// comparison of the form A ≠ x is strengthened with const(A) (and const(x)
// when x is an attribute), so that under naive evaluation the condition
// holds only when it holds certainly. Ordered comparisons are guarded the
// same way, per the Section 6 discussion of typed attributes. Equality
// atoms are left alone: naive evaluation already makes them hold only when
// certain (⊥ᵢ = ⊥ᵢ holds in every possible world, ⊥ᵢ = c in none… of the
// naive matches).
func Star(c Cond) Cond {
	switch c := c.(type) {
	case Eq, EqConst, IsNull, IsConst, True, False:
		return c
	case Neq:
		return And{And{c, IsConst{c.I}}, IsConst{c.J}}
	case NeqConst:
		return And{c, IsConst{c.I}}
	case Less:
		return And{And{c, IsConst{c.I}}, IsConst{c.J}}
	case LessConst:
		return And{c, IsConst{c.I}}
	case GreaterConst:
		return And{c, IsConst{c.I}}
	case And:
		return And{Star(c.L), Star(c.R)}
	case Or:
		return Or{Star(c.L), Star(c.R)}
	case Not:
		// Push the negation first, then translate the positive form.
		return Star(Negate(c.C))
	}
	panic(fmt.Sprintf("algebra: Star: unsupported condition %T (IN subqueries are outside the Figure 2 fragment)", c))
}

// evalCond evaluates a condition on a tuple. Under ModeNaive the result is
// two-valued (T or F) with nulls acting as fresh constants — identical
// marked nulls are equal, everything else involving a null is distinct and
// unordered. Under ModeSQL comparisons touching nulls yield U and the
// connectives are Kleene's. env carries evaluated IN-subqueries.
func evalCond(c Cond, t value.Tuple, mode Mode, env *evalEnv) logic.TV {
	switch c := c.(type) {
	case True:
		return logic.T
	case False:
		return logic.F
	case Eq:
		return evalEq(t[c.I], t[c.J], mode)
	case EqConst:
		return evalEq(t[c.I], c.C, mode)
	case Neq:
		return logic.Not(evalEq(t[c.I], t[c.J], mode))
	case NeqConst:
		return logic.Not(evalEq(t[c.I], c.C, mode))
	case Less:
		return evalLess(t[c.I], t[c.J], mode)
	case LessConst:
		return evalLess(t[c.I], c.C, mode)
	case GreaterConst:
		return evalLess(c.C, t[c.I], mode)
	case IsNull:
		return logic.FromBool(t[c.I].IsNull())
	case IsConst:
		return logic.FromBool(t[c.I].IsConst())
	case And:
		return logic.And(evalCond(c.L, t, mode, env), evalCond(c.R, t, mode, env))
	case Or:
		return logic.Or(evalCond(c.L, t, mode, env), evalCond(c.R, t, mode, env))
	case Not:
		return logic.Not(evalCond(c.C, t, mode, env))
	case InSub:
		// Unbound fallback: resolve through the env caches on the spot.
		// The hot paths bind conditions first (bindCond), so this is only
		// reached for conditions evaluated outside a selection loop.
		b := boundIn{orig: c, sub: env.subResult(c.Sub)}
		if mode == ModeSQL {
			b.split = env.inSplitOf(c.Sub)
		}
		return evalIn(b, t, mode)
	case boundIn:
		return evalIn(c, t, mode)
	}
	panic(fmt.Sprintf("algebra: evalCond: unknown condition %T", c))
}

// evalEq compares two values. ModeNaive: syntactic equality (marked nulls
// equal themselves). ModeSQL: SQL comparison semantics — any null makes the
// comparison unknown, even ⊥ᵢ = ⊥ᵢ, because SQL's NULL carries no identity
// (this is the null-free semantics (14) applied to Eq).
func evalEq(a, b value.Value, mode Mode) logic.TV {
	if mode == ModeSQL && (a.IsNull() || b.IsNull()) {
		return logic.U
	}
	return logic.FromBool(a == b)
}

// evalLess compares under the deterministic value order. ModeSQL: nulls
// make the comparison unknown. ModeNaive stays two-valued: nulls take their
// position in the deterministic total order (after all constants), which
// keeps ¬ a complement; the θ* guards add const() tests wherever order on
// nulls would be unsound for the Figure 2 translations.
func evalLess(a, b value.Value, mode Mode) logic.TV {
	if mode == ModeSQL && (a.IsNull() || b.IsNull()) {
		return logic.U
	}
	return logic.FromBool(value.Less(a, b))
}

func evalIn(c boundIn, t value.Tuple, mode Mode) logic.TV {
	probe := t.Project(c.orig.Cols)
	if mode == ModeNaive {
		return logic.FromBool(c.sub.Contains(probe))
	}
	if !probe.HasNull() {
		// Three-valued IN with a null-free probe: a null-free subquery row
		// compares to t iff it is tuple-equal — one hash lookup — and to f
		// otherwise, so only the rows containing nulls can contribute u.
		if c.split.nullFree.Contains(probe) {
			return logic.T
		}
		res := logic.F
		for _, row := range c.split.withNulls {
			res = logic.Or(res, tupleEq(probe, row, mode))
		}
		return res
	}
	// A probe with nulls can match no row with t; scan for u vs f.
	res := logic.F
	for _, row := range c.sub.Tuples() {
		res = logic.Or(res, tupleEq(probe, row, mode))
		if res == logic.T {
			return logic.T
		}
	}
	return res
}

// tupleEq folds evalEq over the components in the evaluation logic.
func tupleEq(a, b value.Tuple, mode Mode) logic.TV {
	eq := logic.T
	for i := range a {
		eq = logic.And(eq, evalEq(a[i], b[i], mode))
	}
	return eq
}
