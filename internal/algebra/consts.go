package algebra

import (
	"sort"

	"incdb/internal/value"
)

// ConstsOf returns the constants mentioned in the query's conditions, in
// deterministic order. Queries mentioning constants are generic only with
// respect to bijections fixing them (Section 2), so certain-answer
// computations must keep these constants in the valuation range.
func ConstsOf(e Expr) []value.Value {
	seen := map[value.Value]bool{}
	collectExpr(e, seen)
	out := make([]value.Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return value.OrderLess(out[i], out[j]) })
	return out
}

// RelationsOf returns the names of the base relations the query reads,
// and whether it reads the whole active domain (a Dom node), in which case
// every relation is effectively read.
func RelationsOf(e Expr) (names []string, usesDom bool) {
	set := map[string]bool{}
	var walkC func(Cond)
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case Rel:
			set[e.Name] = true
		case Dom:
			usesDom = true
		case Select:
			walk(e.In)
			walkC(e.Cond)
		case Project:
			walk(e.In)
		case Product:
			walk(e.L)
			walk(e.R)
		case Union:
			walk(e.L)
			walk(e.R)
		case Diff:
			walk(e.L)
			walk(e.R)
		case Intersect:
			walk(e.L)
			walk(e.R)
		case Divide:
			walk(e.L)
			walk(e.R)
		case AntiUnify:
			walk(e.L)
			walk(e.R)
		}
	}
	walkC = func(c Cond) {
		switch c := c.(type) {
		case And:
			walkC(c.L)
			walkC(c.R)
		case Or:
			walkC(c.L)
			walkC(c.R)
		case Not:
			walkC(c.C)
		case InSub:
			walk(c.Sub)
		}
	}
	walk(e)
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, usesDom
}

func collectExpr(e Expr, seen map[value.Value]bool) {
	switch e := e.(type) {
	case Rel, Dom:
	case Select:
		collectExpr(e.In, seen)
		collectCond(e.Cond, seen)
	case Project:
		collectExpr(e.In, seen)
	case Product:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	case Union:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	case Diff:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	case Intersect:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	case Divide:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	case AntiUnify:
		collectExpr(e.L, seen)
		collectExpr(e.R, seen)
	}
}

func collectCond(c Cond, seen map[value.Value]bool) {
	switch c := c.(type) {
	case EqConst:
		seen[c.C] = true
	case NeqConst:
		seen[c.C] = true
	case LessConst:
		seen[c.C] = true
	case GreaterConst:
		seen[c.C] = true
	case And:
		collectCond(c.L, seen)
		collectCond(c.R, seen)
	case Or:
		collectCond(c.L, seen)
		collectCond(c.R, seen)
	case Not:
		collectCond(c.C, seen)
	case InSub:
		collectExpr(c.Sub, seen)
	}
}
