// Package lru provides the small string-keyed recency list backing the
// server-side LRU caches (the prepared-plan cache and the oracle result
// cache), so eviction bookkeeping lives in one place.
package lru

// Order tracks key recency: least recently used first. The linear scans
// are deliberate — the caches using it hold tens to hundreds of keys, far
// below the point where a doubly linked list with a map index would win.
// Not safe for concurrent use; callers hold their own lock.
type Order struct {
	keys []string
}

// Touch moves key to the most-recently-used end, inserting it if absent.
func (o *Order) Touch(key string) {
	for i, k := range o.keys {
		if k == key {
			copy(o.keys[i:], o.keys[i+1:])
			o.keys[len(o.keys)-1] = key
			return
		}
	}
	o.keys = append(o.keys, key)
}

// Remove drops key, if present.
func (o *Order) Remove(key string) {
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			return
		}
	}
}

// Oldest returns the least recently used key, or "" when empty.
func (o *Order) Oldest() string {
	if len(o.keys) == 0 {
		return ""
	}
	return o.keys[0]
}

// Len returns the number of tracked keys.
func (o *Order) Len() int { return len(o.keys) }
