// Package raparse parses the textual syntax used by the incdbctl command
// for relational algebra queries and incomplete databases.
//
// Query syntax (functional, case-insensitive keywords):
//
//	EXPR ::= IDENT                         base relation
//	       | sel(COND, EXPR)               σ
//	       | proj(COLS, EXPR)              π, e.g. proj(0 2, R)
//	       | times(EXPR, EXPR)             ×
//	       | union(EXPR, EXPR)             ∪
//	       | minus(EXPR, EXPR)             −
//	       | inter(EXPR, EXPR)             ∩
//	       | div(EXPR, EXPR)               ÷
//	       | dom(K)                        active-domain power
//
//	COND ::= eq(I, J) | eqc(I, 'lit') | neq(I, J) | neqc(I, 'lit')
//	       | lt(I, J) | ltc(I, 'lit') | gtc(I, 'lit')
//	       | isnull(I) | isconst(I)
//	       | and(COND, COND) | or(COND, COND) | not(COND)
//	       | in(COLS, EXPR)
//	       | true | false
//
// Database files are line-oriented:
//
//	# comment
//	rel Orders oid title price     — declares a relation and its attributes
//	row Orders o1 'Big Data' 30    — adds a tuple; _k denotes the null ⊥k
//
// Quoted literals may contain spaces; _1, _2, … are marked nulls (the same
// token always denotes the same null).
package raparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// ParseQuery parses the query syntax above.
func ParseQuery(src string) (algebra.Expr, error) {
	p := &parser{toks: lex(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("raparse: trailing input at %q", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []string
	pos  int
}

func lex(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			toks = append(toks, src[i:min(j+1, len(src))])
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r,()'", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("raparse: expected %q, got %q", t, got)
	}
	return nil
}

func (p *parser) parseExpr() (algebra.Expr, error) {
	if p.eof() {
		return nil, fmt.Errorf("raparse: unexpected end of input")
	}
	head := p.next()
	kw := strings.ToLower(head)
	switch kw {
	case "sel":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return algebra.Sel(in, cond), nil
	case "proj":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cols, err := p.parseCols()
		if err != nil {
			return nil, err
		}
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return algebra.Proj(in, cols...), nil
	case "times", "union", "minus", "inter", "div":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		l, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch kw {
		case "times":
			return algebra.Times(l, r), nil
		case "union":
			return algebra.Un(l, r), nil
		case "minus":
			return algebra.Minus(l, r), nil
		case "inter":
			return algebra.Inter(l, r), nil
		default:
			return algebra.Div(l, r), nil
		}
	case "dom":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		k, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return algebra.DomK(k), nil
	case "(", ")":
		return nil, fmt.Errorf("raparse: unexpected %q", head)
	default:
		// Base relation name.
		return algebra.R(head), nil
	}
}

func (p *parser) parseCols() ([]int, error) {
	var cols []int
	for {
		if _, err := strconv.Atoi(p.peek()); err != nil {
			break
		}
		n, _ := strconv.Atoi(p.next())
		cols = append(cols, n)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("raparse: expected column list, got %q", p.peek())
	}
	return cols, nil
}

func (p *parser) parseInt() (int, error) {
	n, err := strconv.Atoi(p.peek())
	if err != nil {
		return 0, fmt.Errorf("raparse: expected integer, got %q", p.peek())
	}
	p.next()
	return n, nil
}

func (p *parser) parseLit() (value.Value, error) {
	t := p.next()
	if strings.HasPrefix(t, "'") && strings.HasSuffix(t, "'") && len(t) >= 2 {
		return value.Const(t[1 : len(t)-1]), nil
	}
	return value.Const(t), nil
}

func (p *parser) parseCond() (algebra.Cond, error) {
	head := strings.ToLower(p.next())
	switch head {
	case "true":
		return algebra.CAnd(), nil
	case "false":
		return algebra.COr(), nil
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cond algebra.Cond
	switch head {
	case "eq", "neq", "lt":
		i, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		j, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		switch head {
		case "eq":
			cond = algebra.CEq(i, j)
		case "neq":
			cond = algebra.CNeq(i, j)
		default:
			cond = algebra.CLess(i, j)
		}
	case "eqc", "neqc", "ltc", "gtc":
		i, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		lit, err := p.parseLit()
		if err != nil {
			return nil, err
		}
		switch head {
		case "eqc":
			cond = algebra.CEqC(i, lit)
		case "neqc":
			cond = algebra.CNeqC(i, lit)
		case "ltc":
			cond = algebra.CLessC(i, lit)
		default:
			cond = algebra.CGreaterC(i, lit)
		}
	case "isnull", "isconst":
		i, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if head == "isnull" {
			cond = algebra.CNull(i)
		} else {
			cond = algebra.CConst(i)
		}
	case "and", "or":
		l, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		r, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if head == "and" {
			cond = algebra.CAnd(l, r)
		} else {
			cond = algebra.COr(l, r)
		}
	case "not":
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		cond = algebra.CNot(c)
	case "in":
		cols, err := p.parseCols()
		if err != nil {
			return nil, err
		}
		sub, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		cond = algebra.CIn(sub, cols...)
	default:
		return nil, fmt.Errorf("raparse: unknown condition %q", head)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return cond, nil
}

// ParseDatabase reads the line-oriented database format.
func ParseDatabase(r io.Reader) (*relation.Database, error) {
	db := relation.NewDatabase()
	if err := ParseDatabaseInto(r, db); err != nil {
		return nil, err
	}
	return db, nil
}

// DBOptions selects parsing variants of the database format.
type DBOptions struct {
	// PreserveNulls maps a numeric null token _k to the null ⊥k verbatim
	// (reserving the identifier in the database's allocator) instead of
	// allocating a fresh null per first occurrence. The snapshot loader uses
	// it so that RenderDatabase output restores with identical null
	// identities; regular loads keep the fresh-null behaviour, where
	// appended data can never alias nulls loaded earlier.
	PreserveNulls bool
}

// ParseDatabaseInto parses the same format into an existing database — the
// append path of a long-lived session. A "rel" line declaring a relation
// that already exists is a no-op when the arity matches (so a file can be
// re-loaded in append mode) and an error otherwise; "row" lines add to the
// live relations, with an optional trailing *N token setting the tuple's
// multiplicity (so bag-semantics relations render and reload compactly).
// Null tokens (_k) are scoped to one parse: the same token always denotes
// the same null within the call, and every call allocates fresh nulls —
// appended data never aliases nulls loaded earlier.
//
// The whole payload is parsed and validated before anything is applied, so
// on error the database is untouched (a client can fix the input and
// re-post without duplicating the prefix); only the fresh-null allocator
// may have advanced, which is harmless — it is monotonic anyway.
func ParseDatabaseInto(r io.Reader, db *relation.Database) error {
	return ParseDatabaseIntoOpts(r, db, DBOptions{})
}

// ParseDatabaseIntoOpts is ParseDatabaseInto with explicit options.
func ParseDatabaseIntoOpts(r io.Reader, db *relation.Database, opts DBOptions) error {
	var newRels []*relation.Relation
	type rowOp struct {
		rel  *relation.Relation // existing relation, nil for a new one
		idx  int                // index into newRels when rel is nil
		t    value.Tuple
		mult int
	}
	var rows []rowOp
	staged := map[string]int{} // name → index into newRels
	arity := func(name string) (existing *relation.Relation, idx, ar int) {
		if i, ok := staged[name]; ok {
			return nil, i, newRels[i].Arity()
		}
		if rel := db.Relation(name); rel != nil {
			return rel, -1, rel.Arity()
		}
		return nil, -1, -1
	}

	nulls := map[string]value.Value{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks := lexLine(line)
		if len(toks) < 2 {
			return fmt.Errorf("raparse: line %d: expected 'rel NAME attrs…' or 'row NAME values…'", lineno)
		}
		switch strings.ToLower(toks[0]) {
		case "rel":
			if _, _, ar := arity(toks[1]); ar >= 0 {
				if ar != len(toks)-2 {
					return fmt.Errorf("raparse: line %d: relation %q exists with arity %d, redeclared with %d",
						lineno, toks[1], ar, len(toks)-2)
				}
				continue
			}
			if !PlainToken(toks[1]) {
				return fmt.Errorf("raparse: line %d: relation name %q is not a plain token", lineno, toks[1])
			}
			for _, a := range toks[2:] {
				if !PlainToken(a) {
					return fmt.Errorf("raparse: line %d: attribute name %q is not a plain token", lineno, a)
				}
			}
			staged[toks[1]] = len(newRels)
			newRels = append(newRels, relation.New(toks[1], toks[2:]...))
		case "row":
			rel, idx, ar := arity(toks[1])
			if ar < 0 {
				return fmt.Errorf("raparse: line %d: unknown relation %q", lineno, toks[1])
			}
			vals := toks[2:]
			mult := 1
			if len(vals) == ar+1 {
				if m, ok := multToken(vals[len(vals)-1]); ok {
					mult = m
					vals = vals[:len(vals)-1]
				}
			}
			if len(vals) != ar {
				return fmt.Errorf("raparse: line %d: %s expects %d values, got %d",
					lineno, toks[1], ar, len(vals))
			}
			t := make(value.Tuple, len(vals))
			for i, v := range vals {
				if strings.HasPrefix(v, "_") {
					if opts.PreserveNulls {
						// Only canonical _<id> tokens (what RenderDatabase
						// emits) are legal here: falling back to fresh
						// allocation could silently alias a fresh null with
						// a later verbatim one.
						id, err := strconv.ParseUint(v[1:], 10, 64)
						if err != nil || id == 0 {
							return fmt.Errorf("raparse: line %d: null token %q must be _<id> when null identifiers are preserved", lineno, v)
						}
						db.ReserveNull(id)
						t[i] = value.Null(id)
						continue
					}
					nv, ok := nulls[v]
					if !ok {
						nv = db.FreshNull()
						nulls[v] = nv
					}
					t[i] = nv
					continue
				}
				t[i] = value.Const(unquoteValue(v))
			}
			rows = append(rows, rowOp{rel: rel, idx: idx, t: t, mult: mult})
		default:
			return fmt.Errorf("raparse: line %d: unknown directive %q", lineno, toks[0])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Apply: the payload is fully validated, so from here on nothing fails.
	for _, rel := range newRels {
		db.Add(rel)
	}
	for _, op := range rows {
		if op.rel == nil {
			op.rel = newRels[op.idx]
		}
		op.rel.AddMult(op.t, op.mult)
	}
	return nil
}

// maxLineBytes bounds one database line; RenderDatabase escapes newlines,
// so even pathological constants stay on one (possibly long) line.
const maxLineBytes = 64 << 20

// multToken recognizes the trailing multiplicity token *N of a row line.
func multToken(tok string) (int, bool) {
	if len(tok) < 2 || tok[0] != '*' {
		return 0, false
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n <= 0 || tok[1] == '+' || tok[1] == '-' {
		return 0, false
	}
	return n, true
}

// unquoteValue interprets one row-value token: a token opening with a
// single quote has the quotes stripped and backslash escapes decoded
// (\' \\ \n \r \t; an unknown escape keeps the backslash); any other token
// is the constant payload verbatim.
func unquoteValue(tok string) string {
	if tok == "" || tok[0] != '\'' {
		return tok
	}
	var b strings.Builder
	b.Grow(len(tok))
	for i := 1; i < len(tok); i++ {
		c := tok[i]
		if c == '\'' { // closing quote: escaped ones are consumed below
			break
		}
		if c == '\\' && i+1 < len(tok) {
			i++
			switch tok[i] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '\\', '\'':
				b.WriteByte(tok[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(tok[i])
			}
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

// lexLine splits a database line on spaces, honouring single quotes. Inside
// a quoted token a backslash escapes the next byte (so quoted constants can
// contain quotes and backslashes; unquoteValue decodes them).
func lexLine(line string) []string {
	var toks []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '\'':
			j := i + 1
			for j < len(line) && line[j] != '\'' {
				if line[j] == '\\' && j+1 < len(line) {
					j++
				}
				j++
			}
			toks = append(toks, line[i:min(j+1, len(line))])
			i = j + 1
		default:
			j := i
			for j < len(line) && line[j] != ' ' && line[j] != '\t' {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks
}
