package raparse

import (
	"strings"
	"testing"

	"incdb/internal/relation"
	"incdb/internal/value"
)

// FuzzDatabaseRoundTrip feeds arbitrary text through the database parser;
// whenever the parser accepts it, the resulting database must render, the
// rendering must re-parse under PreserveNulls to an identical database
// (null identifiers included), and rendering must be idempotent. This is
// the property the durable snapshots rely on.
func FuzzDatabaseRoundTrip(f *testing.F) {
	f.Add("rel R a b\nrow R x y\nrow R x _1\n")
	f.Add("rel Orders oid title\nrow Orders o1 'Big Data'\nrow Orders o2 _k\nrow Orders o2 _k *4\n")
	f.Add("rel T v\nrow T ''\nrow T '*3'\nrow T '_1'\nrow T 'a\\'b'\nrow T 'x\\\\y'\n")
	f.Add("# comment\nrel A x\nrel B y\nrow A _2\nrow B _2\nrow B 5\n")
	f.Add("rel R a\nrow R 'tab\\there' *12\n")
	f.Fuzz(func(t *testing.T, src string) {
		db := relation.NewDatabase()
		if err := ParseDatabaseInto(strings.NewReader(src), db); err != nil {
			t.Skip()
		}
		text, err := RenderDatabase(db)
		if err != nil {
			t.Fatalf("parser accepted %q but renderer refused: %v", src, err)
		}
		db2 := relation.NewDatabase()
		if err := ParseDatabaseIntoOpts(strings.NewReader(text), db2, DBOptions{PreserveNulls: true}); err != nil {
			t.Fatalf("rendering does not re-parse: %v\n--- rendering of %q ---\n%s", err, src, text)
		}
		assertSameDB(t, db, db2)
		text2, err := RenderDatabase(db2)
		if err != nil {
			t.Fatalf("re-render: %v", err)
		}
		if text2 != text {
			t.Fatalf("render not idempotent for %q:\n--- first ---\n%s\n--- second ---\n%s", src, text, text2)
		}
	})
}

// FuzzConstantRoundTrip drives the quoting and escaping rules with
// arbitrary constant payloads (any bytes: quotes, backslashes, newlines,
// control bytes, invalid UTF-8), multiplicities and null identifiers,
// bypassing the parser on the way in.
func FuzzConstantRoundTrip(f *testing.F) {
	f.Add("plain", "it's", uint8(0), uint16(0))
	f.Add("", " pad ", uint8(3), uint16(7))
	f.Add("*3", "_1", uint8(200), uint16(65535))
	f.Add("a\\'b", "line\nbreak\r\t", uint8(1), uint16(1))
	f.Add("\x00\x01\x02", "\xff\xfe bad utf8", uint8(9), uint16(42))
	f.Fuzz(func(t *testing.T, a, b string, mult uint8, nid uint16) {
		db := relation.NewDatabase()
		r := relation.New("R", "x", "y")
		r.AddMult(value.T(value.Const(a), value.Const(b)), int(mult)%5+1)
		r.Add(value.T(value.Const(b), value.Null(uint64(nid)+1)))
		db.Add(r)
		text, err := RenderDatabase(db)
		if err != nil {
			t.Fatalf("RenderDatabase: %v", err)
		}
		db2 := relation.NewDatabase()
		if err := ParseDatabaseIntoOpts(strings.NewReader(text), db2, DBOptions{PreserveNulls: true}); err != nil {
			t.Fatalf("reparse: %v\n--- rendering ---\n%q", err, text)
		}
		assertSameDB(t, db, db2)
	})
}
