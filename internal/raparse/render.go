package raparse

import (
	"fmt"
	"strconv"
	"strings"

	"incdb/internal/relation"
	"incdb/internal/value"
)

// RenderDatabase serializes a database back to the line-oriented .idb text
// format, the inverse of ParseDatabase: relations in catalogue order, each
// declared by a "rel" line and followed by its rows in deterministic
// (sorted) tuple order, multiplicities other than one as a trailing *N
// token. Constants that the lexer could misread — empty, containing
// whitespace or a newline, opening with a quote, shaped like a null (_…) or
// a multiplicity (*N) token — are single-quoted with backslash escapes;
// everything else renders verbatim.
//
// Nulls render as _<id>. Re-parsing with ParseDatabase allocates fresh
// identifiers (structurally equal up to null renaming); the snapshot loader
// re-parses with DBOptions{PreserveNulls: true}, mapping every _k back to
// ⊥k so the restored database is identical, null identities included.
//
// It errors on relation or attribute names that are not plain tokens —
// exactly the names ParseDatabaseInto rejects — so any database assembled
// through the parser round-trips.
func RenderDatabase(db *relation.Database) (string, error) {
	var b strings.Builder
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		if !PlainToken(name) {
			return "", fmt.Errorf("raparse: relation name %q is not renderable (not a plain token)", name)
		}
		b.WriteString("rel ")
		b.WriteString(name)
		for _, a := range r.Attrs() {
			if !PlainToken(a) {
				return "", fmt.Errorf("raparse: attribute name %q of %s is not renderable (not a plain token)", a, name)
			}
			b.WriteByte(' ')
			b.WriteString(a)
		}
		b.WriteByte('\n')
		r.Each(func(t value.Tuple, mult int) {
			b.WriteString("row ")
			b.WriteString(name)
			for _, v := range t {
				b.WriteByte(' ')
				renderDBValue(&b, v)
			}
			if mult != 1 {
				b.WriteString(" *")
				b.WriteString(strconv.Itoa(mult))
			}
			b.WriteByte('\n')
		})
	}
	return b.String(), nil
}

// PlainToken reports whether s survives lexLine as one verbatim token: it
// is non-empty, opens with neither a quote nor the comment marker, and
// contains no whitespace or control bytes. Relation and attribute names
// must be plain tokens (they are referenced verbatim from row lines and
// queries).
func PlainToken(s string) bool {
	if s == "" || s[0] == '\'' || s[0] == '#' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' { // space, tab, newline, CR, control bytes
			return false
		}
	}
	return true
}

// renderDBValue writes one value in row-line syntax.
func renderDBValue(b *strings.Builder, v value.Value) {
	if v.IsNull() {
		b.WriteByte('_')
		b.WriteString(strconv.FormatUint(v.NullID(), 10))
		return
	}
	s := v.ConstVal()
	if !needsQuoting(s) {
		b.WriteString(s)
		return
	}
	b.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('\'')
}

// needsQuoting reports whether the constant payload s must be quoted to
// parse back verbatim: unquoted tokens end at whitespace, a leading quote
// starts a quoted token, a leading underscore denotes a null, a trailing
// *N token is a multiplicity, control bytes break line framing, and a
// payload opening or closing with Unicode space would be eaten by the
// parser's per-line TrimSpace when the value sits at the end of its line.
func needsQuoting(s string) bool {
	if s == "" || s[0] == '\'' || s[0] == '_' {
		return true
	}
	if _, ok := multToken(s); ok {
		return true
	}
	if strings.TrimSpace(s) != s {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == ' ' {
			return true
		}
	}
	return false
}
