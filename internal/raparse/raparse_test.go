package raparse

import (
	"strings"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/value"
)

func TestParseQueryShapes(t *testing.T) {
	cases := []struct {
		src  string
		want string // String() of the parsed expression
	}{
		{"R", "R"},
		{"minus(R, S)", "(R − S)"},
		{"proj(0 2, R)", "π[0,2](R)"},
		{"sel(eq(0, 1), R)", "σ[#0=#1](R)"},
		{"sel(eqc(1, 'o 2'), R)", "σ[#1=o 2](R)"},
		{"sel(and(isnull(0), neqc(1, x)), R)", "σ[(null(#0) ∧ #1≠x)](R)"},
		{"union(times(R, S), T)", "((R × S) ∪ T)"},
		{"inter(R, div(T, S))", "(R ∩ (T ÷ S))"},
		{"dom(2)", "Dom^2"},
		{"sel(not(in(0, proj(1, P))), O)", "σ[¬((#0) IN (π[1](P)))](O)"},
		{"sel(or(lt(0,1), gtc(0, '5')), R)", "σ[(#0<#1 ∨ #0>5)](R)"},
	}
	for _, tc := range cases {
		e, err := ParseQuery(tc.src)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.src, err)
			continue
		}
		if got := e.String(); got != tc.want {
			t.Errorf("ParseQuery(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"", "minus(R)", "sel(eq(0), R)", "proj(x, R)", "R S",
		"sel(frobnicate(1), R)", "dom(x)", "minus(R, S",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseQueryRoundTripEval(t *testing.T) {
	dbSrc := `
# the Figure 1 database
rel Orders oid title price
row Orders o1 'Big Data' 30
row Orders o2 SQL 35
row Orders o3 Logic 50
rel Payments cid oid
row Payments c1 o1
row Payments c2 _1
`
	db, err := ParseDatabase(strings.NewReader(dbSrc))
	if err != nil {
		t.Fatal(err)
	}
	if db.MustRelation("Orders").Len() != 3 {
		t.Fatalf("orders = %v", db.MustRelation("Orders"))
	}
	if !db.MustRelation("Orders").Contains(value.Consts("o1", "Big Data", "30")) {
		t.Fatalf("quoted literal lost: %v", db.MustRelation("Orders"))
	}
	if len(db.NullIDs()) != 1 {
		t.Fatalf("nulls = %v", db.NullIDs())
	}
	q, err := ParseQuery("proj(0, sel(not(in(0, proj(1, Payments))), Orders))")
	if err != nil {
		t.Fatal(err)
	}
	// SQL semantics: the NOT IN with a null returns nothing.
	if got := algebra.SQL(db, q); got.Len() != 0 {
		t.Fatalf("SQL = %v, want ∅", got)
	}
	// Naive semantics: o2 and o3 remain.
	if got := algebra.Naive(db, q); got.Len() != 2 {
		t.Fatalf("naive = %v", got)
	}
}

func TestParseDatabaseSharedNulls(t *testing.T) {
	src := `
rel R a b
row R _1 _1
row R _1 _2
`
	db, err := ParseDatabase(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	r := db.MustRelation("R")
	ts := r.Tuples()
	if len(ts) != 2 {
		t.Fatalf("rows = %v", ts)
	}
	// The token _1 denotes the same marked null everywhere.
	if ts[0][0] != ts[0][1] && ts[1][0] != ts[1][1] {
		t.Fatalf("repeated null token must be the same null: %v", ts)
	}
	if len(db.NullIDs()) != 2 {
		t.Fatalf("two distinct nulls expected: %v", db.NullIDs())
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	bad := []string{
		"row R a",            // row before rel
		"rel R a\nrow R a b", // arity mismatch
		"frob R a",           // unknown directive
		"rel",                // too short
	}
	for _, src := range bad {
		if _, err := ParseDatabase(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDatabase(%q) should fail", src)
		}
	}
}
