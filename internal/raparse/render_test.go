package raparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incdb/internal/relation"
	"incdb/internal/value"
)

// goldenDB is a fixed database exercising everything the renderer must get
// right: nulls, multiplicities, and every constant shape that needs
// quoting or escaping.
func goldenDB() *relation.Database {
	db := relation.NewDatabase()
	orders := relation.New("Orders", "oid", "title", "price")
	orders.Add(value.T(value.Const("o1"), value.Const("Big Data"), value.Const("30")))
	orders.Add(value.T(value.Const("o2"), value.Null(1), value.Const("25")))
	orders.AddMult(value.T(value.Const("o3"), value.Const("Parsing"), value.Const("19")), 3)
	db.Add(orders)
	tricky := relation.New("Tricky", "v")
	for _, s := range []string{
		"", "plain", "it's", "_1", "a b", "*3", `back\slash`, "tab\there",
		"line\nbreak", "'lead", "trail'", " pad ", "quote'n\\mix 1",
	} {
		tricky.Add(value.T(value.Const(s)))
	}
	db.Add(tricky)
	return db
}

// TestRenderGolden pins the snapshot text format: the exact bytes
// RenderDatabase emits for goldenDB. A diff here means the durable snapshot
// format changed — deliberate changes must update the golden file (and
// consider old snapshots on disk).
func TestRenderGolden(t *testing.T) {
	got, err := RenderDatabase(goldenDB())
	if err != nil {
		t.Fatalf("RenderDatabase: %v", err)
	}
	path := filepath.Join("testdata", "render.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the got output)", err)
	}
	if got != string(want) {
		t.Fatalf("render drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRenderRoundTripPreserve: render → parse with PreserveNulls is the
// identity, including null identifiers, catalogue order, attribute names
// and the next-null allocator; rendering again is byte-identical.
func TestRenderRoundTripPreserve(t *testing.T) {
	db := goldenDB()
	text, err := RenderDatabase(db)
	if err != nil {
		t.Fatalf("RenderDatabase: %v", err)
	}
	db2 := relation.NewDatabase()
	if err := ParseDatabaseIntoOpts(strings.NewReader(text), db2, DBOptions{PreserveNulls: true}); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	assertSameDB(t, db, db2)
	if db2.NextNull() != db.NextNull() {
		t.Fatalf("next null: got %d, want %d", db2.NextNull(), db.NextNull())
	}
	text2, err := RenderDatabase(db2)
	if err != nil {
		t.Fatalf("re-render: %v", err)
	}
	if text2 != text {
		t.Fatalf("render not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

// TestRenderRoundTripFresh: render → plain ParseDatabase re-allocates nulls
// in first-seen order; for a database whose nulls were allocated in row
// order that reproduces the identifiers, so the round trip is exact here
// too.
func TestRenderRoundTripFresh(t *testing.T) {
	db := goldenDB()
	text, err := RenderDatabase(db)
	if err != nil {
		t.Fatalf("RenderDatabase: %v", err)
	}
	db2, err := ParseDatabase(strings.NewReader(text))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	assertSameDB(t, db, db2)
}

func TestRenderRejectsUnrenderableNames(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.New("bad name", "a"))
	if _, err := RenderDatabase(db); err == nil {
		t.Fatalf("expected error for relation name with a space")
	}
	db = relation.NewDatabase()
	db.Add(relation.New("R", "bad attr"))
	if _, err := RenderDatabase(db); err == nil {
		t.Fatalf("expected error for attribute name with a space")
	}
}

// TestParseRejectsNonPlainNames pins the parser side of the renderability
// contract: names the renderer cannot emit are rejected on the way in.
func TestParseRejectsNonPlainNames(t *testing.T) {
	for _, src := range []string{"rel 'My Rel' a", "rel R 'a b'"} {
		if _, err := ParseDatabase(strings.NewReader(src)); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestParseMultToken(t *testing.T) {
	db, err := ParseDatabase(strings.NewReader("rel R a b\nrow R x y *3\nrow R '*3' z\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := db.MustRelation("R")
	if m := r.Mult(value.Consts("x", "y")); m != 3 {
		t.Fatalf("mult of (x,y): got %d, want 3", m)
	}
	if m := r.Mult(value.Consts("*3", "z")); m != 1 {
		t.Fatalf("quoted *3 constant: got mult %d, want 1", m)
	}
}

// assertSameDB checks full structural identity: catalogue order, attribute
// names, and bag-equal contents (null identifiers included).
func assertSameDB(t *testing.T, want, got *relation.Database) {
	t.Helper()
	wn, gn := want.Names(), got.Names()
	if len(wn) != len(gn) {
		t.Fatalf("catalogue: got %v, want %v", gn, wn)
	}
	for i := range wn {
		if wn[i] != gn[i] {
			t.Fatalf("catalogue order: got %v, want %v", gn, wn)
		}
		wr, gr := want.MustRelation(wn[i]), got.MustRelation(wn[i])
		wa, ga := wr.Attrs(), gr.Attrs()
		if len(wa) != len(ga) {
			t.Fatalf("%s attrs: got %v, want %v", wn[i], ga, wa)
		}
		for j := range wa {
			if wa[j] != ga[j] {
				t.Fatalf("%s attrs: got %v, want %v", wn[i], ga, wa)
			}
		}
		if !wr.Equal(gr) {
			t.Fatalf("%s contents differ:\ngot  %s\nwant %s", wn[i], gr, wr)
		}
	}
}
