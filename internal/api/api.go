// Package api holds the wire format of the incdbd HTTP/JSON protocol:
// every request and response type exchanged between the server
// (internal/server), its client (server.Client, backing incdbctl), and the
// replication tier. One source of truth — handlers and clients cannot
// drift apart, because they marshal the same structs.
//
// Routes are session-scoped: the session name lives in the URL path,
//
//	POST /v1/sessions/{name}/load      load or append data
//	POST /v1/sessions/{name}/query     evaluate a query
//	POST /v1/sessions/{name}/explain   structured plan rendering
//	GET  /v1/sessions/{name}/status    one session's status
//	GET  /v1/sessions/{name}/snapshot  consistent snapshot export
//	GET  /v1/sessions/{name}/wal       stream WAL records (replication)
//	GET  /v1/status                    server-wide status
//	POST /v1/promote                   promote a follower to primary
//	GET  /v1/healthz                   liveness probe
//	GET  /v1/readyz                    readiness probe
//	GET  /v1/traces                    recent sampled root spans
//	GET  /v1/traces/{id}               every stored span of one trace
//
// The pre-PR-6 flat routes (POST /v1/load|query|explain with the session
// name in the body, GET /v1/snapshot?session=) survive as thin delegating
// shims; the Session fields below exist for them and are ignored when the
// path names the session.
//
// Consistency tokens: every load and query response carries the session's
// version vector (relation name → mutation version). A client that echoes
// its last-seen vector as QueryRequest.ReadAfter is guaranteed monotonic
// reads across a primary/replica fleet — a replica serves the query only
// once its own vector covers the token, briefly blocking while it catches
// up and failing with ErrStaleReplica (HTTP 412) when it cannot.
package api

import (
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/store"
)

// LoadRequest creates or extends a session database. Data is the raparse
// text format ("rel NAME attrs…" / "row NAME values…" lines). With Append
// false the session's database is replaced wholesale; with Append true the
// lines are parsed into the live database — new "rel" lines extend the
// schema, "row" lines add tuples (bumping the relations' mutation
// versions, which invalidates exactly the prepared plans that read them).
// With Snapshot true, Data is instead a snapshot export (or durable
// snapshot file): the session is replaced by the decoded database with
// null identifiers and version vector preserved — the replica bootstrap
// path.
// Epoch, when non-zero, is the highest replication epoch the client has
// observed: a server whose own epoch is lower learns it has been
// superseded and fences itself (fenced_stale_primary) instead of
// accepting a divergent write.
type LoadRequest struct {
	Session  string `json:"session,omitempty"` // legacy body-field routing
	Data     string `json:"data"`
	Append   bool   `json:"append,omitempty"`
	Snapshot bool   `json:"snapshot,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// LoadResponse reports the resulting schema and version vector. Versions
// is the consistency token for read-your-writes routing: echo it as
// QueryRequest.ReadAfter and no replica will answer from a state older
// than this load.
type LoadResponse struct {
	Session   string            `json:"session"`
	Relations []RelationStatus  `json:"relations"`
	Versions  map[string]uint64 `json:"versions"`
	Epoch     uint64            `json:"epoch,omitempty"` // epoch the load committed under
}

// RelationStatus describes one relation of a session database.
type RelationStatus struct {
	Name    string `json:"name"`
	Arity   int    `json:"arity"`
	Rows    int    `json:"rows"` // distinct tuples
	Version uint64 `json:"version"`
}

// QueryRequest evaluates Query (raparse query syntax) against a session
// database. Proc selects the evaluation procedure: sql (default), naive,
// cert (cert⊥), inter (cert∩), plus (Q⁺), poss (Q?), or
// ctable-eager|semi|lazy|aware (certain and possible parts). Bag switches
// sql/naive to bag semantics. MaxWorlds bounds the certainty oracles (0 =
// server default). ReadAfter is the consistency token: the server answers
// only from a database state whose version vector covers it (a replica
// waits briefly for replication to catch up, then fails with
// ErrStaleReplica).
// Epoch, like LoadRequest.Epoch, is the client's highest observed
// replication epoch — a stale primary fences itself on seeing a higher one.
type QueryRequest struct {
	Session   string            `json:"session,omitempty"` // legacy body-field routing
	Query     string            `json:"query"`
	Proc      string            `json:"proc,omitempty"`
	Bag       bool              `json:"bag,omitempty"`
	MaxWorlds int               `json:"max_worlds,omitempty"`
	ReadAfter map[string]uint64 `json:"read_after,omitempty"`
	Epoch     uint64            `json:"epoch,omitempty"`
	// TraceDetail asks for per-plan-node child spans on this request's
	// trace (only honored when the request's trace is sampled). The
	// per-batch counting it enables never changes results — only adds
	// spans — but costs a little, so it is opt-in per request.
	TraceDetail bool `json:"trace_detail,omitempty"`
}

// Resultset is one relation of answers. Rows are rendered in the
// database text format: constants verbatim, the null ⊥k as "_k". Mults is
// set only when some multiplicity differs from one (bag semantics).
type Resultset struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows"`
	Mults   []int      `json:"mults,omitempty"`
}

// QueryResponse carries the evaluation results: one resultset for most
// procedures, certain+possible for the ctable strategies. Cached reports
// that the oracle result cache answered without evaluating anything.
// Versions is the version vector of the state that answered — the
// consistency token for subsequent monotonic reads. Worlds counts the plan
// executions the evaluation spent (one per enumerated valuation for the
// certainty oracles, typically 1 otherwise); FrozenReuse counts the
// world-invariant subplan results served instead of recomputed. Both are 0
// on cached answers and for the ctable strategies (which bypass the plan
// executor).
type QueryResponse struct {
	Session     string            `json:"session"`
	Proc        string            `json:"proc"`
	Query       string            `json:"query"`
	Results     []Resultset       `json:"results"`
	ElapsedMs   float64           `json:"elapsed_ms"`
	Cached      bool              `json:"cached,omitempty"`
	Worlds      int64             `json:"worlds,omitempty"`
	FrozenReuse int64             `json:"frozen_reuse,omitempty"`
	Versions    map[string]uint64 `json:"versions,omitempty"`
	Epoch       uint64            `json:"epoch,omitempty"` // epoch of the answering state
	// TraceID is the hex trace ID of the request's sampled trace, usable
	// with GET /v1/traces/{id} and `incdbctl trace`; empty when the
	// request was not sampled or tracing is off.
	TraceID string `json:"trace_id,omitempty"`
}

// ExplainRequest renders the plan for a query against a session database.
// With Analyze true the plan is also executed once with per-node tracing:
// the response carries actual row counts, batch counts and wall time next
// to each node's estimates (EXPLAIN ANALYZE).
type ExplainRequest struct {
	Session string `json:"session,omitempty"` // legacy body-field routing
	Query   string `json:"query"`
	SQL     bool   `json:"sql,omitempty"` // plan for SQL three-valued evaluation
	Bag     bool   `json:"bag,omitempty"`
	Analyze bool   `json:"analyze,omitempty"`
}

// ExplainResponse returns the structured plan (the same plan.Describe
// output incdbctl's explain -format json prints) plus its text rendering.
type ExplainResponse struct {
	Session string            `json:"session"`
	Plan    *plan.ExplainInfo `json:"plan"`
	Text    string            `json:"text"`
}

// StatusResponse is the server-wide status snapshot. DataDir is set when
// durability is enabled; Replication when the server follows a primary.
// Role and Epoch are the failover coordinates: Role is "primary",
// "replica", or "fenced" (a former primary that observed a higher epoch
// and refuses writes); Epoch is the server's highest replication epoch
// across sessions. A failover-aware client probes Role/Epoch to find the
// writable primary.
type StatusResponse struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	MaxInFlight   int                `json:"max_in_flight"`
	InFlight      int                `json:"in_flight"`
	Role          string             `json:"role"`
	Epoch         uint64             `json:"epoch"`
	DataDir       string             `json:"data_dir,omitempty"`
	Replication   *ReplicationStatus `json:"replication,omitempty"`
	Sessions      []SessionStatus    `json:"sessions"`
}

// Server roles reported in StatusResponse.Role.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
	RoleFenced  = "fenced"
)

// PromoteRequest asks a follower to become the writable primary at
// epoch+1. The server refuses unless its replication tail is drained
// (every shipped record applied) — Force skips that check for disaster
// recovery when the old primary is truly gone and its unshipped tail is
// accepted as lost.
type PromoteRequest struct {
	Force bool `json:"force,omitempty"`
}

// PromoteResponse reports the successful promotion: the new epoch and the
// per-session WAL positions the server took over at.
type PromoteResponse struct {
	Epoch    uint64            `json:"epoch"`
	Sessions map[string]uint64 `json:"sessions"` // session → seq of its epoch record
}

// HealthResponse is the body of /v1/healthz and /v1/readyz. Ok mirrors the
// HTTP status (200 ↔ true, 503 ↔ false); Reason says why not.
type HealthResponse struct {
	Ok     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// SessionStatus describes one session: its schema with versions, how many
// queries it has served, its prepared-plan and oracle-result cache
// counters, and — when durability is enabled — the session's durable
// state (WAL size, sequence numbers, last snapshot and last fsync). A
// byte-identical repeated query shows up as ResultCache.Hits moving; a
// plan-equal but differently spelled one as Cache.Hits; mutating a
// relation shows up as Cache.Invalidations moving on the next affected
// query (result-cache entries simply stop being reachable, their key
// embeds the version vector). Versions is the session's current vector —
// the freshest possible consistency token.
type SessionStatus struct {
	Name        string            `json:"name"`
	CreatedAt   string            `json:"created_at"`
	Queries     uint64            `json:"queries"`
	Versions    map[string]uint64 `json:"versions"`
	Relations   []RelationStatus  `json:"relations"`
	Cache       plan.CacheStats   `json:"cache"`
	ResultCache ResultCacheStats  `json:"result_cache"`
	Durability  *store.Durability `json:"durability,omitempty"`
}

// ResultCacheStats is the status snapshot of a session's oracle result
// cache.
type ResultCacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// ReplicationStatus reports a replica's view of its primary: one entry per
// followed session.
type ReplicationStatus struct {
	Primary  string           `json:"primary"`
	Sessions []ReplicaSession `json:"sessions"`
}

// TracesResponse is the body of GET /v1/traces: recently finished root
// spans (request tops and remote-parented apply spans), newest first.
type TracesResponse struct {
	Spans []obs.SpanData `json:"spans"`
}

// TraceResponse is the body of GET /v1/traces/{id}: every span this
// server holds for one trace, ordered by start time. Each server keeps
// its own ring — a distributed trace is read by querying the same ID on
// the primary and its replicas.
type TraceResponse struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.SpanData `json:"spans"`
}

// ReplicaSession is the replication state of one followed session.
// AppliedSeq is the last primary WAL sequence number applied locally;
// State is "bootstrapping" (restoring a snapshot), "streaming" (tailing
// the WAL) or "retrying" (reconnecting after an error). Bootstraps counts
// snapshot restores since this process started — a durable replica that
// resumed from its own log after a restart shows 0.
type ReplicaSession struct {
	Session    string `json:"session"`
	State      string `json:"state"`
	AppliedSeq uint64 `json:"applied_seq"`
	Bootstraps uint64 `json:"bootstraps"`
	Frames     uint64 `json:"frames"`
	LastError  string `json:"last_error,omitempty"`
}
