package api

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Machine-readable error codes, carried in every non-2xx response body.
const (
	// CodeBadRequest: the request itself is malformed (undecodable body,
	// missing session name, bad query-string parameter).
	CodeBadRequest = "bad_request"
	// CodeBadQuery: the query (or load payload) failed to parse, validate
	// or evaluate against the session's schema.
	CodeBadQuery = "bad_query"
	// CodeSessionNotFound: the named session does not exist (load data
	// first).
	CodeSessionNotFound = "session_not_found"
	// CodeNotFound: the addressed resource does not exist (e.g. no stored
	// spans for the requested trace ID — it was never sampled, or the ring
	// evicted it).
	CodeNotFound = "not_found"
	// CodeOverloaded: no evaluation slot became free while the client was
	// willing to wait.
	CodeOverloaded = "overloaded"
	// CodeStaleReplica: the server's version vector does not cover the
	// request's consistency token and did not catch up within the stale
	// wait; retry (possibly against the primary).
	CodeStaleReplica = "stale_replica"
	// CodeReadOnlyReplica: the server follows a primary; mutations must go
	// to the primary.
	CodeReadOnlyReplica = "read_only_replica"
	// CodeNotDurable: the operation needs a write-ahead log (WAL tailing)
	// but the server runs memory-only.
	CodeNotDurable = "not_durable"
	// CodeWALGap: the requested WAL position was compacted away; the
	// follower must re-bootstrap from a snapshot.
	CodeWALGap = "wal_gap"
	// CodeFencedStalePrimary: this server observed a higher replication
	// epoch than its own — another server has been promoted primary — and
	// has fenced itself read-only. Writes must go to the current primary;
	// this server can rejoin the fleet as a follower of it.
	CodeFencedStalePrimary = "fenced_stale_primary"
	// CodeNotCaughtUp: promotion was refused because the follower has not
	// applied its primary's full WAL (as far as it can tell); retry once
	// replication drains, or promote with force.
	CodeNotCaughtUp = "not_caught_up"
	// CodeShuttingDown: the server is draining for shutdown and no longer
	// accepts new mutations; retry against another endpoint.
	CodeShuttingDown = "shutting_down"
	// CodeInternal: the server failed in a way the client cannot repair
	// (e.g. the load applied but could not be made durable).
	CodeInternal = "internal"
)

// Error is the uniform error body of every non-2xx reply:
//
//	{"error":{"code":"session_not_found","message":"unknown session …"}}
//
// Code is machine-readable (the Code* constants); Message is for humans.
// Error implements error, so clients return it directly — callers can
// errors.As for the code.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`

	// Status is the HTTP status the error traveled with (not part of the
	// body; the transport already carries it).
	Status int `json:"-"`
}

func (e *Error) Error() string { return "server: " + e.Code + ": " + e.Message }

// Errorf builds an Error.
func Errorf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorEnvelope is the JSON body wrapping an Error.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// DecodeError turns a non-2xx response body into an *Error. It understands
// the envelope above and falls back to the pre-PR-6 flat {"error":"msg"}
// shape and to raw text, so a client pointed at an old server still gets a
// usable error (code "unknown").
func DecodeError(status int, body []byte) *Error {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && len(env.Error) > 0 {
		var e Error
		if json.Unmarshal(env.Error, &e) == nil && e.Code != "" {
			e.Status = status
			return &e
		}
		var msg string
		if json.Unmarshal(env.Error, &msg) == nil && msg != "" {
			return &Error{Status: status, Code: "unknown", Message: msg}
		}
	}
	return &Error{Status: status, Code: "unknown",
		Message: fmt.Sprintf("HTTP %d: %s", status, strings.TrimSpace(string(body)))}
}
