package plan

import (
	"sync"
	"sync/atomic"

	"incdb/internal/algebra"
	"incdb/internal/lru"
	"incdb/internal/relation"
)

// PrepCache caches Prepared plans across calls so that the freeze computed
// by Prepare — materialized null-free subplans, join build tables, IN and
// anti-unify splits — survives beyond a single oracle invocation. Entries
// are keyed by (query rendering, mode, semantics, read-relation arities),
// i.e. the same key the process-wide plan cache uses, and guarded by the
// version vector Prepare recorded: a lookup revalidates the guard against
// the caller's database, so an entry is invalidated exactly when a relation
// its plan reads has mutated (or been replaced) since Prepare ran.
//
// All methods are safe for concurrent use, and the Prepared values handed
// out are themselves safe for concurrent Exec — a server can share one
// PrepCache per session across request goroutines, provided mutations of
// the underlying database are externally excluded from running queries (the
// usual reader/writer discipline; the cache itself never mutates the
// database). A nil *PrepCache is valid everywhere one is accepted and
// simply prepares afresh on every call.
type PrepCache struct {
	capacity int

	mu      sync.Mutex
	entries map[string]*Prepared
	order   lru.Order

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// DefaultPrepCacheCap bounds a cache constructed with capacity <= 0.
const DefaultPrepCacheCap = 64

// NewPrepCache returns a cache holding at most capacity prepared plans
// (capacity <= 0 means DefaultPrepCacheCap); least recently used entries
// are evicted first.
func NewPrepCache(capacity int) *PrepCache {
	if capacity <= 0 {
		capacity = DefaultPrepCacheCap
	}
	return &PrepCache{capacity: capacity, entries: map[string]*Prepared{}}
}

// CacheStats is a snapshot of the cache counters. An invalidation is a
// lookup that found an entry whose version guard failed (the entry is
// dropped and re-prepared); a miss is a lookup that found no entry at all.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
}

// Stats returns a snapshot of the counters.
func (c *PrepCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Entries:       n,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// Get returns a Prepared for q against base, reusing a cached one when its
// version guard still holds, and preparing (and caching) a fresh one
// otherwise. A nil receiver prepares afresh without caching.
func (c *PrepCache) Get(base *relation.Database, q algebra.Expr, mode algebra.Mode, bag bool) *Prepared {
	if c == nil {
		return PlanFor(q, base, mode, bag).Prepare(base)
	}
	key := cacheKey(q, base, mode, bag, true)
	c.mu.Lock()
	if prep, ok := c.entries[key]; ok {
		if prep.ValidFor(base) {
			c.order.Touch(key)
			c.mu.Unlock()
			c.hits.Add(1)
			return prep
		}
		c.remove(key)
		c.mu.Unlock()
		c.invalidations.Add(1)
	} else {
		c.mu.Unlock()
		c.misses.Add(1)
	}
	// Prepare outside the lock: it materializes every null-free subplan,
	// which can dominate request latency. Concurrent misses on the same key
	// prepare identical state and the last store wins harmlessly.
	prep := PlanFor(q, base, mode, bag).Prepare(base)
	c.mu.Lock()
	c.entries[key] = prep
	c.order.Touch(key)
	for len(c.entries) > c.capacity {
		c.remove(c.order.Oldest())
	}
	c.mu.Unlock()
	return prep
}

// WorldEval is the cached counterpart of the package-level WorldEval: the
// returned evaluator executes the (possibly reused) prepared plan against
// worlds derived from base and is safe for concurrent use. A nil receiver
// falls back to a one-shot Prepare.
func (c *PrepCache) WorldEval(base *relation.Database, q algebra.Expr, mode algebra.Mode, bag bool) func(*relation.Database) *relation.Relation {
	return c.Get(base, q, mode, bag).Exec
}

// remove drops key from the map and the LRU order; caller holds c.mu.
func (c *PrepCache) remove(key string) {
	delete(c.entries, key)
	c.order.Remove(key)
}
