package plan

import (
	"strings"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func testDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.Consts("k1", "v1"))
	r.Add(value.Consts("k2", "v2"))
	r.Add(value.T(value.Const("k3"), db.FreshNull()))
	db.Add(r)
	s := relation.New("S", "a", "c")
	s.Add(value.Consts("k1", "w1"))
	s.Add(value.Consts("k2", "w2"))
	db.Add(s)
	t := relation.New("T", "x")
	t.Add(value.Consts("w1"))
	db.Add(t)
	return db
}

func TestOptimizePushesConjunctsThroughProduct(t *testing.T) {
	db := testDB()
	// σ_{#0=#2 ∧ #1=v1 ∧ #3=w1}(R × S): the per-side conjuncts must sink
	// into their inputs, the cross conjunct must stay above the product.
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")),
		algebra.CAnd(algebra.CEq(0, 2),
			algebra.CAnd(algebra.CEqC(1, value.Const("v1")), algebra.CEqC(3, value.Const("w1")))))
	opt := Optimize(q, db).String()
	want := "σ[#0=#2]((σ[#1=v1](R) × σ[#1=w1](S)))"
	if opt != want {
		t.Fatalf("Optimize = %s, want %s", opt, want)
	}
}

func TestOptimizePushesThroughUnionAndProjection(t *testing.T) {
	db := testDB()
	q := algebra.Sel(algebra.Un(algebra.Proj(algebra.R("R"), 1, 0), algebra.R("S")),
		algebra.CEqC(1, value.Const("k1")))
	opt := Optimize(q, db).String()
	// The condition re-indexes through the projection (#1 → column 0 of R)
	// and distributes into both union branches.
	want := "(π[1,0](σ[#0=k1](R)) ∪ σ[#1=k1](S))"
	if opt != want {
		t.Fatalf("Optimize = %s, want %s", opt, want)
	}
}

func TestOptimizeCollapsesProjections(t *testing.T) {
	db := testDB()
	q := algebra.Proj(algebra.Proj(algebra.R("R"), 1, 0), 1)
	if got, want := Optimize(q, db).String(), "π[0](R)"; got != want {
		t.Fatalf("Optimize = %s, want %s", got, want)
	}
}

func TestOptimizeDropsTrueKeepsSemantics(t *testing.T) {
	db := testDB()
	q := algebra.Sel(algebra.R("R"), algebra.CAnd(algebra.True{}, algebra.True{}))
	if got, want := Optimize(q, db).String(), "R"; got != want {
		t.Fatalf("Optimize = %s, want %s", got, want)
	}
	// The planned result still carries the interpreter's σ output name.
	res := Eval(db, q, algebra.ModeNaive)
	if res.Name() != "σ" {
		t.Fatalf("output name = %q, want σ", res.Name())
	}
}

func TestCompileExtractsMultiKeyJoin(t *testing.T) {
	db := testDB()
	// Two equalities between R and S → one two-key hash join.
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")),
		algebra.CAnd(algebra.CEq(0, 2), algebra.CEq(1, 3)))
	p := Compile(q, db, algebra.ModeNaive)
	j, ok := p.root.(*pjoin)
	if !ok {
		t.Fatalf("root = %T, want *pjoin", p.root)
	}
	if len(j.lkeys) != 2 || len(j.rkeys) != 2 {
		t.Fatalf("keys = %v/%v, want two each", j.lkeys, j.rkeys)
	}
	if len(j.residual) != 0 {
		t.Fatalf("residual = %v, want none", j.residual)
	}
}

func TestCompileFlattensNestedProducts(t *testing.T) {
	db := testDB()
	// ((R × S) × T) with chained equalities flattens into two hash-join
	// steps, not one binary join over a materialized product.
	q := algebra.Sel(
		algebra.Times(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.R("T")),
		algebra.CAnd(algebra.CEq(0, 2), algebra.CEq(3, 4)))
	p := Compile(q, db, algebra.ModeNaive)
	// The cost-based order may differ from the syntactic one, in which case
	// a projection restoring the syntactic column order sits at the root.
	root := p.root
	if proj, ok := root.(*pproject); ok {
		root = proj.in
	}
	outer, ok := root.(*pjoin)
	if !ok {
		t.Fatalf("root = %T, want *pjoin", root)
	}
	inner, ok := outer.left.(*pjoin)
	if !ok {
		t.Fatalf("outer.left = %T, want *pjoin (flattened chain)", outer.left)
	}
	if len(inner.lkeys) != 1 || len(outer.lkeys) != 1 {
		t.Fatalf("keys: inner %v outer %v, want one each", inner.lkeys, outer.lkeys)
	}
}

func TestPrepareFreezesNullFreeSubplans(t *testing.T) {
	db := testDB() // R has a null, S and T are null-free
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	p := Compile(q, db, algebra.ModeNaive)
	prep := p.Prepare(db)
	j := p.root.(*pjoin)
	fs := prep.frozen[p]
	if fs == nil {
		t.Fatal("no frozen set for the main plan")
	}
	if fs.rels[j.right.base().id] == nil {
		t.Fatal("null-free right scan must freeze")
	}
	if fs.tables[j.base().id] == nil {
		t.Fatal("build table over the frozen right side must freeze")
	}
	if fs.rels[j.left.base().id] != nil {
		t.Fatal("the null-bearing left scan must not freeze")
	}
	// Executing on worlds still matches from-scratch evaluation.
	null := value.Null(1)
	v := value.NewValuation()
	v.Set(null.NullID(), value.Const("k1"))
	world := db.Apply(v)
	want := algebra.EvalInterp(world, q, algebra.ModeNaive)
	if got := prep.Exec(world); !want.Equal(got) {
		t.Fatalf("prepared exec = %v, want %v", got, want)
	}
}

func TestPlanCacheReuse(t *testing.T) {
	db := testDB()
	q := algebra.Sel(algebra.R("S"), algebra.CEqC(0, value.Const("k1")))
	p1 := PlanFor(q, db, algebra.ModeSQL, false)
	p2 := PlanFor(q, db, algebra.ModeSQL, false)
	if p1 != p2 {
		t.Fatal("same query+schema+mode must reuse the compiled plan")
	}
	if p3 := PlanFor(q, db, algebra.ModeNaive, false); p3 == p1 {
		t.Fatal("different mode must not share a plan")
	}
}

func TestExplainMarksFrozenSubplans(t *testing.T) {
	db := testDB()
	q := algebra.Proj(algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2)), 1, 3)
	out := Explain(q, db, algebra.ModeNaive, false, db)
	for _, want := range []string{"logical:", "hash-join", "scan R", "scan S", "[build side frozen]", "used columns:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestSQLModeJoinSkipsNullKeys(t *testing.T) {
	db := testDB()
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(1, 2))
	want := algebra.EvalInterp(db, q, algebra.ModeSQL)
	got := Eval(db, q, algebra.ModeSQL)
	if !want.Equal(got) {
		t.Fatalf("SQL join = %v, want %v", got, want)
	}
}
