package plan

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/value"
)

// Trace accumulates execution statistics across one or more plan
// executions (an EXPLAIN ANALYZE run, or every per-world execution of one
// oracle call — the oracle worker pools share a Trace across shards, so
// all fields are atomics).
//
// Execs and FrozenReuse are always counted — two atomic adds per plan
// execution, cheap enough that the server traces every query to report
// worlds enumerated. Per-node statistics (rows, batches, wall time) are
// collected only when the trace was created with detail=true: detail
// tracing adds a wrapper closure per operator, so it is reserved for
// EXPLAIN ANALYZE.
//
// The wrapper only observes batches on their way to the consumer — it
// never reorders, copies, or buffers them — so a traced execution is
// byte-identical to an untraced one.
type Trace struct {
	// Execs counts plan executions: for the oracles this is the number of
	// worlds enumerated (plus any candidate-producing base runs).
	Execs atomic.Int64
	// FrozenReuse counts frozen-subplan reuses: per execution, the number
	// of world-invariant materializations (relations, join build tables,
	// anti-unify splits) served from the Prepared freeze instead of being
	// recomputed.
	FrozenReuse atomic.Int64

	detail bool

	mu    sync.Mutex
	stats map[*Plan][]*NodeStat
}

// NodeStat holds one physical node's accumulated actuals. WallNs is
// inclusive: a node's time contains its children's (they execute inside
// its streaming pipeline).
type NodeStat struct {
	Rows    atomic.Int64
	Batches atomic.Int64
	WallNs  atomic.Int64
}

// NewTrace returns an empty trace; detail enables per-node statistics.
func NewTrace(detail bool) *Trace {
	return &Trace{detail: detail, stats: map[*Plan][]*NodeStat{}}
}

// planStats returns (allocating on first use) the per-node stat slots for
// p, indexed by node id like the exec buffers.
func (t *Trace) planStats(p *Plan) []*NodeStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[p]
	if !ok {
		st = make([]*NodeStat, len(p.nodes))
		for i := range st {
			st[i] = &NodeStat{}
		}
		t.stats[p] = st
	}
	return st
}

// stat returns the accumulated stats for node id of p, or nil when the
// trace is nil, not detailed, or never executed that plan.
func (t *Trace) stat(p *Plan, id int) *NodeStat {
	if t == nil || !t.detail {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[p]
	if st == nil || id >= len(st) {
		return nil
	}
	return st[id]
}

// NodeActual is one physical node's measured execution, flattened from a
// detail trace for consumers outside the package — the server turns them
// into per-node child spans of a traced query. For oracle procedures the
// numbers accumulate across every enumerated world, so WallNs is the
// node's total time over the whole oracle call.
type NodeActual struct {
	Depth   int
	Op      string
	Rows    int64
	Batches int64
	WallNs  int64
}

// NodeActuals flattens every plan this trace observed into pre-order
// node listings, slowest plan first (deterministic despite the map).
// Empty when the trace is nil or was not created with detail.
func (t *Trace) NodeActuals() []NodeActual {
	if t == nil || !t.detail {
		return nil
	}
	t.mu.Lock()
	plans := make([]*Plan, 0, len(t.stats))
	for p := range t.stats {
		plans = append(plans, p)
	}
	t.mu.Unlock()
	sort.Slice(plans, func(i, j int) bool { return t.rootWall(plans[i]) > t.rootWall(plans[j]) })
	var out []NodeActual
	for _, p := range plans {
		t.flatten(p, p.root, 0, &out)
	}
	return out
}

func (t *Trace) rootWall(p *Plan) int64 {
	if st := t.stat(p, p.root.base().id); st != nil {
		return st.WallNs.Load()
	}
	return 0
}

func (t *Trace) flatten(p *Plan, n pnode, depth int, out *[]NodeActual) {
	na := NodeActual{Depth: depth, Op: n.describe()}
	if st := t.stat(p, n.base().id); st != nil {
		na.Rows = st.Rows.Load()
		na.Batches = st.Batches.Load()
		na.WallNs = st.WallNs.Load()
	}
	*out = append(*out, na)
	for _, c := range n.children() {
		t.flatten(p, c, depth+1, out)
	}
}

// streamTraced is the stream dispatcher under detail tracing: identical
// batch flow, plus row/batch counts on every emission and inclusive wall
// time around the node's execution.
func streamTraced(n pnode, x *exec, emit func(*vbatch)) {
	st := x.tstats[n.base().id]
	counted := func(b *vbatch) {
		st.Batches.Add(1)
		st.Rows.Add(int64(len(b.rows)))
		emit(b)
	}
	start := time.Now()
	if r := x.frozenRel(n); r != nil {
		o := x.out(n)
		r.EachUnordered(func(t value.Tuple, m int) {
			o.push(t, m, counted)
		})
		o.flush(counted)
	} else {
		n.run(x, counted)
	}
	st.WallNs.Add(time.Since(start).Nanoseconds())
}
