package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"incdb/internal/algebra"
	"incdb/internal/relation"
)

// ExplainNode is one physical operator in a structured plan rendering.
// Frozen marks a node whose whole result is world-invariant (materialized
// once per Prepare and reused across valuations); BuildFrozen marks a join
// whose build side alone is frozen. Children are always populated — text
// rendering elides them below frozen nodes, JSON consumers see the full
// tree.
// EstRows is the cost model's estimated output cardinality (absent when the
// catalog carries no statistics), Cost a join step's estimated cost
// (intermediate rows plus hash-build size), and Columns the pruned column
// mask a narrowed scan emits.
type ExplainNode struct {
	Op          string         `json:"op"`
	Frozen      bool           `json:"frozen,omitempty"`
	BuildFrozen bool           `json:"build_frozen,omitempty"`
	EstRows     *float64       `json:"est_rows,omitempty"`
	Cost        float64        `json:"cost,omitempty"`
	Columns     []int          `json:"columns,omitempty"`
	ActualRows  *int64         `json:"actual_rows,omitempty"`
	Batches     int64          `json:"batches,omitempty"`
	WallMs      float64        `json:"wall_ms,omitempty"`
	Children    []*ExplainNode `json:"children,omitempty"`
}

// ExplainInfo is the structured form of EXPLAIN output: the one rendering
// path shared by the incdbctl explain subcommand (text and -format json)
// and the server's /v1/explain endpoint.
type ExplainInfo struct {
	Query       string           `json:"query"`
	Logical     string           `json:"logical"`
	Mode        string           `json:"mode"`
	Semantics   string           `json:"semantics"`
	Physical    *ExplainNode     `json:"physical"`
	Subqueries  []*ExplainNode   `json:"subqueries,omitempty"`
	UsedColumns map[string][]int `json:"used_columns,omitempty"`

	// Analyze fields: populated by DescribeAnalyze after an instrumented
	// execution. Actual per-node rows/batches/wall time land on the
	// ExplainNodes; the totals below summarize the run.
	Analyzed    bool    `json:"analyzed,omitempty"`
	ResultRows  int64   `json:"result_rows,omitempty"`
	TotalMs     float64 `json:"total_ms,omitempty"`
	Execs       int64   `json:"execs,omitempty"`
	FrozenReuse int64   `json:"frozen_reuse,omitempty"`
}

// Describe returns the structured explain information for q, compiled
// through the process-wide plan cache. When base is non-nil the plan is
// additionally prepared against it and world-invariant (frozen) subplans
// are marked: those are computed once per oracle call and shared across
// all valuations. The used-column masks of algebra.UsedColumns are
// reported alongside, since they drive the certain oracle's
// valuation-space pruning that composes with plan reuse.
func Describe(q algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, base *relation.Database) *ExplainInfo {
	p := PlanFor(q, cat, mode, bag)
	var prep *Prepared
	if base != nil {
		prep = p.Prepare(base)
	}
	return describeInfo(q, cat, p, prep, nil)
}

// DescribeCached is Describe drawing the prepared state from a
// version-guarded cache instead of freezing afresh: the markers reflect
// exactly the Prepared a subsequent query through the same cache will
// reuse (and the call warms that cache). The incdbd /v1/explain handler
// uses it with the session's cache.
func DescribeCached(q algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, base *relation.Database, cache *PrepCache) *ExplainInfo {
	prep := cache.Get(base, q, mode, bag)
	return describeInfo(q, cat, prep.p, prep, nil)
}

// DescribeAnalyze is EXPLAIN ANALYZE: it executes the prepared plan once
// against base under detail tracing and reports per-node actual rows,
// batches, and inclusive wall time alongside the cost model's estimates.
// The traced execution streams exactly the batches an untraced run would
// (trace.go), so the answer the operator inspects is the answer a query
// would return. cache may be nil to freeze afresh.
func DescribeAnalyze(q algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, base *relation.Database, cache *PrepCache) *ExplainInfo {
	var prep *Prepared
	if cache != nil {
		prep = cache.Get(base, q, mode, bag)
	} else {
		prep = PlanFor(q, cat, mode, bag).Prepare(base)
	}
	tr := NewTrace(true)
	start := time.Now()
	out := prep.ExecTraced(base, tr)
	elapsed := time.Since(start)
	info := describeInfo(q, cat, prep.p, prep, tr)
	info.Analyzed = true
	info.ResultRows = int64(out.Len())
	info.TotalMs = float64(elapsed.Nanoseconds()) / 1e6
	info.Execs = tr.Execs.Load()
	info.FrozenReuse = tr.FrozenReuse.Load()
	return info
}

func describeInfo(q algebra.Expr, cat algebra.Catalog, p *Plan, prep *Prepared, tr *Trace) *ExplainInfo {
	info := &ExplainInfo{
		Query:     q.String(),
		Logical:   OptimizedFor(q, cat).String(),
		Mode:      p.mode.String(),
		Semantics: "set",
	}
	if p.bag {
		info.Semantics = "bag"
	}
	info.Physical = describeTree(p, p.root, prep, tr)
	for _, sub := range p.subs {
		info.Subqueries = append(info.Subqueries, describeTree(sub, sub.root, prep, tr))
	}
	if usedExplainable(q) {
		used := algebra.UsedColumns(q, cat)
		info.UsedColumns = make(map[string][]int, len(used))
		for name, mask := range used {
			cols := []int{}
			for i, u := range mask {
				if u {
					cols = append(cols, i)
				}
			}
			info.UsedColumns[name] = cols
		}
	}
	return info
}

func describeTree(q *Plan, n pnode, prep *Prepared, tr *Trace) *ExplainNode {
	out := &ExplainNode{Op: n.describe()}
	if b := n.base(); b.est >= 0 {
		est := b.est
		out.EstRows = &est
	}
	if j, ok := n.(*pjoin); ok && j.cost >= 0 {
		out.Cost = j.cost
	}
	if s, ok := n.(*pscan); ok {
		out.Columns = s.cols
	}
	if prep != nil {
		if fs := prep.frozen[q]; fs != nil {
			if fs.rels[n.base().id] != nil {
				out.Frozen = true
			} else if j, ok := n.(*pjoin); ok && fs.tables[j.base().id] != nil {
				out.BuildFrozen = true
			}
		}
	}
	if st := tr.stat(q, n.base().id); st != nil {
		rows := st.Rows.Load()
		out.ActualRows = &rows
		out.Batches = st.Batches.Load()
		out.WallMs = float64(st.WallNs.Load()) / 1e6
	}
	for _, c := range n.children() {
		out.Children = append(out.Children, describeTree(q, c, prep, tr))
	}
	return out
}

// Text renders the historical EXPLAIN text format from the structured
// form; Explain is Describe followed by Text.
func (info *ExplainInfo) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:    %s\n", info.Query)
	fmt.Fprintf(&b, "logical:  %s\n", info.Logical)
	fmt.Fprintf(&b, "mode:     %s, %s semantics\n", info.Mode, info.Semantics)
	if info.Analyzed {
		fmt.Fprintf(&b, "actual:   %d rows in %s (%d execution(s), %d frozen reuse(s))\n",
			info.ResultRows, fmtMs(info.TotalMs), info.Execs, info.FrozenReuse)
	}
	b.WriteString("physical:\n")
	textTree(&b, info.Physical, 1)
	for i, sub := range info.Subqueries {
		fmt.Fprintf(&b, "subquery %d (set semantics):\n", i)
		textTree(&b, sub, 1)
	}
	if info.UsedColumns != nil {
		names := make([]string, 0, len(info.UsedColumns))
		for name := range info.UsedColumns {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("used columns:\n")
		for _, name := range names {
			cols := make([]string, len(info.UsedColumns[name]))
			for i, c := range info.UsedColumns[name] {
				cols[i] = fmt.Sprintf("%d", c)
			}
			fmt.Fprintf(&b, "  %s: [%s]\n", name, strings.Join(cols, ","))
		}
	}
	return b.String()
}

func textTree(b *strings.Builder, n *ExplainNode, depth int) {
	var parts []string
	if n.EstRows != nil {
		parts = append(parts, fmt.Sprintf("est≈%s", fmtEst(*n.EstRows)))
		if n.Cost > 0 {
			parts = append(parts, fmt.Sprintf("cost≈%s", fmtEst(n.Cost)))
		}
	}
	if n.ActualRows != nil {
		parts = append(parts, fmt.Sprintf("actual=%d rows", *n.ActualRows),
			fmt.Sprintf("%d batches", n.Batches), fmtMs(n.WallMs))
	}
	marker := ""
	if len(parts) > 0 {
		marker = "  (" + strings.Join(parts, ", ") + ")"
	}
	switch {
	case n.Frozen:
		marker += "  [frozen across worlds]"
	case n.BuildFrozen:
		marker += "  [build side frozen]"
	}
	fmt.Fprintf(b, "%s%s%s\n", strings.Repeat("  ", depth), n.Op, marker)
	if n.Frozen {
		return // the subtree below a frozen result is never re-executed
	}
	for _, c := range n.Children {
		textTree(b, c, depth+1)
	}
}

// fmtEst renders a cardinality estimate compactly: integral values without
// a fraction, small fractional ones with one decimal.
func fmtEst(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// fmtMs renders a duration in milliseconds with sub-millisecond precision
// for the fast nodes EXPLAIN ANALYZE mostly reports.
func fmtMs(ms float64) string {
	if ms < 1 {
		return fmt.Sprintf("%.3fms", ms)
	}
	return fmt.Sprintf("%.1fms", ms)
}
