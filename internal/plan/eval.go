package plan

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"incdb/internal/algebra"
	"incdb/internal/relation"
)

// The process-wide plan cache: compiled plans keyed by the query rendering,
// evaluation mode, semantics, and the arities of the relations read (the
// only schema facts compilation consumes). Compiling the same query against
// the same schema shape therefore happens once, no matter how many times —
// or from how many goroutines — it is evaluated.
var (
	planCache     sync.Map // string → *Plan
	planCacheSize atomic.Int64
)

// planCacheCap bounds the cache; a workload cycling through more distinct
// queries than this simply recompiles (compilation is cheap, the cap only
// prevents unbounded growth under generated-query workloads).
const planCacheCap = 1024

// PlanFor returns the cached (or freshly compiled) plan for e.
func PlanFor(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool) *Plan {
	key := cacheKey(e, cat, mode, bag, true)
	if v, ok := planCache.Load(key); ok {
		return v.(*Plan)
	}
	p := compile(e, cat, mode, bag)
	if planCacheSize.Load() < planCacheCap {
		if _, loaded := planCache.LoadOrStore(key, p); !loaded {
			planCacheSize.Add(1)
		}
	}
	return p
}

// The process-wide logical-optimization cache: Optimize is pure in the
// expression and the arities of the relations it mentions, so repeated
// evaluation of the same query — the planner compiling main plans and IN
// subplans, and ctable.EvalWith optimizing before its own row machinery —
// shares one rewrite.
var (
	optCache     sync.Map // string → algebra.Expr
	optCacheSize atomic.Int64
)

// OptimizedFor returns the cached (or freshly computed) logical
// optimization of e over cat.
func OptimizedFor(e algebra.Expr, cat algebra.Catalog) algebra.Expr {
	key := cacheKey(e, cat, 0, false, false)
	if v, ok := optCache.Load(key); ok {
		return v.(algebra.Expr)
	}
	opt := Optimize(e, cat)
	if optCacheSize.Load() < planCacheCap {
		if _, loaded := optCache.LoadOrStore(key, opt); !loaded {
			optCacheSize.Add(1)
		}
	}
	return opt
}

// cacheKey renders the facts a cached artifact depends on. Logical rewrites
// (withStats false) depend only on the query and the relation arities.
// Physical plans (withStats true) additionally fold in each read relation's
// statistics epoch — its log₂ cardinality class — so a plan compiled for one
// data size is reused until a relation roughly doubles or halves, at which
// point the cost-based join order may flip and the plan recompiles. The
// coarse bucketing keeps per-row mutations from thrashing the cache.
func cacheKey(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, withStats bool) string {
	var b strings.Builder
	b.WriteString(e.String())
	fmt.Fprintf(&b, "|%d|%t", mode, bag)
	names, _ := algebra.RelationsOf(e)
	stats, _ := cat.(statsProvider)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s:%d", n, cat.Arity(n))
		if withStats && stats != nil {
			if rel := stats.Relation(n); rel != nil {
				fmt.Fprintf(&b, "@%d", rel.StatsEpoch())
			}
		}
	}
	return b.String()
}

// Eval evaluates e on db under set semantics through the planner; it is the
// planned counterpart of algebra.Eval and produces identical results.
func Eval(db *relation.Database, e algebra.Expr, mode algebra.Mode) *relation.Relation {
	return PlanFor(e, db, mode, false).Exec(db)
}

// EvalBag evaluates e on db under bag semantics through the planner.
func EvalBag(db *relation.Database, e algebra.Expr, mode algebra.Mode) *relation.Relation {
	return PlanFor(e, db, mode, true).Exec(db)
}

// WorldEval compiles and prepares q once against the base database and
// returns the per-world evaluator the oracles loop on: each call evaluates
// one world derived from base, reusing the plan and every frozen null-free
// subplan. The returned function is safe for concurrent use.
func WorldEval(base *relation.Database, q algebra.Expr, mode algebra.Mode, bag bool) func(world *relation.Database) *relation.Relation {
	return PlanFor(q, base, mode, bag).Prepare(base).Exec
}

func init() {
	// Installing the planner makes algebra.Eval/EvalBag planned-by-default
	// in every binary that (transitively) links this package; the
	// interpreter stays reachable as algebra.EvalInterp/EvalBagInterp.
	algebra.RegisterPlanner(func(db *relation.Database, e algebra.Expr, mode algebra.Mode, bag bool) *relation.Relation {
		if bag {
			return EvalBag(db, e, mode)
		}
		return Eval(db, e, mode)
	})
}
