// Package plan is the compile-once query planner: a logical optimizer over
// the relational algebra of internal/algebra plus a physical layer of
// streaming operators that is compiled a single time per query and then
// re-executed once per database. The certain/prob oracles evaluate the same
// query over an exponential space of valuations v(D); the planner lets them
// pay planning, join-order selection and — through Prepare — the hash
// tables and materialized results of every null-free subplan a single time
// across all worlds, instead of re-walking the AST and rebuilding every
// intermediate per valuation.
//
// The logical layer rewrites the algebra AST into an equivalent one:
//
//   - selection conditions are split into their ∧-conjuncts;
//   - conjuncts are pushed below ×, ∪, σ, π (re-indexing through the
//     projection map) and into the left input of −, ∩ and ⋉⇑;
//   - cascading projections are composed and projections are pushed into
//     both sides of ∪;
//   - trivially true conjuncts are dropped.
//
// Every rewrite preserves both evaluation modes (naive and SQL's
// three-valued keep-t), both semantics (set and bag) and — for the
// σπ×∪−∩ fragment — the row-by-row behaviour of the c-table strategies,
// which lets internal/ctable share the optimizer.
//
// The physical layer (compile.go, exec.go) then normalizes σ-over-×
// clusters into n-ary join graphs evaluated by multi-key hash joins.
package plan

import (
	"incdb/internal/algebra"
)

// Optimize returns an expression equivalent to e under both modes and both
// semantics, with selections split and pushed toward the leaves and
// cascading projections collapsed. The catalog is needed to compute input
// arities when pushing conditions through products.
func Optimize(e algebra.Expr, cat algebra.Catalog) algebra.Expr {
	switch e := e.(type) {
	case algebra.Rel, algebra.Dom:
		return e
	case algebra.Select:
		in := Optimize(e.In, cat)
		conjs := splitAnd(e.Cond)
		if len(conjs) == 0 { // σ_true: the filter keeps everything
			return in
		}
		// Push the last conjunct first so the stack reads left-to-right
		// from the outside in, mirroring the original ∧ order.
		for i := len(conjs) - 1; i >= 0; i-- {
			in = pushSel(in, conjs[i], cat)
		}
		return in
	case algebra.Project:
		in := Optimize(e.In, cat)
		switch inner := in.(type) {
		case algebra.Project:
			// π_a(π_b(X)) = π_{b∘a}(X).
			cols := make([]int, len(e.Cols))
			for i, c := range e.Cols {
				cols[i] = inner.Cols[c]
			}
			return algebra.Project{In: inner.In, Cols: cols}
		case algebra.Union:
			// π distributes over ∪ under both semantics (bag projection
			// sums after or before the union's addition equally).
			return algebra.Union{
				L: algebra.Project{In: inner.L, Cols: e.Cols},
				R: algebra.Project{In: inner.R, Cols: e.Cols},
			}
		}
		return algebra.Project{In: in, Cols: e.Cols}
	case algebra.Product:
		return algebra.Product{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	case algebra.Union:
		return algebra.Union{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	case algebra.Diff:
		return algebra.Diff{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	case algebra.Intersect:
		return algebra.Intersect{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	case algebra.Divide:
		return algebra.Divide{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	case algebra.AntiUnify:
		return algebra.AntiUnify{L: Optimize(e.L, cat), R: Optimize(e.R, cat)}
	}
	return e
}

// pushSel pushes the single conjunct c as deep into in as its column
// references allow, wrapping a σ at the deepest legal position.
func pushSel(in algebra.Expr, c algebra.Cond, cat algebra.Catalog) algebra.Expr {
	switch e := in.(type) {
	case algebra.Product:
		cols := condCols(c)
		la := algebra.Arity(e.L, cat)
		ra := algebra.Arity(e.R, cat)
		if len(cols) > 0 {
			lo, hi := cols[0], cols[len(cols)-1]
			if hi < la {
				return algebra.Product{L: pushSel(e.L, c, cat), R: e.R}
			}
			if lo >= la && hi < la+ra {
				return algebra.Product{L: e.L, R: pushSel(e.R, shiftCond(c, -la), cat)}
			}
		}
	case algebra.Union:
		// σ_c(L ∪ R) = σ_c(L) ∪ σ_c(R): the filter is per tuple and union
		// adds multiplicities, so it distributes under both semantics.
		return algebra.Union{L: pushSel(e.L, c, cat), R: pushSel(e.R, c, cat)}
	case algebra.Select:
		// Dive below an existing selection; σ application order does not
		// matter for the keep-t filter.
		return algebra.Select{In: pushSel(e.In, c, cat), Cond: e.Cond}
	case algebra.Project:
		// σ_c(π_m(X)) = π_m(σ_{c∘m}(X)): re-index the condition through the
		// projection map and keep pushing.
		return algebra.Project{In: pushSel(e.In, remapCond(c, e.Cols), cat), Cols: e.Cols}
	case algebra.Diff:
		// Filtering the minuend first is equivalent: a tuple survives −
		// only if it came from L.
		return algebra.Diff{L: pushSel(e.L, c, cat), R: e.R}
	case algebra.Intersect:
		return algebra.Intersect{L: pushSel(e.L, c, cat), R: e.R}
	case algebra.AntiUnify:
		// The anti-semijoin keeps a subset of L's rows with their
		// multiplicities; a per-tuple filter on the output equals filtering
		// L first.
		return algebra.AntiUnify{L: pushSel(e.L, c, cat), R: e.R}
	}
	return algebra.Select{In: in, Cond: c}
}

// splitAnd flattens the ∧-structure of c into conjuncts, dropping trivially
// true ones. Or/Not subtrees are conjunct atoms — they are not entered.
func splitAnd(c algebra.Cond) []algebra.Cond {
	var out []algebra.Cond
	var walk func(c algebra.Cond)
	walk = func(c algebra.Cond) {
		switch c := c.(type) {
		case algebra.And:
			walk(c.L)
			walk(c.R)
		case algebra.True:
			// dropped: σ_true keeps every row in both modes
		default:
			out = append(out, c)
		}
	}
	walk(c)
	return out
}

// condCols returns the sorted distinct column indices c reads.
func condCols(c algebra.Cond) []int {
	seen := map[int]bool{}
	var walk func(c algebra.Cond)
	add := func(is ...int) {
		for _, i := range is {
			seen[i] = true
		}
	}
	walk = func(c algebra.Cond) {
		switch c := c.(type) {
		case algebra.Eq:
			add(c.I, c.J)
		case algebra.Neq:
			add(c.I, c.J)
		case algebra.Less:
			add(c.I, c.J)
		case algebra.EqConst:
			add(c.I)
		case algebra.NeqConst:
			add(c.I)
		case algebra.LessConst:
			add(c.I)
		case algebra.GreaterConst:
			add(c.I)
		case algebra.IsNull:
			add(c.I)
		case algebra.IsConst:
			add(c.I)
		case algebra.And:
			walk(c.L)
			walk(c.R)
		case algebra.Or:
			walk(c.L)
			walk(c.R)
		case algebra.Not:
			walk(c.C)
		case algebra.InSub:
			add(c.Cols...)
		}
	}
	walk(c)
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ { // insertion sort: tiny slices
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// shiftCond re-indexes every column reference of c by delta.
func shiftCond(c algebra.Cond, delta int) algebra.Cond {
	return mapCond(c, func(i int) int { return i + delta })
}

// remapCond rewrites column i of c to cols[i] — the inverse image of a
// projection.
func remapCond(c algebra.Cond, cols []int) algebra.Cond {
	return mapCond(c, func(i int) int { return cols[i] })
}

func mapCond(c algebra.Cond, f func(int) int) algebra.Cond {
	switch c := c.(type) {
	case algebra.Eq:
		return algebra.Eq{I: f(c.I), J: f(c.J)}
	case algebra.Neq:
		return algebra.Neq{I: f(c.I), J: f(c.J)}
	case algebra.Less:
		return algebra.Less{I: f(c.I), J: f(c.J)}
	case algebra.EqConst:
		return algebra.EqConst{I: f(c.I), C: c.C}
	case algebra.NeqConst:
		return algebra.NeqConst{I: f(c.I), C: c.C}
	case algebra.LessConst:
		return algebra.LessConst{I: f(c.I), C: c.C}
	case algebra.GreaterConst:
		return algebra.GreaterConst{I: f(c.I), C: c.C}
	case algebra.IsNull:
		return algebra.IsNull{I: f(c.I)}
	case algebra.IsConst:
		return algebra.IsConst{I: f(c.I)}
	case algebra.And:
		return algebra.And{L: mapCond(c.L, f), R: mapCond(c.R, f)}
	case algebra.Or:
		return algebra.Or{L: mapCond(c.L, f), R: mapCond(c.R, f)}
	case algebra.Not:
		return algebra.Not{C: mapCond(c.C, f)}
	case algebra.InSub:
		cols := make([]int, len(c.Cols))
		for i, x := range c.Cols {
			cols[i] = f(x)
		}
		return algebra.InSub{Cols: cols, Sub: c.Sub}
	}
	return c // True, False
}
