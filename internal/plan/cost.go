package plan

import (
	"math"

	"incdb/internal/algebra"
	"incdb/internal/relation"
)

// The cost model. Estimated cardinalities flow bottom-up through the
// physical compiler (pbase.est, pbase.colDist) from per-relation statistics
// snapshots, and compileCluster uses them to order the joins of a flattened
// σ/× cluster: System-R-style, left-deep, minimizing the sum of
// intermediate result sizes plus hash-build sizes. The estimates never
// affect answers — only the join order and build/probe sides — so a stale
// or absent estimate degrades speed, never correctness (the adversarial
// stale-stats equivalence test pins this).

// statsProvider is the optional catalog capability the cost model draws
// statistics from; *relation.Database satisfies it. Catalogs that only
// answer arities (tests, translation shims) compile with estimates absent
// and the join order stays syntactic.
type statsProvider interface {
	Relation(name string) *relation.Relation
}

// dpMaxInputs bounds the exact DP-over-subsets ordering; clusters joining
// more inputs fall back to the greedy minimum-growth order.
const dpMaxInputs = 8

// buildWeight charges a hash-build row more than an intermediate row: an
// insert pays hashing plus table growth, while an intermediate row is one
// batch slot. It also breaks the chain-query tie toward probing the large
// relation through small build tables instead of building the large one.
const buildWeight = 2

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// selCond estimates the selectivity of one condition. dist(col) returns the
// (≥1) distinct-value estimate of a column; nullFrac(col) returns the
// fraction of rows whose column is null, or -1 when unknown. Equality
// selectivities use the textbook 1/max(d_l, d_r); range predicates the
// conventional 1/3; connectives combine under an independence assumption.
func selCond(c algebra.Cond, dist func(int) float64, nullFrac func(int) float64) float64 {
	switch c := c.(type) {
	case algebra.True:
		return 1
	case algebra.False:
		return 0
	case algebra.Eq:
		return 1 / maxf(dist(c.I), dist(c.J))
	case algebra.EqConst:
		return 1 / dist(c.I)
	case algebra.Neq:
		return 1 - 1/maxf(dist(c.I), dist(c.J))
	case algebra.NeqConst:
		return 1 - 1/dist(c.I)
	case algebra.Less, algebra.LessConst, algebra.GreaterConst:
		return 1.0 / 3
	case algebra.IsNull:
		if f := nullFrac(c.I); f >= 0 {
			return f
		}
		return 0.1
	case algebra.IsConst:
		if f := nullFrac(c.I); f >= 0 {
			return 1 - f
		}
		return 0.9
	case algebra.And:
		return selCond(c.L, dist, nullFrac) * selCond(c.R, dist, nullFrac)
	case algebra.Or:
		s, t := selCond(c.L, dist, nullFrac), selCond(c.R, dist, nullFrac)
		return s + t - s*t
	case algebra.Not:
		return 1 - selCond(c.C, dist, nullFrac)
	case algebra.InSub:
		return 0.5
	}
	return 0.5
}

// noNullFrac is the nullFrac callback for contexts without per-column null
// statistics.
func noNullFrac(int) float64 { return -1 }

// distOfNode returns the distinct-value callback over a node's (narrowed)
// columns, clamped to [1, est].
func distOfNode(n pnode) func(int) float64 {
	b := n.base()
	return func(col int) float64 {
		d := b.colDist[col]
		if b.est >= 1 && d > b.est {
			d = b.est
		}
		return maxf(d, 1)
	}
}

// nullFracOfNode returns per-column null fractions when the node is a base
// scan (exact from the stats block), unknown otherwise.
func nullFracOfNode(n pnode) func(int) float64 {
	if s, ok := n.(*pscan); ok && s.nullFrac != nil {
		return func(col int) float64 { return s.nullFrac[col] }
	}
	return noNullFrac
}

// capDist caps distinct estimates at the row estimate (a column cannot hold
// more distinct values than the node has rows).
func capDist(d []float64, est float64) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		if est >= 1 && v > est {
			v = est
		}
		out[i] = maxf(v, 1)
	}
	return out
}

// costable reports whether every cluster input carries usable estimates.
func costable(nodes []pnode) bool {
	for _, n := range nodes {
		if b := n.base(); b.est < 0 || b.colDist == nil {
			return false
		}
	}
	return true
}

// crossConj is one cross-input conjunct for ordering purposes: the bitmask
// of inputs it touches and its estimated selectivity.
type crossConj struct {
	mask uint
	sel  float64
}

// orderJoins picks a left-deep join order over the cluster inputs using the
// order-independent cardinality model card(S) = Π rows(i) × Π sel(conjs ⊆ S)
// and the cost Σ_steps (card(prefix) + buildWeight·rows(build side)): the
// intermediate sizes every later operator pays for, plus the hash tables
// built. Up to dpMaxInputs inputs the minimum is exact (DP over subsets);
// beyond that a greedy minimum-growth order. Returns the order plus per-step
// estimated cardinality and cost (step 0: the first input, cost 0).
// Deterministic: ties resolve toward the lowest input index.
func orderJoins(rows []float64, conjs []crossConj) (order []int, est, cost []float64) {
	n := len(rows)
	if n > dpMaxInputs {
		order = greedyOrder(rows, conjs)
	} else {
		order = dpOrder(rows, conjs)
	}
	// Walk the chosen order once to report per-step estimates.
	est = make([]float64, n)
	cost = make([]float64, n)
	mask := uint(1) << order[0]
	est[0] = rows[order[0]]
	for s := 1; s < n; s++ {
		mask |= 1 << order[s]
		est[s] = cardOf(mask, rows, conjs)
		cost[s] = est[s] + buildWeight*rows[order[s]]
	}
	return order, est, cost
}

// cardOf estimates the join cardinality of the input subset mask.
func cardOf(mask uint, rows []float64, conjs []crossConj) float64 {
	c := 1.0
	for i := range rows {
		if mask>>i&1 == 1 {
			c *= rows[i]
		}
	}
	for _, cj := range conjs {
		if cj.mask&mask == cj.mask {
			c *= cj.sel
		}
	}
	return c
}

func dpOrder(rows []float64, conjs []crossConj) []int {
	n := len(rows)
	full := uint(1)<<n - 1
	cost := make([]float64, full+1)
	last := make([]int, full+1)
	card := make([]float64, full+1)
	for m := uint(1); m <= full; m++ {
		cost[m] = math.Inf(1)
		last[m] = -1
		card[m] = cardOf(m, rows, conjs)
	}
	for i := 0; i < n; i++ {
		cost[uint(1)<<i] = 0
	}
	for m := uint(1); m <= full; m++ {
		if m&(m-1) == 0 { // singleton
			continue
		}
		for j := 0; j < n; j++ {
			bit := uint(1) << j
			if m&bit == 0 {
				continue
			}
			if cand := cost[m&^bit] + card[m] + buildWeight*rows[j]; cand < cost[m] {
				cost[m] = cand
				last[m] = j
			}
		}
	}
	order := make([]int, n)
	m := full
	for s := n - 1; s >= 1; s-- {
		order[s] = last[m]
		m &^= uint(1) << last[m]
	}
	// m is now the singleton that starts the chain.
	for i := 0; i < n; i++ {
		if m == uint(1)<<i {
			order[0] = i
		}
	}
	return order
}

func greedyOrder(rows []float64, conjs []crossConj) []int {
	n := len(rows)
	start := 0
	for i := 1; i < n; i++ {
		if rows[i] < rows[start] {
			start = i
		}
	}
	order := []int{start}
	mask := uint(1) << start
	for len(order) < n {
		best, bestCard := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if mask>>j&1 == 1 {
				continue
			}
			c := cardOf(mask|uint(1)<<j, rows, conjs) + buildWeight*rows[j]
			if c < bestCard || (c == bestCard && best >= 0 && rows[j] < rows[best]) {
				best, bestCard = j, c
			}
		}
		order = append(order, best)
		mask |= uint(1) << best
	}
	return order
}
