package plan

import (
	"strings"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// dupDB builds a database where the IN subquery's projection is highly
// duplicated: Wide(a,b) holds n rows per distinct a-value.
func dupDB() *relation.Database {
	db := relation.NewDatabase()
	wide := relation.New("Wide", "a", "b")
	for i := 0; i < 4; i++ {
		for j := 0; j < 25; j++ {
			wide.Add(value.Consts("k"+string(rune('0'+i)), "pay"+string(rune('a'+j))))
		}
	}
	db.Add(wide)
	probe := relation.New("Probe", "x")
	probe.Add(value.Consts("k0"))
	probe.Add(value.Consts("k3"))
	probe.Add(value.Consts("zz"))
	probe.Add(value.T(db.FreshNull()))
	db.Add(probe)
	return db
}

// TestInSubplanRootIsDistinct pins the semi-join reduction: every IN
// subquery compiles with a dedup at its root, so the membership set and the
// SQL null split are built from distinct probed-column values only.
func TestInSubplanRootIsDistinct(t *testing.T) {
	db := dupDB()
	q := algebra.Sel(algebra.R("Probe"),
		algebra.CIn(algebra.Proj(algebra.R("Wide"), 0), 0))
	for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
		p := compile(q, db, mode, false)
		if len(p.subs) != 1 {
			t.Fatalf("mode %v: %d subplans, want 1", mode, len(p.subs))
		}
		root, ok := p.subs[0].root.(*pdistinct)
		if !ok {
			t.Fatalf("mode %v: subplan root is %T, want *pdistinct", mode, p.subs[0].root)
		}
		if got, want := root.base().width, 1; got != want {
			t.Fatalf("distinct width %d, want %d", got, want)
		}
	}
}

// TestDistinctDedupsSubqueryStream verifies the reduction operationally:
// the distinct root emits each probed value exactly once even though the
// projection underneath it streams one row per duplicate.
func TestDistinctDedupsSubqueryStream(t *testing.T) {
	db := dupDB()
	q := algebra.Sel(algebra.R("Probe"),
		algebra.CIn(algebra.Proj(algebra.R("Wide"), 0), 0))
	p := compile(q, db, algebra.ModeNaive, false)
	sub := p.subs[0]
	x := &exec{db: db, mode: sub.mode, plan: sub, bufs: sub.acquireBufs(),
		subRels: map[*Plan]*relation.Relation{}, subSplits: map[*Plan]*nullSplit{}}

	inner, root := 0, 0
	stream(sub.root.(*pdistinct).in, x, func(b *vbatch) { inner += len(b.rows) })
	stream(sub.root, x, func(b *vbatch) { root += len(b.rows) })
	if inner != 100 {
		t.Fatalf("projection stream emitted %d rows, want 100 (4 values × 25 dups)", inner)
	}
	if root != 4 {
		t.Fatalf("distinct emitted %d rows, want 4 distinct values", root)
	}
}

// TestInSemiJoinEquivalence checks that the reduction changes no answers,
// in both modes and under preparation (frozen subplan path included).
func TestInSemiJoinEquivalence(t *testing.T) {
	db := dupDB()
	q := algebra.Sel(algebra.R("Probe"),
		algebra.CIn(algebra.Proj(algebra.R("Wide"), 0), 0))
	for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
		want := algebra.EvalInterp(db, q, mode)
		if got := Eval(db, q, mode); !got.Equal(want) {
			t.Fatalf("mode %v: planned %s, interpreter %s", mode, got, want)
		}
		prep := PlanFor(q, db, mode, false).Prepare(db)
		if got := prep.Exec(db); !got.Equal(want) {
			t.Fatalf("mode %v: prepared %s, interpreter %s", mode, got, want)
		}
	}
	// Explain surfaces the reduction.
	if txt := Explain(q, db, algebra.ModeSQL, false, db); !strings.Contains(txt, "distinct (semi-join dedup)") {
		t.Fatalf("explain does not mention the semi-join dedup:\n%s", txt)
	}
}
