package plan

import (
	"incdb/internal/algebra"
	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// exec carries per-execution state: the target database, the optional
// Prepared freeze, and the memo of uncorrelated IN-subquery results (one
// evaluation each per execution, shared across nesting levels like the
// interpreter's env caches).
type exec struct {
	db   *relation.Database
	prep *Prepared
	mode algebra.Mode
	bag  bool
	plan *Plan // plan currently executing (main plan or an IN subplan)

	subRels   map[*Plan]*relation.Relation
	subSplits map[*Plan]*nullSplit
}

// Exec evaluates the plan against db with no cross-world freezing and
// returns the result relation (normalized under set semantics, exact
// multiplicities under bag semantics). Safe for concurrent use: the plan is
// immutable and all execution state lives here.
func (p *Plan) Exec(db *relation.Database) *relation.Relation {
	return p.exec(db, nil)
}

func (p *Plan) exec(db *relation.Database, prep *Prepared) *relation.Relation {
	x := &exec{db: db, prep: prep, mode: p.mode, bag: p.bag, plan: p,
		subRels: map[*Plan]*relation.Relation{}, subSplits: map[*Plan]*nullSplit{}}
	return p.materializeRoot(x)
}

func (p *Plan) materializeRoot(x *exec) *relation.Relation {
	var out *relation.Relation
	if p.outIsRel {
		if src := x.db.Relation(p.outName); src != nil {
			out = relation.New(p.outName, src.Attrs()...)
		}
	}
	if out == nil {
		out = relation.NewArity(p.outName, p.arity)
	}
	stream(p.root, x, out.AddMult)
	if !p.bag {
		out.Normalize()
	}
	return out
}

// stream is the dispatcher every operator goes through: a node whose result
// was frozen by Prepare short-circuits to the cached relation.
func stream(n pnode, x *exec, emit func(t value.Tuple, m int)) {
	if r := x.frozenRel(n); r != nil {
		r.EachUnordered(emit)
		return
	}
	n.run(x, emit)
}

func (x *exec) frozenRel(n pnode) *relation.Relation {
	if x.prep == nil {
		return nil
	}
	if fs := x.prep.frozen[x.plan]; fs != nil {
		return fs.rels[n.base().id]
	}
	return nil
}

// matRel materializes a node into a consolidated relation (exact
// multiplicities under bag semantics). Frozen nodes and base-relation scans
// are returned without copying: all consumers are read-only.
func matRel(n pnode, x *exec) *relation.Relation {
	if r := x.frozenRel(n); r != nil {
		return r
	}
	if s, ok := n.(*pscan); ok {
		return x.source(s.name)
	}
	out := relation.NewArity("t", n.base().width)
	n.run(x, out.AddMult)
	return out
}

func (x *exec) source(name string) *relation.Relation {
	r := x.db.Relation(name)
	if r == nil {
		panic("plan: unknown relation " + name)
	}
	return r
}

// subRel returns the (set-semantics) result of an IN subplan, frozen,
// memoized per execution, or computed on the spot.
func (x *exec) subRel(sub *Plan) *relation.Relation {
	if x.prep != nil {
		if r := x.prep.subRels[sub]; r != nil {
			return r
		}
	}
	if r := x.subRels[sub]; r != nil {
		return r
	}
	sx := &exec{db: x.db, prep: x.prep, mode: sub.mode, bag: false, plan: sub,
		subRels: x.subRels, subSplits: x.subSplits}
	r := sub.materializeRoot(sx)
	x.subRels[sub] = r
	return r
}

// nullSplit partitions a relation for three-valued probes: the null-free
// part answered by one hash lookup and the rows with nulls, the only rows
// that can contribute unknown (shared by the IN probe and the ⋉⇑ scan).
type nullSplit struct {
	nullFree  *relation.Relation
	withNulls []value.Tuple
}

func splitNulls(r *relation.Relation) *nullSplit {
	s := &nullSplit{nullFree: relation.NewArity("nf", r.Arity())}
	r.EachUnordered(func(t value.Tuple, _ int) {
		if t.HasNull() {
			s.withNulls = append(s.withNulls, t)
		} else {
			s.nullFree.Add(t)
		}
	})
	return s
}

func (x *exec) subSplit(sub *Plan) *nullSplit {
	if x.prep != nil {
		if s := x.prep.subSplits[sub]; s != nil {
			return s
		}
	}
	if s := x.subSplits[sub]; s != nil {
		return s
	}
	s := splitNulls(x.subRel(sub))
	x.subSplits[sub] = s
	return s
}

func (x *exec) multOf(m int) int {
	if x.bag {
		return m
	}
	return 1
}

// Operator implementations. Multiplicity discipline: under bag semantics
// every emission carries exact bag arithmetic; under set semantics
// emissions may repeat tuples (set-insensitive consumers only probe
// membership) and the root materialization normalizes once at the end.

func (n *pscan) run(x *exec, emit func(t value.Tuple, m int)) {
	src := x.source(n.name)
	if x.bag {
		src.EachUnordered(emit)
		return
	}
	src.EachUnordered(func(t value.Tuple, _ int) { emit(t, 1) })
}

func (n *pfilter) run(x *exec, emit func(t value.Tuple, m int)) {
	stream(n.in, x, func(t value.Tuple, m int) {
		for _, c := range n.conds {
			if c.eval(x, t) != logic.T {
				return
			}
		}
		emit(t, m)
	})
}

func (n *pproject) run(x *exec, emit func(t value.Tuple, m int)) {
	stream(n.in, x, func(t value.Tuple, m int) {
		emit(t.Project(n.cols), m)
	})
}

func (n *pjoin) run(x *exec, emit func(t value.Tuple, m int)) {
	var table *joinTable
	if x.prep != nil {
		if fs := x.prep.frozen[x.plan]; fs != nil {
			table = fs.tables[n.base().id]
		}
	}
	if table == nil {
		table = newJoinTable(n.rkeys)
		stream(n.right, x, func(t value.Tuple, m int) {
			table.add(t, m, x.mode)
		})
	}
	sqlMode := x.mode == algebra.ModeSQL
	stream(n.left, x, func(lt value.Tuple, lm int) {
		if sqlMode {
			for _, k := range n.lkeys {
				if lt[k].IsNull() {
					return // the key equality can never be t
				}
			}
		}
		table.probe(lt, n.lkeys, func(rt value.Tuple, rm int) {
			joined := lt.Concat(rt)
			for _, c := range n.residual {
				if c.eval(x, joined) != logic.T {
					return
				}
			}
			emit(joined, lm*rm)
		})
	})
}

func (n *punion) run(x *exec, emit func(t value.Tuple, m int)) {
	stream(n.l, x, emit)
	stream(n.r, x, emit)
}

func (n *pdiff) run(x *exec, emit func(t value.Tuple, m int)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	if x.bag {
		l.EachUnordered(func(t value.Tuple, m int) {
			if rest := m - r.Mult(t); rest > 0 {
				emit(t, rest)
			}
		})
		return
	}
	l.EachUnordered(func(t value.Tuple, _ int) {
		if !r.Contains(t) {
			emit(t, 1)
		}
	})
}

func (n *pinter) run(x *exec, emit func(t value.Tuple, m int)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	l.EachUnordered(func(t value.Tuple, m int) {
		rm := r.Mult(t)
		if rm == 0 {
			return
		}
		if x.bag {
			if rm < m {
				m = rm
			}
			emit(t, m)
		} else {
			emit(t, 1)
		}
	})
}

func (n *pdivide) run(x *exec, emit func(t value.Tuple, m int)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	w := n.base().width
	cands := relation.NewArity("c", w)
	l.EachUnordered(func(t value.Tuple, _ int) { cands.Add(t[:w].Clone()) })
	if r.Len() == 0 {
		// ∀ over an empty set: every deduplicated projection of L
		// qualifies (division divides the underlying sets).
		cands.EachUnordered(func(a value.Tuple, _ int) { emit(a, 1) })
		return
	}
	cands.EachUnordered(func(a value.Tuple, _ int) {
		ok := true
		r.EachUnordered(func(b value.Tuple, _ int) {
			if ok && !l.Contains(a.Concat(b)) {
				ok = false
			}
		})
		if ok {
			emit(a, 1)
		}
	})
}

func (n *pantiunify) run(x *exec, emit func(t value.Tuple, m int)) {
	var split *nullSplit
	if x.prep != nil {
		if fs := x.prep.frozen[x.plan]; fs != nil {
			split = fs.au[n.base().id]
		}
	}
	if split == nil {
		split = splitNulls(matRel(n.r, x))
	}
	l := matRel(n.l, x)
	l.EachUnordered(func(t value.Tuple, m int) {
		if t.HasNull() {
			// Rare path: scan everything.
			blocked := false
			split.nullFree.EachUnordered(func(s value.Tuple, _ int) {
				if !blocked && value.Unifiable(t, s) {
					blocked = true
				}
			})
			if blocked {
				return
			}
		} else if split.nullFree.Contains(t) {
			return
		}
		for _, s := range split.withNulls {
			if value.Unifiable(t, s) {
				return
			}
		}
		emit(t, x.multOf(m))
	})
}

func (n *pdistinct) run(x *exec, emit func(t value.Tuple, m int)) {
	var seen value.TupleMap[struct{}]
	stream(n.in, x, func(t value.Tuple, _ int) {
		if seen.Has(t) {
			return
		}
		seen.Put(t, struct{}{})
		emit(t, 1)
	})
}

func (n *pdom) run(x *exec, emit func(t value.Tuple, m int)) {
	if n.k == 0 {
		emit(value.Tuple{}, 1)
		return
	}
	adom := x.db.ActiveDomain()
	tuple := make(value.Tuple, n.k)
	var rec func(i int)
	rec = func(i int) {
		if i == n.k {
			emit(tuple.Clone(), 1)
			return
		}
		for _, v := range adom {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// joinTable is the multi-key hash table of one join step: rows bucketed by
// the combined hash of their key columns, with componentwise equality
// confirming matches. With no keys it is a plain row list (cross product).
type joinTable struct {
	rkeys []int
	keyed map[uint64][]jrow
	rows  []jrow
}

type jrow struct {
	t value.Tuple
	m int
}

func newJoinTable(rkeys []int) *joinTable {
	t := &joinTable{rkeys: rkeys}
	if len(rkeys) > 0 {
		t.keyed = map[uint64][]jrow{}
	}
	return t
}

func (tb *joinTable) add(t value.Tuple, m int, mode algebra.Mode) {
	if len(tb.rkeys) == 0 {
		tb.rows = append(tb.rows, jrow{t: t, m: m})
		return
	}
	if mode == algebra.ModeSQL {
		for _, k := range tb.rkeys {
			if t[k].IsNull() {
				return // can never satisfy the key equalities with t
			}
		}
	}
	h := hashCols(t, tb.rkeys)
	tb.keyed[h] = append(tb.keyed[h], jrow{t: t, m: m})
}

// probe calls f on every stored row whose key columns equal lt's at lkeys
// (componentwise, in key order).
func (tb *joinTable) probe(lt value.Tuple, lkeys []int, f func(rt value.Tuple, rm int)) {
	if len(tb.rkeys) == 0 {
		for _, e := range tb.rows {
			f(e.t, e.m)
		}
		return
	}
	h := hashCols(lt, lkeys)
next:
	for _, e := range tb.keyed[h] {
		for i, lk := range lkeys {
			if lt[lk] != e.t[tb.rkeys[i]] {
				continue next
			}
		}
		f(e.t, e.m)
	}
}

func hashCols(t value.Tuple, cols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = (h ^ t[c].Hash()) * 1099511628211
	}
	return h
}
