package plan

import (
	"incdb/internal/algebra"
	"incdb/internal/logic"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// exec carries per-execution state: the target database, the optional
// Prepared freeze, the per-node batch buffers (batch.go), and the memo of
// uncorrelated IN-subquery results (one evaluation each per execution,
// shared across nesting levels like the interpreter's env caches).
type exec struct {
	db   *relation.Database
	prep *Prepared
	mode algebra.Mode
	bag  bool
	plan *Plan // plan currently executing (main plan or an IN subplan)
	bufs []outBuf

	// trace, when set, receives execution statistics (trace.go); tstats is
	// the per-node slot slice for x.plan, non-nil only under detail tracing.
	trace  *Trace
	tstats []*NodeStat

	subRels   map[*Plan]*relation.Relation
	subSplits map[*Plan]*nullSplit
}

// Exec evaluates the plan against db with no cross-world freezing and
// returns the result relation (normalized under set semantics, exact
// multiplicities under bag semantics). Safe for concurrent use: the plan is
// immutable and all execution state lives here.
func (p *Plan) Exec(db *relation.Database) *relation.Relation {
	return p.exec(db, nil, nil)
}

// ExecTraced is Exec accumulating execution statistics into tr (which may
// be shared across concurrent executions — all Trace fields are atomics).
func (p *Plan) ExecTraced(db *relation.Database, tr *Trace) *relation.Relation {
	return p.exec(db, nil, tr)
}

func (p *Plan) exec(db *relation.Database, prep *Prepared, tr *Trace) *relation.Relation {
	x := &exec{db: db, prep: prep, mode: p.mode, bag: p.bag, plan: p, trace: tr,
		subRels: map[*Plan]*relation.Relation{}, subSplits: map[*Plan]*nullSplit{}}
	if tr != nil {
		tr.Execs.Add(1)
		if tr.detail {
			x.tstats = tr.planStats(p)
		}
	}
	x.bufs = p.acquireBufs()
	out := p.materializeRoot(x)
	p.releaseBufs(x.bufs)
	return out
}

func (p *Plan) materializeRoot(x *exec) *relation.Relation {
	var out *relation.Relation
	if p.outIsRel {
		if src := x.db.Relation(p.outName); src != nil {
			out = relation.New(p.outName, src.Attrs()...)
		}
	}
	if out == nil {
		out = relation.NewArity(p.outName, p.arity)
	}
	stream(p.root, x, relSink(out))
	if !p.bag {
		out.Normalize()
	}
	return out
}

// stream is the dispatcher every operator goes through: a node whose result
// was frozen by Prepare short-circuits to the cached relation, replayed in
// batches through the node's own buffer.
func stream(n pnode, x *exec, emit func(*vbatch)) {
	if x.tstats != nil {
		streamTraced(n, x, emit)
		return
	}
	if r := x.frozenRel(n); r != nil {
		o := x.out(n)
		r.EachUnordered(func(t value.Tuple, m int) {
			o.push(t, m, emit)
		})
		o.flush(emit)
		return
	}
	n.run(x, emit)
}

func (x *exec) frozenRel(n pnode) *relation.Relation {
	if x.prep == nil {
		return nil
	}
	if fs := x.prep.frozen[x.plan]; fs != nil {
		if r := fs.rels[n.base().id]; r != nil {
			x.frozenHit()
			return r
		}
	}
	return nil
}

// frozenHit records one frozen-subplan reuse on the attached trace.
func (x *exec) frozenHit() {
	if x.trace != nil {
		x.trace.FrozenReuse.Add(1)
	}
}

// matRel materializes a node into a consolidated relation (exact
// multiplicities under bag semantics). Frozen nodes and full-width
// base-relation scans are returned without copying: all consumers are
// read-only. A narrowed scan cannot share the base relation — its output
// tuples are a column subset — so it materializes like any other node.
func matRel(n pnode, x *exec) *relation.Relation {
	if r := x.frozenRel(n); r != nil {
		return r
	}
	if s, ok := n.(*pscan); ok && s.cols == nil && x.tstats == nil {
		// Shared-source shortcut, skipped under detail tracing so the scan's
		// actual rows are counted (materializing preserves the result).
		return x.source(s.name)
	}
	out := relation.NewArity("t", n.base().width)
	if x.tstats != nil {
		streamTraced(n, x, relSink(out))
	} else {
		n.run(x, relSink(out))
	}
	return out
}

func (x *exec) source(name string) *relation.Relation {
	r := x.db.Relation(name)
	if r == nil {
		panic("plan: unknown relation " + name)
	}
	return r
}

// subRel returns the (set-semantics) result of an IN subplan, frozen,
// memoized per execution, or computed on the spot.
func (x *exec) subRel(sub *Plan) *relation.Relation {
	if x.prep != nil {
		if r := x.prep.subRels[sub]; r != nil {
			x.frozenHit()
			return r
		}
	}
	if r := x.subRels[sub]; r != nil {
		return r
	}
	sx := &exec{db: x.db, prep: x.prep, mode: sub.mode, bag: false, plan: sub,
		trace: x.trace, subRels: x.subRels, subSplits: x.subSplits}
	if x.trace != nil && x.trace.detail {
		sx.tstats = x.trace.planStats(sub)
	}
	sx.bufs = sub.acquireBufs()
	r := sub.materializeRoot(sx)
	sub.releaseBufs(sx.bufs)
	x.subRels[sub] = r
	return r
}

// nullSplit partitions a relation for three-valued probes: the null-free
// part answered by one hash lookup and the rows with nulls, the only rows
// that can contribute unknown (shared by the IN probe and the ⋉⇑ scan).
type nullSplit struct {
	nullFree  *relation.Relation
	withNulls []value.Tuple
}

func splitNulls(r *relation.Relation) *nullSplit {
	s := &nullSplit{nullFree: relation.NewArity("nf", r.Arity())}
	r.EachUnordered(func(t value.Tuple, _ int) {
		if t.HasNull() {
			s.withNulls = append(s.withNulls, t)
		} else {
			s.nullFree.Add(t)
		}
	})
	return s
}

func (x *exec) subSplit(sub *Plan) *nullSplit {
	if x.prep != nil {
		if s := x.prep.subSplits[sub]; s != nil {
			x.frozenHit()
			return s
		}
	}
	if s := x.subSplits[sub]; s != nil {
		return s
	}
	s := splitNulls(x.subRel(sub))
	x.subSplits[sub] = s
	return s
}

func (x *exec) multOf(m int) int {
	if x.bag {
		return m
	}
	return 1
}

// Operator implementations. Multiplicity discipline: under bag semantics
// every emission carries exact bag arithmetic; under set semantics
// emissions may repeat tuples (set-insensitive consumers only probe
// membership) and the root materialization normalizes once at the end.
// Every operator flows batches (batch.go): rows accumulate in the node's
// output buffer and flush to the consumer at BatchRows, amortizing the
// per-row closure dispatch of the old tuple-at-a-time protocol.

func (n *pscan) run(x *exec, emit func(*vbatch)) {
	src := x.source(n.name)
	o := x.out(n)
	if n.cols == nil {
		// Full-width scan: stored tuples stream through by reference.
		src.EachUnordered(func(t value.Tuple, m int) {
			o.push(t, x.multOf(m), emit)
		})
	} else {
		// Pruned scan: emit narrowed tuples carved from the arena slab.
		w := len(n.cols)
		src.EachUnordered(func(t value.Tuple, m int) {
			nt := o.alloc(w)
			for i, c := range n.cols {
				nt[i] = t[c]
			}
			o.push(nt, x.multOf(m), emit)
		})
	}
	o.flush(emit)
}

func (n *pfilter) run(x *exec, emit func(*vbatch)) {
	o := x.out(n)
	stream(n.in, x, func(b *vbatch) {
	rows:
		for i, t := range b.rows {
			for _, c := range n.conds {
				if c.eval(x, t) != logic.T {
					continue rows
				}
			}
			o.push(t, b.mults[i], emit)
		}
	})
	o.flush(emit)
}

func (n *pproject) run(x *exec, emit func(*vbatch)) {
	o := x.out(n)
	w := len(n.cols)
	stream(n.in, x, func(b *vbatch) {
		for i, t := range b.rows {
			nt := o.alloc(w)
			for j, c := range n.cols {
				nt[j] = t[c]
			}
			o.push(nt, b.mults[i], emit)
		}
	})
	o.flush(emit)
}

func (n *pjoin) run(x *exec, emit func(*vbatch)) {
	var table *joinTable
	if x.prep != nil {
		if fs := x.prep.frozen[x.plan]; fs != nil {
			if table = fs.tables[n.base().id]; table != nil {
				x.frozenHit()
			}
		}
	}
	if table == nil {
		table = newJoinTable(n.rkeys, int(n.right.base().est))
		stream(n.right, x, func(b *vbatch) {
			for i, t := range b.rows {
				table.add(t, b.mults[i], x.mode)
			}
		})
	}
	sqlMode := x.mode == algebra.ModeSQL
	o := x.out(n)
	lw := n.left.base().width
	full := lw + n.right.base().width
	stream(n.left, x, func(b *vbatch) {
	left:
		for i, lt := range b.rows {
			if sqlMode {
				for _, k := range n.lkeys {
					if lt[k].IsNull() {
						continue left // the key equality can never be t
					}
				}
			}
			lm := b.mults[i]
			table.probe(lt, n.lkeys, func(rt value.Tuple, rm int) {
				if n.outCols == nil {
					joined := o.alloc(full)
					copy(joined, lt)
					copy(joined[lw:], rt)
					for _, c := range n.residual {
						if c.eval(x, joined) != logic.T {
							o.unalloc(full) // never emitted: reclaim the row
							return
						}
					}
					o.push(joined, lm*rm, emit)
					return
				}
				// Folded projection: the residual (if any) still sees the
				// full concatenation via the reusable scratch tuple; emitted
				// rows carry only the projected columns.
				if n.residual != nil {
					if cap(o.scratch) < full {
						o.scratch = make(value.Tuple, full)
					}
					s := o.scratch[:full]
					copy(s, lt)
					copy(s[lw:], rt)
					for _, c := range n.residual {
						if c.eval(x, s) != logic.T {
							return
						}
					}
				}
				outT := o.alloc(len(n.outCols))
				for j, cc := range n.outCols {
					if cc < lw {
						outT[j] = lt[cc]
					} else {
						outT[j] = rt[cc-lw]
					}
				}
				o.push(outT, lm*rm, emit)
			})
		}
	})
	o.flush(emit)
}

func (n *punion) run(x *exec, emit func(*vbatch)) {
	// Child batches forward zero-copy: a union adds no per-row work.
	stream(n.l, x, emit)
	stream(n.r, x, emit)
}

func (n *pdiff) run(x *exec, emit func(*vbatch)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	o := x.out(n)
	if x.bag {
		l.EachUnordered(func(t value.Tuple, m int) {
			if rest := m - r.Mult(t); rest > 0 {
				o.push(t, rest, emit)
			}
		})
	} else {
		l.EachUnordered(func(t value.Tuple, _ int) {
			if !r.Contains(t) {
				o.push(t, 1, emit)
			}
		})
	}
	o.flush(emit)
}

func (n *pinter) run(x *exec, emit func(*vbatch)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	o := x.out(n)
	l.EachUnordered(func(t value.Tuple, m int) {
		rm := r.Mult(t)
		if rm == 0 {
			return
		}
		if x.bag {
			if rm < m {
				m = rm
			}
			o.push(t, m, emit)
		} else {
			o.push(t, 1, emit)
		}
	})
	o.flush(emit)
}

func (n *pdivide) run(x *exec, emit func(*vbatch)) {
	l, r := matRel(n.l, x), matRel(n.r, x)
	w := n.base().width
	o := x.out(n)
	cands := relation.NewArity("c", w)
	l.EachUnordered(func(t value.Tuple, _ int) { cands.Add(t[:w].Clone()) })
	if r.Len() == 0 {
		// ∀ over an empty set: every deduplicated projection of L
		// qualifies (division divides the underlying sets).
		cands.EachUnordered(func(a value.Tuple, _ int) { o.push(a, 1, emit) })
		o.flush(emit)
		return
	}
	cands.EachUnordered(func(a value.Tuple, _ int) {
		ok := true
		r.EachUnordered(func(b value.Tuple, _ int) {
			if ok && !l.Contains(a.Concat(b)) {
				ok = false
			}
		})
		if ok {
			o.push(a, 1, emit)
		}
	})
	o.flush(emit)
}

func (n *pantiunify) run(x *exec, emit func(*vbatch)) {
	var split *nullSplit
	if x.prep != nil {
		if fs := x.prep.frozen[x.plan]; fs != nil {
			if split = fs.au[n.base().id]; split != nil {
				x.frozenHit()
			}
		}
	}
	if split == nil {
		split = splitNulls(matRel(n.r, x))
	}
	l := matRel(n.l, x)
	o := x.out(n)
	l.EachUnordered(func(t value.Tuple, m int) {
		if t.HasNull() {
			// Rare path: scan everything.
			blocked := false
			split.nullFree.EachUnordered(func(s value.Tuple, _ int) {
				if !blocked && value.Unifiable(t, s) {
					blocked = true
				}
			})
			if blocked {
				return
			}
		} else if split.nullFree.Contains(t) {
			return
		}
		for _, s := range split.withNulls {
			if value.Unifiable(t, s) {
				return
			}
		}
		o.push(t, x.multOf(m), emit)
	})
	o.flush(emit)
}

func (n *pdistinct) run(x *exec, emit func(*vbatch)) {
	var seen value.TupleMap[struct{}]
	o := x.out(n)
	stream(n.in, x, func(b *vbatch) {
		for _, t := range b.rows {
			if seen.Has(t) {
				continue
			}
			seen.Put(t, struct{}{})
			o.push(t, 1, emit)
		}
	})
	o.flush(emit)
}

func (n *pdom) run(x *exec, emit func(*vbatch)) {
	o := x.out(n)
	if n.k == 0 {
		o.push(value.Tuple{}, 1, emit)
		o.flush(emit)
		return
	}
	adom := x.db.ActiveDomain()
	tuple := make(value.Tuple, n.k)
	var rec func(i int)
	rec = func(i int) {
		if i == n.k {
			nt := o.alloc(n.k)
			copy(nt, tuple)
			o.push(nt, 1, emit)
			return
		}
		for _, v := range adom {
			tuple[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	o.flush(emit)
}

// joinTable is the multi-key hash table of one join step: rows bucketed by
// the combined hash of their key columns, with componentwise equality
// confirming matches. With no keys it is a plain row list (cross product).
type joinTable struct {
	rkeys []int
	keyed map[uint64][]jrow
	rows  []jrow
}

type jrow struct {
	t value.Tuple
	m int
}

// newJoinTable builds an empty table; sizeHint (estimated build rows, 0 when
// unknown) presizes the bucket map so inserts skip incremental growth.
func newJoinTable(rkeys []int, sizeHint int) *joinTable {
	t := &joinTable{rkeys: rkeys}
	if len(rkeys) > 0 {
		if sizeHint < 0 || sizeHint > 1<<20 {
			sizeHint = 0
		}
		t.keyed = make(map[uint64][]jrow, sizeHint)
	}
	return t
}

func (tb *joinTable) add(t value.Tuple, m int, mode algebra.Mode) {
	if len(tb.rkeys) == 0 {
		tb.rows = append(tb.rows, jrow{t: t, m: m})
		return
	}
	if mode == algebra.ModeSQL {
		for _, k := range tb.rkeys {
			if t[k].IsNull() {
				return // can never satisfy the key equalities with t
			}
		}
	}
	h := hashCols(t, tb.rkeys)
	tb.keyed[h] = append(tb.keyed[h], jrow{t: t, m: m})
}

// probe calls f on every stored row whose key columns equal lt's at lkeys
// (componentwise, in key order).
func (tb *joinTable) probe(lt value.Tuple, lkeys []int, f func(rt value.Tuple, rm int)) {
	if len(tb.rkeys) == 0 {
		for _, e := range tb.rows {
			f(e.t, e.m)
		}
		return
	}
	h := hashCols(lt, lkeys)
next:
	for _, e := range tb.keyed[h] {
		for i, lk := range lkeys {
			if lt[lk] != e.t[tb.rkeys[i]] {
				continue next
			}
		}
		f(e.t, e.m)
	}
}

func hashCols(t value.Tuple, cols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = (h ^ t[c].Hash()) * 1099511628211
	}
	return h
}
