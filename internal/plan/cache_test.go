package plan

import (
	"sync"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// guardDB builds a database with one null-bearing relation (R), one
// null-free relation (S, freezable) and one relation the test queries never
// read (U).
func guardDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.Consts("k1", "v1"))
	r.Add(value.T(value.Const("k2"), db.FreshNull()))
	db.Add(r)
	s := relation.New("S", "a", "c")
	s.Add(value.Consts("k1", "w1"))
	s.Add(value.Consts("k2", "w2"))
	db.Add(s)
	u := relation.New("U", "x")
	u.Add(value.Consts("z"))
	db.Add(u)
	return db
}

func TestPreparedValidFor(t *testing.T) {
	db := guardDB()
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	prep := PlanFor(q, db, algebra.ModeNaive, false).Prepare(db)

	if !prep.ValidFor(db) {
		t.Fatal("fresh Prepared invalid for its own base")
	}
	// Mutating a relation the plan does not read keeps the guard intact.
	db.MustRelation("U").Add(value.Consts("zz"))
	if !prep.ValidFor(db) {
		t.Fatal("mutating an unread relation invalidated the Prepared")
	}
	// Mutating a read relation moves its version and fails the guard.
	db.MustRelation("S").Add(value.Consts("k3", "w3"))
	if prep.ValidFor(db) {
		t.Fatal("mutating a read relation left the Prepared valid")
	}

	// Replacing a read relation wholesale (same contents, new object) also
	// fails the guard: frozen results alias the old object's rows.
	db2 := guardDB()
	prep2 := PlanFor(q, db2, algebra.ModeNaive, false).Prepare(db2)
	db2.Add(db2.MustRelation("S").Clone())
	if prep2.ValidFor(db2) {
		t.Fatal("replacing a read relation left the Prepared valid")
	}
}

func TestPreparedValidForDom(t *testing.T) {
	db := guardDB()
	q := algebra.Minus(algebra.DomK(1), algebra.Proj(algebra.R("R"), 0))
	prep := PlanFor(q, db, algebra.ModeNaive, false).Prepare(db)
	if !prep.ValidFor(db) {
		t.Fatal("fresh Prepared invalid for its own base")
	}
	// Dom reads the whole active domain: mutating any relation — even one
	// the algebra never names — invalidates.
	db.MustRelation("U").Add(value.Consts("fresh-const"))
	if prep.ValidFor(db) {
		t.Fatal("Dom plan survived a mutation extending the active domain")
	}

	// Adding a new relation extends the catalogue, so it invalidates too.
	db2 := guardDB()
	prep2 := PlanFor(q, db2, algebra.ModeNaive, false).Prepare(db2)
	fresh := relation.New("V", "x")
	fresh.Add(value.Consts("new"))
	db2.Add(fresh)
	if prep2.ValidFor(db2) {
		t.Fatal("Dom plan survived a catalogue extension")
	}
}

// TestPrepCacheReuseAndInvalidation drives the cache the way a session
// does: repeated queries hit, a mutation of a touched relation invalidates
// exactly the entries reading it, and results always match fresh
// evaluation.
func TestPrepCacheReuseAndInvalidation(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	qRS := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	qU := algebra.Proj(algebra.R("U"), 0)

	check := func(q algebra.Expr) {
		t.Helper()
		got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
		want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)
		if !got.Equal(want) {
			t.Fatalf("cached result differs from fresh evaluation:\n%s\nvs\n%s", got, want)
		}
	}

	check(qRS)
	check(qRS)
	check(qU)
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Invalidations != 0 || st.Entries != 2 {
		t.Fatalf("after warmup: %+v, want 2 misses / 1 hit / 0 invalidations / 2 entries", st)
	}

	// Mutate S: the R⋈S entry must be invalidated, the U entry must not.
	db.MustRelation("S").Add(value.Consts("k1", "w9"))
	check(qRS)
	check(qU)
	st = c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("mutating S: invalidations = %d, want exactly 1 (the R⋈S entry)", st.Invalidations)
	}
	if st.Hits != 2 {
		t.Fatalf("mutating S: hits = %d, want 2 (the U entry stayed valid)", st.Hits)
	}

	// The re-prepared entry serves hits again.
	check(qRS)
	if st := c.Stats(); st.Hits != 3 {
		t.Fatalf("re-prepared entry did not hit: %+v", st)
	}
}

func TestPrepCacheEviction(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(2)
	qs := []algebra.Expr{
		algebra.Proj(algebra.R("R"), 0),
		algebra.Proj(algebra.R("S"), 0),
		algebra.Proj(algebra.R("U"), 0),
	}
	for _, q := range qs {
		c.Get(db, q, algebra.ModeNaive, false)
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", st.Entries)
	}
	// The least recently used entry (qs[0]) was evicted: using it again is
	// a miss; qs[2] stays cached.
	before := c.Stats()
	c.Get(db, qs[0], algebra.ModeNaive, false)
	c.Get(db, qs[2], algebra.ModeNaive, false)
	st := c.Stats()
	if st.Misses != before.Misses+1 || st.Hits != before.Hits+1 {
		t.Fatalf("eviction order wrong: before %+v after %+v", before, st)
	}
}

// TestPrepCacheWorldEvalMatchesFresh replays the oracle world loop through
// a shared cache: per-world results must be byte-identical to a fresh
// Prepare, across repeated calls and across a mutation.
func TestPrepCacheWorldEvalMatchesFresh(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))

	worlds := func() []*relation.Database {
		var out []*relation.Database
		for _, cst := range []string{"k1", "k2", "other"} {
			v := value.NewValuation()
			v.Set(1, value.Const(cst))
			out = append(out, db.ApplyShared(v))
		}
		return out
	}

	for round := 0; round < 3; round++ {
		cached := c.WorldEval(db, q, algebra.ModeNaive, false)
		fresh := WorldEval(db, q, algebra.ModeNaive, false)
		for i, w := range worlds() {
			got, want := cached(w), fresh(w)
			if !got.Equal(want) {
				t.Fatalf("round %d world %d: cached %s want %s", round, i, got, want)
			}
		}
		if round == 1 {
			// Mid-test mutation: subsequent rounds must re-prepare.
			db.MustRelation("S").Add(value.Consts("k2", "w9"))
		}
	}
	st := c.Stats()
	if st.Invalidations == 0 {
		t.Fatalf("mutation did not invalidate: %+v", st)
	}
}

// TestPrepCacheConcurrent exercises concurrent Get/Exec on one cache (run
// under -race): many goroutines share entries while verifying results.
func TestPrepCacheConcurrent(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
				if !got.Equal(want) {
					t.Error("concurrent cached result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNilPrepCache(t *testing.T) {
	db := guardDB()
	var c *PrepCache
	q := algebra.Proj(algebra.R("S"), 0)
	got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
	want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)
	if !got.Equal(want) {
		t.Fatal("nil cache result differs from fresh evaluation")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
