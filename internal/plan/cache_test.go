package plan

import (
	"sync"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// guardDB builds a database with one null-bearing relation (R), one
// null-free relation (S, freezable) and one relation the test queries never
// read (U).
func guardDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.Consts("k1", "v1"))
	r.Add(value.T(value.Const("k2"), db.FreshNull()))
	db.Add(r)
	s := relation.New("S", "a", "c")
	s.Add(value.Consts("k1", "w1"))
	s.Add(value.Consts("k2", "w2"))
	db.Add(s)
	u := relation.New("U", "x")
	u.Add(value.Consts("z"))
	db.Add(u)
	return db
}

func TestPreparedValidFor(t *testing.T) {
	db := guardDB()
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	prep := PlanFor(q, db, algebra.ModeNaive, false).Prepare(db)

	if !prep.ValidFor(db) {
		t.Fatal("fresh Prepared invalid for its own base")
	}
	// Mutating a relation the plan does not read keeps the guard intact.
	db.MustRelation("U").Add(value.Consts("zz"))
	if !prep.ValidFor(db) {
		t.Fatal("mutating an unread relation invalidated the Prepared")
	}
	// Mutating a read relation moves its version and fails the guard.
	db.MustRelation("S").Add(value.Consts("k3", "w3"))
	if prep.ValidFor(db) {
		t.Fatal("mutating a read relation left the Prepared valid")
	}

	// Replacing a read relation wholesale (same contents, new object) also
	// fails the guard: frozen results alias the old object's rows.
	db2 := guardDB()
	prep2 := PlanFor(q, db2, algebra.ModeNaive, false).Prepare(db2)
	db2.Add(db2.MustRelation("S").Clone())
	if prep2.ValidFor(db2) {
		t.Fatal("replacing a read relation left the Prepared valid")
	}
}

func TestPreparedValidForDom(t *testing.T) {
	db := guardDB()
	q := algebra.Minus(algebra.DomK(1), algebra.Proj(algebra.R("R"), 0))
	prep := PlanFor(q, db, algebra.ModeNaive, false).Prepare(db)
	if !prep.ValidFor(db) {
		t.Fatal("fresh Prepared invalid for its own base")
	}
	// Dom reads the whole active domain: mutating any relation — even one
	// the algebra never names — invalidates.
	db.MustRelation("U").Add(value.Consts("fresh-const"))
	if prep.ValidFor(db) {
		t.Fatal("Dom plan survived a mutation extending the active domain")
	}

	// Adding a new relation extends the catalogue, so it invalidates too.
	db2 := guardDB()
	prep2 := PlanFor(q, db2, algebra.ModeNaive, false).Prepare(db2)
	fresh := relation.New("V", "x")
	fresh.Add(value.Consts("new"))
	db2.Add(fresh)
	if prep2.ValidFor(db2) {
		t.Fatal("Dom plan survived a catalogue extension")
	}
}

// TestPrepCacheReuseAndInvalidation drives the cache the way a session
// does: repeated queries hit, a mutation of a touched relation invalidates
// exactly the entries reading it, and results always match fresh
// evaluation.
func TestPrepCacheReuseAndInvalidation(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	qRS := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	qU := algebra.Proj(algebra.R("U"), 0)

	check := func(q algebra.Expr) {
		t.Helper()
		got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
		want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)
		if !got.Equal(want) {
			t.Fatalf("cached result differs from fresh evaluation:\n%s\nvs\n%s", got, want)
		}
	}

	check(qRS)
	check(qRS)
	check(qU)
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Invalidations != 0 || st.Entries != 2 {
		t.Fatalf("after warmup: %+v, want 2 misses / 1 hit / 0 invalidations / 2 entries", st)
	}

	// Mutate S: the R⋈S entry must be invalidated, the U entry must not.
	db.MustRelation("S").Add(value.Consts("k1", "w9"))
	check(qRS)
	check(qU)
	st = c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("mutating S: invalidations = %d, want exactly 1 (the R⋈S entry)", st.Invalidations)
	}
	if st.Hits != 2 {
		t.Fatalf("mutating S: hits = %d, want 2 (the U entry stayed valid)", st.Hits)
	}

	// The re-prepared entry serves hits again.
	check(qRS)
	if st := c.Stats(); st.Hits != 3 {
		t.Fatalf("re-prepared entry did not hit: %+v", st)
	}
}

func TestPrepCacheEviction(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(2)
	qs := []algebra.Expr{
		algebra.Proj(algebra.R("R"), 0),
		algebra.Proj(algebra.R("S"), 0),
		algebra.Proj(algebra.R("U"), 0),
	}
	for _, q := range qs {
		c.Get(db, q, algebra.ModeNaive, false)
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("capacity 2 cache holds %d entries", st.Entries)
	}
	// The least recently used entry (qs[0]) was evicted: using it again is
	// a miss; qs[2] stays cached.
	before := c.Stats()
	c.Get(db, qs[0], algebra.ModeNaive, false)
	c.Get(db, qs[2], algebra.ModeNaive, false)
	st := c.Stats()
	if st.Misses != before.Misses+1 || st.Hits != before.Hits+1 {
		t.Fatalf("eviction order wrong: before %+v after %+v", before, st)
	}
}

// TestPrepCacheWorldEvalMatchesFresh replays the oracle world loop through
// a shared cache: per-world results must be byte-identical to a fresh
// Prepare, across repeated calls and across a mutation.
func TestPrepCacheWorldEvalMatchesFresh(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))

	worlds := func() []*relation.Database {
		var out []*relation.Database
		for _, cst := range []string{"k1", "k2", "other"} {
			v := value.NewValuation()
			v.Set(1, value.Const(cst))
			out = append(out, db.ApplyShared(v))
		}
		return out
	}

	for round := 0; round < 3; round++ {
		cached := c.WorldEval(db, q, algebra.ModeNaive, false)
		fresh := WorldEval(db, q, algebra.ModeNaive, false)
		for i, w := range worlds() {
			got, want := cached(w), fresh(w)
			if !got.Equal(want) {
				t.Fatalf("round %d world %d: cached %s want %s", round, i, got, want)
			}
		}
		if round == 1 {
			// Mid-test mutation: subsequent rounds must re-prepare.
			db.MustRelation("S").Add(value.Consts("k2", "w9"))
		}
	}
	st := c.Stats()
	if st.Invalidations == 0 {
		t.Fatalf("mutation did not invalidate: %+v", st)
	}
}

// TestPrepCacheConcurrent exercises concurrent Get/Exec on one cache (run
// under -race): many goroutines share entries while verifying results.
func TestPrepCacheConcurrent(t *testing.T) {
	db := guardDB()
	c := NewPrepCache(8)
	q := algebra.Sel(algebra.Times(algebra.R("R"), algebra.R("S")), algebra.CEq(0, 2))
	want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
				if !got.Equal(want) {
					t.Error("concurrent cached result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// scanOrder returns the base-relation names in DFS order — for a left-deep
// join tree, probe side first, then each build side in join order.
func scanOrder(n pnode) []string {
	if s, ok := n.(*pscan); ok {
		return []string{s.name}
	}
	var out []string
	for _, c := range n.children() {
		out = append(out, scanOrder(c)...)
	}
	return out
}

// TestPlanCacheStatsEpochFlip proves the physical plan cache folds the
// statistics epoch into its key: growth inside a log₂ cardinality class
// reuses the cached plan, while growing a relation past a class boundary —
// where the cost-based join order flips — compiles a fresh plan with the
// new order. Relation names are unique to this test because the plan cache
// is process-wide.
func TestPlanCacheStatsEpochFlip(t *testing.T) {
	db := relation.NewDatabase()
	a := relation.New("EpochA", "k", "v")
	a.Add(value.Consts("c0", "a0"))
	a.Add(value.Consts("c1", "a1"))
	db.Add(a)
	b := relation.New("EpochB", "k", "v")
	for i := 0; i < 40; i++ {
		b.Add(value.T(value.Const("c"+string(rune('0'+i%4))), value.Int(i)))
	}
	db.Add(b)
	q := algebra.Sel(algebra.Times(algebra.R("EpochA"), algebra.R("EpochB")), algebra.CEq(0, 2))

	p1 := PlanFor(q, db, algebra.ModeNaive, false)
	if p2 := PlanFor(q, db, algebra.ModeNaive, false); p2 != p1 {
		t.Fatal("identical epoch did not reuse the cached plan")
	}
	if got := scanOrder(p1.root); len(got) != 2 || got[0] != "EpochB" || got[1] != "EpochA" {
		t.Fatalf("initial plan should probe EpochB and build tiny EpochA, got scan order %v", got)
	}

	// Growth inside the log₂ class (2 → 3 rows, both epoch 2): same plan.
	a.Add(value.Consts("c2", "a2"))
	if p := PlanFor(q, db, algebra.ModeNaive, false); p != p1 {
		t.Fatal("growth inside the epoch class recompiled the plan")
	}

	// Growth past the flip point: EpochA at 60 rows dwarfs EpochB, the
	// epoch moves 2 → 6, and the fresh compile must flip build/probe.
	for i := 0; i < 57; i++ {
		a.Add(value.T(value.Const("c"+string(rune('0'+i%4))), value.Int(100+i)))
	}
	p3 := PlanFor(q, db, algebra.ModeNaive, false)
	if p3 == p1 {
		t.Fatal("growth past the epoch flip point reused the stale plan")
	}
	if got := scanOrder(p3.root); len(got) != 2 || got[0] != "EpochA" || got[1] != "EpochB" {
		t.Fatalf("post-flip plan should probe EpochA and build EpochB, got scan order %v", got)
	}

	// Both plans remain exact on the grown database.
	want := algebra.EvalInterp(db, q, algebra.ModeNaive)
	if !p1.Exec(db).Equal(want) || !p3.Exec(db).Equal(want) {
		t.Fatal("epoch-keyed plans diverge from the interpreter")
	}
}

func TestNilPrepCache(t *testing.T) {
	db := guardDB()
	var c *PrepCache
	q := algebra.Proj(algebra.R("S"), 0)
	got := c.Get(db, q, algebra.ModeNaive, false).Exec(db)
	want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)
	if !got.Equal(want) {
		t.Fatal("nil cache result differs from fresh evaluation")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
