package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"incdb/internal/algebra"
)

// Plan is a physical query plan: compiled once from an algebra expression,
// executable any number of times — concurrently — against databases over
// the same schema. A Plan holds no per-execution state; the buffer pool
// only recycles per-execution batch buffers (batch.go).
type Plan struct {
	root  pnode
	nodes []pnode // every node, indexed by its id (Prepared slots)
	subs  []*Plan // IN-subquery plans, deduplicated by rendering
	mode  algebra.Mode
	bag   bool

	arity int
	// outName/outIsRel reproduce the reference interpreter's output naming:
	// the root operator's symbol, or the source relation's name (and
	// attribute labels) when the query is a bare relation reference.
	outName  string
	outIsRel bool

	// bufPool recycles per-execution batch buffer sets (batch.go).
	bufPool sync.Pool
}

// Mode returns the evaluation mode the plan was compiled for.
func (p *Plan) Mode() algebra.Mode { return p.mode }

// Bag reports whether the plan evaluates under bag semantics.
func (p *Plan) Bag() bool { return p.bag }

// Arity returns the plan's output arity.
func (p *Plan) Arity() int { return p.arity }

// readSet is the set of base relations a subtree reads, plus whether it
// reads the whole active domain (Dom). It decides which subplans are frozen
// across valuations: a subtree reading only null-free relations evaluates
// identically in every possible world.
type readSet struct {
	names []string // sorted, distinct
	dom   bool
}

func (a readSet) union(b readSet) readSet {
	out := readSet{dom: a.dom || b.dom}
	out.names = append(append([]string{}, a.names...), b.names...)
	sort.Strings(out.names)
	j := 0
	for i, n := range out.names {
		if i == 0 || n != out.names[j-1] {
			out.names[j] = n
			j++
		}
	}
	out.names = out.names[:j]
	return out
}

// pnode is one physical operator. Concrete nodes embed pbase and implement
// run (batched emission); callers go through the stream dispatcher in
// exec.go so that frozen results short-circuit uniformly.
type pnode interface {
	base() *pbase
	run(x *exec, emit func(*vbatch))
	describe() string
	children() []pnode
}

// pbase carries the per-node compile-time facts: identity, output width
// (after column narrowing), read set, and the cost model's annotations —
// est is the estimated output cardinality (-1 unknown) and colDist the
// per-output-column distinct-value estimates (nil unknown). Estimates are
// advisory: they steer join ordering and explain output, never results.
type pbase struct {
	id    int
	width int
	reads readSet

	est     float64
	colDist []float64
}

func (b *pbase) base() *pbase { return b }

// Physical operators.

// pscan reads one base relation. cols, when non-nil, is the pruned column
// mask applied at the scan: only those columns (ascending) are emitted, so
// every downstream condition and key is already re-indexed through it.
type pscan struct {
	pbase
	name string
	cols []int
	// nullFrac holds per-emitted-column null fractions from the stats
	// block, feeding IsNull/IsConst selectivities for filters directly
	// above the scan.
	nullFrac []float64
}

type pfilter struct {
	pbase
	in    pnode
	conds []pcond
}

type pproject struct {
	pbase
	in   pnode
	cols []int
}

// pjoin is one step of a left-deep n-ary join: probe tuples stream out of
// left, the right input is built into a multi-key hash table (frozen across
// executions when the right subtree is null-free). With no keys it
// degenerates into the nested-loop cross product. residual conditions are
// those decidable once left++right columns are available (indexed over the
// full left++right concatenation). cost is the cost model's step cost
// (estimated intermediate rows + build size; -1 unknown).
//
// outCols, when non-nil, is a projection folded into the join: instead of
// emitting the full concatenation and paying a separate projection pass,
// the join emits exactly those concatenation columns. width is then
// len(outCols), not left+right.
type pjoin struct {
	pbase
	left, right  pnode
	lkeys, rkeys []int
	residual     []pcond
	outCols      []int
	cost         float64
}

type punion struct {
	pbase
	l, r pnode
}

type pdiff struct {
	pbase
	l, r pnode
}

type pinter struct {
	pbase
	l, r pnode
}

type pdivide struct {
	pbase
	l, r pnode
}

type pantiunify struct {
	pbase
	l, r pnode
}

// pdistinct eliminates duplicate tuples from its input stream, emitting
// each distinct tuple exactly once with multiplicity one. The compiler
// places it at the root of every IN subplan: IN only probes set
// membership on the probed columns, so the hash sides built from the
// subquery result (the membership set and the SQL-mode null split) are
// fed deduplicated rows instead of absorbing one insertion per duplicate
// the subplan emits — the semi-join reduction of wide subquery results.
type pdistinct struct {
	pbase
	in pnode
}

type pdom struct {
	pbase
	k int
}

func (n *pscan) children() []pnode      { return nil }
func (n *pfilter) children() []pnode    { return []pnode{n.in} }
func (n *pproject) children() []pnode   { return []pnode{n.in} }
func (n *pjoin) children() []pnode      { return []pnode{n.left, n.right} }
func (n *punion) children() []pnode     { return []pnode{n.l, n.r} }
func (n *pdiff) children() []pnode      { return []pnode{n.l, n.r} }
func (n *pinter) children() []pnode     { return []pnode{n.l, n.r} }
func (n *pdivide) children() []pnode    { return []pnode{n.l, n.r} }
func (n *pantiunify) children() []pnode { return []pnode{n.l, n.r} }
func (n *pdistinct) children() []pnode  { return []pnode{n.in} }
func (n *pdom) children() []pnode       { return nil }

// Compile builds the physical plan for e under set semantics.
func Compile(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode) *Plan {
	return compile(e, cat, mode, false)
}

// CompileBag builds the physical plan for e under bag semantics.
func CompileBag(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode) *Plan {
	return compile(e, cat, mode, true)
}

func compile(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool) *Plan {
	p := &Plan{mode: mode, bag: bag, arity: algebra.Arity(e, cat)}
	p.outName, p.outIsRel = rootName(e)
	c := &compiler{p: p, top: p, cat: cat, subIdx: map[string]*Plan{}}
	c.stats, _ = cat.(statsProvider)
	p.root = c.compile(OptimizedFor(e, cat), nil)
	return p
}

// rootName maps the original root operator to the output relation name the
// reference interpreter would produce.
func rootName(e algebra.Expr) (string, bool) {
	switch e := e.(type) {
	case algebra.Rel:
		return e.Name, true
	case algebra.Select:
		return "σ", false
	case algebra.Project:
		return "π", false
	case algebra.Product:
		return "×", false
	case algebra.Union:
		return "∪", false
	case algebra.Diff:
		return "−", false
	case algebra.Intersect:
		return "∩", false
	case algebra.Divide:
		return "÷", false
	case algebra.AntiUnify:
		return "⋉⇑", false
	case algebra.Dom:
		return "Dom", false
	}
	return "q", false
}

type compiler struct {
	p     *Plan // plan whose node list this compiler fills
	top   *Plan // top-level plan: owns the flat subplan list
	cat   algebra.Catalog
	stats statsProvider // nil when the catalog carries no statistics
	// subIdx deduplicates IN subqueries by rendering across all nesting
	// levels, mirroring the interpreter's rendering-keyed subquery cache.
	subIdx map[string]*Plan
}

func (c *compiler) newBase(width int, reads readSet) pbase {
	return pbase{id: -1, width: width, reads: reads, est: -1}
}

// register assigns the node its id and records it on the plan.
func (c *compiler) register(n pnode) pnode {
	n.base().id = len(c.p.nodes)
	c.p.nodes = append(c.p.nodes, n)
	return n
}

// Column-mask helpers. A needed-column mask over an expression's syntactic
// output is nil when every column is needed; compile's contract is that the
// returned node emits exactly the needed columns in ascending syntactic
// order.

func isFullMask(need []bool) bool {
	for _, b := range need {
		if !b {
			return false
		}
	}
	return true
}

func keepCols(need []bool) []int {
	var out []int
	for i, b := range need {
		if b {
			out = append(out, i)
		}
	}
	return out
}

// rankOf maps each syntactic column to its position in the narrowed output
// (-1 when dropped).
func rankOf(need []bool) []int {
	out := make([]int, len(need))
	k := 0
	for i, b := range need {
		if b {
			out[i] = k
			k++
		} else {
			out[i] = -1
		}
	}
	return out
}

func isIdentity(cols []int) bool {
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// compile builds the physical node for e emitting exactly the columns of
// need (nil: all) in ascending syntactic order. Masks propagate through
// π, σ, ×, ∪ — the operators whose semantics are per-column — and stop at
// the whole-tuple operators (−, ∩, ÷, ⋉⇑, Dom), whose inputs compile full
// and whose output is narrowed above; that keeps multiplicities and
// three-valued behaviour byte-identical to the interpreter under both
// semantics, since narrowing never merges rows mid-stream (set-semantics
// duplicates collapse only at materialization boundaries, as before).
func (c *compiler) compile(e algebra.Expr, need []bool) pnode {
	if need != nil && isFullMask(need) {
		need = nil
	}
	switch e := e.(type) {
	case algebra.Select, algebra.Product:
		return c.compileCluster(e, need)
	case algebra.Rel:
		ar := c.cat.Arity(e.Name)
		if ar < 0 {
			panic("plan: unknown relation " + e.Name)
		}
		w := ar
		var cols []int
		if need != nil {
			// Non-nil even when the mask is empty (an input joined only for
			// its row count): nil cols means the full-width scan.
			cols = make([]int, 0, w)
			cols = append(cols, keepCols(need)...)
			w = len(cols)
		}
		n := &pscan{
			pbase: c.newBase(w, readSet{names: []string{e.Name}}),
			name:  e.Name, cols: cols,
		}
		c.annotateScan(n, ar)
		return c.register(n)
	case algebra.Project:
		inAr := algebra.Arity(e.In, c.cat)
		childNeed := make([]bool, inAr)
		for i, col := range e.Cols {
			if need == nil || need[i] {
				childNeed[col] = true
			}
		}
		in := c.compile(e.In, childNeed)
		rank := rankOf(childNeed)
		cols := make([]int, 0, len(e.Cols))
		for i, col := range e.Cols {
			if need == nil || need[i] {
				cols = append(cols, rank[col])
			}
		}
		return c.project(in, cols)
	case algebra.Union:
		l, r := c.compile(e.L, need), c.compile(e.R, need)
		n := &punion{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		}
		lb, rb := l.base(), r.base()
		if lb.est >= 0 && rb.est >= 0 && lb.colDist != nil && rb.colDist != nil {
			n.est = lb.est + rb.est
			d := make([]float64, len(lb.colDist))
			for i := range d {
				d[i] = lb.colDist[i] + rb.colDist[i]
			}
			n.colDist = capDist(d, n.est)
		}
		return c.register(n)
	case algebra.Diff:
		l, r := c.compile(e.L, nil), c.compile(e.R, nil)
		n := &pdiff{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		}
		c.annotateFromLeft(&n.pbase, l, l.base().width)
		return c.narrow(c.register(n), need)
	case algebra.Intersect:
		l, r := c.compile(e.L, nil), c.compile(e.R, nil)
		n := &pinter{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		}
		c.annotateFromLeft(&n.pbase, l, l.base().width)
		if rb := r.base(); n.est >= 0 && rb.est >= 0 && rb.est < n.est {
			n.est = rb.est
			n.colDist = capDist(n.colDist, n.est)
		}
		return c.narrow(c.register(n), need)
	case algebra.Divide:
		l, r := c.compile(e.L, nil), c.compile(e.R, nil)
		w := l.base().width - r.base().width
		n := &pdivide{
			pbase: c.newBase(w, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		}
		if lb, rb := l.base(), r.base(); lb.est >= 0 && rb.est >= 0 && lb.colDist != nil {
			n.est = lb.est / maxf(rb.est, 1)
			n.colDist = capDist(lb.colDist[:w], n.est)
		}
		return c.narrow(c.register(n), need)
	case algebra.AntiUnify:
		l, r := c.compile(e.L, nil), c.compile(e.R, nil)
		n := &pantiunify{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		}
		c.annotateFromLeft(&n.pbase, l, l.base().width)
		return c.narrow(c.register(n), need)
	case algebra.Dom:
		n := &pdom{
			pbase: c.newBase(e.K, readSet{dom: true}),
			k:     e.K,
		}
		return c.narrow(c.register(n), need)
	}
	panic(fmt.Sprintf("plan: compile: unknown expression %T", e))
}

// annotateScan fills the scan's estimates from the relation's statistics
// snapshot: exact counts for the stored relation (hence exact for every
// frozen null-free input), upper bounds for anything a valuation can still
// collapse.
func (c *compiler) annotateScan(n *pscan, ar int) {
	if c.stats == nil {
		return
	}
	rel := c.stats.Relation(n.name)
	if rel == nil {
		return
	}
	st := rel.Stats()
	n.est = float64(st.Size)
	cols := n.cols
	if cols == nil {
		cols = make([]int, ar)
		for i := range cols {
			cols[i] = i
		}
	}
	n.colDist = make([]float64, len(cols))
	n.nullFrac = make([]float64, len(cols))
	rows := maxf(float64(st.Rows), 1)
	for i, col := range cols {
		n.colDist[i] = maxf(float64(st.ColDistinct[col]), 1)
		n.nullFrac[i] = float64(st.ColNulls[col]) / rows
	}
}

// annotateFromLeft copies the left input's estimates onto a node whose
// output is (a subset of) its left input — diff, intersect, anti-unify.
func (c *compiler) annotateFromLeft(b *pbase, l pnode, w int) {
	if lb := l.base(); lb.est >= 0 && lb.colDist != nil {
		b.est = lb.est
		b.colDist = capDist(lb.colDist[:w], b.est)
	}
}

// project wraps in with a projection onto cols, eliding identities,
// composing with a projection directly underneath (one copy pass instead of
// two; the inner node stays registered but is never reached), and folding
// into a join directly underneath (the join emits the projected columns
// straight out of the probe/build tuples, skipping the full concatenation).
func (c *compiler) project(in pnode, cols []int) pnode {
	if ip, ok := in.(*pproject); ok {
		composed := make([]int, len(cols))
		for i, cc := range cols {
			composed[i] = ip.cols[cc]
		}
		cols, in = composed, ip.in
	}
	if len(cols) == in.base().width && isIdentity(cols) {
		return in
	}
	if j, ok := in.(*pjoin); ok {
		b := j.base()
		if b.colDist != nil {
			d := make([]float64, len(cols))
			for i, cc := range cols {
				d[i] = b.colDist[cc]
			}
			b.colDist = d
		}
		if j.outCols != nil {
			composed := make([]int, len(cols))
			for i, cc := range cols {
				composed[i] = j.outCols[cc]
			}
			j.outCols = composed
		} else {
			j.outCols = append([]int(nil), cols...)
		}
		b.width = len(cols)
		return j
	}
	p := &pproject{
		pbase: c.newBase(len(cols), in.base().reads),
		in:    in, cols: cols,
	}
	if b := in.base(); b.est >= 0 && b.colDist != nil {
		p.est = b.est
		d := make([]float64, len(cols))
		for i, cc := range cols {
			d[i] = b.colDist[cc]
		}
		p.colDist = d
	}
	return c.register(p)
}

// narrow wraps a full-width node in a projection keeping only the needed
// columns (ascending). Whole-tuple operators compile full and narrow here.
func (c *compiler) narrow(n pnode, need []bool) pnode {
	if need == nil {
		return n
	}
	return c.project(n, keepCols(need))
}

// filterNode wraps in with the (already re-indexed) conditions, estimating
// the result cardinality from the input's column statistics.
func (c *compiler) filterNode(in pnode, conds []algebra.Cond) pnode {
	pcs := make([]pcond, len(conds))
	for i, cond := range conds {
		pcs[i] = c.compileCond(cond)
	}
	n := &pfilter{
		pbase: c.newBase(in.base().width, in.base().reads.union(condReads(pcs))),
		in:    in, conds: pcs,
	}
	if b := in.base(); b.est >= 0 && b.colDist != nil {
		sel := 1.0
		dist, nulls := distOfNode(in), nullFracOfNode(in)
		for _, cond := range conds {
			sel *= selCond(cond, dist, nulls)
		}
		n.est = b.est * sel
		n.colDist = capDist(b.colDist, n.est)
	}
	return c.register(n)
}

// conjunct is one selection conjunct positioned over the flattened join
// cluster, with the columns it reads (already shifted to cluster-global
// positions).
type conjunct struct {
	cond algebra.Cond
	cols []int
}

// compileCluster normalizes a maximal σ/× cluster into an n-ary join graph:
// the cluster's product leaves become join inputs, its selection conjuncts
// become join keys (cross-input equalities), input-local filters, or
// residual conditions applied as soon as their columns are available.
// Inputs are narrowed to the columns the caller needs plus the columns any
// conjunct reads, then joined left-deep in the cost model's order (the
// syntactic order when estimates are unavailable); a final projection
// restores the needed syntactic column order when the join order or the
// conjunct-only columns perturbed it.
func (c *compiler) compileCluster(e algebra.Expr, need []bool) pnode {
	var inputs []algebra.Expr
	var offsets []int
	var widths []int
	var conjs []conjunct
	var flatten func(e algebra.Expr, off int) int // returns width
	flatten = func(e algebra.Expr, off int) int {
		switch e := e.(type) {
		case algebra.Select:
			w := flatten(e.In, off)
			for _, cj := range splitAnd(e.Cond) {
				shifted := shiftCond(cj, off)
				conjs = append(conjs, conjunct{cond: shifted, cols: condCols(shifted)})
			}
			return w
		case algebra.Product:
			lw := flatten(e.L, off)
			rw := flatten(e.R, off+lw)
			return lw + rw
		default:
			inputs = append(inputs, e)
			offsets = append(offsets, off)
			w := algebra.Arity(e, c.cat)
			widths = append(widths, w)
			return w
		}
	}
	width := flatten(e, 0)

	// The cluster-wide needed mask: the caller's needs plus every column a
	// conjunct reads (conjunct-only columns are dropped again by the final
	// projection).
	clusterNeed := make([]bool, width)
	if need == nil {
		for i := range clusterNeed {
			clusterNeed[i] = true
		}
	} else {
		copy(clusterNeed, need)
		for _, cj := range conjs {
			for _, col := range cj.cols {
				clusterNeed[col] = true
			}
		}
	}

	// Compile each input narrowed to its slice of the mask, wrapping
	// input-local conjuncts — re-indexed through the mask — as filters
	// below the join. ranks[i] maps an input-local syntactic column to its
	// narrowed position; owner maps a global column to its input.
	nodes := make([]pnode, len(inputs))
	ranks := make([][]int, len(inputs))
	owner := make([]int, width)
	used := make([]bool, len(conjs))
	for i, in := range inputs {
		lo, hi := offsets[i], offsets[i]+widths[i]
		for g := lo; g < hi; g++ {
			owner[g] = i
		}
		rank := rankOf(clusterNeed[lo:hi])
		n := c.compile(in, clusterNeed[lo:hi])
		var local []algebra.Cond
		for j, cj := range conjs {
			if used[j] || len(cj.cols) == 0 {
				continue
			}
			if cj.cols[0] >= lo && cj.cols[len(cj.cols)-1] < hi {
				local = append(local, mapCond(cj.cond, func(g int) int { return rank[g-lo] }))
				used[j] = true
			}
		}
		if local != nil {
			n = c.filterNode(n, local)
		}
		nodes[i] = n
		ranks[i] = rank
	}

	// Column-free conjuncts (False, constant comparisons after rewrites)
	// apply at the first step.
	var zeroCol []algebra.Cond
	for j, cj := range conjs {
		if !used[j] && len(cj.cols) == 0 {
			zeroCol = append(zeroCol, cj.cond)
			used[j] = true
		}
	}

	// Join ordering: cost-driven when every input carries estimates,
	// syntactic otherwise. The order never changes results — only which
	// intermediates exist and which sides build hash tables.
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	var stepEst, stepCost []float64
	if len(nodes) > 1 && costable(nodes) {
		rows := make([]float64, len(nodes))
		for i, n := range nodes {
			rows[i] = n.base().est
		}
		distGlobal := func(g int) float64 {
			i := owner[g]
			return distOfNode(nodes[i])(ranks[i][g-offsets[i]])
		}
		var cross []crossConj
		for j, cj := range conjs {
			if used[j] {
				continue
			}
			var m uint
			for _, col := range cj.cols {
				m |= uint(1) << owner[col]
			}
			cross = append(cross, crossConj{mask: m, sel: selCond(cj.cond, distGlobal, noNullFrac)})
		}
		order, stepEst, stepCost = orderJoins(rows, cross)
	}

	// Assemble the left-deep chain in the chosen order. pos maps a global
	// syntactic column to its position in the accumulated output.
	pos := make([]int, width)
	for i := range pos {
		pos[i] = -1
	}
	setPos := func(i, base int) {
		lo := offsets[i]
		for cc := 0; cc < widths[i]; cc++ {
			if ranks[i][cc] >= 0 {
				pos[lo+cc] = base + ranks[i][cc]
			}
		}
	}
	acc := nodes[order[0]]
	setPos(order[0], 0)
	if zeroCol != nil {
		acc = c.filterNode(acc, zeroCol)
	}
	accWidth := acc.base().width
	for s := 1; s < len(order); s++ {
		i := order[s]
		right := nodes[i]
		lo, hi := offsets[i], offsets[i]+widths[i]
		// Join keys: unused cross-input equalities with one side in the
		// accumulated prefix and the other in this input. Several keys form
		// one composite hash key — the multi-equality extension of the old
		// single-conjunct hash join.
		var lkeys, rkeys []int
		for j, cj := range conjs {
			if used[j] {
				continue
			}
			eq, ok := cj.cond.(algebra.Eq)
			if !ok {
				continue
			}
			li, ri := eq.I, eq.J
			if ri < lo || ri >= hi {
				li, ri = ri, li
			}
			if pos[li] >= 0 && ri >= lo && ri < hi {
				lkeys = append(lkeys, pos[li])
				rkeys = append(rkeys, ranks[i][ri-lo])
				used[j] = true
			}
		}
		// Residuals: every remaining conjunct decidable once the prefix and
		// this input's columns are concatenated.
		var residual []pcond
		for j, cj := range conjs {
			if used[j] || len(cj.cols) == 0 {
				continue
			}
			avail := true
			for _, col := range cj.cols {
				if pos[col] < 0 && (col < lo || col >= hi) {
					avail = false
					break
				}
			}
			if !avail {
				continue
			}
			re := mapCond(cj.cond, func(g int) int {
				if p := pos[g]; p >= 0 {
					return p
				}
				return accWidth + ranks[i][g-lo]
			})
			residual = append(residual, c.compileCond(re))
			used[j] = true
		}
		reads := acc.base().reads.union(right.base().reads).union(condReads(residual))
		j := &pjoin{
			pbase: c.newBase(accWidth+right.base().width, reads),
			left:  acc, right: right,
			lkeys: lkeys, rkeys: rkeys,
			residual: residual,
			cost:     -1,
		}
		if stepEst != nil {
			j.est = stepEst[s]
			j.cost = stepCost[s]
			if lb, rb := acc.base(), right.base(); lb.colDist != nil && rb.colDist != nil {
				d := make([]float64, 0, j.width)
				d = append(d, lb.colDist...)
				d = append(d, rb.colDist...)
				j.colDist = capDist(d, j.est)
			}
		}
		acc = c.register(j)
		setPos(i, accWidth)
		accWidth += right.base().width
	}
	// Anything left (should be none) guards the top.
	var top []algebra.Cond
	for j, cj := range conjs {
		if !used[j] {
			top = append(top, mapCond(cj.cond, func(g int) int { return pos[g] }))
		}
	}
	if top != nil {
		acc = c.filterNode(acc, top)
	}
	// Restore the needed syntactic column order, dropping conjunct-only
	// columns; elided when the chain already emits it.
	outCols := make([]int, 0, accWidth)
	for g := 0; g < width; g++ {
		if need == nil || need[g] {
			outCols = append(outCols, pos[g])
		}
	}
	return c.project(acc, outCols)
}

// condReads collects the read-sets of compiled conditions (IN subqueries
// make the enclosing operator depend on the subplan's reads).
func condReads(cs []pcond) readSet {
	var out readSet
	for _, c := range cs {
		out = out.union(c.reads())
	}
	return out
}

// subFor compiles (or reuses) the plan of an uncorrelated IN subquery.
// Subqueries are compared set-wise by IN, so the subplan always uses set
// semantics; textually identical subqueries share one subplan, mirroring
// the interpreter's rendering-keyed cache. Nested subplans land on the
// top-level plan's flat list so that Prepare can freeze them all. The
// subplan compiles with a full mask: IN probes every output column.
func (c *compiler) subFor(e algebra.Expr) *Plan {
	key := e.String()
	if s, ok := c.subIdx[key]; ok {
		return s
	}
	sub := &Plan{mode: c.top.mode, bag: false, arity: algebra.Arity(e, c.cat)}
	sub.outName, sub.outIsRel = "in", false
	c.subIdx[key] = sub
	c.top.subs = append(c.top.subs, sub)
	sc := &compiler{p: sub, top: c.top, cat: c.cat, stats: c.stats, subIdx: c.subIdx}
	inner := sc.compile(OptimizedFor(e, c.cat), nil)
	// Semi-join reduction: IN probes only set membership over the probed
	// columns, so dedup the subplan's stream before any hash side is built
	// from it (membership set, SQL null split, frozen materialization).
	sub.root = sc.register(&pdistinct{
		pbase: sc.newBase(inner.base().width, inner.base().reads),
		in:    inner,
	})
	return sub
}

// describe renders one operator for EXPLAIN output.
func (n *pscan) describe() string {
	if n.cols == nil {
		return "scan " + n.name
	}
	parts := make([]string, len(n.cols))
	for i, c := range n.cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "scan " + n.name + "[" + strings.Join(parts, ",") + "]"
}
func (n *pfilter) describe() string {
	parts := make([]string, len(n.conds))
	for i, c := range n.conds {
		parts[i] = c.String()
	}
	return "filter " + strings.Join(parts, " ∧ ")
}
func (n *pproject) describe() string {
	parts := make([]string, len(n.cols))
	for i, c := range n.cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "project [" + strings.Join(parts, ",") + "]"
}
func (n *pjoin) describe() string {
	var s string
	if len(n.lkeys) == 0 {
		s = "cross-join"
	} else {
		lw := n.left.base().width
		keys := make([]string, len(n.lkeys))
		for i := range n.lkeys {
			keys[i] = fmt.Sprintf("#%d=#%d", n.lkeys[i], lw+n.rkeys[i])
		}
		s = "hash-join " + strings.Join(keys, ",")
	}
	if len(n.residual) > 0 {
		parts := make([]string, len(n.residual))
		for i, c := range n.residual {
			parts[i] = c.String()
		}
		s += " residual " + strings.Join(parts, " ∧ ")
	}
	if n.outCols != nil {
		parts := make([]string, len(n.outCols))
		for i, c := range n.outCols {
			parts[i] = fmt.Sprintf("%d", c)
		}
		s += " emit [" + strings.Join(parts, ",") + "]"
	}
	return s
}
func (n *punion) describe() string     { return "union" }
func (n *pdiff) describe() string      { return "diff" }
func (n *pinter) describe() string     { return "intersect" }
func (n *pdivide) describe() string    { return "divide" }
func (n *pantiunify) describe() string { return "anti-unify" }
func (n *pdistinct) describe() string  { return "distinct (semi-join dedup)" }
func (n *pdom) describe() string       { return fmt.Sprintf("dom^%d", n.k) }
