package plan

import (
	"fmt"
	"sort"
	"strings"

	"incdb/internal/algebra"
	"incdb/internal/value"
)

// Plan is a physical query plan: compiled once from an algebra expression,
// executable any number of times — concurrently — against databases over
// the same schema. A Plan holds no per-execution state.
type Plan struct {
	root  pnode
	nodes []pnode // every node, indexed by its id (Prepared slots)
	subs  []*Plan // IN-subquery plans, deduplicated by rendering
	mode  algebra.Mode
	bag   bool

	arity int
	// outName/outIsRel reproduce the reference interpreter's output naming:
	// the root operator's symbol, or the source relation's name (and
	// attribute labels) when the query is a bare relation reference.
	outName  string
	outIsRel bool
}

// Mode returns the evaluation mode the plan was compiled for.
func (p *Plan) Mode() algebra.Mode { return p.mode }

// Bag reports whether the plan evaluates under bag semantics.
func (p *Plan) Bag() bool { return p.bag }

// Arity returns the plan's output arity.
func (p *Plan) Arity() int { return p.arity }

// readSet is the set of base relations a subtree reads, plus whether it
// reads the whole active domain (Dom). It decides which subplans are frozen
// across valuations: a subtree reading only null-free relations evaluates
// identically in every possible world.
type readSet struct {
	names []string // sorted, distinct
	dom   bool
}

func (a readSet) union(b readSet) readSet {
	out := readSet{dom: a.dom || b.dom}
	out.names = append(append([]string{}, a.names...), b.names...)
	sort.Strings(out.names)
	j := 0
	for i, n := range out.names {
		if i == 0 || n != out.names[j-1] {
			out.names[j] = n
			j++
		}
	}
	out.names = out.names[:j]
	return out
}

// pnode is one physical operator. Concrete nodes embed pbase and implement
// run (streaming emission); callers go through the stream dispatcher in
// exec.go so that frozen results short-circuit uniformly.
type pnode interface {
	base() *pbase
	run(x *exec, emit func(t value.Tuple, m int))
	describe() string
	children() []pnode
}

type pbase struct {
	id    int
	width int
	reads readSet
}

func (b *pbase) base() *pbase { return b }

// Physical operators.

type pscan struct {
	pbase
	name string
}

type pfilter struct {
	pbase
	in    pnode
	conds []pcond
}

type pproject struct {
	pbase
	in   pnode
	cols []int
}

// pjoin is one step of a left-deep n-ary join: probe tuples stream out of
// left, the right input is built into a multi-key hash table (frozen across
// executions when the right subtree is null-free). With no keys it
// degenerates into the nested-loop cross product. residual conditions are
// those decidable once left++right columns are available.
type pjoin struct {
	pbase
	left, right  pnode
	lkeys, rkeys []int
	residual     []pcond
}

type punion struct {
	pbase
	l, r pnode
}

type pdiff struct {
	pbase
	l, r pnode
}

type pinter struct {
	pbase
	l, r pnode
}

type pdivide struct {
	pbase
	l, r pnode
}

type pantiunify struct {
	pbase
	l, r pnode
}

// pdistinct eliminates duplicate tuples from its input stream, emitting
// each distinct tuple exactly once with multiplicity one. The compiler
// places it at the root of every IN subplan: IN only probes set
// membership on the probed columns, so the hash sides built from the
// subquery result (the membership set and the SQL-mode null split) are
// fed deduplicated rows instead of absorbing one insertion per duplicate
// the subplan emits — the semi-join reduction of wide subquery results.
type pdistinct struct {
	pbase
	in pnode
}

type pdom struct {
	pbase
	k int
}

func (n *pscan) children() []pnode      { return nil }
func (n *pfilter) children() []pnode    { return []pnode{n.in} }
func (n *pproject) children() []pnode   { return []pnode{n.in} }
func (n *pjoin) children() []pnode      { return []pnode{n.left, n.right} }
func (n *punion) children() []pnode     { return []pnode{n.l, n.r} }
func (n *pdiff) children() []pnode      { return []pnode{n.l, n.r} }
func (n *pinter) children() []pnode     { return []pnode{n.l, n.r} }
func (n *pdivide) children() []pnode    { return []pnode{n.l, n.r} }
func (n *pantiunify) children() []pnode { return []pnode{n.l, n.r} }
func (n *pdistinct) children() []pnode  { return []pnode{n.in} }
func (n *pdom) children() []pnode       { return nil }

// Compile builds the physical plan for e under set semantics.
func Compile(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode) *Plan {
	return compile(e, cat, mode, false)
}

// CompileBag builds the physical plan for e under bag semantics.
func CompileBag(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode) *Plan {
	return compile(e, cat, mode, true)
}

func compile(e algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool) *Plan {
	p := &Plan{mode: mode, bag: bag, arity: algebra.Arity(e, cat)}
	p.outName, p.outIsRel = rootName(e)
	c := &compiler{p: p, top: p, cat: cat, subIdx: map[string]*Plan{}}
	p.root = c.compile(OptimizedFor(e, cat))
	return p
}

// rootName maps the original root operator to the output relation name the
// reference interpreter would produce.
func rootName(e algebra.Expr) (string, bool) {
	switch e := e.(type) {
	case algebra.Rel:
		return e.Name, true
	case algebra.Select:
		return "σ", false
	case algebra.Project:
		return "π", false
	case algebra.Product:
		return "×", false
	case algebra.Union:
		return "∪", false
	case algebra.Diff:
		return "−", false
	case algebra.Intersect:
		return "∩", false
	case algebra.Divide:
		return "÷", false
	case algebra.AntiUnify:
		return "⋉⇑", false
	case algebra.Dom:
		return "Dom", false
	}
	return "q", false
}

type compiler struct {
	p   *Plan // plan whose node list this compiler fills
	top *Plan // top-level plan: owns the flat subplan list
	cat algebra.Catalog
	// subIdx deduplicates IN subqueries by rendering across all nesting
	// levels, mirroring the interpreter's rendering-keyed subquery cache.
	subIdx map[string]*Plan
}

func (c *compiler) newBase(width int, reads readSet) pbase {
	return pbase{id: -1, width: width, reads: reads}
}

// register assigns the node its id and records it on the plan.
func (c *compiler) register(n pnode) pnode {
	n.base().id = len(c.p.nodes)
	c.p.nodes = append(c.p.nodes, n)
	return n
}

func (c *compiler) compile(e algebra.Expr) pnode {
	switch e := e.(type) {
	case algebra.Select, algebra.Product:
		return c.compileCluster(e)
	case algebra.Rel:
		ar := c.cat.Arity(e.Name)
		if ar < 0 {
			panic("plan: unknown relation " + e.Name)
		}
		return c.register(&pscan{
			pbase: c.newBase(ar, readSet{names: []string{e.Name}}),
			name:  e.Name,
		})
	case algebra.Project:
		in := c.compile(e.In)
		return c.register(&pproject{
			pbase: c.newBase(len(e.Cols), in.base().reads),
			in:    in, cols: e.Cols,
		})
	case algebra.Union:
		l, r := c.compile(e.L), c.compile(e.R)
		return c.register(&punion{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		})
	case algebra.Diff:
		l, r := c.compile(e.L), c.compile(e.R)
		return c.register(&pdiff{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		})
	case algebra.Intersect:
		l, r := c.compile(e.L), c.compile(e.R)
		return c.register(&pinter{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		})
	case algebra.Divide:
		l, r := c.compile(e.L), c.compile(e.R)
		return c.register(&pdivide{
			pbase: c.newBase(l.base().width-r.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		})
	case algebra.AntiUnify:
		l, r := c.compile(e.L), c.compile(e.R)
		return c.register(&pantiunify{
			pbase: c.newBase(l.base().width, l.base().reads.union(r.base().reads)),
			l:     l, r: r,
		})
	case algebra.Dom:
		return c.register(&pdom{
			pbase: c.newBase(e.K, readSet{dom: true}),
			k:     e.K,
		})
	}
	panic(fmt.Sprintf("plan: compile: unknown expression %T", e))
}

// conjunct is one selection conjunct positioned over the flattened join
// cluster, with the columns it reads (already shifted to cluster-global
// positions).
type conjunct struct {
	cond algebra.Cond
	cols []int
}

// compileCluster normalizes a maximal σ/× cluster into an n-ary join graph:
// the cluster's product leaves become join inputs, its selection conjuncts
// become join keys (cross-input equalities), input-local filters, or
// residual conditions applied as soon as their columns are available.
// Inputs are joined left-deep in syntactic order, so the output column
// layout matches the original product exactly and no re-permutation is
// needed.
func (c *compiler) compileCluster(e algebra.Expr) pnode {
	var inputs []algebra.Expr
	var offsets []int
	var conjs []conjunct
	var flatten func(e algebra.Expr, off int) int // returns width
	flatten = func(e algebra.Expr, off int) int {
		switch e := e.(type) {
		case algebra.Select:
			w := flatten(e.In, off)
			for _, cj := range splitAnd(e.Cond) {
				shifted := shiftCond(cj, off)
				conjs = append(conjs, conjunct{cond: shifted, cols: condCols(shifted)})
			}
			return w
		case algebra.Product:
			lw := flatten(e.L, off)
			rw := flatten(e.R, off+lw)
			return lw + rw
		default:
			inputs = append(inputs, e)
			offsets = append(offsets, off)
			return algebra.Arity(e, c.cat)
		}
	}
	width := flatten(e, 0)

	// Compile each input, wrapping input-local conjuncts as filters below
	// the join.
	nodes := make([]pnode, len(inputs))
	used := make([]bool, len(conjs))
	for i, in := range inputs {
		n := c.compile(in)
		lo := offsets[i]
		hi := lo + n.base().width
		var local []pcond
		for j, cj := range conjs {
			if used[j] || len(cj.cols) == 0 {
				continue
			}
			if cj.cols[0] >= lo && cj.cols[len(cj.cols)-1] < hi {
				local = append(local, c.compileCond(shiftCond(cj.cond, -lo)))
				used[j] = true
			}
		}
		if local != nil {
			n = c.register(&pfilter{
				pbase: c.newBase(n.base().width, n.base().reads.union(condReads(local))),
				in:    n, conds: local,
			})
		}
		nodes[i] = n
	}

	// Column-free conjuncts (False, constant comparisons after rewrites)
	// apply at the first step.
	var zeroCol []pcond
	for j, cj := range conjs {
		if !used[j] && len(cj.cols) == 0 {
			zeroCol = append(zeroCol, c.compileCond(cj.cond))
			used[j] = true
		}
	}

	acc := nodes[0]
	if zeroCol != nil {
		acc = c.register(&pfilter{
			pbase: c.newBase(acc.base().width, acc.base().reads.union(condReads(zeroCol))),
			in:    acc, conds: zeroCol,
		})
	}
	accWidth := nodes[0].base().width
	for i := 1; i < len(nodes); i++ {
		right := nodes[i]
		lo := offsets[i]
		hi := lo + right.base().width
		// Join keys: unused cross-input equalities with one side in the
		// accumulated prefix and the other in this input. Several keys form
		// one composite hash key — the multi-equality extension of the old
		// single-conjunct hash join.
		var lkeys, rkeys []int
		for j, cj := range conjs {
			if used[j] {
				continue
			}
			eq, ok := cj.cond.(algebra.Eq)
			if !ok {
				continue
			}
			li, ri := eq.I, eq.J
			if li >= lo && li < hi && ri < accWidth {
				li, ri = ri, li
			}
			if li < accWidth && ri >= lo && ri < hi {
				lkeys = append(lkeys, li)
				rkeys = append(rkeys, ri-lo)
				used[j] = true
			}
		}
		// Residuals: every remaining conjunct decidable on the joined
		// prefix (its columns all below hi).
		var residual []pcond
		for j, cj := range conjs {
			if used[j] {
				continue
			}
			if len(cj.cols) == 0 || cj.cols[len(cj.cols)-1] < hi {
				residual = append(residual, c.compileCond(cj.cond))
				used[j] = true
			}
		}
		reads := acc.base().reads.union(right.base().reads).union(condReads(residual))
		acc = c.register(&pjoin{
			pbase: c.newBase(accWidth+right.base().width, reads),
			left:  acc, right: right,
			lkeys: lkeys, rkeys: rkeys,
			residual: residual,
		})
		accWidth += right.base().width
	}
	// Anything left (should be none) guards the top.
	var top []pcond
	for j, cj := range conjs {
		if !used[j] {
			top = append(top, c.compileCond(cj.cond))
		}
	}
	if top != nil {
		acc = c.register(&pfilter{
			pbase: c.newBase(width, acc.base().reads.union(condReads(top))),
			in:    acc, conds: top,
		})
	}
	return acc
}

// condReads collects the read-sets of compiled conditions (IN subqueries
// make the enclosing operator depend on the subplan's reads).
func condReads(cs []pcond) readSet {
	var out readSet
	for _, c := range cs {
		out = out.union(c.reads())
	}
	return out
}

// subFor compiles (or reuses) the plan of an uncorrelated IN subquery.
// Subqueries are compared set-wise by IN, so the subplan always uses set
// semantics; textually identical subqueries share one subplan, mirroring
// the interpreter's rendering-keyed cache. Nested subplans land on the
// top-level plan's flat list so that Prepare can freeze them all.
func (c *compiler) subFor(e algebra.Expr) *Plan {
	key := e.String()
	if s, ok := c.subIdx[key]; ok {
		return s
	}
	sub := &Plan{mode: c.top.mode, bag: false, arity: algebra.Arity(e, c.cat)}
	sub.outName, sub.outIsRel = "in", false
	c.subIdx[key] = sub
	c.top.subs = append(c.top.subs, sub)
	sc := &compiler{p: sub, top: c.top, cat: c.cat, subIdx: c.subIdx}
	inner := sc.compile(OptimizedFor(e, c.cat))
	// Semi-join reduction: IN probes only set membership over the probed
	// columns, so dedup the subplan's stream before any hash side is built
	// from it (membership set, SQL null split, frozen materialization).
	sub.root = sc.register(&pdistinct{
		pbase: sc.newBase(inner.base().width, inner.base().reads),
		in:    inner,
	})
	return sub
}

// describe renders one operator for EXPLAIN output.
func (n *pscan) describe() string { return "scan " + n.name }
func (n *pfilter) describe() string {
	parts := make([]string, len(n.conds))
	for i, c := range n.conds {
		parts[i] = c.String()
	}
	return "filter " + strings.Join(parts, " ∧ ")
}
func (n *pproject) describe() string {
	parts := make([]string, len(n.cols))
	for i, c := range n.cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "project [" + strings.Join(parts, ",") + "]"
}
func (n *pjoin) describe() string {
	if len(n.lkeys) == 0 {
		return "cross-join"
	}
	keys := make([]string, len(n.lkeys))
	for i := range n.lkeys {
		keys[i] = fmt.Sprintf("#%d=#%d", n.lkeys[i], n.base().width-n.right.base().width+n.rkeys[i])
	}
	s := "hash-join " + strings.Join(keys, ",")
	if len(n.residual) > 0 {
		parts := make([]string, len(n.residual))
		for i, c := range n.residual {
			parts[i] = c.String()
		}
		s += " residual " + strings.Join(parts, " ∧ ")
	}
	return s
}
func (n *punion) describe() string     { return "union" }
func (n *pdiff) describe() string      { return "diff" }
func (n *pinter) describe() string     { return "intersect" }
func (n *pdivide) describe() string    { return "divide" }
func (n *pantiunify) describe() string { return "anti-unify" }
func (n *pdistinct) describe() string  { return "distinct (semi-join dedup)" }
func (n *pdom) describe() string       { return fmt.Sprintf("dom^%d", n.k) }
