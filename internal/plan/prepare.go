package plan

import (
	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Prepared binds a plan to a base incomplete database for repeated
// execution over the worlds derived from it: every maximal subplan that
// reads only null-free relations is materialized once — results, join build
// tables, IN-subquery splits, anti-unify splits — because a valuation can
// only change rows that mention nulls, so those subplans evaluate
// identically in every v(D). Exec then re-probes only the hash tables whose
// inputs actually contain relevant nulls.
//
// The freeze is computed eagerly here, so a Prepared is safe for concurrent
// Exec calls (the oracle worker pools share one Prepared across shards).
// Exec must only be given the base database itself or worlds derived from
// it by applying valuations (relation.Database.Apply): those leave the
// null-free relations' contents untouched, which is what makes the frozen
// results valid.
type Prepared struct {
	p    *Plan
	base *relation.Database

	frozen    map[*Plan]*frozenSet
	subRels   map[*Plan]*relation.Relation
	subSplits map[*Plan]*nullSplit

	// guards record, per relation the plan reads, the relation object and
	// its mutation version at Prepare time; ValidFor re-checks them so a
	// Prepared can outlive a single oracle invocation (REPL/server
	// workloads) and be dropped exactly when a touched relation changes.
	// A plan reading the active domain (Dom) depends on every relation of
	// the base, so domAll extends the guard to the whole catalogue.
	guards []relGuard
	domAll bool
}

// relGuard pins one base relation: same object, same mutation version.
type relGuard struct {
	name    string
	rel     *relation.Relation
	version uint64
}

// captureGuards records the version guard for the plan's read set.
func (prep *Prepared) captureGuards() {
	rs := prep.p.root.base().reads
	names := rs.names
	if rs.dom {
		prep.domAll = true
		names = prep.base.Names()
	}
	prep.guards = make([]relGuard, 0, len(names))
	for _, name := range names {
		g := relGuard{name: name, rel: prep.base.Relation(name)}
		if g.rel != nil {
			g.version = g.rel.Version()
		}
		prep.guards = append(prep.guards, g)
	}
}

// ValidFor reports whether the prepared state is still valid when executing
// against db (or worlds derived from it): db must present, for every
// relation the plan reads, the same relation object at the same mutation
// version as when Prepare ran. A plan reading Dom additionally requires the
// catalogue itself to be unchanged, since any new relation extends the
// active domain.
func (prep *Prepared) ValidFor(db *relation.Database) bool {
	if prep.domAll && len(db.Names()) != len(prep.guards) {
		return false
	}
	for _, g := range prep.guards {
		r := db.Relation(g.name)
		if r != g.rel {
			return false
		}
		if r != nil && r.Version() != g.version {
			return false
		}
	}
	return true
}

// Base returns the database the plan was prepared against.
func (prep *Prepared) Base() *relation.Database { return prep.base }

// frozenSet holds one plan's per-node freezes, indexed by node id.
type frozenSet struct {
	rels   []*relation.Relation
	tables []*joinTable
	au     []*nullSplit
}

// Prepare computes the freeze of p against base.
func (p *Plan) Prepare(base *relation.Database) *Prepared {
	prep := &Prepared{p: p, base: base,
		frozen:    map[*Plan]*frozenSet{},
		subRels:   map[*Plan]*relation.Relation{},
		subSplits: map[*Plan]*nullSplit{},
	}
	prep.captureGuards()
	// Freeze subplans innermost-first (they are appended outermost-first
	// during compilation), so outer freezes reuse inner ones. A static
	// subquery root was already materialized by freezeNodes; reuse it.
	for i := len(p.subs) - 1; i >= 0; i-- {
		sub := p.subs[i]
		prep.freezeNodes(sub)
		if r := prep.frozen[sub].rels[sub.root.base().id]; r != nil {
			prep.subRels[sub] = r
			if p.mode == algebra.ModeSQL {
				prep.subSplits[sub] = splitNulls(r)
			}
		}
	}
	prep.freezeNodes(p)
	return prep
}

// static reports whether the node's result is world-invariant: it reads no
// active domain and only relations that exist in the base database and
// contain no nulls.
func (prep *Prepared) static(n pnode) bool {
	rs := n.base().reads
	if rs.dom {
		return false
	}
	for _, name := range rs.names {
		rel := prep.base.Relation(name)
		if rel == nil || rel.HasNulls() {
			return false
		}
	}
	return true
}

// freezeNodes walks q's operator tree and materializes every maximal
// static node; below non-static joins and anti-unify operators whose right
// input froze, the derived build table / split is frozen too.
func (prep *Prepared) freezeNodes(q *Plan) {
	fs := &frozenSet{
		rels:   make([]*relation.Relation, len(q.nodes)),
		tables: make([]*joinTable, len(q.nodes)),
		au:     make([]*nullSplit, len(q.nodes)),
	}
	prep.frozen[q] = fs
	var walk func(n pnode)
	walk = func(n pnode) {
		if prep.static(n) {
			fs.rels[n.base().id] = prep.run(q, n)
			return
		}
		for _, c := range n.children() {
			walk(c)
		}
		switch n := n.(type) {
		case *pjoin:
			if r := fs.rels[n.right.base().id]; r != nil {
				tb := newJoinTable(n.rkeys, r.Len())
				r.EachUnordered(func(t value.Tuple, m int) {
					tb.add(t, m, q.mode)
				})
				fs.tables[n.base().id] = tb
			}
		case *pantiunify:
			if r := fs.rels[n.r.base().id]; r != nil {
				fs.au[n.base().id] = splitNulls(r)
			}
		}
	}
	walk(q.root)
}

// run materializes one node of q against the base database, reusing
// already-frozen inner results.
func (prep *Prepared) run(q *Plan, n pnode) *relation.Relation {
	x := &exec{db: prep.base, prep: prep, mode: q.mode, bag: q.bag, plan: q,
		subRels: map[*Plan]*relation.Relation{}, subSplits: map[*Plan]*nullSplit{}}
	if s, ok := n.(*pscan); ok && s.cols == nil {
		// A static full-width base relation is shared as-is: stored rows are
		// immutable and every consumer is read-only. A pruned scan emits
		// narrowed tuples, so it materializes below like any other node.
		return x.source(s.name)
	}
	x.bufs = q.acquireBufs()
	out := relation.NewArity("t", n.base().width)
	n.run(x, relSink(out))
	q.releaseBufs(x.bufs)
	return out
}

// Exec evaluates the plan against a world derived from the prepared base.
func (prep *Prepared) Exec(world *relation.Database) *relation.Relation {
	return prep.p.exec(world, prep, nil)
}

// ExecTraced is Exec accumulating execution statistics into tr. The oracle
// worker pools share one trace across shards; all Trace fields are atomics.
func (prep *Prepared) ExecTraced(world *relation.Database, tr *Trace) *relation.Relation {
	return prep.p.exec(world, prep, tr)
}

// Plan returns the physical plan the prepared state was computed for.
func (prep *Prepared) Plan() *Plan { return prep.p }
