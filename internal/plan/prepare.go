package plan

import (
	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Prepared binds a plan to a base incomplete database for repeated
// execution over the worlds derived from it: every maximal subplan that
// reads only null-free relations is materialized once — results, join build
// tables, IN-subquery splits, anti-unify splits — because a valuation can
// only change rows that mention nulls, so those subplans evaluate
// identically in every v(D). Exec then re-probes only the hash tables whose
// inputs actually contain relevant nulls.
//
// The freeze is computed eagerly here, so a Prepared is safe for concurrent
// Exec calls (the oracle worker pools share one Prepared across shards).
// Exec must only be given the base database itself or worlds derived from
// it by applying valuations (relation.Database.Apply): those leave the
// null-free relations' contents untouched, which is what makes the frozen
// results valid.
type Prepared struct {
	p    *Plan
	base *relation.Database

	frozen    map[*Plan]*frozenSet
	subRels   map[*Plan]*relation.Relation
	subSplits map[*Plan]*nullSplit
}

// frozenSet holds one plan's per-node freezes, indexed by node id.
type frozenSet struct {
	rels   []*relation.Relation
	tables []*joinTable
	au     []*nullSplit
}

// Prepare computes the freeze of p against base.
func (p *Plan) Prepare(base *relation.Database) *Prepared {
	prep := &Prepared{p: p, base: base,
		frozen:    map[*Plan]*frozenSet{},
		subRels:   map[*Plan]*relation.Relation{},
		subSplits: map[*Plan]*nullSplit{},
	}
	// Freeze subplans innermost-first (they are appended outermost-first
	// during compilation), so outer freezes reuse inner ones. A static
	// subquery root was already materialized by freezeNodes; reuse it.
	for i := len(p.subs) - 1; i >= 0; i-- {
		sub := p.subs[i]
		prep.freezeNodes(sub)
		if r := prep.frozen[sub].rels[sub.root.base().id]; r != nil {
			prep.subRels[sub] = r
			if p.mode == algebra.ModeSQL {
				prep.subSplits[sub] = splitNulls(r)
			}
		}
	}
	prep.freezeNodes(p)
	return prep
}

// static reports whether the node's result is world-invariant: it reads no
// active domain and only relations that exist in the base database and
// contain no nulls.
func (prep *Prepared) static(n pnode) bool {
	rs := n.base().reads
	if rs.dom {
		return false
	}
	for _, name := range rs.names {
		rel := prep.base.Relation(name)
		if rel == nil || rel.HasNulls() {
			return false
		}
	}
	return true
}

// freezeNodes walks q's operator tree and materializes every maximal
// static node; below non-static joins and anti-unify operators whose right
// input froze, the derived build table / split is frozen too.
func (prep *Prepared) freezeNodes(q *Plan) {
	fs := &frozenSet{
		rels:   make([]*relation.Relation, len(q.nodes)),
		tables: make([]*joinTable, len(q.nodes)),
		au:     make([]*nullSplit, len(q.nodes)),
	}
	prep.frozen[q] = fs
	var walk func(n pnode)
	walk = func(n pnode) {
		if prep.static(n) {
			fs.rels[n.base().id] = prep.run(q, n)
			return
		}
		for _, c := range n.children() {
			walk(c)
		}
		switch n := n.(type) {
		case *pjoin:
			if r := fs.rels[n.right.base().id]; r != nil {
				tb := newJoinTable(n.rkeys)
				r.EachUnordered(func(t value.Tuple, m int) {
					tb.add(t, m, q.mode)
				})
				fs.tables[n.base().id] = tb
			}
		case *pantiunify:
			if r := fs.rels[n.r.base().id]; r != nil {
				fs.au[n.base().id] = splitNulls(r)
			}
		}
	}
	walk(q.root)
}

// run materializes one node of q against the base database, reusing
// already-frozen inner results.
func (prep *Prepared) run(q *Plan, n pnode) *relation.Relation {
	x := &exec{db: prep.base, prep: prep, mode: q.mode, bag: q.bag, plan: q,
		subRels: map[*Plan]*relation.Relation{}, subSplits: map[*Plan]*nullSplit{}}
	if s, ok := n.(*pscan); ok {
		// A static base relation is shared as-is: stored rows are immutable
		// and every consumer is read-only.
		return x.source(s.name)
	}
	out := relation.NewArity("t", n.base().width)
	n.run(x, out.AddMult)
	return out
}

// Exec evaluates the plan against a world derived from the prepared base.
func (prep *Prepared) Exec(world *relation.Database) *relation.Relation {
	return prep.p.exec(world, prep)
}
