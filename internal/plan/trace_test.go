package plan

import (
	"strings"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/raparse"
)

// traceQueries is the equivalence corpus: every physical node kind the
// compiler emits (scan, select, project, join, antijoin via minus,
// union, product) over testDB's mix of null-free and null-carrying
// relations.
var traceQueries = []string{
	"R",
	"proj(0, R)",
	"sel(eq(0, 2), times(R, S))",
	"proj(1, sel(eq(0, 2), times(R, S)))",
	"minus(proj(0, R), proj(0, S))",
	"union(proj(0, R), proj(0, S))",
	"sel(in(1, T), S)",
	"proj(1, sel(not(in(0, proj(0, S))), R))",
}

// TestTracedExecutionByteIdentical: executing a plan with full-detail
// tracing must return exactly the result an untraced execution returns —
// for every query in the corpus, in every mode, under set and bag
// semantics, and both fresh and through prepared (frozen-subplan) state.
// Tracing only observes the batch stream; it must never reorder, copy or
// re-derive it.
func TestTracedExecutionByteIdentical(t *testing.T) {
	db := testDB()
	for _, src := range traceQueries {
		q, err := raparse.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		for _, mode := range []algebra.Mode{algebra.ModeNaive, algebra.ModeSQL} {
			for _, bag := range []bool{false, true} {
				want := PlanFor(q, db, mode, bag).Exec(db).String()

				tr := NewTrace(true)
				got := PlanFor(q, db, mode, bag).ExecTraced(db, tr).String()
				if got != want {
					t.Errorf("%q mode=%v bag=%v: traced result differs\nuntraced %s\ntraced   %s",
						src, mode, bag, want, got)
				}
				if tr.Execs.Load() != 1 {
					t.Errorf("%q: Execs = %d, want 1", src, tr.Execs.Load())
				}

				// Prepared path: frozen subplans replay through the tracer.
				prep := PlanFor(q, db, mode, bag).Prepare(db)
				prep.Exec(db) // warm any lazily frozen state
				tr2 := NewTrace(true)
				if got := prep.ExecTraced(db, tr2).String(); got != want {
					t.Errorf("%q mode=%v bag=%v: traced prepared result differs\nuntraced %s\ntraced   %s",
						src, mode, bag, want, got)
				}
			}
		}
	}
}

// TestTraceCountsFrozenReuse: executing a prepared plan with a frozen
// null-free subplan reports the reuse on the trace.
func TestTraceCountsFrozenReuse(t *testing.T) {
	db := testDB()
	q, err := raparse.ParseQuery("minus(proj(0, R), proj(0, S))")
	if err != nil {
		t.Fatal(err)
	}
	prep := PlanFor(q, db, algebra.ModeNaive, false).Prepare(db)
	tr := NewTrace(false)
	prep.ExecTraced(db, tr)
	if tr.FrozenReuse.Load() == 0 {
		t.Fatalf("prepared execution with frozen subplans reported 0 reuses")
	}
}

// TestDescribeAnalyzeAttachesActuals: EXPLAIN ANALYZE carries per-node
// actual row counts and wall time alongside the estimates, and its text
// rendering shows them.
func TestDescribeAnalyzeAttachesActuals(t *testing.T) {
	db := testDB()
	q, err := raparse.ParseQuery("proj(1, sel(not(in(0, proj(0, S))), R))")
	if err != nil {
		t.Fatal(err)
	}
	info := DescribeAnalyze(q, db, algebra.ModeNaive, false, db, nil)
	if !info.Analyzed {
		t.Fatalf("info.Analyzed = false")
	}
	if info.Execs < 1 {
		t.Fatalf("info.Execs = %d, want >= 1", info.Execs)
	}
	want := PlanFor(q, db, algebra.ModeNaive, false).Exec(db)
	if info.ResultRows != int64(want.Len()) {
		t.Fatalf("info.ResultRows = %d, want %d", info.ResultRows, want.Len())
	}
	var walk func(n *ExplainNode) int
	walk = func(n *ExplainNode) int {
		count := 0
		if n.ActualRows != nil {
			count++
		}
		for _, c := range n.Children {
			count += walk(c)
		}
		return count
	}
	if got := walk(info.Physical); got == 0 {
		t.Fatalf("no node carries actual rows: %+v", info.Physical)
	}
	if n := info.Physical; n.ActualRows == nil || *n.ActualRows != int64(want.Len()) {
		t.Fatalf("root actual rows = %v, want %d", n.ActualRows, want.Len())
	}
	text := info.Text()
	if !strings.Contains(text, "actual") {
		t.Fatalf("analyze text has no actuals:\n%s", text)
	}

	// Estimates still present and untouched by the traced run: the same
	// query described without analyze reports the same estimated rows.
	plain := Describe(q, db, algebra.ModeNaive, false, db)
	switch pe, ae := plain.Physical.EstRows, info.Physical.EstRows; {
	case (pe == nil) != (ae == nil):
		t.Fatalf("analyze changed estimate presence: %v vs %v", ae, pe)
	case pe != nil && *pe != *ae:
		t.Fatalf("analyze changed the root estimate: %v vs %v", *ae, *pe)
	}
}
