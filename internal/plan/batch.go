package plan

import (
	"incdb/internal/relation"
	"incdb/internal/value"
)

// BatchRows is the target number of rows per batch flowing between physical
// operators: large enough to amortize the per-call overhead of the old
// emit-per-tuple protocol across a cache-friendly chunk, small enough that
// a batch of tuple headers stays resident while the consumer walks it.
const BatchRows = 256

// vbatch is one batch of rows in flight between operators: parallel slices
// of tuples and their multiplicities.
//
// Ownership protocol: a batch passed to an emit callback is valid only for
// the duration of the call — the producer reuses the containers (rows,
// mults) for the next batch. The tuples themselves are immutable: they
// point either into stored relation rows or into an arena slab that is
// never rewritten once a row has been emitted, so a consumer may retain
// tuple headers (hash-table builds, dedup sets) but never the batch or
// subslices of rows/mults.
type vbatch struct {
	rows  []value.Tuple
	mults []int
}

// outBuf is one operator's per-execution output buffer: the batch being
// filled plus the arena slab that backs tuples the operator constructs
// (joined rows, narrowed scans, projections). Buffers live in the exec, not
// the node, so one immutable plan can execute concurrently; the per-plan
// pool below recycles them so a per-world oracle loop reuses one set of
// buffers per worker shard.
type outBuf struct {
	vbatch
	slab []value.Value
	// scratch is a per-node reusable tuple for transient evaluations that
	// never escape the operator (a join's residual check on the full
	// concatenation when only projected columns are emitted).
	scratch value.Tuple
}

// push appends one row and flushes at the batch target.
func (o *outBuf) push(t value.Tuple, m int, emit func(*vbatch)) {
	o.rows = append(o.rows, t)
	o.mults = append(o.mults, m)
	if len(o.rows) >= BatchRows {
		o.flush(emit)
	}
}

// flush hands the pending batch to the consumer and resets the containers.
func (o *outBuf) flush(emit func(*vbatch)) {
	if len(o.rows) == 0 {
		return
	}
	emit(&o.vbatch)
	o.rows = o.rows[:0]
	o.mults = o.mults[:0]
}

// alloc carves an n-wide tuple out of the arena slab. The three-index slice
// caps the tuple at its own region, so a later append through the returned
// header can never clobber a neighbouring row.
func (o *outBuf) alloc(n int) value.Tuple {
	if cap(o.slab)-len(o.slab) < n {
		c := 4 * BatchRows
		for c < n {
			c *= 2
		}
		o.slab = make([]value.Value, 0, c)
	}
	l := len(o.slab)
	o.slab = o.slab[:l+n]
	return value.Tuple(o.slab[l : l+n : l+n])
}

// unalloc returns the most recent alloc to the slab. Only legal while the
// row has not been emitted (a join rewinds rows whose residual failed);
// emitted rows are permanent for the lifetime of the execution.
func (o *outBuf) unalloc(n int) {
	o.slab = o.slab[:len(o.slab)-n]
}

// reset clears the buffer for reuse by a later execution. Rewinding the
// slab is safe exactly because no arena tuple outlives its execution: every
// materialization boundary (relation.AddMult, root output, frozen results)
// clones tuples into relation-owned storage, and in-flight consumers (join
// tables, dedup sets, null splits) die with the exec that filled them.
func (o *outBuf) reset() {
	o.rows = o.rows[:0]
	o.mults = o.mults[:0]
	o.slab = o.slab[:0]
}

// acquireBufs returns a per-execution buffer set for the plan's nodes,
// recycled through the plan's pool. sync.Pool gives the per-worker-shard
// reuse the oracles want for free: each worker goroutine executing worlds
// back to back keeps getting its own warm buffer set.
func (p *Plan) acquireBufs() []outBuf {
	if v := p.bufPool.Get(); v != nil {
		return *(v.(*[]outBuf))
	}
	return make([]outBuf, len(p.nodes))
}

func (p *Plan) releaseBufs(bufs []outBuf) {
	for i := range bufs {
		bufs[i].reset()
	}
	p.bufPool.Put(&bufs)
}

// out returns the executing node's output buffer.
func (x *exec) out(n pnode) *outBuf {
	return &x.bufs[n.base().id]
}

// relSink adapts a relation to the batch protocol (materialization
// boundaries: node freezes, matRel, the root output). AddMult clones, so
// arena-backed tuples never leak into a relation.
func relSink(out *relation.Relation) func(*vbatch) {
	return func(b *vbatch) {
		for i, t := range b.rows {
			out.AddMult(t, b.mults[i])
		}
	}
}
