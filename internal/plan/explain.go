package plan

import (
	"fmt"
	"sort"
	"strings"

	"incdb/internal/algebra"
	"incdb/internal/relation"
)

// Explain renders the optimized logical expression and the physical
// operator tree for q. When base is non-nil the plan is additionally
// prepared against it and world-invariant (frozen) subplans are marked:
// those are computed once per oracle call and shared across all valuations.
// The used-column masks of algebra.UsedColumns are reported alongside,
// since they drive the certain oracle's valuation-space pruning that
// composes with plan reuse.
func Explain(q algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, base *relation.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:    %s\n", q)
	opt := Optimize(q, cat)
	fmt.Fprintf(&b, "logical:  %s\n", opt)
	sem := "set"
	if bag {
		sem = "bag"
	}
	fmt.Fprintf(&b, "mode:     %s, %s semantics\n", mode, sem)

	p := compile(q, cat, mode, bag)
	var prep *Prepared
	if base != nil {
		prep = p.Prepare(base)
	}
	b.WriteString("physical:\n")
	explainTree(&b, p, p.root, prep, 1)
	for i, sub := range p.subs {
		fmt.Fprintf(&b, "subquery %d (set semantics):\n", i)
		explainTree(&b, sub, sub.root, prep, 1)
	}

	if usedExplainable(q) {
		used := algebra.UsedColumns(q, cat)
		names := make([]string, 0, len(used))
		for name := range used {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("used columns:\n")
		for _, name := range names {
			cols := []string{}
			for i, u := range used[name] {
				if u {
					cols = append(cols, fmt.Sprintf("%d", i))
				}
			}
			fmt.Fprintf(&b, "  %s: [%s]\n", name, strings.Join(cols, ","))
		}
	}
	return b.String()
}

// usedExplainable reports whether UsedColumns applies (it needs a
// well-formed expression; Dom-reading queries use every column anyway).
func usedExplainable(q algebra.Expr) bool {
	_, usesDom := algebra.RelationsOf(q)
	return !usesDom
}

func explainTree(b *strings.Builder, q *Plan, n pnode, prep *Prepared, depth int) {
	marker := ""
	if prep != nil {
		if fs := prep.frozen[q]; fs != nil && fs.rels[n.base().id] != nil {
			marker = "  [frozen across worlds]"
		} else if j, ok := n.(*pjoin); ok && fs != nil && fs.tables[j.base().id] != nil {
			marker = "  [build side frozen]"
		}
	}
	fmt.Fprintf(b, "%s%s%s\n", strings.Repeat("  ", depth), n.describe(), marker)
	if marker == "" || !strings.Contains(marker, "frozen across") {
		for _, c := range n.children() {
			explainTree(b, q, c, prep, depth+1)
		}
	}
}
