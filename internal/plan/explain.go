package plan

import (
	"incdb/internal/algebra"
	"incdb/internal/relation"
)

// Explain renders the optimized logical expression and the physical
// operator tree for q as text. When base is non-nil the plan is
// additionally prepared against it and world-invariant (frozen) subplans
// are marked: those are computed once per oracle call and shared across all
// valuations. Explain is Describe followed by ExplainInfo.Text; consumers
// that need the structured form (JSON explain, the server endpoint) call
// Describe directly, so both outputs come from one rendering path.
func Explain(q algebra.Expr, cat algebra.Catalog, mode algebra.Mode, bag bool, base *relation.Database) string {
	return Describe(q, cat, mode, bag, base).Text()
}

// usedExplainable reports whether UsedColumns applies (it needs a
// well-formed expression; Dom-reading queries use every column anyway).
func usedExplainable(q algebra.Expr) bool {
	_, usesDom := algebra.RelationsOf(q)
	return !usesDom
}
