package plan

import (
	"fmt"

	"incdb/internal/algebra"
	"incdb/internal/logic"
	"incdb/internal/value"
)

// pcond is a compiled selection condition. Conditions without IN subqueries
// are evaluated directly off the algebra AST; IN atoms are compiled into
// references to shared subplans so that the per-row probe never re-renders
// or re-resolves the subquery.
type pcond interface {
	fmt.Stringer
	eval(x *exec, t value.Tuple) logic.TV
	reads() readSet
}

// catomic is a condition subtree containing no IN atoms.
type catomic struct{ c algebra.Cond }

// cand/cor/cnot are connectives over subtrees that do contain IN atoms.
type cand struct{ l, r pcond }
type cor struct{ l, r pcond }
type cnot struct{ c pcond }

// cin is a compiled (cols) IN (sub) probe.
type cin struct {
	cols []int
	sub  *Plan
	str  string
}

func (c catomic) String() string { return c.c.String() }
func (c cand) String() string    { return "(" + c.l.String() + " ∧ " + c.r.String() + ")" }
func (c cor) String() string     { return "(" + c.l.String() + " ∨ " + c.r.String() + ")" }
func (c cnot) String() string    { return "¬(" + c.c.String() + ")" }
func (c cin) String() string     { return c.str }

func (c catomic) reads() readSet { return readSet{} }
func (c cand) reads() readSet    { return c.l.reads().union(c.r.reads()) }
func (c cor) reads() readSet     { return c.l.reads().union(c.r.reads()) }
func (c cnot) reads() readSet    { return c.c.reads() }
func (c cin) reads() readSet     { return c.sub.root.base().reads }

// compileCond compiles one conjunct. The common IN-free case keeps the
// algebra AST and pays no indirection.
func (c *compiler) compileCond(cond algebra.Cond) pcond {
	if !condHasIn(cond) {
		return catomic{c: cond}
	}
	switch cond := cond.(type) {
	case algebra.And:
		return cand{l: c.compileCond(cond.L), r: c.compileCond(cond.R)}
	case algebra.Or:
		return cor{l: c.compileCond(cond.L), r: c.compileCond(cond.R)}
	case algebra.Not:
		return cnot{c: c.compileCond(cond.C)}
	case algebra.InSub:
		return cin{cols: cond.Cols, sub: c.subFor(cond.Sub), str: cond.String()}
	}
	panic(fmt.Sprintf("plan: compileCond: unexpected condition %T", cond))
}

func condHasIn(c algebra.Cond) bool {
	switch c := c.(type) {
	case algebra.And:
		return condHasIn(c.L) || condHasIn(c.R)
	case algebra.Or:
		return condHasIn(c.L) || condHasIn(c.R)
	case algebra.Not:
		return condHasIn(c.C)
	case algebra.InSub:
		return true
	}
	return false
}

func (c catomic) eval(x *exec, t value.Tuple) logic.TV {
	return evalAtomic(c.c, t, x.mode)
}
func (c cand) eval(x *exec, t value.Tuple) logic.TV {
	return logic.And(c.l.eval(x, t), c.r.eval(x, t))
}
func (c cor) eval(x *exec, t value.Tuple) logic.TV {
	return logic.Or(c.l.eval(x, t), c.r.eval(x, t))
}
func (c cnot) eval(x *exec, t value.Tuple) logic.TV {
	return logic.Not(c.c.eval(x, t))
}

// eval mirrors the reference interpreter's evalIn: under naive evaluation
// one set-membership probe; under SQL's three-valued semantics a null-free
// probe is answered by one hash hit on the null-free part of the subquery
// result plus a scan of its (typically few) rows with nulls.
func (c cin) eval(x *exec, t value.Tuple) logic.TV {
	probe := t.Project(c.cols)
	if x.mode == algebra.ModeNaive {
		return logic.FromBool(x.subRel(c.sub).Contains(probe))
	}
	split := x.subSplit(c.sub)
	if !probe.HasNull() {
		if split.nullFree.Contains(probe) {
			return logic.T
		}
		res := logic.F
		for _, row := range split.withNulls {
			res = logic.Or(res, tupleEq(probe, row, x.mode))
		}
		return res
	}
	// A probe with nulls can match no row with t in SQL mode; fold for u
	// vs f over both parts (order-insensitive).
	res := logic.F
	for _, row := range split.withNulls {
		res = logic.Or(res, tupleEq(probe, row, x.mode))
		if res == logic.T {
			return logic.T
		}
	}
	done := false
	split.nullFree.EachUnordered(func(row value.Tuple, _ int) {
		if done {
			return
		}
		res = logic.Or(res, tupleEq(probe, row, x.mode))
		if res == logic.T {
			done = true
		}
	})
	return res
}

// evalAtomic evaluates an IN-free condition on a tuple, mirroring the
// reference interpreter exactly: two-valued with nulls as fresh constants
// under ModeNaive, Kleene three-valued with null comparisons unknown under
// ModeSQL.
func evalAtomic(c algebra.Cond, t value.Tuple, mode algebra.Mode) logic.TV {
	switch c := c.(type) {
	case algebra.True:
		return logic.T
	case algebra.False:
		return logic.F
	case algebra.Eq:
		return evalEq(t[c.I], t[c.J], mode)
	case algebra.EqConst:
		return evalEq(t[c.I], c.C, mode)
	case algebra.Neq:
		return logic.Not(evalEq(t[c.I], t[c.J], mode))
	case algebra.NeqConst:
		return logic.Not(evalEq(t[c.I], c.C, mode))
	case algebra.Less:
		return evalLess(t[c.I], t[c.J], mode)
	case algebra.LessConst:
		return evalLess(t[c.I], c.C, mode)
	case algebra.GreaterConst:
		return evalLess(c.C, t[c.I], mode)
	case algebra.IsNull:
		return logic.FromBool(t[c.I].IsNull())
	case algebra.IsConst:
		return logic.FromBool(t[c.I].IsConst())
	case algebra.And:
		return logic.And(evalAtomic(c.L, t, mode), evalAtomic(c.R, t, mode))
	case algebra.Or:
		return logic.Or(evalAtomic(c.L, t, mode), evalAtomic(c.R, t, mode))
	case algebra.Not:
		return logic.Not(evalAtomic(c.C, t, mode))
	}
	panic(fmt.Sprintf("plan: evalAtomic: unknown condition %T", c))
}

func evalEq(a, b value.Value, mode algebra.Mode) logic.TV {
	if mode == algebra.ModeSQL && (a.IsNull() || b.IsNull()) {
		return logic.U
	}
	return logic.FromBool(a == b)
}

func evalLess(a, b value.Value, mode algebra.Mode) logic.TV {
	if mode == algebra.ModeSQL && (a.IsNull() || b.IsNull()) {
		return logic.U
	}
	return logic.FromBool(value.Less(a, b))
}

func tupleEq(a, b value.Tuple, mode algebra.Mode) logic.TV {
	eq := logic.T
	for i := range a {
		eq = logic.And(eq, evalEq(a[i], b[i], mode))
	}
	return eq
}
