package homomorphism

import (
	"testing"

	"incdb/internal/relation"
	"incdb/internal/value"
)

func n(id uint64) value.Value { return value.Null(id) }

func mkdb(tuples ...value.Tuple) *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	for _, t := range tuples {
		r.Add(t)
	}
	db.Add(r)
	return db
}

func TestFindAnyHomomorphism(t *testing.T) {
	// {R(1,⊥1), R(⊥1,2)} → {R(1,c), R(c,2)}: ⊥1 ↦ c.
	src := mkdb(value.T(value.Const("1"), n(1)), value.T(n(1), value.Const("2")))
	dst := mkdb(value.Consts("1", "c"), value.Consts("c", "2"))
	h, ok := Find(src, dst, Any)
	if !ok {
		t.Fatalf("expected a homomorphism")
	}
	if h.Apply(n(1)) != value.Const("c") {
		t.Fatalf("h(⊥1) = %v, want c", h.Apply(n(1)))
	}
	// Constants are fixed: there is no hom into a database missing them.
	bad := mkdb(value.Consts("9", "9"))
	if _, ok := Find(src, bad, Any); ok {
		t.Fatalf("constants must be preserved")
	}
}

// The paper's example after Theorem 4.3: D = {R(⊥1,⊥2)} and
// D' = {R(1,2), R(2,1)}: h(⊥1)=1, h(⊥2)=2 is onto but not strong onto.
func TestOntoVsStrongOnto(t *testing.T) {
	src := mkdb(value.T(n(1), n(2)))
	dst := mkdb(value.Consts("1", "2"), value.Consts("2", "1"))
	if _, ok := Find(src, dst, Any); !ok {
		t.Fatalf("plain homomorphism must exist")
	}
	if _, ok := Find(src, dst, Onto); !ok {
		t.Fatalf("onto homomorphism must exist: h maps {⊥1,⊥2} onto {1,2}")
	}
	if _, ok := Find(src, dst, StrongOnto); ok {
		t.Fatalf("no strong onto homomorphism: R(2,1) has no preimage")
	}
}

func TestInSemantics(t *testing.T) {
	src := mkdb(value.T(n(1), n(2)))
	// cwa world: exactly the image.
	w1 := mkdb(value.Consts("5", "5"))
	if !InSemantics(src, w1, StrongOnto) {
		t.Fatalf("{R(5,5)} must be a cwa possible world of {R(⊥1,⊥2)}")
	}
	// owa world: image plus extra facts.
	w2 := mkdb(value.Consts("5", "5"), value.Consts("7", "8"))
	if InSemantics(src, w2, StrongOnto) {
		t.Fatalf("extra facts are not allowed under cwa")
	}
	if !InSemantics(src, w2, Any) {
		t.Fatalf("extra facts are fine under owa")
	}
	// Incomplete targets are not worlds.
	w3 := mkdb(value.T(n(9), value.Const("5")))
	if InSemantics(src, w3, Any) {
		t.Fatalf("worlds must be complete")
	}
}

func TestHomOverMissingRelation(t *testing.T) {
	src := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	src.Add(r)
	s := relation.New("S", "a")
	src.Add(s) // empty S
	dst := relation.NewDatabase()
	r2 := relation.New("R", "a")
	r2.Add(value.Consts("1"))
	dst.Add(r2)
	// Empty source relation missing in dst is fine.
	if _, ok := Find(src, dst, Any); !ok {
		t.Fatalf("empty relations need no counterpart")
	}
	// Non-empty source relation missing in dst fails.
	s.Add(value.Consts("2"))
	if _, ok := Find(src, dst, Any); ok {
		t.Fatalf("S(2) cannot map anywhere")
	}
}

func TestApplyTuple(t *testing.T) {
	h := Hom{1: value.Const("x")}
	got := h.ApplyTuple(value.T(n(1), value.Const("k"), n(2)))
	if !got.Equal(value.T(value.Const("x"), value.Const("k"), n(2))) {
		t.Fatalf("ApplyTuple = %v", got)
	}
}
