// Package homomorphism implements database homomorphisms and the
// homomorphism-based semantics of incompleteness from Section 4.1 of the
// paper: D' ∈ ⟦D⟧owa iff a homomorphism D → D' fixes all constants, and
// D' ∈ ⟦D⟧ (cwa) iff such a homomorphism is strong onto (h(D) = D').
// Theorem 4.3 ties naive evaluation to preservation under these classes.
package homomorphism

import (
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Class is a class of homomorphisms in the sense of Section 4.1.
type Class int

const (
	// Any is the class of all homomorphisms (identity on constants):
	// the owa semantics.
	Any Class = iota
	// Onto requires h(dom(D)) = dom(D'): surjective on active domains.
	Onto
	// StrongOnto requires h(D) = D' tuple-wise: the cwa semantics.
	StrongOnto
)

func (c Class) String() string {
	switch c {
	case Any:
		return "any"
	case Onto:
		return "onto"
	case StrongOnto:
		return "strong-onto"
	}
	return "unknown"
}

// Hom is a homomorphism: a map on the active domain fixing constants; only
// the null bindings are recorded.
type Hom map[uint64]value.Value

// Apply maps a value through the homomorphism.
func (h Hom) Apply(v value.Value) value.Value {
	if v.IsNull() {
		if w, ok := h[v.NullID()]; ok {
			return w
		}
	}
	return v
}

// ApplyTuple maps a tuple through the homomorphism.
func (h Hom) ApplyTuple(t value.Tuple) value.Tuple {
	out := make(value.Tuple, len(t))
	for i, v := range t {
		out[i] = h.Apply(v)
	}
	return out
}

// Find searches for a homomorphism src → dst of the given class that is
// the identity on constants. It returns the witness and whether one
// exists. The search backtracks over assignments of src's nulls to dst's
// active domain; intended for the small structures of tests and
// experiments.
func Find(src, dst *relation.Database, class Class) (Hom, bool) {
	ids := src.NullIDs()
	targets := dst.ActiveDomain()
	h := Hom{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(ids) {
			return check(src, dst, h, class)
		}
		for _, target := range targets {
			h[ids[i]] = target
			if rec(i + 1) {
				return true
			}
		}
		delete(h, ids[i])
		return false
	}
	if rec(0) {
		return h, true
	}
	return nil, false
}

func check(src, dst *relation.Database, h Hom, class Class) bool {
	// Tuple preservation: h(D) ⊆ D'.
	for _, name := range src.Names() {
		s := src.Relation(name)
		d := dst.Relation(name)
		if d == nil {
			if s.Len() > 0 {
				return false
			}
			continue
		}
		ok := true
		s.Each(func(t value.Tuple, _ int) {
			if !d.Contains(h.ApplyTuple(t)) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	switch class {
	case Any:
		return true
	case Onto:
		// h(dom(src)) = dom(dst).
		covered := map[value.Value]bool{}
		for _, v := range src.ActiveDomain() {
			covered[h.Apply(v)] = true
		}
		for _, v := range dst.ActiveDomain() {
			if !covered[v] {
				return false
			}
		}
		return true
	case StrongOnto:
		// h(D) = D': every dst tuple is an image.
		for _, name := range dst.Names() {
			d := dst.Relation(name)
			s := src.Relation(name)
			img := relation.NewArity("img", d.Arity())
			if s != nil {
				s.Each(func(t value.Tuple, _ int) { img.Add(h.ApplyTuple(t)) })
			}
			ok := true
			d.Each(func(t value.Tuple, _ int) {
				if !img.Contains(t) {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	return false
}

// InSemantics reports whether world ∈ ⟦db⟧_H for the class: world must be
// complete and admit a homomorphism of the class from db.
func InSemantics(db, world *relation.Database, class Class) bool {
	if !world.IsComplete() {
		return false
	}
	_, ok := Find(db, world, class)
	return ok
}
