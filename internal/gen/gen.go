// Package gen produces seeded random incomplete databases and random
// relational algebra queries for property-based tests and experiments.
// Everything is driven by an explicit *rand.Rand so that test failures
// reproduce deterministically.
package gen

import (
	"math/rand"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Config controls random database generation.
type Config struct {
	// MaxTuples bounds the tuples per relation (at least 1 row ranges).
	MaxTuples int
	// NullRate in [0,1] is the probability that a position holds a null.
	NullRate float64
	// NullPool is the number of distinct null ids to draw from; small
	// pools produce repeated (marked) nulls across tuples.
	NullPool int
	// ConstPool is the number of distinct constants ("c0", "c1", …).
	ConstPool int
}

// DefaultConfig is small enough for exhaustive certain-answer oracles.
func DefaultConfig() Config {
	return Config{MaxTuples: 4, NullRate: 0.3, NullPool: 3, ConstPool: 4}
}

// Schema returns the fixed test schema: R(a,b), S(x), T(u,v).
func Schema() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.New("R", "a", "b"))
	db.Add(relation.New("S", "x"))
	db.Add(relation.New("T", "u", "v"))
	return db
}

// DB generates a random incomplete database over Schema().
func DB(r *rand.Rand, cfg Config) *relation.Database {
	db := relation.NewDatabase()
	for _, spec := range []struct {
		name  string
		attrs []string
	}{
		{"R", []string{"a", "b"}},
		{"S", []string{"x"}},
		{"T", []string{"u", "v"}},
	} {
		rel := relation.New(spec.name, spec.attrs...)
		n := r.Intn(cfg.MaxTuples + 1)
		for i := 0; i < n; i++ {
			t := make(value.Tuple, len(spec.attrs))
			for j := range t {
				t[j] = randValue(r, cfg)
			}
			rel.Add(t)
		}
		db.Add(rel)
	}
	return db
}

// Relation generates one random relation of the given name and arity with
// 1..MaxTuples rows drawn under cfg. Callers pass per-relation configs with
// different MaxTuples to build skewed join inputs (the planner-equivalence
// corpus uses this to make the cost-based join order actually matter).
func Relation(r *rand.Rand, name string, arity int, cfg Config) *relation.Relation {
	rel := relation.NewArity(name, arity)
	n := 1 + r.Intn(cfg.MaxTuples)
	for i := 0; i < n; i++ {
		t := make(value.Tuple, arity)
		for j := range t {
			t[j] = randValue(r, cfg)
		}
		rel.Add(t)
	}
	return rel
}

func randValue(r *rand.Rand, cfg Config) value.Value {
	if r.Float64() < cfg.NullRate && cfg.NullPool > 0 {
		return value.Null(uint64(r.Intn(cfg.NullPool)) + 1)
	}
	return value.Const("c" + string(rune('0'+r.Intn(cfg.ConstPool))))
}

// ConstOf returns the i-th pool constant, for building conditions that hit
// generated data.
func ConstOf(i int) value.Value {
	return value.Const("c" + string(rune('0'+i)))
}

// QueryConfig controls random query generation.
type QueryConfig struct {
	// MaxDepth bounds operator nesting.
	MaxDepth int
	// Fragment restricts the operators used.
	Fragment Fragment
	// ConstPool mirrors Config.ConstPool for condition constants.
	ConstPool int
	// InSubRate in [0,1] is the probability that a condition atom is an
	// uncorrelated IN-subquery probe. Zero (the default) keeps queries
	// inside the fragments every consumer supports; the planner-equivalence
	// corpus raises it to exercise the IN compilation paths.
	InSubRate float64
}

// Fragment names a class of queries from the paper.
type Fragment int

const (
	// FragmentUCQ generates unions of conjunctive queries: σ, π, ×, ∪
	// with positive conditions (=, const tests) only.
	FragmentUCQ Fragment = iota
	// FragmentPosForallG adds division ÷ to the UCQ operators (Pos∀G).
	FragmentPosForallG
	// FragmentFull is full relational algebra: adds − and ≠ conditions.
	FragmentFull
)

// DefaultQueryConfig generates full relational algebra of modest depth.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{MaxDepth: 3, Fragment: FragmentFull, ConstPool: 4}
}

// Query generates a random query of the given output arity (1 or 2 advised)
// against the gen.Schema() catalogue.
func Query(r *rand.Rand, cfg QueryConfig, arity int) algebra.Expr {
	return genExpr(r, cfg, cfg.MaxDepth, arity)
}

// baseRel returns a base relation of exactly the wanted arity, or a
// projection/product adapter when none fits.
func baseRel(r *rand.Rand, arity int) algebra.Expr {
	switch arity {
	case 1:
		if r.Intn(2) == 0 {
			return algebra.R("S")
		}
		which := []string{"R", "T"}[r.Intn(2)]
		return algebra.Proj(algebra.R(which), r.Intn(2))
	case 2:
		if r.Intn(2) == 0 {
			return algebra.R("R")
		}
		return algebra.R("T")
	default:
		// Build by products of R/S/T projections.
		e := baseRel(r, 1)
		for have := 1; have < arity; have++ {
			e = algebra.Times(e, baseRel(r, 1))
		}
		return e
	}
}

func genExpr(r *rand.Rand, cfg QueryConfig, depth, arity int) algebra.Expr {
	if depth <= 0 {
		return baseRel(r, arity)
	}
	// Operator menu depends on the fragment.
	type op int
	const (
		opBase op = iota
		opSelect
		opProject
		opProduct
		opUnion
		opDiff
		opDivide
	)
	menu := []op{opBase, opSelect, opProject, opUnion}
	if arity >= 2 {
		menu = append(menu, opProduct)
	}
	if cfg.Fragment == FragmentPosForallG {
		menu = append(menu, opDivide)
	}
	if cfg.Fragment == FragmentFull {
		menu = append(menu, opDiff, opDiff) // weight difference up: it is the interesting case
	}
	switch menu[r.Intn(len(menu))] {
	case opBase:
		return baseRel(r, arity)
	case opSelect:
		in := genExpr(r, cfg, depth-1, arity)
		return algebra.Sel(in, genCond(r, cfg, arity))
	case opProject:
		wide := arity + 1 + r.Intn(2)
		in := genExpr(r, cfg, depth-1, wide)
		// Distinct columns: the paper's projections are onto attribute
		// lists without repetition (required by the Figure 2(a) rules).
		perm := r.Perm(wide)
		cols := append([]int(nil), perm[:arity]...)
		return algebra.Proj(in, cols...)
	case opProduct:
		left := 1 + r.Intn(arity-1)
		return algebra.Times(genExpr(r, cfg, depth-1, left), genExpr(r, cfg, depth-1, arity-left))
	case opUnion:
		return algebra.Un(genExpr(r, cfg, depth-1, arity), genExpr(r, cfg, depth-1, arity))
	case opDiff:
		return algebra.Minus(genExpr(r, cfg, depth-1, arity), genExpr(r, cfg, depth-1, arity))
	case opDivide:
		// Pos∀G permits division by a relation of the schema only
		// (Section 4.1), so the divisor is always the base relation S.
		return algebra.Div(genExpr(r, cfg, depth-1, arity+1), algebra.R("S"))
	}
	return baseRel(r, arity)
}

func genCond(r *rand.Rand, cfg QueryConfig, arity int) algebra.Cond {
	atom := func() algebra.Cond {
		i := r.Intn(arity)
		j := r.Intn(arity)
		if cfg.InSubRate > 0 && r.Float64() < cfg.InSubRate {
			// Uncorrelated IN probe over a shallow unary subquery; the
			// subquery draws no IN atoms itself, keeping generation finite.
			subCfg := cfg
			subCfg.InSubRate = 0
			sub := genExpr(r, subCfg, 1, 1)
			c := algebra.CIn(sub, i)
			if r.Intn(2) == 0 {
				return algebra.CNot(c)
			}
			return c
		}
		cst := ConstOf(r.Intn(cfg.ConstPool))
		// Conditions use the comparison atoms only. const/null tests are
		// deliberately absent: a source query's semantics lives on
		// complete possible worlds where const(A) is trivially true (the
		// tests exist for *translated* queries); and UCQ/Pos∀G must stay
		// within =, since disequalities are not preserved under
		// homomorphisms (Theorem 4.3).
		positive := []func() algebra.Cond{
			func() algebra.Cond { return algebra.CEq(i, j) },
			func() algebra.Cond { return algebra.CEqC(i, cst) },
		}
		if cfg.Fragment == FragmentFull {
			positive = append(positive,
				func() algebra.Cond { return algebra.CNeq(i, j) },
				func() algebra.Cond { return algebra.CNeqC(i, cst) },
			)
		}
		return positive[r.Intn(len(positive))]()
	}
	switch r.Intn(4) {
	case 0:
		return algebra.CAnd(atom(), atom())
	case 1:
		return algebra.COr(atom(), atom())
	default:
		return atom()
	}
}
