package gen

import (
	"math/rand"
	"testing"

	"incdb/internal/algebra"
)

func TestDBMatchesSchema(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	for i := 0; i < 50; i++ {
		db := DB(r, cfg)
		for _, name := range []string{"R", "S", "T"} {
			if db.Relation(name) == nil {
				t.Fatalf("missing relation %s", name)
			}
		}
		if db.Arity("R") != 2 || db.Arity("S") != 1 || db.Arity("T") != 2 {
			t.Fatalf("schema arities wrong")
		}
	}
}

func TestDBDeterministicPerSeed(t *testing.T) {
	a := DB(rand.New(rand.NewSource(7)), DefaultConfig())
	b := DB(rand.New(rand.NewSource(7)), DefaultConfig())
	if !a.Equal(b) {
		t.Fatalf("same seed must give same database")
	}
}

func TestNullRateZeroMeansComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NullRate = 0
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if !DB(r, cfg).IsComplete() {
			t.Fatalf("rate 0 must yield complete databases")
		}
	}
}

func TestQueriesValidateAndHaveRequestedArity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cat := Schema()
	for _, frag := range []Fragment{FragmentUCQ, FragmentPosForallG, FragmentFull} {
		cfg := DefaultQueryConfig()
		cfg.Fragment = frag
		for i := 0; i < 200; i++ {
			arity := 1 + r.Intn(2)
			q := Query(r, cfg, arity)
			if err := algebra.Validate(q, cat); err != nil {
				t.Fatalf("fragment %v: invalid query %s: %v", frag, q, err)
			}
			if got := algebra.Arity(q, cat); got != arity {
				t.Fatalf("fragment %v: arity %d, want %d: %s", frag, got, arity, q)
			}
		}
	}
}

func TestFragmentsRestrictOperators(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cfg := DefaultQueryConfig()
	cfg.Fragment = FragmentUCQ
	var checkPositive func(e algebra.Expr) bool
	var checkCond func(c algebra.Cond) bool
	checkCond = func(c algebra.Cond) bool {
		switch c := c.(type) {
		case algebra.And:
			return checkCond(c.L) && checkCond(c.R)
		case algebra.Or:
			return checkCond(c.L) && checkCond(c.R)
		case algebra.Eq, algebra.EqConst, algebra.True, algebra.False:
			return true
		default:
			return false
		}
	}
	checkPositive = func(e algebra.Expr) bool {
		switch e := e.(type) {
		case algebra.Rel:
			return true
		case algebra.Select:
			return checkPositive(e.In) && checkCond(e.Cond)
		case algebra.Project:
			return checkPositive(e.In)
		case algebra.Product:
			return checkPositive(e.L) && checkPositive(e.R)
		case algebra.Union:
			return checkPositive(e.L) && checkPositive(e.R)
		default:
			return false
		}
	}
	for i := 0; i < 300; i++ {
		q := Query(r, cfg, 1)
		if !checkPositive(q) {
			t.Fatalf("UCQ fragment produced a non-positive query: %s", q)
		}
	}
}

func TestProjectionsUseDistinctColumns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cfg := DefaultQueryConfig()
	var check func(e algebra.Expr) bool
	check = func(e algebra.Expr) bool {
		switch e := e.(type) {
		case algebra.Project:
			seen := map[int]bool{}
			for _, c := range e.Cols {
				if seen[c] {
					return false
				}
				seen[c] = true
			}
			return check(e.In)
		case algebra.Select:
			return check(e.In)
		case algebra.Product:
			return check(e.L) && check(e.R)
		case algebra.Union:
			return check(e.L) && check(e.R)
		case algebra.Diff:
			return check(e.L) && check(e.R)
		case algebra.Divide:
			return check(e.L) && check(e.R)
		default:
			return true
		}
	}
	for i := 0; i < 300; i++ {
		q := Query(r, cfg, 1+r.Intn(2))
		if !check(q) {
			t.Fatalf("repeated projection column in %s", q)
		}
	}
}

func TestConstOf(t *testing.T) {
	if ConstOf(2).ConstVal() != "c2" {
		t.Fatalf("ConstOf broken")
	}
}
