// Package engine is the shared parallel-execution substrate of the
// library: a bounded worker pool with context cancellation and
// deterministic, shard-ordered result collection.
//
// The exponential oracles of internal/certain, the valuation counting of
// internal/prob and the per-row grounding of internal/ctable all reduce to
// the same shape — a large, embarrassingly parallel index space whose
// per-index work is pure and whose results merge associatively. Map and
// Search cover that shape: Map fans n shards out over a fixed number of
// goroutines and returns the per-shard results in shard order, so that any
// order-sensitive reduction performed by the caller is byte-identical to
// the serial computation; Search is the existential variant that cancels
// all remaining work as soon as one shard reports a hit.
//
// Workers=1 always degenerates to a plain loop on the calling goroutine,
// which is the reference semantics every parallel caller is tested against.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures the pool. The zero value means "use every core".
type Options struct {
	// Workers is the maximum number of concurrent goroutines. Zero (or
	// negative) means runtime.NumCPU(); 1 forces serial execution on the
	// calling goroutine.
	Workers int
}

// WorkerCount resolves the effective worker count.
func (o Options) WorkerCount() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

// Serial reports whether the options request serial execution.
func (o Options) Serial() bool { return o.WorkerCount() == 1 }

// Split partitions the index space [0, n) into at most parts contiguous
// half-open ranges of near-equal size, in ascending order. Empty ranges are
// omitted, so the result has min(n, parts) entries (none when n <= 0).
// Oversharding — asking for more parts than workers — is the intended way
// to load-balance shards of uneven cost.
func Split(n, parts int) [][2]int {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		// Distribute the remainder over the leading shards.
		hi := lo + n/parts
		if i < n%parts {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
		lo = hi
	}
	return out
}

// MinParallel is the work-item count below which fan-out cannot pay for
// goroutine startup: callers guarding a serial fallback should compare
// their item count (worlds, rows, patterns) against this single constant
// so the threshold cannot drift between subsystems.
const MinParallel = 64

// Chunked computes out[i] = f(i) for i in [0, n), fanning contiguous index
// chunks out over eng's workers when n reaches threshold (use MinParallel
// unless the per-item cost warrants otherwise; threshold <= 0 means
// MinParallel). Workers write disjoint ranges and the output order is the
// input order, so the result is identical to the serial loop. f must be
// pure. A panic in f is re-thrown on the calling goroutine with its
// original value, exactly as the serial loop would.
func Chunked[T any](eng Options, n, threshold int, f func(i int) T) []T {
	out := make([]T, n)
	if threshold <= 0 {
		threshold = MinParallel
	}
	if eng.WorkerCount() <= 1 || n < threshold {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	shards := Split(n, eng.WorkerCount()*4)
	_, err := Map(context.Background(), eng, len(shards),
		func(_ context.Context, si int) (_ struct{}, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = panicErr{r}
				}
			}()
			for i := shards[si][0]; i < shards[si][1]; i++ {
				out[i] = f(i)
			}
			return struct{}{}, nil
		})
	if err != nil {
		if pe, ok := err.(panicErr); ok {
			panic(pe.v)
		}
		panic(err)
	}
	return out
}

// panicErr smuggles a worker panic value through the pool's error channel.
type panicErr struct{ v any }

func (p panicErr) Error() string { return fmt.Sprint(p.v) }

// Canceled reports whether ctx has been canceled. Workers iterating large
// shards should poll it periodically (every few hundred items) so that
// Search hits and Map errors propagate promptly.
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Flag is a set-once boolean shared across workers, for caller-level early
// exits that are hints rather than cancellations (e.g. "the intersection is
// already empty"): setters and readers need no further synchronization.
type Flag struct{ v atomic.Bool }

// Set raises the flag.
func (f *Flag) Set() { f.v.Store(true) }

// IsSet reports whether the flag has been raised.
func (f *Flag) IsSet() bool { return f.v.Load() }

// Map runs f on every shard index in [0, n) using at most
// opts.WorkerCount() goroutines and returns the results in shard order.
// The first error cancels the context passed to the remaining workers and
// is returned; results computed so far are discarded. f must be safe to
// call concurrently from multiple goroutines.
func Map[T any](ctx context.Context, opts Options, n int, f func(ctx context.Context, shard int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	results := make([]T, n)
	workers := opts.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := f(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || Canceled(wctx) {
					return
				}
				r, err := f(wctx, i)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Search runs pred on shard indices in [0, n) and reports whether any shard
// returned true, canceling the context seen by the remaining workers on the
// first hit. Like Map it degenerates to an ordered serial loop (with its
// usual short-circuit) when Workers is 1. The first error wins and
// suppresses the boolean result.
func Search(ctx context.Context, opts Options, n int, pred func(ctx context.Context, shard int) (bool, error)) (bool, error) {
	if n <= 0 {
		return false, ctx.Err()
	}
	workers := opts.WorkerCount()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			hit, err := pred(ctx, i)
			if err != nil {
				return false, err
			}
			if hit {
				return true, nil
			}
		}
		return false, nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		found    atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || Canceled(wctx) {
					return
				}
				hit, err := pred(wctx, i)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				if hit {
					found.Store(true)
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return false, firstErr
	}
	if !found.Load() {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	return found.Load(), nil
}
