package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSplitCoversRangeInOrder(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {8, 3}, {9, 3}, {100, 7}, {5, 5}, {3, 100},
	} {
		shards := Split(tc.n, tc.parts)
		want := tc.parts
		if tc.n < want {
			want = tc.n
		}
		if tc.n <= 0 {
			if shards != nil {
				t.Errorf("Split(%d,%d) = %v, want nil", tc.n, tc.parts, shards)
			}
			continue
		}
		if len(shards) != want {
			t.Errorf("Split(%d,%d): %d shards, want %d", tc.n, tc.parts, len(shards), want)
		}
		next := 0
		for _, s := range shards {
			if s[0] != next {
				t.Fatalf("Split(%d,%d): shard starts at %d, want %d", tc.n, tc.parts, s[0], next)
			}
			if s[1] <= s[0] {
				t.Fatalf("Split(%d,%d): empty shard %v", tc.n, tc.parts, s)
			}
			next = s[1]
		}
		if next != tc.n {
			t.Errorf("Split(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.parts, next, tc.n)
		}
	}
}

func TestSplitBalance(t *testing.T) {
	shards := Split(10, 4)
	min, max := 10, 0
	for _, s := range shards {
		size := s[1] - s[0]
		if size < min {
			min = size
		}
		if size > max {
			max = size
		}
	}
	if max-min > 1 {
		t.Errorf("Split(10,4) sizes spread %d..%d, want near-equal", min, max)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), Options{Workers: workers}, 37,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), Options{Workers: workers}, 64,
			func(_ context.Context, i int) (int, error) {
				if i == 5 {
					return 0, boom
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestMapErrorCancelsWorkers(t *testing.T) {
	var after atomic.Int64
	_, err := Map(context.Background(), Options{Workers: 4}, 1000,
		func(ctx context.Context, i int) (int, error) {
			if i == 0 {
				return 0, fmt.Errorf("first shard fails")
			}
			if Canceled(ctx) {
				after.Add(1)
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	// Not asserting a count: cancellation is advisory. The call must simply
	// terminate (deadlock/livelock would hang the test) and report the error.
}

func TestMapRespectsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, Options{Workers: 3}, 10,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSearchFindsWitness(t *testing.T) {
	for _, workers := range []int{1, 4} {
		found, err := Search(context.Background(), Options{Workers: workers}, 100,
			func(_ context.Context, i int) (bool, error) { return i == 73, nil })
		if err != nil || !found {
			t.Errorf("workers=%d: found=%v err=%v, want true,nil", workers, found, err)
		}
		found, err = Search(context.Background(), Options{Workers: workers}, 100,
			func(_ context.Context, i int) (bool, error) { return false, nil })
		if err != nil || found {
			t.Errorf("workers=%d: found=%v err=%v, want false,nil", workers, found, err)
		}
	}
}

func TestSearchSerialShortCircuits(t *testing.T) {
	visited := 0
	found, err := Search(context.Background(), Options{Workers: 1}, 100,
		func(_ context.Context, i int) (bool, error) { visited++; return i == 3, nil })
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if visited != 4 {
		t.Errorf("visited %d shards, want 4", visited)
	}
}

func TestSearchCancelsAfterHit(t *testing.T) {
	var polls atomic.Int64
	found, err := Search(context.Background(), Options{Workers: 4}, 500,
		func(ctx context.Context, i int) (bool, error) {
			polls.Add(1)
			return i == 2, nil
		})
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if polls.Load() == 500 {
		t.Log("cancellation did not prune any shard (legal but unexpected)")
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Options{}).WorkerCount(); got < 1 {
		t.Errorf("default WorkerCount = %d, want >= 1", got)
	}
	if got := (Options{Workers: -3}).WorkerCount(); got < 1 {
		t.Errorf("negative WorkerCount = %d, want >= 1", got)
	}
	if !(Options{Workers: 1}).Serial() {
		t.Error("Workers=1 should be serial")
	}
}

func TestFlag(t *testing.T) {
	var f Flag
	if f.IsSet() {
		t.Error("zero Flag is set")
	}
	f.Set()
	if !f.IsSet() {
		t.Error("Set did not stick")
	}
}

// TestPoolStress drives many concurrent shards through shared state under
// the race detector (go test -race): per-shard sums land in ordered slots
// while a shared counter takes the atomic traffic.
func TestPoolStress(t *testing.T) {
	var total atomic.Int64
	const shards = 331
	got, err := Map(context.Background(), Options{Workers: 16}, shards,
		func(_ context.Context, i int) (int64, error) {
			var local int64
			for j := 0; j < 100; j++ {
				local += int64(i)
				total.Add(1)
			}
			return local, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, r := range got {
		if r != int64(i)*100 {
			t.Fatalf("shard %d: %d, want %d", i, r, int64(i)*100)
		}
		sum += r
	}
	if total.Load() != shards*100 {
		t.Errorf("shared counter %d, want %d", total.Load(), shards*100)
	}
	if want := int64(shards) * (shards - 1) / 2 * 100; sum != want {
		t.Errorf("sum %d, want %d", sum, want)
	}
}
