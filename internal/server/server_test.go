package server

import (
	"encoding/json"

	"fmt"
	"incdb/internal/api"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

const ordersData = `
rel Customers cid name
rel Orders oid cid
rel Payments oid
row Customers c1 'Ann'
row Customers c2 'Bob'
row Orders o1 c1
row Orders o2 _1
row Payments o1
`

// unpaid is a certain-answer workload: orders with no payment. o2 is
// certain regardless of how ⊥1 is resolved.
const unpaid = "proj(0, sel(not(in(0, Payments)), Orders))"

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(New(Options{Workers: 2}).Handler())
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, "test")
}

func sessionStatus(t *testing.T, c *Client, name string) api.SessionStatus {
	t.Helper()
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	for _, s := range st.Sessions {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("session %q not in status %+v", name, st)
	return api.SessionStatus{}
}

func TestLoadQueryStatusRoundTrip(t *testing.T) {
	_, c := newTestServer(t)
	lr, err := c.Load(ordersData, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(lr.Relations) != 3 {
		t.Fatalf("load reported %d relations, want 3", len(lr.Relations))
	}

	qr, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(qr.Results) != 1 {
		t.Fatalf("cert returned %d resultsets, want 1", len(qr.Results))
	}
	if want := [][]string{{"o2"}}; !reflect.DeepEqual(qr.Results[0].Rows, want) {
		t.Fatalf("cert rows = %v, want %v", qr.Results[0].Rows, want)
	}

	ss := sessionStatus(t, c, "test")
	if ss.Queries != 1 {
		t.Fatalf("status queries = %d, want 1", ss.Queries)
	}
	for _, rel := range ss.Relations {
		if rel.Name == "Orders" && rel.Rows != 2 {
			t.Fatalf("status Orders rows = %d, want 2", rel.Rows)
		}
	}
}

// TestRepeatedQueryHitsPreparedCache is the acceptance path: a repeated
// certain-answer query against an unchanged session database reuses the
// cached Prepared, observable via the /v1/status cache counters, with
// byte-identical results.
func TestRepeatedQueryHitsPreparedCache(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	first, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	cold := sessionStatus(t, c, "test").Cache
	if cold.Misses == 0 {
		t.Fatalf("cold query did not miss the cache: %+v", cold)
	}
	// Re-spell the query each round (extra whitespace — same canonical
	// rendering, so the same prepared plan) so the byte-exact result cache
	// stays out of the way and the prepared-plan path itself is exercised.
	for i := 0; i < 3; i++ {
		respelled := strings.Replace(unpaid, "proj(0,", "proj( 0,"+strings.Repeat(" ", i+1), 1)
		again, err := c.Query(respelled, "cert", false, 0)
		if err != nil {
			t.Fatalf("warm query %d: %v", i, err)
		}
		if again.Cached {
			t.Fatalf("respelled query %d must not hit the result cache", i)
		}
		if !reflect.DeepEqual(again.Results, first.Results) {
			t.Fatalf("warm result differs: %+v vs %+v", again.Results, first.Results)
		}
	}
	warm := sessionStatus(t, c, "test").Cache
	if warm.Hits == 0 {
		t.Fatalf("warm queries did not hit the cache: %+v", warm)
	}
	if warm.Misses != cold.Misses {
		t.Fatalf("warm queries missed: cold %+v warm %+v", cold, warm)
	}
	if warm.Invalidations != 0 {
		t.Fatalf("no mutation happened, yet invalidations = %d", warm.Invalidations)
	}
}

// TestResultCache: a byte-identical repeated query is answered from the
// oracle result cache (Cached flag, hit counter) without touching the
// prepared-plan cache; a mutation moves the version vector and the next
// evaluation repopulates it.
func TestResultCache(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	first, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if first.Cached {
		t.Fatalf("cold query reported cached")
	}
	prepBefore := sessionStatus(t, c, "test").Cache
	again, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !again.Cached {
		t.Fatalf("byte-identical repeat did not hit the result cache")
	}
	if !reflect.DeepEqual(again.Results, first.Results) {
		t.Fatalf("cached result differs: %+v vs %+v", again.Results, first.Results)
	}
	ss := sessionStatus(t, c, "test")
	if ss.ResultCache.Hits != 1 || ss.ResultCache.Entries == 0 {
		t.Fatalf("result cache counters: %+v", ss.ResultCache)
	}
	if ss.Cache.Hits != prepBefore.Hits || ss.Cache.Misses != prepBefore.Misses {
		t.Fatalf("result-cache hit touched the prepared-plan cache: %+v -> %+v", prepBefore, ss.Cache)
	}
	// Same query under a different procedure must not alias.
	other, err := c.Query(unpaid, "sql", false, 0)
	if err != nil {
		t.Fatalf("sql query: %v", err)
	}
	if other.Cached {
		t.Fatalf("different procedure served from the cert result entry")
	}
	// A mutation moves the version vector: the stale entry is unreachable.
	if _, err := c.Load("row Orders o9 c1\nrow Payments o9", true); err != nil {
		t.Fatalf("append: %v", err)
	}
	after, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("post-mutation query: %v", err)
	}
	if after.Cached {
		t.Fatalf("mutated session served a stale cached result")
	}
	if !reflect.DeepEqual(after.Results, first.Results) {
		t.Fatalf("post-mutation certain answers changed: %+v", after.Results)
	}
}

// TestMutationInvalidatesExactlyAffectedEntries: appending rows to a
// relation invalidates the cached plans reading it — and only those — and
// subsequent queries see the new data.
func TestMutationInvalidatesExactlyAffectedEntries(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	// Warm two entries: one reading Orders+Payments, one reading Customers.
	if _, err := c.Query(unpaid, "cert", false, 0); err != nil {
		t.Fatalf("warm unpaid: %v", err)
	}
	customers := "proj(0, Customers)"
	if _, err := c.Query(customers, "naive", false, 0); err != nil {
		t.Fatalf("warm customers: %v", err)
	}
	if _, err := c.Query(customers, "naive", false, 0); err != nil {
		t.Fatalf("re-warm customers: %v", err)
	}
	before := sessionStatus(t, c, "test").Cache

	// A new order arrives and is paid immediately: Orders and Payments
	// both mutate mid-session; the certain unpaid set stays {o2}.
	if _, err := c.Load("row Orders o3 c2\nrow Payments o3", true); err != nil {
		t.Fatalf("append: %v", err)
	}
	qr, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("post-mutation query: %v", err)
	}
	if want := [][]string{{"o2"}}; !reflect.DeepEqual(qr.Results[0].Rows, want) {
		t.Fatalf("after paid o3, unpaid cert = %v, want %v", qr.Results[0].Rows, want)
	}
	mid := sessionStatus(t, c, "test").Cache
	// The stale entry must not serve: either its version guard failed (an
	// invalidation) or the mutation moved the statistics epoch in the cache
	// key (a miss that compiles afresh).
	if mid.Invalidations == 0 && mid.Misses == before.Misses {
		t.Fatalf("mutation neither invalidated nor recompiled: before %+v after %+v", before, mid)
	}

	// The Customers entry was untouched: querying it again must hit.
	if _, err := c.Query(customers, "naive", false, 0); err != nil {
		t.Fatalf("customers after mutation: %v", err)
	}
	after := sessionStatus(t, c, "test").Cache
	if after.Hits <= mid.Hits {
		t.Fatalf("unaffected entry did not hit after mutation: %+v -> %+v", mid, after)
	}
	if after.Invalidations != mid.Invalidations {
		t.Fatalf("unaffected entry was invalidated: %+v -> %+v", mid, after)
	}
}

// TestConcurrentQueriesShareCache runs many concurrent requests over one
// session (run under -race): results must all be byte-identical to the
// serial answer while sharing one prepared-plan cache.
func TestConcurrentQueriesShareCache(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	want, err := c.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}

	var wg sync.WaitGroup
	procs := []string{"cert", "sql", "naive", "inter"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				proc := procs[(g+i)%len(procs)]
				qr, err := c.Query(unpaid, proc, false, 0)
				if err != nil {
					t.Errorf("concurrent %s: %v", proc, err)
					return
				}
				if proc == "cert" && !reflect.DeepEqual(qr.Results, want.Results) {
					t.Errorf("concurrent cert differs: %+v", qr.Results)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := sessionStatus(t, c, "test").Cache
	if st.Hits == 0 {
		t.Fatalf("concurrent load shared no prepared state: %+v", st)
	}
}

// TestConcurrentMutationAndQueries interleaves appends with queries (run
// under -race): every response must be internally consistent — the unpaid
// answer shrinks monotonically as payments arrive, and no request may
// observe a torn database.
func TestConcurrentMutationAndQueries(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := c.Load(fmt.Sprintf("row Orders ox%d c1\nrow Payments ox%d", i, i), true); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			qr, err := c.Query(unpaid, "cert", false, 0)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			// Every paid order appears with its payment in one append, so
			// the certain unpaid set is always exactly {o2}.
			if len(qr.Results[0].Rows) != 1 || qr.Results[0].Rows[0][0] != "o2" {
				t.Errorf("query %d saw torn state: %v", i, qr.Results[0].Rows)
				return
			}
		}
	}()
	wg.Wait()
}

func TestAllProcs(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	q := "minus(proj(0, Orders), Payments)"
	for _, proc := range Procs() {
		qr, err := c.Query(q, proc, false, 0)
		if err != nil {
			t.Fatalf("proc %s: %v", proc, err)
		}
		wantSets := 1
		if strings.HasPrefix(proc, "ctable-") {
			wantSets = 2
		}
		if len(qr.Results) != wantSets {
			t.Fatalf("proc %s: %d resultsets, want %d", proc, len(qr.Results), wantSets)
		}
	}
}

func TestExplainEndpointSharesPlanRendering(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	er, err := c.Explain(unpaid, true, false)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if er.Plan == nil || er.Plan.Physical == nil {
		t.Fatalf("explain returned no structured plan: %+v", er)
	}
	if !strings.Contains(er.Text, "physical:") {
		t.Fatalf("explain text missing physical tree:\n%s", er.Text)
	}
	// The IN subquery must carry the semi-join dedup, visible in both
	// renderings.
	if !strings.Contains(er.Text, "distinct (semi-join dedup)") {
		t.Fatalf("explain text missing semi-join dedup:\n%s", er.Text)
	}
	data, _ := json.Marshal(er.Plan)
	if !strings.Contains(string(data), "distinct (semi-join dedup)") {
		t.Fatalf("structured plan missing semi-join dedup:\n%s", data)
	}
}

func TestErrors(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Query("proj(0, R)", "sql", false, 0); err == nil {
		t.Fatal("query against unknown session did not fail")
	}
	if _, err := c.Load("nonsense line", false); err == nil {
		t.Fatal("bad load did not fail")
	}
	// A failed first load must not leave a phantom session behind.
	if st, err := c.Status(); err != nil || len(st.Sessions) != 0 {
		t.Fatalf("failed load left sessions: %+v (err %v)", st.Sessions, err)
	}
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Query("proj(9, Orders)", "sql", false, 0); err == nil {
		t.Fatal("invalid query did not fail")
	}
	if _, err := c.Query(unpaid, "no-such-proc", false, 0); err == nil {
		t.Fatal("unknown proc did not fail")
	}
	if _, err := c.Load("rel Orders a b c", true); err == nil {
		t.Fatal("arity-clashing append did not fail")
	}
}

// TestAppendIsAtomic: a payload that fails mid-parse must leave the
// session database untouched, so the client can fix it and re-post
// without duplicating the valid prefix.
func TestAppendIsAtomic(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	before := sessionStatus(t, c, "test")
	bad := "row Orders o9 c1\nrow Payments o9\nrow Nope x\n"
	if _, err := c.Load(bad, true); err == nil {
		t.Fatal("append with an unknown relation did not fail")
	}
	after := sessionStatus(t, c, "test")
	if !reflect.DeepEqual(after.Relations, before.Relations) {
		t.Fatalf("failed append mutated the database:\nbefore %+v\nafter  %+v",
			before.Relations, after.Relations)
	}
	// Re-posting the fixed payload applies exactly once.
	if _, err := c.Load("row Orders o9 c1\nrow Payments o9\n", true); err != nil {
		t.Fatalf("fixed append: %v", err)
	}
	for _, rel := range sessionStatus(t, c, "test").Relations {
		if rel.Name == "Orders" && rel.Rows != 3 {
			t.Fatalf("Orders rows = %d after retry, want 3", rel.Rows)
		}
	}
}

// TestSessionsAreIsolated: two sessions with the same relation names do
// not share data or cache entries.
func TestSessionsAreIsolated(t *testing.T) {
	srv, a := newTestServer(t)
	b := NewClient(srv.URL, "other")
	if _, err := a.Load(ordersData, false); err != nil {
		t.Fatalf("load a: %v", err)
	}
	if _, err := b.Load(ordersData+"row Payments o2\n", false); err != nil {
		t.Fatalf("load b: %v", err)
	}
	qa, err := a.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("query a: %v", err)
	}
	qb, err := b.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("query b: %v", err)
	}
	if len(qa.Results[0].Rows) != 1 || len(qb.Results[0].Rows) != 0 {
		t.Fatalf("sessions not isolated: a=%v b=%v", qa.Results[0].Rows, qb.Results[0].Rows)
	}
}
