package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/api"
	"incdb/internal/engine"
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
	"incdb/internal/store"
)

// Options configures the service.
type Options struct {
	// Workers sizes the engine pool the certainty oracles shard their
	// valuation enumeration over: 0 means one per CPU, 1 forces the serial
	// reference path (results never depend on it).
	Workers int
	// MaxInFlight bounds concurrently evaluating requests (query and
	// explain); further requests wait, failing with 503 when the client
	// gives up first. Zero means twice the engine worker count — enough to
	// keep the pool busy without unbounded queueing.
	MaxInFlight int
	// MaxWorlds is the default bound on the certainty oracles' valuation
	// enumeration (0 = certain.DefaultMaxWorlds); a request may override it.
	MaxWorlds int
	// CacheCap is each session's prepared-plan cache capacity
	// (0 = plan.DefaultPrepCacheCap).
	CacheCap int
	// ResultCacheCap is each session's oracle result cache capacity
	// (0 = a server default); see resultCache.
	ResultCacheCap int
	// SnapshotBytes is the per-session WAL size beyond which a durable
	// server snapshots and compacts (0 = store.DefaultSnapshotBytes);
	// meaningful only after EnableDurability.
	SnapshotBytes int64
	// StaleWait is how long a replica blocks for replication to cover a
	// request's consistency token before answering 412 stale_replica
	// (0 = 2s).
	StaleWait time.Duration
	// ShutdownGrace is how long ListenAndServe waits for in-flight
	// requests after its context is canceled (0 = 5s).
	ShutdownGrace time.Duration
	// WriteTimeout bounds how long one response may take to write (0 =
	// unlimited, the default: oracle queries may legitimately run long).
	// The WAL streaming endpoint is exempt — it writes indefinitely by
	// design and clears its own deadline.
	WriteTimeout time.Duration
	// SlowQuery is the elapsed-time threshold above which an evaluated
	// query is logged (query text, proc, worlds enumerated, plan summary)
	// and counted in incdb_slow_queries_total. Zero disables the log.
	SlowQuery time.Duration
	// Logger receives the server's structured log records (slow queries,
	// request-scoped warnings); nil means slog.Default().
	Logger *slog.Logger
	// TraceSample is the distributed-tracing head-sampling rate in [0, 1]:
	// the fraction of fresh traces kept. Zero disables tracing entirely
	// (the default for embedded servers; incdbd passes 1.0 unless
	// -trace-sample says otherwise). While tracing is enabled, slow and
	// failed requests are always captured regardless of the rate, and a
	// request arriving with a traceparent header keeps its carried
	// sampling decision — every server of a fleet agrees on one trace.
	TraceSample float64
	// TraceCap bounds the in-memory span ring GET /v1/traces serves from
	// (spans, not traces; 0 = obs.DefaultSpanCap).
	TraceCap int
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 2 * engine.Options{Workers: o.Workers}.WorkerCount()
}

func (o Options) staleWait() time.Duration {
	if o.StaleWait > 0 {
		return o.StaleWait
	}
	return 2 * time.Second
}

func (o Options) shutdownGrace() time.Duration {
	if o.ShutdownGrace > 0 {
		return o.ShutdownGrace
	}
	return 5 * time.Second
}

// Server is the incdbd service: named sessions, each owning one incomplete
// database and one version-guarded prepared-plan cache. All handlers are
// safe for concurrent use; database mutation (load or replicated apply)
// excludes running queries per session via an RWMutex, so queries always
// see a consistent database and cache guards are checked under the same
// read lock.
type Server struct {
	opts    Options
	start   time.Time
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request-ID middleware
	logger  *slog.Logger

	// obs is the server's metrics surface (see metrics.go); waiting counts
	// requests blocked on admission, reqID numbers requests for the logs.
	obs     *metrics
	waiting atomic.Int64
	reqID   atomic.Uint64

	// tracer samples and stores distributed-trace spans (see trace.go);
	// nil when Options.TraceSample is zero — every span call site is
	// nil-safe, so a tracing-off server pays nothing.
	tracer *obs.Tracer

	sem      chan struct{}
	inflight atomic.Int64

	// st is the durability subsystem; nil for a memory-only server. Set
	// once by EnableDurability before serving.
	st *store.Store

	// repl is the replication subsystem; nil unless this server follows a
	// primary. Set by StartFollow before serving — a non-nil repl makes
	// every load handler read-only — and atomically cleared by a promotion,
	// which flips the follower into a writable primary mid-serve.
	repl atomic.Pointer[replicator]

	// epoch is the server's replication epoch: the highest epoch it has
	// written under, recovered, or observed. fenced latches when a server
	// that believed itself primary observes a higher epoch (a promoted
	// successor exists): it then refuses every write with
	// fenced_stale_primary, so a revived old primary can never accept a
	// divergent mutation. promoteMu serializes promotions.
	epoch     atomic.Uint64
	fenced    atomic.Bool
	promoteMu sync.Mutex

	// draining latches when graceful shutdown begins: new mutations are
	// refused (shutting_down) while in-flight ones finish and the final
	// fsync drain runs.
	draining atomic.Bool

	mu       sync.RWMutex
	sessions map[string]*session
}

// session is one named database with its prepared-plan and oracle-result
// caches, plus — when durability is enabled — its write-ahead log.
type session struct {
	name    string
	created time.Time
	queries atomic.Uint64

	// mu orders mutation against evaluation: load (append or replace) and
	// replicated apply take the write side, query/explain the read side.
	// The prepared state handed out by prep is itself safe for concurrent
	// execution.
	mu      sync.RWMutex
	db      *relation.Database
	prep    *plan.PrepCache
	results *resultCache
	warm    *warmSet

	// vecCh is closed (and replaced) whenever the version vector advances;
	// consistency-token waiters block on it. Guarded by mu.
	vecCh chan struct{}

	// replSeq is the last primary WAL sequence number applied to this
	// session (replica mode only; on a durable replica it mirrors
	// log.Seq()).
	replSeq atomic.Uint64

	// logMu serializes durable commits: it is held across the in-memory
	// apply (which takes mu) and the WAL Buffer (which does not), so the
	// log order is exactly the apply order; the group-commit fsync
	// (SessionLog.Sync) runs outside both, so concurrent loads batch into
	// shared fsyncs while queries proceed under the read lock. It also
	// covers snapshot installs and consistent snapshot exports.
	logMu sync.Mutex
	log   *store.SessionLog // nil when the server is memory-only
}

// bumpVector wakes consistency-token waiters after a mutation advanced the
// session's version vector. Caller holds the session write lock.
func (sess *session) bumpVector() {
	close(sess.vecCh)
	sess.vecCh = make(chan struct{})
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	s := &Server{
		opts:     opts,
		start:    time.Now(),
		sessions: map[string]*session{},
		sem:      make(chan struct{}, opts.maxInFlight()),
		logger:   opts.Logger,
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	if opts.TraceSample > 0 {
		s.tracer = obs.NewTracer(opts.TraceSample, opts.TraceCap)
	}
	s.obs = newMetrics(s)
	s.mux = http.NewServeMux()
	// Session-scoped routes: the session name lives in the path.
	s.mux.HandleFunc("POST /v1/sessions/{session}/load", func(w http.ResponseWriter, r *http.Request) {
		s.handleLoad(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("POST /v1/sessions/{session}/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("POST /v1/sessions/{session}/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handleExplain(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("GET /v1/sessions/{session}/status", s.handleSessionStatus)
	s.mux.HandleFunc("GET /v1/sessions/{session}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.handleSnapshot(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("GET /v1/sessions/{session}/wal", s.handleWAL)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	// Legacy flat routes (pre-PR-6 clients): thin shims that read the
	// session name from the request body or query string and delegate to
	// the same handlers.
	s.mux.HandleFunc("POST /v1/load", func(w http.ResponseWriter, r *http.Request) {
		s.handleLoad(w, r, "")
	})
	s.mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, "")
	})
	s.mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handleExplain(w, r, "")
	})
	s.mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.handleSnapshot(w, r, r.URL.Query().Get("session"))
	})
	s.handler = s.withRequestID(s.mux)
	return s
}

// newSession builds an empty session (no database, no log attached).
func (s *Server) newSession(name string) *session {
	return &session{
		name:    name,
		created: time.Now(),
		db:      relation.NewDatabase(),
		prep:    plan.NewPrepCache(s.opts.CacheCap),
		results: newResultCache(s.opts.ResultCacheCap),
		warm:    newWarmSet(),
		vecCh:   make(chan struct{}),
	}
}

// EnableDurability attaches a data directory: every session already on
// disk is recovered — database contents, version vectors, null identities
// restored to the last acknowledged load, prepared-plan cache re-warmed
// from the snapshot's warm keys — and every future load is written ahead
// and fsync'd before it is acknowledged. Must be called before serving.
func (s *Server) EnableDurability(dir string) error {
	st, err := store.Open(dir, store.Options{SnapshotBytes: s.opts.SnapshotBytes, Metrics: s.obs.wal, Trace: s.walTrace()})
	if err != nil {
		return err
	}
	recovered, err := st.Recover()
	if err != nil {
		return err
	}
	s.st = st
	for _, rec := range recovered {
		sess := s.newSession(rec.Name)
		sess.db = rec.DB
		sess.log = rec.Log
		sess.replSeq.Store(rec.Log.Seq())
		sess.warm.seed(rec.Warm)
		s.sessions[rec.Name] = sess
		s.warmSession(sess, rec.Warm)
		// Resume under the highest recovered epoch (direct store, not
		// observeEpoch: our own history is not evidence of a successor).
		if rec.Epoch > s.epoch.Load() {
			s.epoch.Store(rec.Epoch)
		}
		log.Printf("server: recovered session %q (%d relations, wal seq %d, epoch %d) and warmed %d plan(s)",
			rec.Name, len(rec.DB.Names()), rec.Log.Seq(), rec.Epoch, len(rec.Warm))
	}
	return nil
}

// Epoch returns the server's replication epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// role reports the server's failover role for status and probes.
func (s *Server) role() string {
	switch {
	case s.repl.Load() != nil:
		return api.RoleReplica
	case s.fenced.Load():
		return api.RoleFenced
	default:
		return api.RolePrimary
	}
}

// raiseEpoch lifts the server's epoch without the fencing side effect —
// for deliberate adoption, like an operator-directed snapshot restore.
func (s *Server) raiseEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// observeEpoch folds an externally observed epoch into the server's. A
// higher epoch than our own means another server has been promoted: a
// replica simply adopts it (its new primary writes under it), but a server
// that believed itself primary has been superseded and fences itself
// read-only — the write-safety half of epoch fencing.
func (s *Server) observeEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			if s.repl.Load() == nil {
				s.fenced.Store(true)
				log.Printf("server: observed epoch %d above own %d; fencing writes (a promoted primary exists)", e, cur)
			}
			return
		}
	}
}

// fenceCheck gates every mutation: it folds the client's observed epoch in
// (which may fence us) and refuses if this server is a fenced stale
// primary.
func (s *Server) fenceCheck(reqEpoch uint64) *api.Error {
	if reqEpoch > 0 {
		s.observeEpoch(reqEpoch)
	}
	if s.fenced.Load() {
		return api.Errorf(http.StatusConflict, api.CodeFencedStalePrimary,
			"this server is fenced at epoch %d (a newer primary exists); write to the current primary", s.epoch.Load())
	}
	return nil
}

// handlePromote flips a caught-up follower into the writable primary at
// epoch+1: replication is stopped and drained (every shipped record
// applied and mirrored), then each session durably commits an OpEpoch
// record under the new epoch — the promotion marker that replicates to any
// future follower and fences the old primary's unwritten future.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req api.PromoteRequest
	if err := decodeOptional(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if s.draining.Load() {
		s.fail(w, api.Errorf(http.StatusServiceUnavailable, api.CodeShuttingDown,
			"server is shutting down"))
		return
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	repl := s.repl.Load()
	if repl == nil {
		if s.fenced.Load() {
			s.fail(w, api.Errorf(http.StatusConflict, api.CodeFencedStalePrimary,
				"this server is a fenced stale primary (epoch %d); its history may have diverged — re-follow the current primary instead of promoting it", s.epoch.Load()))
			return
		}
		// Already primary: idempotent success at the current epoch.
		writeJSON(w, http.StatusOK, api.PromoteResponse{Epoch: s.epoch.Load(), Sessions: map[string]uint64{}})
		return
	}
	if !req.Force {
		if lag := repl.lag(); lag != "" {
			s.fail(w, api.Errorf(http.StatusConflict, api.CodeNotCaughtUp,
				"not caught up with primary (%s); retry shortly or promote with force", lag))
			return
		}
	}
	// Stop replication and drain its tail: after stop() returns, no follow
	// loop is applying records and every mirrored record's fsync has
	// completed — the epoch records commit onto a quiesced log.
	repl.stop()
	newEpoch := s.epoch.Load() + 1
	resp := api.PromoteResponse{Epoch: newEpoch, Sessions: map[string]uint64{}}
	s.mu.RLock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()
	for _, sess := range sessions {
		seq, err := s.commitEpoch(sess, newEpoch)
		if err != nil {
			// The session's log refused (e.g. fail-stopped): promotion is
			// aborted half-way — some sessions may already carry the new
			// epoch, which is safe (epochs only fence the old primary) but
			// this server stays a non-writable follower-without-a-feed until
			// the operator resolves the log. Surface it.
			s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
				"promote: session %q epoch record failed: %v", sess.name, err))
			return
		}
		resp.Sessions[sess.name] = seq
	}
	s.epoch.Store(newEpoch)
	s.fenced.Store(false)
	s.repl.Store(nil)
	log.Printf("server: promoted to primary at epoch %d (%d session(s))", newEpoch, len(sessions))
	writeJSON(w, http.StatusOK, resp)
}

// commitEpoch durably writes one session's promotion marker: an OpEpoch
// record carrying the new epoch and the session's current vector (so
// replay's vector cross-check still holds at that position).
func (s *Server) commitEpoch(sess *session, epoch uint64) (uint64, error) {
	sess.logMu.Lock()
	sess.mu.RLock()
	versions := sess.db.Versions()
	sess.mu.RUnlock()
	if sess.log == nil {
		sess.logMu.Unlock()
		return 0, nil
	}
	sess.log.SetEpoch(epoch)
	seq, err := sess.log.Buffer(store.OpEpoch, "", versions)
	sess.logMu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, sess.log.Sync(seq)
}

// handleHealthz is the liveness probe: the process is up and serving.
// (Recovery runs before the listener opens, so a reachable server has
// finished it.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.HealthResponse{Ok: true})
}

// handleReadyz is the readiness probe: 200 when this server should receive
// traffic — recovery finished (implied by serving), not draining for
// shutdown, and (on a follower) replication caught up with the primary as
// far as it can tell. Load balancers and the failover client probe this
// without deserializing full status.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Ok: false, Reason: "shutting down"})
		return
	}
	if repl := s.repl.Load(); repl != nil {
		if lag := repl.lag(); lag != "" {
			writeJSON(w, http.StatusServiceUnavailable, api.HealthResponse{Ok: false, Reason: lag})
			return
		}
	}
	writeJSON(w, http.StatusOK, api.HealthResponse{Ok: true})
}

// Close releases the durability subsystem's file handles (after serving
// stops); a memory-only server has nothing to close.
func (s *Server) Close() error {
	if s.st == nil {
		return nil
	}
	return s.st.Close()
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// maxBodyBytes caps request bodies (load payloads dominate); beyond it
// the JSON decoder fails with a 400 instead of buffering without bound.
const maxBodyBytes = 64 << 20

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// new mutations are refused first (shutting_down — nothing new enters the
// WAL while we leave), then the listener closes and in-flight requests get
// ShutdownGrace to finish, then a final fsync drain makes every buffered
// WAL record durable (replica mirrors fsync asynchronously, so records can
// be buffered with no load handler waiting on them). Header-read and idle
// timeouts guard against slow-client connection exhaustion; WriteTimeout
// is off by default, since oracle queries may legitimately run long — when
// enabled, the WAL streaming endpoint exempts itself (it writes
// indefinitely by design).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      s.opts.WriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), s.opts.shutdownGrace())
	defer cancel()
	serr := hs.Shutdown(sctx)
	s.drainLogs()
	if serr != nil {
		return fmt.Errorf("server: shutdown: %w", serr)
	}
	return nil
}

// drainLogs fsyncs every session's buffered WAL records — the final drain
// of graceful shutdown.
func (s *Server) drainLogs() {
	s.mu.RLock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()
	for _, sess := range sessions {
		if sess.log == nil {
			continue
		}
		if err := sess.log.Sync(sess.log.Seq()); err != nil {
			log.Printf("server: shutdown drain %q: %v", sess.name, err)
		}
	}
}

// acquire takes an evaluation slot, respecting the request context. A free
// slot is taken even when the context is already done (the fast path below
// never loses that race), so the error always means the caller actually
// waited: it reports the live in-flight gauge and the context's own cause
// so a client-side timeout is not misread as server saturation.
func (s *Server) acquire(ctx context.Context) *api.Error {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return api.Errorf(http.StatusServiceUnavailable, api.CodeOverloaded,
			"no evaluation slot (%d of %d in flight): %v",
			s.inflight.Load(), s.opts.maxInFlight(), ctx.Err())
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// sessionFor returns the named session, or nil.
func (s *Server) sessionFor(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// ensureSession returns the named session, creating an empty one on first
// use. On a durable server the session's write-ahead log is attached (and
// its directory created) here.
func (s *Server) ensureSession(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[name]; ok {
		return sess, nil
	}
	sess := s.newSession(name)
	if s.st != nil {
		l, err := s.st.Session(name)
		if err != nil {
			return nil, err
		}
		// A session born on a promoted (or recovered) server writes under
		// the server's epoch from its first record.
		l.SetEpoch(s.epoch.Load())
		sess.log = l
	}
	s.sessions[name] = sess
	return sess, nil
}

// Preload loads data (raparse text) into the named session before serving;
// it returns the number of relations loaded. Used by incdbd -load. On a
// durable server the preload commits through the WAL like any other load.
func (s *Server) Preload(session, data string) (int, error) {
	db, err := raparse.ParseDatabase(strings.NewReader(data))
	if err != nil {
		return 0, err
	}
	sess, err := s.ensureSession(session)
	if err != nil {
		return 0, err
	}
	resp, aerr := s.commitReplace(sess, db, store.OpReplace, data, nil)
	if aerr != nil {
		return 0, aerr
	}
	return len(resp.Relations), nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, name string) {
	var req api.LoadRequest
	if err := decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	if name == "" {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "missing session name"))
		return
	}
	if s.draining.Load() {
		s.fail(w, api.Errorf(http.StatusServiceUnavailable, api.CodeShuttingDown,
			"server is shutting down; load elsewhere"))
		return
	}
	if aerr := s.fenceCheck(req.Epoch); aerr != nil {
		s.fail(w, aerr)
		return
	}
	if repl := s.repl.Load(); repl != nil {
		s.fail(w, api.Errorf(http.StatusForbidden, api.CodeReadOnlyReplica,
			"this server follows %s; load data on the primary", repl.primary))
		return
	}
	if req.Snapshot {
		s.handleRestore(w, r, name, &req)
		return
	}
	if req.Append {
		if sess := s.sessionFor(name); sess != nil {
			resp, aerr := s.commitAppend(sess, req.Data, obs.SpanFromContext(r.Context()))
			if aerr != nil {
				s.fail(w, aerr)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Appending to a session that does not exist yet is its first load.
	}
	// Replace path: parse and validate the payload before the session is
	// even created, so a failed first load leaves no phantom empty session
	// behind and a failed replace leaves the old database untouched.
	db, err := raparse.ParseDatabase(strings.NewReader(req.Data))
	if err != nil {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	sess, err := s.ensureSession(name)
	if err != nil {
		s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err))
		return
	}
	resp, aerr := s.commitReplace(sess, db, store.OpReplace, req.Data, obs.SpanFromContext(r.Context()))
	if aerr != nil {
		s.fail(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRestore bootstraps (or resets) a session from a snapshot export —
// the payload a snapshot endpoint (possibly of another server) produced.
// Null identifiers and the version vector are preserved, and the
// snapshot's warm keys re-prepare the working set.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, name string, req *api.LoadRequest) {
	snap, err := store.DecodeSnapshot(strings.NewReader(req.Data))
	if err != nil {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	db, err := snap.Database()
	if err != nil {
		s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	sess, err := s.ensureSession(name)
	if err != nil {
		s.fail(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err))
		return
	}
	// An explicit restore adopts the snapshot's epoch (deliberate operator
	// action, not evidence of a concurrent successor — no fencing): the
	// OpRestore record and everything after it write at or above it.
	if sess.log != nil {
		sess.log.SetEpoch(snap.Epoch)
	}
	s.raiseEpoch(snap.Epoch)
	resp, aerr := s.commitReplace(sess, db, store.OpRestore, req.Data, obs.SpanFromContext(r.Context()))
	if aerr != nil {
		s.fail(w, aerr)
		return
	}
	sess.warm.seed(snap.Warm)
	s.warmSession(sess, snap.Warm)
	writeJSON(w, http.StatusOK, resp)
}

// commitAppend applies an append mutation and makes it durable: parse into
// the live database under the write lock and buffer the WAL record under
// logMu (so log order is apply order), then group-commit the fsync outside
// both locks — appends that arrive while the fsync is in flight buffer
// behind it and ride the next one together, and concurrent queries are
// never blocked on the disk.
func (s *Server) commitAppend(sess *session, data string, sp *obs.Span) (api.LoadResponse, *api.Error) {
	asp := sp.StartChild("load.apply")
	sess.logMu.Lock()
	sess.mu.Lock()
	// Parse into the live database (atomic: a payload error leaves it
	// untouched); version bumps on the touched relations invalidate
	// exactly the prepared plans reading them, and result-cache keys
	// embedding the old vector stop matching.
	if err := raparse.ParseDatabaseInto(strings.NewReader(data), sess.db); err != nil {
		sess.mu.Unlock()
		sess.logMu.Unlock()
		asp.SetError(err.Error())
		asp.End()
		return api.LoadResponse{}, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err)
	}
	resp := s.loadResponse(sess)
	sess.bumpVector()
	sess.mu.Unlock()
	asp.End()
	wsp := sp.StartChild("wal.commit")
	seq, aerr := s.logBuffer(sess, store.OpAppend, data, resp.Versions, wsp)
	sess.logMu.Unlock()
	if aerr != nil {
		wsp.SetError(aerr.Message)
		wsp.End()
		return api.LoadResponse{}, aerr
	}
	if aerr := s.logSync(sess, seq); aerr != nil {
		wsp.SetError(aerr.Message)
		wsp.End()
		return api.LoadResponse{}, aerr
	}
	wsp.Attr("seq", strconv.FormatUint(seq, 10))
	wsp.End()
	s.snapshotIfNeeded(sess)
	return resp, nil
}

// commitReplace installs db as the session database (replace and
// snapshot-restore loads, and Preload) and makes the mutation durable.
func (s *Server) commitReplace(sess *session, db *relation.Database, op store.Op, data string, sp *obs.Span) (api.LoadResponse, *api.Error) {
	asp := sp.StartChild("load.apply")
	sess.logMu.Lock()
	sess.mu.Lock()
	// Replacing the database wholesale replaces every relation object, so
	// no cached prepared plan can survive its pointer guard — drop the
	// cache now rather than letting stale entries pin the old database's
	// frozen materializations. The result cache goes with it: fresh
	// relations restart their version counters, so its vector-embedding
	// keys could otherwise collide with the old database's.
	sess.db = db
	sess.prep = plan.NewPrepCache(s.opts.CacheCap)
	sess.results = newResultCache(s.opts.ResultCacheCap)
	resp := s.loadResponse(sess)
	sess.bumpVector()
	sess.mu.Unlock()
	asp.End()
	wsp := sp.StartChild("wal.commit")
	seq, aerr := s.logBuffer(sess, op, data, resp.Versions, wsp)
	sess.logMu.Unlock()
	if aerr != nil {
		wsp.SetError(aerr.Message)
		wsp.End()
		return api.LoadResponse{}, aerr
	}
	if aerr := s.logSync(sess, seq); aerr != nil {
		wsp.SetError(aerr.Message)
		wsp.End()
		return api.LoadResponse{}, aerr
	}
	wsp.Attr("seq", strconv.FormatUint(seq, 10))
	wsp.End()
	s.snapshotIfNeeded(sess)
	return resp, nil
}

// logBuffer assigns the applied mutation its WAL record (no-op on a
// memory-only server). Caller holds logMu. The committing request's
// wal.commit span context rides in the record: replicas parent their
// apply spans on it, and the flush leader reports the fsync against it.
// Only sampled traces travel — replicas drop unsampled contexts anyway
// (StartLinked gates on the flag), so unsampled requests ship no
// traceparent bytes in their durable records.
func (s *Server) logBuffer(sess *session, op store.Op, data string, versions map[string]uint64, wsp *obs.Span) (uint64, *api.Error) {
	if sess.log == nil {
		return 0, nil
	}
	trace := ""
	if wsp.Sampled() {
		trace = wsp.Context().TraceParent()
	}
	seq, err := sess.log.BufferTrace(op, data, versions, trace)
	if err != nil {
		// The mutation is applied in memory but not durable; surface that
		// honestly — the client must not treat this load as acknowledged.
		return 0, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"load applied but not durable (wal append failed): %v", err)
	}
	return seq, nil
}

// logSync blocks until the buffered record is fsync'd (group commit: it
// rides or leads a shared flush). No-op on a memory-only server.
func (s *Server) logSync(sess *session, seq uint64) *api.Error {
	if sess.log == nil {
		return nil
	}
	if err := sess.log.Sync(seq); err != nil {
		return api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"load applied but not durable (wal sync failed): %v", err)
	}
	return nil
}

// snapshotIfNeeded takes a compacting snapshot when the session's WAL has
// outgrown the threshold.
func (s *Server) snapshotIfNeeded(sess *session) {
	if sess.log == nil || s.st == nil {
		return
	}
	if sess.log.WalBytes() < s.st.SnapshotBytes() {
		return
	}
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	if sess.log.WalBytes() < s.st.SnapshotBytes() {
		return // another commit already compacted
	}
	snap, err := s.snapshotOf(sess)
	if err != nil {
		log.Printf("server: snapshot session %q: %v", sess.name, err)
		return
	}
	if err := sess.log.InstallSnapshot(snap); err != nil {
		log.Printf("server: snapshot session %q: %v", sess.name, err)
	}
}

// snapshotOf renders a consistent snapshot of the session: database text,
// version vector, null allocator and warm keys under the read lock, with
// the WAL sequence number consistent because the caller holds logMu (no
// load can be mid-commit).
func (s *Server) snapshotOf(sess *session) (*store.Snapshot, error) {
	var seq uint64
	epoch := s.epoch.Load()
	if sess.log != nil {
		seq = sess.log.Seq()
		epoch = sess.log.Epoch()
	} else {
		seq = sess.replSeq.Load()
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	snap, err := store.TakeSnapshot(sess.name, sess.db, seq, sess.warm.snapshot())
	if err != nil {
		return nil, err
	}
	snap.Epoch = epoch
	return snap, nil
}

// handleSnapshot is the read-only snapshot export: the same encoding the
// durable store writes, served over HTTP so a fresh replica (or incdbctl)
// can bootstrap a session from a running server via the snapshot-load
// path. Works on memory-only servers too (the sequence number is then 0).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, name string) {
	sess := s.sessionFor(name)
	if sess == nil {
		s.fail(w, errSessionNotFound(name))
		return
	}
	sess.logMu.Lock()
	snap, err := s.snapshotOf(sess)
	sess.logMu.Unlock()
	if err != nil {
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := snap.EncodeTo(w); err != nil {
		log.Printf("server: snapshot export %q: %v", name, err)
	}
}

// handleWAL streams a session's write-ahead log from a given position:
// GET /v1/sessions/{name}/wal?from=<seq> writes every durable record with
// a sequence number greater than from as a length-prefixed CRC-checked
// frame (the WAL's own on-disk framing), then blocks and keeps streaming
// records as they commit — the replication feed a follower tails. When the
// requested position was already compacted into a snapshot the response is
// 410 wal_gap and the follower must re-bootstrap from /snapshot.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("session")
	sess := s.sessionFor(name)
	if sess == nil {
		s.fail(w, errSessionNotFound(name))
		return
	}
	if sess.log == nil {
		s.fail(w, api.Errorf(http.StatusConflict, api.CodeNotDurable,
			"session %q has no write-ahead log (server is memory-only); replication needs -data-dir", name))
		return
	}
	from := uint64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad from=%q: %v", v, err))
			return
		}
		from = n
	}
	tail, err := sess.log.TailFrom(from)
	if err != nil {
		s.fail(w, api.Errorf(http.StatusGone, api.CodeWALGap,
			"wal position %d compacted away (snapshot covers seq %d); re-bootstrap from the snapshot",
			from, sess.log.SnapshotSeq()))
		return
	}
	defer tail.Close()
	// The stream writes for as long as the follower tails; exempt it from
	// any server-wide -write-timeout (best-effort — not every
	// ResponseWriter supports deadlines).
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		frame, _, err := tail.Next(r.Context())
		if err != nil {
			// Client gone, or the log compacted past the tail: close the
			// stream; the follower reconnects and resolves (a reconnect
			// behind the snapshot gets 410 and re-bootstraps).
			return
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

// vectorCovers reports whether the vector have is at least as new as want
// for every relation want mentions.
func vectorCovers(have, want map[string]uint64) bool {
	for name, v := range want {
		if have[name] < v {
			return false
		}
	}
	return true
}

// waitCovered blocks until the session's version vector covers the
// consistency token. On a primary an uncovered token fails immediately
// (its vector is authoritative — the token came from another history, e.g.
// a wholesale replace reset the counters); on a replica the request waits
// up to StaleWait for replication to catch up before failing with 412
// stale_replica, so reads are monotonic across the fleet.
func (s *Server) waitCovered(ctx context.Context, sess *session, want map[string]uint64) *api.Error {
	if len(want) == 0 {
		return nil
	}
	deadline := time.NewTimer(s.opts.staleWait())
	defer deadline.Stop()
	for {
		sess.mu.RLock()
		have := sess.db.Versions()
		ch := sess.vecCh
		sess.mu.RUnlock()
		if vectorCovers(have, want) {
			return nil
		}
		stale := api.Errorf(http.StatusPreconditionFailed, api.CodeStaleReplica,
			"session vector %v does not cover consistency token %v", have, want)
		if s.repl.Load() == nil {
			return stale
		}
		select {
		case <-ch:
		case <-deadline.C:
			return stale
		case <-ctx.Done():
			return stale
		}
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, name string) {
	var req api.QueryRequest
	if err := decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	sess := s.sessionFor(name)
	if sess == nil {
		s.fail(w, errSessionNotFound(name))
		return
	}
	// Reads are served even by a fenced server, but the client's observed
	// epoch still folds in: a stale primary learns of its successor from
	// the first request that has seen one.
	s.observeEpoch(req.Epoch)
	if aerr := s.waitCovered(r.Context(), sess, req.ReadAfter); aerr != nil {
		s.fail(w, aerr)
		return
	}
	start := time.Now()
	sp := obs.SpanFromContext(r.Context())

	// Result-cache fast path: a byte-identical repeated request against an
	// unchanged version vector is answered without taking an evaluation
	// slot — O(1) regardless of what the query costs to evaluate.
	csp := sp.StartChild("result_cache.lookup")
	sess.mu.RLock()
	key := resultKey(&req, sess.db)
	versions := sess.db.Versions()
	cached, hit := sess.results.get(key)
	sess.mu.RUnlock()
	csp.Attr("hit", strconv.FormatBool(hit))
	csp.End()
	if hit {
		sess.queries.Add(1)
		elapsed := time.Since(start)
		proc := procName(req.Proc)
		s.obs.queries.With(proc, name).Inc()
		// Cache hits are real served latency: they land in the histogram
		// under cache="hit" so `incdbctl top` quantiles reflect what
		// clients actually experienced, not just evaluation cost.
		s.obs.queryLatency.With(proc, name, "hit").ObserveExemplar(elapsed.Seconds(), sp.ExemplarRef())
		s.recordWarm(sess, &req)
		writeJSON(w, http.StatusOK, api.QueryResponse{
			Session:   name,
			Proc:      proc,
			Query:     req.Query,
			Results:   cached,
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
			Cached:    true,
			Versions:  versions,
			Epoch:     s.epoch.Load(),
			TraceID:   sp.ExemplarRef(),
		})
		return
	}

	wsp := sp.StartChild("admission.wait")
	aerr := s.acquire(r.Context())
	wsp.End()
	if aerr != nil {
		s.fail(w, aerr)
		return
	}
	defer s.release()

	// The trace rides along every evaluation: its counters (worlds
	// enumerated, frozen-subplan reuse) are two atomic adds per plan
	// execution, cheap enough to keep always on. Per-node detail is
	// opt-in per request (trace_detail on a sampled trace): the traced
	// stream never reorders or buffers batches, so results are
	// byte-identical either way.
	detail := req.TraceDetail && sp.Sampled()
	tr := plan.NewTrace(detail)
	esp := sp.StartChild("evaluate")
	esp.Attr("proc", procName(req.Proc))
	evalStart := time.Now()
	var results []api.Resultset
	var err error
	sess.mu.RLock()
	// Re-key under the same lock as the evaluation: the vector may have
	// moved between the fast path and acquiring a slot.
	key = resultKey(&req, sess.db)
	versions = sess.db.Versions()
	// pprof labels segment -pprof-addr CPU profiles by workload; the
	// trace ID lets a profile sample be joined back to its trace.
	pprof.Do(r.Context(), pprof.Labels("session", name, "proc", procName(req.Proc), "trace_id", sp.TraceID()),
		func(context.Context) {
			results, err = s.evaluate(sess, &req, tr)
		})
	if err == nil {
		sess.results.put(key, results)
	}
	sess.mu.RUnlock()
	if err != nil {
		esp.SetError(err.Error())
		esp.End()
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeBadQuery, "%v", err))
		return
	}
	sess.queries.Add(1)
	s.recordWarm(sess, &req)
	elapsed := time.Since(start)
	proc := procName(req.Proc)
	worlds, frozen := tr.Execs.Load(), tr.FrozenReuse.Load()
	esp.Attr("worlds", strconv.FormatInt(worlds, 10))
	s.spanPlanNodes(esp, tr, evalStart)
	esp.End()
	s.obs.queries.With(proc, name).Inc()
	s.obs.queryLatency.With(proc, name, "miss").ObserveExemplar(elapsed.Seconds(), sp.ExemplarRef())
	s.obs.queryWorlds.Observe(float64(worlds))
	s.obs.worlds.Add(uint64(worlds))
	s.obs.frozenReuse.Add(uint64(frozen))
	s.logSlow(r, sess, &req, elapsed, worlds, frozen)
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Session:     name,
		Proc:        proc,
		Query:       req.Query,
		Results:     results,
		ElapsedMs:   float64(elapsed.Microseconds()) / 1000,
		Worlds:      worlds,
		FrozenReuse: frozen,
		Versions:    versions,
		Epoch:       s.epoch.Load(),
		TraceID:     sp.ExemplarRef(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, name string) {
	var req api.ExplainRequest
	if err := decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	sess := s.sessionFor(name)
	if sess == nil {
		s.fail(w, errSessionNotFound(name))
		return
	}
	if aerr := s.acquire(r.Context()); aerr != nil {
		s.fail(w, aerr)
		return
	}
	defer s.release()

	sess.mu.RLock()
	info, err := s.explain(sess, &req)
	sess.mu.RUnlock()
	if err != nil {
		s.fail(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeBadQuery, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.ExplainResponse{
		Session: name,
		Plan:    info,
		Text:    info.Text(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	sessions := make([]*session, len(names))
	for i, name := range names {
		sessions[i] = s.sessions[name]
	}
	s.mu.RUnlock()

	resp := api.StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       engine.Options{Workers: s.opts.Workers}.WorkerCount(),
		MaxInFlight:   s.opts.maxInFlight(),
		InFlight:      int(s.inflight.Load()),
		Role:          s.role(),
		Epoch:         s.epoch.Load(),
	}
	if s.st != nil {
		resp.DataDir = s.st.Dir()
	}
	if repl := s.repl.Load(); repl != nil {
		resp.Replication = repl.status()
	}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, s.sessionStatusOf(sess))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionStatus reports one session's status.
func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("session")
	sess := s.sessionFor(name)
	if sess == nil {
		s.fail(w, errSessionNotFound(name))
		return
	}
	writeJSON(w, http.StatusOK, s.sessionStatusOf(sess))
}

func (s *Server) sessionStatusOf(sess *session) api.SessionStatus {
	sess.mu.RLock()
	st := api.SessionStatus{
		Name:        sess.name,
		CreatedAt:   sess.created.UTC().Format(time.RFC3339),
		Queries:     sess.queries.Load(),
		Versions:    sess.db.Versions(),
		Relations:   relationStatuses(sess.db),
		Cache:       sess.prep.Stats(),
		ResultCache: sess.results.stats(),
	}
	if sess.log != nil {
		d := sess.log.Stats()
		st.Durability = &d
	}
	sess.mu.RUnlock()
	return st
}

// loadResponse renders a load acknowledgement for the session's current
// state; caller holds the session lock.
func (s *Server) loadResponse(sess *session) api.LoadResponse {
	return api.LoadResponse{
		Session:   sess.name,
		Relations: relationStatuses(sess.db),
		Versions:  sess.db.Versions(),
		Epoch:     s.epoch.Load(),
	}
}

func relationStatuses(db *relation.Database) []api.RelationStatus {
	var out []api.RelationStatus
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		out = append(out, api.RelationStatus{
			Name:    name,
			Arity:   r.Arity(),
			Rows:    r.Len(),
			Version: r.Version(),
		})
	}
	return out
}

func errSessionNotFound(name string) *api.Error {
	return api.Errorf(http.StatusNotFound, api.CodeSessionNotFound,
		"unknown session %q (load data first)", name)
}

func decode(w http.ResponseWriter, r *http.Request, into any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
	}
	return nil
}

// decodeOptional is decode for requests whose body may be empty (e.g. a
// bare POST /v1/promote): an absent body leaves into at its zero value.
func decodeOptional(w http.ResponseWriter, r *http.Request, into any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil && err != io.EOF {
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

// writeErr writes the uniform error envelope:
// {"error":{"code":"...","message":"..."}}.
func writeErr(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}
