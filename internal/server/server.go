package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
	"incdb/internal/store"
)

// Options configures the service.
type Options struct {
	// Workers sizes the engine pool the certainty oracles shard their
	// valuation enumeration over: 0 means one per CPU, 1 forces the serial
	// reference path (results never depend on it).
	Workers int
	// MaxInFlight bounds concurrently evaluating requests (query and
	// explain); further requests wait, failing with 503 when the client
	// gives up first. Zero means twice the engine worker count — enough to
	// keep the pool busy without unbounded queueing.
	MaxInFlight int
	// MaxWorlds is the default bound on the certainty oracles' valuation
	// enumeration (0 = certain.DefaultMaxWorlds); a request may override it.
	MaxWorlds int
	// CacheCap is each session's prepared-plan cache capacity
	// (0 = plan.DefaultPrepCacheCap).
	CacheCap int
	// ResultCacheCap is each session's oracle result cache capacity
	// (0 = a server default); see resultCache.
	ResultCacheCap int
	// SnapshotBytes is the per-session WAL size beyond which a durable
	// server snapshots and compacts (0 = store.DefaultSnapshotBytes);
	// meaningful only after EnableDurability.
	SnapshotBytes int64
	// ShutdownGrace is how long ListenAndServe waits for in-flight
	// requests after its context is canceled (0 = 5s).
	ShutdownGrace time.Duration
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 2 * engine.Options{Workers: o.Workers}.WorkerCount()
}

func (o Options) shutdownGrace() time.Duration {
	if o.ShutdownGrace > 0 {
		return o.ShutdownGrace
	}
	return 5 * time.Second
}

// Server is the incdbd service: named sessions, each owning one incomplete
// database and one version-guarded prepared-plan cache. All handlers are
// safe for concurrent use; database mutation (load) excludes running
// queries per session via an RWMutex, so queries always see a consistent
// database and cache guards are checked under the same read lock.
type Server struct {
	opts  Options
	start time.Time
	mux   *http.ServeMux

	sem      chan struct{}
	inflight atomic.Int64

	// st is the durability subsystem; nil for a memory-only server. Set
	// once by EnableDurability before serving.
	st *store.Store

	mu       sync.RWMutex
	sessions map[string]*session
}

// session is one named database with its prepared-plan and oracle-result
// caches, plus — when durability is enabled — its write-ahead log.
type session struct {
	name    string
	created time.Time
	queries atomic.Uint64

	// mu orders mutation against evaluation: load (append or replace)
	// takes the write side, query/explain the read side. The prepared
	// state handed out by prep is itself safe for concurrent execution.
	mu      sync.RWMutex
	db      *relation.Database
	prep    *plan.PrepCache
	results *resultCache
	warm    *warmSet

	// logMu serializes durable commits: it is held across the in-memory
	// apply (which takes mu) and the WAL append + fsync (which does not),
	// so the log order is exactly the apply order while queries proceed
	// under the read lock during the fsync — the WAL write stays outside
	// the mu critical section except for the commit point itself. It also
	// covers snapshot installs and consistent snapshot exports.
	logMu sync.Mutex
	log   *store.SessionLog // nil when the server is memory-only
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	s := &Server{
		opts:     opts,
		start:    time.Now(),
		sessions: map[string]*session{},
		sem:      make(chan struct{}, opts.maxInFlight()),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	return s
}

// EnableDurability attaches a data directory: every session already on
// disk is recovered — database contents, version vectors, null identities
// restored to the last acknowledged load, prepared-plan cache re-warmed
// from the snapshot's warm keys — and every future load is written ahead
// and fsync'd before it is acknowledged. Must be called before serving.
func (s *Server) EnableDurability(dir string) error {
	st, err := store.Open(dir, store.Options{SnapshotBytes: s.opts.SnapshotBytes})
	if err != nil {
		return err
	}
	recovered, err := st.Recover()
	if err != nil {
		return err
	}
	s.st = st
	for _, rec := range recovered {
		sess := &session{
			name:    rec.Name,
			created: time.Now(),
			db:      rec.DB,
			prep:    plan.NewPrepCache(s.opts.CacheCap),
			results: newResultCache(s.opts.ResultCacheCap),
			warm:    newWarmSet(),
			log:     rec.Log,
		}
		sess.warm.seed(rec.Warm)
		s.sessions[rec.Name] = sess
		s.warmSession(sess, rec.Warm)
		log.Printf("server: recovered session %q (%d relations, wal seq %d) and warmed %d plan(s)",
			rec.Name, len(rec.DB.Names()), rec.Log.Seq(), len(rec.Warm))
	}
	return nil
}

// Close releases the durability subsystem's file handles (after serving
// stops); a memory-only server has nothing to close.
func (s *Server) Close() error {
	if s.st == nil {
		return nil
	}
	return s.st.Close()
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// maxBodyBytes caps request bodies (/v1/load payloads dominate); beyond it
// the JSON decoder fails with a 400 instead of buffering without bound.
const maxBodyBytes = 64 << 20

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get ShutdownGrace to
// finish. Header-read and idle timeouts guard against slow-client
// connection exhaustion; there is deliberately no write timeout, since
// oracle queries may legitimately run long.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.opts.shutdownGrace())
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}

// acquire takes an evaluation slot, respecting the request context. A free
// slot is taken even when the context is already done (the fast path below
// never loses that race), so the error always means the caller actually
// waited: it reports the live in-flight gauge and the context's own cause
// so a client-side timeout is not misread as server saturation.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("no evaluation slot (%d of %d in flight): %w",
			s.inflight.Load(), s.opts.maxInFlight(), ctx.Err())
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// sessionFor returns the named session, or nil.
func (s *Server) sessionFor(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// ensureSession returns the named session, creating an empty one on first
// use. On a durable server the session's write-ahead log is attached (and
// its directory created) here.
func (s *Server) ensureSession(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[name]; ok {
		return sess, nil
	}
	sess := &session{
		name:    name,
		created: time.Now(),
		db:      relation.NewDatabase(),
		prep:    plan.NewPrepCache(s.opts.CacheCap),
		results: newResultCache(s.opts.ResultCacheCap),
		warm:    newWarmSet(),
	}
	if s.st != nil {
		l, err := s.st.Session(name)
		if err != nil {
			return nil, err
		}
		sess.log = l
	}
	s.sessions[name] = sess
	return sess, nil
}

// Preload loads data (raparse text) into the named session before serving;
// it returns the number of relations loaded. Used by incdbd -load. On a
// durable server the preload commits through the WAL like any other load.
func (s *Server) Preload(session, data string) (int, error) {
	db, err := raparse.ParseDatabase(strings.NewReader(data))
	if err != nil {
		return 0, err
	}
	sess, err := s.ensureSession(session)
	if err != nil {
		return 0, err
	}
	resp, _, err := s.commitReplace(sess, db, store.OpReplace, data)
	if err != nil {
		return 0, err
	}
	return len(resp.Relations), nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Session == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing session name"))
		return
	}
	if req.Snapshot {
		s.handleRestore(w, &req)
		return
	}
	if req.Append {
		if sess := s.sessionFor(req.Session); sess != nil {
			resp, code, err := s.commitAppend(sess, req.Data)
			if err != nil {
				writeErr(w, code, err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Appending to a session that does not exist yet is its first load.
	}
	// Replace path: parse and validate the payload before the session is
	// even created, so a failed first load leaves no phantom empty session
	// behind and a failed replace leaves the old database untouched.
	db, err := raparse.ParseDatabase(strings.NewReader(req.Data))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.ensureSession(req.Session)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp, code, err := s.commitReplace(sess, db, store.OpReplace, req.Data)
	if err != nil {
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRestore bootstraps (or resets) a session from a snapshot export —
// the payload a /v1/snapshot endpoint (possibly of another server)
// produced. Null identifiers and the version vector are preserved, and the
// snapshot's warm keys re-prepare the working set.
func (s *Server) handleRestore(w http.ResponseWriter, req *LoadRequest) {
	snap, err := store.DecodeSnapshot(strings.NewReader(req.Data))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	db, err := snap.Database()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.ensureSession(req.Session)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp, code, err := s.commitReplace(sess, db, store.OpRestore, req.Data)
	if err != nil {
		writeErr(w, code, err)
		return
	}
	sess.warm.seed(snap.Warm)
	s.warmSession(sess, snap.Warm)
	writeJSON(w, http.StatusOK, resp)
}

// commitAppend applies an append mutation and makes it durable: parse into
// the live database under the write lock, then append the payload to the
// session WAL and fsync before acknowledging. logMu spans both so the log
// order is the apply order; the fsync itself runs outside the session
// RWMutex, so concurrent queries are never blocked on the disk.
func (s *Server) commitAppend(sess *session, data string) (LoadResponse, int, error) {
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	sess.mu.Lock()
	// Parse into the live database (atomic: a payload error leaves it
	// untouched); version bumps on the touched relations invalidate
	// exactly the prepared plans reading them, and result-cache keys
	// embedding the old vector stop matching.
	if err := raparse.ParseDatabaseInto(strings.NewReader(data), sess.db); err != nil {
		sess.mu.Unlock()
		return LoadResponse{}, http.StatusBadRequest, err
	}
	resp := LoadResponse{Session: sess.name, Relations: relationStatuses(sess.db)}
	versions := sess.db.Versions()
	sess.mu.Unlock()
	if code, err := s.logCommit(sess, store.OpAppend, data, versions); err != nil {
		return LoadResponse{}, code, err
	}
	return resp, http.StatusOK, nil
}

// commitReplace installs db as the session database (replace and
// snapshot-restore loads, and Preload) and makes the mutation durable.
func (s *Server) commitReplace(sess *session, db *relation.Database, op store.Op, data string) (LoadResponse, int, error) {
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	sess.mu.Lock()
	// Replacing the database wholesale replaces every relation object, so
	// no cached prepared plan can survive its pointer guard — drop the
	// cache now rather than letting stale entries pin the old database's
	// frozen materializations. The result cache goes with it: fresh
	// relations restart their version counters, so its vector-embedding
	// keys could otherwise collide with the old database's.
	sess.db = db
	sess.prep = plan.NewPrepCache(s.opts.CacheCap)
	sess.results = newResultCache(s.opts.ResultCacheCap)
	resp := LoadResponse{Session: sess.name, Relations: relationStatuses(sess.db)}
	versions := sess.db.Versions()
	sess.mu.Unlock()
	if code, err := s.logCommit(sess, op, data, versions); err != nil {
		return LoadResponse{}, code, err
	}
	return resp, http.StatusOK, nil
}

// logCommit writes the WAL record for an applied mutation (no-op on a
// memory-only server) and takes a compacting snapshot when the log has
// outgrown the threshold. Caller holds logMu.
func (s *Server) logCommit(sess *session, op store.Op, data string, versions map[string]uint64) (int, error) {
	if sess.log == nil {
		return http.StatusOK, nil
	}
	if _, err := sess.log.Append(op, data, versions); err != nil {
		// The mutation is applied in memory but not durable; surface that
		// honestly — the client must not treat this load as acknowledged.
		return http.StatusInternalServerError,
			fmt.Errorf("load applied but not durable (wal append failed): %w", err)
	}
	if sess.log.WalBytes() >= s.st.SnapshotBytes() {
		snap, err := s.snapshotOf(sess)
		if err != nil {
			log.Printf("server: snapshot session %q: %v", sess.name, err)
			return http.StatusOK, nil
		}
		if err := sess.log.InstallSnapshot(snap); err != nil {
			log.Printf("server: snapshot session %q: %v", sess.name, err)
		}
	}
	return http.StatusOK, nil
}

// snapshotOf renders a consistent snapshot of the session: database text,
// version vector, null allocator and warm keys under the read lock, with
// the WAL sequence number consistent because the caller holds logMu (no
// load can be mid-commit).
func (s *Server) snapshotOf(sess *session) (*store.Snapshot, error) {
	var seq uint64
	if sess.log != nil {
		seq = sess.log.Seq()
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return store.TakeSnapshot(sess.name, sess.db, seq, sess.warm.snapshot())
}

// handleSnapshot is the read-only snapshot export: the same encoding the
// durable store writes, served over HTTP so a fresh replica (or incdbctl)
// can bootstrap a session from a running server via the snapshot-load
// path. Works on memory-only servers too (the sequence number is then 0).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q (load data first)", name))
		return
	}
	sess.logMu.Lock()
	snap, err := s.snapshotOf(sess)
	sess.logMu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := snap.EncodeTo(w); err != nil {
		log.Printf("server: snapshot export %q: %v", name, err)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.sessionFor(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q (load data first)", req.Session))
		return
	}
	start := time.Now()

	// Result-cache fast path: a byte-identical repeated request against an
	// unchanged version vector is answered without taking an evaluation
	// slot — O(1) regardless of what the query costs to evaluate.
	sess.mu.RLock()
	key := resultKey(&req, sess.db)
	cached, hit := sess.results.get(key)
	sess.mu.RUnlock()
	if hit {
		sess.queries.Add(1)
		s.recordWarm(sess, &req)
		writeJSON(w, http.StatusOK, QueryResponse{
			Session:   req.Session,
			Proc:      procName(req.Proc),
			Query:     req.Query,
			Results:   cached,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
			Cached:    true,
		})
		return
	}

	if err := s.acquire(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()

	sess.mu.RLock()
	// Re-key under the same lock as the evaluation: the vector may have
	// moved between the fast path and acquiring a slot.
	key = resultKey(&req, sess.db)
	results, err := s.evaluate(sess, &req)
	if err == nil {
		sess.results.put(key, results)
	}
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	sess.queries.Add(1)
	s.recordWarm(sess, &req)
	writeJSON(w, http.StatusOK, QueryResponse{
		Session:   req.Session,
		Proc:      procName(req.Proc),
		Query:     req.Query,
		Results:   results,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.sessionFor(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q (load data first)", req.Session))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()

	sess.mu.RLock()
	info, err := s.explain(sess, &req)
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Session: req.Session,
		Plan:    info,
		Text:    info.Text(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	sessions := make([]*session, len(names))
	for i, name := range names {
		sessions[i] = s.sessions[name]
	}
	s.mu.RUnlock()

	resp := StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       engine.Options{Workers: s.opts.Workers}.WorkerCount(),
		MaxInFlight:   s.opts.maxInFlight(),
		InFlight:      int(s.inflight.Load()),
	}
	if s.st != nil {
		resp.DataDir = s.st.Dir()
	}
	for _, sess := range sessions {
		sess.mu.RLock()
		st := SessionStatus{
			Name:        sess.name,
			CreatedAt:   sess.created.UTC().Format(time.RFC3339),
			Queries:     sess.queries.Load(),
			Relations:   relationStatuses(sess.db),
			Cache:       sess.prep.Stats(),
			ResultCache: sess.results.stats(),
		}
		if sess.log != nil {
			d := sess.log.Stats()
			st.Durability = &d
		}
		sess.mu.RUnlock()
		resp.Sessions = append(resp.Sessions, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func relationStatuses(db *relation.Database) []RelationStatus {
	var out []RelationStatus
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		out = append(out, RelationStatus{
			Name:    name,
			Arity:   r.Arity(),
			Rows:    r.Len(),
			Version: r.Version(),
		})
	}
	return out
}

func decode(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
