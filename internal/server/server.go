package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
)

// Options configures the service.
type Options struct {
	// Workers sizes the engine pool the certainty oracles shard their
	// valuation enumeration over: 0 means one per CPU, 1 forces the serial
	// reference path (results never depend on it).
	Workers int
	// MaxInFlight bounds concurrently evaluating requests (query and
	// explain); further requests wait, failing with 503 when the client
	// gives up first. Zero means twice the engine worker count — enough to
	// keep the pool busy without unbounded queueing.
	MaxInFlight int
	// MaxWorlds is the default bound on the certainty oracles' valuation
	// enumeration (0 = certain.DefaultMaxWorlds); a request may override it.
	MaxWorlds int
	// CacheCap is each session's prepared-plan cache capacity
	// (0 = plan.DefaultPrepCacheCap).
	CacheCap int
	// ShutdownGrace is how long ListenAndServe waits for in-flight
	// requests after its context is canceled (0 = 5s).
	ShutdownGrace time.Duration
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 2 * engine.Options{Workers: o.Workers}.WorkerCount()
}

func (o Options) shutdownGrace() time.Duration {
	if o.ShutdownGrace > 0 {
		return o.ShutdownGrace
	}
	return 5 * time.Second
}

// Server is the incdbd service: named sessions, each owning one incomplete
// database and one version-guarded prepared-plan cache. All handlers are
// safe for concurrent use; database mutation (load) excludes running
// queries per session via an RWMutex, so queries always see a consistent
// database and cache guards are checked under the same read lock.
type Server struct {
	opts  Options
	start time.Time
	mux   *http.ServeMux

	sem      chan struct{}
	inflight atomic.Int64

	mu       sync.RWMutex
	sessions map[string]*session
}

// session is one named database with its prepared-plan cache.
type session struct {
	name    string
	created time.Time
	queries atomic.Uint64

	// mu orders mutation against evaluation: load (append or replace)
	// takes the write side, query/explain the read side. The prepared
	// state handed out by prep is itself safe for concurrent execution.
	mu   sync.RWMutex
	db   *relation.Database
	prep *plan.PrepCache
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	s := &Server{
		opts:     opts,
		start:    time.Now(),
		sessions: map[string]*session{},
		sem:      make(chan struct{}, opts.maxInFlight()),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/load", s.handleLoad)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	return s
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// maxBodyBytes caps request bodies (/v1/load payloads dominate); beyond it
// the JSON decoder fails with a 400 instead of buffering without bound.
const maxBodyBytes = 64 << 20

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get ShutdownGrace to
// finish. Header-read and idle timeouts guard against slow-client
// connection exhaustion; there is deliberately no write timeout, since
// oracle queries may legitimately run long.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.opts.shutdownGrace())
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}

// acquire takes an evaluation slot, respecting the request context. A free
// slot is taken even when the context is already done (the fast path below
// never loses that race), so the error always means the caller actually
// waited: it reports the live in-flight gauge and the context's own cause
// so a client-side timeout is not misread as server saturation.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("no evaluation slot (%d of %d in flight): %w",
			s.inflight.Load(), s.opts.maxInFlight(), ctx.Err())
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// sessionFor returns the named session, or nil.
func (s *Server) sessionFor(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// ensureSession returns the named session, creating an empty one on first
// use.
func (s *Server) ensureSession(name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[name]; ok {
		return sess
	}
	sess := &session{
		name:    name,
		created: time.Now(),
		db:      relation.NewDatabase(),
		prep:    plan.NewPrepCache(s.opts.CacheCap),
	}
	s.sessions[name] = sess
	return sess
}

// Preload loads data (raparse text) into the named session before serving;
// it returns the number of relations loaded. Used by incdbd -load.
func (s *Server) Preload(session, data string) (int, error) {
	db, err := raparse.ParseDatabase(strings.NewReader(data))
	if err != nil {
		return 0, err
	}
	sess := s.ensureSession(session)
	sess.mu.Lock()
	sess.db = db
	sess.prep = plan.NewPrepCache(s.opts.CacheCap)
	n := len(db.Names())
	sess.mu.Unlock()
	return n, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Session == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing session name"))
		return
	}
	if req.Append {
		if sess := s.sessionFor(req.Session); sess != nil {
			sess.mu.Lock()
			defer sess.mu.Unlock()
			// Parse into the live database (atomic: a payload error leaves
			// it untouched); version bumps on the touched relations
			// invalidate exactly the prepared plans reading them.
			if err := raparse.ParseDatabaseInto(strings.NewReader(req.Data), sess.db); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, LoadResponse{
				Session:   req.Session,
				Relations: relationStatuses(sess.db),
			})
			return
		}
		// Appending to a session that does not exist yet is its first load.
	}
	// Replace path: parse and validate the payload before the session is
	// even created, so a failed first load leaves no phantom empty session
	// behind and a failed replace leaves the old database untouched.
	db, err := raparse.ParseDatabase(strings.NewReader(req.Data))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.ensureSession(req.Session)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Replacing the database wholesale replaces every relation object, so
	// no cached prepared plan can survive its pointer guard — drop the
	// cache now rather than letting stale entries pin the old database's
	// frozen materializations until they happen to be looked up again.
	sess.db = db
	sess.prep = plan.NewPrepCache(s.opts.CacheCap)
	writeJSON(w, http.StatusOK, LoadResponse{
		Session:   req.Session,
		Relations: relationStatuses(sess.db),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.sessionFor(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q (load data first)", req.Session))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()

	start := time.Now()
	sess.mu.RLock()
	results, err := s.evaluate(sess, &req)
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	sess.queries.Add(1)
	writeJSON(w, http.StatusOK, QueryResponse{
		Session:   req.Session,
		Proc:      procName(req.Proc),
		Query:     req.Query,
		Results:   results,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess := s.sessionFor(req.Session)
	if sess == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q (load data first)", req.Session))
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	defer s.release()

	sess.mu.RLock()
	info, err := s.explain(sess, &req)
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Session: req.Session,
		Plan:    info,
		Text:    info.Text(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	sessions := make([]*session, len(names))
	for i, name := range names {
		sessions[i] = s.sessions[name]
	}
	s.mu.RUnlock()

	resp := StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       engine.Options{Workers: s.opts.Workers}.WorkerCount(),
		MaxInFlight:   s.opts.maxInFlight(),
		InFlight:      int(s.inflight.Load()),
	}
	for _, sess := range sessions {
		sess.mu.RLock()
		st := SessionStatus{
			Name:      sess.name,
			CreatedAt: sess.created.UTC().Format(time.RFC3339),
			Queries:   sess.queries.Load(),
			Relations: relationStatuses(sess.db),
			Cache:     sess.prep.Stats(),
		}
		sess.mu.RUnlock()
		resp.Sessions = append(resp.Sessions, st)
	}
	writeJSON(w, http.StatusOK, resp)
}

func relationStatuses(db *relation.Database) []RelationStatus {
	var out []RelationStatus
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		out = append(out, RelationStatus{
			Name:    name,
			Arity:   r.Arity(),
			Rows:    r.Len(),
			Version: r.Version(),
		})
	}
	return out
}

func decode(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
