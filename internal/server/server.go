package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/api"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
	"incdb/internal/store"
)

// Options configures the service.
type Options struct {
	// Workers sizes the engine pool the certainty oracles shard their
	// valuation enumeration over: 0 means one per CPU, 1 forces the serial
	// reference path (results never depend on it).
	Workers int
	// MaxInFlight bounds concurrently evaluating requests (query and
	// explain); further requests wait, failing with 503 when the client
	// gives up first. Zero means twice the engine worker count — enough to
	// keep the pool busy without unbounded queueing.
	MaxInFlight int
	// MaxWorlds is the default bound on the certainty oracles' valuation
	// enumeration (0 = certain.DefaultMaxWorlds); a request may override it.
	MaxWorlds int
	// CacheCap is each session's prepared-plan cache capacity
	// (0 = plan.DefaultPrepCacheCap).
	CacheCap int
	// ResultCacheCap is each session's oracle result cache capacity
	// (0 = a server default); see resultCache.
	ResultCacheCap int
	// SnapshotBytes is the per-session WAL size beyond which a durable
	// server snapshots and compacts (0 = store.DefaultSnapshotBytes);
	// meaningful only after EnableDurability.
	SnapshotBytes int64
	// StaleWait is how long a replica blocks for replication to cover a
	// request's consistency token before answering 412 stale_replica
	// (0 = 2s).
	StaleWait time.Duration
	// ShutdownGrace is how long ListenAndServe waits for in-flight
	// requests after its context is canceled (0 = 5s).
	ShutdownGrace time.Duration
}

func (o Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 2 * engine.Options{Workers: o.Workers}.WorkerCount()
}

func (o Options) staleWait() time.Duration {
	if o.StaleWait > 0 {
		return o.StaleWait
	}
	return 2 * time.Second
}

func (o Options) shutdownGrace() time.Duration {
	if o.ShutdownGrace > 0 {
		return o.ShutdownGrace
	}
	return 5 * time.Second
}

// Server is the incdbd service: named sessions, each owning one incomplete
// database and one version-guarded prepared-plan cache. All handlers are
// safe for concurrent use; database mutation (load or replicated apply)
// excludes running queries per session via an RWMutex, so queries always
// see a consistent database and cache guards are checked under the same
// read lock.
type Server struct {
	opts  Options
	start time.Time
	mux   *http.ServeMux

	sem      chan struct{}
	inflight atomic.Int64

	// st is the durability subsystem; nil for a memory-only server. Set
	// once by EnableDurability before serving.
	st *store.Store

	// repl is the replication subsystem; nil unless this server follows a
	// primary. Set once by StartFollow before serving; a non-nil repl makes
	// every load handler read-only.
	repl *replicator

	mu       sync.RWMutex
	sessions map[string]*session
}

// session is one named database with its prepared-plan and oracle-result
// caches, plus — when durability is enabled — its write-ahead log.
type session struct {
	name    string
	created time.Time
	queries atomic.Uint64

	// mu orders mutation against evaluation: load (append or replace) and
	// replicated apply take the write side, query/explain the read side.
	// The prepared state handed out by prep is itself safe for concurrent
	// execution.
	mu      sync.RWMutex
	db      *relation.Database
	prep    *plan.PrepCache
	results *resultCache
	warm    *warmSet

	// vecCh is closed (and replaced) whenever the version vector advances;
	// consistency-token waiters block on it. Guarded by mu.
	vecCh chan struct{}

	// replSeq is the last primary WAL sequence number applied to this
	// session (replica mode only; on a durable replica it mirrors
	// log.Seq()).
	replSeq atomic.Uint64

	// logMu serializes durable commits: it is held across the in-memory
	// apply (which takes mu) and the WAL Buffer (which does not), so the
	// log order is exactly the apply order; the group-commit fsync
	// (SessionLog.Sync) runs outside both, so concurrent loads batch into
	// shared fsyncs while queries proceed under the read lock. It also
	// covers snapshot installs and consistent snapshot exports.
	logMu sync.Mutex
	log   *store.SessionLog // nil when the server is memory-only
}

// bumpVector wakes consistency-token waiters after a mutation advanced the
// session's version vector. Caller holds the session write lock.
func (sess *session) bumpVector() {
	close(sess.vecCh)
	sess.vecCh = make(chan struct{})
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	s := &Server{
		opts:     opts,
		start:    time.Now(),
		sessions: map[string]*session{},
		sem:      make(chan struct{}, opts.maxInFlight()),
	}
	s.mux = http.NewServeMux()
	// Session-scoped routes: the session name lives in the path.
	s.mux.HandleFunc("POST /v1/sessions/{session}/load", func(w http.ResponseWriter, r *http.Request) {
		s.handleLoad(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("POST /v1/sessions/{session}/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("POST /v1/sessions/{session}/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handleExplain(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("GET /v1/sessions/{session}/status", s.handleSessionStatus)
	s.mux.HandleFunc("GET /v1/sessions/{session}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.handleSnapshot(w, r, r.PathValue("session"))
	})
	s.mux.HandleFunc("GET /v1/sessions/{session}/wal", s.handleWAL)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	// Legacy flat routes (pre-PR-6 clients): thin shims that read the
	// session name from the request body or query string and delegate to
	// the same handlers.
	s.mux.HandleFunc("POST /v1/load", func(w http.ResponseWriter, r *http.Request) {
		s.handleLoad(w, r, "")
	})
	s.mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r, "")
	})
	s.mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handleExplain(w, r, "")
	})
	s.mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s.handleSnapshot(w, r, r.URL.Query().Get("session"))
	})
	return s
}

// newSession builds an empty session (no database, no log attached).
func (s *Server) newSession(name string) *session {
	return &session{
		name:    name,
		created: time.Now(),
		db:      relation.NewDatabase(),
		prep:    plan.NewPrepCache(s.opts.CacheCap),
		results: newResultCache(s.opts.ResultCacheCap),
		warm:    newWarmSet(),
		vecCh:   make(chan struct{}),
	}
}

// EnableDurability attaches a data directory: every session already on
// disk is recovered — database contents, version vectors, null identities
// restored to the last acknowledged load, prepared-plan cache re-warmed
// from the snapshot's warm keys — and every future load is written ahead
// and fsync'd before it is acknowledged. Must be called before serving.
func (s *Server) EnableDurability(dir string) error {
	st, err := store.Open(dir, store.Options{SnapshotBytes: s.opts.SnapshotBytes})
	if err != nil {
		return err
	}
	recovered, err := st.Recover()
	if err != nil {
		return err
	}
	s.st = st
	for _, rec := range recovered {
		sess := s.newSession(rec.Name)
		sess.db = rec.DB
		sess.log = rec.Log
		sess.replSeq.Store(rec.Log.Seq())
		sess.warm.seed(rec.Warm)
		s.sessions[rec.Name] = sess
		s.warmSession(sess, rec.Warm)
		log.Printf("server: recovered session %q (%d relations, wal seq %d) and warmed %d plan(s)",
			rec.Name, len(rec.DB.Names()), rec.Log.Seq(), len(rec.Warm))
	}
	return nil
}

// Close releases the durability subsystem's file handles (after serving
// stops); a memory-only server has nothing to close.
func (s *Server) Close() error {
	if s.st == nil {
		return nil
	}
	return s.st.Close()
}

// Handler returns the HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// maxBodyBytes caps request bodies (load payloads dominate); beyond it
// the JSON decoder fails with a 400 instead of buffering without bound.
const maxBodyBytes = 64 << 20

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get ShutdownGrace to
// finish. Header-read and idle timeouts guard against slow-client
// connection exhaustion; there is deliberately no write timeout, since
// oracle queries may legitimately run long and WAL tails stream
// indefinitely.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), s.opts.shutdownGrace())
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}

// acquire takes an evaluation slot, respecting the request context. A free
// slot is taken even when the context is already done (the fast path below
// never loses that race), so the error always means the caller actually
// waited: it reports the live in-flight gauge and the context's own cause
// so a client-side timeout is not misread as server saturation.
func (s *Server) acquire(ctx context.Context) *api.Error {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	default:
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return api.Errorf(http.StatusServiceUnavailable, api.CodeOverloaded,
			"no evaluation slot (%d of %d in flight): %v",
			s.inflight.Load(), s.opts.maxInFlight(), ctx.Err())
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// sessionFor returns the named session, or nil.
func (s *Server) sessionFor(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

// ensureSession returns the named session, creating an empty one on first
// use. On a durable server the session's write-ahead log is attached (and
// its directory created) here.
func (s *Server) ensureSession(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[name]; ok {
		return sess, nil
	}
	sess := s.newSession(name)
	if s.st != nil {
		l, err := s.st.Session(name)
		if err != nil {
			return nil, err
		}
		sess.log = l
	}
	s.sessions[name] = sess
	return sess, nil
}

// Preload loads data (raparse text) into the named session before serving;
// it returns the number of relations loaded. Used by incdbd -load. On a
// durable server the preload commits through the WAL like any other load.
func (s *Server) Preload(session, data string) (int, error) {
	db, err := raparse.ParseDatabase(strings.NewReader(data))
	if err != nil {
		return 0, err
	}
	sess, err := s.ensureSession(session)
	if err != nil {
		return 0, err
	}
	resp, aerr := s.commitReplace(sess, db, store.OpReplace, data)
	if aerr != nil {
		return 0, aerr
	}
	return len(resp.Relations), nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, name string) {
	var req api.LoadRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	if name == "" {
		writeErr(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "missing session name"))
		return
	}
	if s.repl != nil {
		writeErr(w, api.Errorf(http.StatusForbidden, api.CodeReadOnlyReplica,
			"this server follows %s; load data on the primary", s.repl.primary))
		return
	}
	if req.Snapshot {
		s.handleRestore(w, name, &req)
		return
	}
	if req.Append {
		if sess := s.sessionFor(name); sess != nil {
			resp, aerr := s.commitAppend(sess, req.Data)
			if aerr != nil {
				writeErr(w, aerr)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// Appending to a session that does not exist yet is its first load.
	}
	// Replace path: parse and validate the payload before the session is
	// even created, so a failed first load leaves no phantom empty session
	// behind and a failed replace leaves the old database untouched.
	db, err := raparse.ParseDatabase(strings.NewReader(req.Data))
	if err != nil {
		writeErr(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	sess, err := s.ensureSession(name)
	if err != nil {
		writeErr(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err))
		return
	}
	resp, aerr := s.commitReplace(sess, db, store.OpReplace, req.Data)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRestore bootstraps (or resets) a session from a snapshot export —
// the payload a snapshot endpoint (possibly of another server) produced.
// Null identifiers and the version vector are preserved, and the
// snapshot's warm keys re-prepare the working set.
func (s *Server) handleRestore(w http.ResponseWriter, name string, req *api.LoadRequest) {
	snap, err := store.DecodeSnapshot(strings.NewReader(req.Data))
	if err != nil {
		writeErr(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	db, err := snap.Database()
	if err != nil {
		writeErr(w, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err))
		return
	}
	sess, err := s.ensureSession(name)
	if err != nil {
		writeErr(w, api.Errorf(http.StatusInternalServerError, api.CodeInternal, "%v", err))
		return
	}
	resp, aerr := s.commitReplace(sess, db, store.OpRestore, req.Data)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	sess.warm.seed(snap.Warm)
	s.warmSession(sess, snap.Warm)
	writeJSON(w, http.StatusOK, resp)
}

// commitAppend applies an append mutation and makes it durable: parse into
// the live database under the write lock and buffer the WAL record under
// logMu (so log order is apply order), then group-commit the fsync outside
// both locks — appends that arrive while the fsync is in flight buffer
// behind it and ride the next one together, and concurrent queries are
// never blocked on the disk.
func (s *Server) commitAppend(sess *session, data string) (api.LoadResponse, *api.Error) {
	sess.logMu.Lock()
	sess.mu.Lock()
	// Parse into the live database (atomic: a payload error leaves it
	// untouched); version bumps on the touched relations invalidate
	// exactly the prepared plans reading them, and result-cache keys
	// embedding the old vector stop matching.
	if err := raparse.ParseDatabaseInto(strings.NewReader(data), sess.db); err != nil {
		sess.mu.Unlock()
		sess.logMu.Unlock()
		return api.LoadResponse{}, api.Errorf(http.StatusBadRequest, api.CodeBadQuery, "%v", err)
	}
	resp := loadResponse(sess)
	sess.bumpVector()
	sess.mu.Unlock()
	seq, aerr := s.logBuffer(sess, store.OpAppend, data, resp.Versions)
	sess.logMu.Unlock()
	if aerr != nil {
		return api.LoadResponse{}, aerr
	}
	if aerr := s.logSync(sess, seq); aerr != nil {
		return api.LoadResponse{}, aerr
	}
	s.snapshotIfNeeded(sess)
	return resp, nil
}

// commitReplace installs db as the session database (replace and
// snapshot-restore loads, and Preload) and makes the mutation durable.
func (s *Server) commitReplace(sess *session, db *relation.Database, op store.Op, data string) (api.LoadResponse, *api.Error) {
	sess.logMu.Lock()
	sess.mu.Lock()
	// Replacing the database wholesale replaces every relation object, so
	// no cached prepared plan can survive its pointer guard — drop the
	// cache now rather than letting stale entries pin the old database's
	// frozen materializations. The result cache goes with it: fresh
	// relations restart their version counters, so its vector-embedding
	// keys could otherwise collide with the old database's.
	sess.db = db
	sess.prep = plan.NewPrepCache(s.opts.CacheCap)
	sess.results = newResultCache(s.opts.ResultCacheCap)
	resp := loadResponse(sess)
	sess.bumpVector()
	sess.mu.Unlock()
	seq, aerr := s.logBuffer(sess, op, data, resp.Versions)
	sess.logMu.Unlock()
	if aerr != nil {
		return api.LoadResponse{}, aerr
	}
	if aerr := s.logSync(sess, seq); aerr != nil {
		return api.LoadResponse{}, aerr
	}
	s.snapshotIfNeeded(sess)
	return resp, nil
}

// logBuffer assigns the applied mutation its WAL record (no-op on a
// memory-only server). Caller holds logMu.
func (s *Server) logBuffer(sess *session, op store.Op, data string, versions map[string]uint64) (uint64, *api.Error) {
	if sess.log == nil {
		return 0, nil
	}
	seq, err := sess.log.Buffer(op, data, versions)
	if err != nil {
		// The mutation is applied in memory but not durable; surface that
		// honestly — the client must not treat this load as acknowledged.
		return 0, api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"load applied but not durable (wal append failed): %v", err)
	}
	return seq, nil
}

// logSync blocks until the buffered record is fsync'd (group commit: it
// rides or leads a shared flush). No-op on a memory-only server.
func (s *Server) logSync(sess *session, seq uint64) *api.Error {
	if sess.log == nil {
		return nil
	}
	if err := sess.log.Sync(seq); err != nil {
		return api.Errorf(http.StatusInternalServerError, api.CodeInternal,
			"load applied but not durable (wal sync failed): %v", err)
	}
	return nil
}

// snapshotIfNeeded takes a compacting snapshot when the session's WAL has
// outgrown the threshold.
func (s *Server) snapshotIfNeeded(sess *session) {
	if sess.log == nil || s.st == nil {
		return
	}
	if sess.log.WalBytes() < s.st.SnapshotBytes() {
		return
	}
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	if sess.log.WalBytes() < s.st.SnapshotBytes() {
		return // another commit already compacted
	}
	snap, err := s.snapshotOf(sess)
	if err != nil {
		log.Printf("server: snapshot session %q: %v", sess.name, err)
		return
	}
	if err := sess.log.InstallSnapshot(snap); err != nil {
		log.Printf("server: snapshot session %q: %v", sess.name, err)
	}
}

// snapshotOf renders a consistent snapshot of the session: database text,
// version vector, null allocator and warm keys under the read lock, with
// the WAL sequence number consistent because the caller holds logMu (no
// load can be mid-commit).
func (s *Server) snapshotOf(sess *session) (*store.Snapshot, error) {
	var seq uint64
	if sess.log != nil {
		seq = sess.log.Seq()
	} else {
		seq = sess.replSeq.Load()
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return store.TakeSnapshot(sess.name, sess.db, seq, sess.warm.snapshot())
}

// handleSnapshot is the read-only snapshot export: the same encoding the
// durable store writes, served over HTTP so a fresh replica (or incdbctl)
// can bootstrap a session from a running server via the snapshot-load
// path. Works on memory-only servers too (the sequence number is then 0).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, name string) {
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, errSessionNotFound(name))
		return
	}
	sess.logMu.Lock()
	snap, err := s.snapshotOf(sess)
	sess.logMu.Unlock()
	if err != nil {
		writeErr(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeInternal, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := snap.EncodeTo(w); err != nil {
		log.Printf("server: snapshot export %q: %v", name, err)
	}
}

// handleWAL streams a session's write-ahead log from a given position:
// GET /v1/sessions/{name}/wal?from=<seq> writes every durable record with
// a sequence number greater than from as a length-prefixed CRC-checked
// frame (the WAL's own on-disk framing), then blocks and keeps streaming
// records as they commit — the replication feed a follower tails. When the
// requested position was already compacted into a snapshot the response is
// 410 wal_gap and the follower must re-bootstrap from /snapshot.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("session")
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, errSessionNotFound(name))
		return
	}
	if sess.log == nil {
		writeErr(w, api.Errorf(http.StatusConflict, api.CodeNotDurable,
			"session %q has no write-ahead log (server is memory-only); replication needs -data-dir", name))
		return
	}
	from := uint64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad from=%q: %v", v, err))
			return
		}
		from = n
	}
	tail, err := sess.log.TailFrom(from)
	if err != nil {
		writeErr(w, api.Errorf(http.StatusGone, api.CodeWALGap,
			"wal position %d compacted away (snapshot covers seq %d); re-bootstrap from the snapshot",
			from, sess.log.SnapshotSeq()))
		return
	}
	defer tail.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		frame, _, err := tail.Next(r.Context())
		if err != nil {
			// Client gone, or the log compacted past the tail: close the
			// stream; the follower reconnects and resolves (a reconnect
			// behind the snapshot gets 410 and re-bootstraps).
			return
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

// vectorCovers reports whether the vector have is at least as new as want
// for every relation want mentions.
func vectorCovers(have, want map[string]uint64) bool {
	for name, v := range want {
		if have[name] < v {
			return false
		}
	}
	return true
}

// waitCovered blocks until the session's version vector covers the
// consistency token. On a primary an uncovered token fails immediately
// (its vector is authoritative — the token came from another history, e.g.
// a wholesale replace reset the counters); on a replica the request waits
// up to StaleWait for replication to catch up before failing with 412
// stale_replica, so reads are monotonic across the fleet.
func (s *Server) waitCovered(ctx context.Context, sess *session, want map[string]uint64) *api.Error {
	if len(want) == 0 {
		return nil
	}
	deadline := time.NewTimer(s.opts.staleWait())
	defer deadline.Stop()
	for {
		sess.mu.RLock()
		have := sess.db.Versions()
		ch := sess.vecCh
		sess.mu.RUnlock()
		if vectorCovers(have, want) {
			return nil
		}
		stale := api.Errorf(http.StatusPreconditionFailed, api.CodeStaleReplica,
			"session vector %v does not cover consistency token %v", have, want)
		if s.repl == nil {
			return stale
		}
		select {
		case <-ch:
		case <-deadline.C:
			return stale
		case <-ctx.Done():
			return stale
		}
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, name string) {
	var req api.QueryRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, errSessionNotFound(name))
		return
	}
	if aerr := s.waitCovered(r.Context(), sess, req.ReadAfter); aerr != nil {
		writeErr(w, aerr)
		return
	}
	start := time.Now()

	// Result-cache fast path: a byte-identical repeated request against an
	// unchanged version vector is answered without taking an evaluation
	// slot — O(1) regardless of what the query costs to evaluate.
	sess.mu.RLock()
	key := resultKey(&req, sess.db)
	versions := sess.db.Versions()
	cached, hit := sess.results.get(key)
	sess.mu.RUnlock()
	if hit {
		sess.queries.Add(1)
		s.recordWarm(sess, &req)
		writeJSON(w, http.StatusOK, api.QueryResponse{
			Session:   name,
			Proc:      procName(req.Proc),
			Query:     req.Query,
			Results:   cached,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
			Cached:    true,
			Versions:  versions,
		})
		return
	}

	if aerr := s.acquire(r.Context()); aerr != nil {
		writeErr(w, aerr)
		return
	}
	defer s.release()

	sess.mu.RLock()
	// Re-key under the same lock as the evaluation: the vector may have
	// moved between the fast path and acquiring a slot.
	key = resultKey(&req, sess.db)
	versions = sess.db.Versions()
	results, err := s.evaluate(sess, &req)
	if err == nil {
		sess.results.put(key, results)
	}
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeBadQuery, "%v", err))
		return
	}
	sess.queries.Add(1)
	s.recordWarm(sess, &req)
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Session:   name,
		Proc:      procName(req.Proc),
		Query:     req.Query,
		Results:   results,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		Versions:  versions,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, name string) {
	var req api.ExplainRequest
	if err := decode(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if name == "" {
		name = req.Session
	}
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, errSessionNotFound(name))
		return
	}
	if aerr := s.acquire(r.Context()); aerr != nil {
		writeErr(w, aerr)
		return
	}
	defer s.release()

	sess.mu.RLock()
	info, err := s.explain(sess, &req)
	sess.mu.RUnlock()
	if err != nil {
		writeErr(w, api.Errorf(http.StatusUnprocessableEntity, api.CodeBadQuery, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.ExplainResponse{
		Session: name,
		Plan:    info,
		Text:    info.Text(),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.sessions))
	for name := range s.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	sessions := make([]*session, len(names))
	for i, name := range names {
		sessions[i] = s.sessions[name]
	}
	s.mu.RUnlock()

	resp := api.StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       engine.Options{Workers: s.opts.Workers}.WorkerCount(),
		MaxInFlight:   s.opts.maxInFlight(),
		InFlight:      int(s.inflight.Load()),
	}
	if s.st != nil {
		resp.DataDir = s.st.Dir()
	}
	if s.repl != nil {
		resp.Replication = s.repl.status()
	}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, s.sessionStatusOf(sess))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionStatus reports one session's status.
func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("session")
	sess := s.sessionFor(name)
	if sess == nil {
		writeErr(w, errSessionNotFound(name))
		return
	}
	writeJSON(w, http.StatusOK, s.sessionStatusOf(sess))
}

func (s *Server) sessionStatusOf(sess *session) api.SessionStatus {
	sess.mu.RLock()
	st := api.SessionStatus{
		Name:        sess.name,
		CreatedAt:   sess.created.UTC().Format(time.RFC3339),
		Queries:     sess.queries.Load(),
		Versions:    sess.db.Versions(),
		Relations:   relationStatuses(sess.db),
		Cache:       sess.prep.Stats(),
		ResultCache: sess.results.stats(),
	}
	if sess.log != nil {
		d := sess.log.Stats()
		st.Durability = &d
	}
	sess.mu.RUnlock()
	return st
}

// loadResponse renders a load acknowledgement for the session's current
// state; caller holds the session lock.
func loadResponse(sess *session) api.LoadResponse {
	return api.LoadResponse{
		Session:   sess.name,
		Relations: relationStatuses(sess.db),
		Versions:  sess.db.Versions(),
	}
}

func relationStatuses(db *relation.Database) []api.RelationStatus {
	var out []api.RelationStatus
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		out = append(out, api.RelationStatus{
			Name:    name,
			Arity:   r.Arity(),
			Rows:    r.Len(),
			Version: r.Version(),
		})
	}
	return out
}

func errSessionNotFound(name string) *api.Error {
	return api.Errorf(http.StatusNotFound, api.CodeSessionNotFound,
		"unknown session %q (load data first)", name)
}

func decode(w http.ResponseWriter, r *http.Request, into any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

// writeErr writes the uniform error envelope:
// {"error":{"code":"...","message":"..."}}.
func writeErr(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, e.Status, api.ErrorEnvelope{Error: e})
}
