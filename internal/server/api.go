// Package server implements incdbd: a long-lived HTTP/JSON query service
// over named, session-scoped incomplete databases.
//
// Each session holds one incomplete database (loaded and mutated through
// /v1/load in the raparse text format) and one prepared-plan cache: the
// compile-once planner's Prepared state — frozen null-free subplan results,
// join build tables, IN splits — survives across requests and is shared
// read-only by concurrent queries, guarded by the relations' mutation
// versions so that mutating a touched relation invalidates exactly the
// affected entries (see plan.PrepCache).
//
// Endpoints:
//
//	POST /v1/load      load or append data into a session's database
//	POST /v1/query     evaluate a query under any evaluation procedure
//	POST /v1/explain   structured plan rendering (shared with incdbctl)
//	GET  /v1/status    sessions, version vectors, cache counters, durability
//	GET  /v1/snapshot  consistent snapshot export for replica bootstrap
//
// With a data directory attached (incdbd -data-dir, see internal/store)
// every load is written ahead to a per-session log and fsync'd before it is
// acknowledged, snapshots compact the log, and startup recovers all
// sessions — catalogue, version vectors, null identities and warm
// prepared-plan keys — to the last acknowledged load.
//
// The wire types below are shared by the server handlers and the incdbctl
// client/REPL, so the two cannot drift apart.
package server

import (
	"incdb/internal/plan"
	"incdb/internal/store"
)

// LoadRequest creates or extends a session database. Data is the raparse
// text format ("rel NAME attrs…" / "row NAME values…" lines). With Append
// false the session's database is replaced wholesale; with Append true the
// lines are parsed into the live database — new "rel" lines extend the
// schema, "row" lines add tuples (bumping the relations' mutation
// versions, which invalidates exactly the prepared plans that read them).
// With Snapshot true, Data is instead a /v1/snapshot export (or durable
// snapshot file): the session is replaced by the decoded database with
// null identifiers and version vector preserved — the replica bootstrap
// path.
type LoadRequest struct {
	Session  string `json:"session"`
	Data     string `json:"data"`
	Append   bool   `json:"append,omitempty"`
	Snapshot bool   `json:"snapshot,omitempty"`
}

// LoadResponse reports the resulting schema and version vector.
type LoadResponse struct {
	Session   string           `json:"session"`
	Relations []RelationStatus `json:"relations"`
}

// RelationStatus describes one relation of a session database.
type RelationStatus struct {
	Name    string `json:"name"`
	Arity   int    `json:"arity"`
	Rows    int    `json:"rows"` // distinct tuples
	Version uint64 `json:"version"`
}

// QueryRequest evaluates Query (raparse query syntax) against a session
// database. Proc selects the evaluation procedure: sql (default), naive,
// cert (cert⊥), inter (cert∩), plus (Q⁺), poss (Q?), or
// ctable-eager|semi|lazy|aware (certain and possible parts). Bag switches
// sql/naive to bag semantics. MaxWorlds bounds the certainty oracles (0 =
// server default).
type QueryRequest struct {
	Session   string `json:"session"`
	Query     string `json:"query"`
	Proc      string `json:"proc,omitempty"`
	Bag       bool   `json:"bag,omitempty"`
	MaxWorlds int    `json:"max_worlds,omitempty"`
}

// Resultset is one relation of answers. Rows are rendered in the
// database text format: constants verbatim, the null ⊥k as "_k". Mults is
// set only when some multiplicity differs from one (bag semantics).
type Resultset struct {
	Name    string     `json:"name"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows"`
	Mults   []int      `json:"mults,omitempty"`
}

// QueryResponse carries the evaluation results: one resultset for most
// procedures, certain+possible for the ctable strategies. Cached reports
// that the oracle result cache answered without evaluating anything.
type QueryResponse struct {
	Session   string      `json:"session"`
	Proc      string      `json:"proc"`
	Query     string      `json:"query"`
	Results   []Resultset `json:"results"`
	ElapsedMs float64     `json:"elapsed_ms"`
	Cached    bool        `json:"cached,omitempty"`
}

// ExplainRequest renders the plan for a query against a session database.
type ExplainRequest struct {
	Session string `json:"session"`
	Query   string `json:"query"`
	SQL     bool   `json:"sql,omitempty"` // plan for SQL three-valued evaluation
	Bag     bool   `json:"bag,omitempty"`
}

// ExplainResponse returns the structured plan (the same plan.Describe
// output incdbctl's explain -format json prints) plus its text rendering.
type ExplainResponse struct {
	Session string            `json:"session"`
	Plan    *plan.ExplainInfo `json:"plan"`
	Text    string            `json:"text"`
}

// StatusResponse is the server-wide status snapshot. DataDir is set when
// durability is enabled.
type StatusResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Workers       int             `json:"workers"`
	MaxInFlight   int             `json:"max_in_flight"`
	InFlight      int             `json:"in_flight"`
	DataDir       string          `json:"data_dir,omitempty"`
	Sessions      []SessionStatus `json:"sessions"`
}

// SessionStatus describes one session: its schema with versions, how many
// queries it has served, its prepared-plan and oracle-result cache
// counters, and — when durability is enabled — the session's durable
// state (WAL size, sequence numbers, last snapshot and last fsync). A
// byte-identical repeated query shows up as ResultCache.Hits moving; a
// plan-equal but differently spelled one as Cache.Hits; mutating a
// relation shows up as Cache.Invalidations moving on the next affected
// query (result-cache entries simply stop being reachable, their key
// embeds the version vector).
type SessionStatus struct {
	Name        string            `json:"name"`
	CreatedAt   string            `json:"created_at"`
	Queries     uint64            `json:"queries"`
	Relations   []RelationStatus  `json:"relations"`
	Cache       plan.CacheStats   `json:"cache"`
	ResultCache ResultCacheStats  `json:"result_cache"`
	Durability  *store.Durability `json:"durability,omitempty"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
