package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"incdb/internal/api"
	"incdb/internal/obs"
	"incdb/internal/store"
)

// Client speaks the incdbd HTTP/JSON protocol; incdbctl's client/REPL mode,
// the replication follower and the smoke tests are built on it, so the CLI
// and the server share the wire types (incdb/internal/api) by construction.
//
// The client tracks the session's version vector as responses report it
// and echoes it as the consistency token of every query, so a session of
// reads through one client is monotonic even when its requests land on a
// replica that lags the primary: the replica holds the read until
// replication covers the token (or answers 412 stale_replica, api.Error
// code CodeStaleReplica). Vector/SetVector expose the token so it can also
// be carried across processes (incdbctl -read-after).
//
// A client built with NewFailoverClient is failover-aware: it holds a list
// of endpoints (the primary and its replicas), classifies errors as
// retryable (connection refused/reset, overloaded, shutting_down, and —
// for writes — read_only_replica and fenced_stale_primary) versus terminal
// (bad query, unknown session), retries with jittered exponential backoff,
// and re-discovers the writable primary by probing /v1/status for
// role+epoch. The consistency token and the highest observed epoch carry
// across the switch, so read-your-writes holds through a failover and a
// revived stale primary is fenced by the first write that reaches it. A
// single-endpoint client (NewClient) never retries — errors surface
// immediately, exactly as before failover awareness existed.
type Client struct {
	endpoints []string
	session   string
	hc        *http.Client

	// retryWindow bounds how long a multi-endpoint client keeps retrying a
	// retryable failure before surfacing it.
	retryWindow time.Duration

	mu     sync.Mutex
	vec    map[string]uint64
	epoch  uint64 // highest epoch observed in any response
	cur    int    // preferred endpoint index
	trace  string // traceparent header sent with every mutation/query, "" = none
	detail bool   // ask for per-plan-node spans on traced queries
}

// NewClient returns a client for the single server at base (e.g.
// "http://127.0.0.1:8080") operating on the named session. It never
// retries or fails over.
func NewClient(base, session string) *Client {
	return NewFailoverClient([]string{base}, session)
}

// NewFailoverClient returns a client that fails over across the given
// endpoints (first one preferred). With more than one endpoint, retryable
// errors are retried with jittered exponential backoff for up to
// DefaultRetryWindow (see SetRetryWindow) while the client re-discovers
// the writable primary.
func NewFailoverClient(endpoints []string, session string) *Client {
	eps := make([]string, 0, len(endpoints))
	for _, e := range endpoints {
		if e = strings.TrimRight(strings.TrimSpace(e), "/"); e != "" {
			eps = append(eps, e)
		}
	}
	return &Client{
		endpoints:   eps,
		session:     session,
		hc:          &http.Client{},
		retryWindow: DefaultRetryWindow,
	}
}

// DefaultRetryWindow is how long a failover client retries retryable
// failures before giving up.
const DefaultRetryWindow = 15 * time.Second

// SetRetryWindow adjusts the retry budget (multi-endpoint clients only).
func (c *Client) SetRetryWindow(d time.Duration) { c.retryWindow = d }

// Session returns the session name the client operates on.
func (c *Client) Session() string { return c.session }

// Base returns the server URL the client currently prefers.
func (c *Client) Base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur]
}

// Endpoints returns the full endpoint list.
func (c *Client) Endpoints() []string { return append([]string(nil), c.endpoints...) }

// Epoch returns the highest replication epoch the client has observed.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// observeEpoch folds a response's epoch into the client's (monotonic).
func (c *Client) observeEpoch(e uint64) {
	c.mu.Lock()
	if e > c.epoch {
		c.epoch = e
	}
	c.mu.Unlock()
}

// Vector returns the client's current consistency token: the merge of
// every version vector the server has reported to it.
func (c *Client) Vector() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.vec))
	for k, v := range c.vec {
		out[k] = v
	}
	return out
}

// SetVector installs a consistency token obtained elsewhere (another
// client, incdbctl vector) so the next query reads at least that state.
func (c *Client) SetVector(vec map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vec = make(map[string]uint64, len(vec))
	for k, v := range vec {
		c.vec[k] = v
	}
}

// mergeVector folds a response's vector into the token, keeping the newest
// version per relation.
func (c *Client) mergeVector(vec map[string]uint64) {
	if len(vec) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vec == nil {
		c.vec = map[string]uint64{}
	}
	for k, v := range vec {
		if c.vec[k] < v {
			c.vec[k] = v
		}
	}
}

// assignVector replaces the token outright — after a wholesale replace or
// snapshot restore the relations restart their counters, so merging would
// pin the client to versions that no longer exist.
func (c *Client) assignVector(vec map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vec = make(map[string]uint64, len(vec))
	for k, v := range vec {
		c.vec[k] = v
	}
}

func (c *Client) sessionPath(suffix string) string {
	return "/v1/sessions/" + url.PathEscape(c.session) + suffix
}

// SetTraceParent installs a W3C traceparent the client sends with every
// load/query/explain request, so server-side spans join the caller's
// distributed trace ("" stops propagating). Most callers want NewTrace
// instead.
func (c *Client) SetTraceParent(tp string) {
	c.mu.Lock()
	c.trace = tp
	c.mu.Unlock()
}

// NewTrace mints a fresh always-sampled trace context, installs it as the
// client's traceparent, and returns the trace ID — afterwards the spans of
// every request this client sends can be fetched with Trace(id) (on each
// server of the fleet; the sampled flag travels with the requests and
// their WAL records, so primaries and replicas all keep their spans).
func (c *Client) NewTrace() string {
	sc := obs.NewSpanContext(true)
	c.SetTraceParent(sc.TraceParent())
	return sc.TraceID.String()
}

// traceParent returns the installed traceparent ("" = none).
func (c *Client) traceParent() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace
}

// SetTraceDetail asks for per-plan-node child spans on every traced query
// this client sends (api.QueryRequest.TraceDetail) — the trace-tree view
// of EXPLAIN ANALYZE's actuals. Ignored by the server unless the
// request's trace is sampled.
func (c *Client) SetTraceDetail(on bool) {
	c.mu.Lock()
	c.detail = on
	c.mu.Unlock()
}

func (c *Client) traceDetail() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.detail
}

// retryable classifies an error: can another attempt (possibly against
// another endpoint) succeed where this one failed? Transport errors
// (connection refused/reset — the endpoint is dead or restarting) are
// always retryable; protocol errors are retryable by code: overloaded and
// shutting_down are transient anywhere, read_only_replica and
// fenced_stale_primary mean a write landed on a non-primary (re-discover
// and retry there), stale_replica means a read landed on a lagging replica
// (another endpoint may be fresher). Everything else — bad query, unknown
// session, internal — is terminal: retrying cannot change the answer.
func retryable(err error, write bool) bool {
	var aerr *api.Error
	if !errors.As(err, &aerr) {
		return true // transport-level: endpoint unreachable
	}
	switch aerr.Code {
	case api.CodeOverloaded, api.CodeShuttingDown:
		return true
	case api.CodeReadOnlyReplica, api.CodeFencedStalePrimary:
		return write
	case api.CodeStaleReplica:
		return !write
	default:
		return false
	}
}

// retry runs fn against the preferred endpoint, and — multi-endpoint
// clients only — keeps retrying retryable failures with jittered
// exponential backoff (50ms doubling to 1s) until the retry window runs
// out, re-picking the endpoint after each failure: writes re-discover the
// primary, reads rotate. fn must be safe to re-run (request bodies are
// rebuilt per attempt).
func (c *Client) retry(write bool, fn func(base string) error) error {
	if len(c.endpoints) == 1 {
		return fn(c.endpoints[0])
	}
	deadline := time.Now().Add(c.retryWindow)
	backoff := 50 * time.Millisecond
	for {
		err := fn(c.Base())
		if err == nil || !retryable(err, write) {
			return err
		}
		if time.Now().After(deadline) {
			return err
		}
		c.reroute(err, write)
		time.Sleep(jitter(backoff))
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// reroute picks the next endpoint after a retryable failure: failed writes
// (and writes bounced by a non-primary) probe every endpoint's status for
// the writable primary; failed reads rotate to the next endpoint.
func (c *Client) reroute(err error, write bool) {
	var aerr *api.Error
	if errors.As(err, &aerr) {
		switch aerr.Code {
		case api.CodeReadOnlyReplica, api.CodeFencedStalePrimary:
			c.discoverPrimary()
			return
		case api.CodeStaleReplica:
			c.advance()
			return
		}
	}
	if write {
		c.discoverPrimary()
	} else {
		c.advance()
	}
}

// advance rotates the preferred endpoint (reads go anywhere).
func (c *Client) advance() {
	c.mu.Lock()
	c.cur = (c.cur + 1) % len(c.endpoints)
	c.mu.Unlock()
}

// discoverPrimary probes every endpoint's /v1/status (briefly) and prefers
// the reachable writable primary with the highest epoch — after a
// failover, the promoted follower; every probed epoch folds into the
// client's, so subsequent writes fence any stale primary they reach.
func (c *Client) discoverPrimary() {
	best, bestEpoch := -1, uint64(0)
	for i, ep := range c.endpoints {
		st, err := c.statusAt(ep, 2*time.Second)
		if err != nil {
			continue
		}
		c.observeEpoch(st.Epoch)
		if st.Role == api.RolePrimary && (best < 0 || st.Epoch > bestEpoch) {
			best, bestEpoch = i, st.Epoch
		}
	}
	if best >= 0 {
		c.mu.Lock()
		c.cur = best
		c.mu.Unlock()
	} else {
		c.advance() // nothing claims primary yet; keep rotating
	}
}

// statusAt fetches one endpoint's status with a bounded wait.
func (c *Client) statusAt(base string, timeout time.Duration) (*api.StatusResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	var out api.StatusResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Load replaces (or, with append_, extends) the session database with data
// in the raparse text format.
func (c *Client) Load(data string, append_ bool) (*api.LoadResponse, error) {
	var out api.LoadResponse
	err := c.retry(true, func(base string) error {
		return c.post(base, c.sessionPath("/load"),
			api.LoadRequest{Data: data, Append: append_, Epoch: c.Epoch()}, &out)
	})
	if err != nil {
		return nil, err
	}
	c.observeEpoch(out.Epoch)
	if append_ {
		c.mergeVector(out.Versions)
	} else {
		c.assignVector(out.Versions)
	}
	return &out, nil
}

// LoadFile is Load from a file.
func (c *Client) LoadFile(path string, append_ bool) (*api.LoadResponse, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return c.Load(string(data), append_)
}

// Query evaluates a query under the given procedure (see api.QueryRequest),
// sending the client's consistency token and folding the response's vector
// back in.
func (c *Client) Query(query, proc string, bag bool, maxWorlds int) (*api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.retry(false, func(base string) error {
		return c.post(base, c.sessionPath("/query"), api.QueryRequest{
			Query: query, Proc: proc, Bag: bag, MaxWorlds: maxWorlds,
			ReadAfter: c.Vector(), Epoch: c.Epoch(), TraceDetail: c.traceDetail(),
		}, &out)
	})
	if err != nil {
		return nil, err
	}
	c.observeEpoch(out.Epoch)
	c.mergeVector(out.Versions)
	return &out, nil
}

// Explain renders the plan for a query.
func (c *Client) Explain(query string, sql, bag bool) (*api.ExplainResponse, error) {
	return c.ExplainAnalyze(query, sql, bag, false)
}

// ExplainAnalyze is Explain with the analyze switch: the server also
// executes the plan once with per-node tracing, so the response carries
// actual row counts and wall time next to the estimates.
func (c *Client) ExplainAnalyze(query string, sql, bag, analyze bool) (*api.ExplainResponse, error) {
	var out api.ExplainResponse
	err := c.retry(false, func(base string) error {
		return c.post(base, c.sessionPath("/explain"),
			api.ExplainRequest{Query: query, SQL: sql, Bag: bag, Analyze: analyze}, &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Promote asks the preferred endpoint to become the writable primary at
// epoch+1 (see api.PromoteRequest for force). Deliberately not retried:
// promotion is an operator action against one chosen server.
func (c *Client) Promote(force bool) (*api.PromoteResponse, error) {
	var out api.PromoteResponse
	if err := c.post(c.Base(), "/v1/promote", api.PromoteRequest{Force: force}, &out); err != nil {
		return nil, err
	}
	c.observeEpoch(out.Epoch)
	return &out, nil
}

// Snapshot fetches the session's consistent snapshot export (the
// store.Snapshot encoding): the bootstrap payload Restore (or a durable
// snapshot file) accepts.
func (c *Client) Snapshot() (string, error) {
	resp, err := c.hc.Get(c.Base() + c.sessionPath("/snapshot"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", api.DecodeError(resp.StatusCode, data)
	}
	return string(data), nil
}

// Restore replaces the session database from a snapshot export, preserving
// null identities, version vector and warm prepared-plan keys — the
// replica bootstrap call.
func (c *Client) Restore(data string) (*api.LoadResponse, error) {
	var out api.LoadResponse
	err := c.retry(true, func(base string) error {
		return c.post(base, c.sessionPath("/load"), api.LoadRequest{Data: data, Snapshot: true}, &out)
	})
	if err != nil {
		return nil, err
	}
	c.observeEpoch(out.Epoch)
	c.assignVector(out.Versions)
	return &out, nil
}

// Status fetches the server-wide status snapshot of the preferred
// endpoint.
func (c *Client) Status() (*api.StatusResponse, error) {
	resp, err := c.hc.Get(c.Base() + "/v1/status")
	if err != nil {
		return nil, err
	}
	var out api.StatusResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	c.observeEpoch(out.Epoch)
	return &out, nil
}

// Metrics fetches the preferred endpoint's Prometheus text exposition
// (GET /v1/metrics) verbatim; parse it with obs.ParseProm.
func (c *Client) Metrics() (string, error) {
	resp, err := c.hc.Get(c.Base() + "/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return string(data), nil
}

// SessionStatus fetches this session's status.
func (c *Client) SessionStatus() (*api.SessionStatus, error) {
	resp, err := c.hc.Get(c.Base() + c.sessionPath("/status"))
	if err != nil {
		return nil, err
	}
	var out api.SessionStatus
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TailWAL opens the session's replication stream at the given position
// (records with sequence numbers strictly greater than from) and invokes
// fn for every record until the stream ends or ctx is done. The returned
// error is nil on a server-side clean close (the follower reconnects), an
// *api.Error on a request-time refusal — notably CodeWALGap, demanding a
// snapshot re-bootstrap — and the transport error otherwise.
func (c *Client) TailWAL(ctx context.Context, from uint64, fn func(*store.Record) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.Base()+c.sessionPath(fmt.Sprintf("/wal?from=%d", from)), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return api.DecodeError(resp.StatusCode, data)
	}
	for {
		rec, err := store.ReadFrame(resp.Body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Traces fetches the preferred endpoint's recently finished root spans
// (GET /v1/traces); limit <= 0 means the server default.
func (c *Client) Traces(limit int) (*api.TracesResponse, error) {
	path := "/v1/traces"
	if limit > 0 {
		path += fmt.Sprintf("?limit=%d", limit)
	}
	resp, err := c.hc.Get(c.Base() + path)
	if err != nil {
		return nil, err
	}
	var out api.TracesResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Trace fetches every span the preferred endpoint holds for one trace ID
// (GET /v1/traces/{id}). A distributed trace is assembled by calling this
// on the primary and each replica and merging the span lists.
func (c *Client) Trace(id string) (*api.TraceResponse, error) {
	resp, err := c.hc.Get(c.Base() + "/v1/traces/" + url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	var out api.TraceResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(base, path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := c.traceParent(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decodeResponse(resp, into)
}

func decodeResponse(resp *http.Response, into any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return api.DecodeError(resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("server: bad response: %w", err)
	}
	return nil
}
