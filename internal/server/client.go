package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
)

// Client speaks the incdbd HTTP/JSON protocol; incdbctl's client/REPL mode
// and the smoke tests are built on it, so the CLI and the server share the
// wire types above by construction.
type Client struct {
	base    string
	session string
	hc      *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080") operating on the named session.
func NewClient(base, session string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), session: session, hc: &http.Client{}}
}

// Session returns the session name the client operates on.
func (c *Client) Session() string { return c.session }

// Load replaces (or, with append_, extends) the session database with data
// in the raparse text format.
func (c *Client) Load(data string, append_ bool) (*LoadResponse, error) {
	var out LoadResponse
	err := c.post("/v1/load", LoadRequest{Session: c.session, Data: data, Append: append_}, &out)
	return &out, err
}

// LoadFile is Load from a file.
func (c *Client) LoadFile(path string, append_ bool) (*LoadResponse, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return c.Load(string(data), append_)
}

// Query evaluates a query under the given procedure (see QueryRequest).
func (c *Client) Query(query, proc string, bag bool, maxWorlds int) (*QueryResponse, error) {
	var out QueryResponse
	err := c.post("/v1/query", QueryRequest{
		Session: c.session, Query: query, Proc: proc, Bag: bag, MaxWorlds: maxWorlds,
	}, &out)
	return &out, err
}

// Explain renders the plan for a query.
func (c *Client) Explain(query string, sql, bag bool) (*ExplainResponse, error) {
	var out ExplainResponse
	err := c.post("/v1/explain", ExplainRequest{Session: c.session, Query: query, SQL: sql, Bag: bag}, &out)
	return &out, err
}

// Snapshot fetches the session's consistent snapshot export (the
// store.Snapshot encoding): the bootstrap payload Restore (or a durable
// snapshot file) accepts.
func (c *Client) Snapshot() (string, error) {
	resp, err := c.hc.Get(c.base + "/v1/snapshot?session=" + url.QueryEscape(c.session))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return "", fmt.Errorf("server: %s", e.Error)
		}
		return "", fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return string(data), nil
}

// Restore replaces the session database from a snapshot export, preserving
// null identities, version vector and warm prepared-plan keys — the
// replica bootstrap call.
func (c *Client) Restore(data string) (*LoadResponse, error) {
	var out LoadResponse
	err := c.post("/v1/load", LoadRequest{Session: c.session, Data: data, Snapshot: true}, &out)
	return &out, err
}

// Status fetches the server-wide status snapshot.
func (c *Client) Status() (*StatusResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/status")
	if err != nil {
		return nil, err
	}
	var out StatusResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeResponse(resp, into)
}

func decodeResponse(resp *http.Response, into any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s", e.Error)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("server: bad response: %w", err)
	}
	return nil
}
