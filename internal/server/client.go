package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"

	"incdb/internal/api"
	"incdb/internal/store"
)

// Client speaks the incdbd HTTP/JSON protocol; incdbctl's client/REPL mode,
// the replication follower and the smoke tests are built on it, so the CLI
// and the server share the wire types (incdb/internal/api) by construction.
//
// The client tracks the session's version vector as responses report it
// and echoes it as the consistency token of every query, so a session of
// reads through one client is monotonic even when its requests land on a
// replica that lags the primary: the replica holds the read until
// replication covers the token (or answers 412 stale_replica, api.Error
// code CodeStaleReplica). Vector/SetVector expose the token so it can also
// be carried across processes (incdbctl -read-after).
type Client struct {
	base    string
	session string
	hc      *http.Client

	mu  sync.Mutex
	vec map[string]uint64
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080") operating on the named session.
func NewClient(base, session string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), session: session, hc: &http.Client{}}
}

// Session returns the session name the client operates on.
func (c *Client) Session() string { return c.session }

// Base returns the server URL the client talks to.
func (c *Client) Base() string { return c.base }

// Vector returns the client's current consistency token: the merge of
// every version vector the server has reported to it.
func (c *Client) Vector() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.vec))
	for k, v := range c.vec {
		out[k] = v
	}
	return out
}

// SetVector installs a consistency token obtained elsewhere (another
// client, incdbctl vector) so the next query reads at least that state.
func (c *Client) SetVector(vec map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vec = make(map[string]uint64, len(vec))
	for k, v := range vec {
		c.vec[k] = v
	}
}

// mergeVector folds a response's vector into the token, keeping the newest
// version per relation.
func (c *Client) mergeVector(vec map[string]uint64) {
	if len(vec) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vec == nil {
		c.vec = map[string]uint64{}
	}
	for k, v := range vec {
		if c.vec[k] < v {
			c.vec[k] = v
		}
	}
}

// assignVector replaces the token outright — after a wholesale replace or
// snapshot restore the relations restart their counters, so merging would
// pin the client to versions that no longer exist.
func (c *Client) assignVector(vec map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vec = make(map[string]uint64, len(vec))
	for k, v := range vec {
		c.vec[k] = v
	}
}

func (c *Client) sessionPath(suffix string) string {
	return "/v1/sessions/" + url.PathEscape(c.session) + suffix
}

// Load replaces (or, with append_, extends) the session database with data
// in the raparse text format.
func (c *Client) Load(data string, append_ bool) (*api.LoadResponse, error) {
	var out api.LoadResponse
	err := c.post(c.sessionPath("/load"), api.LoadRequest{Data: data, Append: append_}, &out)
	if err != nil {
		return nil, err
	}
	if append_ {
		c.mergeVector(out.Versions)
	} else {
		c.assignVector(out.Versions)
	}
	return &out, nil
}

// LoadFile is Load from a file.
func (c *Client) LoadFile(path string, append_ bool) (*api.LoadResponse, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return c.Load(string(data), append_)
}

// Query evaluates a query under the given procedure (see api.QueryRequest),
// sending the client's consistency token and folding the response's vector
// back in.
func (c *Client) Query(query, proc string, bag bool, maxWorlds int) (*api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.post(c.sessionPath("/query"), api.QueryRequest{
		Query: query, Proc: proc, Bag: bag, MaxWorlds: maxWorlds, ReadAfter: c.Vector(),
	}, &out)
	if err != nil {
		return nil, err
	}
	c.mergeVector(out.Versions)
	return &out, nil
}

// Explain renders the plan for a query.
func (c *Client) Explain(query string, sql, bag bool) (*api.ExplainResponse, error) {
	var out api.ExplainResponse
	err := c.post(c.sessionPath("/explain"), api.ExplainRequest{Query: query, SQL: sql, Bag: bag}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Snapshot fetches the session's consistent snapshot export (the
// store.Snapshot encoding): the bootstrap payload Restore (or a durable
// snapshot file) accepts.
func (c *Client) Snapshot() (string, error) {
	resp, err := c.hc.Get(c.base + c.sessionPath("/snapshot"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", api.DecodeError(resp.StatusCode, data)
	}
	return string(data), nil
}

// Restore replaces the session database from a snapshot export, preserving
// null identities, version vector and warm prepared-plan keys — the
// replica bootstrap call.
func (c *Client) Restore(data string) (*api.LoadResponse, error) {
	var out api.LoadResponse
	err := c.post(c.sessionPath("/load"), api.LoadRequest{Data: data, Snapshot: true}, &out)
	if err != nil {
		return nil, err
	}
	c.assignVector(out.Versions)
	return &out, nil
}

// Status fetches the server-wide status snapshot.
func (c *Client) Status() (*api.StatusResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/status")
	if err != nil {
		return nil, err
	}
	var out api.StatusResponse
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionStatus fetches this session's status.
func (c *Client) SessionStatus() (*api.SessionStatus, error) {
	resp, err := c.hc.Get(c.base + c.sessionPath("/status"))
	if err != nil {
		return nil, err
	}
	var out api.SessionStatus
	if err := decodeResponse(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TailWAL opens the session's replication stream at the given position
// (records with sequence numbers strictly greater than from) and invokes
// fn for every record until the stream ends or ctx is done. The returned
// error is nil on a server-side clean close (the follower reconnects), an
// *api.Error on a request-time refusal — notably CodeWALGap, demanding a
// snapshot re-bootstrap — and the transport error otherwise.
func (c *Client) TailWAL(ctx context.Context, from uint64, fn func(*store.Record) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+c.sessionPath(fmt.Sprintf("/wal?from=%d", from)), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return api.DecodeError(resp.StatusCode, data)
	}
	for {
		rec, err := store.ReadFrame(resp.Body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func (c *Client) post(path string, body, into any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeResponse(resp, into)
}

func decodeResponse(resp *http.Response, into any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return api.DecodeError(resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("server: bad response: %w", err)
	}
	return nil
}
