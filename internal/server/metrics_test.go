package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"incdb/internal/obs"
)

// scrape fetches and parses a server's /v1/metrics.
func scrape(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	samples, err := obs.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v\n%s", err, body)
	}
	return samples
}

// series returns the value of the sample with the given name whose labels
// include want, failing if it is absent.
func series(t *testing.T, samples []obs.Sample, name string, want map[string]string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Label(k) != v {
				ok = false
			}
		}
		if ok {
			return s.Value
		}
	}
	t.Fatalf("no series %s%v in scrape", name, want)
	return 0
}

// syncBuffer is a goroutine-safe bytes.Buffer for the test's slog sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsEndpoint: /v1/metrics is valid Prometheus text; query,
// latency, worlds, cache and error series exist and move with traffic; the
// scrape agrees with /v1/status (one set of atomics behind both); slow
// queries are counted and logged with request IDs.
func TestMetricsEndpoint(t *testing.T) {
	logbuf := &syncBuffer{}
	srv := New(Options{
		Workers:   2,
		SlowQuery: time.Nanosecond, // everything is slow: exercise the log
		Logger:    slog.New(slog.NewTextHandler(logbuf, nil)),
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, "test")

	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Query(unpaid, "cert", false, 0); err != nil {
		t.Fatalf("cert query: %v", err)
	}
	qr, err := c.Query(unpaid, "cert", false, 0) // byte-identical: result-cache hit
	if err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	if !qr.Cached {
		t.Fatalf("repeat query not served from the result cache")
	}
	if _, err := c.Query("proj(0, Orders)", "sql", false, 0); err != nil {
		t.Fatalf("sql query: %v", err)
	}
	if _, err := c.Query("proj(9, Orders)", "sql", false, 0); err == nil {
		t.Fatalf("bad query unexpectedly succeeded")
	}

	samples := scrape(t, hs.URL)

	if got := series(t, samples, "incdb_queries_total", map[string]string{"proc": "cert", "session": "test"}); got != 2 {
		t.Errorf("cert queries_total = %v, want 2 (evaluation + cache hit)", got)
	}
	// The latency histogram sees everything served, split by cache outcome:
	// the evaluation lands under cache="miss", the byte-identical repeat
	// under cache="hit" — so `incdbctl top` quantiles reflect real served
	// latency, not just evaluation cost.
	if got := series(t, samples, "incdb_query_seconds_count", map[string]string{"proc": "cert", "session": "test", "cache": "miss"}); got != 1 {
		t.Errorf("cert query_seconds_count{cache=miss} = %v, want 1", got)
	}
	if got := series(t, samples, "incdb_query_seconds_count", map[string]string{"proc": "cert", "session": "test", "cache": "hit"}); got != 1 {
		t.Errorf("cert query_seconds_count{cache=hit} = %v, want 1", got)
	}
	// The cert oracle enumerated multiple worlds for ⊥1.
	if got := series(t, samples, "incdb_worlds_enumerated_total", nil); got <= 1 {
		t.Errorf("worlds_enumerated_total = %v, want > 1", got)
	}
	if got := series(t, samples, "incdb_errors_total", map[string]string{"code": "bad_query"}); got < 1 {
		t.Errorf("errors_total{bad_query} = %v, want >= 1", got)
	}
	if got := series(t, samples, "incdb_slow_queries_total", nil); got < 1 {
		t.Errorf("slow_queries_total = %v, want >= 1", got)
	}
	if got := series(t, samples, "incdb_role", map[string]string{"role": "primary"}); got != 1 {
		t.Errorf("role{primary} = %v, want 1", got)
	}

	// Satellite consistency: the scrape-time collectors read the same
	// atomics /v1/status renders, so the two views must agree exactly.
	ss := sessionStatus(t, c, "test")
	if got := series(t, samples, "incdb_session_queries_total", map[string]string{"session": "test"}); got != float64(ss.Queries) {
		t.Errorf("session_queries_total = %v, status says %d", got, ss.Queries)
	}
	if got := series(t, samples, "incdb_prep_cache_misses_total", map[string]string{"session": "test"}); got != float64(ss.Cache.Misses) {
		t.Errorf("prep_cache_misses_total = %v, status says %d", got, ss.Cache.Misses)
	}
	if got := series(t, samples, "incdb_result_cache_hits_total", map[string]string{"session": "test"}); got != float64(ss.ResultCache.Hits) {
		t.Errorf("result_cache_hits_total = %v, status says %d", got, ss.ResultCache.Hits)
	}

	// Traffic moves the counters: one more query, one higher.
	before := series(t, samples, "incdb_queries_total", map[string]string{"proc": "sql", "session": "test"})
	if _, err := c.Query("proj(1, Orders)", "sql", false, 0); err != nil {
		t.Fatalf("query: %v", err)
	}
	after := series(t, scrape(t, hs.URL), "incdb_queries_total", map[string]string{"proc": "sql", "session": "test"})
	if after != before+1 {
		t.Errorf("sql queries_total went %v -> %v, want +1", before, after)
	}

	logs := logbuf.String()
	if !strings.Contains(logs, "slow query") {
		t.Errorf("no slow-query log line; logs:\n%s", logs)
	}
	if !strings.Contains(logs, "request_id=") || !strings.Contains(logs, "plan=") {
		t.Errorf("slow-query log missing request_id/plan fields:\n%s", logs)
	}
}

// TestRequestIDHeader: every response carries an X-Request-Id — the
// client's own when it sent one, a generated one otherwise.
func TestRequestIDHeader(t *testing.T) {
	hs, _ := newTestServer(t)
	resp, err := http.Get(hs.URL + "/v1/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("response has no X-Request-Id")
	}

	req, _ := http.NewRequest("GET", hs.URL+"/v1/status", nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Fatalf("X-Request-Id = %q, want the caller's own", got)
	}
}

// TestMetricsDurableAndFollower: a durable primary exposes WAL fsync and
// group-commit histograms; its follower serves its own valid exposition
// with role{replica}, per-session applied/lag gauges, and lag returning to
// zero once caught up.
func TestMetricsDurableAndFollower(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	if _, err := pc.Load("row Payments o2\n", true); err != nil {
		t.Fatalf("primary append: %v", err)
	}

	ps := scrape(t, phs.URL)
	if got := series(t, ps, "incdb_wal_fsync_seconds_count", nil); got < 2 {
		t.Errorf("primary fsync count = %v, want >= 2 (two acknowledged loads)", got)
	}
	if got := series(t, ps, "incdb_wal_records_per_fsync_count", nil); got < 2 {
		t.Errorf("records_per_fsync count = %v, want >= 2", got)
	}
	if got := series(t, ps, "incdb_wal_seq", map[string]string{"session": "test"}); got != 2 {
		t.Errorf("wal_seq = %v, want 2", got)
	}
	if got := series(t, ps, "incdb_wal_durable_seq", map[string]string{"session": "test"}); got != 2 {
		t.Errorf("wal_durable_seq = %v, want 2", got)
	}

	_, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})
	waitCaughtUp(t, pc, rc)

	rs := scrape(t, rhs.URL)
	if got := series(t, rs, "incdb_role", map[string]string{"role": "replica"}); got != 1 {
		t.Errorf("follower role{replica} = %v, want 1", got)
	}
	if got := series(t, rs, "incdb_replica_applied_seq", map[string]string{"session": "test"}); got != 2 {
		t.Errorf("replica_applied_seq = %v, want 2", got)
	}
	if got := series(t, rs, "incdb_replica_lag_seq", map[string]string{"session": "test"}); got != 0 {
		t.Errorf("caught-up replica lag_seq = %v, want 0", got)
	}
	// A post-bootstrap append ships as a WAL frame: the frames counter and
	// applied seq both move.
	if _, err := pc.Load("row Customers c3 'Cyd'\n", true); err != nil {
		t.Fatalf("primary append: %v", err)
	}
	waitCaughtUp(t, pc, rc)
	rs = scrape(t, rhs.URL)
	if got := series(t, rs, "incdb_replica_frames_total", map[string]string{"session": "test"}); got < 1 {
		t.Errorf("replica_frames_total = %v, want >= 1", got)
	}
	if got := series(t, rs, "incdb_replica_applied_seq", map[string]string{"session": "test"}); got != 3 {
		t.Errorf("replica_applied_seq after append = %v, want 3", got)
	}
	// The follower serves queries and counts them on its own registry.
	if _, err := rc.Query(unpaid, "cert", false, 0); err != nil {
		t.Fatalf("follower query: %v", err)
	}
	rs = scrape(t, rhs.URL)
	if got := series(t, rs, "incdb_queries_total", map[string]string{"proc": "cert", "session": "test"}); got != 1 {
		t.Errorf("follower cert queries_total = %v, want 1", got)
	}
}
