package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"incdb/internal/api"
)

// killServer is the test's kill -9: connections are severed first so an
// in-flight WAL stream (which Close would wait for) dies with them.
func killServer(hs *httptest.Server) {
	hs.CloseClientConnections()
	hs.Close()
}

// promoteURL promotes the server at base, returning the response error.
func promoteURL(base string, force bool) (*api.PromoteResponse, error) {
	return NewClient(base, "").Promote(force)
}

// TestPromoteFlipsFollowerToPrimary: promotion drains the follower, bumps
// the epoch, and flips it writable; the old primary is fenced read-only by
// the first request carrying the new epoch; promotion is idempotent on a
// primary and refused on a fenced server.
func TestPromoteFlipsFollowerToPrimary(t *testing.T) {
	psrv, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	rsrv, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})
	waitCaughtUp(t, pc, rc)

	pr, err := promoteURL(rhs.URL, false)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if pr.Epoch != 1 {
		t.Fatalf("promoted epoch = %d, want 1", pr.Epoch)
	}
	if seq, ok := pr.Sessions["test"]; !ok || seq == 0 {
		t.Fatalf("promotion reported no epoch record for session test: %+v", pr.Sessions)
	}
	if got := rsrv.role(); got != api.RolePrimary {
		t.Fatalf("promoted server role = %s, want %s", got, api.RolePrimary)
	}

	// The new primary accepts writes.
	if _, err := NewClient(rhs.URL, "test").Load("row Orders o9 c1\n", true); err != nil {
		t.Fatalf("load on promoted server: %v", err)
	}

	// The old primary still believes it is primary — until a request
	// carrying the new epoch reaches it and fences it.
	if got := psrv.role(); got != api.RolePrimary {
		t.Fatalf("old primary role = %s before observing the epoch, want %s", got, api.RolePrimary)
	}
	stale := NewClient(phs.URL, "test")
	stale.observeEpoch(pr.Epoch)
	_, err = stale.Load("row Orders oX c1\n", true)
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeFencedStalePrimary {
		t.Fatalf("write to stale primary: err = %v, want code %s", err, api.CodeFencedStalePrimary)
	}
	if got := psrv.role(); got != api.RoleFenced {
		t.Fatalf("old primary role = %s after fencing, want %s", got, api.RoleFenced)
	}
	// Fenced means read-only, not dead: writes without the epoch are also
	// refused now, reads still answer.
	if _, err := pc.Load("row Orders oY c1\n", true); !errors.As(err, &aerr) || aerr.Code != api.CodeFencedStalePrimary {
		t.Fatalf("epochless write to fenced primary: err = %v, want code %s", err, api.CodeFencedStalePrimary)
	}
	if _, err := pc.Query("proj(0, Orders)", "sql", false, 0); err != nil {
		t.Fatalf("read on fenced primary: %v", err)
	}

	// Idempotent on the new primary; refused on the fenced old one.
	if pr2, err := promoteURL(rhs.URL, false); err != nil || pr2.Epoch != pr.Epoch {
		t.Fatalf("re-promote = (%+v, %v), want idempotent epoch %d", pr2, err, pr.Epoch)
	}
	if _, err := promoteURL(phs.URL, false); !errors.As(err, &aerr) || aerr.Code != api.CodeFencedStalePrimary {
		t.Fatalf("promote fenced server: err = %v, want code %s", err, api.CodeFencedStalePrimary)
	}
}

// TestPromoteNotCaughtUp: with its primary dead mid-stream the follower is
// "retrying" and not provably caught up — promotion without force is
// refused with not_caught_up (and readyz says not ready), force promotes
// anyway (and readyz recovers).
func TestPromoteNotCaughtUp(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	_, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})
	waitCaughtUp(t, pc, rc)
	killServer(phs)

	// Wait for the follower to notice its feed is gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := rc.Status()
		if err != nil {
			t.Fatalf("replica status: %v", err)
		}
		if st.Replication != nil && len(st.Replication.Sessions) > 0 &&
			st.Replication.Sessions[0].State == "retrying" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never entered retrying: %+v", st.Replication)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if ok, reason := ready(t, rhs.URL); ok {
		t.Fatalf("retrying follower reports ready")
	} else if reason == "" {
		t.Fatalf("not-ready follower gave no reason")
	}

	_, err := promoteURL(rhs.URL, false)
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeNotCaughtUp {
		t.Fatalf("promote retrying follower: err = %v, want code %s", err, api.CodeNotCaughtUp)
	}
	pr, err := promoteURL(rhs.URL, true)
	if err != nil {
		t.Fatalf("promote force: %v", err)
	}
	if pr.Epoch != 1 {
		t.Fatalf("forced promotion epoch = %d, want 1", pr.Epoch)
	}
	if ok, _ := ready(t, rhs.URL); !ok {
		t.Fatalf("promoted server not ready")
	}
}

// ready probes /v1/readyz.
func ready(t *testing.T, base string) (bool, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	var hr api.HealthResponse
	if err := decodeResponse(resp, &hr); err != nil {
		var aerr *api.Error
		if errors.As(err, &aerr) {
			return false, aerr.Message
		}
		t.Fatalf("readyz decode: %v", err)
	}
	return hr.Ok, hr.Reason
}

// TestFailoverClientNoAcknowledgedWriteLost is the failover acceptance: a
// failover-aware client appends through a randomized kill of the primary
// and a forced promotion of its follower, never changing endpoints by
// hand, and afterwards every row it was ever acknowledged is present —
// with read-your-writes intact across the switch. The test waits for the
// follower to catch up before the kill: replication is asynchronous, so
// acknowledged-but-never-shipped records are exactly what force promotion
// documents as lost; the no-loss guarantee is for shipped history.
func TestFailoverClientNoAcknowledgedWriteLost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	_, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})

	fc := NewFailoverClient([]string{phs.URL, rhs.URL}, "test")
	if _, err := fc.Load("rel Orders a b\nrel Payments a\n"+ordersRows(0), false); err != nil {
		t.Fatalf("initial load: %v", err)
	}
	acked := []int{0}
	before := 1 + rng.Intn(8)
	for i := 1; i <= before; i++ {
		if _, err := fc.Load(ordersRows(i), true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, i)
	}

	waitCaughtUp(t, pc, rc)
	killServer(phs)
	if _, err := promoteURL(rhs.URL, true); err != nil {
		t.Fatalf("promote after kill: %v", err)
	}

	// The same client keeps writing: its first attempt hits the dead
	// primary, classification and re-discovery route it to the promoted one.
	after := 1 + rng.Intn(5)
	for i := before + 1; i <= before+after; i++ {
		if _, err := fc.Load(ordersRows(i), true); err != nil {
			t.Fatalf("append %d after failover: %v", i, err)
		}
		acked = append(acked, i)
	}

	// Read-your-writes through the same client: its token covers every ack.
	qr, err := fc.Query("proj(0, Orders)", "sql", false, 0)
	if err != nil {
		t.Fatalf("query after failover: %v", err)
	}
	got := map[string]bool{}
	for _, row := range qr.Results[0].Rows {
		got[row[0]] = true
	}
	for _, i := range acked {
		if !got[fmt.Sprintf("o%d", i)] {
			t.Fatalf("acknowledged row o%d lost across failover (have %v)", i, got)
		}
	}
	if fc.Base() != rhs.URL {
		t.Fatalf("client still prefers the dead primary %s", fc.Base())
	}
	if fc.Epoch() == 0 {
		t.Fatalf("client never observed the promotion epoch")
	}
}

// ordersRows renders one Orders+Payments append payload, distinct per i.
func ordersRows(i int) string {
	return fmt.Sprintf("row Orders o%d c1\nrow Payments o%d\n", i, i)
}

// TestRevivedStalePrimaryFencesAndRejoins: after a failover the old
// primary comes back on its data directory still believing it is primary.
// The first epoch-carrying write fences it; a failover client routes
// around it; and restarted as a follower of the new primary it converges
// byte-identically — the epoch record and post-failover appends replicate
// to it like any load.
func TestRevivedStalePrimaryFencesAndRejoins(t *testing.T) {
	pdir := t.TempDir()
	_, phs, pc := newDurableServer(t, pdir, 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	_, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})
	waitCaughtUp(t, pc, rc)
	killServer(phs)
	pr, err := promoteURL(rhs.URL, true)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	npc := NewClient(rhs.URL, "test")
	if _, err := npc.Load(ordersRows(100), true); err != nil {
		t.Fatalf("append on new primary: %v", err)
	}

	// Revive the old primary on its directory. It recovers at its old epoch
	// and claims primary — a split brain the epoch fence resolves.
	revived, revhs, revc := newDurableServer(t, pdir, 0)
	if revived.Epoch() >= pr.Epoch {
		t.Fatalf("revived primary recovered epoch %d, expected below %d", revived.Epoch(), pr.Epoch)
	}
	fc := NewFailoverClient([]string{revhs.URL, rhs.URL}, "test")
	fc.observeEpoch(pr.Epoch) // as a client that lived through the failover has
	if _, err := fc.Load(ordersRows(101), true); err != nil {
		t.Fatalf("failover client append: %v", err)
	}
	if got := revived.role(); got != api.RoleFenced {
		t.Fatalf("revived stale primary role = %s, want %s", got, api.RoleFenced)
	}
	var aerr *api.Error
	if _, err := revc.Load(ordersRows(102), true); !errors.As(err, &aerr) || aerr.Code != api.CodeFencedStalePrimary {
		t.Fatalf("direct write to revived primary: err = %v, want code %s", err, api.CodeFencedStalePrimary)
	}
	// The routed-around write landed on the real primary.
	qr, err := npc.Query("proj(0, Orders)", "sql", false, 0)
	if err != nil {
		t.Fatalf("query new primary: %v", err)
	}
	found := false
	for _, row := range qr.Results[0].Rows {
		found = found || row[0] == "o101"
	}
	if !found {
		t.Fatalf("failover client's write missing from the new primary")
	}
	killServer(revhs)
	revived.Close()

	// Rejoin: the old primary restarts as a follower of the new one and
	// converges — including the records it never saw (epoch bump, o100,
	// o101) — without re-bootstrapping, since its shipped history agrees.
	_, _, fr, _ := newFollower(t, rhs.URL, pdir, Options{Workers: 1})
	waitCaughtUp(t, npc, fr)
	want := answers(t, npc, "test", bootQueries)
	if got := answers(t, fr, "test", bootQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("rejoined old primary diverges:\nnew primary %v\nrejoined    %v", want, got)
	}
	st, err := fr.Status()
	if err != nil {
		t.Fatalf("rejoined status: %v", err)
	}
	if st.Epoch != pr.Epoch {
		t.Fatalf("rejoined follower epoch = %d, want %d", st.Epoch, pr.Epoch)
	}
}

// TestPromoteRacesInflightGroupCommit: promotion happens while a storm of
// concurrent appends is group-committing on the primary and streaming into
// the follower. The drain in promote must quiesce the mirror fsyncs so the
// epoch record lands on a consistent log: afterwards the promoted server's
// directory recovers byte-identically to its live state, at the promoted
// epoch.
func TestPromoteRacesInflightGroupCommit(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load("rel R a\nrow R seed\n", false); err != nil {
		t.Fatalf("seed load: %v", err)
	}
	rdir := t.TempDir()
	rsrv, rhs, rc, _ := newFollower(t, phs.URL, rdir, Options{Workers: 1})
	waitCaughtUp(t, pc, rc)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := NewClient(phs.URL, "test")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := wc.Load(fmt.Sprintf("row R w%dr%d\n", w, i), true); err != nil {
					return // the storm is best-effort; promotion may cut it off
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let the storm overlap the stream
	pr, err := promoteURL(rhs.URL, true)
	if err != nil {
		t.Fatalf("promote mid-storm: %v", err)
	}
	close(stop)
	wg.Wait()

	// The promoted server accepts writes at the new epoch.
	if _, err := NewClient(rhs.URL, "test").Load("row R post\n", true); err != nil {
		t.Fatalf("append after mid-storm promotion: %v", err)
	}
	live := answers(t, rc, "test", []string{"proj(0, R)"})

	// Its log is consistent: a restart on the directory recovers exactly
	// the live state, epoch included.
	rhs.Close()
	rsrv.Close()
	rec, rechs, recc := newDurableServer(t, rdir, 0)
	_ = rechs
	if got := answers(t, recc, "test", []string{"proj(0, R)"}); !reflect.DeepEqual(got, live) {
		t.Fatalf("recovered promoted server differs from live state:\nlive %v\nrec  %v", live, got)
	}
	if rec.Epoch() != pr.Epoch {
		t.Fatalf("recovered epoch = %d, want %d", rec.Epoch(), pr.Epoch)
	}
}

// TestHealthzReadyzAndDraining: healthz is pure liveness (200 even while
// draining); readyz and mutations flip to 503 shutting_down the moment the
// server starts draining for shutdown.
func TestHealthzReadyzAndDraining(t *testing.T) {
	srv, hs, c := newDurableServer(t, t.TempDir(), 0)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = (%v, %v), want 200", resp, err)
	}
	resp.Body.Close()
	if ok, reason := ready(t, hs.URL); !ok {
		t.Fatalf("serving primary not ready: %s", reason)
	}

	srv.draining.Store(true)
	defer srv.draining.Store(false)
	if ok, _ := ready(t, hs.URL); ok {
		t.Fatalf("draining server reports ready")
	}
	resp, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = (%v, %v), want 200 (liveness is not readiness)", resp, err)
	}
	resp.Body.Close()
	var aerr *api.Error
	if _, err := c.Load("row Orders oZ c1\n", true); !errors.As(err, &aerr) || aerr.Code != api.CodeShuttingDown {
		t.Fatalf("load while draining: err = %v, want code %s", err, api.CodeShuttingDown)
	}
	if _, err := promoteURL(hs.URL, false); !errors.As(err, &aerr) || aerr.Code != api.CodeShuttingDown {
		t.Fatalf("promote while draining: err = %v, want code %s", err, api.CodeShuttingDown)
	}
	// Shed requests are not silent: both refusals above are counted per
	// code on the metrics registry and visible in the exposition.
	if got := srv.obs.errors.With(api.CodeShuttingDown).Value(); got != 2 {
		t.Fatalf("errors_total{shutting_down} = %d, want 2 (load + promote shed)", got)
	}
	if got := series(t, scrape(t, hs.URL), "incdb_errors_total",
		map[string]string{"code": api.CodeShuttingDown}); got != 2 {
		t.Fatalf("scraped errors_total{shutting_down} = %v, want 2", got)
	}
	if got := series(t, scrape(t, hs.URL), "incdb_draining", nil); got != 1 {
		t.Fatalf("incdb_draining = %v, want 1 while draining", got)
	}
	// Reads keep working through the drain (in-flight clients finish).
	if _, err := c.Query("proj(0, Orders)", "sql", false, 0); err != nil {
		t.Fatalf("query while draining: %v", err)
	}
}
