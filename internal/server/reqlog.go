package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"incdb/internal/api"
	"incdb/internal/plan"
	"incdb/internal/raparse"
)

// ridKey is the context key the request-ID middleware stores the ID under.
type ridKey struct{}

// withRequestID assigns every request an ID — the client's X-Request-Id
// when it sent one, a server-generated one otherwise — echoes it on the
// response, and threads it through the context so slow-query log lines can
// be joined back to the client call that caused them.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("%x-%d", s.start.UnixNano()&0xffffff, s.reqID.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridKey{}, id)))
	})
}

// requestID returns the request's ID, or "" outside the middleware (e.g.
// a handler invoked directly in a test).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// logSlow emits one structured log line for an evaluated query that ran
// past the -slow-query threshold: who asked (request ID, session), what
// (proc, query text, optimized-plan summary), and where the time went
// (elapsed, worlds enumerated, frozen reuse). Cache hits never get here —
// they are O(1) by construction.
func (s *Server) logSlow(r *http.Request, sess *session, req *api.QueryRequest,
	elapsed time.Duration, worlds, frozen int64) {
	if s.opts.SlowQuery <= 0 || elapsed < s.opts.SlowQuery {
		return
	}
	s.obs.slowQueries.Inc()
	// The plan summary is the optimized logical expression — one line,
	// derived from the same cached rewriting evaluation used. Best effort:
	// computed only now that we know the query was slow.
	summary := ""
	if q, err := raparse.ParseQuery(req.Query); err == nil {
		sess.mu.RLock()
		summary = plan.OptimizedFor(q, sess.db).String()
		sess.mu.RUnlock()
	}
	s.logger.Warn("slow query",
		"request_id", requestID(r.Context()),
		"session", sess.name,
		"proc", procName(req.Proc),
		"elapsed_ms", float64(elapsed.Microseconds())/1000,
		"worlds", worlds,
		"frozen_reuse", frozen,
		"query", req.Query,
		"plan", summary,
	)
}
