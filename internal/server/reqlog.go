package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"incdb/internal/api"
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/raparse"
)

// ridKey is the context key the request-ID middleware stores the ID under.
type ridKey struct{}

// withRequestID assigns every request an ID — the client's X-Request-Id
// when it sent one, a server-generated one otherwise — echoes it on the
// response, and threads it through the context so slow-query log lines can
// be joined back to the client call that caused them.
//
// The same middleware opens the request's root trace span when tracing is
// enabled: an incoming traceparent header continues the caller's trace
// (keeping its sampling decision, so one coin flip governs the whole
// fleet), otherwise a fresh trace is minted and head-sampled. The span ID
// is echoed as X-Trace-Id, errors (status >= 400) and slow requests
// (past -slow-query) force the trace to be kept regardless of the
// sampling coin. Probe, scrape and streaming endpoints are exempt —
// tracing them would only fill the ring with noise (or, for the
// indefinitely-streaming WAL tail, never-ending spans).
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("%x-%d", s.start.UnixNano()&0xffffff, s.reqID.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), ridKey{}, id)

		if s.tracer == nil || untracedPath(r.URL.Path) {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}

		parent, _ := obs.ParseTraceParent(r.Header.Get("traceparent"))
		sp := s.tracer.StartRoot(r.Method+" "+r.URL.Path, parent)
		sp.Attr("request_id", id)
		w.Header().Set("X-Trace-Id", sp.TraceID())
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.ContextWithSpan(ctx, sp)))
		elapsed := time.Since(start)
		sp.Attr("http.status", strconv.Itoa(sw.code))
		if sw.code >= 400 {
			sp.SetError("http " + strconv.Itoa(sw.code))
		}
		if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
			sp.Force()
		}
		sp.End()
	})
}

// untracedPath reports whether a request path is exempt from tracing:
// health probes, the metrics scrape, the trace API itself, and the
// long-lived WAL replication stream.
func untracedPath(p string) bool {
	switch p {
	case "/v1/healthz", "/v1/readyz", "/v1/metrics":
		return true
	}
	return strings.HasPrefix(p, "/v1/traces") || strings.HasSuffix(p, "/wal")
}

// statusWriter captures the response status for the tracing middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming handlers keep working
// behind the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestID returns the request's ID, or "" outside the middleware (e.g.
// a handler invoked directly in a test).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// logSlow emits one structured log line for an evaluated query that ran
// past the -slow-query threshold: who asked (request ID, session, trace
// ID when the request is traced), what (proc, query text, optimized-plan
// summary), and where the time went (elapsed, worlds enumerated, frozen
// reuse). Cache hits never get here — they are O(1) by construction.
func (s *Server) logSlow(r *http.Request, sess *session, req *api.QueryRequest,
	elapsed time.Duration, worlds, frozen int64) {
	if s.opts.SlowQuery <= 0 || elapsed < s.opts.SlowQuery {
		return
	}
	s.obs.slowQueries.Inc()
	// The plan summary is the optimized logical expression — one line,
	// derived from the same cached rewriting evaluation used. Best effort:
	// computed only now that we know the query was slow.
	summary := ""
	if q, err := raparse.ParseQuery(req.Query); err == nil {
		sess.mu.RLock()
		summary = plan.OptimizedFor(q, sess.db).String()
		sess.mu.RUnlock()
	}
	s.logger.Warn("slow query",
		"request_id", requestID(r.Context()),
		"trace_id", obs.SpanFromContext(r.Context()).TraceID(),
		"session", sess.name,
		"proc", procName(req.Proc),
		"elapsed_ms", float64(elapsed.Microseconds())/1000,
		"worlds", worlds,
		"frozen_reuse", frozen,
		"query", req.Query,
		"plan", summary,
	)
}
