package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"incdb/internal/api"
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/store"
)

// handleTraces serves GET /v1/traces: recently finished root spans from
// this server's ring, newest first. ?limit bounds the count (default 20).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, api.Errorf(http.StatusBadRequest, api.CodeBadRequest, "bad limit %q", v))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, api.TracesResponse{Spans: s.tracer.Recent(limit)})
}

// handleTrace serves GET /v1/traces/{id}: every span this server holds for
// one trace, ordered by start time. Each server keeps its own ring, so a
// distributed trace is assembled by asking the primary and its replicas
// for the same ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.tracer.Trace(id)
	if len(spans) == 0 {
		s.fail(w, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no spans for trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, api.TraceResponse{TraceID: id, Spans: spans})
}

// walTrace builds the store's tracing observer: the group-commit flush
// leader calls it once per traced record after the fsync, and each call
// becomes a wal.fsync span parented on the committing request's wal.commit
// span — so the fsync a write actually waited on shows up in its trace,
// even though a different request may have led the flush. Nil when tracing
// is off, so the store pays nothing.
func (s *Server) walTrace() *store.WALTrace {
	if s.tracer == nil {
		return nil
	}
	return &store.WALTrace{
		Flush: func(traceparent string, records, bytes int, start time.Time, d time.Duration) {
			sc, ok := obs.ParseTraceParent(traceparent)
			if !ok {
				return
			}
			sp := s.tracer.StartLinked("wal.fsync", sc, false)
			sp.SetStart(start)
			sp.Attr("records", strconv.Itoa(records))
			sp.Attr("bytes", strconv.Itoa(bytes))
			sp.EndWithDuration(d)
		},
	}
}

// spanPlanNodes synthesizes per-plan-node child spans from a detail
// trace's actuals — the trace-detail view of EXPLAIN ANALYZE's numbers.
// Node wall time is inclusive and, for oracle procedures, accumulated
// across every enumerated world; all node spans share the evaluation's
// start because the plan stream interleaves rather than sequences them.
func (s *Server) spanPlanNodes(esp *obs.Span, tr *plan.Trace, evalStart time.Time) {
	for i, na := range tr.NodeActuals() {
		sp := esp.StartChild(fmt.Sprintf("plan.%s", na.Op))
		sp.SetStart(evalStart)
		sp.Attr("node", strconv.Itoa(i))
		sp.Attr("depth", strconv.Itoa(na.Depth))
		sp.Attr("rows", strconv.FormatInt(na.Rows, 10))
		sp.Attr("batches", strconv.FormatInt(na.Batches, 10))
		sp.EndWithDuration(time.Duration(na.WallNs))
	}
}
