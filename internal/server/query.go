package server

import (
	"fmt"
	"strconv"
	"strings"

	"incdb/internal/algebra"
	"incdb/internal/api"
	"incdb/internal/certain"
	"incdb/internal/core"
	"incdb/internal/ctable"
	"incdb/internal/engine"
	"incdb/internal/plan"
	"incdb/internal/raparse"
	"incdb/internal/relation"
	"incdb/internal/store"
	"incdb/internal/translate"
	"incdb/internal/value"
)

// ctableStrategies maps the ctable-* procedure names.
var ctableStrategies = map[string]ctable.Strategy{
	"ctable-eager": ctable.Eager,
	"ctable-semi":  ctable.SemiEager,
	"ctable-lazy":  ctable.Lazy,
	"ctable-aware": ctable.Aware,
}

// Procs lists every evaluation procedure /v1/query accepts, in display
// order. It is the single source the evaluate dispatch, the error message
// and the incdbctl client's command recognition all derive from.
func Procs() []string {
	return []string{"sql", "naive", "cert", "inter", "plus", "poss",
		"ctable-eager", "ctable-semi", "ctable-lazy", "ctable-aware"}
}

// KnownProc reports whether name is an accepted procedure.
func KnownProc(name string) bool {
	switch name {
	case "sql", "naive", "cert", "inter", "plus", "poss":
		return true
	}
	_, ok := ctableStrategies[name]
	return ok
}

func procName(proc string) string {
	if proc == "" {
		return "sql"
	}
	return proc
}

// evaluate runs one query request against the session database. The caller
// holds the session read lock; every path below is read-only on the
// database and shares the session's prepared-plan cache, so concurrent
// requests reuse each other's prepared state. tr accumulates execution
// counters (worlds enumerated, frozen-subplan reuse) across every plan the
// request runs — the oracle paths hand it to their per-world evaluations
// via Options.Trace; the ctable strategies keep their own machinery and
// contribute nothing. Results are identical with tr nil.
func (s *Server) evaluate(sess *session, req *api.QueryRequest, tr *plan.Trace) ([]api.Resultset, error) {
	q, err := raparse.ParseQuery(req.Query)
	if err != nil {
		return nil, err
	}
	if err := algebra.Validate(q, sess.db); err != nil {
		return nil, err
	}
	db := sess.db
	proc := procName(req.Proc)
	certOpts := certain.Options{
		MaxWorlds: req.MaxWorlds,
		Workers:   s.opts.Workers,
		Prep:      sess.prep,
		Trace:     tr,
	}
	if certOpts.MaxWorlds <= 0 {
		certOpts.MaxWorlds = s.opts.MaxWorlds
	}

	one := func(name string, r *relation.Relation) []api.Resultset {
		return []api.Resultset{resultset(name, r)}
	}
	// direct evaluates q (or a rewriting of it) through the session's
	// prepared-plan cache: the base database is trivially a world of
	// itself, so Prepared.Exec(db) matches a fresh evaluation while
	// reusing every frozen null-free subplan across requests.
	direct := func(e algebra.Expr, mode algebra.Mode, bag bool) *relation.Relation {
		return sess.prep.Get(db, e, mode, bag).ExecTraced(db, tr)
	}

	switch proc {
	case "sql":
		return one(proc, direct(q, algebra.ModeSQL, req.Bag)), nil
	case "naive":
		return one(proc, direct(q, algebra.ModeNaive, req.Bag)), nil
	case "cert":
		r, err := certain.WithNulls(db, q, certOpts)
		if err != nil {
			return nil, err
		}
		return one("cert⊥", r), nil
	case "inter":
		r, err := certain.Intersection(db, q, certOpts)
		if err != nil {
			return nil, err
		}
		return one("cert∩", r), nil
	case "plus", "poss":
		r, err := approx(db, q, proc, direct)
		if err != nil {
			return nil, err
		}
		name := "Q+"
		if proc == "poss" {
			name = "Q?"
		}
		return one(name, r), nil
	default:
		strat, ok := ctableStrategies[proc]
		if !ok {
			return nil, fmt.Errorf("unknown proc %q (want one of %s)", req.Proc, strings.Join(Procs(), ", "))
		}
		cpart, ppart, err := core.CTableAnswersWith(db, q, strat, engine.Options{Workers: s.opts.Workers})
		if err != nil {
			return nil, err
		}
		return []api.Resultset{resultset("certain", cpart), resultset("possible", ppart)}, nil
	}
}

// approx evaluates the Figure 2(b) rewritings through the prepared cache:
// Q⁺ and Q? are plain naive evaluations of rewritten queries, so they reuse
// frozen subplans exactly like sql/naive do.
func approx(db *relation.Database, q algebra.Expr, proc string,
	direct func(algebra.Expr, algebra.Mode, bool) *relation.Relation) (*relation.Relation, error) {
	plus, poss, err := translate.Fig2b(q)
	if err != nil {
		return nil, err
	}
	rew := plus
	if proc == "poss" {
		rew = poss
	}
	return direct(rew, algebra.ModeNaive, false), nil
}

// prepProcs are the procedures whose evaluation flows through the
// session's prepared-plan cache (the ctable strategies keep their own row
// machinery): exactly the ones worth recording as warm keys for recovery.
var prepProcs = map[string]bool{
	"sql": true, "naive": true, "cert": true, "inter": true, "plus": true, "poss": true,
}

// recordWarm notes a successfully served query in the session's warm set;
// durable snapshots persist the set so recovery re-prepares the working
// set before the first request.
func (s *Server) recordWarm(sess *session, req *api.QueryRequest) {
	proc := procName(req.Proc)
	if !prepProcs[proc] {
		return
	}
	sess.warm.record(store.WarmKey{Query: req.Query, Proc: proc, Bag: req.Bag})
}

// warmSession re-prepares the recorded warm keys against the session's
// current database, mirroring exactly the prep.Get calls each procedure's
// evaluation performs — so the first post-recovery request finds the same
// cache state a warmed-up server would have. Best effort: keys that no
// longer parse or validate (the schema may have moved past them) are
// skipped.
func (s *Server) warmSession(sess *session, keys []store.WarmKey) {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	for _, k := range keys {
		q, err := raparse.ParseQuery(k.Query)
		if err != nil {
			continue
		}
		if err := algebra.Validate(q, sess.db); err != nil {
			continue
		}
		switch k.Proc {
		case "sql":
			sess.prep.Get(sess.db, q, algebra.ModeSQL, k.Bag)
		case "naive":
			sess.prep.Get(sess.db, q, algebra.ModeNaive, k.Bag)
		case "cert", "inter":
			// The oracles evaluate per world through a ModeNaive set-
			// semantics prepared plan (certain.Options.worldEval).
			sess.prep.Get(sess.db, q, algebra.ModeNaive, false)
		case "plus", "poss":
			plusQ, possQ, err := translate.Fig2b(q)
			if err != nil {
				continue
			}
			rew := plusQ
			if k.Proc == "poss" {
				rew = possQ
			}
			sess.prep.Get(sess.db, rew, algebra.ModeNaive, false)
		}
	}
}

// explain renders the plan for the request's query; the caller holds the
// session read lock. The structured form comes from the same rendering
// path incdbctl explain uses (plan.Describe), drawing prepared state from
// the session's cache: the [frozen across worlds] markers reflect exactly
// the Prepared a subsequent query will reuse, and explaining warms the
// cache for it.
func (s *Server) explain(sess *session, req *api.ExplainRequest) (*plan.ExplainInfo, error) {
	q, err := raparse.ParseQuery(req.Query)
	if err != nil {
		return nil, err
	}
	if err := algebra.Validate(q, sess.db); err != nil {
		return nil, err
	}
	mode := algebra.ModeNaive
	if req.SQL {
		mode = algebra.ModeSQL
	}
	if req.Analyze {
		return plan.DescribeAnalyze(q, sess.db, mode, req.Bag, sess.db, sess.prep), nil
	}
	return plan.DescribeCached(q, sess.db, mode, req.Bag, sess.db, sess.prep), nil
}

// resultset renders a relation for the wire: deterministic row order,
// values in the database text format (nulls as _k), multiplicities only
// when some row's differs from one.
func resultset(name string, r *relation.Relation) api.Resultset {
	out := api.Resultset{Name: name, Columns: append([]string(nil), r.Attrs()...), Rows: [][]string{}}
	var mults []int
	hasMult := false
	r.Each(func(t value.Tuple, m int) {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = renderValue(v)
		}
		out.Rows = append(out.Rows, row)
		mults = append(mults, m)
		if m != 1 {
			hasMult = true
		}
	})
	if hasMult {
		out.Mults = mults
	}
	return out
}

func renderValue(v value.Value) string {
	if v.IsNull() {
		return "_" + strconv.FormatUint(v.NullID(), 10)
	}
	return v.ConstVal()
}
