package server

import (
	"net/http"
	"time"

	"incdb/internal/api"
	"incdb/internal/engine"
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/store"
)

// flushByteBuckets sizes the WAL flush-bytes histogram: 256B to 64MB,
// ×4 per step (the server caps request bodies at 64MB).
var flushByteBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// worldBuckets sizes the per-query worlds-enumerated histogram: the
// oracles' valuation spaces grow exponentially, so the buckets do too.
var worldBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 1 << 20}

// metrics is the server's observability surface: one obs.Registry per
// Server (never process-global, so a primary and a follower in one test
// process keep separate series), rendered by GET /v1/metrics.
//
// Two kinds of series live here. Event-driven instruments (histograms and
// counters below) are updated inline by the handlers. Everything that
// already has a home — session cache stats, WAL sequence state,
// replication progress — is bridged by scrape-time collectors reading the
// same atomics /v1/status reports from, so the two endpoints cannot
// disagree.
type metrics struct {
	reg *obs.Registry

	queries      *obs.CounterVec   // incdb_queries_total{proc,session}
	queryLatency *obs.HistogramVec // incdb_query_seconds{proc,session,cache} (hit = served from result cache)
	queryWorlds  *obs.Histogram    // incdb_query_worlds (worlds per evaluated query)
	worlds       *obs.Counter      // incdb_worlds_enumerated_total
	frozenReuse  *obs.Counter      // incdb_frozen_reuse_total
	slowQueries  *obs.Counter      // incdb_slow_queries_total
	errors       *obs.CounterVec   // incdb_errors_total{code}

	wal *store.WALMetrics
}

func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		queries: reg.CounterVec("incdb_queries_total",
			"Queries served, including result-cache hits.", "proc", "session"),
		queryLatency: reg.HistogramVec("incdb_query_seconds",
			"Query latency as served; cache=hit for result-cache answers, miss for evaluated ones.",
			obs.LatencyBuckets, "proc", "session", "cache"),
		queryWorlds: reg.Histogram("incdb_query_worlds",
			"Worlds enumerated per evaluated query (plan executions; 1 for non-oracle procs).", worldBuckets),
		worlds: reg.Counter("incdb_worlds_enumerated_total",
			"Plan executions across all queries: each oracle world counts one."),
		frozenReuse: reg.Counter("incdb_frozen_reuse_total",
			"Frozen (world-invariant) subplan results served instead of recomputed."),
		slowQueries: reg.Counter("incdb_slow_queries_total",
			"Queries over the -slow-query threshold."),
		errors: reg.CounterVec("incdb_errors_total",
			"Requests failed, by machine-readable error code.", "code"),
		wal: &store.WALMetrics{
			AppendSeconds: reg.Histogram("incdb_wal_append_seconds",
				"Group-commit flush latency (write+fsync).", obs.LatencyBuckets),
			FsyncSeconds: reg.Histogram("incdb_wal_fsync_seconds",
				"WAL fsync latency.", obs.LatencyBuckets),
			RecordsPerFsync: reg.Histogram("incdb_wal_records_per_fsync",
				"Records made durable by one fsync (group-commit batch size).", obs.SizeBuckets),
			FlushBytes: reg.Histogram("incdb_wal_flush_bytes",
				"Bytes written per group-commit flush.", flushByteBuckets),
			SnapshotSeconds: reg.Histogram("incdb_snapshot_seconds",
				"Snapshot install latency (encode, fsync, rename, WAL truncation).", obs.LatencyBuckets),
		},
	}

	// Server-level gauges, computed at scrape time from the live state.
	reg.GaugeFunc("incdb_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("incdb_inflight_requests", "Requests holding an evaluation slot.",
		func() float64 { return float64(s.inflight.Load()) })
	reg.GaugeFunc("incdb_admission_waiting", "Requests waiting for an evaluation slot.",
		func() float64 { return float64(s.waiting.Load()) })
	reg.GaugeFunc("incdb_max_in_flight", "Evaluation slot capacity.",
		func() float64 { return float64(s.opts.maxInFlight()) })
	reg.GaugeFunc("incdb_engine_workers", "Oracle engine worker pool size.",
		func() float64 { return float64(engine.Options{Workers: s.opts.Workers}.WorkerCount()) })
	reg.GaugeFunc("incdb_epoch", "Current replication epoch.",
		func() float64 { return float64(s.epoch.Load()) })
	reg.GaugeFunc("incdb_draining", "1 while graceful shutdown refuses new mutations.",
		func() float64 { return b2f(s.draining.Load()) })
	reg.CollectGauge("incdb_role", "Failover role (exactly one series is 1).",
		[]string{"role"}, func(emit func(float64, ...string)) {
			role := s.role()
			for _, r := range []string{api.RolePrimary, api.RoleReplica, api.RoleFenced} {
				emit(b2f(r == role), r)
			}
		})

	// Per-session collectors over the same atomics /v1/status renders:
	// satellite consolidation — the scattered cache counters have exactly
	// one home and two read-only views.
	reg.CollectCounter("incdb_session_queries_total", "Queries served per session.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.queries.Load()), sess.name) })
		})
	reg.CollectCounter("incdb_prep_cache_hits_total", "Prepared-plan cache hits.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.prepStats().Hits), sess.name) })
		})
	reg.CollectCounter("incdb_prep_cache_misses_total", "Prepared-plan cache misses.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.prepStats().Misses), sess.name) })
		})
	reg.CollectCounter("incdb_prep_cache_invalidations_total", "Prepared plans dropped by version-guard checks.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.prepStats().Invalidations), sess.name) })
		})
	reg.CollectGauge("incdb_prep_cache_entries", "Prepared plans currently cached.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.prepStats().Entries), sess.name) })
		})
	reg.CollectCounter("incdb_result_cache_hits_total", "Oracle result cache hits.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.resultStats().Hits), sess.name) })
		})
	reg.CollectCounter("incdb_result_cache_misses_total", "Oracle result cache misses.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.resultStats().Misses), sess.name) })
		})
	reg.CollectGauge("incdb_result_cache_entries", "Oracle results currently cached.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) { emit(float64(sess.resultStats().Entries), sess.name) })
		})

	// Durable state per session, from the same SessionLog.Stats() atomics.
	walGauge := func(name, help string, f func(store.Durability) float64) {
		reg.CollectGauge(name, help, []string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) {
				if sess.log != nil {
					emit(f(sess.log.Stats()), sess.name)
				}
			})
		})
	}
	walGauge("incdb_wal_seq", "Last assigned WAL sequence number.",
		func(d store.Durability) float64 { return float64(d.Seq) })
	walGauge("incdb_wal_durable_seq", "Last fsync'd WAL sequence number.",
		func(d store.Durability) float64 { return float64(d.DurableSeq) })
	walGauge("incdb_wal_snapshot_seq", "Last WAL sequence number covered by the on-disk snapshot.",
		func(d store.Durability) float64 { return float64(d.SnapshotSeq) })
	walGauge("incdb_wal_bytes", "Current WAL file size.",
		func(d store.Durability) float64 { return float64(d.WalBytes) })
	walGauge("incdb_wal_records", "Records in the WAL since the last compaction.",
		func(d store.Durability) float64 { return float64(d.WalRecords) })
	walGauge("incdb_wal_failed", "1 after a fail-stopped WAL (write/fsync error).",
		func(d store.Durability) float64 { return b2f(d.Failed) })
	reg.CollectCounter("incdb_wal_syncs_total", "Fsyncs issued (records/syncs = group-commit ratio).",
		[]string{"session"}, func(emit func(float64, ...string)) {
			s.eachSession(func(sess *session) {
				if sess.log != nil {
					emit(float64(sess.log.Stats().Syncs), sess.name)
				}
			})
		})

	// Replication lag, present only while following: the seq delta against
	// the primary's last reported position, and how long since anything was
	// applied — the pair the Failover runbook watches during promotion.
	replGauge := func(name, help string, f func(fs *followState) float64) {
		reg.CollectGauge(name, help, []string{"session"}, func(emit func(float64, ...string)) {
			repl := s.repl.Load()
			if repl == nil {
				return
			}
			for _, fs := range repl.followStates() {
				emit(f(fs), fs.name)
			}
		})
	}
	replGauge("incdb_replica_applied_seq", "Last primary WAL sequence number applied locally.",
		func(fs *followState) float64 { return float64(fs.applied.Load()) })
	replGauge("incdb_replica_lag_seq", "Primary's reported WAL position minus the locally applied one.",
		func(fs *followState) float64 {
			ps, ap := fs.primarySeq.Load(), fs.applied.Load()
			if ps <= ap {
				return 0
			}
			return float64(ps - ap)
		})
	replGauge("incdb_replica_seconds_since_apply", "Seconds since the last applied record or bootstrap.",
		func(fs *followState) float64 {
			ns := fs.lastApplied.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
	reg.CollectCounter("incdb_replica_bootstraps_total", "Snapshot re-bootstraps since this process started.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			if repl := s.repl.Load(); repl != nil {
				for _, fs := range repl.followStates() {
					emit(float64(fs.bootstraps.Load()), fs.name)
				}
			}
		})
	reg.CollectCounter("incdb_replica_frames_total", "WAL frames applied from the primary.",
		[]string{"session"}, func(emit func(float64, ...string)) {
			if repl := s.repl.Load(); repl != nil {
				for _, fs := range repl.followStates() {
					emit(float64(fs.frames.Load()), fs.name)
				}
			}
		})
	return m
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// eachSession visits the sessions in name order (scrape-time iteration for
// the collectors; the registry sorts series anyway, but deterministic
// iteration keeps lock hold times predictable).
func (s *Server) eachSession(f func(*session)) {
	s.mu.RLock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.RUnlock()
	for _, sess := range sessions {
		f(sess)
	}
}

// prepStats and resultStats snapshot a session's cache counters under the
// session read lock (the caches themselves are swapped on replace loads).
func (sess *session) prepStats() plan.CacheStats {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.prep.Stats()
}

func (sess *session) resultStats() api.ResultCacheStats {
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	return sess.results.stats()
}

// followStates returns the replicator's per-session progress, for the
// scrape-time lag collectors.
func (r *replicator) followStates() []*followState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*followState, 0, len(r.sessions))
	for _, fs := range r.sessions {
		out = append(out, fs)
	}
	return out
}

// handleMetrics serves GET /v1/metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WritePrometheus(w)
}

// fail writes the uniform error envelope and counts the failure by machine
// code — shed requests (overloaded, shutting_down, stale_replica) become
// visible series instead of silent 5xx noise.
func (s *Server) fail(w http.ResponseWriter, e *api.Error) {
	s.obs.errors.With(e.Code).Inc()
	writeErr(w, e)
}
