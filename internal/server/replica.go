package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/api"
	"incdb/internal/obs"
	"incdb/internal/plan"
	"incdb/internal/store"
)

// replicator makes this server a read replica of a primary incdbd: it
// discovers the primary's sessions by polling its status endpoint, and for
// each one runs a follow loop that bootstraps the session from the
// primary's snapshot endpoint and then tails its WAL endpoint, replaying
// every record through the same machinery crash recovery uses
// (store.ApplyRecord) — so the replica converges to a byte-identical
// database, null identities and version vectors included. Each applied
// record's logged version vector is cross-checked; any divergence, gap or
// compacted-away WAL position makes the follower re-bootstrap from a fresh
// snapshot rather than serve diverged data.
//
// On a durable replica every applied record is also mirrored, verbatim and
// with the primary's sequence numbers, into the replica's own WAL (fsync'd
// by a per-session syncer that batches like the primary's group commit),
// so a restarted replica recovers locally and resumes tailing from its
// last applied sequence number without re-bootstrapping.
type replicator struct {
	s       *Server
	primary string

	// cancel/wg stop the subsystem: promotion cancels the follow context
	// and waits for discovery, every follow loop and every in-flight
	// mirror fsync to finish, so the promoted server's logs are quiesced
	// and fully durable before the epoch records commit.
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*followState
}

// followState is one session's replication progress.
type followState struct {
	name       string
	state      atomic.Value // string: bootstrapping | tailing | retrying
	applied    atomic.Uint64
	bootstraps atomic.Uint64
	frames     atomic.Uint64
	lastErr    atomic.Value // string

	// primarySeq is the primary's last known WAL position for this session
	// (from discovery's status polls) — the best available caught-up bar
	// when the primary is unreachable.
	primarySeq atomic.Uint64

	// lastApplied is the unix-nano timestamp of the last applied record (or
	// finished bootstrap) — the wall-clock half of the lag gauges: seq delta
	// says how far behind, seconds-since-apply says for how long nothing
	// has arrived.
	lastApplied atomic.Int64

	// The durable mirror's group-commit syncer: apply buffers the record
	// and pokes syncCh; the syncer fsyncs the newest buffered sequence
	// number, so one fsync covers every record applied while the previous
	// fsync was in flight.
	pending atomic.Uint64
	syncCh  chan struct{}
}

// errDiverged forces a re-bootstrap: the replica's state no longer lines
// up with the primary's log.
var errDiverged = errors.New("server: replica diverged from primary log")

// StartFollow turns the server into a read replica of the primary at the
// given base URL. Must be called before serving; every load handler then
// answers 403 read_only_replica. Discovery and the per-session follow
// loops run until ctx is done.
func (s *Server) StartFollow(ctx context.Context, primary string) {
	fctx, cancel := context.WithCancel(ctx)
	r := &replicator{
		s:        s,
		primary:  strings.TrimRight(primary, "/"),
		cancel:   cancel,
		sessions: map[string]*followState{},
	}
	s.repl.Store(r)
	// Sessions recovered from the replica's own data directory resume
	// immediately; discovery adds the ones it has not seen yet.
	s.mu.RLock()
	var names []string
	for name := range s.sessions {
		names = append(names, name)
	}
	s.mu.RUnlock()
	for _, name := range names {
		r.ensureFollow(fctx, name)
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.discover(fctx)
	}()
}

// Following returns the primary URL when this server is a replica, else "".
func (s *Server) Following() string {
	if r := s.repl.Load(); r != nil {
		return r.primary
	}
	return ""
}

// stop cancels replication and waits for every loop and in-flight mirror
// fsync to finish — the drain step of promotion.
func (r *replicator) stop() {
	r.cancel()
	r.wg.Wait()
}

// lag reports why this follower is not caught up with its primary, or ""
// when it is — as far as a follower can tell: every session is tailing
// (not bootstrapping or retrying) and has applied at least the primary's
// last observed WAL position. With the primary dead that observation is
// the last successful status poll; records the primary acknowledged but
// never shipped are invisible here (promotion with force accepts their
// loss).
func (r *replicator) lag() string {
	r.mu.Lock()
	states := make([]*followState, 0, len(r.sessions))
	for _, fs := range r.sessions {
		states = append(states, fs)
	}
	r.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	for _, fs := range states {
		if st := fs.state.Load().(string); st != "tailing" {
			return fmt.Sprintf("session %q is %s", fs.name, st)
		}
		if ps, ap := fs.primarySeq.Load(), fs.applied.Load(); ap < ps {
			return fmt.Sprintf("session %q applied seq %d, primary reported %d", fs.name, ap, ps)
		}
	}
	return ""
}

// discover polls the primary's status for sessions to follow, records each
// one's primary-side WAL position (the caught-up bar promotion checks),
// and adopts the primary's epoch.
func (r *replicator) discover(ctx context.Context) {
	c := NewClient(r.primary, "")
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		if st, err := c.Status(); err == nil {
			r.s.observeEpoch(st.Epoch)
			for _, sess := range st.Sessions {
				r.ensureFollow(ctx, sess.Name)
				if sess.Durability != nil {
					r.mu.Lock()
					fs := r.sessions[sess.Name]
					r.mu.Unlock()
					if fs != nil {
						fs.primarySeq.Store(sess.Durability.Seq)
					}
				}
			}
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// ensureFollow starts the follow loop for a session once.
func (r *replicator) ensureFollow(ctx context.Context, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; ok {
		return
	}
	fs := &followState{name: name, syncCh: make(chan struct{}, 1)}
	fs.state.Store("bootstrapping")
	fs.lastErr.Store("")
	r.sessions[name] = fs
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.follow(ctx, fs)
	}()
}

// follow is the per-session loop: follow the primary until ctx is done,
// backing off on errors (200ms doubling to 3s; any progress resets it).
// Each sleep is jittered to 50–150% of the nominal backoff: when a primary
// restarts with many followers, pure exponential backoff would synchronize
// their re-tails into thundering-herd waves.
func (r *replicator) follow(ctx context.Context, fs *followState) {
	backoff := 200 * time.Millisecond
	for ctx.Err() == nil {
		before := fs.frames.Load()
		err := r.followOnce(ctx, fs)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			fs.lastErr.Store(err.Error())
			fs.state.Store("retrying")
		}
		if err == nil || fs.frames.Load() > before {
			backoff = 200 * time.Millisecond
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// jitter spreads a nominal delay uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + rand.N(d)
}

// followOnce runs one bootstrap-if-needed + tail cycle. A nil return means
// the primary closed the stream cleanly (e.g. it restarted, or compacted
// past our position mid-stream) — the caller reconnects, and a position
// that truly is gone answers the reconnect with wal_gap.
func (r *replicator) followOnce(ctx context.Context, fs *followState) error {
	sess, err := r.s.ensureSession(fs.name)
	if err != nil {
		return err
	}
	fs.applied.Store(sess.replSeq.Load())
	c := NewClient(r.primary, fs.name)
	if sess.replSeq.Load() == 0 {
		if err := r.bootstrap(ctx, c, fs, sess); err != nil {
			return err
		}
	}
	fs.state.Store("tailing")
	err = c.TailWAL(ctx, sess.replSeq.Load(), func(rec *store.Record) error {
		if err := r.apply(fs, sess, rec); err != nil {
			return err
		}
		// The mirrored WAL compacts on the replica's own threshold, so a
		// long-lived follower's disk usage tracks the primary's.
		r.s.snapshotIfNeeded(sess)
		backoffReset(fs)
		return nil
	})
	var aerr *api.Error
	if errors.As(err, &aerr) && aerr.Code == api.CodeWALGap {
		// Our position was compacted away: start over from a snapshot.
		return r.bootstrap(ctx, c, fs, sess)
	}
	if errors.Is(err, errDiverged) {
		return r.bootstrap(ctx, c, fs, sess)
	}
	return err
}

// backoffReset marks progress so the caller-side error accounting clears.
func backoffReset(fs *followState) { fs.lastErr.Store("") }

// bootstrap fetches a consistent snapshot from the primary and installs it
// wholesale: database, null identities, version vector, warm plan keys and
// the primary's WAL position. On a durable replica the snapshot also lands
// in the local store (truncating the mirrored WAL), so recovery starts
// from it.
func (r *replicator) bootstrap(ctx context.Context, c *Client, fs *followState, sess *session) error {
	fs.state.Store("bootstrapping")
	data, err := c.Snapshot()
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	snap, err := store.DecodeSnapshot(strings.NewReader(data))
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	db, err := snap.Database()
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	// Epoch fencing on the snapshot vector: a bootstrap snapshot from an
	// epoch behind what this replica has already seen comes from a stale
	// primary (e.g. a revived pre-promotion one) — installing it would
	// rewind onto a superseded history.
	localEpoch := r.s.epoch.Load()
	if sess.log != nil {
		localEpoch = sess.log.Epoch()
	}
	if snap.Epoch < localEpoch {
		return fmt.Errorf("bootstrap %q: snapshot epoch %d is behind local epoch %d (stale primary?)",
			fs.name, snap.Epoch, localEpoch)
	}
	r.s.observeEpoch(snap.Epoch)
	sess.logMu.Lock()
	sess.mu.Lock()
	sess.db = db
	sess.prep = plan.NewPrepCache(r.s.opts.CacheCap)
	sess.results = newResultCache(r.s.opts.ResultCacheCap)
	sess.bumpVector()
	sess.mu.Unlock()
	sess.replSeq.Store(snap.Seq)
	var ierr error
	if sess.log != nil {
		ierr = sess.log.InstallSnapshot(snap)
	}
	sess.logMu.Unlock()
	if ierr != nil {
		return fmt.Errorf("bootstrap %q: install snapshot: %w", fs.name, ierr)
	}
	sess.warm.seed(snap.Warm)
	r.s.warmSession(sess, snap.Warm)
	fs.applied.Store(snap.Seq)
	fs.lastApplied.Store(time.Now().UnixNano())
	fs.bootstraps.Add(1)
	log.Printf("server: replica bootstrapped session %q at seq %d (%d relations)",
		fs.name, snap.Seq, len(db.Names()))
	return nil
}

// apply replays one primary WAL record into the session, mirroring the
// commit path: in-memory apply and local WAL buffering under the commit
// mutex (log order = apply order), fsync batched by the session syncer.
// Gaps, duplicates behind a hole, vector mismatches and local-log sequence
// clashes all surface as errDiverged, forcing a re-bootstrap.
func (r *replicator) apply(fs *followState, sess *session, rec *store.Record) error {
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	last := sess.replSeq.Load()
	if rec.Seq <= last {
		return nil // already applied (stream overlap after reconnect)
	}
	if rec.Seq != last+1 {
		return fmt.Errorf("%w: got seq %d after %d", errDiverged, rec.Seq, last)
	}
	// A record carrying trace context gets its apply recorded as a span in
	// this follower's own ring, parented on the primary's wal.commit span —
	// the cross-server link of a distributed trace. Only sampled traces
	// travel (the primary propagates its flag), so an unsampled fleet pays
	// one string comparison per record.
	var sp *obs.Span
	if rec.Trace != "" && r.s.tracer != nil {
		if sc, ok := obs.ParseTraceParent(rec.Trace); ok {
			sp = r.s.tracer.StartLinked("replica.apply", sc, true)
			sp.Attr("seq", strconv.FormatUint(rec.Seq, 10))
			sp.Attr("op", string(rec.Op))
			sp.Attr("session", sess.name)
		}
	}
	defer sp.End()
	sess.mu.Lock()
	if err := store.ApplyRecord(sess.db, rec); err != nil {
		sess.mu.Unlock()
		return fmt.Errorf("%w: apply seq %d: %v", errDiverged, rec.Seq, err)
	}
	if !store.VersionsEqual(sess.db.Versions(), rec.Versions) {
		vec := sess.db.Versions()
		sess.mu.Unlock()
		return fmt.Errorf("%w: seq %d replayed vector %v, primary logged %v",
			errDiverged, rec.Seq, vec, rec.Versions)
	}
	if rec.Op != store.OpAppend {
		// Replace and restore reset the relations' version counters; the
		// caches could otherwise serve entries keyed by colliding vectors
		// (the same rule the primary's commitReplace applies).
		sess.prep = plan.NewPrepCache(r.s.opts.CacheCap)
		sess.results = newResultCache(r.s.opts.ResultCacheCap)
	}
	sess.bumpVector()
	sess.mu.Unlock()
	if sess.log != nil {
		if err := sess.log.BufferRecord(rec); err != nil {
			return fmt.Errorf("%w: mirror seq %d: %v", errDiverged, rec.Seq, err)
		}
		fs.pending.Store(rec.Seq)
		select {
		case fs.syncCh <- struct{}{}:
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.syncOne(fs, sess)
			}()
		default: // a sync is already pending; it will cover this record
		}
	}
	// The record's epoch is the primary's current epoch; adopt it (a
	// promoted primary's epoch record travels the stream like any other).
	r.s.observeEpoch(rec.Epoch)
	sess.replSeq.Store(rec.Seq)
	fs.applied.Store(rec.Seq)
	fs.lastApplied.Store(time.Now().UnixNano())
	fs.frames.Add(1)
	return nil
}

// syncOne drains one syncer token: fsync everything buffered so far. New
// records arriving while this runs buffer behind it and schedule the next
// one — the replica's group commit.
func (r *replicator) syncOne(fs *followState, sess *session) {
	defer func() { <-fs.syncCh }()
	if err := sess.log.Sync(fs.pending.Load()); err != nil {
		log.Printf("server: replica wal sync %q: %v", fs.name, err)
	}
}

// status renders the replication section of the status response.
func (r *replicator) status() *api.ReplicationStatus {
	r.mu.Lock()
	states := make([]*followState, 0, len(r.sessions))
	for _, fs := range r.sessions {
		states = append(states, fs)
	}
	r.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	out := &api.ReplicationStatus{Primary: r.primary}
	for _, fs := range states {
		out.Sessions = append(out.Sessions, api.ReplicaSession{
			Session:    fs.name,
			State:      fs.state.Load().(string),
			AppliedSeq: fs.applied.Load(),
			Bootstraps: fs.bootstraps.Load(),
			Frames:     fs.frames.Load(),
			LastError:  fs.lastErr.Load().(string),
		})
	}
	return out
}
