package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdb/internal/api"
	"incdb/internal/plan"
	"incdb/internal/store"
)

// replicator makes this server a read replica of a primary incdbd: it
// discovers the primary's sessions by polling its status endpoint, and for
// each one runs a follow loop that bootstraps the session from the
// primary's snapshot endpoint and then tails its WAL endpoint, replaying
// every record through the same machinery crash recovery uses
// (store.ApplyRecord) — so the replica converges to a byte-identical
// database, null identities and version vectors included. Each applied
// record's logged version vector is cross-checked; any divergence, gap or
// compacted-away WAL position makes the follower re-bootstrap from a fresh
// snapshot rather than serve diverged data.
//
// On a durable replica every applied record is also mirrored, verbatim and
// with the primary's sequence numbers, into the replica's own WAL (fsync'd
// by a per-session syncer that batches like the primary's group commit),
// so a restarted replica recovers locally and resumes tailing from its
// last applied sequence number without re-bootstrapping.
type replicator struct {
	s       *Server
	primary string

	mu       sync.Mutex
	sessions map[string]*followState
}

// followState is one session's replication progress.
type followState struct {
	name       string
	state      atomic.Value // string: bootstrapping | tailing | retrying
	applied    atomic.Uint64
	bootstraps atomic.Uint64
	frames     atomic.Uint64
	lastErr    atomic.Value // string

	// The durable mirror's group-commit syncer: apply buffers the record
	// and pokes syncCh; the syncer fsyncs the newest buffered sequence
	// number, so one fsync covers every record applied while the previous
	// fsync was in flight.
	pending atomic.Uint64
	syncCh  chan struct{}
}

// errDiverged forces a re-bootstrap: the replica's state no longer lines
// up with the primary's log.
var errDiverged = errors.New("server: replica diverged from primary log")

// StartFollow turns the server into a read replica of the primary at the
// given base URL. Must be called before serving; every load handler then
// answers 403 read_only_replica. Discovery and the per-session follow
// loops run until ctx is done.
func (s *Server) StartFollow(ctx context.Context, primary string) {
	r := &replicator{
		s:        s,
		primary:  strings.TrimRight(primary, "/"),
		sessions: map[string]*followState{},
	}
	s.repl = r
	// Sessions recovered from the replica's own data directory resume
	// immediately; discovery adds the ones it has not seen yet.
	s.mu.RLock()
	var names []string
	for name := range s.sessions {
		names = append(names, name)
	}
	s.mu.RUnlock()
	for _, name := range names {
		r.ensureFollow(ctx, name)
	}
	go r.discover(ctx)
}

// Following returns the primary URL when this server is a replica, else "".
func (s *Server) Following() string {
	if s.repl == nil {
		return ""
	}
	return s.repl.primary
}

// discover polls the primary's status for sessions to follow.
func (r *replicator) discover(ctx context.Context) {
	c := NewClient(r.primary, "")
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		if st, err := c.Status(); err == nil {
			for _, sess := range st.Sessions {
				r.ensureFollow(ctx, sess.Name)
			}
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// ensureFollow starts the follow loop for a session once.
func (r *replicator) ensureFollow(ctx context.Context, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; ok {
		return
	}
	fs := &followState{name: name, syncCh: make(chan struct{}, 1)}
	fs.state.Store("bootstrapping")
	fs.lastErr.Store("")
	r.sessions[name] = fs
	go r.follow(ctx, fs)
}

// follow is the per-session loop: follow the primary until ctx is done,
// backing off on errors (200ms doubling to 3s; any progress resets it).
func (r *replicator) follow(ctx context.Context, fs *followState) {
	backoff := 200 * time.Millisecond
	for ctx.Err() == nil {
		before := fs.frames.Load()
		err := r.followOnce(ctx, fs)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			fs.lastErr.Store(err.Error())
			fs.state.Store("retrying")
		}
		if err == nil || fs.frames.Load() > before {
			backoff = 200 * time.Millisecond
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// followOnce runs one bootstrap-if-needed + tail cycle. A nil return means
// the primary closed the stream cleanly (e.g. it restarted, or compacted
// past our position mid-stream) — the caller reconnects, and a position
// that truly is gone answers the reconnect with wal_gap.
func (r *replicator) followOnce(ctx context.Context, fs *followState) error {
	sess, err := r.s.ensureSession(fs.name)
	if err != nil {
		return err
	}
	fs.applied.Store(sess.replSeq.Load())
	c := NewClient(r.primary, fs.name)
	if sess.replSeq.Load() == 0 {
		if err := r.bootstrap(ctx, c, fs, sess); err != nil {
			return err
		}
	}
	fs.state.Store("tailing")
	err = c.TailWAL(ctx, sess.replSeq.Load(), func(rec *store.Record) error {
		if err := r.apply(fs, sess, rec); err != nil {
			return err
		}
		// The mirrored WAL compacts on the replica's own threshold, so a
		// long-lived follower's disk usage tracks the primary's.
		r.s.snapshotIfNeeded(sess)
		backoffReset(fs)
		return nil
	})
	var aerr *api.Error
	if errors.As(err, &aerr) && aerr.Code == api.CodeWALGap {
		// Our position was compacted away: start over from a snapshot.
		return r.bootstrap(ctx, c, fs, sess)
	}
	if errors.Is(err, errDiverged) {
		return r.bootstrap(ctx, c, fs, sess)
	}
	return err
}

// backoffReset marks progress so the caller-side error accounting clears.
func backoffReset(fs *followState) { fs.lastErr.Store("") }

// bootstrap fetches a consistent snapshot from the primary and installs it
// wholesale: database, null identities, version vector, warm plan keys and
// the primary's WAL position. On a durable replica the snapshot also lands
// in the local store (truncating the mirrored WAL), so recovery starts
// from it.
func (r *replicator) bootstrap(ctx context.Context, c *Client, fs *followState, sess *session) error {
	fs.state.Store("bootstrapping")
	data, err := c.Snapshot()
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	snap, err := store.DecodeSnapshot(strings.NewReader(data))
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	db, err := snap.Database()
	if err != nil {
		return fmt.Errorf("bootstrap %q: %w", fs.name, err)
	}
	sess.logMu.Lock()
	sess.mu.Lock()
	sess.db = db
	sess.prep = plan.NewPrepCache(r.s.opts.CacheCap)
	sess.results = newResultCache(r.s.opts.ResultCacheCap)
	sess.bumpVector()
	sess.mu.Unlock()
	sess.replSeq.Store(snap.Seq)
	var ierr error
	if sess.log != nil {
		ierr = sess.log.InstallSnapshot(snap)
	}
	sess.logMu.Unlock()
	if ierr != nil {
		return fmt.Errorf("bootstrap %q: install snapshot: %w", fs.name, ierr)
	}
	sess.warm.seed(snap.Warm)
	r.s.warmSession(sess, snap.Warm)
	fs.applied.Store(snap.Seq)
	fs.bootstraps.Add(1)
	log.Printf("server: replica bootstrapped session %q at seq %d (%d relations)",
		fs.name, snap.Seq, len(db.Names()))
	return nil
}

// apply replays one primary WAL record into the session, mirroring the
// commit path: in-memory apply and local WAL buffering under the commit
// mutex (log order = apply order), fsync batched by the session syncer.
// Gaps, duplicates behind a hole, vector mismatches and local-log sequence
// clashes all surface as errDiverged, forcing a re-bootstrap.
func (r *replicator) apply(fs *followState, sess *session, rec *store.Record) error {
	sess.logMu.Lock()
	defer sess.logMu.Unlock()
	last := sess.replSeq.Load()
	if rec.Seq <= last {
		return nil // already applied (stream overlap after reconnect)
	}
	if rec.Seq != last+1 {
		return fmt.Errorf("%w: got seq %d after %d", errDiverged, rec.Seq, last)
	}
	sess.mu.Lock()
	if err := store.ApplyRecord(sess.db, rec); err != nil {
		sess.mu.Unlock()
		return fmt.Errorf("%w: apply seq %d: %v", errDiverged, rec.Seq, err)
	}
	if !store.VersionsEqual(sess.db.Versions(), rec.Versions) {
		vec := sess.db.Versions()
		sess.mu.Unlock()
		return fmt.Errorf("%w: seq %d replayed vector %v, primary logged %v",
			errDiverged, rec.Seq, vec, rec.Versions)
	}
	if rec.Op != store.OpAppend {
		// Replace and restore reset the relations' version counters; the
		// caches could otherwise serve entries keyed by colliding vectors
		// (the same rule the primary's commitReplace applies).
		sess.prep = plan.NewPrepCache(r.s.opts.CacheCap)
		sess.results = newResultCache(r.s.opts.ResultCacheCap)
	}
	sess.bumpVector()
	sess.mu.Unlock()
	if sess.log != nil {
		if err := sess.log.BufferRecord(rec); err != nil {
			return fmt.Errorf("%w: mirror seq %d: %v", errDiverged, rec.Seq, err)
		}
		fs.pending.Store(rec.Seq)
		select {
		case fs.syncCh <- struct{}{}:
			go r.syncOne(fs, sess)
		default: // a sync is already pending; it will cover this record
		}
	}
	sess.replSeq.Store(rec.Seq)
	fs.applied.Store(rec.Seq)
	fs.frames.Add(1)
	return nil
}

// syncOne drains one syncer token: fsync everything buffered so far. New
// records arriving while this runs buffer behind it and schedule the next
// one — the replica's group commit.
func (r *replicator) syncOne(fs *followState, sess *session) {
	defer func() { <-fs.syncCh }()
	if err := sess.log.Sync(fs.pending.Load()); err != nil {
		log.Printf("server: replica wal sync %q: %v", fs.name, err)
	}
}

// status renders the replication section of the status response.
func (r *replicator) status() *api.ReplicationStatus {
	r.mu.Lock()
	states := make([]*followState, 0, len(r.sessions))
	for _, fs := range r.sessions {
		states = append(states, fs)
	}
	r.mu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })
	out := &api.ReplicationStatus{Primary: r.primary}
	for _, fs := range states {
		out.Sessions = append(out.Sessions, api.ReplicaSession{
			Session:    fs.name,
			State:      fs.state.Load().(string),
			AppliedSeq: fs.applied.Load(),
			Bootstraps: fs.bootstraps.Load(),
			Frames:     fs.frames.Load(),
			LastError:  fs.lastErr.Load().(string),
		})
	}
	return out
}
