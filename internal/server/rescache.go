package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"incdb/internal/api"
	"incdb/internal/lru"
	"incdb/internal/relation"
	"incdb/internal/store"
)

// resultCache memoizes whole query results per session, keyed by the raw
// query text, evaluation procedure, semantics knobs and the database's
// version vector — the same guard the prepared-plan cache validates
// against, lifted into the key: mutating any relation moves its version,
// so every entry computed before the mutation simply stops being reachable
// and ages out of the LRU. A byte-identical repeated query against an
// unchanged database is answered without touching the planner or the
// oracles at all.
//
// Replacing the database wholesale could reuse a vector (fresh relations
// restart their counters), so the server discards the whole cache on
// replace — the same rule the prepared-plan cache follows.
type resultCache struct {
	capacity int

	mu      sync.Mutex
	entries map[string][]api.Resultset
	order   lru.Order

	hits   atomic.Uint64
	misses atomic.Uint64
}

// defaultResultCacheCap bounds a cache constructed with capacity <= 0.
const defaultResultCacheCap = 256

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = defaultResultCacheCap
	}
	return &resultCache{capacity: capacity, entries: map[string][]api.Resultset{}}
}

// resultKey builds the cache key for one request against the session's
// current database. The caller holds the session read lock (the version
// vector must be consistent with the evaluation that follows).
func resultKey(req *api.QueryRequest, db *relation.Database) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%t|%d", req.Query, procName(req.Proc), req.Bag, req.MaxWorlds)
	versions := db.Versions()
	names := make([]string, 0, len(versions))
	for name := range versions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "|%s:%d", name, versions[name])
	}
	return b.String()
}

func (c *resultCache) get(key string) ([]api.Resultset, bool) {
	c.mu.Lock()
	rs, ok := c.entries[key]
	if ok {
		c.order.Touch(key)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return rs, ok
}

func (c *resultCache) put(key string, rs []api.Resultset) {
	c.mu.Lock()
	c.entries[key] = rs
	c.order.Touch(key)
	for len(c.entries) > c.capacity {
		oldest := c.order.Oldest()
		delete(c.entries, oldest)
		c.order.Remove(oldest)
	}
	c.mu.Unlock()
}

func (c *resultCache) stats() api.ResultCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return api.ResultCacheStats{Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// warmSet tracks the session's recently used prepared-plan warm keys —
// (query, procedure, semantics) triples — deduplicated, most recently used
// last, capped. Snapshots persist it so recovery can re-prepare the
// working set before the first request arrives.
type warmSet struct {
	mu   sync.Mutex
	cap  int
	keys []store.WarmKey
}

// warmSetCap bounds how many keys a snapshot carries.
const warmSetCap = 32

func newWarmSet() *warmSet { return &warmSet{cap: warmSetCap} }

func (ws *warmSet) record(k store.WarmKey) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for i, have := range ws.keys {
		if have == k {
			copy(ws.keys[i:], ws.keys[i+1:])
			ws.keys[len(ws.keys)-1] = k
			return
		}
	}
	ws.keys = append(ws.keys, k)
	if len(ws.keys) > ws.cap {
		ws.keys = append(ws.keys[:0], ws.keys[len(ws.keys)-ws.cap:]...)
	}
}

// seed installs recovered keys (oldest first) without touching recency.
func (ws *warmSet) seed(keys []store.WarmKey) {
	for _, k := range keys {
		ws.record(k)
	}
}

func (ws *warmSet) snapshot() []store.WarmKey {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return append([]store.WarmKey(nil), ws.keys...)
}
