package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"incdb/internal/plan"
)

// benchData builds a database whose prepared state is expensive: Payments
// is a wide null-free relation (frozen and dedup'd once per Prepare),
// Orders carries two nulls in a column the query never reads, so the
// certain-answer oracle runs on a single world and request latency is
// dominated by plan preparation versus reuse.
func benchData(orders, payments int) string {
	var b strings.Builder
	b.WriteString("rel Orders oid cid\nrel Payments oid\n")
	for i := 0; i < orders; i++ {
		fmt.Fprintf(&b, "row Orders o%d c%d\n", i, i%97)
	}
	b.WriteString("row Orders ox1 _1\nrow Orders ox2 _2\n")
	for i := 0; i < payments; i++ {
		// Every order except the ox nulls and the last few is paid twice
		// over (duplicate oids exercise the semi-join dedup).
		fmt.Fprintf(&b, "row Payments o%d\n", i%(orders-3))
	}
	return b.String()
}

// BenchmarkServerQuery measures end-to-end repeated-query latency over
// HTTP for a certain-answer query: cache=warm reuses the session's
// prepared plans across requests, cache=cold resets the prepared-plan
// cache before every request (the pre-PR behaviour of re-freezing every
// null-free subplan per oracle invocation). scripts/bench_server.sh turns
// the pair into the BENCH_PR4.json warm-vs-cold report.
func BenchmarkServerQuery(b *testing.B) {
	const query = "proj(0, sel(not(in(0, Payments)), Orders))"
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, "bench")
	if _, err := c.Load(benchData(500, 20000), false); err != nil {
		b.Fatalf("load: %v", err)
	}
	// mode selects what survives between requests: "cold" resets both the
	// prepared-plan and the result cache per request (the pre-PR-4
	// behaviour), "warm" keeps prepared plans but drops memoized results
	// (so the oracle still evaluates, through reused frozen subplans),
	// "result" keeps everything — the byte-identical repeated query served
	// straight from the oracle result cache.
	run := func(b *testing.B, mode string) {
		sess := srv.sessionFor("bench")
		if _, err := c.Query(query, "cert", false, 0); err != nil {
			b.Fatalf("query: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if mode != "result" {
				b.StopTimer()
				sess.mu.Lock()
				if mode == "cold" {
					sess.prep = plan.NewPrepCache(srv.opts.CacheCap)
				}
				sess.results = newResultCache(srv.opts.ResultCacheCap)
				sess.mu.Unlock()
				b.StartTimer()
			}
			if _, err := c.Query(query, "cert", false, 0); err != nil {
				b.Fatalf("query: %v", err)
			}
		}
	}
	b.Run("cache=cold", func(b *testing.B) { run(b, "cold") })
	b.Run("cache=warm", func(b *testing.B) { run(b, "warm") })
	b.Run("cache=result", func(b *testing.B) { run(b, "result") })
}

// BenchmarkDurableLoadConcurrency measures acknowledged durable-append
// throughput against one session as client concurrency grows. Every append
// is fsync'd before its 200 comes back, so with one client the ceiling is
// fsync latency; with 4 and 16 clients the group commit batches appends
// that arrive during an in-flight fsync into the next one, and throughput
// should scale well past the single-fsync rate (ns/op here is wall time
// per append across all clients — scripts/bench_server.sh converts the
// curve into BENCH_PR6.json). The snapshot threshold is pushed high so
// compaction does not interleave.
func BenchmarkDurableLoadConcurrency(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			srv := New(Options{Workers: 1, SnapshotBytes: 1 << 40})
			if err := srv.EnableDurability(b.TempDir()); err != nil {
				b.Fatalf("durability: %v", err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			if _, err := NewClient(ts.URL, "bench").Load("rel R a b\n", false); err != nil {
				b.Fatalf("load: %v", err)
			}
			b.ResetTimer()
			// Split b.N across free-running workers (a shared feed channel
			// would serialize on the producer handoff and understate the
			// group-commit batching).
			var wg sync.WaitGroup
			for w := 0; w < clients; w++ {
				n := b.N / clients
				if w < b.N%clients {
					n++
				}
				wg.Add(1)
				go func(w, n int) {
					defer wg.Done()
					c := NewClient(ts.URL, "bench")
					for i := 0; i < n; i++ {
						data := fmt.Sprintf("row R w%d i%d\n", w, i)
						if _, err := c.Load(data, true); err != nil {
							b.Errorf("append: %v", err)
							return
						}
					}
				}(w, n)
			}
			wg.Wait()
			b.StopTimer()
			if sess := srv.sessionFor("bench"); sess != nil && sess.log != nil {
				st := sess.log.Stats()
				b.ReportMetric(float64(st.WalRecords)/float64(max64(st.Syncs, 1)), "records/fsync")
			}
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
