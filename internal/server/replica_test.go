package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"incdb/internal/api"
)

// newFollower builds a replica of the primary at primaryURL, durable in
// dir when dir != "", and returns it with its follow context's cancel (the
// test's "kill switch").
func newFollower(t *testing.T, primaryURL, dir string, opts Options) (*Server, *httptest.Server, *Client, context.CancelFunc) {
	t.Helper()
	srv := New(opts)
	if dir != "" {
		if err := srv.EnableDurability(dir); err != nil {
			t.Fatalf("replica durability: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.StartFollow(ctx, primaryURL)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(cancel)
	t.Cleanup(func() { srv.Close() })
	return srv, hs, NewClient(hs.URL, "test"), cancel
}

// waitCaughtUp polls the replica until every session's version vector
// matches the primary's (the replication catch-up barrier for tests).
func waitCaughtUp(t *testing.T, primary, replica *Client) {
	t.Helper()
	want := sessionVersions(t, primary)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got := sessionVersions(t, replica); reflect.DeepEqual(got, want) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("replica never caught up: primary %v, replica %v",
		want, sessionVersions(t, replica))
}

// TestReplicaConvergesByteIdentical is the tentpole acceptance: a durable
// replica follows a durable primary through a mixed load history (appends,
// replaces, nulls, multiplicities, two sessions) and, once caught up,
// answers every evaluation procedure byte-identically — null identities
// and version vectors included — while rejecting loads as read-only.
func TestReplicaConvergesByteIdentical(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	seq := loadSeq(rand.New(rand.NewSource(7)), 8)
	for _, ld := range seq {
		if _, err := NewClient(pc.Base(), ld.session).Load(ld.data, ld.app); err != nil {
			t.Fatalf("primary load: %v", err)
		}
	}

	_, _, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1})
	waitCaughtUp(t, pc, rc)

	for _, sess := range []string{"s1", "s2"} {
		if _, ok := sessionVersions(t, pc)[sess]; !ok {
			continue
		}
		want := answers(t, pc, sess, crashQueries)
		got := answers(t, rc, sess, crashQueries)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("session %s: replica answers differ:\nprimary %v\nreplica %v", sess, want, got)
		}
	}

	// Replication is live: a later append on the primary shows up.
	if _, err := NewClient(pc.Base(), "s1").Load("row P c9\n", true); err != nil {
		t.Fatalf("late append: %v", err)
	}
	waitCaughtUp(t, pc, rc)
	want := answers(t, pc, "s1", crashQueries)
	if got := answers(t, rc, "s1", crashQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-append replica answers differ:\nprimary %v\nreplica %v", want, got)
	}

	// The replica refuses mutations with the machine-readable code.
	_, err := NewClient(rc.Base(), "s1").Load("row P c10\n", true)
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeReadOnlyReplica {
		t.Fatalf("replica load error = %v, want code %s", err, api.CodeReadOnlyReplica)
	}
}

// TestReplicaRestartResumesWithoutBootstrap: a durable follower that is
// killed (follow loops cut, server abandoned) and restarted on its data
// directory recovers locally and resumes tailing from its last applied
// sequence number — no snapshot re-bootstrap — then converges on writes it
// missed while down.
func TestReplicaRestartResumesWithoutBootstrap(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}

	rdir := t.TempDir()
	_, rhs, rc, kill := newFollower(t, phs.URL, rdir, Options{Workers: 1})
	waitCaughtUp(t, pc, rc)

	// Mirrored records are fsync'd by an async syncer; wait for the durable
	// seq to reach the applied seq so the "kill" loses nothing (a lagging
	// sync would merely mean re-tailing a suffix, but this test pins the
	// stronger property: restart resumes exactly, zero bootstraps).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ss, err := rc.SessionStatus()
		if err != nil {
			t.Fatalf("replica session status: %v", err)
		}
		if ss.Durability == nil {
			t.Fatalf("durable replica reports no durability")
		}
		if ss.Durability.DurableSeq == ss.Durability.Seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica wal never synced: %+v", ss.Durability)
		}
		time.Sleep(10 * time.Millisecond)
	}
	kill()
	rhs.Close()

	// Writes land on the primary while the follower is down.
	if _, err := pc.Load("row Orders o8 c2\nrow Payments o8\n", true); err != nil {
		t.Fatalf("append while replica down: %v", err)
	}

	_, _, rc2, _ := newFollower(t, phs.URL, rdir, Options{Workers: 1})
	waitCaughtUp(t, pc, rc2)
	st, err := rc2.Status()
	if err != nil {
		t.Fatalf("replica status: %v", err)
	}
	if st.Replication == nil || st.Replication.Primary != phs.URL {
		t.Fatalf("replica status has no replication section: %+v", st)
	}
	for _, rs := range st.Replication.Sessions {
		if rs.Bootstraps != 0 {
			t.Fatalf("restarted replica re-bootstrapped session %q: %+v", rs.Session, rs)
		}
	}
	want := answers(t, pc, "test", bootQueries)
	if got := answers(t, rc2, "test", bootQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("restarted replica answers differ:\nprimary %v\nreplica %v", want, got)
	}
}

// TestReplicaReBootstrapsAcrossWALGap: a follower that went down long
// enough for the primary to snapshot and compact past its position gets
// wal_gap on reconnect and re-bootstraps from a fresh snapshot, converging
// anyway.
func TestReplicaReBootstrapsAcrossWALGap(t *testing.T) {
	pdir := t.TempDir()
	_, phs, pc := newDurableServer(t, pdir, 1<<20) // no compaction yet
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	rdir := t.TempDir()
	_, rhs, rc, kill := newFollower(t, phs.URL, rdir, Options{Workers: 1})
	waitCaughtUp(t, pc, rc)
	kill()
	rhs.Close()

	// While the follower is down the primary appends and compacts: restart
	// it with a tiny snapshot threshold so the log truncates past the
	// follower's position.
	phs.Close()
	_, phs2, pc2 := newDurableServer(t, pdir, 1)
	if _, err := pc2.Load("row Orders o8 c2\n", true); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := pc2.Load("row Payments o8\n", true); err != nil {
		t.Fatalf("append: %v", err)
	}

	_, _, rc2, _ := newFollower(t, phs2.URL, rdir, Options{Workers: 1})
	waitCaughtUp(t, pc2, rc2)
	st, err := rc2.Status()
	if err != nil {
		t.Fatalf("replica status: %v", err)
	}
	var boots uint64
	for _, rs := range st.Replication.Sessions {
		boots += rs.Bootstraps
	}
	if boots == 0 {
		t.Fatalf("follower crossed a wal gap without re-bootstrapping: %+v", st.Replication)
	}
	want := answers(t, pc2, "test", bootQueries)
	if got := answers(t, rc2, "test", bootQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("re-bootstrapped replica answers differ:\nprimary %v\nreplica %v", want, got)
	}
}

// TestConsistencyToken: a client that wrote through the primary can read
// its write on a replica by echoing the response's version vector — the
// replica holds the read until replication covers the token. A token the
// replica can never cover fails 412 stale_replica; on the primary an
// uncovered token fails immediately.
func TestConsistencyToken(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	_, _, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1, StaleWait: 5 * time.Second})
	waitCaughtUp(t, pc, rc)

	// Read-your-writes across servers: append on the primary, immediately
	// read on the replica with the primary client's token. The replica may
	// not have applied the append yet; the token makes it wait.
	for i := 0; i < 5; i++ {
		if _, err := pc.Load(fmt.Sprintf("row Orders op%d c1\nrow Payments op%d\n", i, i), true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		reader := NewClient(rc.Base(), "test")
		reader.SetVector(pc.Vector())
		qr, err := reader.Query("proj(0, Orders)", "sql", false, 0)
		if err != nil {
			t.Fatalf("read-after-write %d on replica: %v", i, err)
		}
		want := 2 + (i + 1) // o1, o2 plus the appends so far
		if len(qr.Results[0].Rows) != want {
			t.Fatalf("read %d saw %d orders, want %d (stale read slipped through)",
				i, len(qr.Results[0].Rows), want)
		}
	}

	// An uncoverable token times out with the machine-readable code.
	impatient := NewClient(rc.Base(), "test")
	impatient.SetVector(map[string]uint64{"Orders": 1 << 30})
	fast, _, fastC, _ := newFollower(t, phs.URL, "", Options{Workers: 1, StaleWait: 50 * time.Millisecond})
	_ = fast
	waitCaughtUp(t, pc, fastC)
	impatient = NewClient(fastC.Base(), "test")
	impatient.SetVector(map[string]uint64{"Orders": 1 << 30})
	_, err := impatient.Query("proj(0, Orders)", "sql", false, 0)
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeStaleReplica {
		t.Fatalf("uncoverable token on replica: err = %v, want code %s", err, api.CodeStaleReplica)
	}

	// On the primary an uncovered token is an immediate 412 (no wait).
	onPrimary := NewClient(pc.Base(), "test")
	onPrimary.SetVector(map[string]uint64{"Orders": 1 << 30})
	start := time.Now()
	_, err = onPrimary.Query("proj(0, Orders)", "sql", false, 0)
	if !errors.As(err, &aerr) || aerr.Code != api.CodeStaleReplica {
		t.Fatalf("uncovered token on primary: err = %v, want code %s", err, api.CodeStaleReplica)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("primary blocked %v on an uncovered token instead of failing fast", d)
	}
}

// TestMemoryReplicaFollowsDurablePrimary: -follow works without a data
// directory — the follower applies in memory only and re-bootstraps on
// restart (here: just checks convergence and that status reports tailing).
func TestMemoryReplicaFollowsDurablePrimary(t *testing.T) {
	_, phs, pc := newDurableServer(t, t.TempDir(), 0)
	if _, err := pc.Load(ordersData, false); err != nil {
		t.Fatalf("primary load: %v", err)
	}
	_, _, rc, _ := newFollower(t, phs.URL, "", Options{Workers: 1})
	waitCaughtUp(t, pc, rc)
	want := answers(t, pc, "test", bootQueries)
	if got := answers(t, rc, "test", bootQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("memory replica answers differ:\nprimary %v\nreplica %v", want, got)
	}
}
