// Package server implements incdbd: a long-lived HTTP/JSON query service
// over named, session-scoped incomplete databases.
//
// Each session holds one incomplete database (loaded and mutated through
// its load endpoint in the raparse text format) and one prepared-plan
// cache: the compile-once planner's Prepared state — frozen null-free
// subplan results, join build tables, IN splits — survives across requests
// and is shared read-only by concurrent queries, guarded by the relations'
// mutation versions so that mutating a touched relation invalidates
// exactly the affected entries (see plan.PrepCache).
//
// Endpoints (wire types in incdb/internal/api):
//
//	POST /v1/sessions/{session}/load      load or append data
//	POST /v1/sessions/{session}/query     evaluate under any procedure
//	POST /v1/sessions/{session}/explain   structured plan rendering
//	GET  /v1/sessions/{session}/status    one session's status
//	GET  /v1/sessions/{session}/snapshot  consistent snapshot export
//	GET  /v1/sessions/{session}/wal       stream WAL records (replication)
//	GET  /v1/status                       server-wide status
//
// plus legacy flat routes (POST /v1/load|query|explain, GET /v1/snapshot)
// that read the session name from the body or query string and delegate.
// Every non-2xx reply carries the uniform envelope
// {"error":{"code":"…","message":"…"}} (api.Error).
//
// With a data directory attached (incdbd -data-dir, see internal/store)
// every load is written ahead to a per-session log and fsync'd before it
// is acknowledged — concurrent loads group-commit, sharing fsyncs — then
// snapshots compact the log, and startup recovers all sessions to the
// last acknowledged load. The WAL doubles as the replication feed: a
// second incdbd started with -follow bootstraps each session from the
// primary's snapshot endpoint and tails its WAL endpoint, replaying
// records through the same recovery machinery, so the follower converges
// to a byte-identical database (null identities and version vectors
// included) and serves reads. Query responses carry the session's version
// vector; a client may echo it as a consistency token (read_after) and a
// replica holds the read until replication covers it, so reads are
// monotonic across the fleet.
package server
