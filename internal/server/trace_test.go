package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"incdb/internal/api"
	"incdb/internal/obs"
)

const traceTestData = `rel Customers cid name
rel Orders oid cid
rel Payments oid
row Customers c1 'Ann'
row Customers c2 'Bob'
row Orders o1 c1
row Orders o2 _1
row Payments o1
`

// newTracedServer builds a durable server with tracing fully on (every
// fresh trace sampled), mirroring incdbd's defaults.
func newTracedServer(t *testing.T, dir string) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := New(Options{Workers: 1, TraceSample: 1})
	if err := srv.EnableDurability(dir); err != nil {
		t.Fatalf("enable durability: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, hs, NewClient(hs.URL, "test")
}

// spansNamed returns the spans with the given name.
func spansNamed(spans []obs.SpanData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, sp := range spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func oneSpan(t *testing.T, spans []obs.SpanData, name string) obs.SpanData {
	t.Helper()
	got := spansNamed(spans, name)
	if len(got) != 1 {
		t.Fatalf("want exactly one %q span, got %d (spans: %v)", name, len(got), spanNames(spans))
	}
	return got[0]
}

func spanNames(spans []obs.SpanData) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// TestTracedRequestSpansEndToEnd is the single-server half of the
// acceptance criterion: one client-originated trace ID retrieved from
// GET /v1/traces/{id} holds the client-propagated roots of a durable
// write (load.apply, wal.commit, the linked wal.fsync) and of a detailed
// query (admission.wait, result-cache lookup, evaluate with per-plan-node
// children), plus the exemplar in /v1/metrics pointing back at it.
func TestTracedRequestSpansEndToEnd(t *testing.T) {
	_, _, c := newTracedServer(t, t.TempDir())
	id := c.NewTrace()
	c.SetTraceDetail(true)
	if _, err := c.Load(traceTestData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	qr, err := c.Query("proj(0, sel(not(in(0, Payments)), Orders))", "cert", false, 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if qr.TraceID != id {
		t.Fatalf("QueryResponse.TraceID = %q, want the client's minted trace %q", qr.TraceID, id)
	}

	tr, err := c.Trace(id)
	if err != nil {
		t.Fatalf("fetch trace: %v", err)
	}
	spans := tr.Spans

	// The client's minted context is the remote parent of both roots.
	loadRoot := oneSpan(t, spans, "POST /v1/sessions/test/load")
	queryRoot := oneSpan(t, spans, "POST /v1/sessions/test/query")
	for _, root := range []obs.SpanData{loadRoot, queryRoot} {
		if !root.Remote || root.ParentID == "" {
			t.Errorf("root %q: want remote client parent, got remote=%v parent=%q",
				root.Name, root.Remote, root.ParentID)
		}
		if root.TraceID != id {
			t.Errorf("root %q trace = %q, want %q", root.Name, root.TraceID, id)
		}
	}

	// Write side: apply + wal.commit under the load root, the group-commit
	// fsync linked onto wal.commit.
	apply := oneSpan(t, spans, "load.apply")
	commit := oneSpan(t, spans, "wal.commit")
	fsync := oneSpan(t, spans, "wal.fsync")
	if apply.ParentID != loadRoot.SpanID || commit.ParentID != loadRoot.SpanID {
		t.Errorf("load.apply/wal.commit parents = %q/%q, want load root %q",
			apply.ParentID, commit.ParentID, loadRoot.SpanID)
	}
	if fsync.ParentID != commit.SpanID {
		t.Errorf("wal.fsync parent = %q, want wal.commit %q", fsync.ParentID, commit.SpanID)
	}
	if fsync.Attrs["records"] == "" {
		t.Errorf("wal.fsync span lacks a records attr: %v", fsync.Attrs)
	}

	// Read side: admission wait, cache lookup (miss), evaluation with
	// per-plan-node children (trace detail was on).
	lookup := oneSpan(t, spans, "result_cache.lookup")
	if lookup.Attrs["hit"] != "false" {
		t.Errorf("first query's cache lookup hit = %q, want false", lookup.Attrs["hit"])
	}
	oneSpan(t, spans, "admission.wait")
	eval := oneSpan(t, spans, "evaluate")
	if eval.ParentID != queryRoot.SpanID {
		t.Errorf("evaluate parent = %q, want query root %q", eval.ParentID, queryRoot.SpanID)
	}
	if eval.Attrs["worlds"] == "" || eval.Attrs["proc"] != "cert" {
		t.Errorf("evaluate attrs = %v, want worlds and proc=cert", eval.Attrs)
	}
	var planSpans int
	for _, sp := range spans {
		if strings.HasPrefix(sp.Name, "plan.") {
			planSpans++
			if sp.ParentID != eval.SpanID {
				t.Errorf("%s parent = %q, want evaluate %q", sp.Name, sp.ParentID, eval.SpanID)
			}
		}
	}
	if planSpans == 0 {
		t.Errorf("trace_detail query produced no plan.* spans: %v", spanNames(spans))
	}

	// A byte-identical repeat is served from the result cache — its trace
	// records the hit instead of an evaluation.
	if _, err := c.Query("proj(0, sel(not(in(0, Payments)), Orders))", "cert", false, 0); err != nil {
		t.Fatalf("repeat query: %v", err)
	}
	tr, err = c.Trace(id)
	if err != nil {
		t.Fatalf("re-fetch trace: %v", err)
	}
	var hits int
	for _, sp := range spansNamed(tr.Spans, "result_cache.lookup") {
		if sp.Attrs["hit"] == "true" {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("want one cache-hit lookup span after the repeat, got %d", hits)
	}

	// The slowest-bucket exemplar points back at a retrievable trace.
	prom, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if !strings.Contains(prom, `# {trace_id="`+id+`"}`) {
		t.Errorf("/v1/metrics carries no exemplar for trace %s", id)
	}
}

// TestReplicaApplyLinksToPrimaryWrite is the cross-process half of the
// acceptance criterion: the WAL record of a traced write carries the
// committing wal.commit span's context, so the follower's replica.apply
// span — in the follower's own ring — is parented on it, remote.
func TestReplicaApplyLinksToPrimaryWrite(t *testing.T) {
	_, phs, pc := newTracedServer(t, t.TempDir())
	if _, err := pc.Load(traceTestData, false); err != nil {
		t.Fatalf("seed load: %v", err)
	}
	_, _, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1, TraceSample: 1})
	waitCaughtUp(t, pc, rc)

	id := pc.NewTrace()
	if _, err := pc.Load("row Orders o3 c2\n", true); err != nil {
		t.Fatalf("traced append: %v", err)
	}
	waitCaughtUp(t, pc, rc)

	commit := oneSpan(t, fetchTrace(t, pc, id), "wal.commit")

	// The apply span is published just after the version vector becomes
	// visible (deferred End), so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rtr, err := rc.Trace(id)
		if err == nil {
			if applies := spansNamed(rtr.Spans, "replica.apply"); len(applies) == 1 {
				ap := applies[0]
				if ap.ParentID != commit.SpanID {
					t.Fatalf("replica.apply parent = %q, want the primary's wal.commit %q",
						ap.ParentID, commit.SpanID)
				}
				if !ap.Remote {
					t.Fatalf("replica.apply should mark its parent remote")
				}
				if ap.Attrs["session"] != "test" || ap.Attrs["seq"] == "" {
					t.Fatalf("replica.apply attrs = %v, want session and seq", ap.Attrs)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never published a replica.apply span for trace %s (err %v)", id, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchTrace(t *testing.T, c *Client, id string) []obs.SpanData {
	t.Helper()
	tr, err := c.Trace(id)
	if err != nil {
		t.Fatalf("fetch trace %s: %v", id, err)
	}
	return tr.Spans
}

// TestTracePropagationAcrossFailover: one client trace spans writes on
// both sides of a promotion — the pre-failover write's apply span and the
// post-failover write's root land in the promoted server's ring under the
// same trace ID.
func TestTracePropagationAcrossFailover(t *testing.T) {
	_, phs, pc := newTracedServer(t, t.TempDir())
	if _, err := pc.Load(traceTestData, false); err != nil {
		t.Fatalf("seed load: %v", err)
	}
	_, rhs, rc, _ := newFollower(t, phs.URL, t.TempDir(), Options{Workers: 1, TraceSample: 1})
	waitCaughtUp(t, pc, rc)

	fc := NewFailoverClient([]string{phs.URL, rhs.URL}, "test")
	fc.SetRetryWindow(10 * time.Second)
	id := fc.NewTrace()
	if _, err := fc.Load("row Orders o3 c2\n", true); err != nil {
		t.Fatalf("pre-failover append: %v", err)
	}
	waitCaughtUp(t, pc, rc)

	// Fail the primary over: kill its listener, promote the follower, and
	// land the next traced write through the same client.
	killServer(phs)
	if _, err := promoteURL(rhs.URL, true); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := fc.Load("row Orders o4 c1\n", true); err != nil {
		t.Fatalf("post-failover append: %v", err)
	}

	// The promoted server's ring holds both sides of the trace: the apply
	// of the old primary's shipped write and the root of the new write.
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans, err := rc.Trace(id)
		if err == nil &&
			len(spansNamed(spans.Spans, "replica.apply")) >= 1 &&
			len(spansNamed(spans.Spans, "POST /v1/sessions/test/load")) >= 1 {
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("trace %s on promoted server: %v", id, err)
			}
			t.Fatalf("promoted server's trace %s = %v, want a replica.apply and a load root",
				id, spanNames(spans.Spans))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTracedQueryByteIdentical extends PR 9's equivalence guarantee to the
// span layer: the same queries against a tracing-off server, a traced
// server, and a traced server with per-node detail return identical
// results.
func TestTracedQueryByteIdentical(t *testing.T) {
	plain := httptest.NewServer(New(Options{Workers: 2}).Handler())
	t.Cleanup(plain.Close)
	traced := httptest.NewServer(New(Options{Workers: 2, TraceSample: 1}).Handler())
	t.Cleanup(traced.Close)

	pcl := NewClient(plain.URL, "test")
	tcl := NewClient(traced.URL, "test")
	tcl.NewTrace()
	for _, c := range []*Client{pcl, tcl} {
		if _, err := c.Load(traceTestData, false); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	queries := []struct{ query, proc string }{
		{"proj(0, sel(not(in(0, Payments)), Orders))", "cert"},
		{"minus(proj(0, Orders), Payments)", "poss"},
		{"minus(proj(0, Customers), proj(1, Orders))", "cert"},
		{"times(Orders, Payments)", "sql"},
		{"proj(1, Orders)", "ctable-eager"},
	}
	for _, detail := range []bool{false, true} {
		tcl.SetTraceDetail(detail)
		for _, q := range queries {
			want, err := pcl.Query(q.query, q.proc, false, 0)
			if err != nil {
				t.Fatalf("untraced %s %s: %v", q.proc, q.query, err)
			}
			got, err := tcl.Query(q.query, q.proc, false, 0)
			if err != nil {
				t.Fatalf("traced(detail=%v) %s %s: %v", detail, q.proc, q.query, err)
			}
			if !reflect.DeepEqual(want.Results, got.Results) {
				t.Errorf("results diverge for %s %s (detail=%v):\nuntraced: %+v\ntraced:   %+v",
					q.proc, q.query, detail, want.Results, got.Results)
			}
		}
	}
}

// TestErrorTraceForcedDespiteSampling: at a vanishing sample rate a failed
// request's trace is still published (error force), while a successful
// request's is dropped — and the X-Trace-Id header names both.
func TestErrorTraceForcedDespiteSampling(t *testing.T) {
	srv := httptest.NewServer(New(Options{Workers: 1, TraceSample: 1e-12}).Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, "test")
	if _, err := c.Load(traceTestData, false); err != nil {
		t.Fatalf("load: %v", err)
	}

	post := func(body string) (traceID string, status int) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/sessions/test/query", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		var drain any
		_ = json.NewDecoder(resp.Body).Decode(&drain)
		return resp.Header.Get("X-Trace-Id"), resp.StatusCode
	}

	errID, status := post(`{"query": "proj(9, Orders)", "proc": "cert"}`)
	if status < 400 {
		t.Fatalf("bad query answered %d, want an error", status)
	}
	if errID == "" {
		t.Fatalf("error response carries no X-Trace-Id")
	}
	tr, err := c.Trace(errID)
	if err != nil {
		t.Fatalf("failed request's trace %s not retrievable: %v", errID, err)
	}
	root := oneSpan(t, tr.Spans, "POST /v1/sessions/test/query")
	if root.Error == "" {
		t.Errorf("force-published root has no error, attrs %v", root.Attrs)
	}

	okID, status := post(`{"query": "proj(0, Orders)", "proc": "sql"}`)
	if status != http.StatusOK {
		t.Fatalf("good query answered %d", status)
	}
	if okID == "" {
		t.Fatalf("response carries no X-Trace-Id")
	}
	if _, err := c.Trace(okID); err == nil {
		t.Errorf("unsampled successful trace %s should not have been kept", okID)
	} else if ae := (*api.Error)(nil); !(errorAs(err, &ae) && ae.Code == api.CodeNotFound) {
		t.Errorf("want not_found fetching dropped trace, got %v", err)
	}
}

// errorAs is errors.As without the import dance in assertions above.
func errorAs(err error, target **api.Error) bool {
	for err != nil {
		if ae, ok := err.(*api.Error); ok {
			*target = ae
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestTracingOffIsInert: without TraceSample the server mints no spans,
// sets no trace headers, and serves an empty /v1/traces.
func TestTracingOffIsInert(t *testing.T) {
	srv := httptest.NewServer(New(Options{Workers: 1}).Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, "test")
	c.NewTrace() // propagated, but the server has no tracer to honor it
	if _, err := c.Load(traceTestData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	qr, err := c.Query("proj(0, Orders)", "sql", false, 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if qr.TraceID != "" {
		t.Errorf("tracing-off server reported trace %q", qr.TraceID)
	}
	resp, err := http.Get(srv.URL + "/v1/traces")
	if err != nil {
		t.Fatalf("traces: %v", err)
	}
	defer resp.Body.Close()
	var out api.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Spans) != 0 {
		t.Errorf("tracing-off server stored %d spans", len(out.Spans))
	}
}
