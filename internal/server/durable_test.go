package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// allProcs is every evaluation procedure the crash-recovery acceptance
// compares across servers (the five paper procedures plus SQL and a ctable
// strategy for good measure).
var allProcs = []string{"sql", "naive", "cert", "inter", "plus", "poss", "ctable-eager"}

func newDurableServer(t *testing.T, dir string, snapshotBytes int64) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := New(Options{Workers: 1, SnapshotBytes: snapshotBytes})
	if err := srv.EnableDurability(dir); err != nil {
		t.Fatalf("enable durability: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, hs, NewClient(hs.URL, "test")
}

// loadSeq is a randomized-but-seeded load sequence with appends, replaces,
// nulls and multiplicities across two sessions.
func loadSeq(rng *rand.Rand, n int) []struct {
	session, data string
	app           bool
} {
	var out []struct {
		session, data string
		app           bool
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		sess := "s1"
		if rng.Intn(3) == 0 {
			sess = "s2"
		}
		app := seen[sess] && rng.Intn(4) != 0
		seen[sess] = true
		data := "rel R a b\nrel P a\n"
		if app {
			data = ""
		}
		rows := 1 + rng.Intn(3)
		for r := 0; r < rows; r++ {
			switch rng.Intn(3) {
			case 0:
				data += fmt.Sprintf("row R c%d _%d\n", rng.Intn(4), 1+rng.Intn(2))
			case 1:
				data += fmt.Sprintf("row R 'v %d' x *%d\n", rng.Intn(4), 1+rng.Intn(3))
			default:
				data += fmt.Sprintf("row P c%d\n", rng.Intn(4))
			}
		}
		out = append(out, struct {
			session, data string
			app           bool
		}{sess, data, app})
	}
	return out
}

// crashQueries: a certain-answer shape (difference — inside the Figure 2
// fragment, so Q⁺/Q? accept it too) and a null-exposing projection, so
// byte-identical answers also prove null identities (_k renderings)
// survived recovery.
var crashQueries = []string{"minus(proj(0, R), P)", "proj(1, R)"}

// bootQueries is the ordersData counterpart (same shapes over the example
// schema).
var bootQueries = []string{"minus(proj(0, Orders), Payments)", "proj(1, Orders)"}

// answers evaluates every query under every procedure for a session and
// returns the JSON-rendered resultsets, keyed by proc|query.
func answers(t *testing.T, c *Client, session string, queries []string) map[string]string {
	t.Helper()
	cs := NewClient(c.Base(), session)
	out := map[string]string{}
	for _, proc := range allProcs {
		for _, q := range queries {
			qr, err := cs.Query(q, proc, false, 0)
			if err != nil {
				t.Fatalf("session %s proc %s: %v", session, proc, err)
			}
			data, err := json.Marshal(qr.Results)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			out[proc+"|"+q] = string(data)
		}
	}
	return out
}

// sessionVersions returns name → relation version vectors per session.
func sessionVersions(t *testing.T, c *Client) map[string]map[string]uint64 {
	t.Helper()
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	out := map[string]map[string]uint64{}
	for _, s := range st.Sessions {
		v := map[string]uint64{}
		for _, rel := range s.Relations {
			v[rel.Name] = rel.Version
		}
		out[s.Name] = v
	}
	return out
}

// TestCrashRecoveryMatchesReference is the acceptance property: apply a
// randomized load sequence to a durable server and an identical in-memory
// reference, abandon the durable server at an arbitrary cut point (every
// acknowledged load is fsync'd, so abandonment after ack is exactly the
// SIGKILL-after-ack state), restart on the same data directory and check
// that every session's version vector and every evaluation procedure's
// answers are byte-identical to a reference server that replayed the same
// prefix and was never killed. Exercised both with snapshots disabled
// (pure WAL replay) and with a tiny threshold (snapshot + WAL tail).
func TestCrashRecoveryMatchesReference(t *testing.T) {
	for _, snapshotBytes := range []int64{0, 256} {
		rng := rand.New(rand.NewSource(42))
		seq := loadSeq(rng, 10)
		for _, cut := range []int{3, 7, len(seq)} {
			dir := t.TempDir()
			_, hs, c := newDurableServer(t, dir, snapshotBytes)

			ref := New(Options{Workers: 1})
			refHS := httptest.NewServer(ref.Handler())
			refC := NewClient(refHS.URL, "test")

			for _, ld := range seq[:cut] {
				for _, cl := range []*Client{c, refC} {
					if _, err := NewClient(cl.Base(), ld.session).Load(ld.data, ld.app); err != nil {
						t.Fatalf("load: %v", err)
					}
				}
			}
			// Run some queries so the durable server records warm keys (and
			// snapshots, when enabled, persist them).
			preAnswers := map[string]map[string]string{}
			for _, sess := range []string{"s1", "s2"} {
				if _, ok := sessionVersions(t, c)[sess]; ok {
					preAnswers[sess] = answers(t, c, sess, crashQueries)
				}
			}
			wantVers := sessionVersions(t, refC)

			// "SIGKILL": abandon the server without any shutdown.
			hs.Close()

			_, _, c2 := newDurableServer(t, dir, snapshotBytes)
			gotVers := sessionVersions(t, c2)
			if !reflect.DeepEqual(gotVers, wantVers) {
				t.Fatalf("snap=%d cut=%d: recovered versions %v, want %v", snapshotBytes, cut, gotVers, wantVers)
			}
			for sess, want := range preAnswers {
				got := answers(t, c2, sess, crashQueries)
				refGot := answers(t, refC, sess, crashQueries)
				for k := range want {
					if got[k] != refGot[k] {
						t.Fatalf("snap=%d cut=%d session %s %s:\nrecovered %s\nreference %s",
							snapshotBytes, cut, sess, k, got[k], refGot[k])
					}
					if got[k] != want[k] {
						t.Fatalf("snap=%d cut=%d session %s %s: pre-kill %s post-recovery %s",
							snapshotBytes, cut, sess, k, want[k], got[k])
					}
				}
			}
			refHS.Close()
		}
	}
}

// TestConcurrentDurableLoads hammers one durable session with concurrent
// appends and queries (run under -race), with a threshold low enough that
// snapshots and compactions interleave with the traffic; recovery must
// reproduce the final acknowledged state exactly.
func TestConcurrentDurableLoads(t *testing.T) {
	dir := t.TempDir()
	_, hs, c := newDurableServer(t, dir, 2048)
	if _, err := c.Load("rel R a b\nrel P a\nrow P c0\n", false); err != nil {
		t.Fatalf("load: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := NewClient(c.Base(), "test")
			for i := 0; i < 5; i++ {
				// One null in the whole session (every append call
				// allocates fresh nulls, and the exact certainty oracles
				// are exponential in their count).
				data := fmt.Sprintf("row R g%d i%d\n", g, i)
				if g == 0 && i == 0 {
					data += "row R gx _1\n"
				}
				if _, err := cl.Load(data, true); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if _, err := cl.Query("proj(0, R)", "sql", false, 0); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	want := answers(t, c, "test", crashQueries)
	wantVers := sessionVersions(t, c)
	hs.Close()

	_, _, c2 := newDurableServer(t, dir, 2048)
	if got := sessionVersions(t, c2); !reflect.DeepEqual(got, wantVers) {
		t.Fatalf("recovered versions %v, want %v", got, wantVers)
	}
	if got := answers(t, c2, "test", crashQueries); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered answers differ:\ngot  %v\nwant %v", got, want)
	}
}

// TestRecoveryWarmsPreparedPlans: after recovery from a snapshot carrying
// warm keys, the prepared-plan cache already holds entries — the first
// repeated query is a hit, not a miss.
func TestRecoveryWarmsPreparedPlans(t *testing.T) {
	dir := t.TempDir()
	_, hs, c := newDurableServer(t, dir, 1) // snapshot after every load
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Query(unpaid, "cert", false, 0); err != nil {
		t.Fatalf("query: %v", err)
	}
	// The warm key is persisted by the next snapshot, i.e. the next load.
	// o7 is paid immediately, so the certain unpaid set stays {o2}.
	if _, err := c.Load("row Orders o7 c1\nrow Payments o7\n", true); err != nil {
		t.Fatalf("append: %v", err)
	}
	hs.Close()

	_, _, c2 := newDurableServer(t, dir, 1)
	ss := sessionStatus(t, c2, "test")
	if ss.Cache.Entries == 0 {
		t.Fatalf("recovered session has no warmed prepared plans: %+v", ss.Cache)
	}
	qr, err := c2.Query(unpaid, "cert", false, 0)
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if want := [][]string{{"o2"}}; !reflect.DeepEqual(qr.Results[0].Rows, want) {
		t.Fatalf("post-recovery cert = %v, want %v", qr.Results[0].Rows, want)
	}
	after := sessionStatus(t, c2, "test").Cache
	if after.Hits == 0 {
		t.Fatalf("first post-recovery query did not hit the warmed cache: %+v", after)
	}
}

// TestRecoveryDiscardsTornTail: garbage appended to a session WAL (the
// torn tail a crash mid-append leaves) is discarded; the acknowledged
// prefix survives.
func TestRecoveryDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	_, hs, c := newDurableServer(t, dir, 0)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	want := answers(t, c, "test", bootQueries)
	hs.Close()

	wal := filepath.Join(dir, "sessions", "test", "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xff, 0xde, 0xad}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	_, _, c2 := newDurableServer(t, dir, 0)
	got := answers(t, c2, "test", bootQueries)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail changed answers:\ngot  %v\nwant %v", got, want)
	}
}

// TestSnapshotExportBootstrap: /v1/snapshot from a running server loads
// into a fresh (memory-only) server via the snapshot-load path with
// identical version vectors, null identities and answers — the replica
// bootstrap flow.
func TestSnapshotExportBootstrap(t *testing.T) {
	_, c := newTestServer(t)
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Query(unpaid, "cert", false, 0); err != nil {
		t.Fatalf("query: %v", err)
	}
	export, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot export: %v", err)
	}

	replica := httptest.NewServer(New(Options{Workers: 1}).Handler())
	defer replica.Close()
	rc := NewClient(replica.URL, "test")
	if _, err := rc.Restore(export); err != nil {
		t.Fatalf("restore: %v", err)
	}
	wantVers := sessionVersions(t, c)
	gotVers := sessionVersions(t, rc)
	if !reflect.DeepEqual(gotVers, wantVers) {
		t.Fatalf("replica versions %v, want %v", gotVers, wantVers)
	}
	// proj(1, Orders) renders the null ⊥1 as _1; byte-identical answers
	// prove the null identities survived the bootstrap.
	wantAns := answers(t, c, "test", bootQueries)
	gotAns := answers(t, rc, "test", bootQueries)
	if !reflect.DeepEqual(gotAns, wantAns) {
		t.Fatalf("replica answers differ:\ngot  %v\nwant %v", gotAns, wantAns)
	}
	// The replica starts with warmed prepared plans from the export.
	if ss := sessionStatus(t, rc, "test"); ss.Cache.Entries == 0 {
		t.Fatalf("replica has no warmed plans: %+v", ss.Cache)
	}

	// Unknown sessions 404.
	resp, err := http.Get(c.Base() + "/v1/snapshot?session=nope")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot of unknown session: HTTP %d, want 404", resp.StatusCode)
	}
}
