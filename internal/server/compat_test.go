package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"testing"

	"incdb/internal/api"
)

// postJSON posts a raw body and returns status + decoded-into.
func postJSON(t *testing.T, url string, body any, into any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if into != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

// TestLegacyRoutesDelegate: the pre-PR-6 flat routes (session name in the
// body or query string) keep working and answer exactly like the
// session-in-path routes — same handlers behind thin shims.
func TestLegacyRoutesDelegate(t *testing.T) {
	srv, _ := newTestServer(t)
	base := srv.URL

	// Legacy load with the session in the body.
	var lr api.LoadResponse
	if code := postJSON(t, base+"/v1/load",
		api.LoadRequest{Session: "legacy", Data: ordersData}, &lr); code != 200 {
		t.Fatalf("legacy load: HTTP %d", code)
	}
	if lr.Session != "legacy" || len(lr.Relations) != 3 {
		t.Fatalf("legacy load response: %+v", lr)
	}

	// Legacy query against the legacy-loaded session; new-route query
	// against the same session must agree byte for byte.
	var legacyQR, pathQR api.QueryResponse
	if code := postJSON(t, base+"/v1/query",
		api.QueryRequest{Session: "legacy", Query: unpaid, Proc: "cert"}, &legacyQR); code != 200 {
		t.Fatalf("legacy query: HTTP %d", code)
	}
	if code := postJSON(t, base+"/v1/sessions/legacy/query",
		api.QueryRequest{Query: unpaid, Proc: "cert"}, &pathQR); code != 200 {
		t.Fatalf("path query: HTTP %d", code)
	}
	if !reflect.DeepEqual(legacyQR.Results, pathQR.Results) {
		t.Fatalf("legacy and path routes disagree: %+v vs %+v", legacyQR.Results, pathQR.Results)
	}
	if len(pathQR.Versions) == 0 || !reflect.DeepEqual(legacyQR.Versions, pathQR.Versions) {
		t.Fatalf("version vectors differ across routes: %v vs %v", legacyQR.Versions, pathQR.Versions)
	}

	// Legacy explain.
	var er api.ExplainResponse
	if code := postJSON(t, base+"/v1/explain",
		api.ExplainRequest{Session: "legacy", Query: unpaid}, &er); code != 200 {
		t.Fatalf("legacy explain: HTTP %d", code)
	}
	if er.Text == "" {
		t.Fatalf("legacy explain returned no text")
	}

	// Legacy snapshot with the session in the query string.
	resp, err := http.Get(base + "/v1/snapshot?session=legacy")
	if err != nil {
		t.Fatalf("legacy snapshot: %v", err)
	}
	legacySnap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(legacySnap) == 0 {
		t.Fatalf("legacy snapshot: HTTP %d, %d bytes", resp.StatusCode, len(legacySnap))
	}
	resp, err = http.Get(base + "/v1/sessions/legacy/snapshot")
	if err != nil {
		t.Fatalf("path snapshot: %v", err)
	}
	pathSnap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(legacySnap, pathSnap) {
		t.Fatalf("snapshot exports differ across routes")
	}

	// Session in the path wins over a conflicting body field... by simply
	// ignoring the body's (the path is authoritative on scoped routes).
	var other api.LoadResponse
	if code := postJSON(t, base+"/v1/sessions/pathwins/load",
		api.LoadRequest{Session: "legacy", Data: "rel Solo a\nrow Solo x\n"}, &other); code != 200 {
		t.Fatalf("path-scoped load: HTTP %d", code)
	}
	if other.Session != "pathwins" {
		t.Fatalf("path-scoped load landed in %q, want pathwins", other.Session)
	}
}

// TestErrorEnvelope: every non-2xx reply carries the uniform
// {"error":{"code","message"}} envelope with the right machine code, and
// the Go client surfaces it as *api.Error.
func TestErrorEnvelope(t *testing.T) {
	srv, c := newTestServer(t)
	base := srv.URL

	check := func(method, url, body, wantCode string, wantStatus int) {
		t.Helper()
		var resp *http.Response
		var err error
		if method == "GET" {
			resp, err = http.Get(url)
		} else {
			resp, err = http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: HTTP %d, want %d\n%s", method, url, resp.StatusCode, wantStatus, raw)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
			t.Fatalf("%s %s: body is not the error envelope: %s", method, url, raw)
		}
		if env.Error.Code != wantCode {
			t.Fatalf("%s %s: code %q, want %q", method, url, env.Error.Code, wantCode)
		}
		if env.Error.Message == "" {
			t.Fatalf("%s %s: empty error message", method, url)
		}
	}

	check("POST", base+"/v1/sessions/nope/query", `{"query":"proj(0, R)"}`,
		api.CodeSessionNotFound, http.StatusNotFound)
	check("GET", base+"/v1/sessions/nope/status", "",
		api.CodeSessionNotFound, http.StatusNotFound)
	check("GET", base+"/v1/sessions/nope/snapshot", "",
		api.CodeSessionNotFound, http.StatusNotFound)
	check("POST", base+"/v1/sessions/s/load", `{"data": 42}`,
		api.CodeBadRequest, http.StatusBadRequest)
	check("POST", base+"/v1/load", `{"data":"rel R a"}`,
		api.CodeBadRequest, http.StatusBadRequest) // missing session name
	check("POST", base+"/v1/sessions/s/load", `{"data":"nonsense"}`,
		api.CodeBadQuery, http.StatusBadRequest)

	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	check("POST", base+"/v1/sessions/test/query", `{"query":"proj(9, Orders)"}`,
		api.CodeBadQuery, http.StatusUnprocessableEntity)
	check("GET", base+"/v1/sessions/test/wal", "",
		api.CodeNotDurable, http.StatusConflict) // memory-only server
	check("GET", base+"/v1/sessions/test/wal?from=oops", "",
		api.CodeNotDurable, http.StatusConflict)

	// The Go client surfaces the typed error.
	_, err := NewClient(base, "ghost").Query("proj(0, R)", "sql", false, 0)
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeSessionNotFound || aerr.Status != 404 {
		t.Fatalf("client error = %#v, want *api.Error{session_not_found, 404}", err)
	}
}

// TestWALEndpointParamErrors: a durable server validates the from
// parameter and 410s positions behind the snapshot.
func TestWALEndpointParamErrors(t *testing.T) {
	_, hs, c := newDurableServer(t, t.TempDir(), 1) // snapshot after every load
	if _, err := c.Load(ordersData, false); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Load("row Payments o2\n", true); err != nil {
		t.Fatalf("append: %v", err)
	}
	resp, err := http.Get(hs.URL + "/v1/sessions/test/wal?from=bogus")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: HTTP %d\n%s", resp.StatusCode, raw)
	}
	// Both loads are snapshot-compacted (threshold 1), so from=0 is behind
	// the snapshot: 410 wal_gap.
	resp, err = http.Get(hs.URL + "/v1/sessions/test/wal?from=0")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("compacted from: HTTP %d, want 410\n%s", resp.StatusCode, raw)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeWALGap {
		t.Fatalf("compacted from: body %s, want wal_gap envelope", raw)
	}
}
