package exp

import (
	"fmt"
	"math/big"
	"strings"
	"time"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/constraint"
	"incdb/internal/ctable"
	"incdb/internal/prob"
	"incdb/internal/relation"
	"incdb/internal/tpch"
	"incdb/internal/translate"
	"incdb/internal/value"
)

// timeIt evaluates f reps times and returns the minimum duration.
func timeIt(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// E3TPCHOverhead reproduces the shape of [37]'s TPC-H experiment: the Q⁺
// rewriting's runtime overhead over the original query, on the same
// engine, plus answer counts against Q?.
func E3TPCHOverhead() string {
	db := tpch.Dirty(tpch.Generate(tpch.BenchConfig()), 0.05, 0, 21)
	var rows [][]string
	for _, nq := range tpch.Queries() {
		plus, poss, err := translate.Fig2b(nq.Q)
		if err != nil {
			return "translate: " + err.Error()
		}
		const reps = 5
		var orig, rewr *relation.Relation
		origT := timeIt(reps, func() { orig = algebra.SQL(db, nq.Q) })
		plusT := timeIt(reps, func() { rewr = algebra.Naive(db, plus) })
		possRes := algebra.Naive(db, poss)
		overhead := float64(plusT-origT) / float64(origT) * 100
		rows = append(rows, []string{
			nq.Name,
			fmt.Sprintf("%d", orig.Len()),
			fmt.Sprintf("%d", rewr.Len()),
			fmt.Sprintf("%d", possRes.Len()),
			origT.Round(time.Microsecond).String(),
			plusT.Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", overhead),
		})
	}
	out := table([]string{"query", "|SQL|", "|Q+|", "|Q?|", "orig time", "Q+ time", "overhead"}, rows)
	return out + fmt.Sprintf("\nDatabase: %d tuples, %d nulls (5%% dirty rate).\n", tpch.TotalTuples(db), len(db.NullIDs())) +
		"Paper [37]: 1-4% overhead on most TPC-H queries, worse where the\n" +
		"rewriting introduces disjunctions/anti-joins; the difference-heavy\n" +
		"queries (Q1/Q2/Q6/Q8) pay for ⋉⇑, the rest stay near the original.\n"
}

// E4BagBounds verifies Theorem 4.8 on the bag engine and reports the
// multiplicity sandwich on the running example.
func E4BagBounds() string {
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.AddMult(value.Consts("a"), 2)
	r.Add(value.Consts("b"))
	db.Add(r)
	s := relation.New("S", "x")
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	plus, poss, _ := translate.Fig2b(q)
	plusBag := algebra.EvalBag(db, plus, algebra.ModeNaive)
	possBag := algebra.EvalBag(db, poss, algebra.ModeNaive)
	var rows [][]string
	for _, tup := range []value.Tuple{value.Consts("a"), value.Consts("b")} {
		box, err := certain.BoxMult(db, q, tup, certain.Options{})
		if err != nil {
			return err.Error()
		}
		dia, err := certain.DiamondMult(db, q, tup, certain.Options{})
		if err != nil {
			return err.Error()
		}
		rows = append(rows, []string{
			tup.String(),
			fmt.Sprintf("%d", plusBag.Mult(tup)),
			fmt.Sprintf("%d", box),
			fmt.Sprintf("%d", dia),
			fmt.Sprintf("%d", possBag.Mult(tup)),
		})
	}
	out := table([]string{"tuple", "#(Q+)", "□Q", "◇Q", "#(Q?)"}, rows)
	return "R = {a,a,b} (bag), S = {⊥}, Q = R − S:\n" + out +
		"\nTheorem 4.8: #(ā,Q+) ≤ □Q ≤ #(ā,Q?) — and ◇Q is intractable for\n" +
		"the Figure 2(a) extension, which is why (Q+,Q?) is the bag scheme.\n"
}

// E5CTableStrategies compares the four strategies of [36] on the
// Figure 1 tautology and on TPC-H-like queries: answer counts and times,
// with the Theorem 4.9 identities checked.
func E5CTableStrategies() string {
	var b strings.Builder

	// Part 1: tautology query where only aware is exact.
	db := relation.NewDatabase()
	p := relation.New("P", "cid", "oid")
	p.Add(value.Consts("c1", "o1"))
	p.Add(value.T(value.Const("c2"), db.FreshNull()))
	db.Add(p)
	q := algebra.Proj(algebra.Sel(algebra.R("P"), algebra.COr(
		algebra.CEqC(1, value.Const("o2")),
		algebra.CNeqC(1, value.Const("o2")),
	)), 0)
	cert, _ := certain.WithNulls(db, q, certain.Options{})
	var rows [][]string
	for _, s := range []ctable.Strategy{ctable.Eager, ctable.SemiEager, ctable.Lazy, ctable.Aware} {
		tr, err := ctable.EvalTrue(db, q, s)
		if err != nil {
			return err.Error()
		}
		ps, _ := ctable.EvalPossible(db, q, s)
		rows = append(rows, []string{s.String(), renderSet(tr), renderSet(ps)})
	}
	b.WriteString("σ(oid='o2' ∨ oid≠'o2')(Payments), cert⊥ = " + renderSet(cert) + ":\n")
	b.WriteString(table([]string{"strategy", "Eval_t", "Eval_p"}, rows))

	// Part 2: Theorem 4.9 identity Evalᵉ = (Q⁺, Q?) on TPC-H queries, with
	// timings.
	tdb := tpch.Dirty(tpch.Generate(tpch.SmallConfig()), 0.1, 0, 13)
	var rows2 [][]string
	for _, nq := range tpch.Queries() {
		plus, poss, err := translate.Fig2b(nq.Q)
		if err != nil {
			return err.Error()
		}
		wantPlus := algebra.Naive(tdb, plus)
		wantPoss := algebra.Naive(tdb, poss)
		var times []string
		identity := "ok"
		for _, s := range []ctable.Strategy{ctable.Eager, ctable.SemiEager, ctable.Lazy, ctable.Aware} {
			var tr *relation.Relation
			d := timeIt(3, func() { tr, _ = ctable.EvalTrue(tdb, nq.Q, s) })
			times = append(times, d.Round(time.Microsecond).String())
			if s == ctable.Eager {
				ps, _ := ctable.EvalPossible(tdb, nq.Q, s)
				if !tr.EqualSet(wantPlus) || !ps.EqualSet(wantPoss) {
					identity = "VIOLATED"
				}
			}
		}
		rows2 = append(rows2, append([]string{nq.Name, identity}, times...))
	}
	b.WriteString("\nTPC-H-like instance (10% nulls): Evalᵉ = (Q+,Q?) identity and per-strategy times:\n")
	b.WriteString(table([]string{"query", "Evalᵉ=(Q+,Q?)", "eager", "semi-eager", "lazy", "aware"}, rows2))
	b.WriteString("\nPaper: all four are polynomial with correctness guarantees\n" +
		"(Theorem 4.9); eager coincides with the Figure 2(b) scheme; the later\n" +
		"strategies trade time for better approximations (aware certifies the\n" +
		"tautology that the others miss).\n")
	return b.String()
}

// E6MuConvergence tabulates µᵏ for growing k against the asymptotic µ
// (Theorem 4.10's 0–1 law).
func E6MuConvergence() string {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(db.FreshNull()))
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	cases := []struct {
		name  string
		q     algebra.Expr
		tuple value.Tuple
	}{
		{"1 ∈ R−S", algebra.Minus(algebra.R("R"), algebra.R("S")), value.Consts("1")},
		{"1 ∈ R∩S", algebra.Inter(algebra.R("R"), algebra.R("S")), value.Consts("1")},
	}
	var rows [][]string
	for _, c := range cases {
		row := []string{c.name}
		for _, k := range []int{2, 4, 8, 16, 32} {
			muk, err := prob.MuK(db, c.q, nil, c.tuple, k)
			if err != nil {
				return err.Error()
			}
			f, _ := muk.Float64()
			row = append(row, fmt.Sprintf("%.4f", f))
		}
		mu, err := prob.Mu(db, c.q, nil, c.tuple)
		if err != nil {
			return err.Error()
		}
		row = append(row, mu.RatString())
		naive := algebra.Naive(db, c.q).Contains(c.tuple)
		row = append(row, fmt.Sprintf("%v", naive))
		rows = append(rows, row)
	}
	out := table([]string{"event", "µ2", "µ4", "µ8", "µ16", "µ32", "µ(limit)", "∈ naive?"}, rows)
	return "R = {1}, S = {⊥1, ⊥2}:\n" + out +
		"\nTheorem 4.10: µ = 1 exactly for naive-evaluation answers, 0 otherwise\n" +
		"— a 0–1 law; µᵏ visibly converges to the limit.\n"
}

// E7ConditionalMu reproduces Theorem 4.11: the S⊆T example with value 1/2,
// a family realizing arbitrary rationals, and the FD-chase identity.
func E7ConditionalMu() string {
	var b strings.Builder

	// Part 1: the 1/2 example.
	db := relation.NewDatabase()
	tt := relation.New("T", "a")
	tt.Add(value.Consts("1"))
	tt.Add(value.Consts("2"))
	db.Add(tt)
	s := relation.New("S", "a")
	s.Add(value.T(db.FreshNull()))
	db.Add(s)
	sigma := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
	q := algebra.Minus(algebra.R("T"), algebra.R("S"))
	mu, err := prob.Mu(db, q, sigma, value.Consts("1"))
	if err != nil {
		return err.Error()
	}
	mu0, _ := prob.Mu(db, q, nil, value.Consts("1"))
	fmt.Fprintf(&b, "T = {1,2}, S = {⊥}, Σ: S ⊆ T, Q = T−S, ā = (1):\n")
	fmt.Fprintf(&b, "  µ(Q, D, ā)      = %s   (unconditional: ⊥ almost surely misses 1)\n", mu0.RatString())
	fmt.Fprintf(&b, "  µ(Q|Σ, D, ā)    = %s   (paper: exactly 1/2)\n\n", mu.RatString())

	// Part 2: realizing p/r with T = {1..r}, P = {1..p}, Q = ∃x S(x)∧P(x).
	var rows [][]string
	for _, pr := range [][2]int{{1, 3}, {2, 3}, {3, 5}, {2, 7}, {5, 8}} {
		p, r := pr[0], pr[1]
		db2 := relation.NewDatabase()
		t2 := relation.New("T", "a")
		p2 := relation.New("P", "a")
		for i := 1; i <= r; i++ {
			t2.Add(value.T(value.Int(i)))
			if i <= p {
				p2.Add(value.T(value.Int(i)))
			}
		}
		db2.Add(t2)
		db2.Add(p2)
		s2 := relation.New("S", "a")
		s2.Add(value.T(db2.FreshNull()))
		db2.Add(s2)
		sig := constraint.Set{constraint.IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}}
		bq := algebra.Proj(algebra.Inter(algebra.R("S"), algebra.R("P")))
		got, err := prob.Mu(db2, bq, sig, value.Tuple{})
		if err != nil {
			return err.Error()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d/%d", p, r),
			got.RatString(),
			fmt.Sprintf("%v", got.Cmp(big.NewRat(int64(p), int64(r))) == 0),
		})
	}
	b.WriteString("Realizing arbitrary rationals (Theorem 4.11, second part):\n")
	b.WriteString(table([]string{"target p/r", "µ(Q|Σ)", "match"}, rows))

	// Part 3: FDs reduce to the chase.
	db3 := relation.NewDatabase()
	r3 := relation.New("R", "k", "v")
	r3.Add(value.Consts("1", "a"))
	r3.Add(value.T(value.Const("1"), db3.FreshNull()))
	db3.Add(r3)
	fd := constraint.Set{constraint.FD{Rel: "R", LHS: []int{0}, RHS: []int{1}}}
	fds, _ := fd.FDs()
	chased, _ := constraint.Chase(db3, fds)
	q3 := algebra.Proj(algebra.R("R"), 1)
	muC, _ := prob.Mu(db3, q3, fd, value.Consts("a"))
	muChase, _ := prob.Mu(chased, q3, nil, value.Consts("a"))
	fmt.Fprintf(&b, "\nFDs via the chase: R = {(1,a),(1,⊥)}, Σ: k→v.\n")
	fmt.Fprintf(&b, "  µ(a ∈ πv R | Σ, D) = %s;  µ(a ∈ πv R, D_Σ) = %s  (must agree; both 1 since the chase binds ⊥ = a)\n",
		muC.RatString(), muChase.RatString())
	return b.String()
}
