package exp

import (
	"strings"
	"testing"
)

// The experiments are exercised in full by cmd/experiments; here we check
// that each one runs, returns non-empty output, and mentions its key
// artifact — a smoke net against harness regressions. The slowest sweeps
// (E3's timing reps, E12's oracle sweep) are gated behind -short.
func TestExperimentsRun(t *testing.T) {
	keyContent := map[string]string{
		"E1":  "false positive",
		"E2":  "Dom",
		"E3":  "overhead",
		"E4":  "□Q",
		"E5":  "aware",
		"E6":  "µ2",
		"E7":  "1/2",
		"E8":  "almost certainly false",
		"E9":  "{f, u, t}",
		"E10": "verified",
		"E11": "Counterexample",
		"E12": "precision",
	}
	slow := map[string]bool{"E3": true, "E12": true}
	for _, e := range All() {
		if testing.Short() && slow[e.ID] {
			continue
		}
		out := e.Run()
		if out == "" {
			t.Errorf("%s: empty output", e.ID)
			continue
		}
		if key := keyContent[e.ID]; !strings.Contains(out, key) {
			t.Errorf("%s: output missing %q", e.ID, key)
		}
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	if len(All()) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s: incomplete registration", e.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"3", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "--") {
		t.Fatalf("table rendering broken: %q", out)
	}
}
