// Package exp implements the experiment harness: one function per
// figure/table of DESIGN.md's per-experiment index (E1–E12), each
// regenerating the corresponding artifact of the paper — Figure 1's
// anomalies, the Figure 2 schemes' behaviour, Theorem 4.9's strategies,
// the 0–1 law, Figure 3, Theorem 5.3's sublogic search, the Boolean-FO
// translation, and the cited TPC-H overhead and precision/recall shapes.
// Each experiment returns a formatted text table; cmd/experiments prints
// them and EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/relation"
	"incdb/internal/translate"
	"incdb/internal/value"
)

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() string
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 1: SQL's false negatives and false positives", E1Figure1},
		{"E2", "Figure 2(a): correctness and the Dom-blow-up of Qf", E2Fig2aBlowup},
		{"E3", "Figure 2(b) on TPC-H-like data: rewriting overhead", E3TPCHOverhead},
		{"E4", "Bag semantics: multiplicity bounds (Theorem 4.8)", E4BagBounds},
		{"E5", "c-table strategies (Theorem 4.9)", E5CTableStrategies},
		{"E6", "0-1 law: µk convergence (Theorem 4.10)", E6MuConvergence},
		{"E7", "Conditional probabilities (Theorem 4.11)", E7ConditionalMu},
		{"E8", "Figure 3 and the unif semantics (Cor 5.2)", E8UnifSemantics},
		{"E9", "L6v and the maximal sublogic (Theorem 5.3)", E9SublogicSearch},
		{"E10", "Boolean FO captures FO(L3v) (Theorems 5.4/5.5)", E10FOTranslation},
		{"E11", "Naive evaluation: UCQ and Pos∀G (Theorems 4.1-4.4)", E11NaiveEvaluation},
		{"E12", "Precision/recall under growing incompleteness [27]", E12PrecisionRecall},
	}
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(w, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return b.String()
}

// renderSet prints a relation's tuples compactly.
func renderSet(r *relation.Relation) string {
	if r == nil {
		return "-"
	}
	ts := r.Tuples()
	if len(ts) == 0 {
		return "∅"
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		if len(t) == 1 {
			parts[i] = t[0].String()
		} else {
			parts[i] = t.String()
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// figure1DB builds the Orders/Payments/Customers database of Figure 1;
// withNull replaces the second payment's oid by a null.
func figure1DB(withNull bool) *relation.Database {
	db := relation.NewDatabase()
	orders := relation.New("Orders", "oid", "title", "price")
	orders.Add(value.Consts("o1", "Big Data", "30"))
	orders.Add(value.Consts("o2", "SQL", "35"))
	orders.Add(value.Consts("o3", "Logic", "50"))
	db.Add(orders)
	payments := relation.New("Payments", "cid", "oid")
	payments.Add(value.Consts("c1", "o1"))
	if withNull {
		payments.Add(value.T(value.Const("c2"), db.FreshNull()))
	} else {
		payments.Add(value.Consts("c2", "o2"))
	}
	db.Add(payments)
	customers := relation.New("Customers", "cid", "name")
	customers.Add(value.Consts("c1", "John"))
	customers.Add(value.Consts("c2", "Mary"))
	db.Add(customers)
	return db
}

// figure1Queries returns the three queries of the introduction.
func figure1Queries() []struct {
	Name string
	Q    algebra.Expr
	SQL  string
} {
	// Q1: unpaid orders — SELECT oid FROM Orders WHERE oid NOT IN
	//     (SELECT oid FROM Payments)
	q1 := algebra.Proj(algebra.Sel(algebra.R("Orders"),
		algebra.CNot(algebra.CIn(algebra.Proj(algebra.R("Payments"), 1), 0))), 0)
	// Q2: customers without a paid order — NOT EXISTS join, as algebra:
	//     π_cid(Customers) − π_cid(σ_{P.oid=O.oid}(Payments × Orders))
	paid := algebra.Proj(
		algebra.Sel(algebra.Times(algebra.R("Payments"), algebra.R("Orders")),
			algebra.CEq(1, 2)), 0)
	q2 := algebra.Minus(algebra.Proj(algebra.R("Customers"), 0), paid)
	// Q3: the tautology — SELECT cid FROM Payments WHERE oid='o2' OR oid<>'o2'
	q3 := algebra.Proj(algebra.Sel(algebra.R("Payments"), algebra.COr(
		algebra.CEqC(1, value.Const("o2")),
		algebra.CNeqC(1, value.Const("o2")),
	)), 0)
	return []struct {
		Name string
		Q    algebra.Expr
		SQL  string
	}{
		{"unpaid-orders", q1, "oid NOT IN (SELECT oid FROM Payments)"},
		{"no-paid-order", q2, "NOT EXISTS (... P.cid=C.cid AND P.oid=O.oid)"},
		{"tautology", q3, "oid='o2' OR oid<>'o2'"},
	}
}

// E1Figure1 reproduces the introduction's anomalies: with one NULL, SQL
// misses certain answers (false negatives) and invents non-certain ones
// (false positives).
func E1Figure1() string {
	var b strings.Builder
	for _, withNull := range []bool{false, true} {
		db := figure1DB(withNull)
		label := "complete database"
		if withNull {
			label = "Payments(c2, NULL)"
		}
		var rows [][]string
		for _, q := range figure1Queries() {
			sqlRes := algebra.SQL(db, q.Q)
			cert, err := certain.WithNulls(db, q.Q, certain.Options{})
			certStr := "error: " + fmt.Sprint(err)
			verdict := "-"
			if err == nil {
				certStr = renderSet(cert)
				fp, fn := 0, 0
				sqlRes.Each(func(t value.Tuple, _ int) {
					if !cert.Contains(t) {
						fp++
					}
				})
				cert.Each(func(t value.Tuple, _ int) {
					if !sqlRes.Contains(t) {
						fn++
					}
				})
				switch {
				case fp > 0 && fn > 0:
					verdict = fmt.Sprintf("%d false pos, %d false neg", fp, fn)
				case fp > 0:
					verdict = fmt.Sprintf("%d false positive(s)", fp)
				case fn > 0:
					verdict = fmt.Sprintf("%d false negative(s)", fn)
				default:
					verdict = "exact"
				}
			}
			rows = append(rows, []string{q.Name, renderSet(sqlRes), certStr, verdict})
		}
		fmt.Fprintf(&b, "Database: %s\n", label)
		b.WriteString(table([]string{"query", "SQL answer", "cert⊥", "SQL vs certain"}, rows))
		b.WriteString("\n")
	}
	b.WriteString("Paper: with a single NULL the unpaid-orders query loses o3 (and is\n" +
		"accidentally exact, cert = ∅), the NOT EXISTS query invents c2 (false\n" +
		"positive), and the tautology query misses c2 (false negative).\n")
	return b.String()
}

// E2Fig2aBlowup measures the Figure 2(a) Qf translation: correct, but its
// active-domain products blow up — the reason [37] reports it running out
// of memory below 10³ tuples.
func E2Fig2aBlowup() string {
	q := algebra.Minus(algebra.Proj(algebra.R("R"), 0), algebra.R("S"))
	var rows [][]string
	for _, n := range []int{4, 8, 16, 32, 64} {
		db := relation.NewDatabase()
		r := relation.New("R", "a", "b")
		for i := 0; i < n; i++ {
			r.Add(value.Consts(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%3)))
		}
		db.Add(r)
		s := relation.New("S", "x")
		s.Add(value.T(db.FreshNull()))
		for i := 0; i < n/4; i++ {
			s.Add(value.Consts(fmt.Sprintf("a%d", i)))
		}
		db.Add(s)

		qt, qf, err := translate.Fig2a(q, db)
		if err != nil {
			return "translate: " + err.Error()
		}
		plus, _, err := translate.Fig2b(q)
		if err != nil {
			return "translate: " + err.Error()
		}

		adom := len(db.ActiveDomain())
		var qtRes, qfRes, plusRes *relation.Relation
		qtTime := timeIt(3, func() { qtRes = algebra.Naive(db, qt) })
		qfTime := timeIt(3, func() { qfRes = algebra.Naive(db, qf) })
		plusTime := timeIt(3, func() { plusRes = algebra.Naive(db, plus) })

		rows = append(rows, []string{
			fmt.Sprintf("%d", n+n/4+1),
			fmt.Sprintf("%d", adom),
			fmt.Sprintf("%d", qtRes.Len()),
			qtTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", qfRes.Len()),
			qfTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", plusRes.Len()),
			plusTime.Round(time.Microsecond).String(),
		})
	}
	out := table([]string{"tuples", "|adom|", "|Qt|", "Qt time", "|Qf|", "Qf time", "|Q+|", "Q+ time"}, rows)
	return out + "\nPaper: Qf's Dom^k products are 'prohibitively expensive... infeasible\n" +
		"for very small databases' [51,37]; Q+ avoids them entirely. The Qf\n" +
		"column time grows super-linearly with the active domain while Q+\n" +
		"stays near Qt.\n"
}
