package exp

import (
	"fmt"
	"strings"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/fo"
	"incdb/internal/gen"
	"incdb/internal/logic"
	"incdb/internal/prob"
	"incdb/internal/relation"
	"incdb/internal/value"

	"math/rand"
)

// E8UnifSemantics prints Figure 3, verifies the unif semantics'
// correctness guarantees on the Section 5.1 examples, and reproduces the
// R−(S−T) SQL anomaly: an answer that is almost certainly false.
func E8UnifSemantics() string {
	var b strings.Builder
	k := logic.Kleene()
	b.WriteString("Figure 3 — Kleene's three-valued logic:\n")
	b.WriteString(k.TruthTable("and"))
	b.WriteString("\n")
	b.WriteString(k.TruthTable("or"))
	b.WriteString("\n")
	b.WriteString(k.TruthTable("not"))
	b.WriteString("\n")

	// The R(1,⊥) example: bool semantics has no correctness guarantees,
	// unif does.
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(value.Const("1"), db.FreshNull()))
	db.Add(r)
	atom := fo.Atom{Rel: "R", Args: []fo.Term{fo.C("1"), fo.C("1")}}
	fmt.Fprintf(&b, "D = {R(1,⊥)}; φ = R(1,1):\n")
	fmt.Fprintf(&b, "  ⟦φ⟧bool = %v   (claims certainly false — wrong: ⊥ may be 1)\n",
		fo.Eval(db, atom, fo.Bool(), fo.Env{}))
	fmt.Fprintf(&b, "  ⟦φ⟧unif = %v   (correct: unknown)\n\n",
		fo.Eval(db, atom, fo.UnifSem(), fo.Env{}))

	// R − (S − T): SQL returns an almost certainly false answer.
	db2 := relation.NewDatabase()
	rr := relation.New("R", "a")
	rr.Add(value.Consts("1"))
	db2.Add(rr)
	ss := relation.New("S", "a")
	ss.Add(value.Consts("1"))
	db2.Add(ss)
	tt := relation.New("T", "a")
	tt.Add(value.T(db2.FreshNull()))
	db2.Add(tt)
	q := algebra.Minus(algebra.R("R"), algebra.Minus(algebra.R("S"), algebra.R("T")))
	// SQL's actual behaviour uses NOT IN with its three-valued semantics:
	// SELECT a FROM R WHERE a NOT IN (SELECT a FROM S WHERE a NOT IN T).
	inner := algebra.Sel(algebra.R("S"), algebra.CNot(algebra.CIn(algebra.R("T"), 0)))
	qSQL := algebra.Sel(algebra.R("R"), algebra.CNot(algebra.CIn(inner, 0)))
	sqlRes := algebra.SQL(db2, qSQL)
	mu, err := prob.Mu(db2, q, nil, value.Consts("1"))
	if err != nil {
		return err.Error()
	}
	cert, _ := certain.WithNulls(db2, q, certain.Options{})
	fmt.Fprintf(&b, "R = S = {1}, T = {⊥}; Q = R − (S − T) as SQL's nested NOT IN:\n")
	fmt.Fprintf(&b, "  SQL answer          = %s   (paper: SQL returns {1})\n", renderSet(sqlRes))
	fmt.Fprintf(&b, "  cert⊥               = %s\n", renderSet(cert))
	fmt.Fprintf(&b, "  µ(Q, D, 1)          = %s   (SQL's answer is almost certainly false!)\n", mu.RatString())
	b.WriteString("\nPaper (§5.1): three-valued evaluation with the unif semantics has\n" +
		"correctness guarantees (Cor 5.2); SQL's evaluation does not, because\n" +
		"its ↑ collapse discards the third truth value between subqueries.\n")
	return b.String()
}

// E9SublogicSearch derives L6v from possible-world interpretations, shows
// it is neither idempotent nor distributive, and searches all
// connective-closed sublogics for the maximal idempotent+distributive one
// (Theorem 5.3: it is Kleene's L3v).
func E9SublogicSearch() string {
	var b strings.Builder
	l := logic.SixValued()
	b.WriteString("L6v (derived from epistemic possible-world semantics):\n")
	b.WriteString(l.TruthTable("and"))
	b.WriteString("\n")
	b.WriteString(l.TruthTable("or"))
	b.WriteString("\n")
	b.WriteString(l.TruthTable("not"))
	b.WriteString("\n")
	all := make(logic.Subset, l.Size())
	for i := range all {
		all[i] = i
	}
	fmt.Fprintf(&b, "idempotent: %v   distributive: %v   (paper: L6v is neither)\n",
		l.IdempotentOn(all), l.DistributiveOn(all))
	sIdx := l.ValueIndex("s")
	fmt.Fprintf(&b, "witness: s∧s = %s (≠ s), s∨s = %s\n\n",
		l.Names[l.And(sIdx, sIdx)], l.Names[l.Or(sIdx, sIdx)])
	maxes := l.MaximalSublogics()
	b.WriteString("maximal connective-closed sublogics that are idempotent AND distributive:\n")
	for _, m := range maxes {
		fmt.Fprintf(&b, "  {%s}\n", strings.Join(m.Values, ", "))
	}
	b.WriteString("\nTheorem 5.3: the unique maximum is {f, u, t} — Kleene's L3v. SQL's\n" +
		"choice of three-valued logic is the right one at the propositional\n" +
		"level, given that query optimizers need distributivity+idempotency.\n")
	return b.String()
}

// E10FOTranslation exercises Theorems 5.4/5.5: sizes and verified
// equivalence of the Boolean-FO compilation for sample formulas in each
// semantics, including an ↑-formula (FO↑SQL).
func E10FOTranslation() string {
	// Sample formulas over the gen schema.
	x := fo.X("x")
	y := fo.X("y")
	samples := []struct {
		name string
		f    fo.Formula
		sem  fo.Semantics
	}{
		{"R(x,y) join", fo.Exists{V: "y", F: fo.And{
			L: fo.Atom{Rel: "R", Args: []fo.Term{x, y}},
			R: fo.Atom{Rel: "S", Args: []fo.Term{y}},
		}}, fo.SQLSem()},
		{"negated atom (unif)", fo.Not{F: fo.Atom{Rel: "R", Args: []fo.Term{x, x}}}, fo.UnifSem()},
		{"∀ with equality", fo.Forall{V: "y", F: fo.Or{
			L: fo.Not{F: fo.Atom{Rel: "S", Args: []fo.Term{y}}},
			R: fo.Eq{L: x, R: y},
		}}, fo.SQLSem()},
		{"assertion ↑ (FO↑SQL)", fo.And{
			L: fo.Atom{Rel: "S", Args: []fo.Term{x}},
			R: fo.Assert{F: fo.Not{F: fo.Exists{V: "y", F: fo.And{
				L: fo.Atom{Rel: "T", Args: []fo.Term{y, x}},
				R: fo.Eq{L: y, R: x},
			}}}},
		}, fo.SQLSem()},
	}
	r := rand.New(rand.NewSource(510))
	cfg := gen.DefaultConfig()
	var rows [][]string
	for _, s := range samples {
		pos, neg := fo.Translate(s.f, s.sem)
		// Verify on 5 random databases.
		verified := true
		for i := 0; i < 5; i++ {
			db := gen.DB(r, cfg)
			for _, v := range db.ActiveDomain() {
				env := fo.Env{"x": v}
				tv := fo.Eval(db, s.f, s.sem, env)
				if (tv == logic.T) != (fo.Eval(db, pos, fo.Bool(), env) == logic.T) ||
					(tv == logic.F) != (fo.Eval(db, neg, fo.Bool(), env) == logic.T) {
					verified = false
				}
			}
		}
		expanded := fo.ExpandUnif(pos)
		rows = append(rows, []string{
			s.name, s.sem.Name,
			fmt.Sprintf("%d", fo.Size(s.f)),
			fmt.Sprintf("%d", fo.Size(pos)),
			fmt.Sprintf("%d", fo.Size(neg)),
			fmt.Sprintf("%d", fo.Size(expanded)),
			fmt.Sprintf("%v", verified),
		})
	}
	out := table([]string{"formula", "semantics", "|φ|", "|φt|", "|φf|", "|expand(φt)|", "verified"}, rows)
	return out + "\nTheorems 5.4/5.5: Boolean FO captures FO(L3v) under every mixed\n" +
		"semantics, and even FO↑SQL — three-valued logic adds no expressive\n" +
		"power. The ⇑ expansion shows the translation stays inside pure FO\n" +
		"(at a size cost driven by Bell numbers of the arity).\n"
}

// E11NaiveEvaluation measures where naive evaluation is exact: random UCQs
// (owa/cwa) and Pos∀G queries (cwa) against the oracle, plus the full-RA
// counterexample.
func E11NaiveEvaluation() string {
	r := rand.New(rand.NewSource(411))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 3
	run := func(frag gen.Fragment, trials int) (exact, total int) {
		qcfg := gen.DefaultQueryConfig()
		qcfg.Fragment = frag
		qcfg.MaxDepth = 2
		for i := 0; i < trials; i++ {
			db := gen.DB(r, cfg)
			q := gen.Query(r, qcfg, 1)
			naive := algebra.Naive(db, q)
			cert, err := certain.WithNulls(db, q, certain.Options{})
			if err != nil {
				continue
			}
			total++
			if naive.EqualSet(cert) {
				exact++
			}
		}
		return exact, total
	}
	ucqE, ucqT := run(gen.FragmentUCQ, 120)
	posE, posT := run(gen.FragmentPosForallG, 120)
	fullE, fullT := run(gen.FragmentFull, 120)
	rows := [][]string{
		{"UCQ (σπ×∪, = only)", fmt.Sprintf("%d/%d", ucqE, ucqT), "exact (Thm 4.4)"},
		{"Pos∀G (adds ÷ by schema relation)", fmt.Sprintf("%d/%d", posE, posT), "exact under cwa (Thm 4.4)"},
		{"full RA (adds −, ≠)", fmt.Sprintf("%d/%d", fullE, fullT), "NOT exact in general"},
	}
	out := table([]string{"fragment", "naive = cert⊥", "paper"}, rows)

	// The canonical counterexample.
	db := relation.NewDatabase()
	rr := relation.New("R", "a")
	rr.Add(value.Consts("1"))
	db.Add(rr)
	ss := relation.New("S", "a")
	ss.Add(value.T(db.FreshNull()))
	db.Add(ss)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	naive := algebra.Naive(db, q)
	cert, _ := certain.WithNulls(db, q, certain.Options{})
	return out + fmt.Sprintf("\nCounterexample {1} − {⊥}: naive = %s but cert⊥ = %s.\n",
		renderSet(naive), renderSet(cert)) +
		"Expect the UCQ and Pos∀G rows to be 100% and the full-RA row below it.\n"
}

// E12PrecisionRecall reproduces the shape of [27]: precision/recall of
// SQL evaluation, naive evaluation and Q⁺ against exact cert⊥, as the
// fraction of nulls grows.
func E12PrecisionRecall() string {
	var rows [][]string
	for _, rate := range []float64{0.0, 0.05, 0.1, 0.2, 0.3} {
		db := tpchSmallDirty(rate)
		var stats = map[string][3]int{} // name -> correct, returned, certTotal
		for _, nq := range tpchQueriesForOracle() {
			cert, err := certain.WithNulls(db, nq.Q, certain.Options{MaxWorlds: 1 << 22})
			if err != nil {
				continue
			}
			add := func(name string, res *relation.Relation) {
				s := stats[name]
				res.Each(func(t value.Tuple, _ int) {
					if cert.Contains(t) {
						s[0]++
					}
				})
				s[1] += res.Len()
				s[2] += cert.Len()
				stats[name] = s
			}
			add("sql", algebra.SQL(db, nq.Q))
			add("naive", algebra.Naive(db, nq.Q))
			if plus, _, err := translateFig2b(nq.Q); err == nil {
				add("q+", algebra.Naive(db, plus))
			}
		}
		for _, name := range []string{"sql", "naive", "q+"} {
			s := stats[name]
			prec, rec := 1.0, 1.0
			if s[1] > 0 {
				prec = float64(s[0]) / float64(s[1])
			}
			if s[2] > 0 {
				rec = float64(s[0]) / float64(s[2])
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", rate*100), name,
				fmt.Sprintf("%.3f", prec), fmt.Sprintf("%.3f", rec),
			})
		}
	}
	out := table([]string{"null rate", "method", "precision", "recall"}, rows)
	return out + "\nPaper [27]: Q+ keeps 100% precision by construction while its recall\n" +
		"degrades as incompleteness grows; SQL's precision drops below 1 (false\n" +
		"positives). Naive evaluation over-answers similarly.\n"
}

func tpchSmallDirty(rate float64) *relation.Database {
	return tpchDirty(rate)
}
