package exp

import (
	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/tpch"
	"incdb/internal/translate"
)

// tpchDirty builds the oracle-feasible instance for E12: the tiny TPC-H
// configuration, dirtied in two passes over the columns the benchmark
// queries are sensitive to (o_custkey/o_totalprice, then c_nationkey/
// c_mktsegment). Each pass is capped at 3 nulls; the per-query valuation
// space only quantifies over the nulls of the relations the query reads,
// so the oracle stays enumerable.
func tpchDirty(rate float64) *relation.Database {
	db := tpch.Generate(tpch.TinyConfig())
	db = tpch.DirtyColumns(db, map[string][]int{"orders": {1, 2}}, rate, 2, 27)
	db = tpch.DirtyColumns(db, map[string][]int{"orders": {3}}, rate, 2, 29)
	db = tpch.DirtyColumns(db, map[string][]int{"customer": {2, 4}}, rate, 2, 28)
	return db
}

// tpchQueriesForOracle returns the benchmark queries that stress the
// incomplete columns at tiny scale (the difference and selection shapes).
func tpchQueriesForOracle() []tpch.NamedQuery {
	all := tpch.Queries()
	// Keep the difference, selection and union queries; the wide join
	// (Q4) explodes the oracle's candidate tuple space at no insight gain.
	var out []tpch.NamedQuery
	for _, nq := range all {
		if nq.Name == "Q4-customer-order-join" {
			continue
		}
		out = append(out, nq)
	}
	return out
}

func translateFig2b(q algebra.Expr) (plus, poss algebra.Expr, err error) {
	return translate.Fig2b(q)
}
