package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Failpoints are an errfs-style fault-injection layer for tests: named I/O
// sites in the durability path (WAL append, fsync, snapshot write/rename,
// compaction truncate) consult a process-wide rule table before touching
// the disk. A rule can inject an error, tear a write after a chosen number
// of bytes, or add latency — enough to script "the fsync fails during
// snapshot compaction" or "the primary dies mid-append with a torn frame"
// without a custom filesystem.
//
// The table is global (the sites are free functions on *os.File), so tests
// that set failpoints must not run in parallel with each other; each test
// defers ClearFailpoints. Production never sets rules, and the fast path
// is a single atomic load.

// Failpoint site names.
const (
	FpWALWrite       = "wal.write"       // the group-commit batch write
	FpWALSync        = "wal.sync"        // the group-commit fsync
	FpWALTruncate    = "wal.truncate"    // post-snapshot WAL compaction
	FpSnapshotWrite  = "snapshot.write"  // snapshot tmp-file body write
	FpSnapshotSync   = "snapshot.sync"   // snapshot tmp-file fsync
	FpSnapshotRename = "snapshot.rename" // atomic rename into place
)

// ErrInjected is the default error a firing failpoint returns when its
// rule does not supply one.
var ErrInjected = errors.New("store: injected fault")

// FailRule describes when and how one failpoint site misbehaves.
type FailRule struct {
	// SkipFirst lets this many hits pass unharmed before the rule fires.
	SkipFirst int
	// Count fires the rule this many times, then disarms; 0 means forever.
	Count int
	// Err is the injected error; nil uses ErrInjected.
	Err error
	// TornBytes, when > 0 on a write site, writes that prefix of the buffer
	// to the real file before failing — a torn write. Zero (the default)
	// fails without writing anything.
	TornBytes int
	// Delay is added latency before the operation proceeds (applied whether
	// or not the rule ultimately fires an error on this hit).
	Delay time.Duration
}

type failState struct {
	rule  FailRule
	hits  int
	fired int
}

var failpoints struct {
	mu    sync.Mutex
	armed bool // fast-path hint: any rule set at all
	rules map[string]*failState
}

// SetFailpoint arms (or replaces) the rule for a site.
func SetFailpoint(op string, rule FailRule) {
	failpoints.mu.Lock()
	defer failpoints.mu.Unlock()
	if failpoints.rules == nil {
		failpoints.rules = make(map[string]*failState)
	}
	failpoints.rules[op] = &failState{rule: rule}
	failpoints.armed = true
}

// ClearFailpoint disarms one site.
func ClearFailpoint(op string) {
	failpoints.mu.Lock()
	defer failpoints.mu.Unlock()
	delete(failpoints.rules, op)
	failpoints.armed = len(failpoints.rules) > 0
}

// ClearFailpoints disarms every site; tests defer this.
func ClearFailpoints() {
	failpoints.mu.Lock()
	defer failpoints.mu.Unlock()
	failpoints.rules = nil
	failpoints.armed = false
}

// FailpointHits reports how many times a site has fired — tests assert the
// fault actually happened rather than silently not reaching the site.
func FailpointHits(op string) int {
	failpoints.mu.Lock()
	defer failpoints.mu.Unlock()
	if st := failpoints.rules[op]; st != nil {
		return st.fired
	}
	return 0
}

// failpointCheck decides whether the site fires on this hit. It returns
// the (possibly defaulted) injected error and the torn-write prefix length
// (-1 when the write should not happen at all, or when not firing).
func failpointCheck(op string) (fire bool, err error, torn int) {
	failpoints.mu.Lock()
	if !failpoints.armed {
		failpoints.mu.Unlock()
		return false, nil, -1
	}
	st := failpoints.rules[op]
	if st == nil {
		failpoints.mu.Unlock()
		return false, nil, -1
	}
	st.hits++
	r := st.rule
	if st.hits <= r.SkipFirst || (r.Count > 0 && st.fired >= r.Count) {
		failpoints.mu.Unlock()
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		return false, nil, -1
	}
	st.fired++
	failpoints.mu.Unlock()
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	err = r.Err
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, op)
	}
	return true, err, r.TornBytes
}

// fpErr returns the injected error if the op failpoint fires, else nil —
// for sites that are not a single syscall (e.g. the snapshot body write).
func fpErr(op string) error {
	_, err, _ := failpointCheck(op)
	return err
}

// fpWrite is f.Write(buf) behind the op failpoint: a firing rule may first
// write a torn prefix of buf to the real file, then returns its error.
func fpWrite(op string, f *os.File, buf []byte) (int, error) {
	if fire, err, torn := failpointCheck(op); fire {
		n := 0
		if torn > 0 {
			if torn > len(buf) {
				torn = len(buf)
			}
			n, _ = f.Write(buf[:torn])
		}
		return n, err
	}
	return f.Write(buf)
}

// fpSync is f.Sync() behind the op failpoint.
func fpSync(op string, f *os.File) error {
	if fire, err, _ := failpointCheck(op); fire {
		return err
	}
	return f.Sync()
}

// fpRename is os.Rename behind the op failpoint.
func fpRename(op, oldpath, newpath string) error {
	if fire, err, _ := failpointCheck(op); fire {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// fpTruncate is f.Truncate behind the op failpoint.
func fpTruncate(op string, f *os.File, size int64) error {
	if fire, err, _ := failpointCheck(op); fire {
		return err
	}
	return f.Truncate(size)
}
