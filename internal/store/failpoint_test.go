package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incdb/internal/relation"
)

// recoverOne recovers the single session of dir and returns it.
func recoverOne(t *testing.T, dir string) *Recovered {
	t.Helper()
	s := openStore(t, dir)
	recs, err := s.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	return recs[0]
}

// TestSnapshotFailureKeepsWALTail: an injected fsync or rename failure
// during snapshot compaction must leave the WAL untouched — the snapshot
// attempt fails, but no acknowledged record is lost, the log keeps
// accepting appends, and a retry succeeds once the fault clears.
func TestSnapshotFailureKeepsWALTail(t *testing.T) {
	for _, site := range []string{FpSnapshotSync, FpSnapshotRename, FpSnapshotWrite} {
		t.Run(site, func(t *testing.T) {
			defer ClearFailpoints()
			dir := t.TempDir()
			s := openStore(t, dir)
			l, err := s.Session("main")
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			db := relation.NewDatabase()
			for _, ld := range loads[:3] {
				appendLoad(t, l, db, ld.op, ld.data)
			}
			walBefore := l.WalBytes()

			SetFailpoint(site, FailRule{Count: 1})
			snap, err := TakeSnapshot("main", db, l.Seq(), nil)
			if err != nil {
				t.Fatalf("take snapshot: %v", err)
			}
			if err := l.InstallSnapshot(snap); !errors.Is(err, ErrInjected) {
				t.Fatalf("install with %s armed: err = %v, want injected", site, err)
			}
			if hits := FailpointHits(site); hits != 1 {
				t.Fatalf("failpoint %s fired %d times, want 1", site, hits)
			}
			if l.WalBytes() != walBefore {
				t.Fatalf("failed snapshot changed the wal: %d bytes, had %d", l.WalBytes(), walBefore)
			}
			if l.SnapshotSeq() != 0 {
				t.Fatalf("failed snapshot advanced snapSeq to %d", l.SnapshotSeq())
			}

			// The log is not fail-stopped: appends still commit...
			for _, ld := range loads[3:] {
				appendLoad(t, l, db, ld.op, ld.data)
			}
			// ...and with the fault cleared the retried snapshot compacts.
			ClearFailpoints()
			snap, err = TakeSnapshot("main", db, l.Seq(), nil)
			if err != nil {
				t.Fatalf("retake snapshot: %v", err)
			}
			if err := l.InstallSnapshot(snap); err != nil {
				t.Fatalf("retried install: %v", err)
			}
			if l.WalBytes() != int64(len(walMagic)) {
				t.Fatalf("retried snapshot did not compact: %d bytes", l.WalBytes())
			}
			s.Close()
			assertRecovered(t, dir, replayTo(t, len(loads)))
		})
	}
}

// TestWALFailureFailStops: an injected group-commit write or fsync error
// fail-stops the log — later appends are refused, the record was never
// acknowledged. A failed write leaves nothing on disk, so recovery drops
// it; a failed fsync after a successful write leaves the record intact on
// disk, and replay keeping it is harmless (an unacknowledged record may
// or may not survive a crash — only acknowledged ones must).
func TestWALFailureFailStops(t *testing.T) {
	for _, tc := range []struct {
		site    string
		survive int // loads recovery must see
	}{
		{FpWALWrite, 1},
		{FpWALSync, 2},
	} {
		t.Run(tc.site, func(t *testing.T) {
			defer ClearFailpoints()
			dir := t.TempDir()
			s := openStore(t, dir)
			l, err := s.Session("main")
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			db := relation.NewDatabase()
			appendLoad(t, l, db, loads[0].op, loads[0].data)

			SetFailpoint(tc.site, FailRule{Count: 1})
			// Apply-then-append the way the server commits, so the logged
			// version vector is consistent if the frame reaches the disk.
			db2 := replayTo(t, 2)
			if _, err := l.Append(OpAppend, loads[1].data, db2.Versions()); !errors.Is(err, ErrInjected) {
				t.Fatalf("append with %s armed: err = %v, want injected", tc.site, err)
			}
			if !l.Stats().Failed {
				t.Fatalf("log did not fail-stop after an injected %s error", tc.site)
			}
			if _, err := l.Append(OpAppend, loads[1].data, db2.Versions()); err == nil ||
				!strings.Contains(err.Error(), "refusing further appends") {
				t.Fatalf("fail-stopped log accepted an append: %v", err)
			}
			s.Close()
			assertRecovered(t, dir, replayTo(t, tc.survive))
		})
	}
}

// TestTornWALWriteRecovers: a write torn mid-frame by an injected fault
// (the primary dying mid-append) leaves a suffix that replay truncates —
// the session recovers to the last intact record and the reopened log
// accepts further appends on the clean boundary.
func TestTornWALWriteRecovers(t *testing.T) {
	defer ClearFailpoints()
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	appendLoad(t, l, db, loads[0].op, loads[0].data)

	SetFailpoint(FpWALWrite, FailRule{Count: 1, TornBytes: 11})
	if _, err := l.Append(OpAppend, loads[1].data, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append: err = %v, want injected", err)
	}
	s.Close()

	// The file really holds a torn frame beyond the intact prefix.
	wal, err := os.ReadFile(filepath.Join(dir, "sessions", "main", walFile))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	offs := frameOffsets(t, wal[:len(wal)-11])
	if len(offs) != 1 || len(wal) <= offs[len(offs)-1]+8 {
		t.Fatalf("expected one intact frame plus a torn tail, got offsets %v in %d bytes", offs, len(wal))
	}

	rec := assertRecovered(t, dir, replayTo(t, 1))
	// The truncation left a clean boundary: appending works and a second
	// recovery sees both records.
	db2 := replayTo(t, 1)
	appendLoad(t, rec.Log, db2, loads[1].op, loads[1].data)
	rec.Log.Close()
	assertRecovered(t, dir, replayTo(t, 2))
}

// TestV1WALRecovers: a WAL written under the v1 magic (records carry no
// epoch) recovers — the epoch decodes to zero, the file keeps its v1
// header, and new appends interleave fine because the framing never
// changed.
func TestV1WALRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	for _, ld := range loads[:2] {
		appendLoad(t, l, db, ld.op, ld.data)
	}
	s.Close()

	// Rewrite the header in place: a fresh log's records carry epoch 0
	// (omitted from the JSON), so this is byte-for-byte a v1 file.
	path := filepath.Join(dir, "sessions", "main", walFile)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.WriteAt([]byte(walMagicV1), 0); err != nil {
		t.Fatalf("rewrite magic: %v", err)
	}
	f.Close()

	rec := assertRecovered(t, dir, replayTo(t, 2))
	if rec.Epoch != 0 {
		t.Fatalf("v1 wal recovered with epoch %d, want 0", rec.Epoch)
	}
	db2 := replayTo(t, 2)
	appendLoad(t, rec.Log, db2, loads[2].op, loads[2].data)
	rec.Log.Close()
	assertRecovered(t, dir, replayTo(t, 3))
}

// TestEpochRoundTrip: the epoch is monotonic on a live log, stamps every
// record buffered after it rises, survives recovery (from records and
// from snapshots), and fences stale mirrored records.
func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	appendLoad(t, l, db, loads[0].op, loads[0].data)

	l.SetEpoch(3)
	l.SetEpoch(2) // lower: ignored
	if got := l.Epoch(); got != 3 {
		t.Fatalf("epoch = %d after SetEpoch(3); SetEpoch(2), want 3", got)
	}
	if _, err := l.Append(OpEpoch, "", db.Versions()); err != nil {
		t.Fatalf("epoch record: %v", err)
	}
	appendLoad(t, l, db, loads[1].op, loads[1].data)

	// A mirrored record from an older epoch is a fenced-off stale primary.
	stale := &Record{Seq: l.Seq() + 1, Epoch: 1, Op: OpAppend, Data: "row R zz 0\n", Versions: db.Versions()}
	if err := l.BufferRecord(stale); err == nil || !strings.Contains(err.Error(), "stale epoch") {
		t.Fatalf("stale-epoch mirror: err = %v, want stale epoch rejection", err)
	}
	s.Close()

	rec := assertRecovered(t, dir, replayTo(t, 2))
	if rec.Epoch != 3 {
		t.Fatalf("recovered epoch %d from records, want 3", rec.Epoch)
	}
	if rec.Log.Epoch() != 3 {
		t.Fatalf("reopened log stamps epoch %d, want 3", rec.Log.Epoch())
	}

	// Epoch survives compaction: after a snapshot at epoch 3 the WAL holds
	// no records, so recovery must read it from the snapshot.
	snap, err := TakeSnapshot("main", rec.DB, rec.Log.Seq(), nil)
	if err != nil {
		t.Fatalf("take snapshot: %v", err)
	}
	snap.Epoch = rec.Log.Epoch()
	if err := rec.Log.InstallSnapshot(snap); err != nil {
		t.Fatalf("install snapshot: %v", err)
	}
	rec.Log.Close()
	rec2 := assertRecovered(t, dir, replayTo(t, 2))
	if rec2.Epoch != 3 {
		t.Fatalf("recovered epoch %d from snapshot, want 3", rec2.Epoch)
	}
	rec2.Log.Close()
}
