package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"incdb/internal/raparse"
	"incdb/internal/relation"
)

// SnapshotFormat names the snapshot file format; Decode rejects anything
// else. The golden-file test in internal/raparse pins the .idb body.
const SnapshotFormat = "incdbstore-snapshot-v1"

// WarmKey identifies one prepared-plan cache entry worth re-warming after
// recovery: the original query text with the evaluation procedure and
// semantics it was requested under. The server records the recently used
// keys per session and re-prepares them once the database is rebuilt, so a
// restarted (or bootstrapped) server answers its working set at warm-cache
// latency from the first request.
type WarmKey struct {
	Query string `json:"query"`
	Proc  string `json:"proc"`
	Bag   bool   `json:"bag,omitempty"`
}

// Snapshot is one durable copy of a session database: a JSON header line
// (format, session, covered WAL sequence number, version vector, fresh-null
// allocator position, warm keys, timestamp) followed by the raparse
// rendering of the database. The same encoding backs the on-disk snapshot
// files, the /v1/snapshot export endpoint and the snapshot-bootstrap load
// path, so a replica restores byte-identical state from a running server.
type Snapshot struct {
	Format  string `json:"format"`
	Session string `json:"session"`
	Seq     uint64 `json:"seq"`
	// Epoch is the replication epoch the snapshot was taken under (absent
	// in pre-epoch snapshots, which decode to 0). A server restoring or
	// bootstrapping from a snapshot adopts its epoch; a replica refuses a
	// bootstrap snapshot whose epoch is behind what it has already seen.
	Epoch    uint64            `json:"epoch,omitempty"`
	NextNull uint64            `json:"next_null"`
	Versions map[string]uint64 `json:"versions"`
	Warm     []WarmKey         `json:"warm,omitempty"`
	TakenAt  string            `json:"taken_at"`

	// Data is the raparse rendering of the database (not part of the JSON
	// header; it follows on the remaining lines).
	Data string `json:"-"`
}

// TakeSnapshot renders db into a snapshot. The caller must hold whatever
// lock makes db stable (the server renders under the session read lock with
// the commit mutex held, so seq is consistent with the rendered contents).
func TakeSnapshot(session string, db *relation.Database, seq uint64, warm []WarmKey) (*Snapshot, error) {
	data, err := raparse.RenderDatabase(db)
	if err != nil {
		return nil, fmt.Errorf("store: render %q: %w", session, err)
	}
	return &Snapshot{
		Format:   SnapshotFormat,
		Session:  session,
		Seq:      seq,
		NextNull: db.NextNull(),
		Versions: db.Versions(),
		Warm:     warm,
		TakenAt:  time.Now().UTC().Format(time.RFC3339),
		Data:     data,
	}, nil
}

// EncodeTo writes the snapshot encoding: one JSON header line, then the
// database text.
func (sn *Snapshot) EncodeTo(w io.Writer) error {
	header, err := json.Marshal(sn)
	if err != nil {
		return err
	}
	if _, err := w.Write(append(header, '\n')); err != nil {
		return err
	}
	_, err = io.WriteString(w, sn.Data)
	return err
}

// Encode returns the snapshot encoding as a string.
func (sn *Snapshot) Encode() (string, error) {
	var b strings.Builder
	if err := sn.EncodeTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// DecodeSnapshot parses the snapshot encoding.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	header, err := br.ReadString('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	var sn Snapshot
	if err := json.Unmarshal([]byte(header), &sn); err != nil {
		return nil, fmt.Errorf("store: snapshot header: %w", err)
	}
	if sn.Format != SnapshotFormat {
		return nil, fmt.Errorf("store: unsupported snapshot format %q", sn.Format)
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot body: %w", err)
	}
	sn.Data = string(body)
	return &sn, nil
}

// Database rebuilds the snapshotted database: the text is parsed with
// preserved null identifiers, the version vector is restored relation by
// relation, and the fresh-null allocator resumes where the original left
// off — so replaying post-snapshot WAL records (which allocate fresh nulls
// deterministically) reproduces the crashed server's state exactly.
func (sn *Snapshot) Database() (*relation.Database, error) {
	db := relation.NewDatabase()
	if err := raparse.ParseDatabaseIntoOpts(strings.NewReader(sn.Data), db, raparse.DBOptions{PreserveNulls: true}); err != nil {
		return nil, fmt.Errorf("store: snapshot body: %w", err)
	}
	for name, v := range sn.Versions {
		r := db.Relation(name)
		if r == nil {
			return nil, fmt.Errorf("store: snapshot versions mention %q, body does not declare it", name)
		}
		r.RestoreVersion(v)
	}
	if sn.NextNull > 0 {
		db.ReserveNull(sn.NextNull - 1)
	}
	return db, nil
}
