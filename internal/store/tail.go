package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrWALGap reports that the requested position was compacted away: the
// log's snapshot has advanced past it, so the records between the
// position and the snapshot no longer exist in the WAL. A follower that
// sees it must re-bootstrap from a snapshot.
var ErrWALGap = errors.New("store: wal position compacted away (re-bootstrap from a snapshot)")

// errFramePending is the internal "no complete frame at this offset yet"
// signal: the flusher is mid-write, or a compaction raced us. The tailer
// waits for the next durable-state notification and retries.
var errFramePending = errors.New("store: frame pending")

// Tail is a live iterator over a session's durable WAL records, feeding
// the replication stream. It reads through its own file handle at its own
// offset, so it never interferes with the appender, and it only surfaces
// records the log has fsync'd — a follower can never get ahead of the
// primary's durability. Next blocks until the next record arrives; a
// compaction that removes records the tail has not yet delivered ends it
// with ErrWALGap.
type Tail struct {
	log  *SessionLog
	f    *os.File
	off  int64
	last uint64 // last sequence number returned (or the starting position)
	gen  uint64
}

// TailFrom opens a tail over the records with sequence numbers strictly
// greater than from. Returns ErrWALGap when records past from are already
// compacted into the snapshot.
func (l *SessionLog) TailFrom(from uint64) (*Tail, error) {
	// Record the epoch before checking snapSeq: if a compaction lands in
	// between, Next sees the epoch change and re-checks.
	gen := l.walGen.Load()
	if from < l.snapSeq.Load() {
		return nil, ErrWALGap
	}
	f, err := os.Open(filepath.Join(l.dir, walFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Tail{log: l, f: f, off: int64(len(walMagic)), last: from, gen: gen}, nil
}

// Next returns the next durable record, both decoded and in its wire
// framing (ready to relay verbatim to a follower). It blocks until a
// record is available, ctx is done, or the log compacts past the tail
// (ErrWALGap).
func (t *Tail) Next(ctx context.Context) ([]byte, *Record, error) {
	for {
		if e := t.log.walGen.Load(); e != t.gen {
			// The log was truncated under us. If we had delivered
			// everything the snapshot covers, the new file simply continues
			// where we were — re-base to its start. Otherwise records we
			// still owe the caller are gone.
			if t.last < t.log.snapSeq.Load() {
				return nil, nil, ErrWALGap
			}
			t.gen = e
			t.off = int64(len(walMagic))
		}
		// Subscribe before inspecting the durable position: any change
		// after this closes ch, so the select below cannot miss it.
		ch := t.log.changed()
		if t.log.durable.Load() > t.last {
			frame, rec, err := t.readFrame()
			if err == nil {
				if rec.Seq > t.last {
					t.last = rec.Seq
					return frame, rec, nil
				}
				continue // skipping the already-delivered prefix
			}
			if err != errFramePending {
				return nil, nil, err
			}
			// Incomplete bytes at our offset despite newer durable records:
			// we raced a compaction (next iteration re-bases) or a write in
			// flight; wait for the next notification.
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

// readFrame decodes the frame at the current offset, advancing past it on
// success. Incomplete or implausible bytes yield errFramePending — the
// caller resolves whether that means "wait" or "gap".
func (t *Tail) readFrame() ([]byte, *Record, error) {
	var hdr [8]byte
	if _, err := t.f.ReadAt(hdr[:], t.off); err != nil {
		return nil, nil, errFramePending
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, nil, errFramePending
	}
	buf := make([]byte, 8+int(n))
	copy(buf, hdr[:])
	if _, err := t.f.ReadAt(buf[8:], t.off+8); err != nil {
		return nil, nil, errFramePending
	}
	if crc32.Checksum(buf[8:], walCRC) != sum {
		return nil, nil, errFramePending
	}
	var rec Record
	if err := json.Unmarshal(buf[8:], &rec); err != nil {
		return nil, nil, errFramePending
	}
	t.off += int64(len(buf))
	return buf, &rec, nil
}

// Close releases the tail's file handle.
func (t *Tail) Close() error { return t.f.Close() }
