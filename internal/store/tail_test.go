package store

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"incdb/internal/relation"
)

func openTestLog(t *testing.T) *SessionLog {
	t.Helper()
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return l
}

// TestGroupCommitBatchesBufferedRecords: records buffered before a single
// Sync become durable together through one fsync, and replay sees them all
// in sequence order.
func TestGroupCommitBatchesBufferedRecords(t *testing.T) {
	l := openTestLog(t)
	var last uint64
	for i := 0; i < 8; i++ {
		seq, err := l.Buffer(OpAppend, "row R x\n", map[string]uint64{"R": uint64(i + 1)})
		if err != nil {
			t.Fatalf("buffer %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("buffer %d assigned seq %d", i, seq)
		}
		last = seq
	}
	if got := l.DurableSeq(); got != 0 {
		t.Fatalf("durable seq %d before any sync", got)
	}
	if err := l.Sync(last); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := l.DurableSeq(); got != last {
		t.Fatalf("durable seq %d after sync, want %d", got, last)
	}
	st := l.Stats()
	if st.Syncs != 1 {
		t.Fatalf("8 buffered records took %d fsyncs, want 1 (group commit)", st.Syncs)
	}
	if st.WalRecords != 8 {
		t.Fatalf("wal records %d, want 8", st.WalRecords)
	}
}

// TestConcurrentAppendsGroupCommit hammers one log with concurrent Appends
// (run under -race): every record must end durable with strictly monotonic
// sequence numbers on replay, and batching must never lose or duplicate
// one. Fewer fsyncs than records is the group-commit payoff but is timing-
// dependent, so only the correctness properties are asserted.
func TestConcurrentAppendsGroupCommit(t *testing.T) {
	l := openTestLog(t)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append(OpAppend, "row R x\n", nil)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				if seen[seq] {
					t.Errorf("duplicate seq %d", seq)
				}
				seen[seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if l.DurableSeq() != writers*per {
		t.Fatalf("durable seq %d, want %d", l.DurableSeq(), writers*per)
	}
	st := l.Stats()
	t.Logf("group commit: %d records in %d fsyncs", st.WalRecords, st.Syncs)
}

// TestTailStreamsAndWakes: a tailer sees already-durable records
// immediately, blocks at the head, and wakes when a new record commits;
// context cancellation unblocks it.
func TestTailStreamsAndWakes(t *testing.T) {
	l := openTestLog(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpAppend, "row R a\n", nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	tail, err := l.TailFrom(1) // skip the first record
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer tail.Close()
	ctx := context.Background()
	for want := uint64(2); want <= 3; want++ {
		frame, rec, err := tail.Next(ctx)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if rec.Seq != want {
			t.Fatalf("tail yielded seq %d, want %d", rec.Seq, want)
		}
		// The frame must round-trip through the stream decoder.
		if got, err := ReadFrame(bytes.NewReader(frame)); err != nil || got.Seq != want {
			t.Fatalf("frame round-trip: %v (seq %d)", err, got.Seq)
		}
	}

	// Blocked at the head: a concurrent append wakes it.
	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Append(OpAppend, "row R b\n", nil)
	}()
	_, rec, err := tail.Next(ctx)
	if err != nil || rec.Seq != 4 {
		t.Fatalf("woken next: %v (seq %v)", err, rec)
	}

	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, _, err := tail.Next(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled next: %v", err)
	}
}

// TestTailAcrossCompaction: a caught-up tailer survives a snapshot
// compaction (the truncated log continues where it was), while a lagging
// tailer — and a new TailFrom behind the snapshot — get ErrWALGap.
func TestTailAcrossCompaction(t *testing.T) {
	l := openTestLog(t)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(OpAppend, "row R a\n", nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	caught, err := l.TailFrom(0)
	if err != nil {
		t.Fatalf("tail: %v", err)
	}
	defer caught.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := caught.Next(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	lagging, err := l.TailFrom(0) // has not delivered anything yet
	if err != nil {
		t.Fatalf("lagging tail: %v", err)
	}
	defer lagging.Close()

	snap, err := TakeSnapshot("main", relation.NewDatabase(), l.Seq(), nil)
	if err != nil {
		t.Fatalf("take snapshot: %v", err)
	}
	if err := l.InstallSnapshot(snap); err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := l.Append(OpAppend, "row R z\n", nil); err != nil {
		t.Fatalf("post-compaction append: %v", err)
	}

	// The caught-up tailer re-bases onto the truncated file and delivers
	// the new record.
	_, rec, err := caught.Next(ctx)
	if err != nil || rec.Seq != 4 {
		t.Fatalf("caught-up tailer after compaction: %v (rec %v)", err, rec)
	}
	// The lagging tailer's records are gone.
	if _, _, err := lagging.Next(ctx); !errors.Is(err, ErrWALGap) {
		t.Fatalf("lagging tailer: %v, want ErrWALGap", err)
	}
	// A fresh tail behind the snapshot is refused up front.
	if _, err := l.TailFrom(0); !errors.Is(err, ErrWALGap) {
		t.Fatalf("TailFrom(0) after compaction: %v, want ErrWALGap", err)
	}
	// At the snapshot boundary it is fine.
	ok, err := l.TailFrom(3)
	if err != nil {
		t.Fatalf("TailFrom(3): %v", err)
	}
	ok.Close()
}
