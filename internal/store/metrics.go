package store

import (
	"time"

	"incdb/internal/obs"
)

// WALMetrics carries the durability subsystem's instrumentation hooks.
// Every field is optional (a nil histogram is skipped), and the whole
// struct may be nil — the store then runs exactly as before, paying
// nothing. The server constructs one from its obs.Registry and passes it
// through Options; every SessionLog of the store shares it, so the
// histograms aggregate across sessions (per-session sequence state is
// exported separately via scrape-time collectors over Stats()).
type WALMetrics struct {
	// AppendSeconds observes one group-commit flush end to end (write +
	// fsync): the latency a load pays when it leads the flush.
	AppendSeconds *obs.Histogram
	// FsyncSeconds observes the fsync alone — the floor group commit
	// amortizes.
	FsyncSeconds *obs.Histogram
	// RecordsPerFsync observes how many buffered records one fsync made
	// durable: the group-commit batch size.
	RecordsPerFsync *obs.Histogram
	// FlushBytes observes the byte size of one flushed batch.
	FlushBytes *obs.Histogram
	// SnapshotSeconds observes a snapshot install end to end (encode,
	// fsync, rename, WAL truncation) — the compaction pause.
	SnapshotSeconds *obs.Histogram
}

// WALTrace is WALMetrics' tracing sibling: optional callbacks the store
// invokes for distributed-trace spans. The callback — or the whole
// struct — may be nil; the store then runs exactly as before, paying
// nothing on the durability path.
type WALTrace struct {
	// Flush is called by the group-commit flush leader once per traced
	// record in a durable batch, after the fsync: the record's carried
	// traceparent, the batch it rode in (records, bytes), the fsync start
	// time and its duration. The server turns each call into a wal.fsync
	// span parented on the committing request's span.
	Flush func(traceparent string, records, bytes int, start time.Time, d time.Duration)
}

// observe is the nil-safe recording helper shared by the hook sites.
func observe(h *obs.Histogram, v float64) {
	if h != nil {
		h.Observe(v)
	}
}
