package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"incdb/internal/raparse"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// appendLoad applies a load to db and logs it, the way the server commits:
// mutate first, then append the payload with the resulting version vector.
func appendLoad(t *testing.T, l *SessionLog, db *relation.Database, op Op, data string) {
	t.Helper()
	switch op {
	case OpAppend:
		if err := raparse.ParseDatabaseInto(strings.NewReader(data), db); err != nil {
			t.Fatalf("apply: %v", err)
		}
	case OpReplace:
		fresh, err := raparse.ParseDatabase(strings.NewReader(data))
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		*db = *fresh
	}
	if _, err := l.Append(op, data, db.Versions()); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// loads is a deterministic sequence with appends, nulls, multiplicities
// and a mid-sequence replace.
var loads = []struct {
	op   Op
	data string
}{
	{OpReplace, "rel R a b\nrow R x 1\nrow R y _1\n"},
	{OpAppend, "row R z _1\nrow R z _1\n"},
	{OpAppend, "rel S v\nrow S 'a b' *3\nrow S _2\n"},
	{OpReplace, "rel R a b\nrow R p _1\nrow R q _2\n"},
	{OpAppend, "row R r _1\nrel T w\nrow T '*7'\n"},
}

// replayTo builds the reference database for the first n loads.
func replayTo(t *testing.T, n int) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	for _, ld := range loads[:n] {
		switch ld.op {
		case OpAppend:
			if err := raparse.ParseDatabaseInto(strings.NewReader(ld.data), db); err != nil {
				t.Fatalf("reference apply: %v", err)
			}
		case OpReplace:
			fresh, err := raparse.ParseDatabase(strings.NewReader(ld.data))
			if err != nil {
				t.Fatalf("reference apply: %v", err)
			}
			*db = *fresh
		}
	}
	return db
}

func assertRecovered(t *testing.T, dir string, want *relation.Database) *Recovered {
	t.Helper()
	s := openStore(t, dir)
	recs, err := s.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d sessions, want 1", len(recs))
	}
	got := recs[0].DB
	if !got.Equal(want) {
		t.Fatalf("recovered database differs:\ngot  %s\nwant %s", got, want)
	}
	if !VersionsEqual(got.Versions(), want.Versions()) {
		t.Fatalf("recovered versions %v, want %v", got.Versions(), want.Versions())
	}
	if got.NextNull() != want.NextNull() {
		t.Fatalf("recovered next null %d, want %d", got.NextNull(), want.NextNull())
	}
	return recs[0]
}

func TestRecoverFromWAL(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	for _, ld := range loads {
		appendLoad(t, l, db, ld.op, ld.data)
	}
	s.Close()
	assertRecovered(t, dir, replayTo(t, len(loads)))
}

// TestTornWrites cuts the WAL at every byte offset inside its last record
// and flips bytes in its checksum and payload: recovery must always come
// back to the state of the last intact record, truncate the tail, and
// accept further appends that a second recovery then sees.
func TestTornWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	for _, ld := range loads {
		appendLoad(t, l, db, ld.op, ld.data)
	}
	s.Close()
	walPath := filepath.Join(dir, "sessions", "main", walFile)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Locate the last record's start: re-scan the frames.
	offsets := frameOffsets(t, intact)
	if len(offsets) != len(loads) {
		t.Fatalf("found %d records, want %d", len(offsets), len(loads))
	}
	lastStart := offsets[len(offsets)-1]
	wantTorn := replayTo(t, len(loads)-1)
	wantFull := replayTo(t, len(loads))

	cuts := []int{lastStart, lastStart + 1, lastStart + 4, lastStart + 8,
		lastStart + 9, (lastStart + len(intact)) / 2, len(intact) - 1}
	for _, cut := range cuts {
		tornDir := t.TempDir()
		writeSession(t, tornDir, "main", intact[:cut])
		rec := assertRecovered(t, tornDir, wantTorn)
		// The torn tail must be gone and the log must accept new appends.
		tdb := rec.DB
		appendLoad(t, rec.Log, tdb, loads[len(loads)-1].op, loads[len(loads)-1].data)
		rec.Log.Close()
		assertRecovered(t, tornDir, wantFull)
	}

	// Bit flips: corrupt the checksum field and a payload byte of the last
	// record; both must be detected and discarded.
	for _, flip := range []int{lastStart + 4, lastStart + 10} {
		dirF := t.TempDir()
		mut := append([]byte(nil), intact...)
		mut[flip] ^= 0x40
		writeSession(t, dirF, "main", mut)
		assertRecovered(t, dirF, wantTorn)
	}

	// Garbage appended after intact records must not disturb them.
	garbageDir := t.TempDir()
	writeSession(t, garbageDir, "main", append(append([]byte(nil), intact...), "garbage tail"...))
	assertRecovered(t, garbageDir, wantFull)

	// A torn header (shorter than the magic) is an empty log.
	headDir := t.TempDir()
	writeSession(t, headDir, "main", intact[:3])
	s2 := openStore(t, headDir)
	recs, err := s2.Recover()
	if err != nil {
		t.Fatalf("recover torn header: %v", err)
	}
	if len(recs) != 1 || len(recs[0].DB.Names()) != 0 {
		t.Fatalf("torn header should recover an empty session")
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	for _, ld := range loads[:3] {
		appendLoad(t, l, db, ld.op, ld.data)
	}
	snap, err := TakeSnapshot("main", db, l.Seq(), []WarmKey{{Query: "R", Proc: "cert"}})
	if err != nil {
		t.Fatalf("take snapshot: %v", err)
	}
	if err := l.InstallSnapshot(snap); err != nil {
		t.Fatalf("install snapshot: %v", err)
	}
	if l.WalBytes() != int64(len(walMagic)) {
		t.Fatalf("wal not compacted: %d bytes", l.WalBytes())
	}
	for _, ld := range loads[3:] {
		appendLoad(t, l, db, ld.op, ld.data)
	}
	s.Close()
	rec := assertRecovered(t, dir, replayTo(t, len(loads)))
	if len(rec.Warm) != 1 || rec.Warm[0].Proc != "cert" {
		t.Fatalf("warm keys not recovered: %+v", rec.Warm)
	}

	// Crash window: snapshot durable but WAL not yet truncated. Replay must
	// skip the covered records by sequence number instead of re-applying.
	crashDir := t.TempDir()
	cs := openStore(t, crashDir)
	cl, err := cs.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	cdb := relation.NewDatabase()
	for _, ld := range loads[:3] {
		appendLoad(t, cl, cdb, ld.op, ld.data)
	}
	csnap, err := TakeSnapshot("main", cdb, cl.Seq(), nil)
	if err != nil {
		t.Fatalf("take snapshot: %v", err)
	}
	// Install the snapshot file by hand, leaving the WAL untruncated — the
	// state a crash between rename and truncate leaves behind.
	f, err := os.Create(filepath.Join(crashDir, "sessions", "main", snapshotFile))
	if err != nil {
		t.Fatalf("create snapshot: %v", err)
	}
	if err := csnap.EncodeTo(f); err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	f.Close()
	cs.Close()
	assertRecovered(t, crashDir, replayTo(t, 3))
}

// TestRandomizedCrashRecovery drives random load sequences, cuts the WAL at
// a random byte, and asserts recovery equals the reference prefix — the
// "SIGKILL at an arbitrary point" property, with the fsync boundary
// simulated by the cut.
func TestRandomizedCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		s := openStore(t, dir)
		l, err := s.Session("x")
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		db := relation.NewDatabase()
		var prefix []string // rendered reference state after each load
		steps := 3 + rng.Intn(5)
		for i := 0; i < steps; i++ {
			var b strings.Builder
			op := OpAppend
			if i == 0 || rng.Intn(4) == 0 {
				op = OpReplace
				fmt.Fprintf(&b, "rel R a b\n")
			}
			if i > 0 && op == OpAppend && rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "rel S%d v\nrow S%d _9\n", i, i)
			}
			rows := 1 + rng.Intn(3)
			for r := 0; r < rows; r++ {
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&b, "row R c%d _%d\n", rng.Intn(5), 1+rng.Intn(3))
				} else {
					fmt.Fprintf(&b, "row R 'v %d' x *%d\n", rng.Intn(5), 1+rng.Intn(3))
				}
			}
			appendLoad(t, l, db, op, b.String())
			text, err := raparse.RenderDatabase(db)
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			prefix = append(prefix, text)
		}
		s.Close()

		walPath := filepath.Join(dir, "sessions", "x", walFile)
		intact, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatalf("read wal: %v", err)
		}
		offsets := frameOffsets(t, intact)
		cut := len(walMagic) + rng.Intn(len(intact)-len(walMagic)+1)
		// How many records survive the cut?
		survive := 0
		for i := range offsets {
			end := len(intact)
			if i+1 < len(offsets) {
				end = offsets[i+1]
			}
			if cut >= end {
				survive = i + 1
			}
		}
		tornDir := t.TempDir()
		writeSession(t, tornDir, "x", intact[:cut])
		ts := openStore(t, tornDir)
		recs, err := ts.Recover()
		if err != nil {
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		if len(recs) != 1 {
			t.Fatalf("trial %d: recovered %d sessions", trial, len(recs))
		}
		got, err := raparse.RenderDatabase(recs[0].DB)
		if err != nil {
			t.Fatalf("trial %d: render: %v", trial, err)
		}
		want := ""
		if survive > 0 {
			want = prefix[survive-1]
		}
		if got != want {
			t.Fatalf("trial %d: cut at %d (survive %d):\ngot  %q\nwant %q",
				trial, cut, survive, got, want)
		}
	}
}

// TestAppendFailStop: after a write error the log refuses every further
// append (and snapshot install) — the server must keep failing this
// session's loads rather than acknowledge records that replay cannot
// reconstruct.
func TestAppendFailStop(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	l, err := s.Session("main")
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	db := relation.NewDatabase()
	appendLoad(t, l, db, loads[0].op, loads[0].data)
	// Force the next write to fail by closing the file underneath the log.
	l.f.Close()
	if _, err := l.Append(OpAppend, "row R q q\n", nil); err == nil {
		t.Fatalf("append on closed wal succeeded")
	}
	if !l.Stats().Failed {
		t.Fatalf("log did not latch failed after a write error")
	}
	if _, err := l.Append(OpAppend, "row R q q\n", nil); err == nil ||
		!strings.Contains(err.Error(), "refusing further appends") {
		t.Fatalf("fail-stopped log accepted an append: %v", err)
	}
	snap, err := TakeSnapshot("main", db, l.Seq(), nil)
	if err != nil {
		t.Fatalf("take snapshot: %v", err)
	}
	if err := l.InstallSnapshot(snap); err == nil {
		t.Fatalf("fail-stopped log accepted a snapshot")
	}
	// Recovery still sees the acknowledged prefix.
	assertRecovered(t, dir, replayTo(t, 1))
}

func TestSessionNameEncoding(t *testing.T) {
	for _, name := range []string{"default", "weird name/.. %25", "ü\x00nicode", "-", "A_b-9"} {
		enc := encodeSessionName(name)
		if strings.ContainsAny(enc, "/\\ \x00.") {
			t.Fatalf("encoding of %q not filesystem-safe: %q", name, enc)
		}
		dec, err := decodeSessionName(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if dec != name {
			t.Fatalf("round trip %q → %q → %q", name, enc, dec)
		}
	}
	if _, err := decodeSessionName("bad name"); err == nil {
		t.Fatalf("expected decode error for raw space")
	}
}

// frameOffsets returns the byte offset of each record frame in an intact
// WAL image.
func frameOffsets(t *testing.T, wal []byte) []int {
	t.Helper()
	if string(wal[:len(walMagic)]) != walMagic {
		t.Fatalf("bad magic")
	}
	var offs []int
	i := len(walMagic)
	for i < len(wal) {
		if i+8 > len(wal) {
			t.Fatalf("truncated frame at %d", i)
		}
		n := int(uint32(wal[i])<<24 | uint32(wal[i+1])<<16 | uint32(wal[i+2])<<8 | uint32(wal[i+3]))
		offs = append(offs, i)
		i += 8 + n
	}
	return offs
}

// writeSession lays out a session directory holding exactly the given WAL
// image.
func writeSession(t *testing.T, dir, name string, wal []byte) {
	t.Helper()
	sd := filepath.Join(dir, "sessions", encodeSessionName(name))
	if err := os.MkdirAll(sd, 0o755); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := os.WriteFile(filepath.Join(sd, walFile), wal, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("x"))
	db.Add(r)
	snap, err := TakeSnapshot("s", db, 5, []WarmKey{{Query: "R", Proc: "sql", Bag: true}})
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	enc, err := snap.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(strings.NewReader(enc))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Seq != 5 || dec.Session != "s" || len(dec.Warm) != 1 || !dec.Warm[0].Bag {
		t.Fatalf("decoded header drifted: %+v", dec)
	}
	db2, err := dec.Database()
	if err != nil {
		t.Fatalf("database: %v", err)
	}
	if !db2.Equal(db) {
		t.Fatalf("decoded database differs")
	}
	if _, err := DecodeSnapshot(strings.NewReader("{\"format\":\"other\"}\n")); err == nil {
		t.Fatalf("expected format rejection")
	}
}
