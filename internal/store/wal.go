package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.idb"

	// walMagic opens every WAL file; a header shorter than this is a torn
	// first write and resets the file, a different one is a foreign file
	// and fails recovery rather than being silently wiped.
	walMagic = "incdbwl1"

	// maxRecordBytes bounds one record's payload on replay: a longer length
	// prefix is treated as corruption (the server caps request bodies well
	// below this).
	maxRecordBytes = 256 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Op is the kind of load mutation a WAL record carries.
type Op string

const (
	// OpAppend parses the payload into the live database.
	OpAppend Op = "append"
	// OpReplace replaces the database with a fresh parse of the payload.
	OpReplace Op = "replace"
	// OpRestore replaces the database with a decoded snapshot payload
	// (the /v1/load snapshot-bootstrap path).
	OpRestore Op = "restore"
)

// Record is one acknowledged load mutation: the raparse (or snapshot)
// payload and the version vector the database reported after applying it.
// Replay re-applies Data and cross-checks Versions.
type Record struct {
	Seq      uint64            `json:"seq"`
	Op       Op                `json:"op"`
	Data     string            `json:"data"`
	Versions map[string]uint64 `json:"versions"`
}

// SessionLog is the durable state of one session: its write-ahead log file
// and snapshot slot. Append and InstallSnapshot must be serialized by the
// caller (the server holds a per-session commit mutex across the in-memory
// apply and the WAL append, so log order is apply order); Stats, Seq and
// WalBytes are safe to call concurrently with them.
type SessionLog struct {
	name string
	dir  string
	f    *os.File

	seq        atomic.Uint64 // last appended (or replayed) record
	snapSeq    atomic.Uint64 // last record covered by the on-disk snapshot
	walBytes   atomic.Int64
	walRecords atomic.Int64
	lastSync   atomic.Int64 // unix nanos of the last fsync'd append
	lastSnap   atomic.Int64 // unix nanos of the last snapshot install

	// failed latches after a write or fsync error: the file may hold torn
	// bytes and — because the in-memory apply happens before the append —
	// the live database has diverged from the log, so accepting further
	// records would make replay reconstruct a different history than the
	// one acknowledged. The log fail-stops instead: every later Append
	// errors (the server keeps refusing this session's loads with 500)
	// and a restart recovers to the last durable record.
	failed atomic.Bool
}

// openSessionLog opens (creating if needed) the session directory and WAL
// for a session with no prior state in memory.
func openSessionLog(name, dir string) (*SessionLog, error) {
	// A pre-existing directory means prior durable state; replay it so the
	// sequence numbers continue instead of colliding. (The server recovers
	// everything up front, so this is the fresh-session path in practice.)
	if _, err := os.Stat(dir); err == nil {
		records, err := replayWAL(filepath.Join(dir, walFile))
		if err != nil {
			return nil, err
		}
		var seq, snapSeq uint64
		if f, err := os.Open(filepath.Join(dir, snapshotFile)); err == nil {
			if snap, derr := DecodeSnapshot(f); derr == nil {
				snapSeq = snap.Seq
			}
			f.Close()
		}
		seq = snapSeq
		for _, r := range records {
			if r.Seq > seq {
				seq = r.Seq
			}
		}
		return openSessionLogAt(name, dir, seq, snapSeq)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(dir))
	return openSessionLogAt(name, dir, 0, 0)
}

// openSessionLogAt opens the WAL for appending with known sequence state;
// replayWAL must already have run (it truncates any torn tail).
func openSessionLogAt(name, dir string, seq, snapSeq uint64) (*SessionLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	l := &SessionLog{name: name, dir: dir, f: f}
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		l.walBytes.Store(int64(len(walMagic)))
	} else {
		l.walBytes.Store(st.Size())
	}
	l.seq.Store(seq)
	l.snapSeq.Store(snapSeq)
	return l, nil
}

// Name returns the session name.
func (l *SessionLog) Name() string { return l.name }

// Seq returns the sequence number of the last appended (or replayed)
// record.
func (l *SessionLog) Seq() uint64 { return l.seq.Load() }

// WalBytes returns the current WAL file size.
func (l *SessionLog) WalBytes() int64 { return l.walBytes.Load() }

// Append frames, writes and fsyncs one load record, assigning it the next
// sequence number. It returns only after the record is durable — the
// server acknowledges the mutation to the client after this returns. After
// any write or fsync failure the log permanently refuses further appends
// (see failed); restarting the server is the recovery path.
func (l *SessionLog) Append(op Op, data string, versions map[string]uint64) (uint64, error) {
	if l.failed.Load() {
		return 0, fmt.Errorf("store: session %q wal failed earlier; refusing further appends (restart to recover)", l.name)
	}
	rec := Record{Seq: l.seq.Load() + 1, Op: op, Data: data, Versions: versions}
	payload, err := json.Marshal(&rec)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRC))
	copy(buf[8:], payload)
	if _, err := l.f.Write(buf); err != nil {
		l.failed.Store(true)
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.failed.Store(true)
		return 0, fmt.Errorf("store: wal sync: %w", err)
	}
	l.seq.Store(rec.Seq)
	l.walBytes.Add(int64(len(buf)))
	l.walRecords.Add(1)
	l.lastSync.Store(time.Now().UnixNano())
	return rec.Seq, nil
}

// InstallSnapshot makes snap the session's durable snapshot and compacts
// the WAL it covers: the snapshot is written to a temporary file, fsync'd
// and atomically renamed over the previous one, then the log is truncated
// back to its header. A crash between the rename and the truncation leaves
// covered records in the log; replay skips them by sequence number.
func (l *SessionLog) InstallSnapshot(snap *Snapshot) error {
	if l.failed.Load() {
		// A fail-stopped log means memory and disk have diverged; a
		// snapshot here would quietly promote unacknowledged state.
		return fmt.Errorf("store: session %q wal failed earlier; refusing snapshot (restart to recover)", l.name)
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := snap.EncodeTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncDir(l.dir)
	// The snapshot is durable; every record it covers is dead weight now.
	if err := l.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	l.walBytes.Store(int64(len(walMagic)))
	l.walRecords.Store(0)
	l.snapSeq.Store(snap.Seq)
	l.lastSnap.Store(time.Now().UnixNano())
	return nil
}

// Durability is the status snapshot of one session's durable state, as
// reported by /v1/status.
type Durability struct {
	WalBytes     int64  `json:"wal_bytes"`
	WalRecords   int64  `json:"wal_records"`
	Seq          uint64 `json:"seq"`
	SnapshotSeq  uint64 `json:"snapshot_seq"`
	LastSnapshot string `json:"last_snapshot,omitempty"`
	LastSync     string `json:"last_sync,omitempty"`
	// Failed reports a fail-stopped log (a write or fsync error): the
	// session refuses mutations until the server restarts and recovers.
	Failed bool `json:"failed,omitempty"`
}

// Stats returns the durability status; safe concurrently with Append and
// InstallSnapshot.
func (l *SessionLog) Stats() Durability {
	d := Durability{
		WalBytes:    l.walBytes.Load(),
		WalRecords:  l.walRecords.Load(),
		Seq:         l.seq.Load(),
		SnapshotSeq: l.snapSeq.Load(),
		Failed:      l.failed.Load(),
	}
	if ns := l.lastSnap.Load(); ns != 0 {
		d.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if ns := l.lastSync.Load(); ns != 0 {
		d.LastSync = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	return d
}

// Close closes the WAL file.
func (l *SessionLog) Close() error { return l.f.Close() }

// replayWAL reads every intact record of a WAL file, in order. Anything
// after the last intact record — a length or checksum mismatch, a short
// read, a non-monotonic sequence number: the signature of a write torn by
// a crash — is discarded and truncated from the file so the next append
// starts at a clean boundary. A missing file is an empty log.
func replayWAL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	header := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, header); err != nil {
		// Shorter than the magic: a torn very first write. Reset the file.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, truncateWAL(path, 0)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if string(header) != walMagic {
		return nil, fmt.Errorf("store: %s is not an incdb WAL (bad magic)", path)
	}

	var out []Record
	good := int64(len(walMagic))
	var lastSeq uint64
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return out, nil // clean end
			}
			break // torn frame
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		sum := binary.BigEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecordBytes {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			break // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // corrupt payload that happened to checksum
		}
		if rec.Seq <= lastSeq {
			break // sequence must be strictly monotonic
		}
		lastSeq = rec.Seq
		out = append(out, rec)
		good += int64(8 + len(payload))
	}
	return out, truncateWAL(path, good)
}

// truncateWAL drops the torn tail (or resets a torn header when good == 0,
// rewriting the magic).
func truncateWAL(path string, good int64) error {
	if err := os.Truncate(path, good); err != nil {
		return fmt.Errorf("store: truncate torn wal: %w", err)
	}
	if good == 0 {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		if _, err := f.WriteString(walMagic); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return f.Sync()
	}
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
