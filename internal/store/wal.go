package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.idb"

	// walMagic opens every WAL file; a header shorter than this is a torn
	// first write and resets the file, a different one is a foreign file
	// and fails recovery rather than being silently wiped. Version 2
	// introduced the replication epoch on records; decoding is versioned —
	// v1 files (whose records carry no epoch and decode to epoch 0) still
	// recover and continue under the v1 header, since the record framing is
	// unchanged and the epoch field is additive.
	walMagic   = "incdbwl2"
	walMagicV1 = "incdbwl1"

	// maxRecordBytes bounds one record's payload on replay: a longer length
	// prefix is treated as corruption (the server caps request bodies well
	// below this).
	maxRecordBytes = 256 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// Op is the kind of load mutation a WAL record carries.
type Op string

const (
	// OpAppend parses the payload into the live database.
	OpAppend Op = "append"
	// OpReplace replaces the database with a fresh parse of the payload.
	OpReplace Op = "replace"
	// OpRestore replaces the database with a decoded snapshot payload
	// (the snapshot-bootstrap load path).
	OpRestore Op = "restore"
	// OpEpoch marks a promotion: the record mutates nothing (Data is
	// empty) but raises the epoch every later record is written under.
	// Shipping the bump as an ordinary WAL record makes it durable and
	// replicated by the same machinery as any load.
	OpEpoch Op = "epoch"
)

// Record is one acknowledged load mutation: the raparse (or snapshot)
// payload and the version vector the database reported after applying it.
// Replay re-applies Data and cross-checks Versions. The same frames travel
// over the replication stream (GET /v1/sessions/{name}/wal), so a follower
// applies exactly what the primary logged. Epoch is the replication epoch
// the record was written under; it never decreases within a log, and a
// server that observes a record from a higher epoch than its own knows it
// has been superseded (pre-epoch v1 records decode to epoch 0).
type Record struct {
	Seq      uint64            `json:"seq"`
	Epoch    uint64            `json:"epoch,omitempty"`
	Op       Op                `json:"op"`
	Data     string            `json:"data"`
	Versions map[string]uint64 `json:"versions"`
	// Trace is the W3C traceparent of the span that committed this record
	// on the primary, "" when the request was untraced. It travels in the
	// frame (and so over the replication stream) so a replica's apply span
	// can link back to the originating write. Like Epoch, it is an
	// additive JSON field: v1/v2 logs without it decode with Trace == "".
	Trace string `json:"trace,omitempty"`
}

// SessionLog is the durable state of one session: its write-ahead log file
// and snapshot slot.
//
// Commit is split in two so appends can group-commit: Buffer frames a
// record and assigns it the next sequence number (cheap, no I/O — the
// caller serializes Buffer/BufferRecord calls and InstallSnapshot with its
// own commit mutex so log order is apply order), and Sync blocks until the
// record is on disk. Records buffered while an fsync is in flight ride the
// next one together: durable load throughput scales with concurrency
// instead of fsync latency. Append is Buffer+Sync for sequential callers.
// Stats, Seq, DurableSeq and WalBytes are safe to call concurrently.
type SessionLog struct {
	name string
	dir  string
	f    *os.File

	// mu guards the pending batch and sequence assignment.
	mu         sync.Mutex
	buf        []byte // framed records awaiting write+fsync
	bufRecords int64
	seqLocked  uint64 // last assigned sequence number (mirrored in seq)

	// syncMu is held by the group-commit flush leader across write+fsync
	// (and by InstallSnapshot across the truncation). Syncs queue on it;
	// whoever acquires it next flushes everything buffered meanwhile in a
	// single fsync.
	syncMu sync.Mutex

	seq     atomic.Uint64 // last assigned (buffered) record
	durable atomic.Uint64 // last fsync'd record
	snapSeq atomic.Uint64 // last record covered by the on-disk snapshot
	walGen  atomic.Uint64 // bumped on every truncation (tailers re-base)
	epoch   atomic.Uint64 // replication epoch stamped on new records

	walBytes   atomic.Int64
	walRecords atomic.Int64
	syncs      atomic.Int64 // fsyncs issued (records/syncs = group-commit ratio)
	lastSync   atomic.Int64 // unix nanos of the last fsync'd append
	lastSnap   atomic.Int64 // unix nanos of the last snapshot install

	// metrics, when non-nil, receives flush/snapshot latency observations
	// (shared across the store's sessions; set once before first use).
	metrics *WALMetrics

	// trace, when non-nil, is told about each traced record a group-commit
	// flush made durable (set once before first use). pendingTrace holds
	// the traceparents of buffered-but-not-yet-flushed records, guarded by
	// mu alongside the batch they describe.
	trace        *WALTrace
	pendingTrace []string

	// noteMu/note broadcast "the durable state changed" to WAL tailers:
	// note is closed and replaced after every flush and every truncation.
	noteMu sync.Mutex
	note   chan struct{}

	// failed latches after a write or fsync error: the file may hold torn
	// bytes and — because the in-memory apply happens before the append —
	// the live database has diverged from the log, so accepting further
	// records would make replay reconstruct a different history than the
	// one acknowledged. The log fail-stops instead: every later Buffer
	// errors (the server keeps refusing this session's loads with 500)
	// and a restart recovers to the last durable record.
	failed atomic.Bool
}

// openSessionLog opens (creating if needed) the session directory and WAL
// for a session with no prior state in memory.
func openSessionLog(name, dir string) (*SessionLog, error) {
	// A pre-existing directory means prior durable state; replay it so the
	// sequence numbers continue instead of colliding. (The server recovers
	// everything up front, so this is the fresh-session path in practice.)
	if _, err := os.Stat(dir); err == nil {
		records, err := replayWAL(filepath.Join(dir, walFile))
		if err != nil {
			return nil, err
		}
		var seq, snapSeq, epoch uint64
		if f, err := os.Open(filepath.Join(dir, snapshotFile)); err == nil {
			if snap, derr := DecodeSnapshot(f); derr == nil {
				snapSeq, epoch = snap.Seq, snap.Epoch
			}
			f.Close()
		}
		seq = snapSeq
		for _, r := range records {
			if r.Seq > seq {
				seq = r.Seq
			}
			if r.Epoch > epoch {
				epoch = r.Epoch
			}
		}
		return openSessionLogAt(name, dir, seq, snapSeq, epoch)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(dir))
	return openSessionLogAt(name, dir, 0, 0, 0)
}

// openSessionLogAt opens the WAL for appending with known sequence state;
// replayWAL must already have run (it truncates any torn tail).
func openSessionLogAt(name, dir string, seq, snapSeq, epoch uint64) (*SessionLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	l := &SessionLog{name: name, dir: dir, f: f, note: make(chan struct{})}
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		l.walBytes.Store(int64(len(walMagic)))
	} else {
		l.walBytes.Store(st.Size())
	}
	l.seqLocked = seq
	l.seq.Store(seq)
	l.durable.Store(seq)
	l.snapSeq.Store(snapSeq)
	l.epoch.Store(epoch)
	return l, nil
}

// Name returns the session name.
func (l *SessionLog) Name() string { return l.name }

// Seq returns the sequence number of the last assigned (buffered or
// replayed) record — the apply-order position of the session.
func (l *SessionLog) Seq() uint64 { return l.seq.Load() }

// DurableSeq returns the sequence number of the last fsync'd record.
func (l *SessionLog) DurableSeq() uint64 { return l.durable.Load() }

// SnapshotSeq returns the last sequence number covered by the on-disk
// snapshot; WAL records at or below it have been compacted away.
func (l *SessionLog) SnapshotSeq() uint64 { return l.snapSeq.Load() }

// Epoch returns the replication epoch new records are stamped with.
func (l *SessionLog) Epoch() uint64 { return l.epoch.Load() }

// SetEpoch raises the epoch stamped on subsequent records. The epoch is
// monotonic: a lower value is ignored. Durability of the bump comes from
// the next record written under it (the server commits an OpEpoch record
// when it promotes).
func (l *SessionLog) SetEpoch(epoch uint64) {
	for {
		cur := l.epoch.Load()
		if epoch <= cur || l.epoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// WalBytes returns the current WAL file size.
func (l *SessionLog) WalBytes() int64 { return l.walBytes.Load() }

// encodeFrame renders one record in the WAL wire framing: a 4-byte
// big-endian payload length, a CRC32-C of the payload, then the JSON
// payload. The same frames travel over the replication stream.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, walCRC))
	copy(buf[8:], payload)
	return buf, nil
}

// ReadFrame decodes one framed record from a stream (the body of a WAL
// tailing response). io.EOF marks a cleanly closed stream; any torn or
// corrupt frame is an error (over TCP, framing damage means a broken
// stream, not a crash artifact to skip).
func ReadFrame(r io.Reader) (*Record, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("store: torn frame header")
		}
		return nil, err // io.EOF: clean end
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, fmt.Errorf("store: bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("store: torn frame payload: %w", err)
	}
	if crc32.Checksum(payload, walCRC) != sum {
		return nil, fmt.Errorf("store: frame checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: frame decode: %w", err)
	}
	return &rec, nil
}

// Buffer frames a record, assigns it the next sequence number and queues
// it for the next group fsync. The caller must serialize Buffer,
// BufferRecord and InstallSnapshot (the server's per-session commit mutex
// spans the in-memory apply and the Buffer, so log order is apply order);
// Sync may then be called concurrently.
func (l *SessionLog) Buffer(op Op, data string, versions map[string]uint64) (uint64, error) {
	return l.BufferTrace(op, data, versions, "")
}

// BufferTrace is Buffer carrying the committing request's traceparent:
// the record ships it to replicas, and the flush leader reports it to the
// log's WALTrace observer once the record is durable.
func (l *SessionLog) BufferTrace(op Op, data string, versions map[string]uint64, trace string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed.Load() {
		return 0, fmt.Errorf("store: session %q wal failed earlier; refusing further appends (restart to recover)", l.name)
	}
	rec := Record{Seq: l.seqLocked + 1, Epoch: l.epoch.Load(), Op: op, Data: data, Versions: versions, Trace: trace}
	frame, err := encodeFrame(&rec)
	if err != nil {
		return 0, err
	}
	l.buf = append(l.buf, frame...)
	l.bufRecords++
	l.seqLocked = rec.Seq
	l.seq.Store(rec.Seq)
	if trace != "" && l.trace != nil {
		l.pendingTrace = append(l.pendingTrace, trace)
	}
	return rec.Seq, nil
}

// BufferRecord queues an existing record verbatim — the replica mirror
// path: a follower logs exactly the records the primary shipped, keeping
// the primary's sequence numbers, so its own recovery resumes tailing from
// the right position. The record must directly follow the log.
func (l *SessionLog) BufferRecord(rec *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed.Load() {
		return fmt.Errorf("store: session %q wal failed earlier; refusing further appends (restart to recover)", l.name)
	}
	if rec.Seq != l.seqLocked+1 {
		return fmt.Errorf("store: session %q: mirrored record seq %d does not follow %d", l.name, rec.Seq, l.seqLocked)
	}
	if e := l.epoch.Load(); rec.Epoch < e {
		// The primary this record came from writes at an epoch this log has
		// already moved past: a fenced-off stale primary. Mirroring it would
		// interleave two histories.
		return fmt.Errorf("store: session %q: mirrored record seq %d has stale epoch %d (log is at epoch %d)",
			l.name, rec.Seq, rec.Epoch, e)
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	l.buf = append(l.buf, frame...)
	l.bufRecords++
	l.seqLocked = rec.Seq
	l.seq.Store(rec.Seq)
	l.SetEpoch(rec.Epoch)
	if rec.Trace != "" && l.trace != nil {
		l.pendingTrace = append(l.pendingTrace, rec.Trace)
	}
	return nil
}

// Sync blocks until the record with the given sequence number is durable.
// Group commit lives here: whoever wins syncMu flushes everything buffered
// — its own record and every record buffered while the previous fsync was
// in flight — in one write+fsync. Everyone else parks on the durable-state
// broadcast channel instead of queueing on the mutex, so a finished flush
// releases the whole batch of waiters with one channel close rather than a
// convoy of sequential mutex handoffs.
func (l *SessionLog) Sync(seq uint64) error {
	for l.durable.Load() < seq {
		if l.failed.Load() {
			return fmt.Errorf("store: session %q wal failed earlier; record %d is not durable (restart to recover)", l.name, seq)
		}
		if l.syncMu.TryLock() {
			var err error
			if l.durable.Load() < seq {
				err = l.flush()
			}
			l.syncMu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		// A flush is in flight. Subscribe, re-check (the flusher may have
		// finished in between — the subscribe-then-check order makes that
		// race safe), then wait for its completion broadcast.
		ch := l.changed()
		if l.durable.Load() >= seq || l.failed.Load() {
			continue
		}
		<-ch
	}
	return nil
}

// flush writes and fsyncs everything buffered. Caller holds syncMu.
func (l *SessionLog) flush() error {
	l.mu.Lock()
	buf, n, end := l.buf, l.bufRecords, l.seqLocked
	traced := l.pendingTrace
	l.buf, l.bufRecords, l.pendingTrace = nil, 0, nil
	l.mu.Unlock()
	if len(buf) == 0 {
		return nil
	}
	start := time.Now()
	if _, err := fpWrite(FpWALWrite, l.f, buf); err != nil {
		l.failed.Store(true)
		return fmt.Errorf("store: wal append: %w", err)
	}
	preSync := time.Now()
	if err := fpSync(FpWALSync, l.f); err != nil {
		l.failed.Store(true)
		return fmt.Errorf("store: wal sync: %w", err)
	}
	if m := l.metrics; m != nil {
		done := time.Now()
		observe(m.AppendSeconds, done.Sub(start).Seconds())
		observe(m.FsyncSeconds, done.Sub(preSync).Seconds())
		observe(m.RecordsPerFsync, float64(n))
		observe(m.FlushBytes, float64(len(buf)))
	}
	if t := l.trace; t != nil && t.Flush != nil {
		d := time.Since(preSync)
		for _, tp := range traced {
			t.Flush(tp, int(n), len(buf), preSync, d)
		}
	}
	l.walBytes.Add(int64(len(buf)))
	l.walRecords.Add(n)
	l.syncs.Add(1)
	l.lastSync.Store(time.Now().UnixNano())
	l.durable.Store(end)
	l.notify()
	return nil
}

// Append frames, writes and fsyncs one load record, assigning it the next
// sequence number: Buffer followed by Sync. It returns only after the
// record is durable — the server acknowledges the mutation to the client
// after this returns. Concurrent Appends are safe and group-commit, but
// their relative log order is then arbitrary; callers who apply state
// in-memory first must serialize Buffer themselves.
func (l *SessionLog) Append(op Op, data string, versions map[string]uint64) (uint64, error) {
	seq, err := l.Buffer(op, data, versions)
	if err != nil {
		return 0, err
	}
	return seq, l.Sync(seq)
}

// notify wakes every WAL tailer waiting for new durable records.
func (l *SessionLog) notify() {
	l.noteMu.Lock()
	close(l.note)
	l.note = make(chan struct{})
	l.noteMu.Unlock()
}

// changed returns a channel closed at the next durable-state change.
func (l *SessionLog) changed() <-chan struct{} {
	l.noteMu.Lock()
	ch := l.note
	l.noteMu.Unlock()
	return ch
}

// InstallSnapshot makes snap the session's durable snapshot and compacts
// the WAL it covers: pending records are flushed first (nothing buffered
// may be lost to the truncation), the snapshot is written to a temporary
// file, fsync'd and atomically renamed over the previous one, then the log
// is truncated back to its header. A crash between the rename and the
// truncation leaves covered records in the log; replay skips them by
// sequence number. On a replica installing a bootstrap snapshot from its
// primary, snap.Seq may be ahead of the local log — the sequence state
// jumps forward so mirroring resumes from the snapshot. The caller
// serializes InstallSnapshot with Buffer/BufferRecord.
func (l *SessionLog) InstallSnapshot(snap *Snapshot) error {
	if l.failed.Load() {
		// A fail-stopped log means memory and disk have diverged; a
		// snapshot here would quietly promote unacknowledged state.
		return fmt.Errorf("store: session %q wal failed earlier; refusing snapshot (restart to recover)", l.name)
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if m := l.metrics; m != nil {
		start := time.Now()
		defer func() { observe(m.SnapshotSeconds, time.Since(start).Seconds()) }()
	}
	if err := l.flush(); err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := func() error {
		if err := fpErr(FpSnapshotWrite); err != nil {
			return err
		}
		return snap.EncodeTo(f)
	}(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := fpSync(FpSnapshotSync, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := fpRename(FpSnapshotRename, tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncDir(l.dir)
	// The snapshot is durable; every record it covers is dead weight now.
	if err := fpTruncate(FpWALTruncate, l.f, int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	l.walBytes.Store(int64(len(walMagic)))
	l.walRecords.Store(0)
	l.snapSeq.Store(snap.Seq)
	// The truncated log holds zero records, so the sequence state IS the
	// snapshot's — exactly where it already was for a primary compaction
	// (flush ran under syncMu and the caller's commit mutex excludes new
	// buffers), and a deliberate jump (either direction) for a replica
	// installing a bootstrap snapshot from its primary.
	l.mu.Lock()
	l.seqLocked = snap.Seq
	l.seq.Store(snap.Seq)
	l.mu.Unlock()
	l.durable.Store(snap.Seq)
	l.SetEpoch(snap.Epoch)
	l.lastSnap.Store(time.Now().UnixNano())
	l.walGen.Add(1)
	l.notify()
	return nil
}

// Durability is the status snapshot of one session's durable state, as
// reported by /v1/status.
type Durability struct {
	WalBytes    int64  `json:"wal_bytes"`
	WalRecords  int64  `json:"wal_records"`
	Seq         uint64 `json:"seq"`
	DurableSeq  uint64 `json:"durable_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Epoch is the replication epoch new records are stamped with; it rises
	// when this session's server is promoted (or follows a promoted one).
	Epoch uint64 `json:"epoch,omitempty"`
	// Syncs counts fsyncs issued; WalRecords/Syncs > 1 means group commit
	// batched concurrent appends into shared fsyncs.
	Syncs        int64  `json:"syncs"`
	LastSnapshot string `json:"last_snapshot,omitempty"`
	LastSync     string `json:"last_sync,omitempty"`
	// Failed reports a fail-stopped log (a write or fsync error): the
	// session refuses mutations until the server restarts and recovers.
	Failed bool `json:"failed,omitempty"`
}

// Stats returns the durability status; safe concurrently with Append and
// InstallSnapshot.
func (l *SessionLog) Stats() Durability {
	d := Durability{
		WalBytes:    l.walBytes.Load(),
		WalRecords:  l.walRecords.Load(),
		Seq:         l.seq.Load(),
		DurableSeq:  l.durable.Load(),
		SnapshotSeq: l.snapSeq.Load(),
		Epoch:       l.epoch.Load(),
		Syncs:       l.syncs.Load(),
		Failed:      l.failed.Load(),
	}
	if ns := l.lastSnap.Load(); ns != 0 {
		d.LastSnapshot = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	if ns := l.lastSync.Load(); ns != 0 {
		d.LastSync = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	return d
}

// Close closes the WAL file.
func (l *SessionLog) Close() error { return l.f.Close() }

// replayWAL reads every intact record of a WAL file, in order. Anything
// after the last intact record — a length or checksum mismatch, a short
// read, a non-monotonic sequence number: the signature of a write torn by
// a crash — is discarded and truncated from the file so the next append
// starts at a clean boundary. A missing file is an empty log.
func replayWAL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	header := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, header); err != nil {
		// Shorter than the magic: a torn very first write. Reset the file.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, truncateWAL(path, 0)
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	if string(header) != walMagic && string(header) != walMagicV1 {
		return nil, fmt.Errorf("store: %s is not an incdb WAL (bad magic)", path)
	}

	var out []Record
	good := int64(len(walMagic))
	var lastSeq, lastEpoch uint64
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return out, nil // clean end
			}
			break // torn frame
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		sum := binary.BigEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecordBytes {
			break // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			break // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // corrupt payload that happened to checksum
		}
		if rec.Seq <= lastSeq {
			break // sequence must be strictly monotonic
		}
		if rec.Epoch < lastEpoch {
			break // the epoch never decreases within a log
		}
		lastSeq, lastEpoch = rec.Seq, rec.Epoch
		out = append(out, rec)
		good += int64(8 + len(payload))
	}
	return out, truncateWAL(path, good)
}

// truncateWAL drops the torn tail (or resets a torn header when good == 0,
// rewriting the magic).
func truncateWAL(path string, good int64) error {
	if err := os.Truncate(path, good); err != nil {
		return fmt.Errorf("store: truncate torn wal: %w", err)
	}
	if good == 0 {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer f.Close()
		if _, err := f.WriteString(walMagic); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return f.Sync()
	}
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable; best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
