// Package store is the durability subsystem of incdbd: per-session
// write-ahead logs of load mutations, periodic snapshots of the database
// text, and crash recovery that rebuilds every session from snapshot + WAL
// replay.
//
// Layout under the data directory:
//
//	<dir>/sessions/<enc>/wal.log       append-only log of load records
//	<dir>/sessions/<enc>/snapshot.idb  latest durable snapshot (optional)
//
// where <enc> is the session name with every byte outside [A-Za-z0-9_-]
// percent-encoded, so arbitrary session names map to safe, invertible
// directory names.
//
// The write-ahead log holds one record per acknowledged /v1/load mutation:
// the raparse payload plus the version vector the mutation produced,
// length-prefixed and CRC-checksummed, fsync'd before the server
// acknowledges. Replay applies the same payloads in the same order to an
// identical starting state, so it reproduces the database exactly — null
// identifiers and version vectors included — and a torn tail (a record cut
// short by the crash) is detected by the framing, discarded, and truncated
// away.
//
// Snapshots compact the log: the database is rendered to .idb text
// (raparse.RenderDatabase) together with the version vector, the fresh-null
// allocator position and the session's warm prepared-plan keys, written to
// a temporary file, fsync'd and atomically renamed; then the WAL is
// truncated. Every record carries a sequence number and the snapshot
// records the last one it covers, so a crash between the rename and the
// truncation merely leaves already-covered records in the log — replay
// skips them.
package store

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"incdb/internal/raparse"
	"incdb/internal/relation"
)

// Options configures a store.
type Options struct {
	// SnapshotBytes is the WAL size beyond which the server takes a
	// snapshot and compacts the log (<= 0 means DefaultSnapshotBytes).
	SnapshotBytes int64
	// Metrics, when non-nil, receives WAL and snapshot latency
	// observations from every session log of this store.
	Metrics *WALMetrics
	// Trace, when non-nil, receives per-traced-record flush callbacks
	// from every session log of this store — the distributed-tracing
	// sibling of Metrics.
	Trace *WALTrace
}

// DefaultSnapshotBytes is the default WAL-size snapshot threshold.
const DefaultSnapshotBytes = 4 << 20

// Store is the durability root for one data directory.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	sessions map[string]*SessionLog
}

// Open creates (if necessary) and opens the data directory. Recover replays
// what is already there; Session attaches new sessions.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, opts: opts, sessions: map[string]*SessionLog{}}, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotBytes returns the WAL-size threshold for snapshots.
func (s *Store) SnapshotBytes() int64 {
	if s.opts.SnapshotBytes > 0 {
		return s.opts.SnapshotBytes
	}
	return DefaultSnapshotBytes
}

// Session returns the log for the named session, creating its directory
// and an empty WAL on first use. One SessionLog object exists per name.
func (s *Store) Session(name string) (*SessionLog, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty session name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.sessions[name]; ok {
		return l, nil
	}
	l, err := openSessionLog(name, s.sessionDir(name))
	if err != nil {
		return nil, err
	}
	l.metrics = s.opts.Metrics
	l.trace = s.opts.Trace
	s.sessions[name] = l
	return l, nil
}

func (s *Store) sessionDir(name string) string {
	return filepath.Join(s.dir, "sessions", encodeSessionName(name))
}

// Close closes every open session log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.sessions {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.sessions = map[string]*SessionLog{}
	return first
}

// Recovered is one session rebuilt by Recover: its database (catalogue,
// contents, version vector and null allocator restored to the last
// acknowledged load) and the warm prepared-plan keys the latest snapshot
// carried. Log is open and ready for further appends.
type Recovered struct {
	Name string
	DB   *relation.Database
	Warm []WarmKey
	Log  *SessionLog
	// Epoch is the highest replication epoch observed in the snapshot and
	// replayed records — the epoch the session continues under.
	Epoch uint64
}

// Recover scans the data directory and rebuilds every session: the latest
// snapshot (when present) restores the database with preserved null
// identifiers and version vector, then the WAL records past the snapshot's
// sequence number are replayed in order. A torn record tail is discarded
// and truncated from the log. The result is deterministic: replaying the
// same acknowledged loads onto the same base state reproduces the original
// database byte for byte.
func (s *Store) Recover() ([]*Recovered, error) {
	root := filepath.Join(s.dir, "sessions")
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := decodeSessionName(e.Name())
		if err != nil {
			log.Printf("store: skipping session directory %q: %v", e.Name(), err)
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var out []*Recovered
	for _, name := range names {
		rec, err := s.recoverSession(name)
		if err != nil {
			return nil, fmt.Errorf("store: recover session %q: %w", name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func (s *Store) recoverSession(name string) (*Recovered, error) {
	dir := s.sessionDir(name)
	db := relation.NewDatabase()
	var warm []WarmKey
	var snapSeq, epoch uint64

	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		snap, derr := DecodeSnapshot(f)
		f.Close()
		if derr != nil {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, derr)
		}
		db, derr = snap.Database()
		if derr != nil {
			return nil, fmt.Errorf("snapshot %s: %w", snapPath, derr)
		}
		warm, snapSeq, epoch = snap.Warm, snap.Seq, snap.Epoch
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	records, err := replayWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	seq := snapSeq
	for _, rec := range records {
		if rec.Seq <= snapSeq {
			continue // already covered by the snapshot
		}
		if err := ApplyRecord(db, &rec); err != nil {
			return nil, fmt.Errorf("wal record %d: %w", rec.Seq, err)
		}
		if !VersionsEqual(db.Versions(), rec.Versions) {
			// The record was acknowledged with this vector; replay is
			// deterministic, so a mismatch means corruption or a logic bug.
			// Surface it loudly rather than serving silently diverged data.
			return nil, fmt.Errorf("wal record %d: replayed version vector %v differs from logged %v",
				rec.Seq, db.Versions(), rec.Versions)
		}
		seq = rec.Seq
		if rec.Epoch > epoch {
			epoch = rec.Epoch
		}
	}

	l, err := openSessionLogAt(name, dir, seq, snapSeq, epoch)
	if err != nil {
		return nil, err
	}
	l.metrics = s.opts.Metrics
	l.trace = s.opts.Trace
	s.mu.Lock()
	s.sessions[name] = l
	s.mu.Unlock()
	return &Recovered{Name: name, DB: db, Warm: warm, Log: l, Epoch: epoch}, nil
}

// ApplyRecord replays one load mutation into db — the shared machinery of
// crash recovery and replica WAL application: re-applying the same
// acknowledged records in the same order onto the same base state
// reproduces the original database byte for byte, null identities and
// version vectors included.
func ApplyRecord(db *relation.Database, rec *Record) error {
	switch rec.Op {
	case OpAppend:
		return raparse.ParseDatabaseInto(strings.NewReader(rec.Data), db)
	case OpReplace:
		fresh, err := raparse.ParseDatabase(strings.NewReader(rec.Data))
		if err != nil {
			return err
		}
		*db = *fresh
		return nil
	case OpRestore:
		snap, err := DecodeSnapshot(strings.NewReader(rec.Data))
		if err != nil {
			return err
		}
		fresh, err := snap.Database()
		if err != nil {
			return err
		}
		*db = *fresh
		return nil
	case OpEpoch:
		// A promotion marker: raises the epoch, mutates nothing.
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// VersionsEqual reports whether two version vectors are identical. A
// replica cross-checks every applied record's logged vector with it; a
// mismatch means divergence.
func VersionsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// encodeSessionName maps an arbitrary session name to a filesystem-safe,
// invertible directory name: bytes in [A-Za-z0-9_-] pass through, anything
// else is percent-encoded.
func encodeSessionName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

func decodeSessionName(dir string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(dir); i++ {
		c := dir[i]
		switch {
		case c == '%':
			if i+2 >= len(dir) {
				return "", fmt.Errorf("truncated escape in %q", dir)
			}
			var v int
			if _, err := fmt.Sscanf(dir[i+1:i+3], "%02X", &v); err != nil {
				return "", fmt.Errorf("bad escape in %q", dir)
			}
			b.WriteByte(byte(v))
			i += 2
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-':
			b.WriteByte(c)
		default:
			return "", fmt.Errorf("unexpected byte %q in %q", c, dir)
		}
	}
	if b.Len() == 0 {
		return "", fmt.Errorf("empty session name")
	}
	return b.String(), nil
}
