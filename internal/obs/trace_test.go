package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	sc := NewSpanContext(true)
	tp := sc.TraceParent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q: want version 00 and sampled flags 01", tp)
	}
	got, ok := ParseTraceParent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}

	sc.Sampled = false
	got, ok = ParseTraceParent(sc.TraceParent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}

	if tp := (SpanContext{}).TraceParent(); tp != "" {
		t.Fatalf("invalid context rendered %q, want empty", tp)
	}
}

func TestParseTraceParentRejects(t *testing.T) {
	valid := NewSpanContext(true).TraceParent()
	bad := []string{
		"",
		"garbage",
		strings.Replace(valid, "00-", "01-", 1), // unknown version
		valid[:len(valid)-1],                    // truncated flags
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",     // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",      // short trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-00", // extra field
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-00f067aa0ba902b7-01",    // non-hex
	}
	for _, s := range bad {
		if sc, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted as %+v", s, sc)
		}
	}
}

// TestSamplingDeterministic: the head-sampling coin is a pure function of
// the trace ID, so two tracers at the same rate always agree — the
// property that lets a primary and its replicas decide independently.
func TestSamplingDeterministic(t *testing.T) {
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := randTraceID()
		a, b := sampleTrace(id, 0.5), sampleTrace(id, 0.5)
		if a != b {
			t.Fatalf("sampleTrace not deterministic for %s", id)
		}
		if !sampleTrace(id, 1.0) {
			t.Fatalf("rate 1.0 dropped %s", id)
		}
		if sampleTrace(id, 0) {
			t.Fatalf("rate 0 kept %s", id)
		}
		if a {
			kept++
		}
	}
	// The coin is uniform over the trace-ID prefix: at rate 0.5, wildly
	// skewed keep counts mean the hash is broken (P(outside) < 1e-80).
	if kept < n/4 || kept > 3*n/4 {
		t.Fatalf("rate 0.5 kept %d of %d", kept, n)
	}
}

func TestSpanTreePublishes(t *testing.T) {
	tr := NewTracer(1.0, 64)
	root := tr.StartRoot("GET /x", SpanContext{})
	child := root.StartChild("evaluate")
	child.Attr("proc", "cert")
	child.End()
	grand := root.StartChild("wal.commit")
	grand.End()
	root.End()

	spans := tr.Trace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3: %+v", len(spans), spans)
	}
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["evaluate"].ParentID != byName["GET /x"].SpanID {
		t.Errorf("child not parented on root: %+v", byName)
	}
	if byName["evaluate"].Attrs["proc"] != "cert" {
		t.Errorf("child attrs lost: %+v", byName["evaluate"])
	}
	if byName["GET /x"].ParentID != "" || byName["GET /x"].Remote {
		t.Errorf("root has a parent: %+v", byName["GET /x"])
	}

	recent := tr.Recent(10)
	if len(recent) != 1 || recent[0].Name != "GET /x" {
		t.Errorf("Recent = %+v, want just the root", recent)
	}
}

// TestUnsampledDiscarded: when the coin says drop, nothing reaches the
// ring — including children that end after the root.
func TestUnsampledDiscarded(t *testing.T) {
	tr := NewTracer(0.000001, 64) // all but certainly unsampled
	for i := 0; i < 20; i++ {
		root := tr.StartRoot("GET /x", SpanContext{})
		if root.Sampled() {
			continue // astronomically unlikely; skip the iteration
		}
		child := root.StartChild("evaluate")
		child.End()
		root.End()
		late := root.StartChild("late")
		late.End()
		if got := tr.Trace(root.TraceID()); len(got) != 0 {
			t.Fatalf("unsampled trace stored %d spans", len(got))
		}
	}
	if got := tr.Recent(10); len(got) != 0 {
		t.Fatalf("Recent = %+v, want empty", got)
	}
}

// TestForceAndErrorPublish: slow (Force) and failed (SetError) requests
// are captured even when head sampling said drop.
func TestForceAndErrorPublish(t *testing.T) {
	tr := NewTracer(0, 64) // never sampled by the coin
	carried := SpanContext{TraceID: randTraceID(), SpanID: randSpanID(), Sampled: false}

	forced := tr.StartRoot("slow", carried)
	forced.StartChild("evaluate").End()
	forced.Force()
	forced.End()
	if got := tr.Trace(forced.TraceID()); len(got) != 2 {
		t.Fatalf("forced trace stored %d spans, want 2", len(got))
	}

	failed := tr.StartRoot("boom", SpanContext{})
	failed.SetError("http 500")
	failed.End()
	if got := tr.Trace(failed.TraceID()); len(got) != 1 || got[0].Error != "http 500" {
		t.Fatalf("failed trace = %+v, want 1 span with the error", got)
	}
}

// TestCarriedDecisionHonored: an incoming traceparent overrides the local
// coin in both directions.
func TestCarriedDecisionHonored(t *testing.T) {
	never := NewTracer(0, 64)
	sampledParent := NewSpanContext(true)
	sp := never.StartRoot("GET /x", sampledParent)
	if !sp.Sampled() {
		t.Fatalf("carried sampled flag ignored at rate 0")
	}
	sp.End()
	got := never.Trace(sampledParent.TraceID.String())
	if len(got) != 1 || !got[0].Remote || got[0].ParentID != sampledParent.SpanID.String() {
		t.Fatalf("adopted root = %+v, want remote parent link", got)
	}

	always := NewTracer(1, 64)
	droppedParent := NewSpanContext(false)
	sp = always.StartRoot("GET /x", droppedParent)
	if sp.Sampled() {
		t.Fatalf("carried unsampled flag ignored at rate 1")
	}
	sp.End()
	if got := always.Trace(droppedParent.TraceID.String()); len(got) != 0 {
		t.Fatalf("carried-drop trace stored %d spans", len(got))
	}
}

func TestStartLinkedGating(t *testing.T) {
	tr := NewTracer(1, 64)
	if sp := tr.StartLinked("wal.fsync", SpanContext{}, false); sp != nil {
		t.Fatalf("StartLinked accepted an invalid parent")
	}
	if sp := tr.StartLinked("wal.fsync", NewSpanContext(false), false); sp != nil {
		t.Fatalf("StartLinked accepted an unsampled parent")
	}
	parent := NewSpanContext(true)
	sp := tr.StartLinked("replica.apply", parent, true)
	start := time.Now().Add(-time.Second)
	sp.SetStart(start)
	sp.EndWithDuration(250 * time.Millisecond)
	got := tr.Trace(parent.TraceID.String())
	if len(got) != 1 {
		t.Fatalf("linked span not stored: %+v", got)
	}
	if got[0].ParentID != parent.SpanID.String() || !got[0].Remote {
		t.Errorf("linked span = %+v, want remote parent %s", got[0], parent.SpanID)
	}
	if got[0].DurationUs != 250_000 || !got[0].Start.Equal(start) {
		t.Errorf("explicit start/duration lost: %+v", got[0])
	}
	// Remote-parented spans count as roots: the replica's listing shows
	// applied writes without needing the primary's half of the trace.
	if recent := tr.Recent(5); len(recent) != 1 {
		t.Errorf("Recent = %+v, want the linked span", recent)
	}
}

// TestRingBounds: the ring never holds more than its capacity; the newest
// spans survive.
func TestRingBounds(t *testing.T) {
	const capacity = 8
	tr := NewTracer(1, capacity)
	var last *Span
	for i := 0; i < 3*capacity; i++ {
		sp := tr.StartRoot(fmt.Sprintf("r%d", i), SpanContext{})
		sp.End()
		last = sp
	}
	all := tr.Recent(10 * capacity)
	if len(all) != capacity {
		t.Fatalf("ring holds %d spans, want %d", len(all), capacity)
	}
	if all[0].TraceID != last.TraceID() {
		t.Errorf("newest span missing: got %+v", all[0])
	}
	if tr.Recent(0) == nil || len(tr.Recent(0)) != capacity {
		t.Errorf("Recent(0) should apply the default limit")
	}
}

// TestNilSafety: a nil tracer and nil spans absorb every call — the
// disabled-tracing fast path the server relies on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x", SpanContext{})
	if sp != nil {
		t.Fatalf("nil tracer returned a span")
	}
	child := sp.StartChild("y")
	child.Attr("k", "v")
	child.SetError("e")
	child.Force()
	child.SetStart(time.Now())
	child.End()
	child.EndWithDuration(time.Second)
	if sp.TraceID() != "" || sp.Sampled() || sp.ExemplarRef() != "" || sp.Context().Valid() {
		t.Fatalf("nil span leaked identity")
	}
	if tr.Recent(5) != nil || tr.Trace("abc") != nil {
		t.Fatalf("nil tracer returned spans")
	}
	if got := SpanFromContext(ContextWithSpan(t.Context(), nil)); got != nil {
		t.Fatalf("nil span stored in context")
	}
}

// TestConcurrentSpans exercises the buffer and ring under contention (run
// with -race).
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(1, 256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartRoot("req", SpanContext{})
				var cwg sync.WaitGroup
				for c := 0; c < 3; c++ {
					cwg.Add(1)
					go func(c int) {
						defer cwg.Done()
						sp := root.StartChild("child")
						sp.Attr("c", fmt.Sprint(c))
						sp.End()
					}(c)
				}
				cwg.Wait()
				root.End()
				if got := tr.Trace(root.TraceID()); len(got) != 4 {
					t.Errorf("trace holds %d spans, want 4", len(got))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEndIdempotent: double End stores one span.
func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(1, 64)
	sp := tr.StartRoot("x", SpanContext{})
	sp.End()
	sp.End()
	if got := tr.Trace(sp.TraceID()); len(got) != 1 {
		t.Fatalf("double End stored %d spans", len(got))
	}
}
