package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the registry's thread-safety test.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets)
	cv := r.CounterVec("cv_total", "", "k")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				cv.With("a").Inc()
				if w == 0 {
					// Concurrent render while updates are in flight.
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.001; got < want*0.999 || got > want*1.001 {
		t.Fatalf("histogram sum = %v, want ≈%v", got, want)
	}
	if got := cv.With("a").Value(); got != workers*per {
		t.Fatalf("countervec = %d, want %d", got, workers*per)
	}
}

// TestExpositionFormat is the golden test for the text renderer: exact
// bytes, sorted families and series, cumulative buckets, escaping.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last by name").Add(3)
	cv := r.CounterVec("aa_requests_total", "first by name", "code", "proc")
	cv.With("ok", "cert").Add(2)
	cv.With(`we"ird`, "a\\b").Inc()
	g := r.Gauge("bb_inflight", "a gauge")
	g.Set(1.5)
	h := r.Histogram("cc_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.1)
	h.Observe(0.6)
	h.Observe(5)
	r.GaugeFunc("dd_uptime_seconds", "computed", func() float64 { return 42 })
	r.CollectGauge("ee_lag", "collected", []string{"session"}, func(emit func(float64, ...string)) {
		emit(7, "zeta")
		emit(0, "alpha")
	})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP aa_requests_total first by name
# TYPE aa_requests_total counter
aa_requests_total{code="ok",proc="cert"} 2
aa_requests_total{code="we\"ird",proc="a\\b"} 1
# HELP bb_inflight a gauge
# TYPE bb_inflight gauge
bb_inflight 1.5
# HELP cc_seconds a histogram
# TYPE cc_seconds histogram
cc_seconds_bucket{le="0.5"} 1
cc_seconds_bucket{le="1"} 2
cc_seconds_bucket{le="+Inf"} 3
cc_seconds_sum 5.7
cc_seconds_count 3
# HELP dd_uptime_seconds computed
# TYPE dd_uptime_seconds gauge
dd_uptime_seconds 42
# HELP ee_lag collected
# TYPE ee_lag gauge
ee_lag{session="alpha"} 0
ee_lag{session="zeta"} 7
# HELP zz_total last by name
# TYPE zz_total counter
zz_total 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIdempotent: registering the same name twice returns the
// same underlying series.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "ignored second help")
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("second registration returned a different counter")
	}
	v1 := r.CounterVec("y_total", "", "k")
	v2 := r.CounterVec("y_total", "", "k")
	v1.With("z").Add(2)
	if v2.With("z").Value() != 2 {
		t.Fatalf("second vec registration returned different children")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e_seconds", "", []float64{1, 2})
	h.Observe(1)   // le="1" (bounds are inclusive upper limits)
	h.Observe(1.5) // le="2"
	h.Observe(3)   // +Inf
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, line := range []string{
		`e_seconds_bucket{le="1"} 1`,
		`e_seconds_bucket{le="2"} 2`,
		`e_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}
