package obs

// trace.go is the zero-dependency distributed-tracing kernel: W3C
// traceparent-style context propagation, spans with parent links and
// attributes, deterministic head sampling, and a bounded in-memory ring
// of finished spans served by GET /v1/traces. Nothing here imports
// outside the standard library; the server wires it to HTTP middleware
// and the store wires it to WAL flushes.
//
// Sampling is decided by hashing the trace ID alone, so a primary and
// its replicas make the same keep/drop decision for one trace without
// coordination — the flag carried in the traceparent and in WAL records
// merely confirms what each server would have computed. Slow and failed
// requests are force-published even when the coin said drop.

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request across servers.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

func (t TraceID) IsZero() bool   { return t == TraceID{} }
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

func (s SpanID) IsZero() bool   { return s == SpanID{} }
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: enough for a child on
// another server to link back to it.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// TraceParent renders the context in W3C trace-context form:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>", or "" for an
// invalid context.
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceParent parses a W3C traceparent header. Unknown versions and
// malformed fields are rejected rather than guessed at.
func ParseTraceParent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return SpanContext{}, false
	}
	var sc SpanContext
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, false
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&1 == 1
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// NewSpanContext mints a fresh root context with random IDs — how a
// client originates a trace before any server has seen it.
func NewSpanContext(sampled bool) SpanContext {
	return SpanContext{TraceID: randTraceID(), SpanID: randSpanID(), Sampled: sampled}
}

func randTraceID() (t TraceID) {
	binary.BigEndian.PutUint64(t[:8], rand.Uint64())
	binary.BigEndian.PutUint64(t[8:], rand.Uint64())
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

func randSpanID() (s SpanID) {
	binary.BigEndian.PutUint64(s[:], rand.Uint64())
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// sampleTrace is the deterministic head-sampling coin: keep iff the
// first eight bytes of the trace ID, read as a uint64, fall below
// rate·2⁶⁴. Every server hashing the same trace ID gets the same answer.
func sampleTrace(id TraceID, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	return float64(binary.BigEndian.Uint64(id[:8])) < math.Ldexp(rate, 64)
}

// SpanData is the immutable record of a finished span, as stored in the
// ring and served by GET /v1/traces/{id}.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Remote     bool              `json:"remote_parent,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUs int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Tracer samples traces and holds the server's bounded span ring. A nil
// *Tracer is valid and disables tracing entirely: StartRoot and
// StartLinked return nil spans, whose methods are all no-ops.
type Tracer struct {
	rate  float64
	store spanStore
}

// DefaultSpanCap bounds the span ring when the caller passes 0.
const DefaultSpanCap = 4096

// NewTracer builds a tracer sampling the given fraction of fresh traces
// and retaining at most capacity finished spans (0 means
// DefaultSpanCap).
func NewTracer(rate float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{rate: rate, store: spanStore{buf: make([]SpanData, capacity)}}
}

// spanBuf collects a root span's subtree until the root ends and the
// publish decision is made. Children ending after that go straight to
// the ring (if published) or are dropped (if not).
type spanBuf struct {
	mu      sync.Mutex
	spans   []SpanData
	done    bool
	publish bool
	force   bool
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver, so call sites never need to guard on tracing being enabled.
type Span struct {
	tracer *Tracer
	buf    *spanBuf // nil for linked (detached) spans
	sc     SpanContext
	parent SpanID
	remote bool
	name   string

	mu    sync.Mutex
	start time.Time
	attrs map[string]string
	err   string
	ended bool
}

// StartRoot opens the root span of a request. A valid parent context
// (from an incoming traceparent) is adopted — same trace ID, carried
// sampling flag, remote parent link; otherwise a fresh trace is minted
// and the sampling coin flipped. The span is created even when the coin
// says drop, so slow/error requests can still be force-published at End.
func (t *Tracer) StartRoot(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{SpanID: randSpanID()}
	sp := &Span{tracer: t, buf: &spanBuf{}, name: name, start: time.Now()}
	if parent.Valid() {
		sc.TraceID, sc.Sampled = parent.TraceID, parent.Sampled
		sp.parent, sp.remote = parent.SpanID, true
	} else {
		sc.TraceID = randTraceID()
		sc.Sampled = sampleTrace(sc.TraceID, t.rate)
	}
	sp.sc = sc
	return sp
}

// StartLinked opens a span whose parent lives outside this span tree —
// possibly on another server (remote=true, e.g. a replica applying a
// primary's write). It publishes directly to the ring at End, and only
// exists at all when the carried context says the trace is sampled.
func (t *Tracer) StartLinked(name string, parent SpanContext, remote bool) *Span {
	if t == nil || !parent.Valid() || !parent.Sampled {
		return nil
	}
	return &Span{
		tracer: t,
		sc:     SpanContext{TraceID: parent.TraceID, SpanID: randSpanID(), Sampled: true},
		parent: parent.SpanID,
		remote: remote,
		name:   name,
		start:  time.Now(),
	}
}

// StartChild opens a child span under s, sharing its trace and buffer.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		buf:    s.buf,
		sc:     SpanContext{TraceID: s.sc.TraceID, SpanID: randSpanID(), Sampled: s.sc.Sampled},
		parent: s.sc.SpanID,
		name:   name,
		start:  time.Now(),
	}
}

// Context returns the span's propagatable context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the hex trace ID, "" for nil spans.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Sampled reports whether the span's trace passed head sampling.
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// ExemplarRef returns the trace ID for use as a metrics exemplar — only
// for sampled spans, so exemplars always point at retrievable traces.
func (s *Span) ExemplarRef() string {
	if s == nil || !s.sc.Sampled {
		return ""
	}
	return s.sc.TraceID.String()
}

// Attr attaches a key/value attribute to the span.
func (s *Span) Attr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// SetError marks the span failed. A failed root span is always
// published, regardless of the sampling decision.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = msg
	s.mu.Unlock()
}

// Force marks the span's trace for publication even if unsampled — how
// slow requests are always captured.
func (s *Span) Force() {
	if s == nil || s.buf == nil {
		return
	}
	s.buf.mu.Lock()
	s.buf.force = true
	s.buf.mu.Unlock()
}

// SetStart overrides the span's start time — for spans synthesized
// after the fact (plan-node spans, WAL flush spans).
func (s *Span) SetStart(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.start = at
	s.mu.Unlock()
}

// End finishes the span with its measured wall time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	d := time.Since(s.start)
	s.mu.Unlock()
	s.EndWithDuration(d)
}

// EndWithDuration finishes the span with an explicit duration — for
// spans whose time was measured elsewhere (plan NodeStats, WAL fsyncs).
func (s *Span) EndWithDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		Name:       s.name,
		Start:      s.start,
		DurationUs: d.Microseconds(),
		Attrs:      s.attrs,
		Error:      s.err,
		Remote:     s.remote,
	}
	if !s.parent.IsZero() {
		data.ParentID = s.parent.String()
	}
	isRoot := s.buf != nil && (s.parent.IsZero() || s.remote)
	s.mu.Unlock()

	if s.buf == nil {
		// Linked span: StartLinked only returns non-nil when sampled.
		s.tracer.store.add(data)
		return
	}
	b := s.buf
	b.mu.Lock()
	switch {
	case isRoot && !b.done:
		b.done = true
		b.publish = s.sc.Sampled || b.force || data.Error != ""
		if b.publish {
			spans := append(b.spans, data)
			b.spans = nil
			b.mu.Unlock()
			s.tracer.store.addAll(spans)
			return
		}
		b.spans = nil
	case b.done && b.publish:
		b.mu.Unlock()
		s.tracer.store.add(data)
		return
	case !b.done:
		b.spans = append(b.spans, data)
	}
	b.mu.Unlock()
}

// Recent returns up to n recently finished root spans, newest first. A
// root is a span with no parent here: the top of a request on this
// server, or a remote-parented span applied from another server's write.
func (t *Tracer) Recent(n int) []SpanData {
	if t == nil {
		return nil
	}
	return t.store.recentRoots(n)
}

// Trace returns every stored span of one trace (hex ID), ordered by
// start time. Empty when the trace is unknown or has been evicted.
func (t *Tracer) Trace(id string) []SpanData {
	if t == nil {
		return nil
	}
	return t.store.trace(id)
}

// spanStore is the bounded ring of finished spans. Old spans are
// overwritten in arrival order once the ring wraps.
type spanStore struct {
	mu   sync.Mutex
	buf  []SpanData
	next int
	size int
}

func (st *spanStore) add(d SpanData) {
	st.mu.Lock()
	st.addLocked(d)
	st.mu.Unlock()
}

func (st *spanStore) addAll(ds []SpanData) {
	st.mu.Lock()
	for _, d := range ds {
		st.addLocked(d)
	}
	st.mu.Unlock()
}

func (st *spanStore) addLocked(d SpanData) {
	st.buf[st.next] = d
	st.next = (st.next + 1) % len(st.buf)
	if st.size < len(st.buf) {
		st.size++
	}
}

// each visits stored spans from newest to oldest.
func (st *spanStore) each(visit func(d SpanData) bool) {
	for i := 1; i <= st.size; i++ {
		idx := (st.next - i + len(st.buf)) % len(st.buf)
		if !visit(st.buf[idx]) {
			return
		}
	}
}

func (st *spanStore) recentRoots(n int) []SpanData {
	if n <= 0 {
		n = 20
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []SpanData
	st.each(func(d SpanData) bool {
		if d.ParentID == "" || d.Remote {
			out = append(out, d)
		}
		return len(out) < n
	})
	return out
}

func (st *spanStore) trace(id string) []SpanData {
	st.mu.Lock()
	var out []SpanData
	st.each(func(d SpanData) bool {
		if d.TraceID == id {
			out = append(out, d)
		}
		return true
	})
	st.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// spanCtxKey carries the request's root span through a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
