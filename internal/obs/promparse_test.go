package obs

import (
	"bytes"
	"math"
	"testing"
)

// TestParsePromRoundTrip: whatever WritePrometheus emits, ParseProm reads
// back — names, labels (including escaped values), counter, gauge and
// every histogram series.
func TestParsePromRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_total", "help").Add(7)
	reg.CounterVec("t_labeled_total", "help", "proc", "session").With("cert", `we"ird\name`).Add(3)
	reg.Gauge("t_gauge", "help").Set(-2.5)
	h := reg.Histogram("t_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	samples, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	get := func(name string, labels map[string]string) float64 {
		t.Helper()
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.Label(k) != v {
					ok = false
				}
			}
			if ok {
				return s.Value
			}
		}
		t.Fatalf("no sample %s%v", name, labels)
		return 0
	}
	if got := get("t_total", nil); got != 7 {
		t.Errorf("t_total = %v, want 7", got)
	}
	if got := get("t_labeled_total", map[string]string{"proc": "cert", "session": `we"ird\name`}); got != 3 {
		t.Errorf("t_labeled_total = %v, want 3 (escaped label round-trip)", got)
	}
	if got := get("t_gauge", nil); got != -2.5 {
		t.Errorf("t_gauge = %v, want -2.5", got)
	}
	if got := get("t_seconds_bucket", map[string]string{"le": "0.1"}); got != 1 {
		t.Errorf("bucket le=0.1 = %v, want 1", got)
	}
	if got := get("t_seconds_bucket", map[string]string{"le": "+Inf"}); got != 3 {
		t.Errorf("bucket le=+Inf = %v, want 3", got)
	}
	if got := get("t_seconds_count", nil); got != 3 {
		t.Errorf("count = %v, want 3", got)
	}
	if got := get("t_seconds_sum", nil); math.Abs(got-5.55) > 1e-9 {
		t.Errorf("sum = %v, want 5.55", got)
	}
}

// TestBucketsQuantile: quantiles interpolate linearly inside the
// containing bucket and clamp at the last finite edge for the overflow
// bucket.
func TestBucketsQuantile(t *testing.T) {
	var b Buckets
	b.AddBucket(0.1, 10)
	b.AddBucket(1, 20)
	b.AddBucket(math.Inf(1), 20)
	// Cumulative counts: 10 under 0.1, 20 under 1, 20 total. The median
	// rank (10) lands exactly on the 0.1 edge.
	if got := b.Quantile(0.5); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", got)
	}
	// Rank 15 is halfway through the (0.1, 1] bucket.
	if got := b.Quantile(0.75); math.Abs(got-0.55) > 1e-9 {
		t.Errorf("p75 = %v, want 0.55", got)
	}
	// Rank within the overflow bucket clamps to the last finite edge.
	var c Buckets
	c.AddBucket(0.1, 1)
	c.AddBucket(math.Inf(1), 10)
	if got := c.Quantile(0.99); got != 0.1 {
		t.Errorf("overflow p99 = %v, want 0.1 (last finite edge)", got)
	}
	var empty Buckets
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}
