package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series value scraped from a Prometheus text exposition —
// the consumer side of WritePrometheus, used by `incdbctl top` to turn a
// /v1/metrics response back into numbers.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for key, or "".
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseProm parses the Prometheus text exposition format (0.0.4): comment
// and HELP/TYPE lines are skipped, every other non-empty line yields one
// Sample. It accepts exactly the dialect WritePrometheus emits (plus
// whitespace variations); timestamps are not supported.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parsePromLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		body, tail, err := splitLabels(rest)
		if err != nil {
			return s, err
		}
		if err := parseLabels(body, s.Labels); err != nil {
			return s, err
		}
		rest = tail
	}
	// Bucket lines may trail an OpenMetrics exemplar (" # {...} value");
	// only the sample value before it matters here.
	if i := strings.Index(rest, " # "); i >= 0 {
		rest = rest[:i]
	}
	v, err := parsePromValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits `{...} value` at the closing brace, honoring quoted
// strings (a label value may contain '}').
func splitLabels(rest string) (body, tail string, err error) {
	inQuote, esc := false, false
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		switch {
		case esc:
			esc = false
		case c == '\\' && inQuote:
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return rest[1:i], rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label set in %q", rest)
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("bad label in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		body = strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		var val strings.Builder
		i, esc, done := 1, false, false
		for ; i < len(body) && !done; i++ {
			c := body[i]
			switch {
			case esc:
				switch c {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(c)
				}
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				done = true
			default:
				val.WriteByte(c)
			}
		}
		if !done {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		into[key] = val.String()
		body = strings.TrimLeft(body[i:], ", \t")
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Buckets accumulates `_bucket{le=...}` samples of one histogram (possibly
// summed over label subsets) and answers quantile queries.
type Buckets struct {
	counts map[float64]float64 // le → cumulative count
}

// AddBucket folds one _bucket sample in: le is the bucket's upper bound
// ("+Inf" already parsed to math.Inf(1)), n its cumulative count.
func (b *Buckets) AddBucket(le, n float64) {
	if b.counts == nil {
		b.counts = map[float64]float64{}
	}
	b.counts[le] += n
}

// Count returns the histogram's total observation count (the +Inf bucket).
func (b *Buckets) Count() float64 { return b.counts[math.Inf(1)] }

// Quantile estimates the q-quantile (0 < q <= 1) from the cumulative
// buckets by linear interpolation within the containing bucket, the same
// estimate Prometheus's histogram_quantile computes. Returns NaN when the
// histogram is empty.
func (b *Buckets) Quantile(q float64) float64 {
	total := b.Count()
	if total == 0 || len(b.counts) == 0 {
		return math.NaN()
	}
	les := make([]float64, 0, len(b.counts))
	for le := range b.counts {
		les = append(les, le)
	}
	sort.Float64s(les)
	rank := q * total
	prevLe, prevCount := 0.0, 0.0
	for _, le := range les {
		c := b.counts[le]
		if c >= rank {
			if math.IsInf(le, 1) {
				// The quantile falls in the overflow bucket: the best bound
				// we have is the last finite upper edge.
				return prevLe
			}
			if c == prevCount {
				return le
			}
			return prevLe + (le-prevLe)*(rank-prevCount)/(c-prevCount)
		}
		prevLe, prevCount = le, c
	}
	return prevLe
}
