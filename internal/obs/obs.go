// Package obs is incdb's zero-dependency observability kernel: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms that
// renders itself in the Prometheus text exposition format (version 0.0.4).
//
// Everything is plain standard library — sync/atomic words behind tiny
// wrappers — so the instrumented hot paths (query handlers, WAL fsyncs,
// per-world plan executions) pay one atomic add per event and nothing
// else. Rendering walks the registry under a read lock at scrape time;
// scrape-time collectors (CollectCounter/CollectGauge) additionally let a
// family read counters that live elsewhere (session cache stats, WAL
// sequence numbers), so /v1/metrics and /v1/status report from the same
// underlying atomics and can never disagree.
//
// A Registry is an instance, not a process global: every server owns its
// own, so tests (and the replication tests that run a primary and a
// follower in one process) never share series.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds for durations in
// seconds: 100µs to 10s, roughly ×2.5 per step — wide enough for both a
// microsecond-scale cache hit and a multi-second oracle enumeration.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default histogram bounds for counts (records per
// fsync, batch sizes): powers of two up to 1024.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound (cumulative at render time, per-bucket in memory) plus sum and
// count — enough to derive rates, averages and quantile estimates.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64

	// Exemplar state: the slowest observation that carried a trace ID,
	// rendered as an OpenMetrics-style exemplar on its bucket line so an
	// operator can jump from a histogram tail to the trace behind it.
	exMu  sync.Mutex
	exSet bool
	exVal float64
	exID  string
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveExemplar records v like Observe and, when traceID is non-empty
// and v is the largest such observation so far, remembers the trace ID
// as the histogram's exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if !h.exSet || v > h.exVal {
		h.exSet, h.exVal, h.exID = true, v, traceID
	}
	h.exMu.Unlock()
}

// exemplar returns the recorded exemplar, if any.
func (h *Histogram) exemplar() (v float64, traceID string, ok bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exVal, h.exID, h.exSet
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// addFloat atomically adds d to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: its metadata and either static children
// (keyed by joined label values) or a scrape-time collector.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	bounds  []float64 // histograms only
	collect func(emit func(value float64, labelVals ...string))
	gauge   func() float64 // GaugeFunc

	mu       sync.Mutex
	children map[string]any // joined label values → *Counter | *Gauge | *Histogram
	order    []string       // insertion-keyed; sorted at render
}

func (f *family) child(make func() any, vals ...string) any {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label value(s), got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Registry holds metric families and renders them; safe for concurrent
// registration, updates and rendering.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// register returns the family for name, creating it on first use. A
// re-registration must agree on the kind (help/labels of the first win).
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, children: map[string]any{}}
	r.fams[name] = f
	return f
}

// Counter returns the registered (or a new) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.child(func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the registered (or a new) labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels)}
}

// With returns the child counter for the given label values.
func (cv *CounterVec) With(vals ...string) *Counter {
	return cv.f.child(func() any { return &Counter{} }, vals...).(*Counter)
}

// Gauge returns the registered (or a new) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	return f.child(func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.gauge = fn
}

// Histogram returns the registered (or a new) unlabeled histogram with the
// given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil)
	f.bounds = bounds
	return f.child(func() any { return newHistogram(bounds) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the registered (or a new) labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, kindHistogram, labels)
	f.bounds = bounds
	return &HistogramVec{f}
}

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(vals ...string) *Histogram {
	return hv.f.child(func() any { return newHistogram(hv.f.bounds) }, vals...).(*Histogram)
}

// CollectCounter registers a counter family whose series are produced by
// collect at scrape time — the bridge for counters that already live
// elsewhere (cache stats, WAL sequence state): status endpoints and
// /v1/metrics then read the same atomics and cannot disagree.
func (r *Registry) CollectCounter(name, help string, labels []string, collect func(emit func(value float64, labelVals ...string))) {
	f := r.register(name, help, kindCounter, labels)
	f.collect = collect
}

// CollectGauge is CollectCounter for gauges.
func (r *Registry) CollectGauge(name, help string, labels []string, collect func(emit func(value float64, labelVals ...string))) {
	f := r.register(name, help, kindGauge, labels)
	f.collect = collect
}

// WritePrometheus renders every family in the text exposition format,
// families and series in deterministic (sorted) order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if f.gauge != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, fmtValue(f.gauge()))
		return
	}
	if f.collect != nil {
		// Gather, then sort: collectors emit in whatever order their source
		// iterates, the exposition stays deterministic.
		type row struct {
			labels string
			value  float64
		}
		var rows []row
		f.collect(func(value float64, labelVals ...string) {
			rows = append(rows, row{labelString(f.labels, labelVals, "", ""), value})
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
		for _, s := range rows {
			fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtValue(s.value))
		}
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for i, key := range keys {
		var vals []string
		if key != "" || len(f.labels) > 0 {
			vals = strings.Split(key, "\x00")
		}
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, vals, "", ""), c.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, vals, "", ""), fmtValue(c.Value()))
		case *Histogram:
			exVal, exID, exOK := c.exemplar()
			cum := uint64(0)
			for bi, bound := range c.bounds {
				cum += c.counts[bi].Load()
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
					labelString(f.labels, vals, "le", fmtValue(bound)), cum,
					exemplarSuffix(exOK && exVal <= bound && (bi == 0 || exVal > c.bounds[bi-1]), exID, exVal))
			}
			cum += c.counts[len(c.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, vals, "le", "+Inf"), cum,
				exemplarSuffix(exOK && len(c.bounds) > 0 && exVal > c.bounds[len(c.bounds)-1], exID, exVal))
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, vals, "", ""), fmtValue(c.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, vals, "", ""), c.Count())
		}
	}
}

// exemplarSuffix renders the OpenMetrics exemplar trailer for the one
// bucket line that contains the exemplar observation, "" elsewhere.
// Parsers of the 0.0.4 text format that split on whitespace still read
// the sample value unchanged (it stays field two).
func exemplarSuffix(on bool, traceID string, v float64) string {
	if !on {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(traceID), fmtValue(v))
}

// labelString renders {a="x",b="y"} (plus an optional extra label, for
// histogram le); empty when there are no labels at all.
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtValue renders a float the Prometheus way: integers without a
// fraction, everything else in shortest round-trip form.
func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
