package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Logic is a finite propositional many-valued logic (T, Ω) in the sense of
// Section 5: a finite set of truth values together with truth tables for
// the connectives ∧, ∨, ¬, plus a knowledge order. Values are identified by
// their index into Names.
type Logic struct {
	Name  string
	Names []string // value names, e.g. ["f","u","t"]
	AndT  [][]int  // AndT[a][b] = index of a ∧ b
	OrT   [][]int
	NotT  []int
	// KnowLeq[a][b] reports a ⪯ b in the knowledge order.
	KnowLeq [][]bool
}

// Size returns the number of truth values.
func (l *Logic) Size() int { return len(l.Names) }

// ValueIndex returns the index of the named truth value, or -1.
func (l *Logic) ValueIndex(name string) int {
	for i, n := range l.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// And, Or and Not apply the connective tables.
func (l *Logic) And(a, b int) int { return l.AndT[a][b] }
func (l *Logic) Or(a, b int) int  { return l.OrT[a][b] }
func (l *Logic) Not(a int) int    { return l.NotT[a] }

// Boolean returns the two-valued logic L2v with values f, t.
func Boolean() *Logic {
	return &Logic{
		Name:  "L2v",
		Names: []string{"f", "t"},
		AndT:  [][]int{{0, 0}, {0, 1}},
		OrT:   [][]int{{0, 1}, {1, 1}},
		NotT:  []int{1, 0},
		KnowLeq: [][]bool{
			{true, false},
			{false, true},
		},
	}
}

// Kleene returns L3v with values f, u, t (Figure 3) and the knowledge
// order u ⪯ t, u ⪯ f.
func Kleene() *Logic {
	idx := func(v TV) int { return int(v) }
	l := &Logic{
		Name:  "L3v",
		Names: []string{"f", "u", "t"},
	}
	l.AndT = make([][]int, 3)
	l.OrT = make([][]int, 3)
	l.NotT = make([]int, 3)
	l.KnowLeq = make([][]bool, 3)
	for a := 0; a < 3; a++ {
		l.AndT[a] = make([]int, 3)
		l.OrT[a] = make([]int, 3)
		l.KnowLeq[a] = make([]bool, 3)
		l.NotT[a] = idx(Not(TV(a)))
		for b := 0; b < 3; b++ {
			l.AndT[a][b] = idx(And(TV(a), TV(b)))
			l.OrT[a][b] = idx(Or(TV(a), TV(b)))
			l.KnowLeq[a][b] = KnowledgeLeq(TV(a), TV(b))
		}
	}
	return l
}

// Subset is a set of truth-value indices of a logic, used by the sublogic
// search of Theorem 5.3.
type Subset []int

func (s Subset) contains(x int) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}

// ClosedUnderConnectives reports whether the subset is closed under the
// logic's ∧, ∨ and ¬.
func (l *Logic) ClosedUnderConnectives(s Subset) bool {
	for _, a := range s {
		if !s.contains(l.NotT[a]) {
			return false
		}
		for _, b := range s {
			if !s.contains(l.AndT[a][b]) || !s.contains(l.OrT[a][b]) {
				return false
			}
		}
	}
	return true
}

// IdempotentOn reports whether a∧a=a and a∨a=a for all a in the subset.
func (l *Logic) IdempotentOn(s Subset) bool {
	for _, a := range s {
		if l.AndT[a][a] != a || l.OrT[a][a] != a {
			return false
		}
	}
	return true
}

// WeaklyIdempotentOn reports the weak idempotency condition of [21]
// (Theorem 5.4's generalization): a∨a∨a = a∨a and a∧a∧a = a∧a.
func (l *Logic) WeaklyIdempotentOn(s Subset) bool {
	for _, a := range s {
		aa := l.OrT[a][a]
		if l.OrT[aa][a] != aa {
			return false
		}
		bb := l.AndT[a][a]
		if l.AndT[bb][a] != bb {
			return false
		}
	}
	return true
}

// DistributiveOn reports whether ∧ distributes over ∨ and ∨ over ∧ on the
// subset — the property query optimizers require (Section 5.2).
func (l *Logic) DistributiveOn(s Subset) bool {
	for _, a := range s {
		for _, b := range s {
			for _, c := range s {
				if l.AndT[a][l.OrT[b][c]] != l.OrT[l.AndT[a][b]][l.AndT[a][c]] {
					return false
				}
				if l.OrT[a][l.AndT[b][c]] != l.AndT[l.OrT[a][b]][l.OrT[a][c]] {
					return false
				}
			}
		}
	}
	return true
}

// KnowledgeMonotone reports whether all three connectives preserve the
// knowledge order (condition (2) before Theorem 5.1).
func (l *Logic) KnowledgeMonotone() bool {
	n := l.Size()
	for a := 0; a < n; a++ {
		for a2 := 0; a2 < n; a2++ {
			if !l.KnowLeq[a][a2] {
				continue
			}
			if !l.KnowLeq[l.NotT[a]][l.NotT[a2]] {
				return false
			}
			for b := 0; b < n; b++ {
				for b2 := 0; b2 < n; b2++ {
					if !l.KnowLeq[b][b2] {
						continue
					}
					if !l.KnowLeq[l.AndT[a][b]][l.AndT[a2][b2]] {
						return false
					}
					if !l.KnowLeq[l.OrT[a][b]][l.OrT[a2][b2]] {
						return false
					}
				}
			}
		}
	}
	return true
}

// SublogicReport describes one closed subset found by MaximalSublogics.
type SublogicReport struct {
	Values       []string
	Idempotent   bool
	Distributive bool
}

// MaximalSublogics enumerates all subsets of the logic's truth values that
// are closed under ∧, ∨, ¬ and satisfy both idempotency and distributivity,
// and returns the maximal ones under set inclusion. This is the search
// behind Theorem 5.3: on L6v it returns exactly {f, u, t}, i.e. Kleene's
// three-valued logic.
func (l *Logic) MaximalSublogics() []SublogicReport {
	n := l.Size()
	var good []Subset
	for mask := 1; mask < 1<<n; mask++ {
		var s Subset
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, i)
			}
		}
		if l.ClosedUnderConnectives(s) && l.IdempotentOn(s) && l.DistributiveOn(s) {
			good = append(good, s)
		}
	}
	// Keep maximal ones.
	var out []SublogicReport
	for i, s := range good {
		maximal := true
		for j, t := range good {
			if i == j || len(t) <= len(s) {
				continue
			}
			sub := true
			for _, x := range s {
				if !t.contains(x) {
					sub = false
					break
				}
			}
			if sub {
				maximal = false
				break
			}
		}
		if maximal {
			names := make([]string, len(s))
			for k, x := range s {
				names[k] = l.Names[x]
			}
			sort.Strings(names)
			out = append(out, SublogicReport{Values: names, Idempotent: true, Distributive: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Values, ",") < strings.Join(out[j].Values, ",")
	})
	return out
}

// TruthTable renders a connective table for display, reproducing Figure 3
// when called on Kleene().
func (l *Logic) TruthTable(conn string) string {
	var b strings.Builder
	switch conn {
	case "not":
		fmt.Fprintf(&b, "%-3s| ¬\n", "")
		for a := range l.Names {
			fmt.Fprintf(&b, "%-3s| %s\n", l.Names[a], l.Names[l.NotT[a]])
		}
		return b.String()
	case "and", "or":
		tab := l.AndT
		sym := "∧"
		if conn == "or" {
			tab = l.OrT
			sym = "∨"
		}
		fmt.Fprintf(&b, "%-3s|", sym)
		for _, n := range l.Names {
			fmt.Fprintf(&b, " %-3s", n)
		}
		b.WriteString("\n")
		for a := range l.Names {
			fmt.Fprintf(&b, "%-3s|", l.Names[a])
			for bdx := range l.Names {
				fmt.Fprintf(&b, " %-3s", l.Names[tab[a][bdx]])
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	panic("logic: unknown connective " + conn)
}
