package logic

import (
	"fmt"
	"sort"
)

// This file derives the six-valued epistemic logic L6v of Section 5.2 from
// first principles, following the construction in the paper (and [21]):
//
//   - Incompleteness is modelled by propositional interpretations (W, t, f):
//     a set of possible worlds W and, for a formula α, the set t(α) of
//     worlds satisfying it and f(α) of worlds falsifying it, with
//     t(α) ∩ f(α) = ∅ but possibly t(α) ∪ f(α) ≠ W (partial knowledge).
//   - The truth values are the maximally consistent theories over the
//     epistemic modalities K(α), P(α), K(¬α), P(¬α). Exactly six exist:
//
//       t  — α true in all worlds            K(α) ∧ P(α) ∧ ¬K(¬α) ∧ ¬P(¬α)
//       f  — α false in all worlds           ¬K(α) ∧ ¬P(α) ∧ K(¬α) ∧ P(¬α)
//       s  — true in some, false in others   ¬K(α) ∧ P(α) ∧ ¬K(¬α) ∧ P(¬α)
//       st — sometimes true, rest unknown    ¬K(α) ∧ P(α) ∧ ¬K(¬α) ∧ ¬P(¬α)
//       sf — sometimes false, rest unknown   ¬K(α) ∧ ¬P(α) ∧ ¬K(¬α) ∧ P(¬α)
//       u  — no information at all           ¬K(α) ∧ ¬P(α) ∧ ¬K(¬α) ∧ ¬P(¬α)
//
//   - Truth tables: ω(τ₁, τ₂) must be consistent with τ₁, τ₂ (achievable by
//     some interpretation) and, among the consistent candidates, the most
//     general one is chosen: the value carrying the least positive
//     epistemic knowledge ({K,P} literals).
//
// The derivation below enumerates joint world-patterns for a pair (α, β):
// since K and P only depend on which world-types are present, an
// interpretation is, up to equivalence, a non-empty subset of the nine
// per-world value pairs {1,0,?}². The compound α∧β / α∨β is evaluated
// per world by strong Kleene (a world satisfies α∧β iff it satisfies both;
// falsifies it iff it falsifies one), which determines the compound's
// modal theory and hence its truth value.

// Six-valued truth value indices, fixed order.
const (
	SixF  = 0 // f
	SixU  = 1 // u
	SixSF = 2 // sf
	SixS  = 3 // s
	SixST = 4 // st
	SixT  = 5 // t
)

var sixNames = []string{"f", "u", "sf", "s", "st", "t"}

// positiveKnowledge maps each six-valued value to its positive modal
// literals, encoded as a bitmask over {P(α)=1, K(α)=2, P(¬α)=4, K(¬α)=8}.
// The knowledge order of L6v is inclusion of these sets.
var positiveKnowledge = []int{
	SixF:  4 | 8, // P¬, K¬
	SixU:  0,
	SixSF: 4,     // P¬
	SixS:  1 | 4, // P, P¬
	SixST: 1,     // P
	SixT:  1 | 2, // P, K
}

// worldVal is the status of a formula at one world: 1 true, 0 false, ? unknown.
type worldVal uint8

const (
	wFalse worldVal = 0
	wUnk   worldVal = 1
	wTrue  worldVal = 2
)

// classify maps the set of world statuses of a formula to its six-valued
// truth value (the formula's maximally consistent modal theory).
func classify(present map[worldVal]bool) int {
	pT := present[wTrue]
	pF := present[wFalse]
	kT := pT && !present[wFalse] && !present[wUnk]
	kF := pF && !present[wTrue] && !present[wUnk]
	switch {
	case kT:
		return SixT
	case kF:
		return SixF
	case pT && pF:
		return SixS
	case pT:
		return SixST
	case pF:
		return SixSF
	default:
		return SixU
	}
}

// kleeneWorld evaluates a connective at a single world with strong Kleene.
func kleeneWorldAnd(a, b worldVal) worldVal {
	if a < b {
		return a
	}
	return b
}

func kleeneWorldOr(a, b worldVal) worldVal {
	if a > b {
		return a
	}
	return b
}

func kleeneWorldNot(a worldVal) worldVal { return 2 - a }

// mostGeneral picks, from a non-empty set of achievable truth values, the
// unique value with ⊆-minimal positive knowledge. It panics when the
// minimum is not unique or not achieved — which would indicate the
// derivation is wrong; the test suite exercises every entry.
func mostGeneral(achievable map[int]bool, ctx string) int {
	var mins []int
	for v := range achievable {
		minimal := true
		for w := range achievable {
			if w == v {
				continue
			}
			// w strictly below v?
			if positiveKnowledge[w]&positiveKnowledge[v] == positiveKnowledge[w] &&
				positiveKnowledge[w] != positiveKnowledge[v] {
				minimal = false
				break
			}
		}
		if minimal {
			mins = append(mins, v)
		}
	}
	if len(mins) != 1 {
		sort.Ints(mins)
		panic(fmt.Sprintf("logic: L6v derivation ambiguous at %s: minimal candidates %v of %v", ctx, mins, achievable))
	}
	return mins[0]
}

// SixValued derives and returns L6v. The derivation is deterministic and
// cheap (511 joint world-patterns per connective entry), so callers may
// invoke it freely; package-level callers can cache the result.
func SixValued() *Logic {
	const n = 6
	l := &Logic{Name: "L6v", Names: append([]string(nil), sixNames...)}
	l.AndT = make([][]int, n)
	l.OrT = make([][]int, n)
	l.NotT = make([]int, n)
	l.KnowLeq = make([][]bool, n)
	for i := 0; i < n; i++ {
		l.AndT[i] = make([]int, n)
		l.OrT[i] = make([]int, n)
		l.KnowLeq[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			l.KnowLeq[i][j] = positiveKnowledge[i]&positiveKnowledge[j] == positiveKnowledge[i]
		}
	}

	// All nine per-world pairs.
	var pairs [][2]worldVal
	for _, a := range []worldVal{wFalse, wUnk, wTrue} {
		for _, b := range []worldVal{wFalse, wUnk, wTrue} {
			pairs = append(pairs, [2]worldVal{a, b})
		}
	}

	// achievableAnd[τ1][τ2] etc. collected over every non-empty subset of
	// pair-types.
	achAnd := make([][]map[int]bool, n)
	achOr := make([][]map[int]bool, n)
	for i := 0; i < n; i++ {
		achAnd[i] = make([]map[int]bool, n)
		achOr[i] = make([]map[int]bool, n)
		for j := 0; j < n; j++ {
			achAnd[i][j] = map[int]bool{}
			achOr[i][j] = map[int]bool{}
		}
	}
	achNot := make([]map[int]bool, n)
	for i := range achNot {
		achNot[i] = map[int]bool{}
	}

	for mask := 1; mask < 1<<len(pairs); mask++ {
		presentA := map[worldVal]bool{}
		presentB := map[worldVal]bool{}
		presentAnd := map[worldVal]bool{}
		presentOr := map[worldVal]bool{}
		presentNotA := map[worldVal]bool{}
		for p := 0; p < len(pairs); p++ {
			if mask&(1<<p) == 0 {
				continue
			}
			a, b := pairs[p][0], pairs[p][1]
			presentA[a] = true
			presentB[b] = true
			presentAnd[kleeneWorldAnd(a, b)] = true
			presentOr[kleeneWorldOr(a, b)] = true
			presentNotA[kleeneWorldNot(a)] = true
		}
		ta, tb := classify(presentA), classify(presentB)
		achAnd[ta][tb][classify(presentAnd)] = true
		achOr[ta][tb][classify(presentOr)] = true
		achNot[ta][classify(presentNotA)] = true
	}

	for i := 0; i < n; i++ {
		l.NotT[i] = mostGeneral(achNot[i], fmt.Sprintf("¬%s", sixNames[i]))
		for j := 0; j < n; j++ {
			l.AndT[i][j] = mostGeneral(achAnd[i][j], fmt.Sprintf("%s∧%s", sixNames[i], sixNames[j]))
			l.OrT[i][j] = mostGeneral(achOr[i][j], fmt.Sprintf("%s∨%s", sixNames[i], sixNames[j]))
		}
	}
	return l
}

// KleeneEmbedding returns the indices of f, u, t inside L6v, witnessing
// that L3v is (isomorphic to) the {f,u,t} fragment of L6v.
func KleeneEmbedding() [3]int { return [3]int{SixF, SixU, SixT} }
