package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKleeneTruthTablesFigure3(t *testing.T) {
	// Figure 3 of the paper, row by row.
	and := map[[2]TV]TV{
		{T, T}: T, {T, F}: F, {T, U}: U,
		{F, T}: F, {F, F}: F, {F, U}: F,
		{U, T}: U, {U, F}: F, {U, U}: U,
	}
	or := map[[2]TV]TV{
		{T, T}: T, {T, F}: T, {T, U}: T,
		{F, T}: T, {F, F}: F, {F, U}: U,
		{U, T}: T, {U, F}: U, {U, U}: U,
	}
	for in, want := range and {
		if got := And(in[0], in[1]); got != want {
			t.Errorf("And(%v,%v) = %v, want %v", in[0], in[1], got, want)
		}
	}
	for in, want := range or {
		if got := Or(in[0], in[1]); got != want {
			t.Errorf("Or(%v,%v) = %v, want %v", in[0], in[1], got, want)
		}
	}
	if Not(T) != F || Not(F) != T || Not(U) != U {
		t.Errorf("negation table wrong")
	}
}

func TestAssertOperator(t *testing.T) {
	if Assert(T) != T || Assert(F) != F || Assert(U) != F {
		t.Fatalf("assertion operator: ↑t=t, ↑f=f, ↑u=f required")
	}
}

func TestAssertBreaksKnowledgeMonotonicity(t *testing.T) {
	// u ⪯ t but ↑u = f is not ⪯ ↑t = t: the culprit identified in §5.2.
	if !KnowledgeLeq(U, T) {
		t.Fatalf("u ⪯ t must hold")
	}
	if KnowledgeLeq(Assert(U), Assert(T)) {
		t.Fatalf("assertion must not preserve the knowledge order")
	}
}

func TestKleeneKnowledgeMonotone(t *testing.T) {
	vals := []TV{F, U, T}
	for _, a := range vals {
		for _, a2 := range vals {
			if !KnowledgeLeq(a, a2) {
				continue
			}
			for _, b := range vals {
				for _, b2 := range vals {
					if !KnowledgeLeq(b, b2) {
						continue
					}
					if !KnowledgeLeq(And(a, b), And(a2, b2)) {
						t.Fatalf("∧ not knowledge-monotone at %v%v %v%v", a, b, a2, b2)
					}
					if !KnowledgeLeq(Or(a, b), Or(a2, b2)) {
						t.Fatalf("∨ not knowledge-monotone")
					}
				}
			}
			if !KnowledgeLeq(Not(a), Not(a2)) {
				t.Fatalf("¬ not knowledge-monotone")
			}
		}
	}
}

func TestKleeneAlgebraicLaws(t *testing.T) {
	// Property-based: associativity, commutativity, De Morgan, distributivity,
	// idempotency — the laws query optimizers rely on (§5.2).
	prop := func(x, y, z uint8) bool {
		a, b, c := TV(x%3), TV(y%3), TV(z%3)
		if And(a, b) != And(b, a) || Or(a, b) != Or(b, a) {
			return false
		}
		if And(And(a, b), c) != And(a, And(b, c)) {
			return false
		}
		if Or(Or(a, b), c) != Or(a, Or(b, c)) {
			return false
		}
		if Not(And(a, b)) != Or(Not(a), Not(b)) {
			return false
		}
		if Not(Or(a, b)) != And(Not(a), Not(b)) {
			return false
		}
		if And(a, Or(b, c)) != Or(And(a, b), And(a, c)) {
			return false
		}
		if Or(a, And(b, c)) != And(Or(a, b), Or(a, c)) {
			return false
		}
		if And(a, a) != a || Or(a, a) != a {
			return false
		}
		if Not(Not(a)) != a {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndAllOrAll(t *testing.T) {
	if AndAll() != T || OrAll() != F {
		t.Fatalf("fold units wrong")
	}
	if AndAll(T, U, T) != U || OrAll(F, U) != U || OrAll(F, U, T) != T {
		t.Fatalf("folds wrong")
	}
}

func TestImplies(t *testing.T) {
	if Implies(T, F) != F || Implies(F, U) != T || Implies(U, F) != U {
		t.Fatalf("implication wrong")
	}
}

func TestBooleanLogicStruct(t *testing.T) {
	l := Boolean()
	ft := l.ValueIndex("f")
	tt := l.ValueIndex("t")
	if l.And(tt, ft) != ft || l.Or(tt, ft) != tt || l.Not(tt) != ft {
		t.Fatalf("Boolean tables wrong")
	}
	if !l.IdempotentOn(Subset{ft, tt}) || !l.DistributiveOn(Subset{ft, tt}) {
		t.Fatalf("Boolean logic must be idempotent and distributive")
	}
	if !l.KnowledgeMonotone() {
		t.Fatalf("Boolean logic trivially knowledge-monotone")
	}
}

func TestKleeneLogicStructMatchesFunctions(t *testing.T) {
	l := Kleene()
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if l.And(a, b) != int(And(TV(a), TV(b))) || l.Or(a, b) != int(Or(TV(a), TV(b))) {
				t.Fatalf("table mismatch at %d,%d", a, b)
			}
		}
		if l.Not(a) != int(Not(TV(a))) {
			t.Fatalf("negation mismatch at %d", a)
		}
	}
	if !l.KnowledgeMonotone() {
		t.Fatalf("Kleene logic must be knowledge-monotone")
	}
	all := Subset{0, 1, 2}
	if !l.IdempotentOn(all) || !l.DistributiveOn(all) || !l.WeaklyIdempotentOn(all) {
		t.Fatalf("Kleene must be idempotent and distributive")
	}
}

func TestSixValuedDerivation(t *testing.T) {
	l := SixValued()
	if l.Size() != 6 {
		t.Fatalf("L6v must have six values")
	}
	idx := func(n string) int {
		i := l.ValueIndex(n)
		if i < 0 {
			t.Fatalf("missing value %s", n)
		}
		return i
	}
	tT, fF, uU, sS, st, sf := idx("t"), idx("f"), idx("u"), idx("s"), idx("st"), idx("sf")

	// Restriction to {f,u,t} must be exactly Kleene (sanity of derivation).
	toK := map[int]TV{fF: F, uU: U, tT: T}
	for _, a := range []int{fF, uU, tT} {
		for _, b := range []int{fF, uU, tT} {
			if toK[l.And(a, b)] != And(toK[a], toK[b]) {
				t.Errorf("L6v∧ restricted differs from Kleene at %s,%s", l.Names[a], l.Names[b])
			}
			if toK[l.Or(a, b)] != Or(toK[a], toK[b]) {
				t.Errorf("L6v∨ restricted differs from Kleene at %s,%s", l.Names[a], l.Names[b])
			}
		}
		if toK[l.Not(a)] != Not(toK[a]) {
			t.Errorf("L6v¬ restricted differs from Kleene at %s", l.Names[a])
		}
	}

	// Negation is the expected swap.
	if l.Not(sS) != sS || l.Not(st) != sf || l.Not(sf) != st {
		t.Fatalf("L6v negation wrong: ¬s=%s ¬st=%s ¬sf=%s",
			l.Names[l.Not(sS)], l.Names[l.Not(st)], l.Names[l.Not(sf)])
	}

	// Hand-derived entries (see sixvalued.go commentary): s∧s = sf,
	// s∨s = st, st∧st = u — witnesses of non-idempotency.
	if l.And(sS, sS) != sf {
		t.Fatalf("s∧s = %s, want sf", l.Names[l.And(sS, sS)])
	}
	if l.Or(sS, sS) != st {
		t.Fatalf("s∨s = %s, want st", l.Names[l.Or(sS, sS)])
	}
	if l.And(st, st) != uU {
		t.Fatalf("st∧st = %s, want u", l.Names[l.And(st, st)])
	}

	// t and f behave classically against anything "known".
	if l.And(fF, sS) != fF || l.Or(tT, sf) != tT {
		t.Fatalf("classical absorption fails")
	}

	// L6v is neither distributive nor idempotent (stated before Thm 5.3).
	all := make(Subset, 6)
	for i := range all {
		all[i] = i
	}
	if l.IdempotentOn(all) {
		t.Fatalf("L6v must not be idempotent")
	}
	if l.DistributiveOn(all) {
		t.Fatalf("L6v must not be distributive")
	}
}

func TestTheorem53MaximalSublogicIsKleene(t *testing.T) {
	l := SixValued()
	maxes := l.MaximalSublogics()
	if len(maxes) != 1 {
		t.Fatalf("expected a unique maximal sublogic, got %v", maxes)
	}
	got := strings.Join(maxes[0].Values, ",")
	if got != "f,t,u" {
		t.Fatalf("maximal distributive+idempotent sublogic = {%s}, want {f,t,u}", got)
	}
}

func TestSixValuedKnowledgeOrder(t *testing.T) {
	l := SixValued()
	leq := func(a, b string) bool { return l.KnowLeq[l.ValueIndex(a)][l.ValueIndex(b)] }
	// u is the bottom.
	for _, v := range l.Names {
		if !leq("u", v) {
			t.Errorf("u ⪯ %s must hold", v)
		}
	}
	if !leq("st", "t") || !leq("st", "s") || !leq("sf", "f") || !leq("sf", "s") {
		t.Errorf("expected st ⪯ t, st ⪯ s, sf ⪯ f, sf ⪯ s")
	}
	if leq("t", "f") || leq("f", "t") || leq("s", "t") {
		t.Errorf("incomparable values wrongly related")
	}
}

func TestTruthTableRendering(t *testing.T) {
	l := Kleene()
	tbl := l.TruthTable("and")
	if !strings.Contains(tbl, "∧") || !strings.Contains(tbl, "t") {
		t.Fatalf("table rendering broken: %q", tbl)
	}
	neg := l.TruthTable("not")
	if !strings.Contains(neg, "¬") {
		t.Fatalf("negation table broken: %q", neg)
	}
}

func TestTruthTablePanicsOnUnknownConnective(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Kleene().TruthTable("xor")
}
