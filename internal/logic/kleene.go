// Package logic implements the propositional many-valued logics of
// Section 5 of the paper: the two-valued Boolean logic L2v, Kleene's
// three-valued logic L3v (Figure 3) with the assertion operator ↑ that
// turns it into L↑3v, and the six-valued epistemic logic L6v of [21],
// which is *derived* here from possible-world interpretations rather than
// hardcoded. The package also provides the algebraic property checks
// (idempotency, distributivity, weak idempotency, knowledge-order
// monotonicity) and the exhaustive sublogic search behind Theorem 5.3.
package logic

// TV is a truth value of Kleene's three-valued logic L3v, ordered so that
// conjunction is minimum and disjunction is maximum: F < U < T.
type TV uint8

// The three truth values of L3v. The two-valued logic L2v is the
// restriction to {F, T}.
const (
	F TV = 0 // false
	U TV = 1 // unknown
	T TV = 2 // true
)

// String renders t, f, u as in the paper.
func (v TV) String() string {
	switch v {
	case F:
		return "f"
	case U:
		return "u"
	case T:
		return "t"
	}
	return "?"
}

// And is Kleene conjunction (Figure 3): the minimum in the truth order.
func And(a, b TV) TV {
	if a < b {
		return a
	}
	return b
}

// Or is Kleene disjunction (Figure 3): the maximum in the truth order.
func Or(a, b TV) TV {
	if a > b {
		return a
	}
	return b
}

// Not is Kleene negation (Figure 3): swaps t and f, fixes u.
func Not(a TV) TV { return T - a }

// Assert is Bochvar's assertion operator ↑ (Section 5.2): ↑p is t when p
// is t and f otherwise. It collapses u into f, which is exactly what SQL's
// WHERE clause does after evaluating conditions in L3v — and it is the one
// connective of FO↑SQL that does not respect the knowledge order.
func Assert(a TV) TV {
	if a == T {
		return T
	}
	return F
}

// FromBool embeds the Boolean logic L2v into L3v.
func FromBool(b bool) TV {
	if b {
		return T
	}
	return F
}

// KnowledgeLeq reports a ⪯ b in the knowledge order of L3v: u below both
// t and f, with t and f incomparable (Section 5.1).
func KnowledgeLeq(a, b TV) bool { return a == b || a == U }

// Implies is material implication in L3v, derived as ¬a ∨ b. Provided for
// completeness of the connective set; SQL's core uses ∧, ∨, ¬ only.
func Implies(a, b TV) TV { return Or(Not(a), b) }

// AndAll folds And over vs, returning T on the empty sequence (the unit of
// conjunction).
func AndAll(vs ...TV) TV {
	acc := T
	for _, v := range vs {
		acc = And(acc, v)
	}
	return acc
}

// OrAll folds Or over vs, returning F on the empty sequence.
func OrAll(vs ...TV) TV {
	acc := F
	for _, v := range vs {
		acc = Or(acc, v)
	}
	return acc
}
