// Package constraint implements the integrity constraints of Section 4.3:
// functional dependencies and inclusion dependencies, viewed as generic
// Boolean queries over complete databases, together with the chase of an
// incomplete database with a set of functional dependencies (the D_Σ used
// to compute conditional probabilities over FDs).
package constraint

import (
	"fmt"
	"strings"

	"incdb/internal/relation"
	"incdb/internal/value"
)

// Constraint is a generic Boolean query used as an integrity constraint.
type Constraint interface {
	fmt.Stringer
	// Holds evaluates the constraint on a database; for the probabilistic
	// framework the database is a complete possible world.
	Holds(db *relation.Database) bool
}

// FD is the functional dependency Rel: LHS → RHS over attribute positions.
type FD struct {
	Rel string
	LHS []int
	RHS []int
}

// IND is the inclusion dependency R1[Cols1] ⊆ R2[Cols2].
type IND struct {
	R1    string
	Cols1 []int
	R2    string
	Cols2 []int
}

// Set is a conjunction of constraints.
type Set []Constraint

func cols(is []int) string {
	parts := make([]string, len(is))
	for i, x := range is {
		parts[i] = fmt.Sprintf("#%d", x)
	}
	return strings.Join(parts, ",")
}

func (f FD) String() string {
	return fmt.Sprintf("%s: %s → %s", f.Rel, cols(f.LHS), cols(f.RHS))
}

func (i IND) String() string {
	return fmt.Sprintf("%s[%s] ⊆ %s[%s]", i.R1, cols(i.Cols1), i.R2, cols(i.Cols2))
}

func (s Set) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Holds reports whether no two tuples agree on LHS yet differ on RHS. The
// LHS projections are looked up hash-natively (value.TupleMap), never via
// the string Key() encoding.
func (f FD) Holds(db *relation.Database) bool {
	rel := db.Relation(f.Rel)
	if rel == nil {
		return true
	}
	var byLHS value.TupleMap[value.Tuple]
	ok := true
	rel.Each(func(t value.Tuple, _ int) {
		if !ok {
			return
		}
		lhs := t.Project(f.LHS)
		rhs := t.Project(f.RHS)
		if prev, seen := byLHS.Get(lhs); seen {
			if !prev.Equal(rhs) {
				ok = false
			}
			return
		}
		byLHS.Put(lhs, rhs)
	})
	return ok
}

// Holds reports the inclusion R1[Cols1] ⊆ R2[Cols2].
func (i IND) Holds(db *relation.Database) bool {
	r1, r2 := db.Relation(i.R1), db.Relation(i.R2)
	if r1 == nil || r1.Len() == 0 {
		return true
	}
	if r2 == nil {
		return false
	}
	proj := relation.NewArity("proj", len(i.Cols2))
	r2.Each(func(t value.Tuple, _ int) { proj.Add(t.Project(i.Cols2)) })
	ok := true
	r1.Each(func(t value.Tuple, _ int) {
		if !proj.Contains(t.Project(i.Cols1)) {
			ok = false
		}
	})
	return ok
}

// Holds is the conjunction.
func (s Set) Holds(db *relation.Database) bool {
	for _, c := range s {
		if !c.Holds(db) {
			return false
		}
	}
	return true
}

// FDs extracts the functional dependencies of the set, reporting whether
// the set consists of FDs only (the case where conditional probabilities
// obey the 0–1 law via the chase, Section 4.3).
func (s Set) FDs() ([]FD, bool) {
	var fds []FD
	for _, c := range s {
		fd, ok := c.(FD)
		if !ok {
			return nil, false
		}
		fds = append(fds, fd)
	}
	return fds, true
}

// Chase applies the standard FD chase to an incomplete database: whenever
// two tuples agree on an FD's LHS but differ on its RHS, the differing
// values are equated — a null is bound to the other value; two distinct
// constants make the chase fail (no possible world satisfies Σ). The
// result is D_Σ and a success flag.
func Chase(db *relation.Database, fds []FD) (*relation.Database, bool) {
	out := db.Clone()
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			rel := out.Relation(fd.Rel)
			if rel == nil {
				continue
			}
			var byLHS value.TupleMap[value.Tuple]
			var subst value.Valuation
			failed := false
			rel.Each(func(t value.Tuple, _ int) {
				if failed || subst != nil {
					return
				}
				lhs := t.Project(fd.LHS)
				rhs := t.Project(fd.RHS)
				prev, seen := byLHS.Get(lhs)
				if !seen {
					byLHS.Put(lhs, rhs)
					return
				}
				if prev.Equal(rhs) {
					return
				}
				// Equate prev and rhs position-wise.
				s := value.NewValuation()
				for i := range rhs {
					a, b := prev[i], rhs[i]
					if a == b {
						continue
					}
					switch {
					case a.IsNull():
						// A valuation maps nulls to constants; for
						// null-to-null merges we use RenameNulls below.
						s[a.NullID()] = b
					case b.IsNull():
						s[b.NullID()] = a
					default:
						failed = true
						return
					}
				}
				subst = s
			})
			if failed {
				return nil, false
			}
			if subst != nil {
				out = applySubst(out, subst)
				changed = true
			}
		}
	}
	return out, true
}

// applySubst applies a null binding map (targets may be constants or other
// nulls) across the whole database.
func applySubst(db *relation.Database, s value.Valuation) *relation.Database {
	constPart := value.NewValuation()
	renames := map[uint64]uint64{}
	for id, target := range s {
		if target.IsConst() {
			constPart.Set(id, target)
		} else {
			renames[id] = target.NullID()
		}
	}
	out := db
	if len(renames) > 0 {
		out = out.RenameNulls(renames)
	}
	if len(constPart) > 0 {
		out = out.Apply(constPart)
	}
	return out
}
