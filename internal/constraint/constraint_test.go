package constraint

import (
	"testing"

	"incdb/internal/relation"
	"incdb/internal/value"
)

func n(id uint64) value.Value { return value.Null(id) }

func TestFDHolds(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.Consts("1", "a"))
	r.Add(value.Consts("2", "b"))
	db.Add(r)
	fd := FD{Rel: "R", LHS: []int{0}, RHS: []int{1}}
	if !fd.Holds(db) {
		t.Fatalf("FD should hold")
	}
	r.Add(value.Consts("1", "c"))
	if fd.Holds(db) {
		t.Fatalf("FD violated by (1,a),(1,c)")
	}
	// Missing relation: vacuously true.
	if !(FD{Rel: "Z", LHS: []int{0}, RHS: []int{1}}).Holds(db) {
		t.Fatalf("missing relation holds vacuously")
	}
}

func TestINDHolds(t *testing.T) {
	db := relation.NewDatabase()
	s := relation.New("S", "x")
	s.Add(value.Consts("1"))
	db.Add(s)
	tt := relation.New("T", "y")
	tt.Add(value.Consts("1"))
	tt.Add(value.Consts("2"))
	db.Add(tt)
	ind := IND{R1: "S", Cols1: []int{0}, R2: "T", Cols2: []int{0}}
	if !ind.Holds(db) {
		t.Fatalf("S ⊆ T should hold")
	}
	s.Add(value.Consts("9"))
	if ind.Holds(db) {
		t.Fatalf("9 ∉ T")
	}
	// Empty left side: vacuous.
	db.Add(relation.New("E", "x"))
	if !(IND{R1: "E", Cols1: []int{0}, R2: "T", Cols2: []int{0}}).Holds(db) {
		t.Fatalf("empty inclusion holds")
	}
	// Missing right side with non-empty left: fails.
	if (IND{R1: "S", Cols1: []int{0}, R2: "Z", Cols2: []int{0}}).Holds(db) {
		t.Fatalf("missing target cannot include")
	}
}

func TestSetHoldsAndFDs(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.Consts("1", "a"))
	db.Add(r)
	set := Set{
		FD{Rel: "R", LHS: []int{0}, RHS: []int{1}},
		IND{R1: "R", Cols1: []int{0}, R2: "R", Cols2: []int{0}},
	}
	if !set.Holds(db) {
		t.Fatalf("set should hold")
	}
	if _, ok := set.FDs(); ok {
		t.Fatalf("set contains an IND; FDs() must report false")
	}
	onlyFDs := Set{FD{Rel: "R", LHS: []int{0}, RHS: []int{1}}}
	fds, ok := onlyFDs.FDs()
	if !ok || len(fds) != 1 {
		t.Fatalf("FDs extraction failed")
	}
	if set.String() == "" || fds[0].String() == "" {
		t.Fatalf("String rendering broken")
	}
}

func TestChaseBindsNullToConstant(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.Consts("1", "a"))
	r.Add(value.T(value.Const("1"), n(1)))
	db.Add(r)
	out, ok := Chase(db, []FD{{Rel: "R", LHS: []int{0}, RHS: []int{1}}})
	if !ok {
		t.Fatalf("chase must succeed")
	}
	got := out.MustRelation("R")
	if got.Len() != 1 || !got.Contains(value.Consts("1", "a")) {
		t.Fatalf("chase result = %v", got)
	}
}

func TestChaseMergesNulls(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.T(value.Const("1"), n(1)))
	r.Add(value.T(value.Const("1"), n(2)))
	db.Add(r)
	out, ok := Chase(db, []FD{{Rel: "R", LHS: []int{0}, RHS: []int{1}}})
	if !ok {
		t.Fatalf("chase must succeed")
	}
	if out.MustRelation("R").Len() != 1 {
		t.Fatalf("nulls must merge: %v", out.MustRelation("R"))
	}
}

func TestChaseFailsOnConstantConflict(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.Consts("1", "a"))
	r.Add(value.Consts("1", "b"))
	db.Add(r)
	if _, ok := Chase(db, []FD{{Rel: "R", LHS: []int{0}, RHS: []int{1}}}); ok {
		t.Fatalf("chase must fail on a ≠ b")
	}
}

func TestChaseTransitive(t *testing.T) {
	// Chasing may cascade: ⊥1 merges with ⊥2, then ⊥2 with a constant.
	db := relation.NewDatabase()
	r := relation.New("R", "k", "v")
	r.Add(value.T(value.Const("1"), n(1)))
	r.Add(value.T(value.Const("1"), n(2)))
	db.Add(r)
	s := relation.New("S", "k", "v")
	s.Add(value.T(value.Const("x"), n(2)))
	s.Add(value.Consts("x", "c"))
	db.Add(s)
	out, ok := Chase(db, []FD{
		{Rel: "R", LHS: []int{0}, RHS: []int{1}},
		{Rel: "S", LHS: []int{0}, RHS: []int{1}},
	})
	if !ok {
		t.Fatalf("chase must succeed")
	}
	// Everything collapses to the constant c.
	if !out.MustRelation("R").Contains(value.Consts("1", "c")) {
		t.Fatalf("cascade failed: %v", out)
	}
	if !out.IsComplete() {
		t.Fatalf("all nulls should be resolved: %v", out)
	}
}
