package translate

import (
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/certain"
	"incdb/internal/gen"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func c(s string) value.Value  { return value.Const(s) }
func n(id uint64) value.Value { return value.Null(id) }

// The running example: R = {1}, S = {⊥}. cert(R−S) = ∅; naive returns {1}.
func exampleDB() *relation.Database {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	return db
}

func TestFig2bDifferenceExample(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	plus, poss, err := Fig2b(q)
	if err != nil {
		t.Fatal(err)
	}
	// Q⁺ = R ⋉⇑ S: 1 unifies with ⊥, so nothing is certain.
	if got := algebra.Naive(db, plus); got.Len() != 0 {
		t.Fatalf("Q+ = %v, want ∅", got)
	}
	// Q? = R − S: 1 remains possible.
	if got := algebra.Naive(db, poss); !got.Contains(value.Consts("1")) {
		t.Fatalf("Q? = %v, want {1}", got)
	}
}

func TestFig2aDifferenceExample(t *testing.T) {
	db := exampleDB()
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	qt, qf, err := Fig2a(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got := algebra.Naive(db, qt); got.Len() != 0 {
		t.Fatalf("Qt = %v, want ∅", got)
	}
	// Qf: tuples certainly NOT in R−S. The constant 1 is not among them
	// (⊥ might be ≠1); ⊥ itself is certainly-in-S hence certainly-out? No:
	// ⊥ ∈ R−S iff v(⊥) ∈ R − S(v) — v(⊥)=1 gives 1 ∈ {1}−{1} = ∅; so ⊥ is
	// certainly out only if for NO v, v(⊥) ∈ (R−S)(v). v(⊥)=1: (R−S)={},
	// other v: (R−S)={1}, v(⊥)≠1. So ⊥ certainly fails; 1 does not.
	qfRes := algebra.Naive(db, qf)
	if qfRes.Contains(value.Consts("1")) {
		t.Fatalf("Qf must not contain 1: %v", qfRes)
	}
}

func TestFig2bTautologySelection(t *testing.T) {
	// σ(a=o2 ∨ a≠o2)(P) on P = {o1, ⊥}: cert⊥ = {o1, ⊥} — the introduction's
	// third example. Q⁺ must find o1 and the θ* guard must drop ⊥ from the
	// disequality disjunct but the equality side keeps… actually ⊥ is
	// certain (every v(⊥) is either o2 or not), yet Q⁺ cannot see it:
	// approximation, not exactness.
	db := relation.NewDatabase()
	p := relation.New("P", "oid")
	p.Add(value.Consts("o1"))
	p.Add(value.T(n(1)))
	db.Add(p)
	q := algebra.Sel(algebra.R("P"), algebra.COr(
		algebra.CEqC(0, c("o2")),
		algebra.CNeqC(0, c("o2")),
	))
	cert, err := certain.WithNulls(db, q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 2 {
		t.Fatalf("cert⊥ = %v, want {o1, ⊥1}", cert)
	}
	plus, poss, err := Fig2b(q)
	if err != nil {
		t.Fatal(err)
	}
	got := algebra.Naive(db, plus)
	if !got.Contains(value.Consts("o1")) {
		t.Fatalf("Q+ misses o1: %v", got)
	}
	if !got.SubsetOfSet(cert) {
		t.Fatalf("Q+ = %v must be a subset of cert⊥ = %v", got, cert)
	}
	// Q? keeps both.
	if qposs := algebra.Naive(db, poss); qposs.Len() != 2 {
		t.Fatalf("Q? = %v, want 2 tuples", qposs)
	}
}

func TestIntersectionNormalized(t *testing.T) {
	db := exampleDB()
	q := algebra.Inter(algebra.R("R"), algebra.R("S"))
	plus, poss, err := Fig2b(q)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing is certainly in R ∩ S (⊥ may differ from 1)…
	if got := algebra.Naive(db, plus); got.Len() != 0 {
		t.Fatalf("(R∩S)+ = %v, want ∅", got)
	}
	// …but 1 is possibly in it. (Q? of the normalized difference keeps 1.)
	if got := algebra.Naive(db, poss); !got.Contains(value.Consts("1")) {
		t.Fatalf("(R∩S)? = %v, want {1}", got)
	}
	if _, _, err := Fig2a(q, db); err != nil {
		t.Fatalf("Fig2a on intersection: %v", err)
	}
}

func TestOutsideFragmentErrors(t *testing.T) {
	db := gen.Schema()
	bad := []algebra.Expr{
		algebra.Div(algebra.R("R"), algebra.R("S")),
		algebra.AntiJoin(algebra.R("S"), algebra.R("S")),
		algebra.DomK(1),
		algebra.Sel(algebra.R("S"), algebra.CIn(algebra.R("S"), 0)),
	}
	for _, q := range bad {
		if _, _, err := Fig2b(q); err == nil {
			t.Errorf("Fig2b(%s) should fail", q)
		}
		if _, _, err := Fig2a(q, db); err == nil {
			t.Errorf("Fig2a(%s) should fail", q)
		}
	}
}

func TestExplicitNotIsNormalized(t *testing.T) {
	db := exampleDB()
	q := algebra.Sel(algebra.R("S"), algebra.CNot(algebra.CEqC(0, c("1"))))
	plus, _, err := Fig2b(q)
	if err != nil {
		t.Fatal(err)
	}
	// ¬(a=1) normalizes to a≠1, whose θ* guard excludes the null.
	if got := algebra.Naive(db, plus); got.Len() != 0 {
		t.Fatalf("Q+ = %v, want ∅ (⊥ might be 1)", got)
	}
}

// Theorem 4.7 as a property test: for random full-RA queries and random
// incomplete databases, Q⁺(D) ⊆ cert⊥(Q,D) and, for every valuation v of
// the oracle space, v(Q⁺(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)).
func TestTheorem47Property(t *testing.T) {
	r := rand.New(rand.NewSource(407))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 120; trial++ {
		db := gen.DB(r, cfg)
		arity := 1 + r.Intn(2)
		q := gen.Query(r, qcfg, arity)
		plus, poss, err := Fig2b(q)
		if err != nil {
			t.Fatal(err)
		}
		plusRes := algebra.Naive(db, plus)
		possRes := algebra.Naive(db, poss)
		cert, err := certain.WithNulls(db, q, certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !plusRes.SubsetOfSet(cert) {
			t.Fatalf("trial %d: Q+ ⊄ cert⊥\nQ = %s\nD = %v\nQ+ = %v\ncert = %v",
				trial, q, db, plusRes, cert)
		}
		space, err := certain.NewSpace(db, algebra.ConstsOf(q), certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		space.Each(func(v value.Valuation) bool {
			world := db.Apply(v)
			res := algebra.Eval(world, q, algebra.ModeNaive)
			// v(Q+(D)) ⊆ Q(v(D))
			ok := true
			plusRes.Each(func(tp value.Tuple, _ int) {
				if !res.Contains(v.Apply(tp)) {
					t.Errorf("trial %d: v(Q+) ⊄ Q(v(D)) at v=%v tuple %v\nQ = %s\nD = %v",
						trial, v, tp, q, db)
					ok = false
				}
			})
			// Q(v(D)) ⊆ v(Q?(D))
			image := relation.NewArity("img", possRes.Arity())
			possRes.Each(func(tp value.Tuple, _ int) { image.Add(v.Apply(tp)) })
			res.Each(func(tp value.Tuple, _ int) {
				if !image.Contains(tp) {
					t.Errorf("trial %d: Q(v(D)) ⊄ v(Q?) at v=%v tuple %v\nQ = %s\nD = %v",
						trial, v, tp, q, db)
					ok = false
				}
			})
			return ok
		})
		if t.Failed() {
			return
		}
	}
}

// Theorem 4.6 as a property test: Qᵗ(D) ⊆ cert⊥(Q,D), Qᶠ(D) ⊆ certainly-
// false, and Qᵗ(D) = Q(D) on complete databases.
func TestTheorem46Property(t *testing.T) {
	r := rand.New(rand.NewSource(406))
	cfg := gen.DefaultConfig()
	cfg.MaxTuples = 3 // Dom^k blow-up: keep the databases tiny
	qcfg := gen.DefaultQueryConfig()
	qcfg.MaxDepth = 2
	for trial := 0; trial < 60; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1)
		qt, qf, err := Fig2a(q, db)
		if err != nil {
			t.Fatal(err)
		}
		qtRes := algebra.Naive(db, qt)
		qfRes := algebra.Naive(db, qf)
		cert, err := certain.WithNulls(db, q, certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !qtRes.SubsetOfSet(cert) {
			t.Fatalf("trial %d: Qt ⊄ cert⊥\nQ = %s\nD = %v\nQt = %v\ncert = %v",
				trial, q, db, qtRes, cert)
		}
		// Certainly false: for every valuation, v(t) ∉ Q(v(D)).
		space, err := certain.NewSpace(db, algebra.ConstsOf(q), certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		space.Each(func(v value.Valuation) bool {
			res := algebra.Eval(db.Apply(v), q, algebra.ModeNaive)
			bad := false
			qfRes.Each(func(tp value.Tuple, _ int) {
				if res.Contains(v.Apply(tp)) {
					t.Errorf("trial %d: Qf tuple %v is in Q(v(D)) for v=%v\nQ = %s\nD = %v",
						trial, tp, v, q, db)
					bad = true
				}
			})
			return !bad
		})
		if t.Failed() {
			return
		}
	}
}

func TestQtEqualsQOnCompleteDatabases(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cfg := gen.DefaultConfig()
	cfg.NullRate = 0 // complete databases
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 80; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1)
		qt, _, err := Fig2a(q, db)
		if err != nil {
			t.Fatal(err)
		}
		plus, poss, err := Fig2b(q)
		if err != nil {
			t.Fatal(err)
		}
		want := algebra.Naive(db, q)
		if got := algebra.Naive(db, qt); !got.EqualSet(want) {
			t.Fatalf("trial %d: Qt(D) = %v ≠ Q(D) = %v on complete D\nQ = %s", trial, got, want, q)
		}
		if got := algebra.Naive(db, plus); !got.EqualSet(want) {
			t.Fatalf("trial %d: Q+(D) ≠ Q(D) on complete D", trial)
		}
		if got := algebra.Naive(db, poss); !got.EqualSet(want) {
			t.Fatalf("trial %d: Q?(D) ≠ Q(D) on complete D", trial)
		}
	}
}

// Theorem 4.8: under bag semantics, #(ā, Q⁺(D)) ≤ □Q(D, ā) ≤ #(ā, Q?(D)).
func TestTheorem48BagBounds(t *testing.T) {
	r := rand.New(rand.NewSource(408))
	cfg := gen.DefaultConfig()
	qcfg := gen.DefaultQueryConfig()
	for trial := 0; trial < 40; trial++ {
		db := gen.DB(r, cfg)
		q := gen.Query(r, qcfg, 1)
		plus, poss, err := Fig2b(q)
		if err != nil {
			t.Fatal(err)
		}
		plusBag := algebra.EvalBag(db, plus, algebra.ModeNaive)
		possBag := algebra.EvalBag(db, poss, algebra.ModeNaive)
		// Check the sandwich on every tuple that appears on either side.
		var seen value.TupleMap[value.Tuple]
		plusBag.Each(func(tp value.Tuple, _ int) { seen.Put(tp, tp) })
		possBag.Each(func(tp value.Tuple, _ int) { seen.Put(tp, tp) })
		var tuples []value.Tuple
		seen.Each(func(_ value.Tuple, tp value.Tuple) { tuples = append(tuples, tp) })
		for _, tp := range tuples {
			box, err := certain.BoxMult(db, q, tp, certain.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if plusBag.Mult(tp) > box {
				t.Fatalf("trial %d: #(%v,Q+)=%d > □=%d\nQ = %s\nD = %v",
					trial, tp, plusBag.Mult(tp), box, q, db)
			}
			if box > possBag.Mult(tp) {
				t.Fatalf("trial %d: □=%d > #(%v,Q?)=%d\nQ = %s\nD = %v",
					trial, box, tp, possBag.Mult(tp), q, db)
			}
		}
	}
}
