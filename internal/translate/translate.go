// Package translate implements the two approximation schemes of Figure 2
// of the paper, which rewrite a relational algebra query Q into companion
// queries with correctness guarantees that are evaluated naively:
//
//   - Figure 2(a), from Libkin [51]: Q ↦ (Qᵗ, Qᶠ), where Qᵗ(D) under-
//     approximates the certainly-true answers cert⊥(Q, D) and Qᶠ(D) the
//     certainly-false ones cert⊥(¬Q, D) (Theorem 4.6). The Qᶠ side builds
//     Cartesian powers of the active domain (Dom^k), which is what makes
//     this scheme correct but practically infeasible — it "starts running
//     out of memory on instances with fewer than 10³ tuples" [37].
//
//   - Figure 2(b), from Guagliardo–Libkin [37]: Q ↦ (Q⁺, Q?), where Q⁺ has
//     correctness guarantees for Q and Q? over-approximates the possible
//     answers:  v(Q⁺(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) for every valuation v
//     (Theorem 4.7). No Dom appears anywhere; the only new operator is the
//     anti-semijoin by unifiability ⋉⇑.
//
// Both translations cover the core relational algebra of Section 2
// (σ, π, ×, ∪, −, plus ∩ which is normalized away as Q₁−(Q₁−Q₂)).
// Projections must use distinct columns (the paper's π projects onto a
// list of distinct attributes; duplicating a column can always be written
// as a product with a selection). const/null tests in source conditions
// are trivialized, since source semantics lives on complete possible
// worlds. Division, ⋉⇑, Dom and IN-subqueries cannot appear in source
// queries.
package translate

import (
	"fmt"

	"incdb/internal/algebra"
)

// Fig2a translates Q into the pair (Qᵗ, Qᶠ) of Figure 2(a). The catalog is
// needed to compute arities for the Dom^k subexpressions.
func Fig2a(q algebra.Expr, cat algebra.Catalog) (qt, qf algebra.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			qt, qf = nil, nil
			err = fmt.Errorf("translate: %v", r)
		}
	}()
	q = normalize(q)
	qt, qf = fig2a(q, cat)
	return qt, qf, nil
}

// Fig2b translates Q into the pair (Q⁺, Q?) of Figure 2(b).
func Fig2b(q algebra.Expr) (plus, poss algebra.Expr, err error) {
	defer func() {
		if r := recover(); r != nil {
			plus, poss = nil, nil
			err = fmt.Errorf("translate: %v", r)
		}
	}()
	q = normalize(q)
	plus, poss = fig2b(q)
	return plus, poss, nil
}

// normalize rewrites intersections into the difference form the Figure 2
// rules cover: Q₁ ∩ Q₂ = Q₁ − (Q₁ − Q₂).
func normalize(q algebra.Expr) algebra.Expr {
	switch q := q.(type) {
	case algebra.Rel:
		return q
	case algebra.Select:
		return algebra.Select{In: normalize(q.In), Cond: normalizeCond(q.Cond)}
	case algebra.Project:
		seen := map[int]bool{}
		for _, col := range q.Cols {
			if seen[col] {
				// The Figure 2(a) projection rule subtracts
				// πα(Dom^ar − Qᶠ); with repeated columns some output
				// tuples have no preimage under πα and the subtraction
				// over-kills, losing the exactness of Qᵗ on complete
				// databases. The paper's π projects onto (distinct)
				// attributes, so we enforce that.
				panic(fmt.Sprintf("projection with repeated column %d is outside the Figure 2 fragment", col))
			}
			seen[col] = true
		}
		return algebra.Project{In: normalize(q.In), Cols: q.Cols}
	case algebra.Product:
		return algebra.Product{L: normalize(q.L), R: normalize(q.R)}
	case algebra.Union:
		return algebra.Union{L: normalize(q.L), R: normalize(q.R)}
	case algebra.Diff:
		return algebra.Diff{L: normalize(q.L), R: normalize(q.R)}
	case algebra.Intersect:
		l, r := normalize(q.L), normalize(q.R)
		return algebra.Diff{L: l, R: algebra.Diff{L: l, R: r}}
	default:
		panic(fmt.Sprintf("operator %T is outside the Figure 2 fragment", q))
	}
}

// normalizeCond pushes explicit Not down so that the θ*/¬θ machinery only
// sees the paper's positive grammar, and trivializes const/null tests:
// a source query's semantics is its behaviour on possible worlds
// (Section 3.1), which are complete databases — there const(A) is always
// true and null(A) always false. (The translations themselves introduce
// meaningful const/null tests into the *output* queries via θ*.)
func normalizeCond(c algebra.Cond) algebra.Cond {
	switch c := c.(type) {
	case algebra.And:
		return algebra.And{L: normalizeCond(c.L), R: normalizeCond(c.R)}
	case algebra.Or:
		return algebra.Or{L: normalizeCond(c.L), R: normalizeCond(c.R)}
	case algebra.Not:
		return algebra.Negate(normalizeCond(c.C))
	case algebra.IsConst:
		return algebra.True{}
	case algebra.IsNull:
		return algebra.False{}
	case algebra.InSub:
		panic("IN subqueries are outside the Figure 2 fragment")
	default:
		return c
	}
}

func fig2a(q algebra.Expr, cat algebra.Catalog) (qt, qf algebra.Expr) {
	switch q := q.(type) {
	case algebra.Rel:
		// Rᵗ = R;  Rᶠ = Dom^ar(R) ⋉⇑ R.
		ar := algebra.Arity(q, cat)
		return q, algebra.AntiJoin(algebra.DomK(ar), q)

	case algebra.Union:
		lt, lf := fig2a(q.L, cat)
		rt, rf := fig2a(q.R, cat)
		return algebra.Un(lt, rt), algebra.Inter(lf, rf)

	case algebra.Diff:
		lt, lf := fig2a(q.L, cat)
		rt, rf := fig2a(q.R, cat)
		return algebra.Inter(lt, rf), algebra.Un(lf, rt)

	case algebra.Select:
		ar := algebra.Arity(q.In, cat)
		it, idf := fig2a(q.In, cat)
		qt = algebra.Sel(it, algebra.Star(q.Cond))
		qf = algebra.Un(idf, algebra.Sel(algebra.DomK(ar), algebra.Star(algebra.Negate(q.Cond))))
		return qt, qf

	case algebra.Product:
		lt, lf := fig2a(q.L, cat)
		rt, rf := fig2a(q.R, cat)
		la, ra := algebra.Arity(q.L, cat), algebra.Arity(q.R, cat)
		return algebra.Times(lt, rt),
			algebra.Un(algebra.Times(lf, algebra.DomK(ra)), algebra.Times(algebra.DomK(la), rf))

	case algebra.Project:
		ar := algebra.Arity(q.In, cat)
		it, idf := fig2a(q.In, cat)
		qt = algebra.Proj(it, q.Cols...)
		qf = algebra.Minus(
			algebra.Proj(idf, q.Cols...),
			algebra.Proj(algebra.Minus(algebra.DomK(ar), idf), q.Cols...),
		)
		return qt, qf
	}
	panic(fmt.Sprintf("operator %T is outside the Figure 2 fragment", q))
}

func fig2b(q algebra.Expr) (plus, poss algebra.Expr) {
	switch q := q.(type) {
	case algebra.Rel:
		// R⁺ = R;  R? = R.
		return q, q

	case algebra.Union:
		lp, lq := fig2b(q.L)
		rp, rq := fig2b(q.R)
		return algebra.Un(lp, rp), algebra.Un(lq, rq)

	case algebra.Diff:
		lp, lq := fig2b(q.L)
		rp, rq := fig2b(q.R)
		return algebra.AntiJoin(lp, rq), algebra.Minus(lq, rp)

	case algebra.Select:
		ip, iq := fig2b(q.In)
		plus = algebra.Sel(ip, algebra.Star(q.Cond))
		// σ¬(¬θ)*(Q?): everything that does not certainly fail θ.
		poss = algebra.Sel(iq, algebra.CNot(algebra.Star(algebra.Negate(q.Cond))))
		return plus, poss

	case algebra.Product:
		lp, lq := fig2b(q.L)
		rp, rq := fig2b(q.R)
		return algebra.Times(lp, rp), algebra.Times(lq, rq)

	case algebra.Project:
		ip, iq := fig2b(q.In)
		return algebra.Proj(ip, q.Cols...), algebra.Proj(iq, q.Cols...)
	}
	panic(fmt.Sprintf("operator %T is outside the Figure 2 fragment", q))
}
