package certain

import (
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

func c(s string) value.Value  { return value.Const(s) }
func n(id uint64) value.Value { return value.Null(id) }

func mustWithNulls(t *testing.T, db *relation.Database, q algebra.Expr) *relation.Relation {
	t.Helper()
	r, err := WithNulls(db, q, Options{})
	if err != nil {
		t.Fatalf("WithNulls: %v", err)
	}
	return r
}

// The running example of Section 4.2/4.3: R = {1}, S = {⊥}. Naive
// evaluation of R − S returns {1} but the certain answers are empty.
func TestDifferenceWithNullIsUncertain(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)

	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	naive := algebra.Naive(db, q)
	if naive.Len() != 1 || !naive.Contains(value.Consts("1")) {
		t.Fatalf("naive = %v, want {1}", naive)
	}
	cert := mustWithNulls(t, db, q)
	if cert.Len() != 0 {
		t.Fatalf("cert⊥ = %v, want ∅", cert)
	}
}

// cert⊥(R, {R(⊥)}) = {⊥}: certain answers with nulls keep the certain
// information that ⊥ is in R (Section 3.2), unlike cert∩ which is empty.
func TestIdentityQueryKeepsNull(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	db.Add(r)
	q := algebra.R("R")
	cert := mustWithNulls(t, db, q)
	if cert.Len() != 1 || !cert.Contains(value.T(n(1))) {
		t.Fatalf("cert⊥ = %v, want {⊥1}", cert)
	}
	inter, err := Intersection(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inter.Len() != 0 {
		t.Fatalf("cert∩ = %v, want ∅", inter)
	}
}

// Proposition 3.10: cert∩(Q,D) = cert⊥(Q,D) ∩ Const(D)^m.
func TestProposition310(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(c("1"), c("2")))
	r.Add(value.T(c("3"), n(1)))
	r.Add(value.T(n(2), n(2)))
	db.Add(r)
	queries := []algebra.Expr{
		algebra.R("R"),
		algebra.Proj(algebra.R("R"), 0),
		algebra.Sel(algebra.R("R"), algebra.CEq(0, 1)),
		algebra.Un(algebra.Proj(algebra.R("R"), 0), algebra.Proj(algebra.R("R"), 1)),
	}
	for _, q := range queries {
		cert := mustWithNulls(t, db, q)
		inter, err := Intersection(db, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// cert∩ must equal the constant tuples of cert⊥.
		want := relation.NewArity("w", cert.Arity())
		cert.Each(func(tp value.Tuple, _ int) {
			if tp.AllConst() {
				want.Add(tp)
			}
		})
		if !inter.EqualSet(want) {
			t.Errorf("query %s: cert∩ = %v, const part of cert⊥ = %v", q, inter, want)
		}
	}
}

// Theorem 4.4 (cwa): naive evaluation computes cert⊥ for positive queries;
// sanity-check on a UCQ with joins and a union.
func TestNaiveEqualsCertForPositiveQueries(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(c("1"), n(1)))
	r.Add(value.T(n(1), c("2")))
	r.Add(value.T(c("2"), c("3")))
	db.Add(r)

	// π0,3(σ #1=#2 (R×R)) ∪ R — a UCQ.
	join := algebra.Proj(algebra.Join(algebra.R("R"), algebra.R("R"), algebra.CEq(1, 2)), 0, 3)
	q := algebra.Un(join, algebra.R("R"))
	naive := algebra.Naive(db, q)
	cert := mustWithNulls(t, db, q)
	if !naive.EqualSet(cert) {
		t.Fatalf("naive = %v, cert⊥ = %v; they must coincide for UCQs under cwa", naive, cert)
	}
}

// Pos∀G beyond UCQs: division is preserved under strong onto homomorphisms
// and naive evaluation stays correct under cwa (Theorem 4.4).
func TestNaiveEqualsCertForDivision(t *testing.T) {
	db := relation.NewDatabase()
	w := relation.New("W", "e", "p")
	w.Add(value.T(c("ann"), c("p1")))
	w.Add(value.T(c("ann"), n(1)))
	w.Add(value.T(c("bob"), c("p1")))
	db.Add(w)
	p := relation.New("P", "p")
	p.Add(value.Consts("p1"))
	p.Add(value.T(n(1)))
	db.Add(p)

	q := algebra.Div(algebra.R("W"), algebra.R("P"))
	naive := algebra.Naive(db, q)
	cert := mustWithNulls(t, db, q)
	if !naive.EqualSet(cert) {
		t.Fatalf("naive = %v, cert⊥ = %v; division is Pos∀G so they must agree", naive, cert)
	}
	if !cert.Contains(value.Consts("ann")) {
		t.Fatalf("ann works on p1 and on ⊥1 — certainly on all projects: %v", cert)
	}
}

// The S ⊆ T example of Section 4.3: T = {1,2}, S = {⊥}; cert(T−S) is empty
// because ⊥ may be either element.
func TestInclusionExampleCertEmpty(t *testing.T) {
	db := relation.NewDatabase()
	tt := relation.New("T", "a")
	tt.Add(value.Consts("1"))
	tt.Add(value.Consts("2"))
	db.Add(tt)
	s := relation.New("S", "a")
	s.Add(value.T(n(1)))
	db.Add(s)
	cert := mustWithNulls(t, db, algebra.Minus(algebra.R("T"), algebra.R("S")))
	if cert.Len() != 0 {
		t.Fatalf("cert⊥ = %v, want ∅", cert)
	}
}

func TestBoolCertainty(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	db.Add(r)
	// ∃x R(x): true in every world.
	exists := algebra.Proj(algebra.R("R"))
	got, err := Bool(db, exists, Options{})
	if err != nil || !got {
		t.Fatalf("∃x R(x) must be certainly true: %v %v", got, err)
	}
	// R(2)? (σ_{a=2}R ≠ ∅): true only if ⊥ ↦ 2 — not certain. This is the
	// Proposition 3.5 example.
	r2 := algebra.Proj(algebra.Sel(algebra.R("R"), algebra.CEqC(0, c("2"))))
	got, err = Bool(db, r2, Options{})
	if err != nil || got {
		t.Fatalf("R(2) must not be certain: %v %v", got, err)
	}
	// But it is possible.
	poss, err := PossibleTuple(db, r2, value.Tuple{}, Options{})
	if err != nil || !poss {
		t.Fatalf("R(2) must be possible: %v %v", poss, err)
	}
}

func TestCertainTupleMatchesWithNulls(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	r.Add(value.Consts("k"))
	db.Add(r)
	q := algebra.R("R")
	cert := mustWithNulls(t, db, q)
	for _, tp := range []value.Tuple{value.T(n(1)), value.Consts("k"), value.Consts("zz")} {
		got, err := CertainTuple(db, q, tp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != cert.Contains(tp) {
			t.Errorf("CertainTuple(%v) = %v, cert⊥ contains = %v", tp, got, cert.Contains(tp))
		}
	}
}

func TestBagBounds(t *testing.T) {
	// R = {1, ⊥}: multiplicity of 1 in R ranges over {1, 2}.
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("1"))
	r.Add(value.T(n(1)))
	db.Add(r)
	q := algebra.R("R")
	box, err := BoxMult(db, q, value.Consts("1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dia, err := DiamondMult(db, q, value.Consts("1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if box != 1 || dia != 2 {
		t.Fatalf("□ = %d, ◇ = %d; want 1, 2", box, dia)
	}
	// Under set semantics, □Q = 1 means certain membership.
	if box >= 1 {
		ok, err := CertainTuple(db, q, value.Consts("1"), Options{})
		if err != nil || !ok {
			t.Fatalf("□ ≥ 1 must imply certainty")
		}
	}
}

func TestBagBoundsDifference(t *testing.T) {
	// Bag difference: R = {a,a}, S = {⊥}: #(a, R−S) is 1 if ⊥↦a else 2.
	db := relation.NewDatabase()
	r := relation.New("R", "x")
	r.AddMult(value.Consts("a"), 2)
	db.Add(r)
	s := relation.New("S", "x")
	s.Add(value.T(n(1)))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	box, _ := BoxMult(db, q, value.Consts("a"), Options{})
	dia, _ := DiamondMult(db, q, value.Consts("a"), Options{})
	if box != 1 || dia != 2 {
		t.Fatalf("□ = %d, ◇ = %d; want 1, 2", box, dia)
	}
}

func TestSpaceGuard(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b", "c", "d")
	// 24 nulls and several constants: the space must overflow the guard.
	for i := 0; i < 6; i++ {
		r.Add(value.T(n(uint64(4*i+1)), n(uint64(4*i+2)), n(uint64(4*i+3)), n(uint64(4*i+4))))
	}
	r.Add(value.Consts("a", "b", "c", "d"))
	db.Add(r)
	_, err := WithNulls(db, algebra.R("R"), Options{MaxWorlds: 1000})
	if err == nil {
		t.Fatalf("expected a MaxWorlds error")
	}
}

func TestCompleteDatabaseFastPath(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("x"))
	db.Add(r)
	cert := mustWithNulls(t, db, algebra.R("R"))
	if cert.Len() != 1 || !cert.Contains(value.Consts("x")) {
		t.Fatalf("on complete databases cert⊥ = Q(D): %v", cert)
	}
	inter, err := Intersection(db, algebra.R("R"), Options{})
	if err != nil || !inter.EqualSet(cert) {
		t.Fatalf("cert∩ must also equal Q(D): %v %v", inter, err)
	}
}

func TestQueryConstantsEnterSpace(t *testing.T) {
	// Q = σ_{a=2}(R) on R(⊥): the valuation ⊥↦2 only exists if the query
	// constant 2 is in the range; certainty must be refuted through it.
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.T(n(1)))
	db.Add(r)
	q := algebra.Sel(algebra.R("R"), algebra.CNeqC(0, c("2")))
	// ⊥ ≠ 2 is not certain (⊥ could be 2).
	cert := mustWithNulls(t, db, q)
	if cert.Len() != 0 {
		t.Fatalf("cert⊥ = %v, want ∅ (⊥ may be 2)", cert)
	}
}

func TestFreshConstantAvoidance(t *testing.T) {
	// A database that already contains the would-be fresh constant names
	// must not confuse the space construction.
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("⁑fresh0"))
	r.Add(value.T(n(1)))
	db.Add(r)
	space, err := NewSpace(db, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[value.Value]bool{}
	for _, v := range space.rng {
		if seen[v] {
			t.Fatalf("duplicate constant %v in range", v)
		}
		seen[v] = true
	}
	if space.Size() != len(space.rng) {
		t.Fatalf("one null: size must equal range size")
	}
}
