package certain

import (
	"fmt"
	"math/rand"
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/gen"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// corpus returns database/query pairs whose valuation spaces are large
// enough (≥ minParallelWorlds) to exercise the sharded paths, plus small
// ones that must fall back to the serial path.
func corpus(t *testing.T) []struct {
	name string
	db   *relation.Database
	q    algebra.Expr
} {
	t.Helper()
	var out []struct {
		name string
		db   *relation.Database
		q    algebra.Expr
	}

	// Hand-built: difference with several nulls on both sides.
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	for i := 0; i < 4; i++ {
		r.Add(value.Consts(fmt.Sprintf("c%d", i)))
	}
	r.Add(value.T(value.Null(1)))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.Consts("c1"))
	s.Add(value.T(value.Null(2)))
	s.Add(value.T(value.Null(3)))
	db.Add(s)
	out = append(out, struct {
		name string
		db   *relation.Database
		q    algebra.Expr
	}{"diff-3nulls", db, algebra.Minus(algebra.R("R"), algebra.R("S"))})

	// Hand-built small space: must take the serial path under any Workers.
	db2 := relation.NewDatabase()
	r2 := relation.New("R", "a")
	r2.Add(value.Consts("x"))
	r2.Add(value.T(value.Null(1)))
	db2.Add(r2)
	out = append(out, struct {
		name string
		db   *relation.Database
		q    algebra.Expr
	}{"tiny", db2, algebra.R("R")})

	// Random instances over the gen schema, full relational algebra.
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rdb := gen.DB(rng, gen.Config{MaxTuples: 6, NullRate: 0.4, NullPool: 3, ConstPool: 4})
		q := gen.Query(rng, gen.DefaultQueryConfig(), 1)
		out = append(out, struct {
			name string
			db   *relation.Database
			q    algebra.Expr
		}{fmt.Sprintf("gen-%d", seed), rdb, q})
	}
	return out
}

// TestParallelOracleMatchesSerial is the oracle-equivalence gate: every
// certainty notion must render byte-identically under the serial reference
// path and under a many-worker pool (more workers than this machine has
// cores, to force real sharding).
func TestParallelOracleMatchesSerial(t *testing.T) {
	for _, tc := range corpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			serial := Options{Workers: 1}
			parallel := Options{Workers: 8}

			sw, err1 := WithNulls(tc.db, tc.q, serial)
			pw, err2 := WithNulls(tc.db, tc.q, parallel)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("WithNulls errs diverge: %v vs %v", err1, err2)
			}
			if err1 == nil && sw.String() != pw.String() {
				t.Errorf("WithNulls diverges:\nserial   %s\nparallel %s", sw, pw)
			}

			si, err1 := Intersection(tc.db, tc.q, serial)
			pi, err2 := Intersection(tc.db, tc.q, parallel)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("Intersection errs diverge: %v vs %v", err1, err2)
			}
			if err1 == nil && si.String() != pi.String() {
				t.Errorf("Intersection diverges:\nserial   %s\nparallel %s", si, pi)
			}

			// Tuple-level checks over every naive candidate plus a miss.
			cands := algebra.Naive(tc.db, tc.q).Tuples()
			if arity := algebra.Arity(tc.q, tc.db); arity > 0 {
				miss := make(value.Tuple, arity)
				for i := range miss {
					miss[i] = value.Const("✗absent")
				}
				cands = append(cands, miss)
			}
			for i, tuple := range cands {
				sc, err1 := CertainTuple(tc.db, tc.q, tuple, serial)
				pc, err2 := CertainTuple(tc.db, tc.q, tuple, parallel)
				if (err1 == nil) != (err2 == nil) || sc != pc {
					t.Errorf("CertainTuple[%d] %v: serial %v/%v parallel %v/%v", i, tuple, sc, err1, pc, err2)
				}
				sp, err1 := PossibleTuple(tc.db, tc.q, tuple, serial)
				pp, err2 := PossibleTuple(tc.db, tc.q, tuple, parallel)
				if (err1 == nil) != (err2 == nil) || sp != pp {
					t.Errorf("PossibleTuple[%d] %v: serial %v/%v parallel %v/%v", i, tuple, sp, err1, pp, err2)
				}
				sb, err1 := BoxMult(tc.db, tc.q, tuple, serial)
				pb, err2 := BoxMult(tc.db, tc.q, tuple, parallel)
				if (err1 == nil) != (err2 == nil) || sb != pb {
					t.Errorf("BoxMult[%d] %v: serial %v/%v parallel %v/%v", i, tuple, sb, err1, pb, err2)
				}
				sd, err1 := DiamondMult(tc.db, tc.q, tuple, serial)
				pd, err2 := DiamondMult(tc.db, tc.q, tuple, parallel)
				if (err1 == nil) != (err2 == nil) || sd != pd {
					t.Errorf("DiamondMult[%d] %v: serial %v/%v parallel %v/%v", i, tuple, sd, err1, pd, err2)
				}
			}
		})
	}
}

// TestParallelBoolMatchesSerial checks Boolean certainty on zero-ary
// queries, where the universal search short-circuits across shards.
func TestParallelBoolMatchesSerial(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	r.Add(value.Consts("c0"))
	r.Add(value.Consts("c1"))
	r.Add(value.T(value.Null(1)))
	r.Add(value.T(value.Null(2)))
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.Consts("c0"))
	s.Add(value.T(value.Null(3)))
	db.Add(s)
	for _, q := range []algebra.Expr{
		algebra.Proj(algebra.R("R")),                                // ∃-style: R nonempty, certainly true
		algebra.Proj(algebra.Minus(algebra.R("R"), algebra.R("S"))), // uncertain
		algebra.Proj(algebra.Minus(algebra.R("S"), algebra.R("S"))), // certainly false
	} {
		sb, err1 := Bool(db, q, Options{Workers: 1})
		pb, err2 := Bool(db, q, Options{Workers: 8})
		if (err1 == nil) != (err2 == nil) || sb != pb {
			t.Errorf("Bool(%v): serial %v/%v parallel %v/%v", q, sb, err1, pb, err2)
		}
	}
}

// TestSpaceEachRangeMatchesEach pins the shard enumeration to the serial
// order: concatenating disjoint ranges must reproduce Each exactly.
func TestSpaceEachRangeMatchesEach(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a", "b")
	r.Add(value.T(value.Null(1), value.Const("x")))
	r.Add(value.T(value.Null(2), value.Null(3)))
	db.Add(r)
	space, err := NewSpace(db, []value.Value{value.Const("qc")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var full []string
	space.Each(func(v value.Valuation) bool { full = append(full, v.String()); return true })
	if len(full) != space.Size() {
		t.Fatalf("Each visited %d, Size() = %d", len(full), space.Size())
	}
	var pieces []string
	step := space.Size()/7 + 1
	for lo := 0; lo < space.Size(); lo += step {
		hi := lo + step
		if hi > space.Size() {
			hi = space.Size()
		}
		space.EachRange(lo, hi, func(v value.Valuation) bool { pieces = append(pieces, v.String()); return true })
	}
	for i := range full {
		if pieces[i] != full[i] {
			t.Fatalf("valuation %d: range %s vs full %s", i, pieces[i], full[i])
		}
	}
}

// TestWorkerPoolStress hammers the sharded cert⊥ path; it exists chiefly to
// give `go test -race` a workload over the worker pool and the shared
// read-only database.
func TestWorkerPoolStress(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.New("R", "a")
	for i := 0; i < 5; i++ {
		r.Add(value.Consts(fmt.Sprintf("c%d", i)))
	}
	db.Add(r)
	s := relation.New("S", "a")
	s.Add(value.T(value.Null(1)))
	s.Add(value.T(value.Null(2)))
	s.Add(value.T(value.Null(3)))
	db.Add(s)
	q := algebra.Minus(algebra.R("R"), algebra.R("S"))
	want, err := WithNulls(db, q, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := WithNulls(db, q, Options{Workers: 16})
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("iteration %d diverged: %s vs %s", i, got, want)
		}
	}
}
