package certain

import (
	"testing"

	"incdb/internal/algebra"
	"incdb/internal/plan"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// TestOraclesWithPrepCache replays every oracle through a shared
// prepared-plan cache: results must be identical to the one-shot path,
// across repeated calls and across a mutation of the base database.
func TestOraclesWithPrepCache(t *testing.T) {
	db := relation.NewDatabase()
	orders := relation.New("Orders", "oid", "cid")
	orders.Add(value.Consts("o1", "c1"))
	orders.Add(value.T(value.Const("o2"), db.FreshNull()))
	db.Add(orders)
	pay := relation.New("Payments", "oid")
	pay.Add(value.Consts("o1"))
	db.Add(pay)

	q := algebra.Minus(algebra.Proj(algebra.R("Orders"), 0), algebra.R("Payments"))
	cache := plan.NewPrepCache(8)
	fresh := Options{Workers: 1}
	cached := Options{Workers: 1, Prep: cache}

	step := func(stage string) {
		t.Helper()
		want, err := WithNulls(db, q, fresh)
		if err != nil {
			t.Fatalf("%s: fresh WithNulls: %v", stage, err)
		}
		got, err := WithNulls(db, q, cached)
		if err != nil {
			t.Fatalf("%s: cached WithNulls: %v", stage, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: cached cert⊥ %s, fresh %s", stage, got, want)
		}
		wantI, err := Intersection(db, q, fresh)
		if err != nil {
			t.Fatalf("%s: fresh Intersection: %v", stage, err)
		}
		gotI, err := Intersection(db, q, cached)
		if err != nil {
			t.Fatalf("%s: cached Intersection: %v", stage, err)
		}
		if !gotI.Equal(wantI) {
			t.Fatalf("%s: cached cert∩ %s, fresh %s", stage, gotI, wantI)
		}
	}

	step("cold")
	if st := cache.Stats(); st.Misses == 0 {
		t.Fatalf("cold run did not populate the cache: %+v", st)
	}
	step("warm")
	warm := cache.Stats()
	if warm.Hits == 0 {
		t.Fatalf("warm run did not hit the cache: %+v", warm)
	}
	// Mutate a read relation: the stale entry must not be reused — either
	// the key's statistics epoch moved (a miss compiles afresh) or the
	// version guard failed (an invalidation re-prepares) — and the oracles
	// must see the new contents.
	pay.Add(value.Consts("o2"))
	step("after mutation")
	if st := cache.Stats(); st.Invalidations == 0 && st.Misses == warm.Misses {
		t.Fatalf("mutation neither invalidated nor missed: %+v", st)
	}
}
