// Package certain computes the exact certainty notions of Section 3 of the
// paper for relational algebra queries under the closed-world semantics:
//
//   - cert⊥(Q, D), certain answers with nulls (Definition 3.9):
//     { t̄ | v(t̄) ∈ Q(v(D)) for every valuation v };
//   - cert∩(Q, D), intersection-based certain answers (Definition 3.7):
//     ⋂_{D' ∈ ⟦D⟧} Q(D');
//   - Boolean certainty and possibility;
//   - the bag-semantics multiplicity bounds □Q and ◇Q of Section 4.2
//     ((6a) and (6b)).
//
// All of these are computed by enumerating a finite valuation space. By
// genericity (Section 2) a query's behaviour depends only on the
// isomorphism type of the database over the constants mentioned in the
// query, so it suffices to range valuations over Const(D) ∪ consts(Q) ∪ F
// where F holds |Null(D)| + 1 fresh constants: any valuation is isomorphic,
// over the relevant constants, to one in this space, and the extra fresh
// constant refutes spurious fresh tuples in intersections. The enumeration is
// exponential in |Null(D)| — certain answers are coNP-hard (Theorem 3.12),
// so an exact oracle cannot do better — and is therefore guarded by
// Options.MaxWorlds. The package is the ground-truth oracle against which
// the tractable approximations of Section 4 are tested.
package certain

import (
	"fmt"
	"sort"
	"strconv"

	"incdb/internal/algebra"
	"incdb/internal/relation"
	"incdb/internal/value"
)

// Options bounds the exhaustive enumeration.
type Options struct {
	// MaxWorlds caps the number of valuations enumerated; Compute returns
	// an error beyond it. Zero means DefaultMaxWorlds.
	MaxWorlds int
	// FreshCount overrides the number of fresh constants added to the
	// valuation range. Zero means |Null(D)| + 1: n fresh constants make
	// the enumeration complete for cert⊥ membership of tuples over dom(D)
	// (any valuation uses at most n distinct values outside the mentioned
	// constants), and the extra one guarantees that every tuple mentioning
	// a fresh constant is refuted in cert∩ by a valuation avoiding it.
	// Smaller values trade exactness for speed.
	FreshCount int
}

// DefaultMaxWorlds bounds enumeration to about a million possible worlds.
const DefaultMaxWorlds = 1 << 20

func (o Options) maxWorlds() int {
	if o.MaxWorlds <= 0 {
		return DefaultMaxWorlds
	}
	return o.MaxWorlds
}

// Space is the finite valuation space used by the oracle: the null
// identifiers of D and the candidate range.
type Space struct {
	ids   []uint64
	rng   []value.Value
	count int
}

// NewSpace builds the valuation space for db and query constants qconsts,
// quantifying over every null of the database.
func NewSpace(db *relation.Database, qconsts []value.Value, opts Options) (*Space, error) {
	return newSpace(db, db.NullIDs(), qconsts, opts)
}

// NewSpaceForQuery builds the valuation space restricted to the nulls the
// query can observe: those occurring in *columns the query reads*
// (algebra.UsedColumns). The set-semantics query result Q(v(D)) does not
// depend on the bindings of other nulls, so universal and existential
// conditions over valuations are unchanged — while the enumeration shrinks
// from |rng|^|Null(D)| to |rng|^|relevant|.
func NewSpaceForQuery(db *relation.Database, q algebra.Expr, opts Options) (*Space, error) {
	ids := relevantNulls(db, q)
	if ids == nil {
		return NewSpace(db, algebra.ConstsOf(q), opts)
	}
	return newSpace(db, ids, algebra.ConstsOf(q), opts)
}

// relevantNulls returns the sorted null ids in query-read columns, or nil
// when the query reads the whole active domain (Dom) and every null is
// relevant.
func relevantNulls(db *relation.Database, q algebra.Expr) []uint64 {
	if _, usesDom := algebra.RelationsOf(q); usesDom {
		return nil
	}
	used := algebra.UsedColumns(q, db)
	seen := map[uint64]bool{}
	ids := []uint64{}
	for name, mask := range used {
		rel := db.Relation(name)
		if rel == nil {
			continue
		}
		for _, t := range rel.Tuples() {
			for col, v := range t {
				if mask[col] && v.IsNull() && !seen[v.NullID()] {
					seen[v.NullID()] = true
					ids = append(ids, v.NullID())
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// spaceForTuple builds the space for set-semantics tuple-level checks: the
// membership condition v(t̄) ∈ Q(v(D)) depends on the query-visible nulls
// plus any nulls and constants of t̄ itself.
func spaceForTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (*Space, error) {
	ids := relevantNulls(db, q)
	if ids == nil {
		ids = db.NullIDs()
	}
	return tupleSpace(db, q, t, ids, opts)
}

// spaceForTupleBag is the bag-semantics variant: column-level pruning is
// unsound under bags (unused columns can collapse tuples and change
// multiplicities), so only whole relations the query never reads are
// pruned.
func spaceForTupleBag(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (*Space, error) {
	names, usesDom := algebra.RelationsOf(q)
	var ids []uint64
	if usesDom {
		ids = db.NullIDs()
	} else {
		seen := map[uint64]bool{}
		for _, name := range names {
			rel := db.Relation(name)
			if rel == nil {
				continue
			}
			for _, tp := range rel.Tuples() {
				for _, v := range tp {
					if v.IsNull() && !seen[v.NullID()] {
						seen[v.NullID()] = true
						ids = append(ids, v.NullID())
					}
				}
			}
		}
	}
	return tupleSpace(db, q, t, ids, opts)
}

func tupleSpace(db *relation.Database, q algebra.Expr, t value.Tuple, ids []uint64, opts Options) (*Space, error) {
	seen := map[uint64]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	ids = append([]uint64(nil), ids...)
	for id := range t.Nulls() {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	consts := algebra.ConstsOf(q)
	for _, v := range t {
		if v.IsConst() {
			consts = append(consts, v)
		}
	}
	return newSpace(db, ids, consts, opts)
}

func newSpace(db *relation.Database, ids []uint64, qconsts []value.Value, opts Options) (*Space, error) {
	rng := append([]value.Value(nil), db.Consts()...)
	have := map[value.Value]bool{}
	for _, c := range rng {
		have[c] = true
	}
	for _, c := range qconsts {
		if !have[c] {
			have[c] = true
			rng = append(rng, c)
		}
	}
	freshCount := opts.FreshCount
	if freshCount <= 0 {
		freshCount = len(ids) + 1
	}
	for i := 0; i < freshCount; i++ {
		// Fresh constants must avoid everything present; the prefix makes
		// collisions with user data implausible and the loop rules them out.
		base := "⁑fresh" + strconv.Itoa(i)
		c := value.Const(base)
		for n := 0; have[c]; n++ {
			c = value.Const(base + "_" + strconv.Itoa(n))
		}
		have[c] = true
		rng = append(rng, c)
	}
	count := 1
	for range ids {
		count *= len(rng)
		if count > opts.maxWorlds() || count < 0 {
			return nil, fmt.Errorf("certain: valuation space %d^%d exceeds MaxWorlds %d",
				len(rng), len(ids), opts.maxWorlds())
		}
	}
	if len(ids) == 0 {
		count = 1
	}
	return &Space{ids: ids, rng: rng, count: count}, nil
}

// Size returns the number of valuations in the space.
func (s *Space) Size() int { return s.count }

// Each enumerates every valuation in the space. Stop early by returning
// false from f.
func (s *Space) Each(f func(v value.Valuation) bool) {
	v := value.NewValuation()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(s.ids) {
			return f(v)
		}
		for _, c := range s.rng {
			v.Set(s.ids[i], c)
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// WithNulls computes cert⊥(Q, D) exactly. Candidates are drawn from the
// naive evaluation: instantiating Definition 3.9 with an injective
// valuation onto fresh constants shows cert⊥(Q, D) ⊆ Qnaïve(D), so nothing
// outside the naive answer can be certain.
func WithNulls(db *relation.Database, q algebra.Expr, opts Options) (*relation.Relation, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return nil, err
	}
	candidates := algebra.Naive(db, q).Tuples()
	alive := make([]bool, len(candidates))
	for i := range alive {
		alive[i] = true
	}
	remaining := len(candidates)
	space.Each(func(v value.Valuation) bool {
		if remaining == 0 {
			return false
		}
		world := db.Apply(v)
		res := algebra.Eval(world, q, algebra.ModeNaive)
		for i, t := range candidates {
			if alive[i] && !res.Contains(v.Apply(t)) {
				alive[i] = false
				remaining--
			}
		}
		return true
	})
	arity := algebra.Arity(q, db)
	out := relation.NewArity("cert⊥", arity)
	for i, t := range candidates {
		if alive[i] {
			out.Add(t)
		}
	}
	return out, nil
}

// Intersection computes cert∩(Q, D) = ⋂_{v} Q(v(D)) exactly. The result
// consists of constant tuples only (Section 3.2).
func Intersection(db *relation.Database, q algebra.Expr, opts Options) (*relation.Relation, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return nil, err
	}
	var acc *relation.Relation
	space.Each(func(v value.Valuation) bool {
		world := db.Apply(v)
		res := algebra.Eval(world, q, algebra.ModeNaive)
		if acc == nil {
			acc = res
			return true
		}
		next := relation.NewArity("cert∩", acc.Arity())
		acc.Each(func(t value.Tuple, _ int) {
			if res.Contains(t) {
				next.Add(t)
			}
		})
		acc = next
		return acc.Len() > 0
	})
	if acc == nil {
		// No valuations (impossible: the space always has at least one).
		acc = relation.NewArity("cert∩", algebra.Arity(q, db))
	}
	if acc.Len() == 0 {
		return relation.NewArity("cert∩", algebra.Arity(q, db)), nil
	}
	return acc.Rename("cert∩"), nil
}

// Bool computes certainty of a Boolean (zero-ary) query: true iff the
// query holds in every possible world of the space.
func Bool(db *relation.Database, q algebra.Expr, opts Options) (bool, error) {
	space, err := NewSpaceForQuery(db, q, opts)
	if err != nil {
		return false, err
	}
	certain := true
	space.Each(func(v value.Valuation) bool {
		if !algebra.BooleanResult(algebra.Eval(db.Apply(v), q, algebra.ModeNaive)) {
			certain = false
			return false
		}
		return true
	})
	return certain, nil
}

// PossibleTuple reports whether some valuation makes t̄ an answer:
// ∃v. v(t̄) ∈ Q(v(D)).
func PossibleTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (bool, error) {
	space, err := spaceForTuple(db, q, t, opts)
	if err != nil {
		return false, err
	}
	possible := false
	space.Each(func(v value.Valuation) bool {
		if algebra.Eval(db.Apply(v), q, algebra.ModeNaive).Contains(v.Apply(t)) {
			possible = true
			return false
		}
		return true
	})
	return possible, nil
}

// CertainTuple reports whether t̄ ∈ cert⊥(Q, D) without computing the whole
// answer set.
func CertainTuple(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (bool, error) {
	space, err := spaceForTuple(db, q, t, opts)
	if err != nil {
		return false, err
	}
	certain := true
	space.Each(func(v value.Valuation) bool {
		if !algebra.Eval(db.Apply(v), q, algebra.ModeNaive).Contains(v.Apply(t)) {
			certain = false
			return false
		}
		return true
	})
	return certain, nil
}

// BoxMult computes □Q(D, ā) of (6a): the minimum multiplicity of v(ā) in
// the bag evaluation of Q over all valuations v.
func BoxMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (int, error) {
	return extremeMult(db, q, t, opts, true)
}

// DiamondMult computes ◇Q(D, ā) of (6b): the maximum multiplicity.
func DiamondMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options) (int, error) {
	return extremeMult(db, q, t, opts, false)
}

func extremeMult(db *relation.Database, q algebra.Expr, t value.Tuple, opts Options, min bool) (int, error) {
	space, err := spaceForTupleBag(db, q, t, opts)
	if err != nil {
		return 0, err
	}
	first := true
	best := 0
	space.Each(func(v value.Valuation) bool {
		m := algebra.EvalBag(db.Apply(v), q, algebra.ModeNaive).Mult(v.Apply(t))
		if first {
			best = m
			first = false
		} else if (min && m < best) || (!min && m > best) {
			best = m
		}
		// Early exit: a minimum of zero cannot improve.
		return !(min && best == 0)
	})
	return best, nil
}
